#include "rtu/driver.h"

#include "obs/trace.h"

namespace ss::rtu {

RtuDriver::RtuDriver(net::Transport& net, scada::Frontend& frontend,
                     DriverOptions options)
    : net_(net), frontend_(frontend), opt_(std::move(options)) {
  net_.attach(opt_.endpoint,
              [this](net::Message m) { on_message(std::move(m)); });
}

RtuDriver::~RtuDriver() { net_.detach(opt_.endpoint); }

void RtuDriver::bind_sensor(const std::string& rtu_endpoint, std::uint16_t reg,
                            RegisterScaling scaling, ItemId item) {
  sensors_.push_back(SensorBinding{rtu_endpoint, reg, scaling, item, {}});
}

void RtuDriver::bind_actuator(const std::string& rtu_endpoint,
                              std::uint16_t reg, RegisterScaling scaling,
                              ItemId item) {
  actuators_[item.value] = ActuatorBinding{rtu_endpoint, reg, scaling};
}

void RtuDriver::start() {
  if (started_) return;
  started_ = true;
  frontend_.set_field_writer(
      [this](OpId op, ItemId item, const scada::Variant& value,
             std::function<void(bool, std::string)> done) {
        field_write(op, item, value, std::move(done));
      });
  poll_tick();
}

void RtuDriver::poll_tick() {
  for (std::size_t i = 0; i < sensors_.size(); ++i) {
    const SensorBinding& binding = sensors_[i];
    ModbusRequest req;
    req.transaction = next_transaction_++;
    req.function = FunctionCode::kReadHoldingRegisters;
    req.address = binding.reg;
    req.count = 1;
    PendingRequest pending;
    pending.is_write = false;
    pending.sensor_index = i;
    pending_[req.transaction] = std::move(pending);
    ++counters_.polls_sent;
    net_.send(opt_.endpoint, binding.rtu, req.encode());
  }
  net_.schedule(opt_.poll_period, [this] { poll_tick(); });
}

void RtuDriver::field_write(OpId op, ItemId item, const scada::Variant& value,
                            std::function<void(bool, std::string)> done) {
  auto it = actuators_.find(item.value);
  if (it == actuators_.end()) {
    done(false, "no actuator bound for item");
    return;
  }
  // The rtu span covers the Modbus round trip to the field device.
  obs::Tracer::instance().begin(op, "rtu", opt_.endpoint.c_str());
  const ActuatorBinding& binding = it->second;
  ModbusRequest req;
  req.transaction = next_transaction_++;
  req.function = FunctionCode::kWriteSingleRegister;
  req.address = binding.reg;
  req.values.push_back(binding.scaling.to_raw(value.to_double_or_zero()));

  PendingRequest pending;
  pending.is_write = true;
  pending.op = op;
  pending.done = std::move(done);
  if (opt_.write_timeout > 0) {
    std::uint16_t transaction = req.transaction;
    pending.timeout =
        net_.schedule(opt_.write_timeout, [this, transaction] {
          auto pit = pending_.find(transaction);
          if (pit == pending_.end()) return;
          auto callback = std::move(pit->second.done);
          OpId timed_out_op = pit->second.op;
          pending_.erase(pit);
          ++counters_.write_timeouts;
          obs::Tracer::instance().end(timed_out_op, "rtu");
          if (callback) callback(false, "rtu timeout");
        });
  }
  pending_[req.transaction] = std::move(pending);
  ++counters_.writes_sent;
  net_.send(opt_.endpoint, binding.rtu, req.encode());
}

void RtuDriver::on_message(net::Message msg) {
  ModbusResponse rsp;
  try {
    rsp = ModbusResponse::decode(msg.payload);
  } catch (const DecodeError&) {
    return;
  }
  auto it = pending_.find(rsp.transaction);
  if (it == pending_.end()) return;
  PendingRequest pending = std::move(it->second);
  pending.timeout.cancel();
  pending_.erase(it);

  if (pending.is_write) {
    ++counters_.write_responses;
    obs::Tracer::instance().end(pending.op, "rtu");
    if (pending.done) {
      if (rsp.ok()) {
        pending.done(true, "");
      } else {
        pending.done(false, "rtu exception " +
                                std::to_string(static_cast<int>(rsp.exception)));
      }
    }
    return;
  }

  ++counters_.poll_responses;
  if (!rsp.ok() || rsp.values.empty()) return;
  SensorBinding& binding = sensors_[pending.sensor_index];
  std::uint16_t raw = rsp.values[0];
  if (binding.last_raw.has_value() && *binding.last_raw == raw) {
    return;  // report by exception: unchanged
  }
  binding.last_raw = raw;
  ++counters_.changes_reported;
  frontend_.field_update(binding.item,
                         scada::Variant{binding.scaling.to_engineering(raw)},
                         scada::Quality::kGood, net_.now());
}

}  // namespace ss::rtu
