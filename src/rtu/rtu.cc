#include "rtu/rtu.h"

namespace ss::rtu {

Rtu::Rtu(net::Transport& net, std::string endpoint, RtuOptions options)
    : net_(net),
      endpoint_(std::move(endpoint)),
      opt_(options),
      rng_(options.seed) {
  net_.attach(endpoint_, [this](net::Message m) { on_message(std::move(m)); });
}

Rtu::~Rtu() { net_.detach(endpoint_); }

void Rtu::add_sensor(std::uint16_t reg, std::unique_ptr<Signal> signal,
                     RegisterScaling scaling) {
  sensors_[reg] = Sensor{std::move(signal), scaling};
  registers_[reg] = 0;
}

void Rtu::add_actuator(std::uint16_t reg, std::uint16_t initial) {
  actuators_[reg] = true;
  registers_[reg] = initial;
}

std::uint16_t Rtu::register_value(std::uint16_t reg) const {
  auto it = registers_.find(reg);
  return it == registers_.end() ? 0 : it->second;
}

void Rtu::start() {
  if (started_) return;
  started_ = true;
  sample_tick();
}

void Rtu::sample_tick() {
  SimTime now = net_.now();
  for (auto& [reg, sensor] : sensors_) {
    double value = sensor.signal->sample(now, rng_);
    registers_[reg] = sensor.scaling.to_raw(value);
  }
  net_.schedule(opt_.sample_period, [this] { sample_tick(); });
}

void Rtu::on_message(net::Message msg) {
  if (swallow_ > 0) {
    --swallow_;
    return;
  }
  ModbusRequest req;
  try {
    req = ModbusRequest::decode(msg.payload);
  } catch (const DecodeError&) {
    return;
  }
  ModbusResponse rsp = process(req);
  net_.schedule(opt_.respond_delay,
                       [this, from = msg.from, rsp = std::move(rsp)] {
                         net_.send(endpoint_, from, rsp.encode());
                       });
}

ModbusResponse Rtu::process(const ModbusRequest& req) {
  ModbusResponse rsp;
  rsp.transaction = req.transaction;
  rsp.unit = req.unit;
  rsp.function = req.function;
  rsp.address = req.address;

  switch (req.function) {
    case FunctionCode::kReadHoldingRegisters: {
      if (req.count == 0 || req.count > 125) {
        rsp.exception = ModbusException::kIllegalDataValue;
        return rsp;
      }
      rsp.count = req.count;
      for (std::uint16_t i = 0; i < req.count; ++i) {
        auto it = registers_.find(req.address + i);
        if (it == registers_.end()) {
          rsp.exception = ModbusException::kIllegalDataAddress;
          rsp.values.clear();
          return rsp;
        }
        rsp.values.push_back(it->second);
      }
      return rsp;
    }
    case FunctionCode::kWriteSingleRegister: {
      if (req.values.size() != 1) {
        rsp.exception = ModbusException::kIllegalDataValue;
        return rsp;
      }
      if (actuators_.count(req.address) == 0) {
        rsp.exception = ModbusException::kIllegalDataAddress;
        return rsp;
      }
      if (fail_writes_ > 0) {
        --fail_writes_;
        rsp.exception = ModbusException::kServerDeviceFailure;
        return rsp;
      }
      registers_[req.address] = req.values[0];
      ++writes_applied_;
      rsp.count = 1;
      return rsp;
    }
    case FunctionCode::kWriteMultipleRegisters: {
      if (req.values.size() != req.count || req.count == 0) {
        rsp.exception = ModbusException::kIllegalDataValue;
        return rsp;
      }
      for (std::uint16_t i = 0; i < req.count; ++i) {
        if (actuators_.count(req.address + i) == 0) {
          rsp.exception = ModbusException::kIllegalDataAddress;
          return rsp;
        }
      }
      if (fail_writes_ > 0) {
        --fail_writes_;
        rsp.exception = ModbusException::kServerDeviceFailure;
        return rsp;
      }
      for (std::uint16_t i = 0; i < req.count; ++i) {
        registers_[req.address + i] = req.values[i];
        ++writes_applied_;
      }
      rsp.count = req.count;
      return rsp;
    }
  }
  rsp.exception = ModbusException::kIllegalFunction;
  return rsp;
}

}  // namespace ss::rtu
