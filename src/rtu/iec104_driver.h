// Frontend driver for IEC-104 devices: the event-driven counterpart of the
// polled Modbus RtuDriver. On start it interrogates every device for a
// state snapshot, then consumes spontaneous measurement telegrams; item
// writes become setpoint commands completed by the device's (possibly
// negative) activation confirmation.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "rtu/iec104.h"
#include "scada/frontend.h"
#include "net/transport.h"

namespace ss::rtu {

struct Iec104DriverOptions {
  std::string endpoint = "frontend/iec104";
  /// 0 disables; otherwise an unanswered setpoint command fails after this.
  SimTime command_timeout = 0;
};

struct Iec104DriverCounters {
  std::uint64_t telegrams_received = 0;
  std::uint64_t updates_reported = 0;
  std::uint64_t commands_sent = 0;
  std::uint64_t commands_confirmed = 0;
  std::uint64_t commands_rejected = 0;
  std::uint64_t command_timeouts = 0;
};

class Iec104Driver {
 public:
  Iec104Driver(net::Transport& net, scada::Frontend& frontend,
               Iec104DriverOptions options = {});
  ~Iec104Driver();

  Iec104Driver(const Iec104Driver&) = delete;
  Iec104Driver& operator=(const Iec104Driver&) = delete;

  /// Measurement point: (device, ioa) -> frontend item.
  void bind_measurement(const std::string& device, std::uint32_t ioa,
                        ItemId item);
  /// Controllable point: frontend item -> (device, ioa).
  void bind_setpoint(const std::string& device, std::uint32_t ioa,
                     ItemId item);

  /// Installs the field writer and sends a general interrogation to every
  /// bound device.
  void start();

  const Iec104DriverCounters& counters() const { return counters_; }

 private:
  struct PointKey {
    std::string device;
    std::uint32_t ioa;
    bool operator<(const PointKey& other) const {
      return std::tie(device, ioa) < std::tie(other.device, other.ioa);
    }
  };
  struct PendingCommand {
    OpId op;  ///< originating write op, for tracing
    std::function<void(bool, std::string)> done;
    net::Timer timeout;
  };

  void on_message(net::Message msg);
  void field_write(OpId op, ItemId item, const scada::Variant& value,
                   std::function<void(bool, std::string)> done);

  net::Transport& net_;
  scada::Frontend& frontend_;
  Iec104DriverOptions opt_;
  std::map<PointKey, ItemId> measurements_;
  std::map<std::uint32_t, PointKey> setpoints_;     // by item id
  std::map<PointKey, PendingCommand> pending_;
  Iec104DriverCounters counters_;
  bool started_ = false;
};

}  // namespace ss::rtu
