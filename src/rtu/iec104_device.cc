#include "rtu/iec104_device.h"

#include <cmath>

namespace ss::rtu {

Iec104Device::Iec104Device(net::Transport& net, std::string endpoint,
                           Iec104DeviceOptions options)
    : net_(net),
      endpoint_(std::move(endpoint)),
      opt_(options),
      rng_(options.seed) {
  net_.attach(endpoint_, [this](net::Message m) { on_message(std::move(m)); });
}

Iec104Device::~Iec104Device() { net_.detach(endpoint_); }

void Iec104Device::add_measurement(std::uint32_t ioa,
                                   std::unique_ptr<Signal> signal) {
  measurements_[ioa] = Measurement{std::move(signal), std::nullopt};
}

void Iec104Device::add_setpoint(std::uint32_t ioa, double initial) {
  setpoints_[ioa] = initial;
}

double Iec104Device::point_value(std::uint32_t ioa) const {
  if (auto it = setpoints_.find(ioa); it != setpoints_.end()) {
    return it->second;
  }
  if (auto it = measurements_.find(ioa); it != measurements_.end()) {
    return it->second.last_reported.value_or(0);
  }
  return 0;
}

void Iec104Device::start() {
  if (started_) return;
  started_ = true;
  scan_tick();
}

void Iec104Device::send_asdu(const Iec104Asdu& asdu) {
  if (station_.empty()) return;  // nobody connected yet
  net_.send(endpoint_, station_, asdu.encode());
}

void Iec104Device::scan_tick() {
  SimTime now = net_.now();
  for (auto& [ioa, point] : measurements_) {
    double value = point.signal->sample(now, rng_);
    if (point.last_reported.has_value() &&
        std::abs(value - *point.last_reported) <= opt_.report_deadband) {
      continue;
    }
    point.last_reported = value;
    Iec104Asdu asdu;
    asdu.type = Iec104Type::kMeasuredFloat;
    asdu.cause = Iec104Cot::kSpontaneous;
    asdu.common_address = opt_.common_address;
    asdu.ioa = ioa;
    asdu.value = value;
    ++spontaneous_sent_;
    send_asdu(asdu);
  }
  net_.schedule(opt_.scan_period, [this] { scan_tick(); });
}

void Iec104Device::on_message(net::Message msg) {
  if (swallow_ > 0) {
    --swallow_;
    return;
  }
  Iec104Asdu asdu;
  try {
    asdu = Iec104Asdu::decode(msg.payload);
  } catch (const DecodeError&) {
    return;
  }
  if (station_.empty()) station_ = msg.from;

  switch (asdu.type) {
    case Iec104Type::kInterrogation: {
      if (asdu.cause != Iec104Cot::kActivation) return;
      // Confirm, dump every point with COT=interrogated, then terminate.
      Iec104Asdu con = asdu;
      con.cause = Iec104Cot::kActivationCon;
      send_asdu(con);
      SimTime now = net_.now();
      for (auto& [ioa, point] : measurements_) {
        double value = point.signal->sample(now, rng_);
        point.last_reported = value;
        Iec104Asdu reply;
        reply.type = Iec104Type::kMeasuredFloat;
        reply.cause = Iec104Cot::kInterrogated;
        reply.common_address = opt_.common_address;
        reply.ioa = ioa;
        reply.value = value;
        send_asdu(reply);
      }
      for (const auto& [ioa, value] : setpoints_) {
        Iec104Asdu reply;
        reply.type = Iec104Type::kMeasuredFloat;
        reply.cause = Iec104Cot::kInterrogated;
        reply.common_address = opt_.common_address;
        reply.ioa = ioa;
        reply.value = value;
        send_asdu(reply);
      }
      Iec104Asdu term = asdu;
      term.cause = Iec104Cot::kActivationTerm;
      send_asdu(term);
      return;
    }
    case Iec104Type::kSetpointFloat: {
      if (asdu.cause != Iec104Cot::kActivation) return;
      Iec104Asdu con = asdu;
      con.cause = Iec104Cot::kActivationCon;
      auto it = setpoints_.find(asdu.ioa);
      if (it == setpoints_.end()) {
        con.cause = Iec104Cot::kUnknownObject;
        con.negative = true;
      } else if (fail_commands_ > 0) {
        --fail_commands_;
        con.negative = true;
      } else {
        it->second = asdu.value;
        ++commands_applied_;
      }
      send_asdu(con);
      return;
    }
    case Iec104Type::kMeasuredFloat:
      return;  // controlling stations do not send measurements
  }
}

}  // namespace ss::rtu
