// The Frontend's field driver: bridges scada::Frontend items to Modbus
// registers on simulated RTUs — the "protocol translator" role the paper
// assigns to the Frontend.
//
// Sensor bindings are polled cyclically (report-by-exception: only changed
// values produce ItemUpdates). Actuator bindings install a field writer on
// the Frontend so WriteValue commands become Modbus write requests; the
// Modbus response completes the WriteResult.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "rtu/modbus.h"
#include "rtu/rtu.h"
#include "scada/frontend.h"
#include "net/transport.h"

namespace ss::rtu {

struct DriverOptions {
  std::string endpoint = "frontend/driver";
  SimTime poll_period = millis(100);
  /// 0 disables; otherwise a write with no Modbus response for this long
  /// fails with "rtu timeout". Disabled by default because the replicated
  /// system's logical-timeout protocol is the mechanism under study.
  SimTime write_timeout = 0;
};

struct DriverCounters {
  std::uint64_t polls_sent = 0;
  std::uint64_t poll_responses = 0;
  std::uint64_t changes_reported = 0;
  std::uint64_t writes_sent = 0;
  std::uint64_t write_responses = 0;
  std::uint64_t write_timeouts = 0;
};

class RtuDriver {
 public:
  RtuDriver(net::Transport& net, scada::Frontend& frontend,
            DriverOptions options = {});
  ~RtuDriver();

  RtuDriver(const RtuDriver&) = delete;
  RtuDriver& operator=(const RtuDriver&) = delete;

  /// Polled input point: RTU register -> frontend item.
  void bind_sensor(const std::string& rtu_endpoint, std::uint16_t reg,
                   RegisterScaling scaling, ItemId item);

  /// Writable output point: frontend item -> RTU register.
  void bind_actuator(const std::string& rtu_endpoint, std::uint16_t reg,
                     RegisterScaling scaling, ItemId item);

  /// Starts the polling loop and installs the Frontend field writer.
  void start();

  const DriverCounters& counters() const { return counters_; }

 private:
  struct SensorBinding {
    std::string rtu;
    std::uint16_t reg;
    RegisterScaling scaling;
    ItemId item;
    std::optional<std::uint16_t> last_raw;
  };
  struct ActuatorBinding {
    std::string rtu;
    std::uint16_t reg;
    RegisterScaling scaling;
  };
  struct PendingRequest {
    bool is_write = false;
    std::size_t sensor_index = 0;  ///< for reads
    OpId op;                       ///< originating write op, for tracing
    std::function<void(bool, std::string)> done;  ///< for writes
    net::Timer timeout;
  };

  void on_message(net::Message msg);
  void poll_tick();
  void field_write(OpId op, ItemId item, const scada::Variant& value,
                   std::function<void(bool, std::string)> done);

  net::Transport& net_;
  scada::Frontend& frontend_;
  DriverOptions opt_;
  std::vector<SensorBinding> sensors_;
  std::map<std::uint32_t, ActuatorBinding> actuators_;  // by item id
  std::map<std::uint16_t, PendingRequest> pending_;     // by transaction
  std::uint16_t next_transaction_ = 1;
  bool started_ = false;
  DriverCounters counters_;
};

}  // namespace ss::rtu
