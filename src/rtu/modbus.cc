#include "rtu/modbus.h"

#include "rtu/frame_check.h"

namespace ss::rtu {

Bytes ModbusRequest::encode() const {
  Writer w(16 + values.size() * 2);
  w.u16(transaction);
  w.u8(unit);
  w.u8(static_cast<std::uint8_t>(function));
  w.u16(address);
  w.u16(count);
  w.varint(values.size());
  for (std::uint16_t v : values) w.u16(v);
  return seal_frame(std::move(w));
}

ModbusRequest ModbusRequest::decode(ByteView data) {
  Reader r(check_frame(data));
  ModbusRequest req;
  req.transaction = r.u16();
  req.unit = r.u8();
  std::uint8_t fc = r.u8();
  if (fc != 0x03 && fc != 0x06 && fc != 0x10) {
    throw DecodeError("unsupported modbus function");
  }
  req.function = static_cast<FunctionCode>(fc);
  req.address = r.u16();
  req.count = r.u16();
  std::uint64_t n = r.varint();
  if (n > 125) throw DecodeError("modbus write too large");
  req.values.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) req.values.push_back(r.u16());
  r.expect_done();
  return req;
}

Bytes ModbusResponse::encode() const {
  Writer w(16 + values.size() * 2);
  w.u16(transaction);
  w.u8(unit);
  w.u8(static_cast<std::uint8_t>(function));
  w.u8(static_cast<std::uint8_t>(exception));
  w.u16(address);
  w.u16(count);
  w.varint(values.size());
  for (std::uint16_t v : values) w.u16(v);
  return seal_frame(std::move(w));
}

ModbusResponse ModbusResponse::decode(ByteView data) {
  Reader r(check_frame(data));
  ModbusResponse rsp;
  rsp.transaction = r.u16();
  rsp.unit = r.u8();
  std::uint8_t fc = r.u8();
  if (fc != 0x03 && fc != 0x06 && fc != 0x10) {
    throw DecodeError("unsupported modbus function");
  }
  rsp.function = static_cast<FunctionCode>(fc);
  std::uint8_t ex = r.u8();
  if (ex > 0x04) throw DecodeError("bad modbus exception");
  rsp.exception = static_cast<ModbusException>(ex);
  rsp.address = r.u16();
  rsp.count = r.u16();
  std::uint64_t n = r.varint();
  if (n > 125) throw DecodeError("modbus read too large");
  rsp.values.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) rsp.values.push_back(r.u16());
  r.expect_done();
  return rsp;
}

}  // namespace ss::rtu
