// A simulated IEC-104 field device (controlled station).
//
// Unlike the polled Modbus Rtu, this device *pushes*: measurement points
// are scanned from their Signal generators and any change beyond the
// reporting deadband is sent spontaneously to the connected controlling
// station. Setpoint commands are confirmed (or negatively confirmed for
// unknown objects / injected failures), and a general interrogation answers
// with a snapshot of every point.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/rng.h"
#include "rtu/iec104.h"
#include "rtu/sensors.h"
#include "net/transport.h"

namespace ss::rtu {

struct Iec104DeviceOptions {
  std::uint16_t common_address = 1;
  SimTime scan_period = millis(100);
  double report_deadband = 0.0;  ///< spontaneous report threshold
  std::uint64_t seed = 31;
};

class Iec104Device {
 public:
  Iec104Device(net::Transport& net, std::string endpoint,
               Iec104DeviceOptions options = {});
  ~Iec104Device();

  Iec104Device(const Iec104Device&) = delete;
  Iec104Device& operator=(const Iec104Device&) = delete;

  const std::string& endpoint() const { return endpoint_; }

  /// A measurement point backed by a signal generator.
  void add_measurement(std::uint32_t ioa, std::unique_ptr<Signal> signal);

  /// A controllable setpoint.
  void add_setpoint(std::uint32_t ioa, double initial = 0);

  /// Makes the next `n` setpoint commands fail (negative confirmation).
  void fail_next_commands(std::uint64_t n) { fail_commands_ = n; }
  /// Silently ignores the next `n` inbound ASDUs.
  void swallow_next(std::uint64_t n) { swallow_ = n; }

  double point_value(std::uint32_t ioa) const;
  std::uint64_t commands_applied() const { return commands_applied_; }
  std::uint64_t spontaneous_sent() const { return spontaneous_sent_; }

  /// Starts scanning once a controlling station name is known. The station
  /// is remembered from the first frame received if not set explicitly.
  void connect_station(std::string station) { station_ = std::move(station); }
  void start();

 private:
  struct Measurement {
    std::unique_ptr<Signal> signal;
    std::optional<double> last_reported;
  };

  void on_message(net::Message msg);
  void scan_tick();
  void send_asdu(const Iec104Asdu& asdu);

  net::Transport& net_;
  std::string endpoint_;
  Iec104DeviceOptions opt_;
  Rng rng_;
  std::map<std::uint32_t, Measurement> measurements_;
  std::map<std::uint32_t, double> setpoints_;
  std::string station_;
  std::uint64_t fail_commands_ = 0;
  std::uint64_t swallow_ = 0;
  std::uint64_t commands_applied_ = 0;
  std::uint64_t spontaneous_sent_ = 0;
  bool started_ = false;
};

}  // namespace ss::rtu
