// A simulated Remote Terminal Unit.
//
// An RTU owns a bank of 16-bit holding registers. Sensor registers are
// refreshed from Signal generators on a sampling tick; actuator registers
// accept Modbus writes (optionally failing, to exercise the WriteResult
// error and logical-timeout paths). The RTU answers Modbus frames on its
// network endpoint.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/rng.h"
#include "rtu/modbus.h"
#include "rtu/sensors.h"
#include "net/transport.h"

namespace ss::rtu {

struct RtuOptions {
  SimTime sample_period = millis(100);  ///< sensor refresh cadence
  SimTime respond_delay = micros(200);  ///< device processing time
  std::uint64_t seed = 7;
};

/// Scaling between engineering values and raw 16-bit registers.
struct RegisterScaling {
  double scale = 1.0;   ///< raw = value / scale (engineering -> raw)
  double offset = 0.0;  ///< raw = (value - offset) / scale

  std::uint16_t to_raw(double value) const {
    double raw = (value - offset) / scale;
    return static_cast<std::uint16_t>(
        std::clamp(raw, 0.0, 65535.0));
  }
  double to_engineering(std::uint16_t raw) const {
    return static_cast<double>(raw) * scale + offset;
  }
};

class Rtu {
 public:
  Rtu(net::Transport& net, std::string endpoint, RtuOptions options = {});
  ~Rtu();

  Rtu(const Rtu&) = delete;
  Rtu& operator=(const Rtu&) = delete;

  const std::string& endpoint() const { return endpoint_; }

  /// Binds a sensor signal to a register; refreshed every sample period.
  void add_sensor(std::uint16_t reg, std::unique_ptr<Signal> signal,
                  RegisterScaling scaling = {});

  /// Declares a writable actuator register.
  void add_actuator(std::uint16_t reg, std::uint16_t initial = 0);

  /// Makes the next `n` actuator writes fail with a device error.
  void fail_next_writes(std::uint64_t n) { fail_writes_ = n; }
  /// Silently swallows the next `n` requests (no response at all) — the
  /// scenario the logical-timeout protocol protects against.
  void swallow_next_requests(std::uint64_t n) { swallow_ = n; }

  std::uint16_t register_value(std::uint16_t reg) const;

  /// Starts the sensor sampling loop.
  void start();

  std::uint64_t writes_applied() const { return writes_applied_; }

 private:
  struct Sensor {
    std::unique_ptr<Signal> signal;
    RegisterScaling scaling;
  };

  void on_message(net::Message msg);
  ModbusResponse process(const ModbusRequest& req);
  void sample_tick();

  net::Transport& net_;
  std::string endpoint_;
  RtuOptions opt_;
  Rng rng_;
  std::map<std::uint16_t, std::uint16_t> registers_;
  std::map<std::uint16_t, Sensor> sensors_;
  std::map<std::uint16_t, bool> actuators_;
  std::uint64_t fail_writes_ = 0;
  std::uint64_t swallow_ = 0;
  std::uint64_t writes_applied_ = 0;
  bool started_ = false;
};

}  // namespace ss::rtu
