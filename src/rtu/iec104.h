// Simplified IEC 60870-5-104 application layer.
//
// NeoSCADA's frontends speak several field protocols; besides the polled
// Modbus driver we provide an event-driven IEC-104-style one: devices push
// spontaneous measured-value telegrams (M_ME_NC_1) when a point changes,
// answer a general interrogation (C_IC_NA_1) with a snapshot of all points,
// and execute floating-point setpoint commands (C_SE_NC_1) with an
// activation-confirmation handshake. Framing is reduced to the ASDU fields
// the SCADA path needs; link-layer sequence numbers are left to the
// simulated network.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "common/serialization.h"

namespace ss::rtu {

/// ASDU type identifiers (subset).
enum class Iec104Type : std::uint8_t {
  kMeasuredFloat = 13,    ///< M_ME_NC_1: measured value, short float
  kSetpointFloat = 50,    ///< C_SE_NC_1: setpoint command, short float
  kInterrogation = 100,   ///< C_IC_NA_1: general interrogation
};

/// Cause of transmission (subset).
enum class Iec104Cot : std::uint8_t {
  kSpontaneous = 3,
  kActivation = 6,
  kActivationCon = 7,
  kActivationTerm = 10,
  kInterrogated = 20,
  kUnknownObject = 47,
};

struct Iec104Asdu {
  Iec104Type type = Iec104Type::kMeasuredFloat;
  Iec104Cot cause = Iec104Cot::kSpontaneous;
  bool negative = false;           ///< negative confirmation
  std::uint16_t common_address = 1;
  std::uint32_t ioa = 0;           ///< information object address
  double value = 0;
  bool quality_good = true;

  Bytes encode() const;
  static Iec104Asdu decode(ByteView data);  // throws DecodeError
};

}  // namespace ss::rtu
