// Sensor signal generators for the simulated field.
//
// Each generator produces an engineering value as a function of virtual
// time (plus seeded noise), standing in for the physical quantities the
// paper's RTUs would sample: temperatures, pressures, levels, breaker
// states.
#pragma once

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/rng.h"
#include "common/types.h"

namespace ss::rtu {

class Signal {
 public:
  virtual ~Signal() = default;
  virtual double sample(SimTime now, Rng& rng) = 0;
};

class ConstantSignal final : public Signal {
 public:
  explicit ConstantSignal(double value) : value_(value) {}
  double sample(SimTime, Rng&) override { return value_; }

 private:
  double value_;
};

/// mean + amplitude * sin(2*pi*t/period) + noise
class SineSignal final : public Signal {
 public:
  SineSignal(double mean, double amplitude, SimTime period,
             double noise = 0.0)
      : mean_(mean), amplitude_(amplitude), period_(period), noise_(noise) {}

  double sample(SimTime now, Rng& rng) override {
    double phase = 2.0 * M_PI * static_cast<double>(now % period_) /
                   static_cast<double>(period_);
    double noise = noise_ > 0 ? (rng.uniform() - 0.5) * 2.0 * noise_ : 0.0;
    return mean_ + amplitude_ * std::sin(phase) + noise;
  }

 private:
  double mean_;
  double amplitude_;
  SimTime period_;
  double noise_;
};

/// Bounded random walk.
class RandomWalkSignal final : public Signal {
 public:
  RandomWalkSignal(double start, double step, double min_value,
                   double max_value)
      : value_(start), step_(step), min_(min_value), max_(max_value) {}

  double sample(SimTime, Rng& rng) override {
    value_ += (rng.uniform() - 0.5) * 2.0 * step_;
    value_ = std::clamp(value_, min_, max_);
    return value_;
  }

 private:
  double value_;
  double step_;
  double min_;
  double max_;
};

/// Steps between low and high every half period (e.g. a breaker toggling).
class SquareSignal final : public Signal {
 public:
  SquareSignal(double low, double high, SimTime period)
      : low_(low), high_(high), period_(period) {}

  double sample(SimTime now, Rng&) override {
    return (now % period_) * 2 < period_ ? low_ : high_;
  }

 private:
  double low_;
  double high_;
  SimTime period_;
};

/// Ramp from `start` at `rate` per second — useful to drive a Monitor
/// handler past its threshold at a known time.
class RampSignal final : public Signal {
 public:
  RampSignal(double start, double rate_per_sec)
      : start_(start), rate_(rate_per_sec) {}

  double sample(SimTime now, Rng&) override {
    return start_ + rate_ * static_cast<double>(now) / kNanosPerSec;
  }

 private:
  double start_;
  double rate_;
};

}  // namespace ss::rtu
