// Minimal Modbus-TCP-style framing for Frontend <-> RTU traffic.
//
// Eclipse NeoSCADA natively speaks Modbus TCP/RTU to field devices; our
// Frontend driver does the same against simulated RTUs. Only the function
// codes the SCADA path needs are implemented: read holding registers (0x03),
// write single register (0x06) and write multiple registers (0x10), plus
// exception responses.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/serialization.h"

namespace ss::rtu {

enum class FunctionCode : std::uint8_t {
  kReadHoldingRegisters = 0x03,
  kWriteSingleRegister = 0x06,
  kWriteMultipleRegisters = 0x10,
};

enum class ModbusException : std::uint8_t {
  kNone = 0,
  kIllegalFunction = 0x01,
  kIllegalDataAddress = 0x02,
  kIllegalDataValue = 0x03,
  kServerDeviceFailure = 0x04,
};

struct ModbusRequest {
  std::uint16_t transaction = 0;
  std::uint8_t unit = 0;
  FunctionCode function = FunctionCode::kReadHoldingRegisters;
  std::uint16_t address = 0;
  std::uint16_t count = 0;                 ///< read / write-multiple
  std::vector<std::uint16_t> values;       ///< write payloads

  Bytes encode() const;
  static ModbusRequest decode(ByteView data);  // throws DecodeError
};

struct ModbusResponse {
  std::uint16_t transaction = 0;
  std::uint8_t unit = 0;
  FunctionCode function = FunctionCode::kReadHoldingRegisters;
  ModbusException exception = ModbusException::kNone;
  std::vector<std::uint16_t> values;  ///< read results
  std::uint16_t address = 0;          ///< echoed on writes
  std::uint16_t count = 0;

  bool ok() const { return exception == ModbusException::kNone; }

  Bytes encode() const;
  static ModbusResponse decode(ByteView data);  // throws DecodeError
};

}  // namespace ss::rtu
