#include "rtu/iec104_driver.h"

#include <set>

#include "obs/trace.h"

namespace ss::rtu {

Iec104Driver::Iec104Driver(net::Transport& net, scada::Frontend& frontend,
                           Iec104DriverOptions options)
    : net_(net), frontend_(frontend), opt_(std::move(options)) {
  net_.attach(opt_.endpoint,
              [this](net::Message m) { on_message(std::move(m)); });
}

Iec104Driver::~Iec104Driver() { net_.detach(opt_.endpoint); }

void Iec104Driver::bind_measurement(const std::string& device,
                                    std::uint32_t ioa, ItemId item) {
  measurements_[PointKey{device, ioa}] = item;
}

void Iec104Driver::bind_setpoint(const std::string& device, std::uint32_t ioa,
                                 ItemId item) {
  setpoints_[item.value] = PointKey{device, ioa};
}

void Iec104Driver::start() {
  if (started_) return;
  started_ = true;
  frontend_.set_field_writer(
      [this](OpId op, ItemId item, const scada::Variant& value,
             std::function<void(bool, std::string)> done) {
        field_write(op, item, value, std::move(done));
      });

  std::set<std::string> devices;
  for (const auto& [key, item] : measurements_) devices.insert(key.device);
  for (const auto& [item, key] : setpoints_) devices.insert(key.device);
  for (const std::string& device : devices) {
    Iec104Asdu interrogation;
    interrogation.type = Iec104Type::kInterrogation;
    interrogation.cause = Iec104Cot::kActivation;
    net_.send(opt_.endpoint, device, interrogation.encode());
  }
}

void Iec104Driver::field_write(OpId op, ItemId item,
                               const scada::Variant& value,
                               std::function<void(bool, std::string)> done) {
  auto it = setpoints_.find(item.value);
  if (it == setpoints_.end()) {
    done(false, "no setpoint bound for item");
    return;
  }
  const PointKey& key = it->second;
  if (pending_.count(key) > 0) {
    done(false, "setpoint command already in flight");
    return;
  }

  Iec104Asdu command;
  command.type = Iec104Type::kSetpointFloat;
  command.cause = Iec104Cot::kActivation;
  command.ioa = key.ioa;
  command.value = value.to_double_or_zero();

  // The rtu span covers the IEC-104 command round trip.
  obs::Tracer::instance().begin(op, "rtu", opt_.endpoint.c_str());
  PendingCommand pending;
  pending.op = op;
  pending.done = std::move(done);
  if (opt_.command_timeout > 0) {
    pending.timeout = net_.schedule(opt_.command_timeout, [this, key] {
      auto pit = pending_.find(key);
      if (pit == pending_.end()) return;
      auto callback = std::move(pit->second.done);
      OpId timed_out_op = pit->second.op;
      pending_.erase(pit);
      ++counters_.command_timeouts;
      obs::Tracer::instance().end(timed_out_op, "rtu");
      if (callback) callback(false, "iec104 command timeout");
    });
  }
  pending_[key] = std::move(pending);
  ++counters_.commands_sent;
  net_.send(opt_.endpoint, key.device, command.encode());
}

void Iec104Driver::on_message(net::Message msg) {
  Iec104Asdu asdu;
  try {
    asdu = Iec104Asdu::decode(msg.payload);
  } catch (const DecodeError&) {
    return;
  }
  ++counters_.telegrams_received;
  PointKey key{msg.from, asdu.ioa};

  switch (asdu.type) {
    case Iec104Type::kMeasuredFloat: {
      if (asdu.cause != Iec104Cot::kSpontaneous &&
          asdu.cause != Iec104Cot::kInterrogated) {
        return;
      }
      auto it = measurements_.find(key);
      if (it == measurements_.end()) return;
      ++counters_.updates_reported;
      frontend_.field_update(it->second, scada::Variant{asdu.value},
                             asdu.quality_good ? scada::Quality::kGood
                                               : scada::Quality::kBad,
                             net_.now());
      return;
    }
    case Iec104Type::kSetpointFloat: {
      // Activation confirmation (positive or negative) for our command.
      if (asdu.cause != Iec104Cot::kActivationCon &&
          asdu.cause != Iec104Cot::kUnknownObject) {
        return;
      }
      auto it = pending_.find(key);
      if (it == pending_.end()) return;
      PendingCommand pending = std::move(it->second);
      pending.timeout.cancel();
      pending_.erase(it);
      obs::Tracer::instance().end(pending.op, "rtu");
      if (asdu.negative) {
        ++counters_.commands_rejected;
        if (pending.done) pending.done(false, "iec104 negative confirmation");
      } else {
        ++counters_.commands_confirmed;
        if (pending.done) pending.done(true, "");
      }
      return;
    }
    case Iec104Type::kInterrogation:
      return;  // confirmation/termination of our interrogation
  }
}

}  // namespace ss::rtu
