// CRC-16 frame sealing for the unauthenticated field protocols.
//
// The SCADA-internal channels (proxy<->replica, node<->node) carry an HMAC,
// so wire corruption is caught by the keychain layer. The field links to
// RTUs (Modbus, IEC-104) have no MAC — real devices don't share keys — so,
// like real Modbus RTU, every frame carries a CRC-16/MODBUS trailer. A
// corrupted frame then raises DecodeError at the receiver instead of being
// silently accepted as a plausible register value.
#pragma once

#include "common/bytes.h"
#include "common/serialization.h"

namespace ss::rtu {

/// Appends the CRC-16 of everything written so far and returns the frame.
inline Bytes seal_frame(Writer&& w) {
  w.u16(crc16(w.bytes()));
  return std::move(w).take();
}

/// Verifies and strips the CRC-16 trailer; throws DecodeError on mismatch.
inline ByteView check_frame(ByteView data) {
  if (data.size() < 2) throw DecodeError("frame too short for crc");
  ByteView body = data.subspan(0, data.size() - 2);
  std::uint16_t got = static_cast<std::uint16_t>(
      data[data.size() - 2] | (data[data.size() - 1] << 8));
  if (crc16(body) != got) throw DecodeError("bad frame crc");
  return body;
}

}  // namespace ss::rtu
