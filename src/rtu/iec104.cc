#include "rtu/iec104.h"

#include "rtu/frame_check.h"

namespace ss::rtu {

namespace {

bool valid_type(std::uint8_t t) {
  return t == 13 || t == 50 || t == 100;
}

bool valid_cot(std::uint8_t c) {
  return c == 3 || c == 6 || c == 7 || c == 10 || c == 20 || c == 47;
}

}  // namespace

Bytes Iec104Asdu::encode() const {
  Writer w(24);
  w.u8(static_cast<std::uint8_t>(type));
  w.u8(static_cast<std::uint8_t>(cause));
  w.boolean(negative);
  w.u16(common_address);
  w.u32(ioa);
  w.f64(value);
  w.boolean(quality_good);
  return seal_frame(std::move(w));
}

Iec104Asdu Iec104Asdu::decode(ByteView data) {
  Reader r(check_frame(data));
  Iec104Asdu asdu;
  std::uint8_t type = r.u8();
  if (!valid_type(type)) throw DecodeError("bad iec104 type id");
  asdu.type = static_cast<Iec104Type>(type);
  std::uint8_t cause = r.u8();
  if (!valid_cot(cause)) throw DecodeError("bad iec104 cot");
  asdu.cause = static_cast<Iec104Cot>(cause);
  asdu.negative = r.boolean();
  asdu.common_address = r.u16();
  asdu.ioa = r.u32();
  asdu.value = r.f64();
  asdu.quality_good = r.boolean();
  r.expect_done();
  return asdu;
}

}  // namespace ss::rtu
