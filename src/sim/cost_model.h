// Calibrated virtual-time cost model.
//
// The paper ran on two quad-core 2.27 GHz Xeon E5520 machines on Gigabit
// Ethernet, under Java 7. We charge virtual time for each network hop and
// each unit of CPU work so the discrete-event simulation reproduces the
// *shape* of Figure 8. The constants below are the single place where
// calibration lives; EXPERIMENTS.md documents the derivation and
// bench/fig8* print a sensitivity check.
//
// Derivation sketch (see EXPERIMENTS.md §Calibration):
//  * hop latency: ~150 us — GbE + 2010-era kernel/network stack + Java
//    object stream framing, consistent with BFT-SMaRt's reported LAN RTTs.
//  * per-byte: 1 Gbit/s -> 8 ns/byte on the wire; we charge 10 ns/byte to
//    fold in copy costs.
//  * Master DA processing: a few hundred microseconds per message on the
//    paper's hardware. NeoSCADA at ~1000 msg/s saturates neither system in
//    Fig 8(a); the 6% loss appears because the single-lane replicated
//    Master's *total* per-op service time approaches 1 ms.
//  * AE/handler/storage costs make the 100%-alarm case roughly twice the
//    extra work of the 50% case (the paper: 25% vs 10% overhead, "twice the
//    events go to storage").
#pragma once

#include "common/types.h"

namespace ss::sim {

struct CostModel {
  // --- network -----------------------------------------------------------
  SimTime hop_latency = micros(150);  ///< one-way, per message (GbE + Java I/O)
  SimTime ns_per_byte = 10;           ///< wire + copy cost

  // --- SCADA Master ------------------------------------------------------
  SimTime da_process = micros(500);       ///< DA routing + subscriber fan-out
  SimTime handler_process = micros(100);  ///< one handler pass over an update
  SimTime ae_event_create = micros(60);   ///< build + stamp an event
  SimTime storage_append = micros(120);   ///< persist one event record
  SimTime write_block_check = micros(250);  ///< Block handler permission check

  // --- proxies / BFT -----------------------------------------------------
  SimTime serialize_per_msg = micros(45);   ///< encode/decode a SCADA frame
  SimTime adapter_process = micros(70);     ///< demux + ContextInfo stamping
  SimTime bft_crypto_per_msg = micros(200); ///< MAC vector + protocol-object
                                            ///< (de)serialization per message
  SimTime bft_consensus_overhead = micros(150);  ///< bookkeeping per decision
  SimTime voter_process = micros(25);       ///< compare one reply digest

  // --- component parallelism --------------------------------------------
  std::uint32_t baseline_master_lanes = 8;  ///< stock NeoSCADA, 2x quad-core
  std::uint32_t replicated_master_lanes = 1;  ///< refactored single-threaded
  std::uint32_t frontend_lanes = 4;
  std::uint32_t hmi_lanes = 4;
  std::uint32_t proxy_lanes = 2;  ///< proxies stay multi-threaded

  /// The default calibrated model (paper testbed).
  static CostModel paper_testbed() { return CostModel{}; }

  /// A zero-cost model: pure protocol-logic runs (unit tests use this so
  /// virtual time only advances through explicit timers and hop latency).
  static CostModel zero() {
    CostModel m;
    m.hop_latency = 0;
    m.ns_per_byte = 0;
    m.da_process = m.handler_process = m.ae_event_create = 0;
    m.storage_append = m.write_block_check = 0;
    m.serialize_per_msg = m.adapter_process = 0;
    m.bft_crypto_per_msg = m.bft_consensus_overhead = m.voter_process = 0;
    return m;
  }

  /// Uniformly scales every CPU cost (not network) by `factor`; the fig8
  /// benches use this for the sensitivity sweep.
  CostModel scaled_cpu(double factor) const {
    CostModel m = *this;
    auto s = [factor](SimTime t) {
      return static_cast<SimTime>(static_cast<double>(t) * factor);
    };
    m.da_process = s(m.da_process);
    m.handler_process = s(m.handler_process);
    m.ae_event_create = s(m.ae_event_create);
    m.storage_append = s(m.storage_append);
    m.write_block_check = s(m.write_block_check);
    m.serialize_per_msg = s(m.serialize_per_msg);
    m.adapter_process = s(m.adapter_process);
    m.bft_crypto_per_msg = s(m.bft_crypto_per_msg);
    m.bft_consensus_overhead = s(m.bft_consensus_overhead);
    m.voter_process = s(m.voter_process);
    return m;
  }
};

}  // namespace ss::sim
