// Simulated message-passing network with fault injection.
//
// Replaces the paper's Gigabit-Ethernet testbed. Endpoints are registered by
// name; send() charges link latency plus a per-byte serialization-on-the-wire
// cost, then schedules delivery on the EventLoop. Per-directed-link policies
// inject the faults the Byzantine model allows an adversary on the network:
// drops, duplication, corruption, extra delay, and partitions.
//
// Network is the simulated backend of the net::Transport seam: components
// hold a net::Transport& and work identically over this network (virtual
// time, deterministic) and over net::SocketTransport (real UDP).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/types.h"
#include "net/transport.h"
#include "sim/event_loop.h"

namespace ss::sim {

/// One delivered network message (shared with the transport seam).
using Message = net::Message;

/// How corruption mangles a payload. Every mode produces bytes that the
/// receiver's HMAC/decode layer must reject — corruption is never allowed
/// to pass as a valid message.
enum class CorruptMode : std::uint8_t {
  kFlip = 0,      ///< xor one random byte with 0xff
  kTruncate = 1,  ///< drop a random non-zero tail (models a cut frame)
  kExtend = 2,    ///< append 1-16 random junk bytes (models a padded frame)
};

/// Fault-injection policy for one directed link (or the global default).
struct LinkPolicy {
  double drop_prob = 0.0;       ///< i.i.d. drop probability
  double dup_prob = 0.0;        ///< i.i.d. duplication probability
  double corrupt_prob = 0.0;    ///< i.i.d. corruption probability
  CorruptMode corrupt_mode = CorruptMode::kFlip;
  SimTime extra_delay = 0;      ///< fixed additional latency
  SimTime jitter = 0;           ///< uniform random additional latency [0, jitter]
  bool cut = false;             ///< hard partition: nothing gets through
  std::uint64_t drop_first_n = 0;  ///< deterministically drop the next n sends

  static LinkPolicy cut_link() {
    LinkPolicy p;
    p.cut = true;
    return p;
  }
};

/// A scripted link fault: a LinkPolicy (or a heal) addressed by endpoint
/// pattern. Patterns are exact names, a trailing-star prefix ("replica/*"),
/// or "*" for every endpoint; patterned specs expand over the endpoints
/// attached at apply time. The chaos engine re-scripts faults at runtime by
/// applying a timed sequence of these.
struct FaultSpec {
  std::string from = "*";
  std::string to = "*";
  LinkPolicy policy{};
  bool heal = false;  ///< clear the matching policies instead of setting them
};

/// Aggregate traffic counters; the fig_steps bench reads these to reproduce
/// the communication-step counts of the paper's Figures 3/4/6/7.
struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t bytes = 0;
};

class Network final : public net::Transport {
 public:
  using Handler = net::Transport::Handler;

  /// `hop_latency`: one-way latency per message; `ns_per_byte`: wire cost.
  Network(EventLoop& loop, SimTime hop_latency, SimTime ns_per_byte,
          std::uint64_t fault_seed = 0xFA111)
      : loop_(loop),
        hop_latency_(hop_latency),
        ns_per_byte_(ns_per_byte),
        rng_(fault_seed) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers (or replaces) the receive handler for `name`.
  void attach(const std::string& name, Handler handler) override {
    endpoints_[name] = std::move(handler);
  }

  /// Removes an endpoint; in-flight messages to it are silently dropped
  /// (models a crashed node).
  void detach(const std::string& name) override { endpoints_.erase(name); }

  bool attached(const std::string& name) const override {
    return endpoints_.count(name) > 0;
  }

  /// Sends payload from -> to, applying the link policy. Delivery is
  /// asynchronous even with zero latency (scheduled on the loop), so a
  /// handler never runs re-entrantly inside send().
  void send(const std::string& from, const std::string& to,
            Bytes payload) override;

  /// Forwards to the EventLoop: same event times, same tie-break order, so
  /// scheduling through the Transport seam keeps runs byte-identical.
  net::Timer schedule(SimTime delay, std::function<void()> action) override;

  SimTime now() const override { return loop_.now(); }

  /// Sets the fault policy for the directed link from -> to.
  void set_policy(const std::string& from, const std::string& to,
                  LinkPolicy policy) {
    policies_[{from, to}] = policy;
  }

  void clear_policy(const std::string& from, const std::string& to) {
    policies_.erase({from, to});
  }

  /// Applies one scripted fault: sets (or heals) the policy on every
  /// directed link matching the spec's from/to patterns.
  void apply(const FaultSpec& spec);

  /// Drops every link policy and lifts every isolation — the chaos engine's
  /// "heal the world" step before judging convergence.
  void clear_all_faults() {
    policies_.clear();
    isolated_.clear();
  }

  /// Cuts / restores every link touching `node` (both directions).
  void isolate(const std::string& node);
  void heal(const std::string& node);

  /// Names of the currently attached endpoints (pattern-expansion helper).
  std::vector<std::string> endpoints() const;

  EventLoop& loop() { return loop_; }
  const NetworkStats& stats() const { return stats_; }
  void reset_stats() { stats_ = NetworkStats{}; }

  SimTime hop_latency() const { return hop_latency_; }

 private:
  LinkPolicy* find_policy(const std::string& from, const std::string& to);
  void deliver_after(SimTime delay, Message msg);

  EventLoop& loop_;
  SimTime hop_latency_;
  SimTime ns_per_byte_;
  Rng rng_;
  std::unordered_map<std::string, Handler> endpoints_;
  std::map<std::pair<std::string, std::string>, LinkPolicy> policies_;
  std::map<std::string, bool> isolated_;
  NetworkStats stats_;
};

}  // namespace ss::sim
