#include "sim/event_loop.h"

#include <stdexcept>

namespace ss::sim {

TimerHandle EventLoop::schedule_at(SimTime when, Action action) {
  if (when < now_) when = now_;
  auto alive = std::make_shared<bool>(true);
  queue_.push(Event{when, next_seq_++, std::move(action), alive});
  return TimerHandle{std::move(alive)};
}

bool EventLoop::pop_and_run() {
  if (queue_.empty()) return false;
  if (executed_ >= budget_) {
    throw std::runtime_error("EventLoop budget exhausted (message loop?)");
  }
  // priority_queue::top() is const; move out via const_cast is UB-free here
  // because we pop immediately and Event's members are not const.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.when;
  if (*ev.alive) {
    ++executed_;
    ev.action();
    return true;
  }
  return false;  // cancelled: consumed but not counted as executed
}

std::size_t EventLoop::run() {
  std::size_t count = 0;
  while (!queue_.empty()) {
    if (pop_and_run()) ++count;
  }
  return count;
}

std::size_t EventLoop::run_until(SimTime deadline) {
  std::size_t count = 0;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    if (pop_and_run()) ++count;
  }
  if (now_ < deadline) now_ = deadline;
  return count;
}

std::size_t EventLoop::run_steps(std::size_t n) {
  std::size_t count = 0;
  while (count < n && !queue_.empty()) {
    if (pop_and_run()) ++count;
  }
  return count;
}

}  // namespace ss::sim
