// Deterministic discrete-event simulation kernel.
//
// All SMaRt-SCADA components run on one EventLoop: network deliveries,
// timers, and CPU service completions are events ordered by virtual time.
// Ties are broken by insertion sequence number, so a run is a pure function
// of (code, seeds) — the property the determinism tests rely on.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/types.h"

namespace ss::sim {

/// Handle that allows cancelling a scheduled event (e.g. a retransmission
/// timer that became moot). Cheap to copy; cancelling twice is a no-op.
class TimerHandle {
 public:
  TimerHandle() = default;
  void cancel() {
    if (alive_) *alive_ = false;
  }
  bool active() const { return alive_ && *alive_; }

 private:
  friend class EventLoop;
  explicit TimerHandle(std::shared_ptr<bool> alive)
      : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

class EventLoop {
 public:
  using Action = std::function<void()>;

  SimTime now() const { return now_; }

  /// Schedules `action` to run `delay` nanoseconds from now (delay >= 0).
  TimerHandle schedule(SimTime delay, Action action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  /// Schedules `action` at absolute virtual time `when` (>= now()).
  TimerHandle schedule_at(SimTime when, Action action);

  /// Runs events until the queue drains. Returns the number executed.
  std::size_t run();

  /// Runs events with time <= deadline; leaves later events queued and
  /// advances now() to the deadline. Returns the number executed.
  std::size_t run_until(SimTime deadline);

  /// Runs at most `n` events (for incremental stepping in tests).
  std::size_t run_steps(std::size_t n);

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

  /// Safety valve: run()/run_until() throw std::runtime_error after this
  /// many events, catching accidental infinite message loops in tests.
  void set_event_budget(std::size_t budget) { budget_ = budget; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Action action;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool pop_and_run();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t executed_ = 0;
  std::size_t budget_ = SIZE_MAX;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace ss::sim
