#include "sim/network.h"

namespace ss::sim {

LinkPolicy* Network::find_policy(const std::string& from,
                                 const std::string& to) {
  auto it = policies_.find({from, to});
  return it == policies_.end() ? nullptr : &it->second;
}

void Network::isolate(const std::string& node) { isolated_[node] = true; }

void Network::heal(const std::string& node) { isolated_.erase(node); }

void Network::deliver_after(SimTime delay, Message msg) {
  loop_.schedule(delay, [this, msg = std::move(msg)]() mutable {
    auto it = endpoints_.find(msg.to);
    if (it == endpoints_.end()) return;  // crashed or never existed
    ++stats_.delivered;
    it->second(std::move(msg));
  });
}

void Network::send(const std::string& from, const std::string& to,
                   Bytes payload) {
  ++stats_.sent;
  stats_.bytes += payload.size();

  if (isolated_.count(from) || isolated_.count(to)) {
    ++stats_.dropped;
    return;
  }

  SimTime delay =
      hop_latency_ + static_cast<SimTime>(payload.size()) * ns_per_byte_;

  if (LinkPolicy* p = find_policy(from, to)) {
    if (p->cut) {
      ++stats_.dropped;
      return;
    }
    if (p->drop_first_n > 0) {
      --p->drop_first_n;
      ++stats_.dropped;
      return;
    }
    if (p->drop_prob > 0 && rng_.chance(p->drop_prob)) {
      ++stats_.dropped;
      return;
    }
    if (p->corrupt_prob > 0 && !payload.empty() &&
        rng_.chance(p->corrupt_prob)) {
      payload[rng_.below(payload.size())] ^= 0xff;
      ++stats_.corrupted;
    }
    delay += p->extra_delay;
    if (p->jitter > 0) {
      delay += static_cast<SimTime>(
          rng_.below(static_cast<std::uint64_t>(p->jitter) + 1));
    }
    if (p->dup_prob > 0 && rng_.chance(p->dup_prob)) {
      ++stats_.duplicated;
      deliver_after(delay + 1, Message{from, to, payload});
    }
  }

  deliver_after(delay, Message{from, to, std::move(payload)});
}

}  // namespace ss::sim
