#include "sim/network.h"

namespace ss::sim {

LinkPolicy* Network::find_policy(const std::string& from,
                                 const std::string& to) {
  auto it = policies_.find({from, to});
  return it == policies_.end() ? nullptr : &it->second;
}

namespace {

bool pattern_matches(const std::string& pattern, const std::string& name) {
  if (pattern == "*") return true;
  if (!pattern.empty() && pattern.back() == '*') {
    return name.compare(0, pattern.size() - 1, pattern, 0,
                        pattern.size() - 1) == 0;
  }
  return pattern == name;
}

bool is_pattern(const std::string& s) {
  return !s.empty() && s.back() == '*';
}

}  // namespace

std::vector<std::string> Network::endpoints() const {
  std::vector<std::string> names;
  names.reserve(endpoints_.size());
  for (const auto& [name, handler] : endpoints_) names.push_back(name);
  return names;
}

void Network::apply(const FaultSpec& spec) {
  // Exact -> exact addresses the pair directly, so faults can be scripted
  // onto endpoints that are momentarily detached (a crashed replica).
  if (!is_pattern(spec.from) && !is_pattern(spec.to)) {
    if (spec.heal) {
      clear_policy(spec.from, spec.to);
    } else {
      set_policy(spec.from, spec.to, spec.policy);
    }
    return;
  }
  for (const auto& [from, from_handler] : endpoints_) {
    if (!pattern_matches(spec.from, from)) continue;
    for (const auto& [to, to_handler] : endpoints_) {
      if (from == to || !pattern_matches(spec.to, to)) continue;
      if (spec.heal) {
        clear_policy(from, to);
      } else {
        set_policy(from, to, spec.policy);
      }
    }
  }
}

void Network::isolate(const std::string& node) { isolated_[node] = true; }

void Network::heal(const std::string& node) { isolated_.erase(node); }

namespace {

/// Adapts sim::TimerHandle to the transport seam's Timer handle.
class SimTimerImpl final : public net::Timer::Impl {
 public:
  explicit SimTimerImpl(TimerHandle handle) : handle_(std::move(handle)) {}
  void cancel() override { handle_.cancel(); }
  bool active() const override { return handle_.active(); }

 private:
  TimerHandle handle_;
};

}  // namespace

net::Timer Network::schedule(SimTime delay, std::function<void()> action) {
  return net::Timer(
      std::make_shared<SimTimerImpl>(loop_.schedule(delay, std::move(action))));
}

void Network::deliver_after(SimTime delay, Message msg) {
  loop_.schedule(delay, [this, msg = std::move(msg)]() mutable {
    auto it = endpoints_.find(msg.to);
    if (it == endpoints_.end()) return;  // crashed or never existed
    ++stats_.delivered;
    it->second(std::move(msg));
  });
}

void Network::send(const std::string& from, const std::string& to,
                   Bytes payload) {
  ++stats_.sent;
  stats_.bytes += payload.size();

  if (isolated_.count(from) || isolated_.count(to)) {
    ++stats_.dropped;
    return;
  }

  SimTime delay =
      hop_latency_ + static_cast<SimTime>(payload.size()) * ns_per_byte_;

  if (LinkPolicy* p = find_policy(from, to)) {
    if (p->cut) {
      ++stats_.dropped;
      return;
    }
    if (p->drop_first_n > 0) {
      --p->drop_first_n;
      ++stats_.dropped;
      return;
    }
    if (p->drop_prob > 0 && rng_.chance(p->drop_prob)) {
      ++stats_.dropped;
      return;
    }
    if (p->corrupt_prob > 0 && !payload.empty() &&
        rng_.chance(p->corrupt_prob)) {
      switch (p->corrupt_mode) {
        case CorruptMode::kFlip:
          payload[rng_.below(payload.size())] ^= 0xff;
          break;
        case CorruptMode::kTruncate:
          // Keep a strict prefix (possibly empty); a truncated frame must
          // fail the receiver's length/MAC checks, never parse as valid.
          payload.resize(rng_.below(payload.size()));
          break;
        case CorruptMode::kExtend: {
          std::size_t extra = 1 + rng_.below(16);
          for (std::size_t i = 0; i < extra; ++i) {
            payload.push_back(static_cast<std::uint8_t>(rng_.below(256)));
          }
          break;
        }
      }
      ++stats_.corrupted;
    }
    delay += p->extra_delay;
    if (p->jitter > 0) {
      delay += static_cast<SimTime>(
          rng_.below(static_cast<std::uint64_t>(p->jitter) + 1));
    }
    if (p->dup_prob > 0 && rng_.chance(p->dup_prob)) {
      ++stats_.duplicated;
      deliver_after(delay + 1, Message{from, to, payload});
    }
  }

  deliver_after(delay, Message{from, to, std::move(payload)});
}

}  // namespace ss::sim
