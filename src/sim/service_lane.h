// CPU service-time modelling.
//
// The paper attributes part of SMaRt-SCADA's overhead to the refactored,
// single-threaded SCADA Master ("it does not take full advantage of
// multi-core CPUs", §V-B). We model a component's CPU as a bank of k
// identical service lanes: work submitted to the bank starts on the earliest
// free lane and completes after its cost. The baseline NeoSCADA Master runs
// with k = 8 (two quad-core Xeons, as in the paper's testbed); the
// deterministic SMaRt-SCADA Master runs with k = 1.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "sim/event_loop.h"

namespace ss::sim {

class ServiceLanes {
 public:
  ServiceLanes(EventLoop& loop, std::uint32_t lanes)
      : loop_(loop), free_at_(std::max<std::uint32_t>(lanes, 1), 0) {}

  std::uint32_t lanes() const {
    return static_cast<std::uint32_t>(free_at_.size());
  }

  /// Schedules `done` to run when a lane has spent `cost` ns on this work
  /// item. Queueing delay is implicit: if every lane is busy the work waits
  /// for the earliest completion.
  void submit(SimTime cost, EventLoop::Action done) {
    auto it = std::min_element(free_at_.begin(), free_at_.end());
    SimTime start = std::max(*it, loop_.now());
    SimTime finish = start + cost;
    *it = finish;
    busy_ns_ += cost;
    ++jobs_;
    loop_.schedule_at(finish, std::move(done));
  }

  /// Time at which the next submitted job could start (for backlog probes).
  SimTime earliest_free() const {
    return *std::min_element(free_at_.begin(), free_at_.end());
  }

  /// Total CPU-time consumed and number of jobs, for utilization reports.
  SimTime busy_ns() const { return busy_ns_; }
  std::uint64_t jobs() const { return jobs_; }

 private:
  EventLoop& loop_;
  std::vector<SimTime> free_at_;
  SimTime busy_ns_ = 0;
  std::uint64_t jobs_ = 0;
};

}  // namespace ss::sim
