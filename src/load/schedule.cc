#include "load/schedule.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace ss::load {

namespace {

/// Exponential inter-arrival draw for a Poisson process of `rate` events/s.
SimTime exponential_gap(Rng& rng, double rate_per_sec) {
  // 1 - uniform() is in (0, 1], so the log argument never hits zero.
  double gap_sec = -std::log(1.0 - rng.uniform()) / rate_per_sec;
  return static_cast<SimTime>(gap_sec * static_cast<double>(kNanosPerSec));
}

bool in_burst(const ScheduleOptions& opt, SimTime t) {
  if (opt.burst_period <= 0 || opt.burst_length <= 0) return false;
  return t % opt.burst_period < opt.burst_length;
}

void fixed_rate_stream(const ScheduleOptions& opt, std::uint32_t client,
                       double client_rate, Rng& rng,
                       std::vector<Arrival>& out) {
  SimTime period =
      static_cast<SimTime>(static_cast<double>(kNanosPerSec) / client_rate);
  if (period <= 0) period = 1;
  // Random phase per client: N fixed-rate clients with independent phases
  // form a smooth aggregate instead of N-wide synchronized spikes.
  SimTime phase = static_cast<SimTime>(rng.below(
      static_cast<std::uint64_t>(period)));
  for (SimTime t = phase; t < opt.duration; t += period) {
    out.push_back(Arrival{t, client, 0});
  }
}

void poisson_stream(const ScheduleOptions& opt, std::uint32_t client,
                    double client_rate, Rng& rng, std::vector<Arrival>& out) {
  for (SimTime t = exponential_gap(rng, client_rate); t < opt.duration;
       t += exponential_gap(rng, client_rate)) {
    out.push_back(Arrival{t, client, 0});
  }
}

void burst_stream(const ScheduleOptions& opt, std::uint32_t client,
                  double client_rate, Rng& rng, std::vector<Arrival>& out) {
  // Thinning: draw a Poisson stream at the peak rate, keep every arrival
  // inside a burst window and 1/multiplier of those outside. The kept
  // stream is exactly the piecewise-rate process.
  double multiplier = std::max(1.0, opt.burst_multiplier);
  double peak = client_rate * multiplier;
  for (SimTime t = exponential_gap(rng, peak); t < opt.duration;
       t += exponential_gap(rng, peak)) {
    if (in_burst(opt, t) || rng.chance(1.0 / multiplier)) {
      out.push_back(Arrival{t, client, 0});
    }
  }
}

}  // namespace

const char* arrival_shape_name(ArrivalShape shape) {
  switch (shape) {
    case ArrivalShape::kFixedRate: return "fixed";
    case ArrivalShape::kPoisson: return "poisson";
    case ArrivalShape::kBurst: return "burst";
  }
  return "unknown";
}

std::optional<ArrivalShape> arrival_shape_from_name(std::string_view name) {
  if (name == "fixed") return ArrivalShape::kFixedRate;
  if (name == "poisson") return ArrivalShape::kPoisson;
  if (name == "burst") return ArrivalShape::kBurst;
  return std::nullopt;
}

std::vector<Arrival> generate_schedule(const ScheduleOptions& options) {
  std::vector<Arrival> arrivals;
  if (options.rate_per_sec <= 0 || options.duration <= 0 ||
      options.clients == 0) {
    return arrivals;
  }
  arrivals.reserve(static_cast<std::size_t>(
      options.rate_per_sec * static_cast<double>(options.duration) /
          static_cast<double>(kNanosPerSec) +
      options.clients));

  double client_rate =
      options.rate_per_sec / static_cast<double>(options.clients);
  std::uint64_t sm = options.seed;
  for (std::uint32_t client = 0; client < options.clients; ++client) {
    // Independent per-client stream seeds expanded from the user seed, so
    // adding a client never perturbs the existing clients' streams.
    Rng rng(splitmix64(sm));
    switch (options.shape) {
      case ArrivalShape::kFixedRate:
        fixed_rate_stream(options, client, client_rate, rng, arrivals);
        break;
      case ArrivalShape::kPoisson:
        poisson_stream(options, client, client_rate, rng, arrivals);
        break;
      case ArrivalShape::kBurst:
        burst_stream(options, client, client_rate, rng, arrivals);
        break;
    }
  }

  std::sort(arrivals.begin(), arrivals.end(),
            [](const Arrival& a, const Arrival& b) {
              if (a.at != b.at) return a.at < b.at;
              return a.client < b.client;
            });
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    arrivals[i].index = static_cast<std::uint64_t>(i);
  }
  return arrivals;
}

}  // namespace ss::load
