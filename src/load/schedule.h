// Deterministic open-loop arrival schedules.
//
// An open-loop load generator decides *when* every operation is sent before
// the system under test gets a vote: arrival times are a pure function of
// the schedule options (shape, rate, client count, seed), never of reply
// latency. That is the difference between measuring a system and measuring
// the generator's politeness — a closed-loop driver that waits for each
// reply silently stretches its own schedule whenever the system queues, so
// queueing delay disappears from the data (coordinated omission). Here the
// whole schedule is materialised up front; the driver (driver.h) timestamps
// each operation at its *scheduled* send time, so backpressure shows up as
// latency, not as missing samples.
//
// Three shapes cover the paper's fig8 workloads and the storm scenarios the
// overload campaigns need:
//  * kFixedRate — evenly spaced arrivals per client, seeded random phase per
//    client (the Kirsch et al. country-scale steady stream);
//  * kPoisson  — exponential inter-arrivals per client (memoryless sensor
//    and operator traffic);
//  * kBurst    — a Poisson base stream whose rate multiplies during
//    periodic burst windows (alarm storms, fig8b at 10-100x).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace ss::load {

enum class ArrivalShape : std::uint8_t { kFixedRate = 0, kPoisson, kBurst };

const char* arrival_shape_name(ArrivalShape shape);
std::optional<ArrivalShape> arrival_shape_from_name(std::string_view name);

struct ScheduleOptions {
  ArrivalShape shape = ArrivalShape::kFixedRate;
  /// Aggregate arrival rate across all clients, operations per second.
  double rate_per_sec = 1000.0;
  SimTime duration = seconds(10);
  /// Virtual clients; the aggregate rate is split evenly across them and
  /// each client gets an independent seeded stream.
  std::uint32_t clients = 1;
  std::uint64_t seed = 0x10adull;

  // kBurst only: during each [k*burst_period, k*burst_period + burst_length)
  // window the per-client rate is multiplied by burst_multiplier.
  double burst_multiplier = 10.0;
  SimTime burst_period = seconds(2);
  SimTime burst_length = millis(200);
};

/// One scheduled operation. `at` is nanoseconds from the schedule epoch (the
/// driver anchors the epoch at start time); `index` is dense in schedule
/// order, so drivers can use it as an operation key.
struct Arrival {
  SimTime at = 0;
  std::uint32_t client = 0;
  std::uint64_t index = 0;
};

/// Materialises the full arrival list, sorted by (time, client), with dense
/// indices. Byte-identical output for identical options — the determinism
/// the sim-backend load tests and the chaos-style replay of a load run rely
/// on.
std::vector<Arrival> generate_schedule(const ScheduleOptions& options);

}  // namespace ss::load
