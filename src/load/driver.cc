#include "load/driver.h"

#include <algorithm>
#include <utility>

namespace ss::load {

OpenLoopDriver::OpenLoopDriver(net::Transport& net,
                               std::vector<Arrival> schedule, Issuer issuer,
                               DriverOptions options)
    : net_(net),
      schedule_(std::move(schedule)),
      issuer_(std::move(issuer)),
      opt_(std::move(options)) {
  outcomes_.assign(schedule_.size(), Outcome::kPending);
  stats_.scheduled = schedule_.size();
  obs_source_ = obs::Registry::instance().add_source(
      opt_.metrics_prefix, [this](const obs::Registry::Emit& emit) {
        emit("scheduled", static_cast<double>(stats_.scheduled));
        emit("issued", static_cast<double>(stats_.issued));
        emit("ok", static_cast<double>(stats_.ok));
        emit("failed", static_cast<double>(stats_.failed));
        emit("timeouts", static_cast<double>(stats_.timeouts));
        emit("duplicates", static_cast<double>(stats_.duplicates));
        emit("late_replies", static_cast<double>(stats_.late_replies));
        emit("latency_p50_ns", static_cast<double>(latency_.percentile(50)));
        emit("latency_p99_ns", static_cast<double>(latency_.percentile(99)));
        emit("goodput_per_sec", goodput_per_sec());
      });
}

OpenLoopDriver::~OpenLoopDriver() {
  *alive_ = false;
  pump_timer_.cancel();
  sweep_timer_.cancel();
}

void OpenLoopDriver::start() {
  if (started_ || schedule_.empty()) {
    started_ = true;
    return;
  }
  started_ = true;
  epoch_ = net_.now();
  last_activity_ = epoch_;
  arm_pump();
}

double OpenLoopDriver::goodput_per_sec() const {
  SimTime span = active_span();
  if (span <= 0) return 0.0;
  return static_cast<double>(stats_.ok) /
         (static_cast<double>(span) / static_cast<double>(kNanosPerSec));
}

void OpenLoopDriver::pump() {
  // Issue everything due. A pump that fell behind (a long poll iteration, a
  // burst window) issues the whole backlog now; the slip is recorded in
  // send_lag and the latency origin stays the scheduled time either way.
  while (issued_ < schedule_.size()) {
    SimTime now_rel = net_.now() - epoch_;
    const Arrival& arrival = schedule_[issued_];
    if (arrival.at > now_rel) break;
    ++issued_;
    ++stats_.issued;
    send_lag_.record(now_rel - arrival.at);
    last_activity_ = net_.now();
    std::shared_ptr<bool> alive = alive_;
    const std::uint64_t index = arrival.index;
    issuer_(arrival, [this, alive, index](bool ok) {
      if (!*alive) return;
      complete(index, ok);
    });
  }
  arm_pump();
  arm_sweep();
}

void OpenLoopDriver::arm_pump() {
  if (issued_ >= schedule_.size()) return;
  SimTime target = epoch_ + schedule_[issued_].at;
  SimTime delay = std::max<SimTime>(0, target - net_.now());
  pump_timer_ = net_.schedule(delay, [this] { pump(); });
}

void OpenLoopDriver::sweep_timeouts() {
  SimTime now = net_.now();
  while (sweep_cursor_ < issued_) {
    if (outcomes_[sweep_cursor_] != Outcome::kPending) {
      ++sweep_cursor_;
      continue;
    }
    // Deadlines are monotone in index (schedule order + constant timeout),
    // so the first pending op that has not expired ends the sweep.
    if (epoch_ + schedule_[sweep_cursor_].at + opt_.op_timeout > now) break;
    resolve(sweep_cursor_, Outcome::kTimeout);
    ++sweep_cursor_;
  }
  arm_sweep();
}

void OpenLoopDriver::arm_sweep() {
  sweep_timer_.cancel();
  while (sweep_cursor_ < issued_ &&
         outcomes_[sweep_cursor_] != Outcome::kPending) {
    ++sweep_cursor_;
  }
  if (sweep_cursor_ >= issued_ && issued_ >= schedule_.size()) return;
  if (sweep_cursor_ >= issued_) return;  // pump re-arms after next issue
  SimTime deadline = epoch_ + schedule_[sweep_cursor_].at + opt_.op_timeout;
  SimTime delay = std::max<SimTime>(0, deadline - net_.now());
  sweep_timer_ = net_.schedule(delay, [this] { sweep_timeouts(); });
}

void OpenLoopDriver::complete(std::uint64_t index, bool ok) {
  if (index >= outcomes_.size()) return;
  last_activity_ = net_.now();
  Outcome& outcome = outcomes_[index];
  if (outcome == Outcome::kTimeout) {
    ++stats_.late_replies;
    return;
  }
  if (outcome != Outcome::kPending) {
    ++stats_.duplicates;
    return;
  }
  resolve(index, ok ? Outcome::kOk : Outcome::kFailed);
}

void OpenLoopDriver::resolve(std::uint64_t index, Outcome outcome) {
  outcomes_[index] = outcome;
  ++resolved_;
  last_activity_ = net_.now();
  switch (outcome) {
    case Outcome::kOk:
      ++stats_.ok;
      latency_.record(net_.now() - (epoch_ + schedule_[index].at));
      break;
    case Outcome::kFailed:
      ++stats_.failed;
      break;
    case Outcome::kTimeout:
      ++stats_.timeouts;
      break;
    case Outcome::kPending:
      break;
  }
}

}  // namespace ss::load
