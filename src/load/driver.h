// Open-loop, coordinated-omission-safe load driver over the Transport seam.
//
// The driver walks a materialised arrival schedule (schedule.h) and launches
// each operation through a caller-supplied Issuer at (or as soon as possible
// after) its scheduled send time — it never waits for replies. Every
// latency sample is measured from the operation's *scheduled* send time, so
// when the system under test queues, stalls, or drops, the delay lands in
// the histogram instead of silently stretching the workload: a server that
// freezes for two seconds owes two-second latencies to every arrival that
// was scheduled inside the freeze, and that is exactly what gets recorded.
//
// Per-operation outcome tracking distinguishes
//  * ok        — first completion reported success;
//  * failed    — first completion reported failure (e.g. a write denied or
//                resolved by the logical-timeout protocol);
//  * timeout   — no completion within op_timeout of the scheduled send;
//  * and counts duplicates (completions after the first) and late replies
//    (completions after the driver already recorded a timeout).
//
// The driver runs on whatever Transport backend it is handed: sim::Network
// (deterministic tests, virtual time) or net::SocketTransport (the
// multi-process UDP deployment, wall-clock time — see bench/load_openloop).
// Like everything else on the seam it is single-threaded: issue, completion,
// and timeout paths all run on the transport's loop thread.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "load/schedule.h"
#include "net/transport.h"
#include "obs/metrics.h"

namespace ss::load {

enum class Outcome : std::uint8_t { kPending = 0, kOk, kFailed, kTimeout };

struct DriverOptions {
  /// An operation with no completion this long after its *scheduled* send
  /// time is recorded as a timeout (late completions are still counted).
  SimTime op_timeout = seconds(5);
  /// obs::Registry histogram prefix: "<prefix>.latency_ns" (scheduled-send
  /// to success) and "<prefix>.send_lag_ns" (scheduled to actual send).
  std::string metrics_prefix = "load";
};

struct DriverStats {
  std::uint64_t scheduled = 0;  ///< operations in the schedule
  std::uint64_t issued = 0;
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t duplicates = 0;    ///< completions after the first
  std::uint64_t late_replies = 0;  ///< completions after a recorded timeout
};

class OpenLoopDriver {
 public:
  /// Resolves one operation; the first call fixes the outcome. May be
  /// invoked any number of times (duplicates are counted, not failures) and
  /// safely outlives the driver.
  using CompletionFn = std::function<void(bool ok)>;
  /// Launches one operation. Called on the transport loop at the arrival's
  /// send time; must not block.
  using Issuer = std::function<void(const Arrival&, CompletionFn done)>;

  OpenLoopDriver(net::Transport& net, std::vector<Arrival> schedule,
                 Issuer issuer, DriverOptions options = {});
  ~OpenLoopDriver();

  OpenLoopDriver(const OpenLoopDriver&) = delete;
  OpenLoopDriver& operator=(const OpenLoopDriver&) = delete;

  /// Anchors the schedule epoch at net.now() and arms the pump. Call once.
  void start();

  /// True once every scheduled operation is resolved (ok/failed/timeout).
  bool finished() const {
    return issued_ == schedule_.size() && resolved_ == schedule_.size();
  }

  const DriverStats& stats() const { return stats_; }
  const std::vector<Arrival>& schedule() const { return schedule_; }
  SimTime epoch() const { return epoch_; }

  /// Transport time from epoch to the last issue/resolution (the measured
  /// run length; 0 before start).
  SimTime active_span() const { return last_activity_ - epoch_; }

  /// Successful operations per second of active span.
  double goodput_per_sec() const;

  /// Scheduled-send -> success latency histogram (ns). The driver also
  /// registers an obs snapshot source under metrics_prefix exporting the
  /// counters and latency percentiles.
  const obs::Histogram& latency() const { return latency_; }
  /// Scheduled-send -> actual-send pump slip (ns).
  const obs::Histogram& send_lag() const { return send_lag_; }

 private:
  void pump();
  void arm_pump();
  void sweep_timeouts();
  void arm_sweep();
  void complete(std::uint64_t index, bool ok);
  void resolve(std::uint64_t index, Outcome outcome);

  net::Transport& net_;
  std::vector<Arrival> schedule_;
  Issuer issuer_;
  DriverOptions opt_;

  SimTime epoch_ = 0;
  SimTime last_activity_ = 0;
  std::size_t issued_ = 0;    ///< schedule prefix already launched
  std::size_t resolved_ = 0;  ///< operations with a final outcome
  std::size_t sweep_cursor_ = 0;  ///< lowest index that may still time out
  std::vector<Outcome> outcomes_;
  net::Timer pump_timer_;
  net::Timer sweep_timer_;
  bool started_ = false;

  obs::Histogram latency_;
  obs::Histogram send_lag_;
  obs::SourceHandle obs_source_;

  DriverStats stats_;
  /// Completion callbacks may outlive the driver (a reply arriving after
  /// teardown); they check this guard before touching it.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace ss::load
