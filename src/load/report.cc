#include "load/report.h"

#include <cstdio>

namespace ss::load {

namespace {

double to_us(std::int64_t ns) { return static_cast<double>(ns) / 1000.0; }

void write_latency(std::FILE* out, const char* key,
                   const LatencySummary& summary) {
  std::fprintf(out,
               "\"%s\": {\"samples\": %llu, \"min_us\": %.2f, "
               "\"mean_us\": %.2f, \"p50_us\": %.2f, \"p90_us\": %.2f, "
               "\"p99_us\": %.2f, \"p999_us\": %.2f, \"max_us\": %.2f}",
               key, static_cast<unsigned long long>(summary.samples),
               summary.min_us, summary.mean_us, summary.p50_us, summary.p90_us,
               summary.p99_us, summary.p999_us, summary.max_us);
}

}  // namespace

LatencySummary LatencySummary::from_histogram(const obs::Histogram& h) {
  LatencySummary s;
  s.samples = h.count();
  s.min_us = to_us(h.min());
  s.mean_us = h.mean() / 1000.0;
  s.p50_us = to_us(h.percentile(50));
  s.p90_us = to_us(h.percentile(90));
  s.p99_us = to_us(h.percentile(99));
  s.p999_us = to_us(h.percentile(99.9));
  s.max_us = to_us(h.max());
  return s;
}

RunRecord RunRecord::from_driver(std::string name, std::string op,
                                 const ScheduleOptions& schedule,
                                 const OpenLoopDriver& driver) {
  RunRecord r;
  r.name = std::move(name);
  r.op = std::move(op);
  r.schedule = schedule;
  r.stats = driver.stats();
  r.run_seconds = static_cast<double>(driver.active_span()) /
                  static_cast<double>(kNanosPerSec);
  r.goodput_per_sec = driver.goodput_per_sec();
  r.latency = LatencySummary::from_histogram(driver.latency());
  r.send_lag = LatencySummary::from_histogram(driver.send_lag());
  return r;
}

std::string LoadReport::write(const std::string& dir) const {
  std::string path = dir + "/BENCH_" + bench_ + ".json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "load report: cannot write %s\n", path.c_str());
    return "";
  }
  std::fprintf(out, "{\n  \"bench\": \"%s\",\n  \"records\": [", bench_.c_str());
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const RunRecord& r = records_[i];
    std::fprintf(out, "%s\n    {\"name\": \"%s\", \"op\": \"%s\", ",
                 i == 0 ? "" : ",", r.name.c_str(), r.op.c_str());
    std::fprintf(out,
                 "\"shape\": \"%s\", \"rate_per_sec\": %.2f, "
                 "\"duration_s\": %.3f, \"clients\": %u, \"seed\": %llu,\n",
                 arrival_shape_name(r.schedule.shape), r.schedule.rate_per_sec,
                 static_cast<double>(r.schedule.duration) /
                     static_cast<double>(kNanosPerSec),
                 r.schedule.clients,
                 static_cast<unsigned long long>(r.schedule.seed));
    std::fprintf(out,
                 "     \"scheduled\": %llu, \"issued\": %llu, \"ok\": %llu, "
                 "\"failed\": %llu, \"timeouts\": %llu, \"duplicates\": %llu, "
                 "\"late_replies\": %llu,\n",
                 static_cast<unsigned long long>(r.stats.scheduled),
                 static_cast<unsigned long long>(r.stats.issued),
                 static_cast<unsigned long long>(r.stats.ok),
                 static_cast<unsigned long long>(r.stats.failed),
                 static_cast<unsigned long long>(r.stats.timeouts),
                 static_cast<unsigned long long>(r.stats.duplicates),
                 static_cast<unsigned long long>(r.stats.late_replies));
    std::fprintf(out,
                 "     \"run_seconds\": %.3f, \"goodput_per_sec\": %.2f, "
                 "\"timeout_rate\": %.6f,\n     ",
                 r.run_seconds, r.goodput_per_sec, r.timeout_rate());
    write_latency(out, "latency_us", r.latency);
    std::fprintf(out, ",\n     ");
    write_latency(out, "send_lag_us", r.send_lag);
    for (const auto& [key, value] : r.extras) {
      std::fprintf(out, ",\n     \"%s\": %.3f", key.c_str(), value);
    }
    std::fprintf(out, "}");
  }
  std::fprintf(out, "\n  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
  return path;
}

void LoadReport::print(const RunRecord& r) {
  std::printf(
      "%-24s %s/%s rate %8.1f/s x%us  ok %llu  to %llu  fail %llu  "
      "goodput %8.1f/s  p50 %8.1f us  p99 %9.1f us  p99.9 %9.1f us\n",
      r.name.c_str(), r.op.c_str(), arrival_shape_name(r.schedule.shape),
      r.schedule.rate_per_sec, r.schedule.clients,
      static_cast<unsigned long long>(r.stats.ok),
      static_cast<unsigned long long>(r.stats.timeouts),
      static_cast<unsigned long long>(r.stats.failed), r.goodput_per_sec,
      r.latency.p50_us, r.latency.p99_us, r.latency.p999_us);
}

}  // namespace ss::load
