// BENCH_load.json report writer for open-loop load runs.
//
// One record per (workload, configuration) run: the schedule parameters
// that make the run reproducible, the outcome counters, goodput and
// timeout rate, and the full latency distribution (p50/p90/p99/p99.9,
// min/mean/max) read out of the driver's obs histograms. The schema is
// validated by the CI load-smoke job, so it is part of the repo's contract:
// extend it, don't rename fields.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "load/driver.h"
#include "load/schedule.h"
#include "obs/metrics.h"

namespace ss::load {

/// Latency distribution summary in microseconds, extracted from an
/// obs::Histogram of nanosecond samples.
struct LatencySummary {
  std::uint64_t samples = 0;
  double min_us = 0;
  double mean_us = 0;
  double p50_us = 0;
  double p90_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  double max_us = 0;

  static LatencySummary from_histogram(const obs::Histogram& h);
};

struct RunRecord {
  std::string name;
  std::string op;  ///< workload kind ("write", "update", "mixed", ...)
  ScheduleOptions schedule;
  DriverStats stats;
  double run_seconds = 0;       ///< active span of the run
  double goodput_per_sec = 0;   ///< successful ops per active second
  LatencySummary latency;       ///< scheduled-send -> success
  LatencySummary send_lag;      ///< scheduled-send -> actual send
  /// Free-form numeric extras appended to the record (e.g. transport RX
  /// batching stats); name -> value.
  std::vector<std::pair<std::string, double>> extras;

  /// Fills the measurement fields from a finished (or deadline-stopped)
  /// driver.
  static RunRecord from_driver(std::string name, std::string op,
                               const ScheduleOptions& schedule,
                               const OpenLoopDriver& driver);

  double timeout_rate() const {
    return stats.scheduled == 0
               ? 0.0
               : static_cast<double>(stats.timeouts) /
                     static_cast<double>(stats.scheduled);
  }
};

class LoadReport {
 public:
  /// `bench` names the output file: BENCH_<bench>.json.
  explicit LoadReport(std::string bench = "load") : bench_(std::move(bench)) {}

  void add(RunRecord record) { records_.push_back(std::move(record)); }
  const std::vector<RunRecord>& records() const { return records_; }

  /// Writes BENCH_<bench>.json into `dir` (default: working directory).
  /// Returns the path written, or an empty string on I/O failure.
  std::string write(const std::string& dir = ".") const;

  /// One-line human summary of a record to stdout.
  static void print(const RunRecord& record);

 private:
  std::string bench_;
  std::vector<RunRecord> records_;
};

}  // namespace ss::load
