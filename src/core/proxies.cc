#include "core/proxies.h"

namespace ss::core {

ComponentProxy::ComponentProxy(net::Transport& net, GroupConfig group,
                               ClientId id, const crypto::Keychain& keys,
                               ProxyOptions options)
    : net_(net),
      keys_(keys),
      opt_(std::move(options)),
      client_(net, group, id, keys, opt_.client),
      voter_(group,
             [this](const scada::ScadaMessage& msg) { deliver(msg); },
             opt_.voter),
      lanes_(net, opt_.lanes) {
  net_.attach(opt_.endpoint, [this](net::Message m) {
    on_component_message(std::move(m));
  });
  client_.set_push_handler([this](ReplicaId replica, Bytes payload) {
    lanes_.submit(opt_.per_message_cost,
                  [this, replica, payload = std::move(payload)] {
                    voter_.offer(replica, payload);
                  });
  });
}

ComponentProxy::~ComponentProxy() { net_.detach(opt_.endpoint); }

void ComponentProxy::on_component_message(net::Message msg) {
  std::string sender;
  auto decoded = receive_scada(keys_, opt_.endpoint, msg, &sender);
  if (!decoded.has_value() || sender != opt_.component_endpoint) {
    ++stats_.rejected;
    return;
  }
  lanes_.submit(opt_.per_message_cost, [this, scada_msg = *decoded] {
    ++stats_.forwarded;
    client_.invoke_ordered(CoreRequest::scada(scada_msg).encode());
  });
}

void ComponentProxy::deliver(const scada::ScadaMessage& msg) {
  ++stats_.delivered;
  send_scada(net_, keys_, opt_.endpoint, opt_.component_endpoint, msg);
}

}  // namespace ss::core
