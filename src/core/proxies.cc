#include "core/proxies.h"

#include "obs/trace.h"

namespace ss::core {

ComponentProxy::ComponentProxy(net::Transport& net, GroupConfig group,
                               ClientId id, const crypto::Keychain& keys,
                               ProxyOptions options)
    : net_(net),
      keys_(keys),
      opt_(std::move(options)),
      client_(net, group, id, keys, opt_.client),
      voter_(group,
             [this](const scada::ScadaMessage& msg) { deliver(msg); },
             opt_.voter),
      lanes_(net, opt_.lanes) {
  net_.attach(opt_.endpoint, [this](net::Message m) {
    on_component_message(std::move(m));
  });
  client_.set_push_handler(
      [this](ReplicaId replica, std::uint64_t seq, Bytes payload) {
        lanes_.submit(opt_.per_message_cost,
                      [this, replica, seq, payload = std::move(payload)] {
                        voter_.offer(replica, payload, seq);
                      });
      });
}

ComponentProxy::~ComponentProxy() { net_.detach(opt_.endpoint); }

void ComponentProxy::on_component_message(net::Message msg) {
  std::string sender;
  auto decoded = receive_scada(keys_, opt_.endpoint, msg, &sender);
  if (!decoded.has_value() || sender != opt_.component_endpoint) {
    ++stats_.rejected;
    return;
  }
  lanes_.submit(opt_.per_message_cost, [this, scada_msg = *decoded] {
    ++stats_.forwarded;
    // The agreement span covers the whole ordered round: submission to
    // the replicas through the f+1-voted reply back at this proxy.
    const OpId op = scada::context_of(scada_msg).op;
    obs::Tracer::instance().begin(op, "agreement", opt_.endpoint.c_str());
    client_.invoke_ordered(
        CoreRequest::scada(scada_msg).encode(),
        [op](Bytes) { obs::Tracer::instance().end(op, "agreement"); });
  });
}

void ComponentProxy::deliver(const scada::ScadaMessage& msg) {
  ++stats_.delivered;
  send_scada(net_, keys_, opt_.endpoint, opt_.component_endpoint, msg);
}

}  // namespace ss::core
