#include "core/nodes.h"

namespace ss::core {

HmiNode::HmiNode(net::Transport& net, const crypto::Keychain& keys,
                 scada::Hmi& hmi, NodeOptions options)
    : net_(net),
      keys_(keys),
      hmi_(hmi),
      opt_(std::move(options)),
      lanes_(net, opt_.lanes) {
  hmi_.set_master_sink([this](const scada::ScadaMessage& msg) {
    send_scada(net_, keys_, opt_.endpoint, opt_.peer, msg);
  });
  net_.attach(opt_.endpoint, [this](net::Message m) {
    std::string sender;
    auto decoded = receive_scada(keys_, opt_.endpoint, m, &sender);
    if (!decoded.has_value() || sender != opt_.peer) return;
    lanes_.submit(opt_.per_message_cost,
                  [this, msg = std::move(*decoded)] { hmi_.handle(msg); });
  });
}

HmiNode::~HmiNode() { net_.detach(opt_.endpoint); }

FrontendNode::FrontendNode(net::Transport& net, const crypto::Keychain& keys,
                           scada::Frontend& frontend, NodeOptions options)
    : net_(net),
      keys_(keys),
      frontend_(frontend),
      opt_(std::move(options)),
      lanes_(net, opt_.lanes) {
  frontend_.set_master_sink([this](const scada::ScadaMessage& msg) {
    send_scada(net_, keys_, opt_.endpoint, opt_.peer, msg);
  });
  net_.attach(opt_.endpoint, [this](net::Message m) {
    std::string sender;
    auto decoded = receive_scada(keys_, opt_.endpoint, m, &sender);
    if (!decoded.has_value() || sender != opt_.peer) return;
    lanes_.submit(opt_.per_message_cost, [this, msg = std::move(*decoded)] {
      frontend_.handle(msg);
    });
  });
}

FrontendNode::~FrontendNode() { net_.detach(opt_.endpoint); }

MasterNode::MasterNode(net::Transport& net, const crypto::Keychain& keys,
                       scada::ScadaMaster& master, const sim::CostModel& costs,
                       std::string endpoint, std::uint32_t lanes)
    : net_(net),
      keys_(keys),
      master_(master),
      costs_(costs),
      endpoint_(std::move(endpoint)),
      lanes_(net, lanes) {
  master_.set_da_sink(
      [this](const std::string& subscriber, const scada::ScadaMessage& msg) {
        send_scada(net_, keys_, endpoint_, subscriber, msg);
      });
  master_.set_ae_sink(
      [this](const std::string& subscriber, const scada::ScadaMessage& msg) {
        send_scada(net_, keys_, endpoint_, subscriber, msg);
      });
  master_.set_frontend_sink(
      [this](const std::string& frontend, const scada::ScadaMessage& msg) {
        send_scada(net_, keys_, endpoint_, frontend, msg);
      });
  net_.attach(endpoint_,
              [this](net::Message m) { on_message(std::move(m)); });
}

MasterNode::~MasterNode() { net_.detach(endpoint_); }

void MasterNode::on_message(net::Message msg) {
  std::string sender;
  auto decoded = receive_scada(keys_, endpoint_, msg, &sender);
  if (!decoded.has_value()) return;

  // Pre-charge the bulk processing cost; the event/fan-out dependent share
  // is charged after handling, once we know how much work the message
  // actually caused.
  SimTime cost = costs_.serialize_per_msg + costs_.da_process;
  if (kind_of(*decoded) == scada::ScadaMsgKind::kWriteValue) {
    cost += costs_.write_block_check;
  }
  if (kind_of(*decoded) == scada::ScadaMsgKind::kItemUpdate) {
    cost += costs_.handler_process;
  }

  lanes_.submit(cost, [this, source = std::move(sender),
                       scada_msg = std::move(*decoded)] {
    scada::MasterCounters before = master_.counters();
    master_.handle(scada_msg, context_of(scada_msg), source);
    const scada::MasterCounters& after = master_.counters();
    SimTime extra = 0;
    std::uint64_t events = after.events_created - before.events_created;
    extra += static_cast<SimTime>(events) *
             (costs_.ae_event_create + costs_.storage_append);
    std::uint64_t fanout =
        (after.updates_forwarded - before.updates_forwarded) +
        (after.events_forwarded - before.events_forwarded);
    extra += static_cast<SimTime>(fanout) * costs_.serialize_per_msg;
    if (extra > 0) lanes_.submit(extra, [] {});
  });
}

}  // namespace ss::core
