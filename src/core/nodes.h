// Network shims: put a transport-agnostic SCADA component behind a network
// endpoint speaking authenticated SCADA frames, with a CPU service-time
// model (ServiceLanes) in front of its message handler.
//
// The same Hmi/Frontend cores run in both deployments; only the peer
// differs (the Master directly in the baseline, the respective proxy in
// SMaRt-SCADA) — which is the paper's point that HMI and Frontends "are not
// aware of the replication library in between" (§IV-C).
#pragma once

#include <string>

#include "core/scada_link.h"
#include "scada/frontend.h"
#include "scada/hmi.h"
#include "scada/master.h"
#include "sim/cost_model.h"
#include "net/lanes.h"

namespace ss::core {

struct NodeOptions {
  std::string endpoint;
  std::string peer;  ///< only frames from this sender are accepted
  SimTime per_message_cost = 0;
  std::uint32_t lanes = 1;
};

/// HMI behind an endpoint.
class HmiNode {
 public:
  HmiNode(net::Transport& net, const crypto::Keychain& keys, scada::Hmi& hmi,
          NodeOptions options);
  ~HmiNode();

  HmiNode(const HmiNode&) = delete;
  HmiNode& operator=(const HmiNode&) = delete;

 private:
  net::Transport& net_;
  const crypto::Keychain& keys_;
  scada::Hmi& hmi_;
  NodeOptions opt_;
  net::Lanes lanes_;
};

/// Frontend behind an endpoint.
class FrontendNode {
 public:
  FrontendNode(net::Transport& net, const crypto::Keychain& keys,
               scada::Frontend& frontend, NodeOptions options);
  ~FrontendNode();

  FrontendNode(const FrontendNode&) = delete;
  FrontendNode& operator=(const FrontendNode&) = delete;

 private:
  net::Transport& net_;
  const crypto::Keychain& keys_;
  scada::Frontend& frontend_;
  NodeOptions opt_;
  net::Lanes lanes_;
};

/// The baseline (non-replicated) SCADA Master behind an endpoint: multiple
/// entry points, multi-lane CPU, local clock — stock NeoSCADA.
class MasterNode {
 public:
  MasterNode(net::Transport& net, const crypto::Keychain& keys,
             scada::ScadaMaster& master, const sim::CostModel& costs,
             std::string endpoint, std::uint32_t lanes);
  ~MasterNode();

  MasterNode(const MasterNode&) = delete;
  MasterNode& operator=(const MasterNode&) = delete;

 private:
  void on_message(net::Message msg);

  net::Transport& net_;
  const crypto::Keychain& keys_;
  scada::ScadaMaster& master_;
  sim::CostModel costs_;
  std::string endpoint_;
  net::Lanes lanes_;
};

}  // namespace ss::core
