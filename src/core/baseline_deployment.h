// The baseline deployment: stock (non-replicated) NeoSCADA-style system —
// Frontend, one SCADA Master, HMI, each on its own simulated machine
// (paper §V: "we deployed the NeoSCADA in three machines").
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "core/nodes.h"
#include "crypto/keychain.h"
#include "scada/frontend.h"
#include "scada/hmi.h"
#include "scada/master.h"
#include "sim/cost_model.h"
#include "sim/event_loop.h"
#include "sim/network.h"

namespace ss::core {

struct BaselineOptions {
  sim::CostModel costs = sim::CostModel::paper_testbed();
  /// Skew added to the Master's local clock — used by tests to demonstrate
  /// the non-deterministic-timestamp challenge (c).
  SimTime master_clock_skew = 0;
  std::uint64_t fault_seed = 0xFA111;
  /// Event-storage retention (0 = unlimited); benches bound it.
  std::size_t storage_retention = 0;
};

class BaselineDeployment {
 public:
  explicit BaselineDeployment(BaselineOptions options = {});
  ~BaselineDeployment();

  /// Registers one data point in the Frontend and the Master (same id).
  ItemId add_point(const std::string& name, scada::Variant initial = {});

  /// Subscribes the HMI to everything; call once after configuration.
  void start();

  sim::EventLoop& loop() { return loop_; }
  sim::Network& net() { return net_; }
  scada::ScadaMaster& master() { return master_; }
  scada::Frontend& frontend() { return frontend_; }
  scada::Hmi& hmi() { return hmi_; }
  const crypto::Keychain& keys() const { return keys_; }

  /// Runs the simulation until `deadline` (virtual time).
  void run_until(SimTime deadline) { loop_.run_until(deadline); }
  /// Runs until the event queue drains.
  void settle() { loop_.run(); }

 private:
  BaselineOptions opt_;
  sim::EventLoop loop_;
  sim::Network net_;
  crypto::Keychain keys_;
  scada::ScadaMaster master_;
  scada::Frontend frontend_;
  scada::Hmi hmi_;
  MasterNode master_node_;
  FrontendNode frontend_node_;
  HmiNode hmi_node_;
};

}  // namespace ss::core
