// The Adapter: glue between the BFT replica and the deterministic SCADA
// Master (paper §IV-A/IV-C).
//
// Responsibilities, exactly as the paper assigns them:
//  * single entry point — the adapter is the replica's Executable, so every
//    SCADA message reaches the Master one at a time, in decided order;
//  * deterministic timestamps & ordering info — each incoming message is
//    stamped with (consensus id, batch order, batch timestamp) before the
//    Master sees it, and every message/event the Master produces carries
//    that context (ContextInfo), so HMI-side voters can match asynchronous
//    replica messages;
//  * demultiplexing — decided messages are routed to the DA or AE
//    subsystem, and Master output is routed to the right proxy client;
//  * the logical-timeout protocol — a WriteValue forwarded to the Frontend
//    arms a timer; expired timers are voted among adapters, and a majority
//    injects a synthetic (ordered) WriteResult so the Master never blocks
//    forever on a dropped reply.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>

#include "bft/client.h"
#include "bft/executable.h"
#include "bft/replica.h"
#include "core/requests.h"
#include "obs/metrics.h"
#include "scada/master.h"
#include "sim/cost_model.h"
#include "net/transport.h"

namespace ss::core {

struct AdapterOptions {
  SimTime write_timeout = millis(800);  ///< logical timeout (paper §IV-D)
  sim::CostModel costs = sim::CostModel::zero();
  /// Parallel execution support — the paper's §VII-b future-work direction
  /// (CBASE/Eve/Alchieri et al.): with k > 1, SCADA processing of decided
  /// operations is charged to one of k conflict-partitioned executor lanes
  /// (selected by item id), instead of serializing on the replica's single
  /// thread. Operations on the same item still execute in order; the
  /// *protocol* (agreement, MACs) stays on the replica thread. 1 = the
  /// paper's single-threaded prototype.
  std::uint32_t executor_lanes = 1;
};

struct AdapterStats {
  std::uint64_t scada_requests = 0;
  std::uint64_t timeouts_armed = 0;
  std::uint64_t timeouts_cancelled = 0;
  std::uint64_t timeout_votes_sent = 0;
  std::uint64_t timeout_votes_received = 0;
  std::uint64_t timeout_injections = 0;
  std::uint64_t unknown_sources = 0;
};

std::string adapter_principal(ReplicaId id);

class Adapter final : public bft::Executable, public bft::Recoverable {
 public:
  Adapter(net::Transport& net, GroupConfig group, ReplicaId id,
          const crypto::Keychain& keys, scada::ScadaMaster& master,
          AdapterOptions options = {});
  ~Adapter() override;

  Adapter(const Adapter&) = delete;
  Adapter& operator=(const Adapter&) = delete;

  /// Late wiring (replica and adapter reference each other).
  void attach_replica(bft::Replica* replica) { replica_ = replica; }
  /// Registers a proxy client: Master output for `source` goes to `client`.
  void register_client(const std::string& source, ClientId client);
  /// The adapter's own BFT client, used to order synthetic WriteResults.
  void attach_timeout_client(bft::ClientProxy* client) {
    timeout_client_ = client;
  }

  // --- bft::Executable ------------------------------------------------------
  Bytes execute_ordered(const bft::ExecuteContext& ctx,
                        ByteView request) override;
  Bytes execute_unordered(ClientId client, ByteView request) override;

  // --- bft::Recoverable -----------------------------------------------------
  Bytes snapshot() const override { return master_.snapshot(); }
  void restore(ByteView data) override;

  const AdapterStats& stats() const { return stats_; }
  const std::string& endpoint() const { return endpoint_; }

 private:
  void route_to_client(const std::string& source,
                       const scada::ScadaMessage& msg);
  void arm_write_timeout(OpId op);
  void cancel_write_timeout(OpId op);
  void on_write_timeout(OpId op);
  void on_adapter_message(net::Message msg);
  void record_vote(const TimeoutVote& vote);
  void broadcast_vote(OpId op);
  SimTime master_cost(const scada::MasterCounters& before,
                      const scada::ScadaMessage& msg) const;
  using Emission = std::pair<std::string, scada::ScadaMessage>;
  void flush_emissions(std::vector<Emission> emissions);
  void charge_execution(const scada::ScadaMessage& msg, SimTime cost);

  net::Transport& net_;
  GroupConfig group_;
  ReplicaId id_;
  std::string endpoint_;
  const crypto::Keychain& keys_;
  scada::ScadaMaster& master_;
  AdapterOptions opt_;

  bft::Replica* replica_ = nullptr;
  bft::ClientProxy* timeout_client_ = nullptr;
  std::map<std::string, ClientId> clients_;       // source name -> proxy client
  std::map<std::uint64_t, std::string> sources_;  // client id -> source name

  /// Conflict-partitioned executor lanes (empty when executor_lanes <= 1).
  std::vector<std::unique_ptr<net::Lanes>> executor_;
  /// Master output buffered during the current execute_ordered call.
  std::vector<Emission> emissions_;

  std::map<std::uint64_t, net::Timer> write_timers_;  // by op id
  std::map<std::uint64_t, std::set<std::uint32_t>> timeout_votes_;
  std::set<std::uint64_t> injected_;  // ops we already ordered a timeout for

  AdapterStats stats_;
  obs::SourceHandle obs_source_;
};

}  // namespace ss::core
