#include "core/replicated_deployment.h"

#include <stdexcept>

#include "obs/trace.h"

namespace ss::core {

ReplicatedDeployment::ReplicatedDeployment(ReplicatedOptions options)
    : opt_(options),
      net_(loop_, opt_.costs.hop_latency, opt_.costs.ns_per_byte,
           opt_.fault_seed),
      keys_("smart-scada-secret"),
      frontend_(scada::FrontendOptions{.instance_id = 1}),
      hmi_(scada::HmiOptions{.instance_id = 2,
                             .subscriber_name = kHmiEndpoint}) {
  const std::uint32_t n = opt_.group.n;

  // Trace spans recorded by components without a transport reference (HMI,
  // Frontend, voter) stamp virtual time through the process-wide tracer.
  obs::Tracer::instance().set_clock([this] { return loop_.now(); });

  // ProxyMasters: deterministic Master + Adapter + replica + timeout client.
  masters_.reserve(n);
  adapters_.reserve(n);
  replicas_.reserve(n);
  adapter_clients_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    scada::MasterOptions master_options;
    master_options.deterministic = true;  // challenge (b)/(c): no local clock
    master_options.storage_retention = opt_.storage_retention;
    masters_.push_back(
        std::make_unique<scada::ScadaMaster>(std::move(master_options)));

    AdapterOptions adapter_options;
    adapter_options.write_timeout = opt_.write_timeout;
    adapter_options.costs = opt_.costs;
    adapter_options.executor_lanes = opt_.executor_lanes;
    adapters_.push_back(std::make_unique<Adapter>(
        net_, opt_.group, ReplicaId{i}, keys_, *masters_.back(),
        adapter_options));
    adapters_.back()->register_client(kHmiEndpoint,
                                      ClientId{kProxyHmiClient});
    adapters_.back()->register_client(kFrontendEndpoint,
                                      ClientId{kProxyFrontendClient});
  }

  bft::ReplicaOptions replica_options;
  replica_options.request_timeout = opt_.request_timeout;
  replica_options.max_batch = opt_.max_batch;
  replica_options.checkpoint_interval = opt_.checkpoint_interval;
  replica_options.per_message_cost =
      opt_.costs.bft_crypto_per_msg + opt_.costs.serialize_per_msg;
  replica_options.per_decision_cost = opt_.costs.bft_consensus_overhead;
  replica_options.lanes = opt_.costs.replicated_master_lanes;
  replica_options.epoch_handover_window = opt_.epoch_handover_window;

  killed_.assign(n, false);
  for (std::uint32_t i = 0; i < n; ++i) {
    bft::ReplicaOptions options_i = replica_options;
    if (opt_.durable) {
      replica_storage_.push_back(std::make_unique<storage::ReplicaStorage>(
          storage_env_, "replica-" + std::to_string(i),
          "storage/replica-" + std::to_string(i)));
      // Storage goes in at construction (not via the deprecated set_storage
      // shim): the replica's engine may need durable state — the MinBFT
      // USIG counter lease — before the first message arrives.
      options_i.storage = replica_storage_.back().get();
    }
    replicas_.push_back(std::make_unique<bft::Replica>(
        net_, opt_.group, ReplicaId{i}, keys_, *adapters_[i], *adapters_[i],
        options_i));
    adapters_[i]->attach_replica(replicas_.back().get());

    bft::ClientOptions timeout_client_options;
    timeout_client_options.reply_timeout = opt_.client_reply_timeout;
    adapter_clients_.push_back(std::make_unique<bft::ClientProxy>(
        net_, opt_.group, ClientId{kAdapterClientBase + i}, keys_,
        timeout_client_options));
    adapters_[i]->attach_timeout_client(adapter_clients_.back().get());
    for (std::uint32_t j = 0; j < n; ++j) {
      // Timeout injections reach the masters tagged with a neutral source:
      // no adapter client is registered as a named source on purpose.
      (void)j;
    }
  }

  // Proxies.
  ProxyOptions hmi_proxy_options;
  hmi_proxy_options.endpoint = kProxyHmiEndpoint;
  hmi_proxy_options.component_endpoint = kHmiEndpoint;
  hmi_proxy_options.per_message_cost =
      opt_.costs.serialize_per_msg + opt_.costs.voter_process;
  hmi_proxy_options.lanes = opt_.costs.proxy_lanes;
  hmi_proxy_options.client.reply_timeout = opt_.client_reply_timeout;
  proxy_hmi_ = std::make_unique<ComponentProxy>(
      net_, opt_.group, ClientId{kProxyHmiClient}, keys_, hmi_proxy_options);

  ProxyOptions frontend_proxy_options;
  frontend_proxy_options.endpoint = kProxyFrontendEndpoint;
  frontend_proxy_options.component_endpoint = kFrontendEndpoint;
  frontend_proxy_options.per_message_cost =
      opt_.costs.serialize_per_msg + opt_.costs.voter_process;
  frontend_proxy_options.lanes = opt_.costs.proxy_lanes;
  frontend_proxy_options.client.reply_timeout = opt_.client_reply_timeout;
  frontend_proxy_options.client.max_inflight = opt_.frontend_max_inflight;
  proxy_frontend_ = std::make_unique<ComponentProxy>(
      net_, opt_.group, ClientId{kProxyFrontendClient}, keys_,
      frontend_proxy_options);

  // The real HMI and Frontend, pointed at their proxies.
  frontend_node_ = std::make_unique<FrontendNode>(
      net_, keys_, frontend_,
      NodeOptions{.endpoint = kFrontendEndpoint,
                  .peer = kProxyFrontendEndpoint,
                  .per_message_cost = opt_.costs.serialize_per_msg,
                  .lanes = opt_.costs.frontend_lanes});
  hmi_node_ = std::make_unique<HmiNode>(
      net_, keys_, hmi_,
      NodeOptions{.endpoint = kHmiEndpoint,
                  .peer = kProxyHmiEndpoint,
                  .per_message_cost = opt_.costs.serialize_per_msg,
                  .lanes = opt_.costs.hmi_lanes});
}

ReplicatedDeployment::~ReplicatedDeployment() {
  obs::Tracer::instance().set_clock(nullptr);
}

ItemId ReplicatedDeployment::add_point(const std::string& name,
                                       scada::Variant initial) {
  ItemId frontend_id = frontend_.add_item(name, std::move(initial));
  for (auto& master : masters_) {
    ItemId master_id = master->add_item(name);
    if (master_id != frontend_id) {
      throw std::logic_error("item id mismatch between frontend and master");
    }
  }
  return frontend_id;
}

void ReplicatedDeployment::configure_masters(
    const std::function<void(scada::ScadaMaster&)>& configure) {
  for (auto& master : masters_) configure(*master);
}

void ReplicatedDeployment::start() {
  if (opt_.durable && genesis_images_.empty()) {
    // What a freshly exec'd replica process would reconstruct from its
    // static configuration, before any decision executed — captured now
    // (points added, no traffic yet) so reboot() can reset the shared app
    // objects to it.
    genesis_images_.reserve(replicas_.size());
    for (auto& replica : replicas_) {
      genesis_images_.push_back(replica->full_snapshot());
    }
  }
  hmi_.subscribe_all();
  // Let the subscriptions order and execute before traffic starts.
  loop_.run_until(loop_.now() + millis(50));
}

void ReplicatedDeployment::set_fsync_stall(std::uint32_t i, SimTime stall) {
  if (fsync_stalls_.empty()) {
    fsync_stalls_.assign(opt_.group.n, 0);
    storage_env_.set_sync_observer([this](const std::string& path) {
      // "replica-<i>/..." — charge the stall to the replica whose state dir
      // just synced, as if its fsync had blocked the process that long.
      for (std::uint32_t r = 0; r < fsync_stalls_.size(); ++r) {
        if (fsync_stalls_[r] <= 0) continue;
        std::string prefix = "replica-" + std::to_string(r) + "/";
        if (path.compare(0, prefix.size(), prefix) == 0) {
          replicas_.at(r)->charge(fsync_stalls_[r]);
          return;
        }
      }
    });
  }
  fsync_stalls_.at(i) = stall > 0 ? stall : 0;
}

void ReplicatedDeployment::kill_replica_process(std::uint32_t i) {
  if (!opt_.durable) {
    crash_replica(i);
    return;
  }
  killed_.at(i) = true;
  // kill -9 semantics: appended-but-unsynced bytes never reach the disk.
  // Scoped to this replica's state dir — other replicas' processes are
  // still alive, so their unsynced bytes must survive. (The WAL syncs every
  // record before the decision takes effect, so in practice this only drops
  // bytes a torn-write test planted deliberately.)
  storage_env_.drop_unsynced("replica-" + std::to_string(i) + "/");
  replicas_.at(i)->crash();
}

void ReplicatedDeployment::restart_replica_process(std::uint32_t i) {
  if (!opt_.durable || !killed_.at(i)) return;
  killed_.at(i) = false;
  replicas_.at(i)->reboot(genesis_images_.empty() ? ByteView{}
                                                  : ByteView(genesis_images_.at(i)));
}

bool ReplicatedDeployment::masters_converged() const {
  const crypto::Digest* reference = nullptr;
  crypto::Digest first;
  for (std::uint32_t i = 0; i < opt_.group.n; ++i) {
    if (replicas_[i]->crashed()) continue;
    crypto::Digest digest = masters_[i]->state_digest();
    if (reference == nullptr) {
      first = digest;
      reference = &first;
    } else if (digest != *reference) {
      return false;
    }
  }
  return true;
}

}  // namespace ss::core
