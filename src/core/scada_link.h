// HMAC-authenticated SCADA frames over the simulated network.
//
// Stands in for the paper's TLS channels between each component and its
// proxy (and for the plain NeoSCADA connections in the baseline): provides
// per-link integrity/authenticity, which is all the paper's system model
// asks of those channels.
#pragma once

#include <optional>
#include <string>

#include "crypto/keychain.h"
#include "scada/messages.h"
#include "net/transport.h"

namespace ss::core {

/// Canonical deployment endpoint names.
inline constexpr const char* kHmiEndpoint = "hmi";
inline constexpr const char* kFrontendEndpoint = "frontend";
inline constexpr const char* kProxyHmiEndpoint = "proxy/hmi";
inline constexpr const char* kProxyFrontendEndpoint = "proxy/frontend";
inline constexpr const char* kMasterEndpoint = "master";

/// Encodes msg into an authenticated frame and sends it from -> to.
void send_scada(net::Transport& net, const crypto::Keychain& keys,
                const std::string& from, const std::string& to,
                const scada::ScadaMessage& msg);

/// Verifies and decodes a frame delivered to `self`. Returns nullopt (and
/// never throws) on any forgery or malformation; `sender_out` receives the
/// authenticated sender name.
std::optional<scada::ScadaMessage> receive_scada(const crypto::Keychain& keys,
                                                 const std::string& self,
                                                 const net::Message& msg,
                                                 std::string* sender_out);

}  // namespace ss::core
