#include "core/runner.h"

#include <sys/eventfd.h>
#include <unistd.h>

#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace ss::core {
namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

struct PooledOrderedRunner::State {
  RunnerOptions options;

  std::mutex mu;
  std::condition_variable work_cv;  // workers wait for queue/stop
  std::condition_variable done_cv;  // drain_until_idle waits for the head

  struct PendingTask {
    std::uint64_t seq;
    Task task;
  };
  struct Completion {
    Solo solo;
    std::exception_ptr error;
    std::int64_t task_ns = 0;      // worker time spent inside task()
    std::int64_t finished_at = 0;  // steady_ns() when the worker finished
  };

  std::deque<PendingTask> queue;
  std::map<std::uint64_t, Completion> completed;
  std::uint64_t next_submit_seq = 0;
  std::uint64_t next_deliver_seq = 0;
  bool stop = false;

  int event_fd = -1;
  std::vector<std::thread> threads;

#ifndef NDEBUG
  std::thread::id driver;  // bound on first driver-side call
#endif

  // Metrics: created on the constructing thread (obs::Registry is not
  // thread-safe), recorded only from the driver thread inside drain().
  double* queue_depth = nullptr;
  obs::Histogram* task_ns_hist = nullptr;
  obs::Histogram* reorder_wait_hist = nullptr;

  void assert_driver() {
#ifndef NDEBUG
    if (driver == std::thread::id{}) {
      driver = std::this_thread::get_id();
    }
    assert(driver == std::this_thread::get_id() &&
           "runner submit/drain must stay on one driver thread");
#endif
  }
};

PooledOrderedRunner::PooledOrderedRunner(std::uint32_t workers,
                                         RunnerOptions options)
    : state_(std::make_unique<State>()) {
  State& s = *state_;
  s.options = std::move(options);
  if (workers == 0) workers = 1;

  s.event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (s.options.metrics) {
    auto& reg = obs::Registry::instance();
    const std::string prefix = "runner/" + s.options.tag;
    s.queue_depth = &reg.gauge(prefix + ".queue_depth");
    s.task_ns_hist = &reg.histogram(prefix + ".task_ns");
    s.reorder_wait_hist = &reg.histogram(prefix + ".reorder_wait_ns");
  }

  s.threads.reserve(workers);
  for (std::uint32_t i = 0; i < workers; ++i) {
    s.threads.emplace_back([this, state = state_.get()] { worker_loop(state); });
  }
}

PooledOrderedRunner::~PooledOrderedRunner() {
  State& s = *state_;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    s.stop = true;
    // Unstarted tasks are discarded: a stopped runner never half-runs work.
    s.queue.clear();
  }
  s.work_cv.notify_all();
  s.done_cv.notify_all();
  for (std::thread& t : s.threads) t.join();
  if (s.event_fd >= 0) ::close(s.event_fd);
  // Undelivered solos in s.completed are dropped with the state.
}

void PooledOrderedRunner::worker_loop(State* state) {
  State& s = *state;
  std::unique_lock<std::mutex> lock(s.mu);
  while (true) {
    if (s.options.spin) {
      // Busy-wait: release the lock, yield, re-check. Burns a core for
      // wake-up latency; only the bench-oriented SpinOrderedRunner uses it.
      while (!s.stop && s.queue.empty()) {
        lock.unlock();
        std::this_thread::yield();
        lock.lock();
      }
    } else {
      s.work_cv.wait(lock, [&] { return s.stop || !s.queue.empty(); });
    }
    if (s.stop) return;

    State::PendingTask pending = std::move(s.queue.front());
    s.queue.pop_front();
    lock.unlock();

    State::Completion done;
    const std::int64_t start = steady_ns();
    try {
      done.solo = pending.task();
    } catch (...) {
      done.error = std::current_exception();
    }
    done.finished_at = steady_ns();
    done.task_ns = done.finished_at - start;

    lock.lock();
    const bool head = pending.seq == s.next_deliver_seq;
    s.completed.emplace(pending.seq, std::move(done));
    if (head) {
      // Only the completion that unblocks delivery needs to wake the
      // driver; later-sequence completions would be spurious wake-ups.
      s.done_cv.notify_all();
      if (s.event_fd >= 0) {
        std::uint64_t one = 1;
        [[maybe_unused]] ssize_t n = ::write(s.event_fd, &one, sizeof(one));
      }
    }
  }
}

void PooledOrderedRunner::submit(Task task) {
  State& s = *state_;
  s.assert_driver();
  {
    std::lock_guard<std::mutex> lock(s.mu);
    s.queue.push_back({s.next_submit_seq++, std::move(task)});
  }
  if (s.queue_depth) *s.queue_depth += 1;
  s.work_cv.notify_one();
}

void PooledOrderedRunner::deliver_one() {
  // Pops the head completion and runs its solo outside the lock. The solo
  // may re-enter submit() (dispatch paths send messages), so no lock may be
  // held and all metric updates use driver-thread-only obs calls.
  State& s = *state_;
  State::Completion done;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.completed.find(s.next_deliver_seq);
    done = std::move(it->second);
    s.completed.erase(it);
    ++s.next_deliver_seq;
  }
  if (s.queue_depth) *s.queue_depth -= 1;
  if (s.task_ns_hist) s.task_ns_hist->record(done.task_ns);
  if (s.reorder_wait_hist) {
    s.reorder_wait_hist->record(steady_ns() - done.finished_at);
  }
  if (done.error) {
    // Sequence already advanced: a later drain() continues past the
    // throwing task, per the Runner::drain contract.
    std::rethrow_exception(done.error);
  }
  if (done.solo) done.solo();
}

void PooledOrderedRunner::drain() {
  State& s = *state_;
  s.assert_driver();
  if (s.event_fd >= 0) {
    std::uint64_t counter;
    [[maybe_unused]] ssize_t n = ::read(s.event_fd, &counter, sizeof(counter));
  }
  while (true) {
    {
      std::lock_guard<std::mutex> lock(s.mu);
      if (s.completed.find(s.next_deliver_seq) == s.completed.end()) return;
    }
    deliver_one();
  }
}

void PooledOrderedRunner::drain_until_idle() {
  State& s = *state_;
  s.assert_driver();
  while (true) {
    drain();
    std::unique_lock<std::mutex> lock(s.mu);
    if (s.next_deliver_seq == s.next_submit_seq) return;
    s.done_cv.wait(lock, [&] {
      return s.stop || s.completed.count(s.next_deliver_seq) > 0 ||
             s.next_deliver_seq == s.next_submit_seq;
    });
    if (s.stop) return;
  }
}

bool PooledOrderedRunner::idle() const {
  State& s = *state_;
  std::lock_guard<std::mutex> lock(s.mu);
  return s.next_deliver_seq == s.next_submit_seq;
}

int PooledOrderedRunner::notify_fd() const { return state_->event_fd; }

std::uint32_t PooledOrderedRunner::workers() const {
  return static_cast<std::uint32_t>(state_->threads.size());
}

std::uint64_t PooledOrderedRunner::submitted() const {
  State& s = *state_;
  std::lock_guard<std::mutex> lock(s.mu);
  return s.next_submit_seq;
}

std::uint64_t PooledOrderedRunner::delivered() const {
  State& s = *state_;
  std::lock_guard<std::mutex> lock(s.mu);
  return s.next_deliver_seq;
}

SpinOrderedRunner::SpinOrderedRunner(std::uint32_t workers,
                                     RunnerOptions options)
    : PooledOrderedRunner(workers, [&] {
        options.spin = true;
        return options;
      }()) {}

std::unique_ptr<Runner> make_runner_from_env(const std::string& tag) {
  const char* spec = std::getenv("SS_RUNNER");
  if (spec == nullptr || std::strcmp(spec, "") == 0 ||
      std::strcmp(spec, "inline") == 0) {
    return std::make_unique<InlineRunner>();
  }
  std::string text(spec);
  auto parse_workers = [&](const std::string& prefix) -> std::uint32_t {
    if (text.size() == prefix.size()) return 4;
    unsigned long n = std::strtoul(text.c_str() + prefix.size() + 1, nullptr, 10);
    return n == 0 ? 4 : static_cast<std::uint32_t>(n);
  };
  RunnerOptions options;
  options.tag = tag;
  if (text.rfind("pooled", 0) == 0) {
    return std::make_unique<PooledOrderedRunner>(parse_workers("pooled"),
                                                 std::move(options));
  }
  if (text.rfind("spin", 0) == 0) {
    return std::make_unique<SpinOrderedRunner>(parse_workers("spin"),
                                               std::move(options));
  }
  std::fprintf(stderr,
               "SS_RUNNER=%s not recognized (want inline|pooled:N|spin:N); "
               "using inline\n",
               spec);
  return std::make_unique<InlineRunner>();
}

}  // namespace ss::core
