#include "core/push_voter.h"

#include "obs/trace.h"

namespace ss::core {

bool PushVoter::ReplayWindow::accept(std::uint64_t seq) {
  if (seq == 0) return true;  // unsequenced (legacy/test path)
  if (seq > high) {
    const std::uint64_t shift = seq - high;
    bitmap = shift >= 64 ? 0 : bitmap << shift;
    bitmap |= 1;
    high = seq;
    return true;
  }
  const std::uint64_t offset = high - seq;
  if (offset >= 64) return false;  // beyond the window: treat as replay
  const std::uint64_t bit = std::uint64_t{1} << offset;
  if ((bitmap & bit) != 0) return false;
  bitmap |= bit;
  return true;
}

void PushVoter::offer(ReplicaId replica, ByteView payload, std::uint64_t seq) {
  ++stats_.offered;
  if (replica.value >= group_.n) return;

  if (replay_windows_.empty()) replay_windows_.resize(group_.n);
  if (!replay_windows_[replica.value].accept(seq)) {
    // Seen (or far older than) this replica's current push frontier:
    // a replayed capture, not a fresh vote. Without this check, replaying
    // f+1 captured pushes of a message that already aged out of
    // `delivered_` would re-deliver it to the HMI.
    ++stats_.replayed;
    return;
  }

  scada::ScadaMessage msg;
  try {
    msg = scada::decode_message(payload);
  } catch (const DecodeError&) {
    ++stats_.malformed;
    return;
  }
  crypto::Digest digest = crypto::Sha256::hash(payload);

  if (delivered_.count(digest) > 0) {
    ++stats_.stragglers;
    return;
  }

  auto [it, inserted] = votes_.try_emplace(digest);
  if (inserted) {
    vote_order_.push_back(digest);
    obs::Tracer::instance().begin(scada::context_of(msg).op, "voter");
  }
  if (!it->second.insert(replica.value).second) {
    ++stats_.duplicate_votes;
    return;
  }
  if (it->second.size() < group_.reply_quorum()) {
    // Bound the open-vote window even when nothing delivers — a Byzantine
    // replica spraying unique payloads must not grow memory without bound.
    prune();
    return;
  }

  votes_.erase(it);
  delivered_.insert(digest);
  delivered_order_.push_back(digest);
  ++stats_.delivered;
  obs::Tracer::instance().end(scada::context_of(msg).op, "voter");
  prune();
  deliver_(msg);
}

void PushVoter::prune() {
  while (delivered_order_.size() > opt_.delivered_window) {
    delivered_.erase(delivered_order_.front());
    delivered_order_.pop_front();
  }
  while (vote_order_.size() > opt_.vote_window) {
    votes_.erase(vote_order_.front());
    vote_order_.pop_front();
  }
}

}  // namespace ss::core
