#include "core/push_voter.h"

namespace ss::core {

void PushVoter::offer(ReplicaId replica, ByteView payload) {
  ++stats_.offered;
  if (replica.value >= group_.n) return;

  scada::ScadaMessage msg;
  try {
    msg = scada::decode_message(payload);
  } catch (const DecodeError&) {
    ++stats_.malformed;
    return;
  }
  crypto::Digest digest = crypto::Sha256::hash(payload);

  if (delivered_.count(digest) > 0) {
    ++stats_.stragglers;
    return;
  }

  auto [it, inserted] = votes_.try_emplace(digest);
  if (inserted) vote_order_.push_back(digest);
  if (!it->second.insert(replica.value).second) {
    ++stats_.duplicate_votes;
    return;
  }
  if (it->second.size() < group_.reply_quorum()) {
    // Bound the open-vote window even when nothing delivers — a Byzantine
    // replica spraying unique payloads must not grow memory without bound.
    prune();
    return;
  }

  votes_.erase(it);
  delivered_.insert(digest);
  delivered_order_.push_back(digest);
  ++stats_.delivered;
  prune();
  deliver_(msg);
}

void PushVoter::prune() {
  while (delivered_order_.size() > opt_.delivered_window) {
    delivered_.erase(delivered_order_.front());
    delivered_order_.pop_front();
  }
  while (vote_order_.size() > opt_.vote_window) {
    votes_.erase(vote_order_.front());
    vote_order_.pop_front();
  }
}

}  // namespace ss::core
