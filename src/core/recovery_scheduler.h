// Proactive recovery scheduler (Castro & Liskov, "Practical Byzantine
// Fault-Tolerance and Proactive Recovery" — reference [14] of the paper).
//
// Intrusion tolerance assumes at most f compromised replicas *at a time*;
// periodically reincarnating each replica from a clean image bounds the
// window an undetected intrusion can survive. The scheduler reincarnates one
// replica per period, round-robin, and only when the rest of the group is
// healthy (never more than one replica down by its own doing).
//
// A reincarnation on a durable deployment is a full process restart:
// kill_replica_process drops the state dir's unsynced bytes, and the replica
// comes back via reboot() — checkpoint restore + WAL replay, volatile state
// wiped, a fresh session-key epoch, and a bounded state transfer for the
// decisions it slept through. On a non-durable deployment it degrades to the
// volatile crash()/recover() pair (state transfer only, no key refresh).
//
// The real multi-process deployment has its own implementation of the same
// policy: `examples/deploy --supervise` with SS_PROACTIVE_PERIOD set
// SIGKILLs one replica process per period round-robin.
#pragma once

#include <optional>

#include "core/replicated_deployment.h"
#include "obs/metrics.h"
#include "sim/event_loop.h"

namespace ss::core {

struct RecoverySchedulerOptions {
  /// Time between two consecutive replica reincarnations.
  SimTime period = seconds(60);
  /// How long a reincarnating replica stays down before rejoining.
  SimTime downtime = millis(500);
};

struct RecoverySchedulerStats {
  std::uint64_t recoveries = 0;
  std::uint64_t skipped_unhealthy = 0;
};

class RecoveryScheduler {
 public:
  RecoveryScheduler(ReplicatedDeployment& deployment,
                    RecoverySchedulerOptions options = {})
      : dep_(deployment), opt_(options) {}

  void start() {
    if (started_) return;
    started_ = true;
    schedule_next();
  }

  /// Stops scheduling further reincarnations. A victim currently inside its
  /// downtime window is brought back immediately — stopping the scheduler
  /// must never strand a replica crashed (its pending recover callback
  /// would otherwise be the only way back up, and it bails once stopped).
  void stop() {
    stopped_ = true;
    if (down_.has_value()) bring_back(*down_);
  }

  const RecoverySchedulerStats& stats() const { return stats_; }

 private:
  /// Group size from the agreement engine's own quorum configuration —
  /// 3f+1 under PBFT, 2f+1 under MinBFT. Asking the engine (rather than
  /// assuming 3f+1) keeps the round-robin in step when a smaller-group
  /// protocol is deployed.
  std::uint32_t group_size() const {
    return dep_.replica(0).quorum_config().n;
  }

  void schedule_next() {
    dep_.loop().schedule(opt_.period, [this] { tick(); });
  }

  void tick() {
    if (stopped_) return;
    const std::uint32_t n = group_size();
    if (next_ >= n) next_ = 0;
    // Only reincarnate when every *other* replica is up: the scheduler must
    // never be the reason the group exceeds its fault budget.
    bool others_healthy = true;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (i != next_ && dep_.replica(i).crashed()) others_healthy = false;
    }
    if (!others_healthy || dep_.replica(next_).crashed()) {
      ++stats_.skipped_unhealthy;
      schedule_next();
      return;
    }

    std::uint32_t victim = next_;
    next_ = (next_ + 1) % n;
    ++stats_.recoveries;
    down_ = victim;
    went_down_at_ = dep_.loop().now();
    if (dep_.durable()) {
      dep_.kill_replica_process(victim);
    } else {
      dep_.crash_replica(victim);
    }
    dep_.loop().schedule(opt_.downtime, [this, victim] { bring_back(victim); });
    schedule_next();
  }

  /// Idempotent: the downtime callback and stop() may both ask for it.
  void bring_back(std::uint32_t victim) {
    if (!down_.has_value() || *down_ != victim) return;
    down_.reset();
    if (dep_.durable() && dep_.replica_killed(victim)) {
      dep_.restart_replica_process(victim);
    } else if (dep_.replica(victim).crashed()) {
      dep_.recover_replica(victim);
    }
    obs::Registry::instance()
        .histogram("recovery.reincarnation_ns")
        .record(static_cast<std::int64_t>(dep_.loop().now() - went_down_at_));
  }

  ReplicatedDeployment& dep_;
  RecoverySchedulerOptions opt_;
  std::uint32_t next_ = 0;
  bool started_ = false;
  bool stopped_ = false;
  /// Victim currently inside its downtime window, if any.
  std::optional<std::uint32_t> down_;
  SimTime went_down_at_ = 0;
  RecoverySchedulerStats stats_;
};

}  // namespace ss::core
