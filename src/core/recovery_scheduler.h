// Proactive recovery scheduler (Castro & Liskov, "Practical Byzantine
// Fault-Tolerance and Proactive Recovery" — reference [14] of the paper).
//
// Intrusion tolerance assumes at most f compromised replicas *at a time*;
// periodically reincarnating each replica from a clean image bounds the
// window an undetected intrusion can survive. The scheduler restarts one
// replica per period, round-robin, and only when the rest of the group is
// healthy (never more than one replica down by its own doing); the restart
// wipes volatile state and rejoins via state transfer.
#pragma once

#include <functional>

#include "bft/replica.h"
#include "sim/event_loop.h"

namespace ss::core {

struct RecoverySchedulerOptions {
  /// Time between two consecutive replica reincarnations.
  SimTime period = seconds(60);
  /// How long a reincarnating replica stays down before rejoining.
  SimTime downtime = millis(500);
};

struct RecoverySchedulerStats {
  std::uint64_t recoveries = 0;
  std::uint64_t skipped_unhealthy = 0;
};

class RecoveryScheduler {
 public:
  /// `replica_at(i)` must return the i-th replica of the group (the
  /// scheduler does not own them).
  RecoveryScheduler(sim::EventLoop& loop, GroupConfig group,
                    std::function<bft::Replica&(std::uint32_t)> replica_at,
                    RecoverySchedulerOptions options = {})
      : loop_(loop),
        group_(group),
        replica_at_(std::move(replica_at)),
        opt_(options) {}

  void start() {
    if (started_) return;
    started_ = true;
    schedule_next();
  }

  void stop() { stopped_ = true; }

  const RecoverySchedulerStats& stats() const { return stats_; }

 private:
  void schedule_next() {
    loop_.schedule(opt_.period, [this] { tick(); });
  }

  void tick() {
    if (stopped_) return;
    // Only reincarnate when every *other* replica is up: the scheduler must
    // never be the reason the group exceeds its fault budget.
    bool others_healthy = true;
    for (std::uint32_t i = 0; i < group_.n; ++i) {
      if (i != next_ && replica_at_(i).crashed()) others_healthy = false;
    }
    if (!others_healthy || replica_at_(next_).crashed()) {
      ++stats_.skipped_unhealthy;
      schedule_next();
      return;
    }

    std::uint32_t victim = next_;
    next_ = (next_ + 1) % group_.n;
    ++stats_.recoveries;
    replica_at_(victim).crash();
    loop_.schedule(opt_.downtime, [this, victim] {
      if (stopped_) return;
      replica_at_(victim).recover();
    });
    schedule_next();
  }

  sim::EventLoop& loop_;
  GroupConfig group_;
  std::function<bft::Replica&(std::uint32_t)> replica_at_;
  RecoverySchedulerOptions opt_;
  std::uint32_t next_ = 0;
  bool started_ = false;
  bool stopped_ = false;
  RecoverySchedulerStats stats_;
};

}  // namespace ss::core
