// Ordered worker-pool seam for the replica's crypto/codec pipeline.
//
// The paper's prototype is single-threaded, and PR 2-5 kept every backend
// that way: one thread decodes, verifies HMACs, runs agreement, executes,
// signs, and encodes. That serializes the two heaviest pure computations —
// HMAC verification of inbound messages and HMAC signing + encoding of
// outbound ones — with the state machine, so a replica process can never
// use more than one core (the throughput wall §V-B attributes to the
// BFT layer). The fix follows the dsnet/PBFT shape: fan the *pure* work out
// to N workers, then re-sequence results so the state machine still sees
// one message at a time, in arrival order.
//
// A task has two halves:
//
//   submit(task)  ->  Solo solo = task();   // "prologue": runs on a worker,
//                                           // pure computation only
//                     solo();               // "solo": runs on the driver
//                                           // thread, in submission order
//
// The ordering invariant: solos run strictly in submission order, exactly
// once, all on the single driver thread. Workers only ever see the task
// halves, which must not touch replica state; everything stateful lives in
// the solo. With that split the replica's execution is a deterministic
// function of the submission order — which is why InlineRunner (run both
// halves immediately) keeps the simulated backend byte-identical to the
// pre-runner code, and why inline and pooled runs produce byte-identical
// replica output for the same input stream (tests/runner_test.cc proves
// it by replaying a recorded trace through both).
//
// Threading contract:
//  * submit(), drain(), drain_until_idle() are driver-thread-only (asserted
//    in debug builds). The driver is whichever thread first calls one of
//    them — in deployments, the transport's poll loop thread.
//  * task() runs on an arbitrary worker thread; it must only read state
//    that is immutable while the runner is live (keys, group config, ids).
//  * Completion is signalled on notify_fd() (an eventfd): the poll loop
//    registers it via SocketTransport::add_pollable and calls drain() when
//    it fires, so delivery and drain share the poll thread by construction.
//
// Destruction stops the workers: queued-but-unstarted tasks and undelivered
// solos are discarded (never half-run), and the destructor joins all
// workers before returning — after it, no task can touch captured state.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace ss::core {

class Runner {
 public:
  /// Driver-thread half of a task; runs in submission order.
  using Solo = std::function<void()>;
  /// Worker-thread half; returns the solo (may be empty for fire-and-forget).
  using Task = std::function<Solo()>;

  virtual ~Runner() = default;

  /// Enqueues one task. The returned solo runs on the driver thread, after
  /// every earlier-submitted task's solo and before every later one.
  /// Submitting from within a solo is allowed (the replica's dispatch path
  /// sends messages, which re-enter submit()).
  virtual void submit(Task task) = 0;

  /// Runs every solo that is ready in-order right now; never blocks.
  /// A task exception is re-thrown here, at the throwing task's position in
  /// the order; calling drain() again continues with the next task.
  virtual void drain() {}

  /// Drains and blocks until every submitted task (including tasks that
  /// solos submit while draining) has been delivered.
  virtual void drain_until_idle() {}

  /// True when every submitted task's solo has run.
  virtual bool idle() const { return true; }

  /// Readable fd that signals "a solo is ready to drain" (-1 when delivery
  /// is synchronous and no notification is needed). drain() consumes the
  /// pending notification.
  virtual int notify_fd() const { return -1; }

  virtual std::uint32_t workers() const { return 0; }
};

/// Runs both halves synchronously inside submit(). This is the simulated
/// backend's runner: every existing test, bench, and chaos sweep keeps the
/// exact pre-runner event order, byte for byte.
class InlineRunner final : public Runner {
 public:
  void submit(Task task) override {
    Solo solo = task();
    if (solo) solo();
  }
};

struct RunnerOptions {
  /// Workers busy-wait for tasks instead of sleeping on a condition
  /// variable — lower wake-up latency, a core burned per worker. The
  /// SpinOrderedRunner convenience class sets this.
  bool spin = false;
  /// Metrics prefix: gauges/histograms appear as runner/<tag>.*.
  std::string tag = "pool";
  /// Registers runner/<tag>.queue_depth (gauge), .task_ns and
  /// .reorder_wait_ns (histograms) with obs::Registry. Creation happens on
  /// the constructing thread; recording happens on the driver thread.
  bool metrics = true;
};

/// N worker threads plus a re-sequencing buffer keyed by per-task sequence
/// number. Workers complete tasks in any order; drain() delivers solos in
/// submission order, holding back later completions until the head of the
/// sequence is done (the held-back time is the reorder_wait_ns histogram).
class PooledOrderedRunner : public Runner {
 public:
  explicit PooledOrderedRunner(std::uint32_t workers, RunnerOptions options = {});
  ~PooledOrderedRunner() override;

  PooledOrderedRunner(const PooledOrderedRunner&) = delete;
  PooledOrderedRunner& operator=(const PooledOrderedRunner&) = delete;

  void submit(Task task) override;
  void drain() override;
  void drain_until_idle() override;
  bool idle() const override;
  int notify_fd() const override;
  std::uint32_t workers() const override;

  std::uint64_t submitted() const;
  std::uint64_t delivered() const;

 private:
  struct State;
  void worker_loop(State* state);
  void deliver_one();

  std::unique_ptr<State> state_;
};

/// Low-latency variant for benches: same ordering machinery, busy-waiting
/// workers (RunnerOptions::spin).
class SpinOrderedRunner final : public PooledOrderedRunner {
 public:
  explicit SpinOrderedRunner(std::uint32_t workers, RunnerOptions options = {});
};

/// Builds a runner from the SS_RUNNER environment variable:
///   unset / "inline"  -> InlineRunner
///   "pooled:<N>"      -> PooledOrderedRunner with N workers
///   "spin:<N>"        -> SpinOrderedRunner with N workers
/// Unrecognized specs warn on stderr and fall back to inline. `tag` becomes
/// the metrics prefix (runner/<tag>.*).
std::unique_ptr<Runner> make_runner_from_env(const std::string& tag);

}  // namespace ss::core
