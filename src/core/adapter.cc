#include "core/adapter.h"

#include <limits>

#include "common/logging.h"
#include "obs/trace.h"

namespace ss::core {

namespace {

Bytes vote_material(const std::string& from, const std::string& to,
                    const Bytes& body) {
  Writer w(body.size() + from.size() + to.size() + 8);
  w.str(from);
  w.str(to);
  w.blob(body);
  return std::move(w).take();
}

/// Applies the decided ordering context to a message before it enters the
/// Master — this is the ContextInfo of the paper (§IV-C).
scada::ScadaMessage stamp(const scada::ScadaMessage& msg,
                          const scada::MsgContext& ctx) {
  scada::ScadaMessage out = msg;
  std::visit(
      [&ctx](auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (!std::is_same_v<T, scada::Subscribe> &&
                      !std::is_same_v<T, scada::Unsubscribe>) {
          m.ctx.cid = ctx.cid;
          m.ctx.order = ctx.order;
          m.ctx.timestamp = ctx.timestamp;
        }
      },
      out);
  return out;
}

}  // namespace

std::string adapter_principal(ReplicaId id) {
  return "adapter/" + std::to_string(id.value);
}

Adapter::Adapter(net::Transport& net, GroupConfig group, ReplicaId id,
                 const crypto::Keychain& keys, scada::ScadaMaster& master,
                 AdapterOptions options)
    : net_(net),
      group_(group),
      id_(id),
      endpoint_(adapter_principal(id)),
      keys_(keys),
      master_(master),
      opt_(options) {
  net_.attach(endpoint_,
              [this](net::Message m) { on_adapter_message(std::move(m)); });

  if (opt_.executor_lanes > 1) {
    executor_.reserve(opt_.executor_lanes);
    for (std::uint32_t i = 0; i < opt_.executor_lanes; ++i) {
      executor_.push_back(std::make_unique<net::Lanes>(net, 1));
    }
  }

  // Master output is buffered per ordered request and released when the
  // (virtual) execution time has been served — with executor lanes, a
  // backlogged conflict group delays its own output instead of silently
  // doing free work.
  master_.set_da_sink([this](const std::string& sub,
                             const scada::ScadaMessage& msg) {
    emissions_.emplace_back(sub, msg);
  });
  master_.set_ae_sink([this](const std::string& sub,
                             const scada::ScadaMessage& msg) {
    emissions_.emplace_back(sub, msg);
  });
  master_.set_frontend_sink(
      [this](const std::string& frontend, const scada::ScadaMessage& msg) {
        emissions_.emplace_back(frontend, msg);
      });

  obs_source_ = obs::Registry::instance().add_source(
      endpoint_, [this](const obs::Registry::Emit& emit) {
        emit("scada_requests", static_cast<double>(stats_.scada_requests));
        emit("timeouts_armed", static_cast<double>(stats_.timeouts_armed));
        emit("timeouts_cancelled",
             static_cast<double>(stats_.timeouts_cancelled));
        emit("timeout_votes_sent",
             static_cast<double>(stats_.timeout_votes_sent));
        emit("timeout_votes_received",
             static_cast<double>(stats_.timeout_votes_received));
        emit("timeout_injections",
             static_cast<double>(stats_.timeout_injections));
        emit("unknown_sources", static_cast<double>(stats_.unknown_sources));
        const scada::MasterCounters& mc = master_.counters();
        emit("master.updates_processed",
             static_cast<double>(mc.updates_processed));
        emit("master.writes_allowed", static_cast<double>(mc.writes_allowed));
        emit("master.writes_denied", static_cast<double>(mc.writes_denied));
        emit("master.write_results", static_cast<double>(mc.write_results));
        emit("master.write_timeouts", static_cast<double>(mc.write_timeouts));
        emit("master.events_created", static_cast<double>(mc.events_created));
      });
}

Adapter::~Adapter() { net_.detach(endpoint_); }

void Adapter::register_client(const std::string& source, ClientId client) {
  clients_[source] = client;
  sources_[client.value] = source;
}

void Adapter::route_to_client(const std::string& source,
                              const scada::ScadaMessage& msg) {
  auto it = clients_.find(source);
  if (it == clients_.end()) {
    ++stats_.unknown_sources;
    return;
  }
  if (replica_ != nullptr) {
    replica_->push_to_client(it->second, scada::encode_message(msg));
  }
}

Bytes Adapter::execute_ordered(const bft::ExecuteContext& ctx,
                               ByteView request) {
  CoreRequest req;
  try {
    req = CoreRequest::decode(request);
  } catch (const DecodeError&) {
    Writer w(1);
    w.u8(0);  // malformed request: negative ack (still deterministic)
    return std::move(w).take();
  }

  switch (req.kind) {
    case CoreRequestKind::kScada: {
      ++stats_.scada_requests;
      const SimTime adapter_t0 = net_.now();
      scada::ScadaMessage msg;
      try {
        msg = scada::decode_message(req.body);
      } catch (const DecodeError&) {
        Writer w(1);
        w.u8(0);
        return std::move(w).take();
      }

      scada::MsgContext mctx = context_of(msg);
      mctx.cid = ctx.cid;
      mctx.order = ctx.order;
      mctx.timestamp = ctx.timestamp;
      scada::ScadaMessage stamped = stamp(msg, mctx);

      // A WriteResult from the Frontend resolves the logical timeout.
      if (kind_of(stamped) == scada::ScadaMsgKind::kWriteResult) {
        cancel_write_timeout(mctx.op);
      }

      auto source_it = sources_.find(ctx.client.value);
      std::string source = source_it != sources_.end()
                               ? source_it->second
                               : "client/" + std::to_string(ctx.client.value);

      scada::MasterCounters before = master_.counters();
      const SimTime master_t0 = net_.now();
      master_.handle(stamped, mctx, source);
      obs::Tracer::instance().record(mctx.op, "master", endpoint_.c_str(),
                                     master_t0, net_.now());
      if (replica_ != nullptr) {
        replica_->charge(opt_.costs.adapter_process +
                         opt_.costs.serialize_per_msg);
      }
      charge_execution(stamped, master_cost(before, stamped));
      obs::Tracer::instance().record(mctx.op, "adapter", endpoint_.c_str(),
                                     adapter_t0, net_.now());
      Writer w(1);
      w.u8(1);
      return std::move(w).take();
    }
    case CoreRequestKind::kTimeoutResult: {
      Reader r(req.body);
      OpId op = r.id<OpId>();
      cancel_write_timeout(op);
      if (master_.has_pending_write(op)) {
        ++stats_.timeout_injections;
        master_.inject_timeout_result(op);
      }
      // The synthetic WriteResult's output (timeout result + event) leaves
      // immediately; charge the routine processing cost.
      if (replica_ != nullptr) replica_->charge(opt_.costs.da_process);
      flush_emissions(std::move(emissions_));
      emissions_.clear();
      Writer w(1);
      w.u8(1);
      return std::move(w).take();
    }
  }
  Writer w(1);
  w.u8(0);
  return std::move(w).take();
}

SimTime Adapter::master_cost(const scada::MasterCounters& before,
                             const scada::ScadaMessage& msg) const {
  const scada::MasterCounters& after = master_.counters();
  const sim::CostModel& costs = opt_.costs;
  SimTime cost = costs.da_process;
  if (kind_of(msg) == scada::ScadaMsgKind::kWriteValue) {
    cost += costs.write_block_check;
  }
  std::uint64_t events = after.events_created - before.events_created;
  cost += static_cast<SimTime>(events) *
          (costs.ae_event_create + costs.storage_append);
  std::uint64_t fanout = (after.updates_forwarded - before.updates_forwarded) +
                         (after.events_forwarded - before.events_forwarded);
  cost += static_cast<SimTime>(fanout) * costs.serialize_per_msg;
  std::uint64_t handled = after.updates_processed - before.updates_processed;
  cost += static_cast<SimTime>(handled) * costs.handler_process;
  return cost;
}

void Adapter::flush_emissions(std::vector<Emission> emissions) {
  for (Emission& emission : emissions) {
    // WriteValue commands only ever travel Frontend-ward; each one arms the
    // logical timeout, whichever frontend owns the item.
    if (kind_of(emission.second) == scada::ScadaMsgKind::kWriteValue) {
      arm_write_timeout(context_of(emission.second).op);
    }
    route_to_client(emission.first, emission.second);
  }
}

void Adapter::charge_execution(const scada::ScadaMessage& msg, SimTime cost) {
  std::vector<Emission> emissions = std::move(emissions_);
  emissions_.clear();

  if (executor_.empty()) {
    // Single-threaded prototype: SCADA processing serializes with the
    // protocol on the replica's one thread (the paper's design). Output
    // leaves immediately; the charge throttles future message processing.
    if (replica_ != nullptr) replica_->charge(cost);
    flush_emissions(std::move(emissions));
    return;
  }
  // Parallel execution: conflict group = item id. Same item -> same lane
  // (program order preserved, output released after the work is served);
  // different items proceed concurrently.
  ItemId item = std::visit(
      [](const auto& m) -> ItemId {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, scada::ItemUpdate> ||
                      std::is_same_v<T, scada::WriteValue> ||
                      std::is_same_v<T, scada::WriteResult>) {
          return m.item;
        } else if constexpr (std::is_same_v<T, scada::EventUpdate>) {
          return m.event.item;
        } else {
          return ItemId{0};
        }
      },
      msg);
  executor_[item.value % executor_.size()]->submit(
      cost, [this, emissions = std::move(emissions)]() mutable {
        flush_emissions(std::move(emissions));
      });
}

Bytes Adapter::execute_unordered(ClientId, ByteView request) {
  Writer w(64);
  try {
    Reader r(request);
    auto kind =
        r.enumeration<QueryKind>(static_cast<std::uint64_t>(QueryKind::kMax));
    ItemId item = r.id<ItemId>();
    std::uint64_t arg = r.varint();
    r.expect_done();
    switch (kind) {
      case QueryKind::kReadItem: {
        const scada::Item* found = master_.item(item);
        w.boolean(found != nullptr);
        if (found != nullptr) found->encode(w);
        break;
      }
      case QueryKind::kStateDigest: {
        w.raw(ByteView(master_.state_digest()));
        break;
      }
      case QueryKind::kEventCount: {
        w.varint(master_.storage().size());
        break;
      }
      case QueryKind::kHistoryTail: {
        std::vector<scada::Sample> samples = master_.historian().tail(
            item, static_cast<std::size_t>(std::min<std::uint64_t>(arg, 1024)));
        w.varint(samples.size());
        for (const scada::Sample& sample : samples) sample.encode(w);
        break;
      }
      case QueryKind::kHistoryAggregate: {
        scada::Aggregate agg = master_.historian().aggregate(
            item, 0, std::numeric_limits<SimTime>::max());
        w.varint(agg.count);
        w.f64(agg.min);
        w.f64(agg.max);
        w.f64(agg.mean);
        break;
      }
    }
  } catch (const DecodeError&) {
    // fall through with whatever was written; callers vote on replies anyway
  }
  return std::move(w).take();
}

void Adapter::restore(ByteView data) {
  master_.restore(data);
  // Re-arm logical timeouts for writes that were pending at the snapshot.
  for (auto& [op, timer] : write_timers_) timer.cancel();
  write_timers_.clear();
  for (OpId op : master_.pending_write_ops()) arm_write_timeout(op);
}

// --------------------------------------------------------------------------
// logical timeout protocol

void Adapter::arm_write_timeout(OpId op) {
  if (opt_.write_timeout <= 0) return;
  cancel_write_timeout(op);
  ++stats_.timeouts_armed;
  write_timers_[op.value] =
      net_.schedule(opt_.write_timeout, [this, op] {
        on_write_timeout(op);
      });
}

void Adapter::cancel_write_timeout(OpId op) {
  auto it = write_timers_.find(op.value);
  if (it != write_timers_.end()) {
    ++stats_.timeouts_cancelled;
    it->second.cancel();
    write_timers_.erase(it);
  }
  timeout_votes_.erase(op.value);
}

void Adapter::on_write_timeout(OpId op) {
  write_timers_.erase(op.value);
  if (!master_.has_pending_write(op)) return;
  SS_LOG(LogLevel::kInfo, net_.now(), endpoint_.c_str(),
         "write op %lu timed out; voting", static_cast<unsigned long>(op.value));
  broadcast_vote(op);
  record_vote(TimeoutVote{op, id_});
}

void Adapter::broadcast_vote(OpId op) {
  TimeoutVote vote{op, id_};
  Bytes body = vote.encode();
  for (ReplicaId peer : group_.replica_ids()) {
    if (peer == id_) continue;
    std::string to = adapter_principal(peer);
    crypto::Digest mac = keys_.mac(endpoint_, to,
                                   vote_material(endpoint_, to, body));
    Writer w(body.size() + endpoint_.size() + 40);
    w.str(endpoint_);
    w.blob(body);
    w.raw(ByteView(mac));
    ++stats_.timeout_votes_sent;
    net_.send(endpoint_, to, std::move(w).take());
  }
}

void Adapter::on_adapter_message(net::Message msg) {
  try {
    Reader r(msg.payload);
    std::string sender = r.str();
    Bytes body = r.blob();
    crypto::Digest mac{};
    for (auto& b : mac) b = r.u8();
    r.expect_done();
    if (!keys_.verify(sender, endpoint_,
                      vote_material(sender, endpoint_, body), mac)) {
      return;
    }
    TimeoutVote vote = TimeoutVote::decode(body);
    if (sender != adapter_principal(vote.voter)) return;
    ++stats_.timeout_votes_received;
    record_vote(vote);
  } catch (const DecodeError&) {
    // drop malformed vote
  }
}

void Adapter::record_vote(const TimeoutVote& vote) {
  if (vote.voter.value >= group_.n) return;
  if (!master_.has_pending_write(vote.op)) return;
  auto& votes = timeout_votes_[vote.op.value];
  votes.insert(vote.voter.value);
  if (votes.size() < group_.majority()) return;
  if (injected_.count(vote.op.value) > 0) return;
  injected_.insert(vote.op.value);
  if (injected_.size() > 65536) injected_.erase(injected_.begin());
  if (timeout_client_ != nullptr) {
    SS_LOG(LogLevel::kInfo, net_.now(), endpoint_.c_str(),
           "majority timeout for op %lu; ordering synthetic WriteResult",
           static_cast<unsigned long>(vote.op.value));
    timeout_client_->invoke_ordered(
        CoreRequest::timeout_result(vote.op).encode());
  }
}

}  // namespace ss::core
