// f+1 voting over asynchronous replica pushes.
//
// The ProxyHMI "waits for f+1 matching messages from the replicas" before
// delivering ItemUpdate / EventUpdate / WriteResult to the HMI (paper
// §IV-D); the ProxyFrontend does the same for Master->Frontend WriteValue
// commands. Matching is by message digest — replicas produce byte-identical
// messages because the Adapter stamped deterministic ordering info into
// them (that is the whole point of challenges (c) and (d)).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <set>

#include "common/config.h"
#include "crypto/sha256.h"
#include "scada/messages.h"

namespace ss::core {

struct PushVoterStats {
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  std::uint64_t duplicate_votes = 0;
  std::uint64_t malformed = 0;
  std::uint64_t stragglers = 0;  ///< votes arriving after delivery
};

/// Bounded-memory eviction windows. The defaults are generous enough that a
/// correct deployment never re-delivers; tests shrink them to exercise the
/// prune paths.
struct PushVoterOptions {
  std::size_t delivered_window = 65536;  ///< delivered digests remembered
  std::size_t vote_window = 65536;       ///< open vote sets retained
};

class PushVoter {
 public:
  using Deliver = std::function<void(const scada::ScadaMessage& msg)>;

  PushVoter(const GroupConfig& group, Deliver deliver,
            PushVoterOptions options = {})
      : group_(group), deliver_(std::move(deliver)), opt_(options) {}

  /// Offers one replica's push. Delivers downstream exactly once per
  /// distinct message, as soon as f+1 replicas agree on it.
  void offer(ReplicaId replica, ByteView payload);

  const PushVoterStats& stats() const { return stats_; }

 private:
  void prune();

  GroupConfig group_;
  Deliver deliver_;
  PushVoterOptions opt_;
  std::map<crypto::Digest, std::set<std::uint32_t>> votes_;
  std::deque<crypto::Digest> vote_order_;
  std::set<crypto::Digest> delivered_;
  std::deque<crypto::Digest> delivered_order_;
  PushVoterStats stats_;
};

}  // namespace ss::core
