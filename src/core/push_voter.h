// f+1 voting over asynchronous replica pushes.
//
// The ProxyHMI "waits for f+1 matching messages from the replicas" before
// delivering ItemUpdate / EventUpdate / WriteResult to the HMI (paper
// §IV-D); the ProxyFrontend does the same for Master->Frontend WriteValue
// commands. Matching is by message digest — replicas produce byte-identical
// messages because the Adapter stamped deterministic ordering info into
// them (that is the whole point of challenges (c) and (d)).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "common/config.h"
#include "crypto/sha256.h"
#include "scada/messages.h"

namespace ss::core {

struct PushVoterStats {
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  std::uint64_t duplicate_votes = 0;
  std::uint64_t malformed = 0;
  std::uint64_t stragglers = 0;  ///< votes arriving after delivery
  std::uint64_t replayed = 0;    ///< push seq already seen / too old
};

/// Bounded-memory eviction windows. The defaults are generous enough that a
/// correct deployment never re-delivers; tests shrink them to exercise the
/// prune paths.
struct PushVoterOptions {
  std::size_t delivered_window = 65536;  ///< delivered digests remembered
  std::size_t vote_window = 65536;       ///< open vote sets retained
};

class PushVoter {
 public:
  using Deliver = std::function<void(const scada::ScadaMessage& msg)>;

  PushVoter(const GroupConfig& group, Deliver deliver,
            PushVoterOptions options = {})
      : group_(group), deliver_(std::move(deliver)), opt_(options) {}

  /// Offers one replica's push. Delivers downstream exactly once per
  /// distinct message, as soon as f+1 replicas agree on it.
  ///
  /// `seq` is the replica's monotonic push sequence number (carried inside
  /// the HMAC-covered ServerPush body, so a network attacker cannot strip
  /// or alter it). Each (replica, seq) pair is accepted at most once:
  /// replaying f+1 captured pushes of a message whose digest has already
  /// aged out of the delivered window can no longer re-deliver it to the
  /// HMI. seq == 0 means "unsequenced" and bypasses replay protection
  /// (legacy/test path only; real replicas start at 1).
  void offer(ReplicaId replica, ByteView payload, std::uint64_t seq = 0);

  const PushVoterStats& stats() const { return stats_; }

 private:
  /// IPsec-style (RFC 4303 §3.4.3) sliding anti-replay window: accepts
  /// each sequence number at most once, tolerating reordering of up to 64
  /// in-flight pushes. A bare low-watermark would mis-reject fresh pushes
  /// that UDP delivered out of order.
  struct ReplayWindow {
    std::uint64_t high = 0;    ///< highest seq accepted
    std::uint64_t bitmap = 0;  ///< bit i set => seq (high - i) seen
    bool accept(std::uint64_t seq);
  };

  void prune();

  GroupConfig group_;
  Deliver deliver_;
  PushVoterOptions opt_;
  std::map<crypto::Digest, std::set<std::uint32_t>> votes_;
  std::deque<crypto::Digest> vote_order_;
  std::set<crypto::Digest> delivered_;
  std::deque<crypto::Digest> delivered_order_;
  std::vector<ReplayWindow> replay_windows_;  // indexed by replica id
  PushVoterStats stats_;
};

}  // namespace ss::core
