// Restart-budget accounting for supervised replica processes.
//
// The deploy supervisor restarts a dead replica with exponential backoff,
// but gives up after a bounded number of attempts so a replica that dies on
// startup (bad state dir, port clash) cannot flap forever. The budget is
// time-aware: an attempt counter that only ever grew would, over a long
// campaign, permanently abandon a replica whose crashes were hours apart —
// so sustained healthy uptime grants amnesty and zeroes the counter. Each
// *burst* of crashes still hits the cap.
#pragma once

#include <cstdint>

namespace ss::core {

class RestartBudget {
 public:
  explicit RestartBudget(std::uint32_t max_attempts = 5,
                         long healthy_reset_ms = 10'000,
                         long base_backoff_ms = 200)
      : max_attempts_(max_attempts),
        healthy_reset_ms_(healthy_reset_ms),
        base_backoff_ms_(base_backoff_ms) {}

  /// The process was (re)started at `now_ms`.
  void on_start(long now_ms) { alive_since_ms_ = now_ms; }

  /// The process died at `now_ms`. Returns the backoff delay before the
  /// next restart attempt, or -1 when the budget is exhausted (give up).
  long on_death(long now_ms) {
    note_healthy(now_ms);  // a long healthy run before this death counts
    alive_since_ms_ = -1;
    if (attempts_ >= max_attempts_) return -1;
    long backoff = base_backoff_ms_ << attempts_;
    ++attempts_;
    return backoff;
  }

  /// Periodic tick while the process is alive: after healthy_reset_ms of
  /// uninterrupted uptime the attempt counter resets.
  void note_healthy(long now_ms) {
    if (attempts_ > 0 && alive_since_ms_ >= 0 &&
        now_ms - alive_since_ms_ >= healthy_reset_ms_) {
      attempts_ = 0;
    }
  }

  std::uint32_t attempts() const { return attempts_; }
  bool exhausted() const { return attempts_ >= max_attempts_; }

 private:
  std::uint32_t max_attempts_;
  long healthy_reset_ms_;
  long base_backoff_ms_;
  std::uint32_t attempts_ = 0;
  long alive_since_ms_ = -1;  ///< -1 while dead
};

}  // namespace ss::core
