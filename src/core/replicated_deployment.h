// The SMaRt-SCADA deployment (paper Figure 5): one Frontend + ProxyFrontend,
// one HMI + ProxyHMI, and n ProxyMasters (3f+1 under PBFT, 2f+1 under
// MinBFT — set GroupConfig::protocol via ReplicatedOptions::group), each
// bundling a BFT replica, an Adapter, and a deterministic single-threaded
// SCADA Master.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bft/client.h"
#include "bft/replica.h"
#include "core/adapter.h"
#include "core/nodes.h"
#include "core/proxies.h"
#include "crypto/keychain.h"
#include "scada/frontend.h"
#include "scada/hmi.h"
#include "scada/master.h"
#include "sim/cost_model.h"
#include "sim/event_loop.h"
#include "sim/network.h"
#include "storage/env.h"
#include "storage/replica_storage.h"

namespace ss::core {

struct ReplicatedOptions {
  GroupConfig group = GroupConfig::for_f(1);
  sim::CostModel costs = sim::CostModel::paper_testbed();
  SimTime write_timeout = millis(800);      ///< logical timeout
  SimTime request_timeout = millis(400);    ///< replica leader-suspect timer
  SimTime client_reply_timeout = millis(300);
  std::uint32_t max_batch = 64;
  std::uint64_t checkpoint_interval = 128;
  std::uint64_t fault_seed = 0xFA111;
  /// Event-storage retention per Master (0 = unlimited); benches bound it.
  std::size_t storage_retention = 0;
  /// Parallel-execution lanes per Adapter (paper §VII-b future work);
  /// 1 = the paper's single-threaded prototype. See AdapterOptions.
  std::uint32_t executor_lanes = 1;
  /// Gives every replica a durable store (in-memory Env with real crash
  /// semantics): decided batches are write-ahead logged and checkpoints hit
  /// "disk", enabling kill_replica_process / restart_replica_process.
  bool durable = false;
  /// How long replicas keep accepting a peer's previous session-key epoch
  /// after it reincarnates (bft::ReplicaOptions::epoch_handover_window).
  SimTime epoch_handover_window = seconds(2);
  /// Backpressure cap on the frontend proxy's in-flight ordered requests
  /// (0 = unlimited): excess field updates are shed at the edge instead of
  /// amplifying an overload into the agreement group. HMI operator writes
  /// ride their own proxy and are never shed.
  std::uint32_t frontend_max_inflight = 0;
};

/// Well-known client ids.
inline constexpr std::uint32_t kProxyHmiClient = 1;
inline constexpr std::uint32_t kProxyFrontendClient = 2;
inline constexpr std::uint32_t kAdapterClientBase = 100;

class ReplicatedDeployment {
 public:
  explicit ReplicatedDeployment(ReplicatedOptions options = {});
  ~ReplicatedDeployment();

  /// Registers one data point on the Frontend and every Master replica.
  ItemId add_point(const std::string& name, scada::Variant initial = {});

  /// Applies a configuration function to every Master replica — handler
  /// chains must be configured identically on all of them.
  void configure_masters(
      const std::function<void(scada::ScadaMaster&)>& configure);

  /// Subscribes the HMI; call once after configuration.
  void start();

  std::uint32_t n() const { return opt_.group.n; }
  const GroupConfig& group() const { return opt_.group; }

  sim::EventLoop& loop() { return loop_; }
  sim::Network& net() { return net_; }
  scada::Hmi& hmi() { return hmi_; }
  scada::Frontend& frontend() { return frontend_; }
  scada::ScadaMaster& master(std::uint32_t i) { return *masters_.at(i); }
  bft::Replica& replica(std::uint32_t i) { return *replicas_.at(i); }
  Adapter& adapter(std::uint32_t i) { return *adapters_.at(i); }
  ComponentProxy& proxy_hmi() { return *proxy_hmi_; }
  ComponentProxy& proxy_frontend() { return *proxy_frontend_; }
  const crypto::Keychain& keys() const { return keys_; }

  /// Fault injection helpers.
  void crash_replica(std::uint32_t i) { replicas_.at(i)->crash(); }
  void recover_replica(std::uint32_t i) { replicas_.at(i)->recover(); }
  void set_byzantine(std::uint32_t i, bft::ByzantineMode mode) {
    replicas_.at(i)->set_byzantine(mode);
  }

  // Gray-failure injection (chaos hooks): replica i stays correct but slow.
  /// Extra virtual CPU per inbound message on replica i (0 clears).
  void set_processing_delay(std::uint32_t i, SimTime delay) {
    replicas_.at(i)->set_processing_delay(delay);
  }
  /// Local-timer skew multiplier on replica i (1.0 clears).
  void set_timer_skew(std::uint32_t i, double factor) {
    replicas_.at(i)->set_timer_skew(factor);
  }
  /// Every fsync in replica i's state dir charges this much extra virtual
  /// CPU to the replica — a degraded disk (0 clears). Durable mode only;
  /// otherwise a no-op (nothing ever syncs).
  void set_fsync_stall(std::uint32_t i, SimTime stall);

  /// `kill -9` of a replica "process" (durable mode only): unsynced bytes
  /// vanish from its state dir and the replica goes silent until
  /// restart_replica_process. Without `durable`, degrades to crash_replica.
  void kill_replica_process(std::uint32_t i);
  /// Restarts a killed replica the way a supervisor would restart the real
  /// process: volatile state is lost, durable state is recovered from the
  /// state dir, and the gap is filled by state transfer from the peers.
  void restart_replica_process(std::uint32_t i);
  bool replica_killed(std::uint32_t i) const { return killed_.at(i); }
  bool durable() const { return opt_.durable; }

  storage::MemEnv& storage_env() { return storage_env_; }
  storage::ReplicaStorage* replica_storage(std::uint32_t i) {
    return opt_.durable ? replica_storage_.at(i).get() : nullptr;
  }

  /// Voter/adapter stat exposure for invariant checkers and benches.
  const PushVoterStats& hmi_voter_stats() const {
    return proxy_hmi_->voter_stats();
  }
  const PushVoterStats& frontend_voter_stats() const {
    return proxy_frontend_->voter_stats();
  }
  const AdapterStats& adapter_stats(std::uint32_t i) const {
    return adapters_.at(i)->stats();
  }
  const bft::ReplicaStats& replica_stats(std::uint32_t i) const {
    return replicas_.at(i)->stats();
  }

  /// True when all non-crashed masters report the same state digest.
  bool masters_converged() const;

  void run_until(SimTime deadline) { loop_.run_until(deadline); }
  void settle() { loop_.run(); }

 private:
  ReplicatedOptions opt_;
  sim::EventLoop loop_;
  sim::Network net_;
  crypto::Keychain keys_;

  std::vector<std::unique_ptr<scada::ScadaMaster>> masters_;
  std::vector<std::unique_ptr<Adapter>> adapters_;
  std::vector<std::unique_ptr<bft::Replica>> replicas_;
  std::vector<std::unique_ptr<bft::ClientProxy>> adapter_clients_;

  // Durable mode: one simulated "disk" shared by the deployment, one state
  // dir per replica, and the genesis image reboot() restores before
  // layering recovered state on top (captured in start(), pre-traffic).
  storage::MemEnv storage_env_;
  std::vector<std::unique_ptr<storage::ReplicaStorage>> replica_storage_;
  std::vector<Bytes> genesis_images_;
  std::vector<bool> killed_;
  /// Per-replica fsync-stall injection (index = replica). Lazily sized on
  /// first use; drives the MemEnv sync observer.
  std::vector<SimTime> fsync_stalls_;

  std::unique_ptr<ComponentProxy> proxy_hmi_;
  std::unique_ptr<ComponentProxy> proxy_frontend_;

  scada::Frontend frontend_;
  scada::Hmi hmi_;
  std::unique_ptr<FrontendNode> frontend_node_;
  std::unique_ptr<HmiNode> hmi_node_;
};

}  // namespace ss::core
