#include "core/scada_link.h"

namespace ss::core {

namespace {

Bytes frame_material(const std::string& from, const std::string& to,
                     const Bytes& body) {
  Writer w(body.size() + from.size() + to.size() + 8);
  w.str(from);
  w.str(to);
  w.blob(body);
  return std::move(w).take();
}

}  // namespace

void send_scada(net::Transport& net, const crypto::Keychain& keys,
                const std::string& from, const std::string& to,
                const scada::ScadaMessage& msg) {
  Bytes body = scada::encode_message(msg);
  crypto::Digest mac = keys.mac(from, to, frame_material(from, to, body));
  Writer w(body.size() + from.size() + 40);
  w.str(from);
  w.blob(body);
  w.raw(ByteView(mac));
  net.send(from, to, std::move(w).take());
}

std::optional<scada::ScadaMessage> receive_scada(const crypto::Keychain& keys,
                                                 const std::string& self,
                                                 const net::Message& msg,
                                                 std::string* sender_out) {
  try {
    Reader r(msg.payload);
    std::string sender = r.str();
    Bytes body = r.blob();
    crypto::Digest mac{};
    for (auto& b : mac) b = r.u8();
    r.expect_done();
    if (!keys.verify(sender, self, frame_material(sender, self, body), mac)) {
      return std::nullopt;
    }
    scada::ScadaMessage decoded = scada::decode_message(body);
    if (sender_out != nullptr) *sender_out = std::move(sender);
    return decoded;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

}  // namespace ss::core
