// ProxyHMI and ProxyFrontend (paper §IV-A).
//
// Both proxies have the same shape: they terminate the component's secure
// SCADA link, forward every inbound message as an ordered BFT request (so
// the replicas see a single, totally-ordered entry point), and run an f+1
// voter over the asynchronous replica pushes before releasing them to the
// component. ProxyHMI additionally emulates the Master's DA/AE servers
// toward the HMI and ProxyFrontend emulates a DA server toward the
// Frontend — in this codebase that emulation is exactly the act of
// terminating the link and speaking plain SCADA frames on it.
#pragma once

#include <string>

#include "bft/client.h"
#include "core/push_voter.h"
#include "core/requests.h"
#include "core/scada_link.h"
#include "net/lanes.h"

namespace ss::core {

struct ProxyOptions {
  std::string endpoint;            ///< the proxy's own network name
  std::string component_endpoint;  ///< the HMI / Frontend it serves
  SimTime per_message_cost = 0;    ///< CPU charged per message each way
  std::uint32_t lanes = 2;
  bft::ClientOptions client;
  PushVoterOptions voter;
};

struct ProxyStats {
  std::uint64_t forwarded = 0;   ///< component -> replicas (ordered)
  std::uint64_t delivered = 0;   ///< voted pushes -> component
  std::uint64_t rejected = 0;    ///< bad frames from the component link
};

class ComponentProxy {
 public:
  ComponentProxy(net::Transport& net, GroupConfig group, ClientId id,
                 const crypto::Keychain& keys, ProxyOptions options);
  ~ComponentProxy();

  ComponentProxy(const ComponentProxy&) = delete;
  ComponentProxy& operator=(const ComponentProxy&) = delete;

  ClientId client_id() const { return client_.id(); }
  const std::string& endpoint() const { return opt_.endpoint; }
  const ProxyStats& stats() const { return stats_; }
  const PushVoterStats& voter_stats() const { return voter_.stats(); }
  const bft::ClientStats& client_stats() const { return client_.stats(); }

 private:
  void on_component_message(net::Message msg);
  void deliver(const scada::ScadaMessage& msg);

  net::Transport& net_;
  const crypto::Keychain& keys_;
  ProxyOptions opt_;
  bft::ClientProxy client_;
  PushVoter voter_;
  net::Lanes lanes_;
  ProxyStats stats_;
};

}  // namespace ss::core
