#include "core/baseline_deployment.h"

#include <stdexcept>

#include "obs/trace.h"

namespace ss::core {

namespace {

scada::MasterOptions baseline_master_options(sim::EventLoop& loop,
                                             SimTime skew,
                                             std::size_t retention) {
  scada::MasterOptions options;
  options.deterministic = false;
  options.clock = [&loop, skew] { return loop.now() + skew; };
  options.storage_retention = retention;
  return options;
}

}  // namespace

BaselineDeployment::BaselineDeployment(BaselineOptions options)
    : opt_(options),
      net_(loop_, opt_.costs.hop_latency, opt_.costs.ns_per_byte,
           opt_.fault_seed),
      keys_("baseline-secret"),
      master_(baseline_master_options(loop_, opt_.master_clock_skew,
                                      opt_.storage_retention)),
      frontend_(scada::FrontendOptions{.instance_id = 1}),
      hmi_(scada::HmiOptions{.instance_id = 2,
                             .subscriber_name = kHmiEndpoint}),
      master_node_(net_, keys_, master_, opt_.costs, kMasterEndpoint,
                   opt_.costs.baseline_master_lanes),
      frontend_node_(net_, keys_, frontend_,
                     NodeOptions{.endpoint = kFrontendEndpoint,
                                 .peer = kMasterEndpoint,
                                 .per_message_cost =
                                     opt_.costs.serialize_per_msg,
                                 .lanes = opt_.costs.frontend_lanes}),
      hmi_node_(net_, keys_, hmi_,
                NodeOptions{.endpoint = kHmiEndpoint,
                            .peer = kMasterEndpoint,
                            .per_message_cost = opt_.costs.serialize_per_msg,
                            .lanes = opt_.costs.hmi_lanes}) {
  obs::Tracer::instance().set_clock([this] { return loop_.now(); });
}

BaselineDeployment::~BaselineDeployment() {
  obs::Tracer::instance().set_clock(nullptr);
}

ItemId BaselineDeployment::add_point(const std::string& name,
                                     scada::Variant initial) {
  ItemId frontend_id = frontend_.add_item(name, std::move(initial));
  ItemId master_id = master_.add_item(name);
  if (frontend_id != master_id) {
    throw std::logic_error("item id mismatch between frontend and master");
  }
  return master_id;
}

void BaselineDeployment::start() {
  hmi_.subscribe_all();
  loop_.run_until(loop_.now() + opt_.costs.hop_latency * 4 + millis(1));
}

}  // namespace ss::core
