// The request vocabulary between the SMaRt-SCADA proxies and the Adapter.
//
// Every ordered BFT request carries one CoreRequest: either a SCADA message
// funneled through the single entry point, or a logical-timeout result
// injection (the deterministic variant of the paper's "empty WriteResult").
// Unordered requests are read-only queries served from local replica state.
#pragma once

#include <cstdint>

#include "common/serialization.h"
#include "common/types.h"
#include "scada/messages.h"

namespace ss::core {

enum class CoreRequestKind : std::uint8_t {
  kScada = 0,          ///< body: encoded ScadaMessage
  kTimeoutResult = 1,  ///< body: OpId of the write to unblock
  kMax = kTimeoutResult,
};

struct CoreRequest {
  CoreRequestKind kind = CoreRequestKind::kScada;
  Bytes body;

  Bytes encode() const {
    Writer w(body.size() + 4);
    w.enumeration(kind);
    w.blob(body);
    return std::move(w).take();
  }

  static CoreRequest decode(ByteView data) {
    Reader r(data);
    CoreRequest req;
    req.kind = r.enumeration<CoreRequestKind>(
        static_cast<std::uint64_t>(CoreRequestKind::kMax));
    req.body = r.blob();
    r.expect_done();
    return req;
  }

  static CoreRequest scada(const scada::ScadaMessage& msg) {
    return CoreRequest{CoreRequestKind::kScada, scada::encode_message(msg)};
  }

  static CoreRequest timeout_result(OpId op) {
    Writer w(8);
    w.id(op);
    return CoreRequest{CoreRequestKind::kTimeoutResult, std::move(w).take()};
  }
};

/// Read-only queries served by execute_unordered.
enum class QueryKind : std::uint8_t {
  kReadItem = 0,      ///< body: ItemId -> encoded Item (or empty if unknown)
  kStateDigest = 1,   ///< -> 32-byte master state digest
  kEventCount = 2,    ///< -> varint total events appended
  kHistoryTail = 3,   ///< ItemId + n -> last n archive samples (oldest first)
  kHistoryAggregate = 4,  ///< ItemId -> count/min/max/mean over the archive
  kMax = kHistoryAggregate,
};

inline Bytes encode_query(QueryKind kind, ItemId item = ItemId{0},
                          std::uint64_t arg = 0) {
  Writer w(12);
  w.enumeration(kind);
  w.id(item);
  w.varint(arg);
  return std::move(w).take();
}

/// The Adapter's inter-replica timeout vote (paper §IV-D).
struct TimeoutVote {
  OpId op;
  ReplicaId voter;

  Bytes encode() const {
    Writer w(12);
    w.id(op);
    w.id(voter);
    return std::move(w).take();
  }
  static TimeoutVote decode(ByteView data) {
    Reader r(data);
    TimeoutVote v;
    v.op = r.id<OpId>();
    v.voter = r.id<ReplicaId>();
    r.expect_done();
    return v;
  }
};

}  // namespace ss::core
