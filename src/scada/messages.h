// SCADA wire messages: the DA (Data Access) and AE (Alarms & Events)
// vocabulary of the paper's Figures 3/4/6/7 — ItemUpdate, WriteValue,
// WriteResult, EventUpdate, plus subscription management.
//
// Every data-bearing message carries a MsgContext. In the baseline system it
// only holds the operation id; in SMaRt-SCADA the Adapter fills in the
// consensus ordering and the deterministic timestamp, which is how the HMI
// identifies asynchronous replica messages (paper challenge (d)) and how the
// f+1 voters match them.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/serialization.h"
#include "common/types.h"
#include "crypto/sha256.h"
#include "scada/event.h"
#include "scada/item.h"
#include "scada/variant.h"

namespace ss::scada {

/// Ordering/timestamp context stamped by the Adapter (replicated mode).
struct MsgContext {
  OpId op;              ///< end-to-end operation this message belongs to
  ConsensusId cid;      ///< consensus instance that ordered the operation
  std::uint32_t order = 0;  ///< position within the decided batch
  SimTime timestamp = 0;    ///< deterministic operation timestamp

  void encode(Writer& w) const {
    w.id(op);
    w.id(cid);
    w.varint(order);
    w.i64(timestamp);
  }
  static MsgContext decode(Reader& r) {
    MsgContext c;
    c.op = r.id<OpId>();
    c.cid = r.id<ConsensusId>();
    c.order = r.varint32();
    c.timestamp = r.i64();
    return c;
  }
  bool operator==(const MsgContext&) const = default;
};

enum class ScadaMsgKind : std::uint8_t {
  kSubscribe = 0,
  kUnsubscribe,
  kItemUpdate,
  kWriteValue,
  kWriteResult,
  kEventUpdate,
  kMax = kEventUpdate,
};

const char* scada_msg_kind_name(ScadaMsgKind kind);

/// DA channel selector for subscriptions.
enum class Channel : std::uint8_t { kDa = 0, kAe = 1 };

struct Subscribe {
  Channel channel = Channel::kDa;
  ItemId item;  ///< 0 = all items
  std::string subscriber;
};

struct Unsubscribe {
  Channel channel = Channel::kDa;
  ItemId item;
  std::string subscriber;
};

struct ItemUpdate {
  MsgContext ctx;
  ItemId item;
  Variant value;
  Quality quality = Quality::kGood;
  SimTime source_time = 0;  ///< when the Frontend/RTU saw the change
};

enum class WriteStatus : std::uint8_t {
  kOk = 0,
  kDenied,    ///< rejected by the Block handler
  kTimeout,   ///< synthesized by the logical-timeout protocol
  kFailed,    ///< RTU reported failure
  kMax = kFailed,
};

const char* write_status_name(WriteStatus status);

struct WriteValue {
  MsgContext ctx;
  ItemId item;
  Variant value;
};

struct WriteResult {
  MsgContext ctx;
  ItemId item;
  WriteStatus status = WriteStatus::kOk;
  std::string reason;
};

struct EventUpdate {
  MsgContext ctx;
  Event event;
};

using ScadaMessage = std::variant<Subscribe, Unsubscribe, ItemUpdate,
                                  WriteValue, WriteResult, EventUpdate>;

ScadaMsgKind kind_of(const ScadaMessage& msg);

/// Deterministic encoding with a leading kind tag.
Bytes encode_message(const ScadaMessage& msg);

/// Throws DecodeError on malformed input.
ScadaMessage decode_message(ByteView data);

/// Digest of the encoded message — what the ProxyHMI/ProxyFrontend voters
/// compare across replicas.
crypto::Digest message_digest(const ScadaMessage& msg);

/// The MsgContext of any data-bearing message (Subscribe/Unsubscribe have
/// none and return a default context).
MsgContext context_of(const ScadaMessage& msg);

}  // namespace ss::scada
