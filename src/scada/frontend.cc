#include "scada/frontend.h"

#include "obs/trace.h"

namespace ss::scada {

Frontend::Frontend(FrontendOptions options) : opt_(options) {}

ItemId Frontend::add_item(const std::string& name, Variant initial) {
  ItemId id = registry_.register_item(name);
  auto [it, inserted] = items_.try_emplace(id.value);
  if (inserted) {
    it->second.id = id;
    it->second.name = name;
    it->second.value = std::move(initial);
    it->second.quality = Quality::kUncertain;
  }
  return id;
}

const Item* Frontend::item(ItemId id) const {
  auto it = items_.find(id.value);
  return it == items_.end() ? nullptr : &it->second;
}

OpId Frontend::next_op() {
  return OpId{(static_cast<std::uint64_t>(opt_.instance_id) << 40) |
              ++op_counter_};
}

void Frontend::field_update(ItemId item, Variant value, Quality quality,
                            SimTime source_time) {
  auto it = items_.find(item.value);
  if (it == items_.end()) return;
  it->second.value = value;
  it->second.quality = quality;
  it->second.timestamp = source_time;

  ItemUpdate update;
  update.ctx.op = next_op();
  update.item = item;
  update.value = std::move(value);
  update.quality = quality;
  update.source_time = source_time;
  ++counters_.updates_sent;
  if (master_sink_) master_sink_(ScadaMessage{std::move(update)});
}

void Frontend::handle(const ScadaMessage& msg) {
  if (kind_of(msg) != ScadaMsgKind::kWriteValue) return;
  const auto& write = std::get<WriteValue>(msg);
  ++counters_.writes_received;
  // Frontend span: command arrival through the WriteResult leaving for the
  // Master (covers the field round trip, if any).
  obs::Tracer::instance().begin(write.ctx.op, "frontend", "frontend");

  auto finish = [this, ctx = write.ctx, item = write.item,
                 value = write.value](bool ok, std::string reason) {
    obs::Tracer::instance().end(ctx.op, "frontend");
    auto it = items_.find(item.value);
    if (ok && it != items_.end()) {
      it->second.value = value;
      it->second.quality = Quality::kGood;
    }
    WriteResult result;
    result.ctx = ctx;
    result.item = item;
    result.status = ok ? WriteStatus::kOk : WriteStatus::kFailed;
    result.reason = std::move(reason);
    ++counters_.write_results_sent;
    if (!ok) ++counters_.write_failures;
    if (master_sink_) master_sink_(ScadaMessage{std::move(result)});
  };

  if (items_.count(write.item.value) == 0) {
    finish(false, "unknown item at frontend");
    return;
  }
  if (field_writer_) {
    field_writer_(write.ctx.op, write.item, write.value, finish);
  } else {
    finish(true, "");
  }
}

}  // namespace ss::scada
