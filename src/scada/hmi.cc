#include "scada/hmi.h"

#include "obs/trace.h"

namespace ss::scada {

Hmi::Hmi(HmiOptions options) : opt_(std::move(options)) {}

OpId Hmi::next_op() {
  return OpId{(static_cast<std::uint64_t>(opt_.instance_id) << 40) |
              ++op_counter_};
}

void Hmi::subscribe_all() {
  subscribe(Channel::kDa, ItemId{0});
  subscribe(Channel::kAe, ItemId{0});
}

void Hmi::subscribe(Channel channel, ItemId item) {
  Subscribe msg;
  msg.channel = channel;
  msg.item = item;
  msg.subscriber = opt_.subscriber_name;
  if (master_sink_) master_sink_(ScadaMessage{std::move(msg)});
}

OpId Hmi::write(ItemId item, Variant value, WriteCallback on_result) {
  OpId op = next_op();
  ++counters_.writes_issued;
  pending_[op.value] = std::move(on_result);
  // The hmi span brackets the whole operation: write issued to WriteResult
  // received, spanning every other stage.
  obs::Tracer::instance().begin(op, "hmi", opt_.subscriber_name.c_str());

  WriteValue msg;
  msg.ctx.op = op;
  msg.item = item;
  msg.value = std::move(value);
  if (master_sink_) master_sink_(ScadaMessage{std::move(msg)});
  return op;
}

void Hmi::handle(const ScadaMessage& msg) {
  switch (kind_of(msg)) {
    case ScadaMsgKind::kItemUpdate: {
      const auto& update = std::get<ItemUpdate>(msg);
      ++counters_.updates_received;
      Item& mirror = mirror_[update.item.value];
      mirror.id = update.item;
      mirror.value = update.value;
      mirror.quality = update.quality;
      mirror.timestamp = update.ctx.timestamp;
      if (on_update_) on_update_(update);
      break;
    }
    case ScadaMsgKind::kEventUpdate: {
      const auto& event = std::get<EventUpdate>(msg);
      ++counters_.events_received;
      event_log_.push_back(event.event);
      if (on_event_) on_event_(event);
      break;
    }
    case ScadaMsgKind::kWriteResult: {
      const auto& result = std::get<WriteResult>(msg);
      auto it = pending_.find(result.ctx.op.value);
      if (it == pending_.end()) return;  // duplicate result
      WriteCallback callback = std::move(it->second);
      pending_.erase(it);
      obs::Tracer::instance().end(result.ctx.op, "hmi");
      switch (result.status) {
        case WriteStatus::kOk:
          ++counters_.writes_ok;
          break;
        case WriteStatus::kDenied:
          ++counters_.writes_denied;
          break;
        case WriteStatus::kTimeout:
          ++counters_.writes_timeout;
          break;
        case WriteStatus::kFailed:
          ++counters_.writes_failed;
          break;
      }
      if (callback) callback(result);
      break;
    }
    default:
      break;
  }
}

const Item* Hmi::item(ItemId id) const {
  auto it = mirror_.find(id.value);
  return it == mirror_.end() ? nullptr : &it->second;
}

}  // namespace ss::scada
