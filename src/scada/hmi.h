// The HMI: the operator's window into the system (paper §II-A). It mirrors
// subscribed items, collects alarm events, and issues write commands whose
// WriteResult it awaits synchronously (the paper's Write-value use case).
//
// Transport-agnostic; the deployment wires master_sink to the network
// (baseline) or to the ProxyHMI (replicated). Either way the HMI is unaware
// of replication — it just sees DA/AE traffic (paper §IV-C).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "scada/event.h"
#include "scada/item.h"
#include "scada/messages.h"

namespace ss::scada {

struct HmiOptions {
  std::uint32_t instance_id = 2;  ///< OpId namespace (see FrontendOptions)
  std::string subscriber_name = "hmi";
};

struct HmiCounters {
  std::uint64_t updates_received = 0;
  std::uint64_t events_received = 0;
  std::uint64_t writes_issued = 0;
  std::uint64_t writes_ok = 0;
  std::uint64_t writes_denied = 0;
  std::uint64_t writes_timeout = 0;
  std::uint64_t writes_failed = 0;
};

class Hmi {
 public:
  using MasterSink = std::function<void(const ScadaMessage&)>;
  using WriteCallback = std::function<void(const WriteResult&)>;
  using UpdateCallback = std::function<void(const ItemUpdate&)>;
  using EventCallback = std::function<void(const EventUpdate&)>;

  explicit Hmi(HmiOptions options = {});

  void set_master_sink(MasterSink sink) { master_sink_ = std::move(sink); }
  void set_update_callback(UpdateCallback cb) { on_update_ = std::move(cb); }
  void set_event_callback(EventCallback cb) { on_event_ = std::move(cb); }

  const std::string& subscriber_name() const { return opt_.subscriber_name; }

  /// Subscribes to every item on both the DA and AE channels.
  void subscribe_all();
  void subscribe(Channel channel, ItemId item);

  /// Issues a write; the callback fires when the WriteResult arrives.
  OpId write(ItemId item, Variant value, WriteCallback on_result = {});

  /// Handles a message pushed by the Master (ItemUpdate / EventUpdate /
  /// WriteResult).
  void handle(const ScadaMessage& msg);

  /// Last known value of an item (mirror refreshed by ItemUpdate).
  const Item* item(ItemId id) const;
  const std::vector<Event>& event_log() const { return event_log_; }
  const HmiCounters& counters() const { return counters_; }
  std::size_t pending_writes() const { return pending_.size(); }

 private:
  OpId next_op();

  HmiOptions opt_;
  std::map<std::uint32_t, Item> mirror_;
  std::vector<Event> event_log_;
  std::map<std::uint64_t, WriteCallback> pending_;  // by op id
  std::uint64_t op_counter_ = 0;
  MasterSink master_sink_;
  UpdateCallback on_update_;
  EventCallback on_event_;
  HmiCounters counters_;
};

}  // namespace ss::scada
