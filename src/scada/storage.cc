#include "scada/storage.h"

namespace ss::scada {

const Event& EventStorage::append(Event event) {
  event.id = EventId{appended_ + 1};
  Writer w(96);
  event.encode(w);

  crypto::Sha256 hasher;
  hasher.update(ByteView(chain_));
  hasher.update(w.bytes());
  chain_ = hasher.finish();

  ++appended_;
  events_.push_back(std::move(event));
  if (retention_ > 0 && events_.size() > retention_) events_.pop_front();
  return events_.back();
}

std::vector<Event> EventStorage::query_item(ItemId item) const {
  std::vector<Event> out;
  for (const Event& e : events_) {
    if (e.item == item) out.push_back(e);
  }
  return out;
}

std::vector<Event> EventStorage::query_severity(Severity floor) const {
  std::vector<Event> out;
  for (const Event& e : events_) {
    if (e.severity >= floor) out.push_back(e);
  }
  return out;
}

std::vector<Event> EventStorage::query_range(SimTime from, SimTime to) const {
  std::vector<Event> out;
  for (const Event& e : events_) {
    if (e.timestamp >= from && e.timestamp <= to) out.push_back(e);
  }
  return out;
}

void EventStorage::encode(Writer& w) const {
  w.varint(appended_);
  w.raw(ByteView(chain_));
  w.varint(events_.size());
  for (const Event& e : events_) e.encode(w);
}

void EventStorage::decode(Reader& r) {
  appended_ = r.varint();
  for (auto& b : chain_) b = r.u8();
  std::uint64_t n = r.varint();
  events_.clear();
  for (std::uint64_t i = 0; i < n; ++i) events_.push_back(Event::decode(r));
}

}  // namespace ss::scada
