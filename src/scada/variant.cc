#include "scada/variant.h"

#include <cmath>
#include <stdexcept>

namespace ss::scada {

bool Variant::as_bool() const {
  if (type() != Type::kBool) throw std::runtime_error("Variant: not a bool");
  return std::get<bool>(value_);
}

std::int64_t Variant::as_int() const {
  switch (type()) {
    case Type::kInt64:
      return std::get<std::int64_t>(value_);
    case Type::kDouble:
      return static_cast<std::int64_t>(std::llround(std::get<double>(value_)));
    default:
      throw std::runtime_error("Variant: not numeric");
  }
}

double Variant::as_double() const {
  switch (type()) {
    case Type::kInt64:
      return static_cast<double>(std::get<std::int64_t>(value_));
    case Type::kDouble:
      return std::get<double>(value_);
    default:
      throw std::runtime_error("Variant: not numeric");
  }
}

const std::string& Variant::as_string() const {
  if (type() != Type::kString) throw std::runtime_error("Variant: not a string");
  return std::get<std::string>(value_);
}

double Variant::to_double_or_zero() const {
  switch (type()) {
    case Type::kInt64:
      return static_cast<double>(std::get<std::int64_t>(value_));
    case Type::kDouble:
      return std::get<double>(value_);
    case Type::kBool:
      return std::get<bool>(value_) ? 1.0 : 0.0;
    default:
      return 0.0;
  }
}

void Variant::encode(Writer& w) const {
  w.enumeration(type());
  switch (type()) {
    case Type::kNull:
      break;
    case Type::kBool:
      w.boolean(std::get<bool>(value_));
      break;
    case Type::kInt64:
      w.i64(std::get<std::int64_t>(value_));
      break;
    case Type::kDouble:
      w.f64(std::get<double>(value_));
      break;
    case Type::kString:
      w.str(std::get<std::string>(value_));
      break;
  }
}

Variant Variant::decode(Reader& r) {
  Type t = r.enumeration<Type>(static_cast<std::uint64_t>(Type::kMax));
  switch (t) {
    case Type::kNull:
      return Variant{};
    case Type::kBool:
      return Variant{r.boolean()};
    case Type::kInt64:
      return Variant{r.i64()};
    case Type::kDouble:
      return Variant{r.f64()};
    case Type::kString:
      return Variant{r.str()};
  }
  throw DecodeError("bad variant type");
}

std::string Variant::debug_string() const {
  switch (type()) {
    case Type::kNull:
      return "null";
    case Type::kBool:
      return std::get<bool>(value_) ? "true" : "false";
    case Type::kInt64:
      return std::to_string(std::get<std::int64_t>(value_));
    case Type::kDouble:
      return std::to_string(std::get<double>(value_));
    case Type::kString:
      return "\"" + std::get<std::string>(value_) + "\"";
  }
  return "?";
}

}  // namespace ss::scada
