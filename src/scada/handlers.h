// Item handlers (NeoSCADA's default handler set, §II-A of the paper).
//
// Handlers are attached to a Master item and process its data: Scale scales
// values, Override replaces them, Monitor raises alarm events past a
// threshold, Block gates write operations. Deadband and Clamp demonstrate
// the "others can be added" extension point. Handlers may keep state (e.g.
// Monitor's edge detection), which therefore participates in the replica
// snapshot — encode_state/decode_state must round-trip deterministically.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/serialization.h"
#include "common/types.h"
#include "scada/event.h"
#include "scada/variant.h"

namespace ss::scada {

/// What the master knows about the operation being processed; timestamp is
/// the deterministic one in replicated mode.
struct HandlerContext {
  ItemId item;
  std::string item_name;
  SimTime timestamp = 0;
  OpId op;
};

/// Outcome of running a value through a handler.
enum class UpdateAction : std::uint8_t {
  kContinue,  ///< pass the (possibly modified) value down the chain
  kSuppress,  ///< drop the update entirely (e.g. inside a deadband)
};

class Handler {
 public:
  virtual ~Handler() = default;
  virtual std::string_view name() const = 0;

  /// Processes an incoming value update. May modify `value` and append
  /// events. Returning kSuppress stops the chain and drops the update.
  virtual UpdateAction on_update(const HandlerContext& ctx, Variant& value,
                                 std::vector<Event>& events);

  /// Gates a write request. Returning false denies the write; `reason`
  /// then explains why (it travels back to the operator, and an event with
  /// the reason is recorded — paper §II-B).
  virtual bool on_write(const HandlerContext& ctx, const Variant& requested,
                        std::vector<Event>& events, std::string& reason);

  /// Observes the completion of a write operation.
  virtual void on_write_result(const HandlerContext& ctx, bool success,
                               std::vector<Event>& events);

  /// Handler-local state, included in replica snapshots.
  virtual void encode_state(Writer& w) const;
  virtual void decode_state(Reader& r);
};

/// value' = value * factor + offset (numeric values only).
class ScaleHandler final : public Handler {
 public:
  ScaleHandler(double factor, double offset)
      : factor_(factor), offset_(offset) {}
  std::string_view name() const override { return "Scale"; }
  UpdateAction on_update(const HandlerContext& ctx, Variant& value,
                         std::vector<Event>& events) override;

 private:
  double factor_;
  double offset_;
};

/// Replaces the incoming value with a fixed one while active.
class OverrideHandler final : public Handler {
 public:
  explicit OverrideHandler(Variant value, bool active = false)
      : override_value_(std::move(value)), active_(active) {}
  std::string_view name() const override { return "Override"; }

  void set_active(bool active) { active_ = active; }
  bool active() const { return active_; }

  UpdateAction on_update(const HandlerContext& ctx, Variant& value,
                         std::vector<Event>& events) override;
  void encode_state(Writer& w) const override;
  void decode_state(Reader& r) override;

 private:
  Variant override_value_;
  bool active_;
};

/// Raises an alarm event when the value satisfies the condition.
class MonitorHandler final : public Handler {
 public:
  enum class Condition : std::uint8_t { kAbove = 0, kBelow, kEquals };

  MonitorHandler(Condition condition, double threshold,
                 Severity severity = Severity::kAlarm,
                 bool edge_triggered = false)
      : condition_(condition),
        threshold_(threshold),
        severity_(severity),
        edge_triggered_(edge_triggered) {}
  std::string_view name() const override { return "Monitor"; }

  UpdateAction on_update(const HandlerContext& ctx, Variant& value,
                         std::vector<Event>& events) override;
  void encode_state(Writer& w) const override;
  void decode_state(Reader& r) override;

  std::uint64_t triggers() const { return triggers_; }

 private:
  bool matches(const Variant& value) const;

  Condition condition_;
  double threshold_;
  Severity severity_;
  bool edge_triggered_;
  bool was_active_ = false;
  std::uint64_t triggers_ = 0;
};

/// Gates writes: denies while blocked, and optionally enforces a value
/// range. A denied write produces an event carrying the reason.
class BlockHandler final : public Handler {
 public:
  BlockHandler() = default;
  BlockHandler(double min_value, double max_value)
      : has_range_(true), min_(min_value), max_(max_value) {}
  std::string_view name() const override { return "Block"; }

  void block(std::string reason) {
    blocked_ = true;
    block_reason_ = std::move(reason);
  }
  void unblock() {
    blocked_ = false;
    block_reason_.clear();
  }
  bool blocked() const { return blocked_; }

  bool on_write(const HandlerContext& ctx, const Variant& requested,
                std::vector<Event>& events, std::string& reason) override;
  void encode_state(Writer& w) const override;
  void decode_state(Reader& r) override;

 private:
  bool blocked_ = false;
  std::string block_reason_;
  bool has_range_ = false;
  double min_ = 0;
  double max_ = 0;
};

/// Suppresses updates that moved less than `delta` from the last reported
/// value (classic telemetry deadband).
class DeadbandHandler final : public Handler {
 public:
  explicit DeadbandHandler(double delta) : delta_(delta) {}
  std::string_view name() const override { return "Deadband"; }

  UpdateAction on_update(const HandlerContext& ctx, Variant& value,
                         std::vector<Event>& events) override;
  void encode_state(Writer& w) const override;
  void decode_state(Reader& r) override;

 private:
  double delta_;
  bool has_last_ = false;
  double last_ = 0;
};

/// Clamps numeric values into [min, max], raising a warning when it clips.
class ClampHandler final : public Handler {
 public:
  ClampHandler(double min_value, double max_value)
      : min_(min_value), max_(max_value) {}
  std::string_view name() const override { return "Clamp"; }

  UpdateAction on_update(const HandlerContext& ctx, Variant& value,
                         std::vector<Event>& events) override;

 private:
  double min_;
  double max_;
};

/// An ordered pipeline of handlers attached to one item.
class HandlerChain {
 public:
  /// Appends a handler; returns a non-owning pointer for configuration.
  template <typename H, typename... Args>
  H* emplace(Args&&... args) {
    auto handler = std::make_unique<H>(std::forward<Args>(args)...);
    H* raw = handler.get();
    handlers_.push_back(std::move(handler));
    return raw;
  }

  bool empty() const { return handlers_.empty(); }
  std::size_t size() const { return handlers_.size(); }

  /// Runs the update pipeline; kSuppress from any handler stops it.
  UpdateAction run_update(const HandlerContext& ctx, Variant& value,
                          std::vector<Event>& events) const;

  /// Runs the write gate; the first denial wins.
  bool run_write(const HandlerContext& ctx, const Variant& requested,
                 std::vector<Event>& events, std::string& reason) const;

  void run_write_result(const HandlerContext& ctx, bool success,
                        std::vector<Event>& events) const;

  void encode_state(Writer& w) const;
  void decode_state(Reader& r);

 private:
  std::vector<std::unique_ptr<Handler>> handlers_;
};

}  // namespace ss::scada
