#include "scada/handlers.h"

#include <algorithm>
#include <cmath>

namespace ss::scada {

UpdateAction Handler::on_update(const HandlerContext&, Variant&,
                                std::vector<Event>&) {
  return UpdateAction::kContinue;
}

bool Handler::on_write(const HandlerContext&, const Variant&,
                       std::vector<Event>&, std::string&) {
  return true;
}

void Handler::on_write_result(const HandlerContext&, bool,
                              std::vector<Event>&) {}

void Handler::encode_state(Writer&) const {}
void Handler::decode_state(Reader&) {}

// --------------------------------------------------------------------------

UpdateAction ScaleHandler::on_update(const HandlerContext&, Variant& value,
                                     std::vector<Event>&) {
  if (value.is_numeric()) {
    value = Variant{value.as_double() * factor_ + offset_};
  }
  return UpdateAction::kContinue;
}

// --------------------------------------------------------------------------

UpdateAction OverrideHandler::on_update(const HandlerContext& ctx,
                                        Variant& value,
                                        std::vector<Event>& events) {
  if (!active_) return UpdateAction::kContinue;
  if (value == override_value_) return UpdateAction::kContinue;
  value = override_value_;
  Event e;
  e.item = ctx.item;
  e.severity = Severity::kInfo;
  e.code = "OVERRIDE_APPLIED";
  e.message = "value overridden on item " + ctx.item_name;
  e.value = value;
  e.timestamp = ctx.timestamp;
  e.op = ctx.op;
  events.push_back(std::move(e));
  return UpdateAction::kContinue;
}

void OverrideHandler::encode_state(Writer& w) const {
  w.boolean(active_);
  override_value_.encode(w);
}

void OverrideHandler::decode_state(Reader& r) {
  active_ = r.boolean();
  override_value_ = Variant::decode(r);
}

// --------------------------------------------------------------------------

bool MonitorHandler::matches(const Variant& value) const {
  if (!value.is_numeric()) return false;
  double v = value.as_double();
  switch (condition_) {
    case Condition::kAbove:
      return v > threshold_;
    case Condition::kBelow:
      return v < threshold_;
    case Condition::kEquals:
      return v == threshold_;
  }
  return false;
}

UpdateAction MonitorHandler::on_update(const HandlerContext& ctx,
                                       Variant& value,
                                       std::vector<Event>& events) {
  bool active = matches(value);
  bool fire = edge_triggered_ ? (active && !was_active_) : active;
  was_active_ = active;
  if (fire) {
    ++triggers_;
    Event e;
    e.item = ctx.item;
    e.severity = severity_;
    e.code = "MONITOR_TRIGGER";
    e.message = "monitor condition met on item " + ctx.item_name;
    e.value = value;
    e.timestamp = ctx.timestamp;
    e.op = ctx.op;
    events.push_back(std::move(e));
  }
  return UpdateAction::kContinue;
}

void MonitorHandler::encode_state(Writer& w) const {
  w.boolean(was_active_);
  w.varint(triggers_);
}

void MonitorHandler::decode_state(Reader& r) {
  was_active_ = r.boolean();
  triggers_ = r.varint();
}

// --------------------------------------------------------------------------

bool BlockHandler::on_write(const HandlerContext& ctx,
                            const Variant& requested,
                            std::vector<Event>& events, std::string& reason) {
  auto deny = [&](std::string why) {
    reason = std::move(why);
    Event e;
    e.item = ctx.item;
    e.severity = Severity::kWarning;
    e.code = "WRITE_DENIED";
    e.message = reason;
    e.value = requested;
    e.timestamp = ctx.timestamp;
    e.op = ctx.op;
    events.push_back(std::move(e));
    return false;
  };

  if (blocked_) {
    return deny("write blocked on item " + ctx.item_name + ": " +
                (block_reason_.empty() ? "operator lock" : block_reason_));
  }
  if (has_range_ && requested.is_numeric()) {
    double v = requested.as_double();
    if (v < min_ || v > max_) {
      return deny("write out of range on item " + ctx.item_name);
    }
  }
  return true;
}

void BlockHandler::encode_state(Writer& w) const {
  w.boolean(blocked_);
  w.str(block_reason_);
}

void BlockHandler::decode_state(Reader& r) {
  blocked_ = r.boolean();
  block_reason_ = r.str();
}

// --------------------------------------------------------------------------

UpdateAction DeadbandHandler::on_update(const HandlerContext&, Variant& value,
                                        std::vector<Event>&) {
  if (!value.is_numeric()) return UpdateAction::kContinue;
  double v = value.as_double();
  if (has_last_ && std::abs(v - last_) < delta_) {
    return UpdateAction::kSuppress;
  }
  has_last_ = true;
  last_ = v;
  return UpdateAction::kContinue;
}

void DeadbandHandler::encode_state(Writer& w) const {
  w.boolean(has_last_);
  w.f64(last_);
}

void DeadbandHandler::decode_state(Reader& r) {
  has_last_ = r.boolean();
  last_ = r.f64();
}

// --------------------------------------------------------------------------

UpdateAction ClampHandler::on_update(const HandlerContext& ctx, Variant& value,
                                     std::vector<Event>& events) {
  if (!value.is_numeric()) return UpdateAction::kContinue;
  double v = value.as_double();
  double clamped = std::clamp(v, min_, max_);
  if (clamped != v) {
    value = Variant{clamped};
    Event e;
    e.item = ctx.item;
    e.severity = Severity::kWarning;
    e.code = "VALUE_CLAMPED";
    e.message = "value clamped on item " + ctx.item_name;
    e.value = value;
    e.timestamp = ctx.timestamp;
    e.op = ctx.op;
    events.push_back(std::move(e));
  }
  return UpdateAction::kContinue;
}

// --------------------------------------------------------------------------

UpdateAction HandlerChain::run_update(const HandlerContext& ctx,
                                      Variant& value,
                                      std::vector<Event>& events) const {
  for (const auto& handler : handlers_) {
    if (handler->on_update(ctx, value, events) == UpdateAction::kSuppress) {
      return UpdateAction::kSuppress;
    }
  }
  return UpdateAction::kContinue;
}

bool HandlerChain::run_write(const HandlerContext& ctx,
                             const Variant& requested,
                             std::vector<Event>& events,
                             std::string& reason) const {
  for (const auto& handler : handlers_) {
    if (!handler->on_write(ctx, requested, events, reason)) return false;
  }
  return true;
}

void HandlerChain::run_write_result(const HandlerContext& ctx, bool success,
                                    std::vector<Event>& events) const {
  for (const auto& handler : handlers_) {
    handler->on_write_result(ctx, success, events);
  }
}

void HandlerChain::encode_state(Writer& w) const {
  w.varint(handlers_.size());
  for (const auto& handler : handlers_) handler->encode_state(w);
}

void HandlerChain::decode_state(Reader& r) {
  std::uint64_t n = r.varint();
  if (n != handlers_.size()) throw DecodeError("handler chain mismatch");
  for (const auto& handler : handlers_) handler->decode_state(r);
}

}  // namespace ss::scada
