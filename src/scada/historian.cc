#include "scada/historian.h"

#include <algorithm>

namespace ss::scada {

void Historian::record(ItemId item, SimTime timestamp, const Variant& value,
                       Quality quality) {
  auto& samples = series_[item.value];
  samples.push_back(Sample{timestamp, value, quality});
  ++total_;
  if (samples.size() > capacity_) samples.pop_front();
}

std::vector<Sample> Historian::range(ItemId item, SimTime from,
                                     SimTime to) const {
  std::vector<Sample> out;
  auto it = series_.find(item.value);
  if (it == series_.end()) return out;
  for (const Sample& sample : it->second) {
    if (sample.timestamp >= from && sample.timestamp <= to) {
      out.push_back(sample);
    }
  }
  return out;
}

std::vector<Sample> Historian::tail(ItemId item, std::size_t n) const {
  std::vector<Sample> out;
  auto it = series_.find(item.value);
  if (it == series_.end()) return out;
  const auto& samples = it->second;
  std::size_t start = samples.size() > n ? samples.size() - n : 0;
  out.assign(samples.begin() + static_cast<std::ptrdiff_t>(start),
             samples.end());
  return out;
}

std::optional<Sample> Historian::latest(ItemId item) const {
  auto it = series_.find(item.value);
  if (it == series_.end() || it->second.empty()) return std::nullopt;
  return it->second.back();
}

Aggregate Historian::aggregate(ItemId item, SimTime from, SimTime to) const {
  Aggregate agg;
  double sum = 0;
  auto it = series_.find(item.value);
  if (it == series_.end()) return agg;
  for (const Sample& sample : it->second) {
    if (sample.timestamp < from || sample.timestamp > to) continue;
    if (!sample.value.is_numeric()) continue;
    double v = sample.value.as_double();
    if (agg.count == 0) {
      agg.min = agg.max = v;
    } else {
      agg.min = std::min(agg.min, v);
      agg.max = std::max(agg.max, v);
    }
    sum += v;
    ++agg.count;
  }
  if (agg.count > 0) agg.mean = sum / static_cast<double>(agg.count);
  return agg;
}

void Historian::encode(Writer& w) const {
  w.varint(total_);
  w.varint(series_.size());
  for (const auto& [item, samples] : series_) {
    w.varint(item);
    w.varint(samples.size());
    for (const Sample& sample : samples) sample.encode(w);
  }
}

void Historian::decode(Reader& r) {
  total_ = r.varint();
  series_.clear();
  std::uint64_t n_items = r.varint();
  for (std::uint64_t i = 0; i < n_items; ++i) {
    std::uint32_t item = r.varint32();
    std::uint64_t n_samples = r.varint();
    auto& samples = series_[item];
    for (std::uint64_t j = 0; j < n_samples; ++j) {
      samples.push_back(Sample::decode(r));
    }
  }
}

}  // namespace ss::scada
