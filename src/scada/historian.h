// Value archive (historian): time-series storage of item values.
//
// Eclipse NeoSCADA ships a value-archive component next to the event
// storage; operators use it for trend displays. Ours records every accepted
// item update (bounded ring per item), serves range / tail / aggregate
// queries, and participates in replica snapshots — in SMaRt-SCADA the
// archive contents must be byte-identical across replicas, which only works
// because samples are stamped with the deterministic operation timestamps.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "common/serialization.h"
#include "common/types.h"
#include "scada/item.h"
#include "scada/variant.h"

namespace ss::scada {

struct Sample {
  SimTime timestamp = 0;
  Variant value;
  Quality quality = Quality::kGood;

  void encode(Writer& w) const {
    w.i64(timestamp);
    value.encode(w);
    w.enumeration(quality);
  }
  static Sample decode(Reader& r) {
    Sample s;
    s.timestamp = r.i64();
    s.value = Variant::decode(r);
    s.quality =
        r.enumeration<Quality>(static_cast<std::uint64_t>(Quality::kMax));
    return s;
  }
  bool operator==(const Sample&) const = default;
};

/// min/max/mean/count over a time range (numeric samples only).
struct Aggregate {
  std::uint64_t count = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
};

class Historian {
 public:
  /// Keeps at most `samples_per_item` recent samples per item (0 = 4096).
  explicit Historian(std::size_t samples_per_item = 4096)
      : capacity_(samples_per_item == 0 ? 4096 : samples_per_item) {}

  void record(ItemId item, SimTime timestamp, const Variant& value,
              Quality quality);

  /// Samples with timestamp in [from, to], oldest first.
  std::vector<Sample> range(ItemId item, SimTime from, SimTime to) const;

  /// The most recent `n` samples, oldest first.
  std::vector<Sample> tail(ItemId item, std::size_t n) const;

  std::optional<Sample> latest(ItemId item) const;

  Aggregate aggregate(ItemId item, SimTime from, SimTime to) const;

  std::uint64_t total_samples() const { return total_; }
  std::size_t items_tracked() const { return series_.size(); }

  void encode(Writer& w) const;
  void decode(Reader& r);

 private:
  std::size_t capacity_;
  std::map<std::uint32_t, std::deque<Sample>> series_;
  std::uint64_t total_ = 0;
};

}  // namespace ss::scada
