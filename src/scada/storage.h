// Append-only event storage (NeoSCADA's internal storage component).
//
// Every event a handler raises is persisted here before the EventUpdate is
// pushed to AE subscribers. The storage keeps a running chain digest so two
// replicas can compare their entire event history in O(1) — the determinism
// tests and checkpoint digests build on this.
#pragma once

#include <deque>
#include <vector>

#include "common/serialization.h"
#include "crypto/sha256.h"
#include "scada/event.h"

namespace ss::scada {

class EventStorage {
 public:
  /// `retention` bounds memory: older events are evicted (their effect stays
  /// in the chain digest). 0 = unlimited.
  explicit EventStorage(std::size_t retention = 0) : retention_(retention) {}

  /// Assigns the next EventId, persists, extends the chain digest, and
  /// returns a reference to the stored record.
  const Event& append(Event event);

  std::uint64_t size() const { return appended_; }
  std::size_t resident() const { return events_.size(); }

  /// Chain digest: H(prev_digest || encoded event), seeded with zeros.
  const crypto::Digest& chain_digest() const { return chain_; }

  /// Events for one item, newest last (resident window only).
  std::vector<Event> query_item(ItemId item) const;

  /// Events with severity >= floor (resident window only).
  std::vector<Event> query_severity(Severity floor) const;

  /// Events with timestamp in [from, to] (resident window only).
  std::vector<Event> query_range(SimTime from, SimTime to) const;

  const std::deque<Event>& all() const { return events_; }

  void encode(Writer& w) const;
  void decode(Reader& r);

 private:
  std::size_t retention_;
  std::deque<Event> events_;
  std::uint64_t appended_ = 0;
  crypto::Digest chain_{};
};

}  // namespace ss::scada
