#include "scada/messages.h"

namespace ss::scada {

const char* scada_msg_kind_name(ScadaMsgKind kind) {
  switch (kind) {
    case ScadaMsgKind::kSubscribe:
      return "Subscribe";
    case ScadaMsgKind::kUnsubscribe:
      return "Unsubscribe";
    case ScadaMsgKind::kItemUpdate:
      return "ItemUpdate";
    case ScadaMsgKind::kWriteValue:
      return "WriteValue";
    case ScadaMsgKind::kWriteResult:
      return "WriteResult";
    case ScadaMsgKind::kEventUpdate:
      return "EventUpdate";
  }
  return "?";
}

const char* write_status_name(WriteStatus status) {
  switch (status) {
    case WriteStatus::kOk:
      return "ok";
    case WriteStatus::kDenied:
      return "denied";
    case WriteStatus::kTimeout:
      return "timeout";
    case WriteStatus::kFailed:
      return "failed";
  }
  return "?";
}

ScadaMsgKind kind_of(const ScadaMessage& msg) {
  return static_cast<ScadaMsgKind>(msg.index());
}

namespace {

struct Encoder {
  Writer& w;

  void operator()(const Subscribe& m) {
    w.enumeration(m.channel);
    w.id(m.item);
    w.str(m.subscriber);
  }
  void operator()(const Unsubscribe& m) {
    w.enumeration(m.channel);
    w.id(m.item);
    w.str(m.subscriber);
  }
  void operator()(const ItemUpdate& m) {
    m.ctx.encode(w);
    w.id(m.item);
    m.value.encode(w);
    w.enumeration(m.quality);
    w.i64(m.source_time);
  }
  void operator()(const WriteValue& m) {
    m.ctx.encode(w);
    w.id(m.item);
    m.value.encode(w);
  }
  void operator()(const WriteResult& m) {
    m.ctx.encode(w);
    w.id(m.item);
    w.enumeration(m.status);
    w.str(m.reason);
  }
  void operator()(const EventUpdate& m) {
    m.ctx.encode(w);
    m.event.encode(w);
  }
};

}  // namespace

Bytes encode_message(const ScadaMessage& msg) {
  Writer w(64);
  w.enumeration(kind_of(msg));
  std::visit(Encoder{w}, msg);
  return std::move(w).take();
}

ScadaMessage decode_message(ByteView data) {
  Reader r(data);
  auto kind = r.enumeration<ScadaMsgKind>(
      static_cast<std::uint64_t>(ScadaMsgKind::kMax));
  ScadaMessage out;
  switch (kind) {
    case ScadaMsgKind::kSubscribe: {
      Subscribe m;
      m.channel = r.enumeration<Channel>(1);
      m.item = r.id<ItemId>();
      m.subscriber = r.str();
      out = std::move(m);
      break;
    }
    case ScadaMsgKind::kUnsubscribe: {
      Unsubscribe m;
      m.channel = r.enumeration<Channel>(1);
      m.item = r.id<ItemId>();
      m.subscriber = r.str();
      out = std::move(m);
      break;
    }
    case ScadaMsgKind::kItemUpdate: {
      ItemUpdate m;
      m.ctx = MsgContext::decode(r);
      m.item = r.id<ItemId>();
      m.value = Variant::decode(r);
      m.quality =
          r.enumeration<Quality>(static_cast<std::uint64_t>(Quality::kMax));
      m.source_time = r.i64();
      out = std::move(m);
      break;
    }
    case ScadaMsgKind::kWriteValue: {
      WriteValue m;
      m.ctx = MsgContext::decode(r);
      m.item = r.id<ItemId>();
      m.value = Variant::decode(r);
      out = std::move(m);
      break;
    }
    case ScadaMsgKind::kWriteResult: {
      WriteResult m;
      m.ctx = MsgContext::decode(r);
      m.item = r.id<ItemId>();
      m.status = r.enumeration<WriteStatus>(
          static_cast<std::uint64_t>(WriteStatus::kMax));
      m.reason = r.str();
      out = std::move(m);
      break;
    }
    case ScadaMsgKind::kEventUpdate: {
      EventUpdate m;
      m.ctx = MsgContext::decode(r);
      m.event = Event::decode(r);
      out = std::move(m);
      break;
    }
  }
  r.expect_done();
  return out;
}

crypto::Digest message_digest(const ScadaMessage& msg) {
  return crypto::Sha256::hash(encode_message(msg));
}

namespace {

struct ContextGetter {
  MsgContext operator()(const Subscribe&) const { return {}; }
  MsgContext operator()(const Unsubscribe&) const { return {}; }
  MsgContext operator()(const ItemUpdate& m) const { return m.ctx; }
  MsgContext operator()(const WriteValue& m) const { return m.ctx; }
  MsgContext operator()(const WriteResult& m) const { return m.ctx; }
  MsgContext operator()(const EventUpdate& m) const { return m.ctx; }
};

}  // namespace

MsgContext context_of(const ScadaMessage& msg) {
  return std::visit(ContextGetter{}, msg);
}

}  // namespace ss::scada
