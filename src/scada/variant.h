// The dynamic value type of SCADA items (NeoSCADA's Variant).
//
// An item's value can be empty, a boolean, a 64-bit integer, a double, or a
// string. Encoding is deterministic, which matters because replicated
// masters digest-compare their item tables.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/serialization.h"

namespace ss::scada {

class Variant {
 public:
  enum class Type : std::uint8_t {
    kNull = 0,
    kBool,
    kInt64,
    kDouble,
    kString,
    kMax = kString,
  };

  Variant() = default;
  explicit Variant(bool v) : value_(v) {}
  explicit Variant(std::int64_t v) : value_(v) {}
  explicit Variant(double v) : value_(v) {}
  explicit Variant(std::string v) : value_(std::move(v)) {}

  static Variant null() { return Variant{}; }

  Type type() const { return static_cast<Type>(value_.index()); }
  bool is_null() const { return type() == Type::kNull; }
  bool is_numeric() const {
    return type() == Type::kInt64 || type() == Type::kDouble;
  }

  bool as_bool() const;          ///< throws std::bad_variant_access-like on mismatch
  std::int64_t as_int() const;   ///< numeric coercion int<->double allowed
  double as_double() const;      ///< numeric coercion allowed
  const std::string& as_string() const;

  /// Numeric coercion for handler math; null/bool/string -> 0.0.
  double to_double_or_zero() const;

  bool operator==(const Variant& other) const { return value_ == other.value_; }

  void encode(Writer& w) const;
  static Variant decode(Reader& r);

  std::string debug_string() const;

 private:
  std::variant<std::monostate, bool, std::int64_t, double, std::string> value_;
};

}  // namespace ss::scada
