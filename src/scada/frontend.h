// The Frontend: protocol translator between RTUs and the SCADA Master
// (paper §II-A). It owns the authoritative items backed by field devices,
// originates ItemUpdate traffic toward the Master, and executes WriteValue
// commands against the field, answering with WriteResult.
//
// Transport-agnostic like ScadaMaster: the deployment wires master_sink to
// the network (baseline) or to the ProxyFrontend's BFT client (replicated).
#pragma once

#include <functional>
#include <map>
#include <string>

#include "scada/item.h"
#include "scada/messages.h"

namespace ss::scada {

struct FrontendOptions {
  /// Disambiguates OpIds minted by different components (Frontend updates
  /// vs HMI writes must never collide).
  std::uint32_t instance_id = 1;
};

struct FrontendCounters {
  std::uint64_t updates_sent = 0;
  std::uint64_t writes_received = 0;
  std::uint64_t write_results_sent = 0;
  std::uint64_t write_failures = 0;
};

class Frontend {
 public:
  using MasterSink = std::function<void(const ScadaMessage&)>;
  /// Applies a write to the field device; `done(ok, reason)` may fire
  /// asynchronously (an RTU round-trip) or never (a dropped reply — which
  /// is exactly what the logical-timeout protocol exists for). `op` is the
  /// end-to-end operation id, so drivers can attribute the field round
  /// trip to the originating write in traces.
  using FieldWriter =
      std::function<void(OpId op, ItemId item, const Variant& value,
                         std::function<void(bool ok, std::string reason)>)>;

  explicit Frontend(FrontendOptions options = {});

  // --- configuration ------------------------------------------------------
  ItemId add_item(const std::string& name, Variant initial = {});
  void set_master_sink(MasterSink sink) { master_sink_ = std::move(sink); }
  /// Without a field writer, writes apply locally and succeed immediately.
  void set_field_writer(FieldWriter writer) {
    field_writer_ = std::move(writer);
  }

  // --- field side ----------------------------------------------------------
  /// A device reported a new value: update the item, notify the Master.
  void field_update(ItemId item, Variant value,
                    Quality quality = Quality::kGood, SimTime source_time = 0);

  // --- master side ---------------------------------------------------------
  /// Handles a message from the Master (WriteValue).
  void handle(const ScadaMessage& msg);

  const Item* item(ItemId id) const;
  ItemRegistry& registry() { return registry_; }
  const FrontendCounters& counters() const { return counters_; }

 private:
  OpId next_op();

  FrontendOptions opt_;
  ItemRegistry registry_;
  std::map<std::uint32_t, Item> items_;
  std::uint64_t op_counter_ = 0;
  MasterSink master_sink_;
  FieldWriter field_writer_;
  FrontendCounters counters_;
};

}  // namespace ss::scada
