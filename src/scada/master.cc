#include "scada/master.h"

#include <stdexcept>

namespace ss::scada {

ScadaMaster::ScadaMaster(MasterOptions options)
    : opt_(std::move(options)),
      storage_(opt_.storage_retention),
      historian_(opt_.historian_capacity) {
  if (!opt_.deterministic && !opt_.clock) {
    opt_.clock = [] { return SimTime{0}; };
  }
}

ItemId ScadaMaster::add_item(const std::string& name,
                             const std::string& frontend) {
  ItemId id = registry_.register_item(name);
  auto [it, inserted] = items_.try_emplace(id.value);
  if (inserted) {
    it->second.id = id;
    it->second.name = name;
    chains_.try_emplace(id.value);
    item_frontends_[id.value] = frontend;
  }
  return id;
}

const std::string& ScadaMaster::frontend_of(ItemId item) const {
  static const std::string kDefault = "frontend";
  auto it = item_frontends_.find(item.value);
  return it == item_frontends_.end() ? kDefault : it->second;
}

HandlerChain& ScadaMaster::handlers(ItemId item) {
  auto it = chains_.find(item.value);
  if (it == chains_.end()) throw std::out_of_range("unknown item");
  return it->second;
}

const Item* ScadaMaster::item(ItemId id) const {
  auto it = items_.find(id.value);
  return it == items_.end() ? nullptr : &it->second;
}

SimTime ScadaMaster::effective_time(const MsgContext& ctx) const {
  return opt_.deterministic ? ctx.timestamp : opt_.clock();
}

void ScadaMaster::handle(const ScadaMessage& msg, const MsgContext& ctx,
                         const std::string& source) {
  switch (kind_of(msg)) {
    case ScadaMsgKind::kSubscribe:
      process_subscribe(std::get<Subscribe>(msg), ctx);
      break;
    case ScadaMsgKind::kUnsubscribe:
      process_unsubscribe(std::get<Unsubscribe>(msg));
      break;
    case ScadaMsgKind::kItemUpdate:
      process_item_update(std::get<ItemUpdate>(msg), ctx);
      break;
    case ScadaMsgKind::kWriteValue:
      process_write_value(std::get<WriteValue>(msg), ctx, source);
      break;
    case ScadaMsgKind::kWriteResult:
      process_write_result(std::get<WriteResult>(msg), ctx);
      break;
    case ScadaMsgKind::kEventUpdate:
      break;  // masters emit events; they never consume them
  }
}

void ScadaMaster::process_subscribe(const Subscribe& msg,
                                    const MsgContext& ctx) {
  auto& table = msg.channel == Channel::kDa ? da_subs_ : ae_subs_;
  auto& wildcard = msg.channel == Channel::kDa ? da_wildcard_ : ae_wildcard_;
  if (msg.item.value == 0) {
    wildcard.insert(msg.subscriber);
  } else {
    table[msg.item.value].insert(msg.subscriber);
  }

  // Initial snapshot: a late subscriber immediately receives the current
  // value of every matching live item — otherwise a stable process value
  // that changed before the subscription would never reach it. The snapshot
  // is pure replicated state, so every replica emits byte-identical pushes
  // and the subscriber's voter can match them.
  if (msg.channel != Channel::kDa || !da_sink_) return;
  for (const auto& [id, item] : items_) {
    if (!item.live) continue;
    if (msg.item.value != 0 && msg.item.value != id) continue;
    ItemUpdate out;
    out.ctx = ctx;
    out.ctx.timestamp = item.timestamp;
    out.item = item.id;
    out.value = item.value;
    out.quality = item.quality;
    ++counters_.updates_forwarded;
    da_sink_(msg.subscriber, ScadaMessage{std::move(out)});
  }
}

void ScadaMaster::process_unsubscribe(const Unsubscribe& msg) {
  auto& table = msg.channel == Channel::kDa ? da_subs_ : ae_subs_;
  auto& wildcard = msg.channel == Channel::kDa ? da_wildcard_ : ae_wildcard_;
  if (msg.item.value == 0) {
    wildcard.erase(msg.subscriber);
  } else {
    auto it = table.find(msg.item.value);
    if (it != table.end()) {
      it->second.erase(msg.subscriber);
      if (it->second.empty()) table.erase(it);
    }
  }
}

std::set<std::string> ScadaMaster::subscribers_for(
    const std::map<std::uint32_t, std::set<std::string>>& table,
    const std::set<std::string>& wildcard, ItemId item) const {
  std::set<std::string> out = wildcard;
  auto it = table.find(item.value);
  if (it != table.end()) out.insert(it->second.begin(), it->second.end());
  return out;
}

void ScadaMaster::emit_to_da(ItemId item, const ScadaMessage& msg) {
  if (!da_sink_) return;
  for (const std::string& sub : subscribers_for(da_subs_, da_wildcard_, item)) {
    ++counters_.updates_forwarded;
    da_sink_(sub, msg);
  }
}

void ScadaMaster::emit_events(ItemId item, std::vector<Event>& events,
                              const MsgContext& ctx) {
  for (Event& event : events) {
    const Event& stored = storage_.append(std::move(event));
    ++counters_.events_created;
    if (!ae_sink_) continue;
    EventUpdate update;
    update.ctx = ctx;
    update.ctx.timestamp = stored.timestamp;
    update.event = stored;
    ScadaMessage msg{std::move(update)};
    for (const std::string& sub :
         subscribers_for(ae_subs_, ae_wildcard_, item)) {
      ++counters_.events_forwarded;
      ae_sink_(sub, msg);
    }
  }
  events.clear();
}

void ScadaMaster::process_item_update(const ItemUpdate& msg,
                                      const MsgContext& ctx) {
  auto it = items_.find(msg.item.value);
  if (it == items_.end()) return;  // update for an unconfigured item
  ++counters_.updates_processed;

  SimTime now = effective_time(ctx);
  HandlerContext hctx{msg.item, it->second.name, now, ctx.op};

  Variant value = msg.value;
  std::vector<Event> events;
  const HandlerChain& chain = chains_.at(msg.item.value);
  if (chain.run_update(hctx, value, events) == UpdateAction::kSuppress) {
    ++counters_.updates_suppressed;
    emit_events(msg.item, events, ctx);
    return;
  }

  it->second.value = value;
  it->second.quality = msg.quality;
  it->second.timestamp = now;
  it->second.live = true;
  historian_.record(msg.item, now, value, msg.quality);

  ItemUpdate out = msg;
  out.value = std::move(value);
  out.ctx.timestamp = now;
  emit_to_da(msg.item, ScadaMessage{std::move(out)});
  emit_events(msg.item, events, ctx);
}

void ScadaMaster::process_write_value(const WriteValue& msg,
                                      const MsgContext& ctx,
                                      const std::string& source) {
  auto it = items_.find(msg.item.value);
  SimTime now = effective_time(ctx);

  auto reply_denied = [&](const std::string& reason) {
    ++counters_.writes_denied;
    WriteResult result;
    result.ctx = ctx;
    result.ctx.timestamp = now;
    result.item = msg.item;
    result.status = WriteStatus::kDenied;
    result.reason = reason;
    if (da_sink_) da_sink_(source, ScadaMessage{std::move(result)});
  };

  if (it == items_.end()) {
    reply_denied("unknown item");
    return;
  }

  HandlerContext hctx{msg.item, it->second.name, now, ctx.op};
  std::vector<Event> events;
  std::string reason;
  const HandlerChain& chain = chains_.at(msg.item.value);
  if (!chain.run_write(hctx, msg.value, events, reason)) {
    // Denied: the operator gets a WriteResult on the DA channel and an
    // EventUpdate with the recorded reason on the AE channel (paper §II-B).
    emit_events(msg.item, events, ctx);
    reply_denied(reason);
    return;
  }
  emit_events(msg.item, events, ctx);

  ++counters_.writes_allowed;
  pending_writes_[ctx.op.value] =
      PendingWrite{msg.item, msg.value, source};
  if (frontend_sink_) {
    WriteValue out = msg;
    frontend_sink_(frontend_of(msg.item), ScadaMessage{std::move(out)});
  }
}

void ScadaMaster::process_write_result(const WriteResult& msg,
                                       const MsgContext& ctx) {
  auto it = pending_writes_.find(ctx.op.value);
  if (it == pending_writes_.end()) return;  // duplicate or timed-out earlier
  PendingWrite pending = std::move(it->second);
  pending_writes_.erase(it);
  ++counters_.write_results;

  SimTime now = effective_time(ctx);
  auto cit = items_.find(pending.item.value);
  std::vector<Event> events;
  if (cit != items_.end()) {
    HandlerContext hctx{pending.item, cit->second.name, now, ctx.op};
    chains_.at(pending.item.value)
        .run_write_result(hctx, msg.status == WriteStatus::kOk, events);
  }

  if (msg.status != WriteStatus::kOk) {
    Event e;
    e.item = pending.item;
    e.severity = Severity::kWarning;
    e.code = msg.status == WriteStatus::kTimeout ? "WRITE_TIMEOUT"
                                                 : "WRITE_FAILED";
    e.message = msg.reason.empty() ? "write did not complete" : msg.reason;
    e.value = pending.value;
    e.timestamp = now;
    e.op = ctx.op;
    events.push_back(std::move(e));
  }
  emit_events(pending.item, events, ctx);

  WriteResult out = msg;
  out.ctx = ctx;
  out.ctx.timestamp = now;
  if (da_sink_) da_sink_(pending.requester, ScadaMessage{std::move(out)});
}

void ScadaMaster::inject_timeout_result(OpId op) {
  auto it = pending_writes_.find(op.value);
  if (it == pending_writes_.end()) return;
  ++counters_.write_timeouts;
  WriteResult synthetic;
  synthetic.ctx.op = op;
  synthetic.item = it->second.item;
  synthetic.status = WriteStatus::kTimeout;
  synthetic.reason = "logical timeout: no WriteResult from frontend";
  process_write_result(synthetic, synthetic.ctx);
}

// --------------------------------------------------------------------------
// replica state

Bytes ScadaMaster::snapshot() const {
  Writer w(1024);
  w.varint(items_.size());
  for (const auto& [id, item] : items_) item.encode(w);
  w.varint(chains_.size());
  for (const auto& [id, chain] : chains_) {
    w.varint(id);
    chain.encode_state(w);
  }

  auto encode_subs = [&w](const std::map<std::uint32_t, std::set<std::string>>&
                              table,
                          const std::set<std::string>& wildcard) {
    w.varint(wildcard.size());
    for (const std::string& s : wildcard) w.str(s);
    w.varint(table.size());
    for (const auto& [item, subs] : table) {
      w.varint(item);
      w.varint(subs.size());
      for (const std::string& s : subs) w.str(s);
    }
  };
  encode_subs(da_subs_, da_wildcard_);
  encode_subs(ae_subs_, ae_wildcard_);

  w.varint(pending_writes_.size());
  for (const auto& [op, pending] : pending_writes_) {
    w.varint(op);
    w.id(pending.item);
    pending.value.encode(w);
    w.str(pending.requester);
  }

  storage_.encode(w);
  historian_.encode(w);
  return std::move(w).take();
}

void ScadaMaster::restore(ByteView data) {
  Reader r(data);
  std::uint64_t n_items = r.varint();
  items_.clear();
  for (std::uint64_t i = 0; i < n_items; ++i) {
    Item item = Item::decode(r);
    items_[item.id.value] = std::move(item);
  }
  std::uint64_t n_chains = r.varint();
  if (n_chains != chains_.size()) throw DecodeError("chain config mismatch");
  for (std::uint64_t i = 0; i < n_chains; ++i) {
    std::uint32_t id = r.varint32();
    auto it = chains_.find(id);
    if (it == chains_.end()) throw DecodeError("chain config mismatch");
    it->second.decode_state(r);
  }

  auto decode_subs = [&r](std::map<std::uint32_t, std::set<std::string>>& table,
                          std::set<std::string>& wildcard) {
    wildcard.clear();
    std::uint64_t n_wild = r.varint();
    for (std::uint64_t i = 0; i < n_wild; ++i) wildcard.insert(r.str());
    table.clear();
    std::uint64_t n_table = r.varint();
    for (std::uint64_t i = 0; i < n_table; ++i) {
      std::uint32_t item = r.varint32();
      std::uint64_t n_subs = r.varint();
      auto& subs = table[item];
      for (std::uint64_t j = 0; j < n_subs; ++j) subs.insert(r.str());
    }
  };
  decode_subs(da_subs_, da_wildcard_);
  decode_subs(ae_subs_, ae_wildcard_);

  pending_writes_.clear();
  std::uint64_t n_pending = r.varint();
  for (std::uint64_t i = 0; i < n_pending; ++i) {
    std::uint64_t op = r.varint();
    PendingWrite pending;
    pending.item = r.id<ItemId>();
    pending.value = Variant::decode(r);
    pending.requester = r.str();
    pending_writes_[op] = std::move(pending);
  }

  storage_.decode(r);
  historian_.decode(r);
  r.expect_done();
}

crypto::Digest ScadaMaster::state_digest() const {
  return crypto::Sha256::hash(snapshot());
}

}  // namespace ss::scada
