// The SCADA Master: item mirror, DA/AE routing, handler execution, event
// storage (paper §II, Figure 2).
//
// This class is transport-agnostic: inbound messages arrive through the
// single entry point handle(), outbound messages leave through the
// registered sinks. The baseline deployment wires the sinks straight onto
// the simulated network (multiple concurrent entry points, local clock —
// the "traditional" NeoSCADA); the replicated deployment puts the Adapter
// in front so that every message is totally ordered and timestamps come
// from the agreement layer (deterministic mode).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "crypto/sha256.h"
#include "scada/handlers.h"
#include "scada/historian.h"
#include "scada/item.h"
#include "scada/messages.h"
#include "scada/storage.h"

namespace ss::scada {

struct MasterOptions {
  /// Replicated mode: event/value timestamps come from MsgContext, never
  /// from `clock` (paper challenge (c)).
  bool deterministic = false;
  /// Local clock used in baseline mode (and for nothing else).
  std::function<SimTime()> clock;
  std::size_t storage_retention = 0;
  /// Value-archive depth per item (0 = default 4096).
  std::size_t historian_capacity = 0;
};

struct MasterCounters {
  std::uint64_t updates_processed = 0;
  std::uint64_t updates_suppressed = 0;
  std::uint64_t updates_forwarded = 0;  ///< ItemUpdate fan-outs to DA subscribers
  std::uint64_t events_created = 0;
  std::uint64_t events_forwarded = 0;   ///< EventUpdate fan-outs to AE subscribers
  std::uint64_t writes_allowed = 0;
  std::uint64_t writes_denied = 0;
  std::uint64_t write_results = 0;
  std::uint64_t write_timeouts = 0;
};

class ScadaMaster {
 public:
  /// Outbound message toward one HMI-side subscriber.
  using SubscriberSink =
      std::function<void(const std::string& subscriber, const ScadaMessage&)>;
  /// Outbound message toward one Frontend (NeoSCADA supports several; each
  /// item belongs to exactly one).
  using FrontendSink =
      std::function<void(const std::string& frontend, const ScadaMessage&)>;

  explicit ScadaMaster(MasterOptions options = {});

  // --- configuration ------------------------------------------------------
  /// Registers an item, owned by `frontend` (the connection name write
  /// commands for it are routed to).
  ItemId add_item(const std::string& name,
                  const std::string& frontend = "frontend");
  HandlerChain& handlers(ItemId item);
  const std::string& frontend_of(ItemId item) const;
  ItemRegistry& registry() { return registry_; }
  const ItemRegistry& registry() const { return registry_; }

  void set_da_sink(SubscriberSink sink) { da_sink_ = std::move(sink); }
  void set_ae_sink(SubscriberSink sink) { ae_sink_ = std::move(sink); }
  void set_frontend_sink(FrontendSink sink) {
    frontend_sink_ = std::move(sink);
  }

  // --- the single entry point ---------------------------------------------
  /// Processes one inbound message. `source` identifies the connection it
  /// arrived on (a subscriber name for HMI traffic, "frontend" for Frontend
  /// traffic); `ctx` carries ordering/timestamp info in replicated mode.
  void handle(const ScadaMessage& msg, const MsgContext& ctx,
              const std::string& source);

  /// Injects a synthetic WriteResult for a pending write operation — the
  /// logical-timeout protocol's unblocking path (paper §IV-D).
  void inject_timeout_result(OpId op);

  bool has_pending_write(OpId op) const {
    return pending_writes_.count(op.value) > 0;
  }
  std::size_t pending_write_count() const { return pending_writes_.size(); }
  std::vector<OpId> pending_write_ops() const {
    std::vector<OpId> ops;
    ops.reserve(pending_writes_.size());
    for (const auto& [op, _] : pending_writes_) ops.emplace_back(op);
    return ops;
  }

  // --- introspection -------------------------------------------------------
  const Item* item(ItemId id) const;
  const EventStorage& storage() const { return storage_; }
  const Historian& historian() const { return historian_; }
  const MasterCounters& counters() const { return counters_; }

  // --- replica state -------------------------------------------------------
  /// Deterministic serialization of all replicated state: items, handler
  /// state, subscriptions, pending writes, event storage. Configuration
  /// (item set, handler chain composition) is assumed identical across
  /// replicas and is not included.
  Bytes snapshot() const;
  void restore(ByteView data);
  crypto::Digest state_digest() const;

 private:
  struct PendingWrite {
    ItemId item;
    Variant value;
    std::string requester;
  };

  SimTime effective_time(const MsgContext& ctx) const;
  void process_subscribe(const Subscribe& msg, const MsgContext& ctx);
  void process_unsubscribe(const Unsubscribe& msg);
  void process_item_update(const ItemUpdate& msg, const MsgContext& ctx);
  void process_write_value(const WriteValue& msg, const MsgContext& ctx,
                           const std::string& source);
  void process_write_result(const WriteResult& msg, const MsgContext& ctx);
  void emit_to_da(ItemId item, const ScadaMessage& msg);
  void emit_events(ItemId item, std::vector<Event>& events,
                   const MsgContext& ctx);
  std::set<std::string> subscribers_for(
      const std::map<std::uint32_t, std::set<std::string>>& table,
      const std::set<std::string>& wildcard, ItemId item) const;

  MasterOptions opt_;
  ItemRegistry registry_;
  std::map<std::uint32_t, Item> items_;
  std::map<std::uint32_t, HandlerChain> chains_;
  std::map<std::uint32_t, std::string> item_frontends_;  // configuration

  // channel -> (item -> subscribers); wildcard = subscribed to all items
  std::map<std::uint32_t, std::set<std::string>> da_subs_;
  std::set<std::string> da_wildcard_;
  std::map<std::uint32_t, std::set<std::string>> ae_subs_;
  std::set<std::string> ae_wildcard_;

  std::map<std::uint64_t, PendingWrite> pending_writes_;  // by op id
  EventStorage storage_;
  Historian historian_;
  MasterCounters counters_;

  SubscriberSink da_sink_;
  SubscriberSink ae_sink_;
  FrontendSink frontend_sink_;
};

}  // namespace ss::scada
