// SCADA items: the named data points that represent field devices.
//
// The Frontend holds the authoritative items (backed by RTU registers); the
// SCADA Master and the HMI hold mirror items refreshed by ItemUpdate
// messages (paper §II-A).
#pragma once

#include <map>
#include <optional>
#include <string>

#include "common/types.h"
#include "scada/variant.h"

namespace ss::scada {

/// OPC-style data quality attached to every value.
enum class Quality : std::uint8_t {
  kGood = 0,
  kUncertain,
  kBad,
  kTimeout,  ///< value synthesized by the logical-timeout protocol
  kMax = kTimeout,
};

inline const char* quality_name(Quality q) {
  switch (q) {
    case Quality::kGood:
      return "good";
    case Quality::kUncertain:
      return "uncertain";
    case Quality::kBad:
      return "bad";
    case Quality::kTimeout:
      return "timeout";
  }
  return "?";
}

struct Item {
  ItemId id;
  std::string name;
  Variant value;
  Quality quality = Quality::kUncertain;
  SimTime timestamp = 0;  ///< time of last value change
  /// Whether any ItemUpdate has ever been applied. A subscriber that joins
  /// late receives an initial snapshot of live items only — never the
  /// meaningless configured default.
  bool live = false;

  void encode(Writer& w) const {
    w.id(id);
    w.str(name);
    value.encode(w);
    w.enumeration(quality);
    w.i64(timestamp);
    w.boolean(live);
  }

  static Item decode(Reader& r) {
    Item item;
    item.id = r.id<ItemId>();
    item.name = r.str();
    item.value = Variant::decode(r);
    item.quality =
        r.enumeration<Quality>(static_cast<std::uint64_t>(Quality::kMax));
    item.timestamp = r.i64();
    item.live = r.boolean();
    return item;
  }
};

/// Name <-> id table. Items are registered once at configuration time; ids
/// are dense and deterministic (registration order).
class ItemRegistry {
 public:
  ItemId register_item(const std::string& name) {
    auto it = by_name_.find(name);
    if (it != by_name_.end()) return it->second;
    ItemId id{next_++};
    by_name_[name] = id;
    names_[id.value] = name;
    return id;
  }

  std::optional<ItemId> lookup(const std::string& name) const {
    auto it = by_name_.find(name);
    if (it == by_name_.end()) return std::nullopt;
    return it->second;
  }

  const std::string* name_of(ItemId id) const {
    auto it = names_.find(id.value);
    return it == names_.end() ? nullptr : &it->second;
  }

  std::size_t size() const { return by_name_.size(); }

 private:
  std::uint32_t next_ = 1;
  std::map<std::string, ItemId> by_name_;
  std::map<std::uint32_t, std::string> names_;
};

}  // namespace ss::scada
