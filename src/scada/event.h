// Alarm & Event records (the AE subsystem's data model).
//
// Events are created by handlers (e.g. Monitor when a value crosses its
// threshold, Block when it denies a write) and persisted in EventStorage.
// Their timestamp is the deterministic operation timestamp in replicated
// mode — never the local OS clock (paper challenge (c)).
#pragma once

#include <string>

#include "common/serialization.h"
#include "common/types.h"
#include "scada/variant.h"

namespace ss::scada {

enum class Severity : std::uint8_t {
  kInfo = 0,
  kWarning,
  kAlarm,
  kCritical,
  kMax = kCritical,
};

inline const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kAlarm:
      return "alarm";
    case Severity::kCritical:
      return "critical";
  }
  return "?";
}

struct Event {
  EventId id;          ///< storage sequence number, assigned on append
  ItemId item;
  Severity severity = Severity::kInfo;
  std::string code;    ///< machine-readable, e.g. "MONITOR_HIGH"
  std::string message; ///< human-readable reason
  Variant value;       ///< item value that triggered the event
  SimTime timestamp = 0;
  OpId op;             ///< operation that produced the event

  void encode(Writer& w) const {
    w.id(id);
    w.id(item);
    w.enumeration(severity);
    w.str(code);
    w.str(message);
    value.encode(w);
    w.i64(timestamp);
    w.id(op);
  }

  static Event decode(Reader& r) {
    Event e;
    e.id = r.id<EventId>();
    e.item = r.id<ItemId>();
    e.severity =
        r.enumeration<Severity>(static_cast<std::uint64_t>(Severity::kMax));
    e.code = r.str();
    e.message = r.str();
    e.value = Variant::decode(r);
    e.timestamp = r.i64();
    e.op = r.id<OpId>();
    return e;
  }

  bool operator==(const Event&) const = default;
};

}  // namespace ss::scada
