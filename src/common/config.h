// Replica-group configuration shared by the BFT library and the SMaRt-SCADA
// deployment builders.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.h"

namespace ss {

/// Agreement protocol run by the replica group. The group size and every
/// quorum below derive from this choice:
///
///   protocol | n      | commit quorum      | view-change quorum
///   ---------+--------+--------------------+-------------------
///   kPbft    | 3f + 1 | ceil((n+f+1)/2)    | 2f + 1
///   kMinBft  | 2f + 1 | f + 1              | f + 1
///
/// kMinBft's smaller quorums are sound only because every replica's
/// protocol messages carry USIG trusted-counter certificates (DESIGN.md
/// §16); equivocation is detectable instead of merely outvotable.
enum class Protocol : std::uint8_t {
  kPbft = 0,
  kMinBft = 1,
};

const char* protocol_name(Protocol p);

/// Parses "pbft" / "minbft" (as accepted by SS_PROTOCOL). Throws
/// std::invalid_argument on anything else.
Protocol parse_protocol(const std::string& name);

/// Static view of the replica group: n = 3f + 1 replicas tolerating f
/// Byzantine faults (the paper's system model, §IV-B), or n = 2f + 1 when
/// running the MinBFT-style trusted-counter protocol.
struct GroupConfig {
  std::uint32_t n = 4;
  std::uint32_t f = 1;
  Protocol protocol = Protocol::kPbft;

  GroupConfig() = default;
  GroupConfig(std::uint32_t n_in, std::uint32_t f_in);
  GroupConfig(std::uint32_t n_in, std::uint32_t f_in, Protocol protocol_in);

  /// Builds the canonical PBFT config for a given f (n = 3f + 1).
  static GroupConfig for_f(std::uint32_t f);

  /// Builds the canonical config for a protocol at a given f
  /// (n = 3f + 1 for kPbft, n = 2f + 1 for kMinBft).
  static GroupConfig for_protocol(Protocol protocol, std::uint32_t f);

  /// Minimum group size the protocol's fault model requires.
  static std::uint32_t min_n(Protocol protocol, std::uint32_t f) {
    return protocol == Protocol::kMinBft ? 2 * f + 1 : 3 * f + 1;
  }

  /// Agreement commit quorum: the Byzantine dissemination quorum
  /// ceil((n + f + 1) / 2) under PBFT, f + 1 counter-certified votes under
  /// MinBFT.
  std::uint32_t quorum() const {
    return protocol == Protocol::kMinBft ? f + 1 : (n + f + 2) / 2;
  }

  /// Votes needed by a client to accept a reply: f + 1 matching messages.
  std::uint32_t reply_quorum() const { return f + 1; }

  /// Votes needed to install a view change / logical timeout: 2f + 1 under
  /// PBFT, f + 1 under MinBFT.
  std::uint32_t sync_quorum() const {
    return protocol == Protocol::kMinBft ? f + 1 : 2 * f + 1;
  }

  /// Simple-majority quorum used by the logical-timeout protocol.
  std::uint32_t majority() const { return n / 2 + 1; }

  std::vector<ReplicaId> replica_ids() const;

  /// Leader for a given regency (round-robin, as in BFT-SMaRt).
  ReplicaId leader_for(std::uint64_t regency) const {
    return ReplicaId{static_cast<std::uint32_t>(regency % n)};
  }
};

}  // namespace ss
