// Replica-group configuration shared by the BFT library and the SMaRt-SCADA
// deployment builders.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/types.h"

namespace ss {

/// Static view of the replica group: n = 3f + 1 replicas tolerating f
/// Byzantine faults (the paper's system model, §IV-B).
struct GroupConfig {
  std::uint32_t n = 4;
  std::uint32_t f = 1;

  GroupConfig() = default;
  GroupConfig(std::uint32_t n_in, std::uint32_t f_in);

  /// Builds the canonical config for a given f (n = 3f + 1).
  static GroupConfig for_f(std::uint32_t f);

  /// Byzantine dissemination quorum: ceil((n + f + 1) / 2).
  std::uint32_t quorum() const { return (n + f + 2) / 2; }

  /// Votes needed by a client to accept a reply: f + 1 matching messages.
  std::uint32_t reply_quorum() const { return f + 1; }

  /// Votes needed to trigger a view change / logical timeout: 2f + 1.
  std::uint32_t sync_quorum() const { return 2 * f + 1; }

  /// Simple-majority quorum used by the logical-timeout protocol.
  std::uint32_t majority() const { return n / 2 + 1; }

  std::vector<ReplicaId> replica_ids() const;

  /// Leader for a given regency (round-robin, as in BFT-SMaRt).
  ReplicaId leader_for(std::uint64_t regency) const {
    return ReplicaId{static_cast<std::uint32_t>(regency % n)};
  }
};

}  // namespace ss
