// Strong identifier and time types shared by every SMaRt-SCADA module.
//
// All ids are small wrappers over integers so that, e.g., a consensus id can
// never be passed where an item id is expected (C++ Core Guidelines I.4:
// make interfaces precisely and strongly typed).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace ss {

/// Virtual time in nanoseconds since simulation start.
using SimTime = std::int64_t;

inline constexpr SimTime kNanosPerMicro = 1'000;
inline constexpr SimTime kNanosPerMilli = 1'000'000;
inline constexpr SimTime kNanosPerSec = 1'000'000'000;

constexpr SimTime micros(std::int64_t v) { return v * kNanosPerMicro; }
constexpr SimTime millis(std::int64_t v) { return v * kNanosPerMilli; }
constexpr SimTime seconds(std::int64_t v) { return v * kNanosPerSec; }

/// CRTP base for strongly-typed integral ids.
template <typename Tag, typename Rep = std::uint64_t>
struct StrongId {
  Rep value{0};

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep v) : value(v) {}

  constexpr auto operator<=>(const StrongId&) const = default;

  /// Successor id; handy for sequence counters.
  constexpr StrongId next() const { return StrongId{value + 1}; }
};

struct NodeIdTag {};
struct ClientIdTag {};
struct ConsensusIdTag {};
struct RequestIdTag {};
struct ItemIdTag {};
struct EventIdTag {};
struct OpIdTag {};

/// Identifies a replica (ProxyMaster/SCADA Master pair) in the BFT group.
using ReplicaId = StrongId<NodeIdTag, std::uint32_t>;
/// Identifies a BFT client (a ProxyHMI or ProxyFrontend instance).
using ClientId = StrongId<ClientIdTag, std::uint32_t>;
/// Identifies one consensus instance (one decided batch).
using ConsensusId = StrongId<ConsensusIdTag, std::uint64_t>;
/// Client-local monotonically increasing request sequence number.
using RequestId = StrongId<RequestIdTag, std::uint64_t>;
/// Identifies a SCADA item (sensor/actuator data point).
using ItemId = StrongId<ItemIdTag, std::uint32_t>;
/// Identifies an alarm/event record in the event storage.
using EventId = StrongId<EventIdTag, std::uint64_t>;
/// Identifies one end-to-end SCADA operation (for tracing/step counting).
using OpId = StrongId<OpIdTag, std::uint64_t>;

std::string to_string(SimTime t);

}  // namespace ss

namespace std {
template <typename Tag, typename Rep>
struct hash<ss::StrongId<Tag, Rep>> {
  size_t operator()(const ss::StrongId<Tag, Rep>& id) const noexcept {
    return std::hash<Rep>{}(id.value);
  }
};
}  // namespace std
