#include "common/logging.h"

#include <cinttypes>
#include <cstdio>

namespace ss {

LogLevel& Logger::threshold() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

const char* Logger::level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

namespace {
Logger::Capture& capture_slot() {
  static Logger::Capture capture;
  return capture;
}
}  // namespace

void Logger::set_capture(Capture capture) {
  capture_slot() = std::move(capture);
}

bool Logger::capture_installed() {
  return static_cast<bool>(capture_slot());
}

void Logger::log(LogLevel level, SimTime now, const char* component,
                 const char* fmt, ...) {
  char message[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(message, sizeof(message), fmt, args);
  va_end(args);
  if (const Capture& capture = capture_slot()) {
    capture(level, now, component, message);
  }
  if (level >= threshold()) {
    std::fprintf(stderr, "[%9.3fms] %-5s %-16s %s\n",
                 static_cast<double>(now) / kNanosPerMilli, level_name(level),
                 component, message);
  }
}

}  // namespace ss
