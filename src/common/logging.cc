#include "common/logging.h"

#include <cinttypes>
#include <cstdio>

namespace ss {

LogLevel& Logger::threshold() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

const char* Logger::level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void Logger::log(LogLevel level, SimTime now, const char* component,
                 const char* fmt, ...) {
  std::fprintf(stderr, "[%9.3fms] %-5s %-16s ",
               static_cast<double>(now) / kNanosPerMilli, level_name(level),
               component);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace ss
