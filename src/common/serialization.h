// Compact, deterministic binary wire format.
//
// Every message that crosses the simulated network (SCADA DA/AE frames, BFT
// consensus messages, RTU modbus frames) is encoded with Writer and decoded
// with Reader. Determinism of the encoding matters: replica state digests
// and reply voting compare encoded bytes, so a value must always encode to
// the same bytes.
//
// Integers are little-endian fixed width or LEB128 varints; strings and
// blobs are length-prefixed with a varint.
#pragma once

#include <cstdint>
#include <cstring>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>

#include "common/bytes.h"
#include "common/types.h"

namespace ss {

/// Thrown by Reader when the buffer is truncated or malformed. A Byzantine
/// sender can produce arbitrary bytes, so *every* decode path must be
/// prepared for this exception and treat it as a faulty-sender signal.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

class Writer {
 public:
  Writer() = default;
  explicit Writer(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { fixed(v); }
  void u32(std::uint32_t v) { fixed(v); }
  void u64(std::uint64_t v) { fixed(v); }
  void i64(std::int64_t v) { fixed(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    fixed(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// LEB128 unsigned varint.
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  void str(std::string_view s) {
    varint(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void blob(ByteView b) {
    varint(b.size());
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  /// Raw bytes with no length prefix (for framing layers).
  void raw(ByteView b) { buf_.insert(buf_.end(), b.begin(), b.end()); }

  template <typename Tag, typename Rep>
  void id(StrongId<Tag, Rep> v) {
    varint(static_cast<std::uint64_t>(v.value));
  }

  template <typename E>
    requires std::is_enum_v<E>
  void enumeration(E e) {
    varint(static_cast<std::uint64_t>(e));
  }

  const Bytes& bytes() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void fixed(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  Bytes buf_;
};

class Reader {
 public:
  explicit Reader(ByteView data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint16_t u16() { return fixed<std::uint16_t>(); }
  std::uint32_t u32() { return fixed<std::uint32_t>(); }
  std::uint64_t u64() { return fixed<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  bool boolean() {
    std::uint8_t v = u8();
    if (v > 1) throw DecodeError("bad boolean");
    return v == 1;
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (shift >= 64) throw DecodeError("varint overflow");
      std::uint8_t b = u8();
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }

  std::string str() {
    std::uint64_t n = length_prefix();
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  Bytes blob() {
    std::uint64_t n = length_prefix();
    Bytes b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return b;
  }

  /// Decoded varint checked against the id's representation width, so a
  /// Byzantine sender cannot smuggle 2^40 through a uint32 id and have it
  /// silently truncate into a colliding small value.
  template <typename IdType>
  IdType id() {
    using Rep = decltype(IdType{}.value);
    std::uint64_t v = varint();
    if (v > std::numeric_limits<Rep>::max()) {
      throw DecodeError("id out of range");
    }
    return IdType{static_cast<Rep>(v)};
  }

  /// varint checked to fit 32 bits (for counts and wire fields narrower
  /// than the varint's natural 64-bit range).
  std::uint32_t varint32() {
    std::uint64_t v = varint();
    if (v > std::numeric_limits<std::uint32_t>::max()) {
      throw DecodeError("varint32 out of range");
    }
    return static_cast<std::uint32_t>(v);
  }

  template <typename E>
    requires std::is_enum_v<E>
  E enumeration(std::uint64_t max_value) {
    std::uint64_t v = varint();
    if (v > max_value) throw DecodeError("enum out of range");
    return static_cast<E>(v);
  }

  bool done() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

  /// Decoders call this after reading a full message to reject messages
  /// with trailing garbage (a cheap Byzantine-input sanity check).
  void expect_done() const {
    if (!done()) throw DecodeError("trailing bytes");
  }

 private:
  void need(std::size_t n) const {
    // Written as a subtraction so a huge `n` (e.g. a hostile varint length
    // prefix near SIZE_MAX) cannot overflow `pos_ + n` and wrap past the
    // bounds check. `pos_ <= data_.size()` is an invariant.
    if (n > data_.size() - pos_) throw DecodeError("truncated buffer");
  }

  std::uint64_t length_prefix() {
    std::uint64_t n = varint();
    need(n);
    return n;
  }

  template <typename T>
  T fixed() {
    need(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<T>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    return v;
  }

  ByteView data_;
  std::size_t pos_ = 0;
};

}  // namespace ss
