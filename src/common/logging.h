// Minimal leveled logging.
//
// Components log through a per-process Logger so tests can silence or
// capture output. The simulation passes the virtual clock in, so log lines
// are stamped with *simulated* time, which is what you want when debugging
// a protocol trace.
#pragma once

#include <cstdarg>
#include <functional>
#include <string>

#include "common/types.h"

namespace ss {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  /// Receives every formatted log line (even below threshold while a
  /// capture is installed). Used by the obs flight recorder.
  using Capture = std::function<void(LogLevel level, SimTime now,
                                     const char* component,
                                     const char* message)>;

  /// Global minimum level; defaults to kWarn so tests stay quiet.
  static LogLevel& threshold();

  /// Installs (or, with nullptr, removes) the capture hook. Lines below
  /// threshold go only to the capture; lines at/above go to both.
  static void set_capture(Capture capture);
  static bool capture_installed();

  static void log(LogLevel level, SimTime now, const char* component,
                  const char* fmt, ...) __attribute__((format(printf, 4, 5)));

  static const char* level_name(LogLevel level);
};

#define SS_LOG(level, now, component, ...)                       \
  do {                                                           \
    if ((level) >= ::ss::Logger::threshold() ||                  \
        ::ss::Logger::capture_installed()) {                     \
      ::ss::Logger::log((level), (now), (component), __VA_ARGS__); \
    }                                                            \
  } while (0)

}  // namespace ss
