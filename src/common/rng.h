// Deterministic pseudo-random number generation.
//
// Every stochastic decision in the simulation (fault injection, sensor
// noise, workload arrival jitter) draws from a seeded Rng so that a run is
// exactly reproducible from its seed — a prerequisite for the determinism
// tests, which assert byte-identical replica state across runs.
#pragma once

#include <cstdint>

namespace ss {

/// splitmix64: used to expand a single user seed into stream seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, and trivially copyable.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5ca1ab1e) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Derive an independent child stream (for per-component RNGs).
  Rng fork() { return Rng(next()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace ss
