#include "common/config.h"

namespace ss {

const char* protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kPbft:
      return "pbft";
    case Protocol::kMinBft:
      return "minbft";
  }
  return "unknown";
}

Protocol parse_protocol(const std::string& name) {
  if (name == "pbft") return Protocol::kPbft;
  if (name == "minbft") return Protocol::kMinBft;
  throw std::invalid_argument("unknown protocol: \"" + name +
                              "\" (expected pbft or minbft)");
}

GroupConfig::GroupConfig(std::uint32_t n_in, std::uint32_t f_in)
    : GroupConfig(n_in, f_in, Protocol::kPbft) {}

GroupConfig::GroupConfig(std::uint32_t n_in, std::uint32_t f_in,
                         Protocol protocol_in)
    : n(n_in), f(f_in), protocol(protocol_in) {
  if (n < min_n(protocol, f)) {
    throw std::invalid_argument(
        protocol == Protocol::kMinBft
            ? "GroupConfig requires n >= 2f + 1 for minbft"
            : "GroupConfig requires n >= 3f + 1");
  }
  if (n == 0) throw std::invalid_argument("GroupConfig requires n > 0");
}

GroupConfig GroupConfig::for_f(std::uint32_t f) {
  return GroupConfig(3 * f + 1, f);
}

GroupConfig GroupConfig::for_protocol(Protocol protocol, std::uint32_t f) {
  return GroupConfig(min_n(protocol, f), f, protocol);
}

std::vector<ReplicaId> GroupConfig::replica_ids() const {
  std::vector<ReplicaId> ids;
  ids.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) ids.emplace_back(i);
  return ids;
}

}  // namespace ss
