#include "common/config.h"

namespace ss {

GroupConfig::GroupConfig(std::uint32_t n_in, std::uint32_t f_in)
    : n(n_in), f(f_in) {
  if (n < 3 * f + 1) {
    throw std::invalid_argument("GroupConfig requires n >= 3f + 1");
  }
  if (n == 0) throw std::invalid_argument("GroupConfig requires n > 0");
}

GroupConfig GroupConfig::for_f(std::uint32_t f) {
  return GroupConfig(3 * f + 1, f);
}

std::vector<ReplicaId> GroupConfig::replica_ids() const {
  std::vector<ReplicaId> ids;
  ids.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) ids.emplace_back(i);
  return ids;
}

}  // namespace ss
