// Raw byte-buffer helpers used by the wire format and the crypto layer.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ss {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Lowercase hex encoding of `data` ("deadbeef").
std::string to_hex(ByteView data);

/// Inverse of to_hex(); throws std::invalid_argument on malformed input.
Bytes from_hex(std::string_view hex);

/// Copies a string's characters into a byte vector.
Bytes bytes_of(std::string_view s);

/// Interprets a byte range as a string.
std::string string_of(ByteView data);

/// Constant-time equality, as needed when comparing MACs.
bool constant_time_equal(ByteView a, ByteView b);

}  // namespace ss
