// Raw byte-buffer helpers used by the wire format and the crypto layer.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ss {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Lowercase hex encoding of `data` ("deadbeef").
std::string to_hex(ByteView data);

/// Inverse of to_hex(); throws std::invalid_argument on malformed input.
Bytes from_hex(std::string_view hex);

/// Copies a string's characters into a byte vector.
Bytes bytes_of(std::string_view s);

/// Interprets a byte range as a string.
std::string string_of(ByteView data);

/// Constant-time equality, as needed when comparing MACs.
bool constant_time_equal(ByteView a, ByteView b);

/// CRC-16/MODBUS (polynomial 0xA001 reflected, init 0xFFFF). Guards the
/// unauthenticated field-protocol frames (Modbus, IEC-104) against wire
/// corruption — these links carry no HMAC, so without a frame check a
/// flipped register bit would be silently accepted as a valid value.
std::uint16_t crc16(ByteView data);

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320 reflected, init/xorout
/// 0xFFFFFFFF). Guards on-disk records (WAL entries, checkpoint files)
/// against torn writes and bit rot: a record whose stored CRC does not match
/// is treated as never written, not as an error to propagate.
std::uint32_t crc32(ByteView data);

}  // namespace ss
