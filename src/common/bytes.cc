#include "common/bytes.h"

#include <array>
#include <stdexcept>

namespace ss {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("invalid hex digit");
}
}  // namespace

std::string to_hex(ByteView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) throw std::invalid_argument("odd hex length");
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(hex_value(hex[i]) << 4 |
                                            hex_value(hex[i + 1])));
  }
  return out;
}

Bytes bytes_of(std::string_view s) { return Bytes(s.begin(), s.end()); }

std::string string_of(ByteView data) {
  return std::string(data.begin(), data.end());
}

std::uint16_t crc16(ByteView data) {
  std::uint16_t crc = 0xFFFF;
  for (std::uint8_t byte : data) {
    crc ^= byte;
    for (int bit = 0; bit < 8; ++bit) {
      if (crc & 1) {
        crc = static_cast<std::uint16_t>((crc >> 1) ^ 0xA001);
      } else {
        crc = static_cast<std::uint16_t>(crc >> 1);
      }
    }
  }
  return crc;
}

std::uint32_t crc32(ByteView data) {
  // Table generated once, on first use (256 * 4 bytes).
  static const auto kTable = [] {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      table[i] = c;
    }
    return table;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::uint8_t byte : data) {
    crc = kTable[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

bool constant_time_equal(ByteView a, ByteView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace ss
