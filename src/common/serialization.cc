#include "common/serialization.h"

#include <cinttypes>
#include <cstdio>

namespace ss {

std::string to_string(SimTime t) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%06" PRId64 "ms",
                t / kNanosPerMilli, t % kNanosPerMilli);
  return buf;
}

}  // namespace ss
