// Client side of the BFT library (mini BFT-SMaRt ServiceProxy).
//
// A ClientProxy sends each request to every replica, retransmits until it
// collects f+1 matching replies (so at least one is from a correct replica),
// and hands the voted payload to the caller. It also surfaces replica
// pushes — the asynchronous server-to-client messages that SCADA's
// publish/subscribe traffic needs (paper §VI: "BFT-SMaRt ... allows clients
// to send and receive asynchronous messages"). Pushes are delivered raw,
// per replica; voting on them is the job of core::PushVoter because the
// matching key (the ordering info the Adapter stamps into each message) is
// application-defined.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>

#include "bft/messages.h"
#include "common/config.h"
#include "crypto/keychain.h"
#include "net/backoff.h"
#include "net/transport.h"

namespace ss::bft {

struct ClientOptions {
  SimTime reply_timeout = millis(300);  ///< base retransmit period / RTO floor
  std::uint32_t max_retries = 20;       ///< then the request fails
  /// Backpressure: with more than this many requests in flight, invoke()
  /// sheds the new request instead of queueing it (0 = unlimited). A
  /// flooded frontend drops excess field updates at the edge rather than
  /// amplifying the overload into the agreement group.
  std::uint32_t max_inflight = 0;
  /// Adaptive retransmission (EWMA RTT + jittered exponential backoff,
  /// net::AdaptiveTimeout). reply_timeout stays the RTO floor, so retries
  /// never fire *earlier* than the fixed schedule; under partitions the
  /// backoff thins the retransmit storm and the first valid reply after a
  /// heal resets every backed-off request to the base timeout.
  bool adaptive = true;
  SimTime max_rto = millis(1200);  ///< backoff cap
  double jitter = 0.1;             ///< +/- fraction on each retry delay
  /// Jitter stream seed; 0 = derive deterministically from the client id.
  std::uint64_t backoff_seed = 0;
};

struct ClientStats {
  std::uint64_t invoked = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t replies_received = 0;
  std::uint64_t pushes_received = 0;
  std::uint64_t mac_failures = 0;
  std::uint64_t shed = 0;  ///< requests dropped by the max_inflight cap
};

class ClientProxy {
 public:
  /// Receives the voted reply payload.
  using ReplyCallback = std::function<void(Bytes payload)>;
  /// Called when a request exhausts its retries.
  using FailureCallback = std::function<void(RequestId request)>;
  /// Raw push from one replica (unvoted). `seq` is the replica's monotonic
  /// push sequence from the MAC-covered ServerPush body (0 = unsequenced).
  using PushHandler =
      std::function<void(ReplicaId replica, std::uint64_t seq, Bytes payload)>;

  ClientProxy(net::Transport& net, GroupConfig group, ClientId id,
              const crypto::Keychain& keys, ClientOptions options = {});
  ~ClientProxy();

  ClientProxy(const ClientProxy&) = delete;
  ClientProxy& operator=(const ClientProxy&) = delete;

  ClientId id() const { return id_; }
  const std::string& endpoint() const { return endpoint_; }
  const ClientStats& stats() const { return stats_; }

  /// Invokes a request through total-order agreement. The callback fires
  /// once, with the f+1-voted reply. Multiple invocations may be in flight.
  /// Returns RequestId{0} (and never fires the callback) when the request
  /// was shed by the max_inflight cap.
  RequestId invoke_ordered(Bytes payload, ReplyCallback on_reply = {});

  /// Read-only fast path: executed by each replica without ordering.
  RequestId invoke_unordered(Bytes payload, ReplyCallback on_reply = {});

  void set_push_handler(PushHandler handler) {
    push_handler_ = std::move(handler);
  }
  void set_failure_handler(FailureCallback handler) {
    failure_handler_ = std::move(handler);
  }

 private:
  struct InFlight {
    Bytes wire;  ///< encoded request envelope body, ready to resend
    ReplyCallback callback;
    std::map<ReplicaId, crypto::Digest> votes;
    std::map<ReplicaId, Bytes> payloads;
    std::uint32_t retries = 0;
    std::uint32_t backoff_level = 0;  ///< doubles the delay per timeout
    SimTime sent_at = 0;              ///< when first transmitted
    bool rtt_sampled = false;
    net::Timer timer;
  };

  RequestId invoke(RequestMode mode, Bytes payload, ReplyCallback on_reply);
  void send_to_all(const Bytes& body);
  void on_message(net::Message msg);
  void handle_reply(ClientReply reply);
  void arm_retransmit(RequestId seq);
  SimTime retransmit_delay(const InFlight& flight);
  /// The first valid reply after a silent spell proves the path works
  /// again: every backed-off flight is retransmitted immediately and
  /// dropped to level 0, so recovery after a partition heals is bounded by
  /// one round trip, not the backoff cap. Gated on reply silence — while
  /// replies keep flowing the flights are backed off because the *system*
  /// is slow, and zeroing them on every reply would re-synchronize the
  /// whole window into lockstep retransmit bursts.
  void fast_reset();

  net::Transport& net_;
  GroupConfig group_;
  ClientId id_;
  std::string endpoint_;
  const crypto::Keychain& keys_;
  ClientOptions opt_;

  net::AdaptiveTimeout rto_;
  SimTime last_reply_at_ = 0;  ///< any authenticated reply, voted or not
  RequestId next_seq_{1};
  std::map<std::uint64_t, InFlight> inflight_;
  PushHandler push_handler_;
  FailureCallback failure_handler_;
  ClientStats stats_;
};

}  // namespace ss::bft
