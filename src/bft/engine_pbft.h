// PBFT-style agreement engine (mini BFT-SMaRt) — INTERNAL to src/bft.
//
// Normal case is a sequential, leader-driven 3-phase agreement per batch:
//
//   leader:    PROPOSE(cid, batch)  ->  all
//   everyone:  WRITE(cid, digest)   ->  all   (on valid proposal)
//   everyone:  ACCEPT(cid, digest)  ->  all   (on WRITE quorum)
//   decide when ACCEPT quorum; execute batch in cid order.
//
// Quorums are ceil((n+f+1)/2) of n = 3f+1 replicas. Leader change follows
// Mod-SMaRt's STOP / STOP_DATA / SYNC synchronization phase. This is the
// byte-for-byte extraction of the pre-seam bft::Replica agreement logic;
// the determinism regression in tests/sim_test.cc holds it to the recorded
// pre-refactor timeline.
//
// Do not include outside src/bft — select via GroupConfig::protocol and
// bft::make_engine (tools/check_engine_headers.sh enforces this).
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "bft/engine.h"

namespace ss::bft {

class PbftEngine final : public AgreementEngine {
 public:
  PbftEngine(EngineHost& host, const GroupConfig& group, ReplicaId id,
             const crypto::Keychain& keys);

  Protocol protocol() const override { return Protocol::kPbft; }
  QuorumConfig quorums() const override {
    return QuorumConfig{group_.n, group_.f, group_.quorum(),
                        group_.sync_quorum()};
  }
  void prevalidate(const Envelope& env,
                   EnginePrevalidated& pre) const override;
  void on_message(const Envelope& env, EnginePrevalidated& pre) override;
  void on_request_ready() override { maybe_propose(); }
  void suspect_leader() override;
  std::uint64_t view() const override { return regency_; }
  ReplicaId current_leader() const override {
    return group_.leader_for(regency_);
  }
  void on_state_transfer_applied() override;
  void on_crash() override;
  void reset() override;
  void corrupt_vote_for_test(MsgType type, Bytes& body) const override;

 private:
  struct Instance {
    std::optional<Propose> proposal;
    crypto::Digest digest{};
    bool write_sent = false;
    bool accept_sent = false;
    std::map<ReplicaId, crypto::Digest> writes;
    std::map<ReplicaId, crypto::Digest> accepts;
    /// Worker-verified batch for this proposal, consumed by
    /// validate_proposal (absent on the inline fallback paths).
    std::optional<PrevalidatedBatch> prevalidated;
  };

  bool is_leader() const { return group_.leader_for(regency_) == id_; }

  // --- consensus: normal case ---------------------------------------------
  void maybe_propose();
  void handle_propose(Propose p, bool from_sync,
                      std::optional<PrevalidatedPropose> pre = std::nullopt);
  void handle_write(const PhaseVote& v);
  void handle_accept(const PhaseVote& v);
  std::uint32_t matching_votes(const std::map<ReplicaId, crypto::Digest>& votes,
                               const crypto::Digest& value) const;
  void try_decide();
  bool validate_proposal(Instance& inst, Batch& out_batch);

  // --- view change (Mod-SMaRt synchronization phase) ----------------------
  void note_regency_evidence(ReplicaId sender, std::uint64_t regency);
  void send_stop(std::uint64_t regency);
  void handle_stop(const Stop& s);
  void install_regency(std::uint64_t regency);
  void handle_stop_data(const StopData& sd);
  void run_sync_decision(std::uint64_t regency);
  void handle_sync(const Sync& s);
  void refresh_retained_writeset();

  EngineHost& host_;
  GroupConfig group_;
  ReplicaId id_;
  std::string endpoint_;
  const crypto::Keychain& keys_;

  std::uint64_t regency_ = 0;
  std::map<std::uint64_t, Instance> instances_;  // keyed by cid value

  /// Write-quorum evidence for the open instance, retained across view
  /// changes until the instance decides (a possibly-decided value must be
  /// re-reported in every STOP_DATA, not just the first one).
  struct RetainedWriteset {
    ConsensusId cid;
    std::uint64_t regency = 0;
    crypto::Digest digest{};
    Bytes proposal;
  };
  std::optional<RetainedWriteset> retained_writeset_;

  /// Highest regency each peer has been observed *operating* in (consensus
  /// messages, not STOPs). A replica that slept through a view change —
  /// e.g. crashed and recovered — adopts a regency once f+1 distinct peers
  /// demonstrably run it; otherwise it stays deaf forever.
  std::map<std::uint32_t, std::uint64_t> regency_evidence_;

  std::uint64_t highest_stop_sent_ = 0;
  /// Highest regency each peer has STOPped for. A STOP for regency r also
  /// supports every regency below r (PBFT-style aggregation), otherwise
  /// lossy links can scatter votes across regencies and deadlock the view
  /// change.
  std::map<std::uint32_t, std::uint64_t> stop_regency_from_;
  std::map<std::uint64_t, std::map<std::uint32_t, StopData>> stop_data_;
  bool sync_done_for_regency_ = true;
};

}  // namespace ss::bft
