// Application-facing interfaces of the BFT library.
//
// Mirrors BFT-SMaRt's Executable/Recoverable split: the replicated
// application implements Executable to apply totally-ordered requests and
// Recoverable so lagging or recovering replicas can be brought up to date by
// state transfer instead of replaying the whole history.
#pragma once

#include <functional>

#include "common/bytes.h"
#include "common/types.h"

namespace ss::bft {

/// Deterministic context handed to the application with every ordered
/// request. `timestamp` is the leader-assigned, quorum-validated batch
/// timestamp — the paper's answer to challenge (c), non-deterministic
/// timestamps: replicas must never consult their local clock while
/// executing.
struct ExecuteContext {
  ConsensusId cid;          ///< consensus instance that decided the batch
  std::uint32_t order = 0;  ///< index of this request within the batch
  SimTime timestamp = 0;    ///< deterministic batch timestamp
  ClientId client;          ///< issuing client
  RequestId request;        ///< client-local request sequence number
};

/// The replicated service. Implementations must be deterministic: the reply
/// and every state change may depend only on (current state, ctx, request).
class Executable {
 public:
  virtual ~Executable() = default;

  /// Applies one totally-ordered request; the return value is sent back to
  /// the issuing client (and voted on with f+1 matching copies).
  virtual Bytes execute_ordered(const ExecuteContext& ctx,
                                ByteView request) = 0;

  /// Serves a read-only request directly, without ordering. Must not
  /// modify state.
  virtual Bytes execute_unordered(ClientId client, ByteView request) = 0;
};

/// State-transfer hooks.
class Recoverable {
 public:
  virtual ~Recoverable() = default;

  /// Serializes the full application state (deterministically!).
  virtual Bytes snapshot() const = 0;

  /// Replaces the application state with a snapshot.
  virtual void restore(ByteView snapshot) = 0;
};

/// Replica-to-client push channel. SCADA is event-driven: a single ordered
/// ItemUpdate can fan out into ItemUpdate/EventUpdate pushes toward the HMI
/// proxy — the asynchronous messages of challenge (d). The application
/// receives this sink at registration time and may call it during
/// execute_ordered.
using PushSink = std::function<void(ClientId to, Bytes payload)>;

}  // namespace ss::bft
