// MinBFT-style agreement engine (Veronese et al., "Efficient Byzantine
// Fault-Tolerance") — INTERNAL to src/bft.
//
// A trusted monotonic counter (crypto/usig.h) makes equivocation
// detectable, which shrinks the group to n = 2f+1 and the quorums to f+1:
//
//   leader:    MB_PREPARE(view, cid, batch) + UI  ->  all
//   everyone:  MB_COMMIT(view, cid, digest) + UI  ->  all  (on valid prepare)
//   decide on f+1 matching COMMITs from distinct senders (the leader's
//   PREPARE is not a vote; the leader broadcasts its own COMMIT too).
//
// The view change is two messages: MB_VIEW_CHANGE carries the sender's
// non-repudiable evidence (counter-certified) inline, f+1 matching targets
// install the view, and the new leader's re-PREPARE under the new view
// closes it — there is no separate STOP_DATA/SYNC round.
//
// Documented simplifications vs. the paper's MinBFT (see DESIGN.md §16):
// instances are cid-indexed rather than counter-ordered, there is no
// counter-contiguity gating, and the view change carries one prepared entry
// instead of the full message log. Equivocation is *detected* (conflicting
// USIG certificates for one instance, surfaced in stats as
// equivocations_detected) rather than made impossible by log ordering.
//
// Do not include outside src/bft — select via GroupConfig::protocol and
// bft::make_engine (tools/check_engine_headers.sh enforces this).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "bft/engine.h"
#include "crypto/usig.h"

namespace ss::bft {

class MinBftEngine final : public AgreementEngine {
 public:
  MinBftEngine(EngineHost& host, const GroupConfig& group, ReplicaId id,
               const crypto::Keychain& keys);

  Protocol protocol() const override { return Protocol::kMinBft; }
  QuorumConfig quorums() const override {
    return QuorumConfig{group_.n, group_.f, group_.quorum(),
                        group_.sync_quorum()};
  }
  void prevalidate(const Envelope& env,
                   EnginePrevalidated& pre) const override;
  void on_message(const Envelope& env, EnginePrevalidated& pre) override;
  void on_request_ready() override { maybe_propose(); }
  void suspect_leader() override;
  std::uint64_t view() const override { return view_; }
  ReplicaId current_leader() const override {
    return group_.leader_for(view_);
  }
  bool leader_self_suspects() const override { return true; }
  void on_state_transfer_applied() override;
  void on_crash() override;
  void reset() override;
  void corrupt_vote_for_test(MsgType type, Bytes& body) const override;

 private:
  struct Instance {
    std::optional<MbPrepare> prepare;
    crypto::Digest digest{};
    bool commit_sent = false;
    /// true once a conflicting leader certificate was counted for this
    /// instance, so one equivocation inflates the metric exactly once.
    bool equivocation_flagged = false;
    std::map<ReplicaId, crypto::Digest> commits;  ///< by commit *sender*
    std::optional<PrevalidatedBatch> prevalidated;
  };

  bool is_leader() const { return group_.leader_for(view_) == id_; }

  /// Per-sender, per-message-type strict counter monotonicity: records and
  /// enforces that `counter` exceeds the last one accepted from `sender`
  /// in `seen`. Tracked per type so in-flight reordering between a
  /// leader's PREPARE and its immediately-following COMMIT cannot starve
  /// the prepare.
  bool counter_fresh(std::map<std::uint32_t, std::uint64_t>& seen,
                     ReplicaId sender, std::uint64_t counter);

  // --- consensus: normal case ---------------------------------------------
  void maybe_propose();
  void handle_prepare(MbPrepare p, bool own,
                      std::optional<PrevalidatedPropose> pre = std::nullopt,
                      bool cert_prevalidated_ok = false);
  void handle_commit(const MbCommit& c);
  std::uint32_t matching_commits(const Instance& inst) const;
  void try_decide();
  bool validate_batch(Instance& inst, Batch& out_batch);
  void flag_equivocation(Instance& inst, ConsensusId cid);

  // --- view change --------------------------------------------------------
  void note_view_evidence(ReplicaId sender, std::uint64_t view);
  void send_viewchange(std::uint64_t view);
  void handle_viewchange(MbViewChange vc, bool own);
  void install_view(std::uint64_t view);
  void run_vc_decision(std::uint64_t view);
  void refresh_retained_prepare();

  EngineHost& host_;
  GroupConfig group_;
  ReplicaId id_;
  std::string endpoint_;
  const crypto::Keychain& keys_;
  /// The trusted component. Deliberately survives reset() — a trusted
  /// counter never moves backwards, even across a process reincarnation
  /// (the durable lease in EngineHost enforces it across real crashes).
  crypto::Usig usig_;

  std::uint64_t view_ = 0;
  std::map<std::uint64_t, Instance> instances_;  // keyed by cid value

  /// The prepared-but-possibly-decided value for the open instance,
  /// retained across view changes until it decides here too (same
  /// obligation as PbftEngine's retained write-set: a value this replica
  /// counter-certified a COMMIT for may have reached f+1 elsewhere).
  struct RetainedPrepare {
    ConsensusId cid;
    std::uint64_t view = 0;
    crypto::Digest digest{};
    Bytes batch;
    crypto::UsigCert cert;  ///< the certifying leader's prepare UI
  };
  std::optional<RetainedPrepare> retained_prepare_;

  /// The most recently *decided* instance's prepare evidence. A peer stuck
  /// one COMMIT short of the f+1 quorum on an instance this replica already
  /// decided can never finish it from the live vote stream — decided
  /// replicas do not re-vote — and at n = 2f+1 the state-transfer quorum
  /// (f+1 identical snapshots) livelocks whenever the two peers' frontiers
  /// are skewed. This entry lets the replica re-supply the missing vote:
  /// broadcast by a new leader whose view-change votes expose a laggard,
  /// and echoed point-to-point when a peer's COMMIT for our decided
  /// frontier arrives (see handle_commit).
  std::optional<RetainedPrepare> decided_echo_;
  /// Echo rate limit: peers already sent a decided-instance echo under the
  /// current (view, cid). Without it two replicas at the same frontier
  /// bounce echoes forever — each one's echo COMMIT lands at the other as
  /// "a commit for my decided frontier" and triggers a reply, and every
  /// echo mints a fresh USIG counter so the freshness check never breaks
  /// the cycle. A view change (or frontier advance) re-arms the echo.
  std::uint64_t echo_view_ = 0;
  std::uint64_t echo_cid_ = 0;
  std::set<std::uint32_t> echo_sent_to_;

  /// Highest view each peer has been observed *operating* in (prepares and
  /// commits, not view-change votes); f+1 distinct peers demonstrably in a
  /// higher view pull a slept-through replica forward.
  std::map<std::uint32_t, std::uint64_t> view_evidence_;

  /// Fresh proposals are forbidden at or below this cid: a view-change vote
  /// reported a decision frontier this replica has not reached, so a value
  /// may exist for the open instance that this replica does not know.
  /// Proposing a *fresh* batch over it would fork the decided history. The
  /// floor only blocks fresh batches — the evidence-carrying re-propose
  /// paths (retained pin, view-change best entry, laggard echo) are exactly
  /// how the unknown value gets re-supplied. The replica moves past the
  /// floor by deciding up to it (echo, state transfer), never by waiting
  /// it out.
  std::uint64_t fresh_propose_floor_ = 0;

  std::uint64_t highest_vc_sent_ = 0;
  /// Newest view-change message per sender. A VIEW-CHANGE for view v
  /// supports every target <= v (STOP-style aggregation), and its inline
  /// prepared-entry evidence feeds the new leader's decision directly.
  std::map<std::uint32_t, MbViewChange> vc_from_;
  bool vc_done_for_view_ = true;

  // Monotonicity frontiers for received USIG counters (driver-side state;
  // certificate HMAC verification itself is pure and worker-safe).
  std::map<std::uint32_t, std::uint64_t> prepare_counters_;
  std::map<std::uint32_t, std::uint64_t> commit_counters_;
  std::map<std::uint32_t, std::uint64_t> vc_counters_;
};

}  // namespace ss::bft
