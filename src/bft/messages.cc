#include "bft/messages.h"

namespace ss::bft {

namespace {

void put_digest(Writer& w, const crypto::Digest& d) { w.raw(ByteView(d)); }

crypto::Digest get_digest(Reader& r) {
  crypto::Digest d{};
  for (auto& byte : d) byte = r.u8();
  return d;
}

}  // namespace

const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kClientRequest:
      return "CLIENT_REQUEST";
    case MsgType::kClientReply:
      return "CLIENT_REPLY";
    case MsgType::kServerPush:
      return "SERVER_PUSH";
    case MsgType::kPropose:
      return "PROPOSE";
    case MsgType::kWrite:
      return "WRITE";
    case MsgType::kAccept:
      return "ACCEPT";
    case MsgType::kStop:
      return "STOP";
    case MsgType::kStopData:
      return "STOP_DATA";
    case MsgType::kSync:
      return "SYNC";
    case MsgType::kStateRequest:
      return "STATE_REQUEST";
    case MsgType::kStateReply:
      return "STATE_REPLY";
    case MsgType::kMbPrepare:
      return "MB_PREPARE";
    case MsgType::kMbCommit:
      return "MB_COMMIT";
    case MsgType::kMbViewChange:
      return "MB_VIEW_CHANGE";
  }
  return "?";
}

Bytes Envelope::encode() const {
  Writer w(body.size() + sender.size() + 48);
  w.enumeration(type);
  w.str(sender);
  w.varint(epoch);
  w.blob(body);
  put_digest(w, mac);
  return std::move(w).take();
}

Envelope Envelope::decode(ByteView data) {
  Reader r(data);
  Envelope e;
  e.type = r.enumeration<MsgType>(static_cast<std::uint64_t>(MsgType::kMax));
  e.sender = r.str();
  e.epoch = r.varint32();
  e.body = r.blob();
  e.mac = get_digest(r);
  r.expect_done();
  return e;
}

Bytes envelope_mac_material(MsgType type, const std::string& sender,
                            const std::string& receiver, std::uint32_t epoch,
                            const Bytes& body) {
  Writer w(body.size() + sender.size() + receiver.size() + 16);
  w.enumeration(type);
  w.str(sender);
  w.str(receiver);
  w.varint(epoch);
  w.blob(body);
  return std::move(w).take();
}

Bytes ClientRequest::encode_core() const {
  Writer w(payload.size() + 16);
  w.id(client);
  w.id(sequence);
  w.enumeration(mode);
  w.blob(payload);
  return std::move(w).take();
}

Bytes ClientRequest::encode() const {
  Writer w(payload.size() + 16 + auth.size() * 33);
  w.id(client);
  w.id(sequence);
  w.enumeration(mode);
  w.blob(payload);
  w.varint(auth.size());
  for (const crypto::Digest& mac : auth) put_digest(w, mac);
  return std::move(w).take();
}

ClientRequest ClientRequest::decode(ByteView data) {
  Reader r(data);
  ClientRequest m;
  m.client = r.id<ClientId>();
  m.sequence = r.id<RequestId>();
  m.mode = r.enumeration<RequestMode>(1);
  m.payload = r.blob();
  std::uint64_t n = r.varint();
  if (n > 1024) throw DecodeError("authenticator too large");
  m.auth.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) m.auth.push_back(get_digest(r));
  r.expect_done();
  return m;
}

crypto::Digest ClientRequest::digest() const {
  return crypto::Sha256::hash(encode_core());
}

Bytes ClientReply::encode() const {
  Writer w(payload.size() + 24);
  w.id(replica);
  w.id(client);
  w.id(sequence);
  w.id(cid);
  w.blob(payload);
  return std::move(w).take();
}

ClientReply ClientReply::decode(ByteView data) {
  Reader r(data);
  ClientReply m;
  m.replica = r.id<ReplicaId>();
  m.client = r.id<ClientId>();
  m.sequence = r.id<RequestId>();
  m.cid = r.id<ConsensusId>();
  m.payload = r.blob();
  r.expect_done();
  return m;
}

Bytes ServerPush::encode() const {
  Writer w(payload.size() + 24);
  w.id(replica);
  w.id(client);
  w.varint(seq);
  w.blob(payload);
  return std::move(w).take();
}

ServerPush ServerPush::decode(ByteView data) {
  Reader r(data);
  ServerPush m;
  m.replica = r.id<ReplicaId>();
  m.client = r.id<ClientId>();
  m.seq = r.varint();
  m.payload = r.blob();
  r.expect_done();
  return m;
}

Bytes Batch::encode() const {
  Writer w;
  w.i64(timestamp);
  w.varint(requests.size());
  for (const ClientRequest& req : requests) w.blob(req.encode());
  return std::move(w).take();
}

Batch Batch::decode(ByteView data) {
  Reader r(data);
  Batch b;
  b.timestamp = r.i64();
  std::uint64_t n = r.varint();
  if (n > 100000) throw DecodeError("batch too large");
  b.requests.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Bytes inner = r.blob();
    b.requests.push_back(ClientRequest::decode(inner));
  }
  r.expect_done();
  return b;
}

crypto::Digest Batch::digest() const { return crypto::Sha256::hash(encode()); }

Bytes Propose::encode() const {
  Writer w(batch.size() + 24);
  w.id(cid);
  w.varint(regency);
  w.id(leader);
  w.blob(batch);
  return std::move(w).take();
}

Propose Propose::decode(ByteView data) {
  Reader r(data);
  Propose m;
  m.cid = r.id<ConsensusId>();
  m.regency = r.varint();
  m.leader = r.id<ReplicaId>();
  m.batch = r.blob();
  r.expect_done();
  return m;
}

Bytes PhaseVote::encode() const {
  Writer w(48);
  w.id(cid);
  w.varint(regency);
  w.id(voter);
  put_digest(w, value);
  return std::move(w).take();
}

PhaseVote PhaseVote::decode(ByteView data) {
  Reader r(data);
  PhaseVote m;
  m.cid = r.id<ConsensusId>();
  m.regency = r.varint();
  m.voter = r.id<ReplicaId>();
  m.value = get_digest(r);
  r.expect_done();
  return m;
}

Bytes Stop::encode() const {
  Writer w(12);
  w.varint(regency);
  w.id(sender);
  return std::move(w).take();
}

Stop Stop::decode(ByteView data) {
  Reader r(data);
  Stop m;
  m.regency = r.varint();
  m.sender = r.id<ReplicaId>();
  r.expect_done();
  return m;
}

Bytes StopData::encode() const {
  Writer w(writeset_proposal.size() + 64);
  w.varint(regency);
  w.id(sender);
  w.id(last_decided);
  w.boolean(has_writeset);
  w.id(writeset_cid);
  w.varint(writeset_regency);
  put_digest(w, writeset_digest);
  w.blob(writeset_proposal);
  return std::move(w).take();
}

StopData StopData::decode(ByteView data) {
  Reader r(data);
  StopData m;
  m.regency = r.varint();
  m.sender = r.id<ReplicaId>();
  m.last_decided = r.id<ConsensusId>();
  m.has_writeset = r.boolean();
  m.writeset_cid = r.id<ConsensusId>();
  m.writeset_regency = r.varint();
  m.writeset_digest = get_digest(r);
  m.writeset_proposal = r.blob();
  r.expect_done();
  return m;
}

Bytes Sync::encode() const {
  Writer w(batch.size() + 24);
  w.varint(regency);
  w.id(leader);
  w.id(cid);
  w.blob(batch);
  return std::move(w).take();
}

Sync Sync::decode(ByteView data) {
  Reader r(data);
  Sync m;
  m.regency = r.varint();
  m.leader = r.id<ReplicaId>();
  m.cid = r.id<ConsensusId>();
  m.batch = r.blob();
  r.expect_done();
  return m;
}

namespace {

void put_cert(Writer& w, const crypto::UsigCert& c) {
  w.varint(c.counter);
  put_digest(w, c.mac);
}

crypto::UsigCert get_cert(Reader& r) {
  crypto::UsigCert c;
  c.counter = r.varint();
  c.mac = get_digest(r);
  return c;
}

}  // namespace

Bytes MbPrepare::material(std::uint64_t view, ConsensusId cid,
                          const crypto::Digest& batch_digest) {
  Writer w(48);
  w.enumeration(MsgType::kMbPrepare);
  w.varint(view);
  w.id(cid);
  put_digest(w, batch_digest);
  return std::move(w).take();
}

Bytes MbPrepare::encode() const {
  Writer w(batch.size() + 64);
  w.varint(view);
  w.id(cid);
  w.id(leader);
  w.blob(batch);
  put_cert(w, cert);
  return std::move(w).take();
}

MbPrepare MbPrepare::decode(ByteView data) {
  Reader r(data);
  MbPrepare m;
  m.view = r.varint();
  m.cid = r.id<ConsensusId>();
  m.leader = r.id<ReplicaId>();
  m.batch = r.blob();
  m.cert = get_cert(r);
  r.expect_done();
  return m;
}

Bytes MbCommit::material(std::uint64_t view, ConsensusId cid,
                         const crypto::Digest& value) {
  Writer w(48);
  w.enumeration(MsgType::kMbCommit);
  w.varint(view);
  w.id(cid);
  put_digest(w, value);
  return std::move(w).take();
}

Bytes MbCommit::encode() const {
  Writer w(128);
  w.varint(view);
  w.id(cid);
  w.id(replica);
  put_digest(w, value);
  put_cert(w, prepare_cert);
  put_cert(w, cert);
  return std::move(w).take();
}

MbCommit MbCommit::decode(ByteView data) {
  Reader r(data);
  MbCommit m;
  m.view = r.varint();
  m.cid = r.id<ConsensusId>();
  m.replica = r.id<ReplicaId>();
  m.value = get_digest(r);
  m.prepare_cert = get_cert(r);
  m.cert = get_cert(r);
  r.expect_done();
  return m;
}

Bytes MbViewChange::encode_core() const {
  Writer w(prepared_batch.size() + 128);
  w.varint(view);
  w.id(sender);
  w.id(last_decided);
  w.boolean(has_prepared);
  w.varint(prepared_view);
  w.id(prepared_cid);
  put_digest(w, prepared_digest);
  w.blob(prepared_batch);
  put_cert(w, prepared_cert);
  return std::move(w).take();
}

Bytes MbViewChange::material() const {
  Bytes core = encode_core();
  Writer w(core.size() + 1);
  w.enumeration(MsgType::kMbViewChange);
  w.raw(core);
  return std::move(w).take();
}

Bytes MbViewChange::encode() const {
  Bytes core = encode_core();
  Writer w(core.size() + 48);
  w.raw(core);
  put_cert(w, cert);
  return std::move(w).take();
}

MbViewChange MbViewChange::decode(ByteView data) {
  Reader r(data);
  MbViewChange m;
  m.view = r.varint();
  m.sender = r.id<ReplicaId>();
  m.last_decided = r.id<ConsensusId>();
  m.has_prepared = r.boolean();
  m.prepared_view = r.varint();
  m.prepared_cid = r.id<ConsensusId>();
  m.prepared_digest = get_digest(r);
  m.prepared_batch = r.blob();
  m.prepared_cert = get_cert(r);
  m.cert = get_cert(r);
  r.expect_done();
  return m;
}

Bytes StateRequest::encode() const {
  Writer w(12);
  w.id(requester);
  w.id(have);
  return std::move(w).take();
}

StateRequest StateRequest::decode(ByteView data) {
  Reader r(data);
  StateRequest m;
  m.requester = r.id<ReplicaId>();
  m.have = r.id<ConsensusId>();
  r.expect_done();
  return m;
}

Bytes StateReply::encode() const {
  Writer w(snapshot.size() + 24);
  w.id(replica);
  w.id(cid);
  w.i64(last_timestamp);
  w.blob(snapshot);
  return std::move(w).take();
}

StateReply StateReply::decode(ByteView data) {
  Reader r(data);
  StateReply m;
  m.replica = r.id<ReplicaId>();
  m.cid = r.id<ConsensusId>();
  m.last_timestamp = r.i64();
  m.snapshot = r.blob();
  r.expect_done();
  return m;
}

crypto::Digest StateReply::digest() const {
  Writer w(snapshot.size() + 24);
  w.id(cid);
  w.i64(last_timestamp);
  w.blob(snapshot);
  return crypto::Sha256::hash(std::move(w).take());
}

}  // namespace ss::bft
