#include "bft/engine_minbft.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "common/logging.h"

namespace ss::bft {

MinBftEngine::MinBftEngine(EngineHost& host, const GroupConfig& group,
                           ReplicaId id, const crypto::Keychain& keys)
    : host_(host),
      group_(group),
      id_(id),
      endpoint_(crypto::replica_principal(id)),
      keys_(keys),
      usig_(keys, id) {
  usig_.attach_persistence(host_.usig_stored_lease(), [this](
                                                          std::uint64_t lease) {
    host_.usig_persist_lease(lease);
  });
}

bool MinBftEngine::counter_fresh(std::map<std::uint32_t, std::uint64_t>& seen,
                                 ReplicaId sender, std::uint64_t counter) {
  std::uint64_t& last = seen[sender.value];
  if (counter <= last) return false;
  last = counter;
  return true;
}

// --------------------------------------------------------------------------
// worker-side prologue

void MinBftEngine::prevalidate(const Envelope& env,
                               EnginePrevalidated& pre) const {
  // Runs on a runner worker thread: everything it reads is immutable for
  // the engine's lifetime and every operation (decode, SHA-256, the cert's
  // HMAC) is pure. Counter *monotonicity* is mutable driver state and is
  // checked on the driver in handle_prepare.
  if (env.type != MsgType::kMbPrepare) return;
  try {
    MbPrepare p = MbPrepare::decode(env.body);
    PrevalidatedPropose pp;
    pp.digest = crypto::Sha256::hash(p.batch);
    pre.prepare_cert_ok = crypto::Usig::verify(
        keys_, p.leader, MbPrepare::material(p.view, p.cid, pp.digest),
        p.cert);
    try {
      pp.batch.batch = Batch::decode(p.batch);
      pp.batch.decoded = true;
      pp.batch.auth_ok = true;
      for (const ClientRequest& req : pp.batch.batch.requests) {
        if (req.auth.size() != group_.n ||
            !keys_.verify(crypto::client_principal(req.client), endpoint_,
                          req.encode_core(), req.auth[id_.value])) {
          pp.batch.auth_ok = false;
          break;
        }
      }
    } catch (const DecodeError&) {
    }
    pre.prepare_pre = std::move(pp);
    pre.prepare = std::move(p);
  } catch (const DecodeError&) {
  }
}

// --------------------------------------------------------------------------
// driver-side dispatch

void MinBftEngine::on_message(const Envelope& env, EnginePrevalidated& pre) {
  switch (env.type) {
    case MsgType::kMbPrepare: {
      MbPrepare p = pre.prepare.has_value() ? std::move(*pre.prepare)
                                            : MbPrepare::decode(env.body);
      // The envelope sender must be the leader the message claims, and that
      // leader must actually lead the view it claims.
      if (env.sender != crypto::replica_principal(p.leader)) return;
      if (group_.leader_for(p.view) != p.leader) return;
      handle_prepare(std::move(p), /*own=*/false, std::move(pre.prepare_pre),
                     pre.prepare_cert_ok);
      break;
    }
    case MsgType::kMbCommit: {
      MbCommit c = MbCommit::decode(env.body);
      if (env.sender != crypto::replica_principal(c.replica)) return;
      handle_commit(c);
      break;
    }
    case MsgType::kMbViewChange: {
      MbViewChange vc = MbViewChange::decode(env.body);
      if (env.sender != crypto::replica_principal(vc.sender)) return;
      handle_viewchange(std::move(vc), /*own=*/false);
      break;
    }
    default:
      break;  // not a MinBFT engine message
  }
}

void MinBftEngine::corrupt_vote_for_test(MsgType type, Bytes& body) const {
  if (type != MsgType::kMbCommit) return;
  // Corrupt the counter certificate *after* the USIG sealed it — the shape
  // of vote corruption available to a compromised MinBFT replica, whose
  // application code can mangle bytes but cannot re-seal them. Receivers
  // drop the vote as a usig_rejection.
  MbCommit c = MbCommit::decode(body);
  c.cert.mac[0] ^= 0xff;
  body = c.encode();
}

// --------------------------------------------------------------------------
// consensus: normal case

void MinBftEngine::maybe_propose() {
  if (host_.crashed() || !is_leader() || !vc_done_for_view_) return;
  std::uint64_t next = host_.last_decided().value + 1;
  auto it = instances_.find(next);
  if (it != instances_.end() && it->second.prepare.has_value()) return;

  // A counter-certified COMMIT for the open instance pins this replica to
  // that value: the commit may have completed an f+1 quorum elsewhere, so a
  // leader holding one must re-propose the pinned value — proposing a fresh
  // batch over it would fork the decided history (the leader-side twin of
  // run_vc_decision's decided-entry rule).
  refresh_retained_prepare();
  if (retained_prepare_.has_value() && retained_prepare_->cid.value == next &&
      host_.byzantine() != ByzantineMode::kEquivocate) {
    MbPrepare p{view_, ConsensusId{next}, id_, retained_prepare_->batch, {}};
    p.cert = usig_.certify(
        MbPrepare::material(view_, p.cid, retained_prepare_->digest));
    ++host_.mutable_stats().proposals_sent;
    host_.broadcast_replicas(MsgType::kMbPrepare, p.encode());
    handle_prepare(std::move(p), /*own=*/true);
    return;
  }

  // A reported decision frontier past this replica means the open instance
  // may already hold a decided value we do not know — never propose a fresh
  // batch over it (see fresh_propose_floor_'s declaration).
  if (next <= fresh_propose_floor_) return;

  if (host_.pending_empty()) return;
  Batch batch = host_.make_batch();
  ConsensusId cid{next};
  ++host_.mutable_stats().proposals_sent;

  if (host_.byzantine() == ByzantineMode::kEquivocate) {
    // Send conflicting batches to the two halves of the group. The USIG
    // cannot certify both under one counter, so the two prepares carry
    // *distinct* valid certificates for one (view, cid) — exactly the
    // evidence correct replicas cross-check via the COMMIT's echoed
    // prepare certificate (equivocations_detected) before voting the
    // leader out. The equivocating leader withholds its own COMMIT, so
    // neither value can reach the f+1 quorum.
    Batch other = batch;
    other.timestamp += 1;
    MbPrepare p1{view_, cid, id_, batch.encode(), {}};
    p1.cert = usig_.certify(
        MbPrepare::material(view_, cid, crypto::Sha256::hash(p1.batch)));
    MbPrepare p2{view_, cid, id_, other.encode(), {}};
    p2.cert = usig_.certify(
        MbPrepare::material(view_, cid, crypto::Sha256::hash(p2.batch)));
    bool flip = false;
    for (ReplicaId peer : group_.replica_ids()) {
      if (peer == id_) continue;
      const MbPrepare& chosen = flip ? p2 : p1;
      host_.send_to_replica(peer, MsgType::kMbPrepare, chosen.encode());
      flip = !flip;
    }
    return;
  }

  MbPrepare p{view_, cid, id_, batch.encode(), {}};
  p.cert = usig_.certify(
      MbPrepare::material(view_, cid, crypto::Sha256::hash(p.batch)));
  host_.broadcast_replicas(MsgType::kMbPrepare, p.encode());
  handle_prepare(std::move(p), /*own=*/true);
}

void MinBftEngine::flag_equivocation(Instance& inst, ConsensusId cid) {
  if (inst.equivocation_flagged) return;
  inst.equivocation_flagged = true;
  ++host_.mutable_stats().equivocations_detected;
  SS_LOG(LogLevel::kWarn, host_.now(), endpoint_.c_str(),
         "conflicting USIG-certified prepares for cid=%lu; leader %u "
         "equivocated",
         static_cast<unsigned long>(cid.value),
         group_.leader_for(view_).value);
  suspect_leader();
}

void MinBftEngine::handle_prepare(MbPrepare p, bool own,
                                  std::optional<PrevalidatedPropose> pre,
                                  bool cert_prevalidated_ok) {
  crypto::Digest digest =
      pre.has_value() ? pre->digest : crypto::Sha256::hash(p.batch);
  if (!own) {
    // Progress evidence counts even under an unadopted view (see
    // PbftEngine::handle_propose for why a rejoining replica needs it).
    host_.note_progress_evidence(p.cid);
    // Certificate before anything stateful: view evidence and the instance
    // table must only ever see messages the claimed leader's USIG sealed.
    bool cert_ok = pre.has_value()
                       ? cert_prevalidated_ok
                       : crypto::Usig::verify(
                             keys_, p.leader,
                             MbPrepare::material(p.view, p.cid, digest),
                             p.cert);
    if (!cert_ok) {
      ++host_.mutable_stats().usig_rejections;
      return;
    }
    if (p.view > view_) note_view_evidence(p.leader, p.view);
    if (p.view != view_) return;
    if (p.cid.value <= host_.last_decided().value) return;
    if (p.cid.value >
        host_.last_decided().value + host_.state_gap_threshold()) {
      // Past the state-transfer gap the batch can only arrive via snapshot
      // anyway; buffering it would let an authenticated Byzantine peer grow
      // instances_ without bound.
      return;
    }
    if (!counter_fresh(prepare_counters_, p.leader, p.cert.counter)) {
      ++host_.mutable_stats().usig_rejections;
      return;
    }
  }

  Instance& inst = instances_[p.cid.value];
  if (inst.prepare.has_value()) {
    if (inst.digest != digest) {
      // Two valid leader certificates for one instance with different
      // values: non-repudiable proof of equivocation (a correct leader's
      // USIG would never certify both).
      flag_equivocation(inst, p.cid);
    }
    return;
  }
  inst.prepare = std::move(p);
  inst.digest = digest;
  if (pre.has_value()) inst.prevalidated = std::move(pre->batch);
  try_decide();
}

void MinBftEngine::handle_commit(const MbCommit& c) {
  if (c.replica.value >= group_.n) return;
  host_.note_progress_evidence(c.cid);  // even under an unadopted view
  if (c.replica != id_) {
    // Certificate before anything stateful (view evidence, the echo slot,
    // the vote itself): a forged commit must not steer views or consume
    // per-peer state.
    if (!crypto::Usig::verify(keys_, c.replica,
                              MbCommit::material(c.view, c.cid, c.value),
                              c.cert)) {
      ++host_.mutable_stats().usig_rejections;
      return;
    }
    if (c.view > view_) note_view_evidence(c.replica, c.view);
  }
  if (c.view == view_ && c.replica != id_ &&
      c.cid.value == host_.last_decided().value &&
      decided_echo_.has_value() &&
      decided_echo_->cid.value == c.cid.value) {
    // The sender is still voting for an instance this replica already
    // decided: it is one COMMIT short of the f+1 quorum and, since decided
    // replicas never re-vote, the live stream will not complete it. Supply
    // the missing vote directly — at most once per (view, cid) per peer,
    // or two same-frontier replicas bounce echoes forever (each echo IS a
    // commit for the other's decided frontier, with a fresh counter). The
    // freshness check runs before the slot insert so a replayed commit
    // cannot burn a peer's one echo for the current (view, cid).
    if (echo_view_ != view_ || echo_cid_ != c.cid.value) {
      echo_view_ = view_;
      echo_cid_ = c.cid.value;
      echo_sent_to_.clear();
    }
    if (counter_fresh(commit_counters_, c.replica, c.cert.counter) &&
        echo_sent_to_.insert(c.replica.value).second) {
      SS_LOG(LogLevel::kDebug, host_.now(), endpoint_.c_str(),
             "echoing decided cid=%lu to stuck replica %u",
             static_cast<unsigned long>(c.cid.value), c.replica.value);
      MbCommit echo{view_, c.cid, id_, decided_echo_->digest,
                    decided_echo_->cert, {}};
      echo.cert = usig_.certify(
          MbCommit::material(view_, c.cid, decided_echo_->digest));
      host_.send_to_replica(c.replica, MsgType::kMbCommit, echo.encode());
    }
    return;
  }
  if (c.view != view_ || c.cid.value <= host_.last_decided().value) return;
  if (c.cid.value >
      host_.last_decided().value + host_.state_gap_threshold()) {
    return;  // bound instances_ (see handle_prepare)
  }
  if (c.replica != id_ &&
      !counter_fresh(commit_counters_, c.replica, c.cert.counter)) {
    ++host_.mutable_stats().usig_rejections;
    return;
  }

  Instance& inst = instances_[c.cid.value];
  // The voter echoes the prepare certificate it committed on. If it
  // verifies for a *different* value than the prepare we hold, the
  // leader certified both — equivocation, proven without ever seeing
  // the second prepare directly.
  bool equivocated =
      inst.prepare.has_value() && inst.digest != c.value &&
      crypto::Usig::verify(keys_, group_.leader_for(c.view),
                           MbPrepare::material(c.view, c.cid, c.value),
                           c.prepare_cert);
  inst.commits[c.replica] = c.value;
  // Last use of inst: flagging suspects the leader, which can complete a
  // view change synchronously and clear instances_ out from under the
  // reference.
  if (equivocated) flag_equivocation(inst, c.cid);
  try_decide();
}

std::uint32_t MinBftEngine::matching_commits(const Instance& inst) const {
  std::uint32_t count = 0;
  for (const auto& [sender, digest] : inst.commits) {
    if (digest == inst.digest) ++count;
  }
  return count;
}

bool MinBftEngine::validate_batch(Instance& inst, Batch& out_batch) {
  if (inst.prevalidated.has_value()) {
    PrevalidatedBatch pre = std::move(*inst.prevalidated);
    inst.prevalidated.reset();
    if (!pre.decoded || !pre.auth_ok) return false;
    out_batch = std::move(pre.batch);
    if (out_batch.timestamp <= host_.last_timestamp()) return false;
    if (out_batch.requests.empty()) return false;
    return true;
  }
  const MbPrepare& p = *inst.prepare;
  try {
    out_batch = Batch::decode(p.batch);
  } catch (const DecodeError&) {
    return false;
  }
  if (out_batch.timestamp <= host_.last_timestamp()) return false;
  if (out_batch.requests.empty()) return false;
  for (const ClientRequest& req : out_batch.requests) {
    if (req.auth.size() != group_.n) return false;
    if (!keys_.verify(crypto::client_principal(req.client), endpoint_,
                      req.encode_core(), req.auth[id_.value])) {
      return false;
    }
  }
  return true;
}

void MinBftEngine::try_decide() {
  for (;;) {
    std::uint64_t next = host_.last_decided().value + 1;
    auto it = instances_.find(next);
    if (it == instances_.end()) return;
    Instance& inst = it->second;
    if (!inst.prepare.has_value()) return;

    if (!inst.commit_sent) {
      Batch batch;
      if (!validate_batch(inst, batch)) {
        SS_LOG(LogLevel::kWarn, host_.now(), endpoint_.c_str(),
               "invalid prepare for cid=%lu; suspecting leader",
               static_cast<unsigned long>(next));
        instances_.erase(it);
        suspect_leader();
        return;
      }
      inst.commit_sent = true;
      inst.commits[id_] = inst.digest;
      MbCommit c{view_, ConsensusId{next}, id_, inst.digest,
                 inst.prepare->cert, {}};
      c.cert = usig_.certify(
          MbCommit::material(view_, ConsensusId{next}, inst.digest));
      host_.broadcast_replicas(MsgType::kMbCommit, c.encode());
    }

    // f+1 COMMITs from distinct senders: at least one is correct, and a
    // correct committer re-reports the value in every view change until it
    // decides — so the value survives any leader replacement.
    if (matching_commits(inst) < group_.quorum()) return;

    Batch batch = Batch::decode(inst.prepare->batch);
    crypto::Digest decided_digest = inst.digest;
    ConsensusId cid{next};
    // Write-ahead: the decision must be durable before any of its effects
    // become visible (same contract as the PBFT engine).
    host_.append_decision(cid, inst.prepare->batch);
    // Keep the decided value as the retained prepared-entry: if the other
    // committers go quiet before anyone else decides, this replica's
    // VIEW-CHANGE evidence is the only surviving certificate for it.
    retained_prepare_ =
        RetainedPrepare{cid, inst.prepare->view, decided_digest,
                        std::move(inst.prepare->batch), inst.prepare->cert};
    // Separately from the view-change evidence (which moves on to the next
    // open instance as soon as this replica commits there), keep the decided
    // value around for laggard rescue — see decided_echo_'s declaration.
    decided_echo_ = retained_prepare_;
    instances_.erase(it);
    host_.commit(cid, batch, decided_digest);
    maybe_propose();
  }
}

// --------------------------------------------------------------------------
// view change

void MinBftEngine::suspect_leader() { send_viewchange(view_ + 1); }

void MinBftEngine::note_view_evidence(ReplicaId sender, std::uint64_t view) {
  if (view <= view_ || sender.value >= group_.n) return;
  auto& recorded = view_evidence_[sender.value];
  if (view <= recorded) return;
  recorded = view;

  // Adopt the largest view that f+1 distinct peers demonstrably operate in
  // — at least one of them is correct, so that view was really installed.
  std::vector<std::uint64_t> observed;
  observed.reserve(view_evidence_.size());
  for (const auto& [peer, v] : view_evidence_) observed.push_back(v);
  std::sort(observed.begin(), observed.end(), std::greater<>());
  if (observed.size() < group_.f + 1) return;
  std::uint64_t adopt = observed[group_.f];
  if (adopt <= view_) return;

  if (group_.leader_for(adopt) == id_) {
    // Evidence says the group operates in a view this replica leads.
    // Leadership is never assumed from hearsay: installing here would skip
    // run_vc_decision entirely (fresh_propose_floor_, pinned-value
    // recovery), and f Byzantine senders can steer observed[f] onto any
    // view at or below a genuinely installed one — including one this
    // replica leads — making it propose fresh over an instance the group
    // already decided. Vote for the view instead — it installs only
    // through the f+1 view-change quorum, whose evidence run_vc_decision
    // consumes.
    send_viewchange(adopt);
    return;
  }

  SS_LOG(LogLevel::kInfo, host_.now(), endpoint_.c_str(),
         "adopting view %lu from peer evidence (was %lu)",
         static_cast<unsigned long>(adopt), static_cast<unsigned long>(view_));
  refresh_retained_prepare();
  view_ = adopt;
  ++host_.mutable_stats().view_changes;
  instances_.clear();
  vc_done_for_view_ = true;
  for (auto it = view_evidence_.begin(); it != view_evidence_.end();) {
    if (it->second <= adopt) {
      it = view_evidence_.erase(it);
    } else {
      ++it;
    }
  }
  // No maybe_propose(): the adopter is by construction not adopt's leader.
}

void MinBftEngine::send_viewchange(std::uint64_t view) {
  if (view <= view_ || highest_vc_sent_ > view) return;
  // Re-broadcasting for an already-voted target is deliberate (and mints a
  // fresh counter certificate each time): view-change votes can be lost on
  // lossy links, and the suspect timers keep firing while the change is
  // needed, so the retransmit is periodic.
  highest_vc_sent_ = view;

  refresh_retained_prepare();
  MbViewChange vc;
  vc.view = view;
  vc.sender = id_;
  vc.last_decided = host_.last_decided();
  if (retained_prepare_.has_value() &&
      (retained_prepare_->cid.value == host_.last_decided().value + 1 ||
       retained_prepare_->cid.value == host_.last_decided().value)) {
    vc.has_prepared = true;
    vc.prepared_view = retained_prepare_->view;
    vc.prepared_cid = retained_prepare_->cid;
    vc.prepared_digest = retained_prepare_->digest;
    vc.prepared_batch = retained_prepare_->batch;
    vc.prepared_cert = retained_prepare_->cert;
  }
  vc.cert = usig_.certify(vc.material());
  host_.broadcast_replicas(MsgType::kMbViewChange, vc.encode());
  handle_viewchange(std::move(vc), /*own=*/true);
}

void MinBftEngine::handle_viewchange(MbViewChange vc, bool own) {
  if (vc.sender.value >= group_.n) return;
  if (!own) {
    if (!crypto::Usig::verify(keys_, vc.sender, vc.material(), vc.cert)) {
      ++host_.mutable_stats().usig_rejections;
      return;
    }
    if (!counter_fresh(vc_counters_, vc.sender, vc.cert.counter)) {
      ++host_.mutable_stats().usig_rejections;
      return;
    }
    // A verified vote reports the sender's decision frontier — progress
    // evidence even when its view target is stale (during view thrash the
    // votes may be the only traffic a lagging replica ever receives).
    host_.note_progress_evidence(vc.last_decided);
  }
  if (vc.view <= view_) return;
  std::uint32_t sender = vc.sender.value;
  auto stored = vc_from_.find(sender);
  if (stored != vc_from_.end() && stored->second.view >= vc.view &&
      !own) {
    return;  // keep the newest vote per sender
  }
  vc_from_[sender] = std::move(vc);

  // A VIEW-CHANGE for view v supports every target <= v. The largest
  // target supported by f+1 distinct senders installs (with n = 2f+1 the
  // join and install quorums coincide).
  std::vector<std::uint64_t> supported;
  supported.reserve(vc_from_.size());
  for (const auto& [s, stored_vc] : vc_from_) {
    supported.push_back(stored_vc.view);
  }
  std::sort(supported.begin(), supported.end(), std::greater<>());
  if (supported.size() < group_.sync_quorum()) return;
  std::uint64_t target = supported[group_.sync_quorum() - 1];
  if (target <= view_) return;
  // Join before installing, so this replica's own evidence is part of the
  // set the new leader decides from. Only if not already voted for this
  // target: send_viewchange re-enters here via its own-vote delivery, and
  // re-voting an already-voted target would recurse without bound (its
  // retransmit guard deliberately admits view == highest_vc_sent_).
  if (highest_vc_sent_ < target) send_viewchange(target);
  install_view(target);
}

void MinBftEngine::install_view(std::uint64_t view) {
  if (view <= view_) return;
  refresh_retained_prepare();
  view_ = view;
  ++host_.mutable_stats().view_changes;
  instances_.clear();
  vc_done_for_view_ = true;

  ReplicaId leader = group_.leader_for(view_);
  SS_LOG(LogLevel::kInfo, host_.now(), endpoint_.c_str(),
         "installed view %lu (leader %u)", static_cast<unsigned long>(view),
         leader.value);

  // Give the new leader a fresh chance before suspecting it (the leader
  // self-suspects here, so it rearms its own timers too).
  host_.rearm_suspect_timers();
  if (leader == id_) {
    // Unlike Mod-SMaRt there is no separate evidence round: the f+1
    // view-change messages that installed the view *are* the evidence, so
    // the new leader decides immediately and synchronously.
    vc_done_for_view_ = false;
    run_vc_decision(view);
  }

  // Votes up to the installed view are consumed; higher ones remain valid
  // support for future view changes.
  for (auto it = vc_from_.begin(); it != vc_from_.end();) {
    if (it->second.view <= view) {
      it = vc_from_.erase(it);
    } else {
      ++it;
    }
  }
}

void MinBftEngine::run_vc_decision(std::uint64_t view) {
  if (view != view_ || vc_done_for_view_) return;
  vc_done_for_view_ = true;

  // Only the votes that actually supported this target participate.
  std::vector<const MbViewChange*> votes;
  for (const auto& [sender, vc] : vc_from_) {
    if (vc.view >= view) votes.push_back(&vc);
  }
  if (votes.empty()) return;  // cannot happen from install_view, belt+braces

  // The synchronization target comes from the *reported* frontiers (see
  // PbftEngine::run_sync_decision for the fork this prevents): with f+1
  // reports, the (f+1)-th highest is certified by at least one correct
  // replica. The leader's own decisions are certain too, so the open
  // instance is the first one past *both* — a lagging voter must never
  // drag the target below what this leader already decided, or every view
  // stalls in a state transfer that has nothing to teach it.
  std::vector<std::uint64_t> reported;
  reported.reserve(votes.size());
  for (const MbViewChange* vc : votes) {
    reported.push_back(vc->last_decided.value);
  }
  std::sort(reported.begin(), reported.end(), std::greater<>());
  std::uint64_t certified =
      reported[std::min<std::size_t>(group_.f, reported.size() - 1)];
  std::uint64_t max_reported = reported.front();
  std::uint64_t target_cid =
      std::max(certified, host_.last_decided().value) + 1;
  // Everything up to the highest reported frontier is potentially decided:
  // freeze fresh proposals below it (monotonic; see the member's comment).
  if (max_reported > fresh_propose_floor_) fresh_propose_floor_ = max_reported;

  // Choose among the verified prepared entries for the target instance. An
  // entry whose sender already *decided* it (last_decided >= the entry's
  // cid) is a certain value and wins outright; among merely-prepared
  // entries a later view supersedes, since only one value per view can
  // carry the leader's counter certificate past correct replicas.
  const MbViewChange* best = nullptr;
  bool best_decided = false;
  for (const MbViewChange* vc : votes) {
    if (!vc->has_prepared || vc->prepared_cid.value != target_cid) continue;
    if (crypto::Sha256::hash(vc->prepared_batch) != vc->prepared_digest) {
      continue;  // forged evidence
    }
    if (!crypto::Usig::verify(
            keys_, group_.leader_for(vc->prepared_view),
            MbPrepare::material(vc->prepared_view, vc->prepared_cid,
                                vc->prepared_digest),
            vc->prepared_cert)) {
      continue;  // not actually certified by that view's leader
    }
    bool decided = vc->last_decided.value >= target_cid;
    bool better =
        best == nullptr || (decided && !best_decided) ||
        (decided == best_decided &&
         (vc->prepared_view > best->prepared_view ||
          (vc->prepared_view == best->prepared_view &&
           vc->prepared_digest < best->prepared_digest)));
    if (better) {
      best = vc;
      best_decided = decided;
    }
  }

  // A voter pinning an instance this leader already decided is stuck one
  // COMMIT short of the f+1 quorum: its peers' commits were lost, and
  // decided replicas never re-vote an instance. Re-send the decided value's
  // prepare plus a fresh COMMIT under the new view so it closes the gap
  // without a full state transfer. (These sends handle nothing locally, so
  // the vote pointers stay valid.)
  if (decided_echo_.has_value() &&
      decided_echo_->cid.value == host_.last_decided().value) {
    bool laggard = false;
    for (const MbViewChange* vc : votes) {
      if (vc->last_decided.value < host_.last_decided().value) laggard = true;
    }
    if (laggard) {
      SS_LOG(LogLevel::kDebug, host_.now(), endpoint_.c_str(),
             "laggard echo for cid=%lu under view=%lu",
             static_cast<unsigned long>(decided_echo_->cid.value),
             static_cast<unsigned long>(view_));
      MbPrepare p{view_, decided_echo_->cid, id_, decided_echo_->batch, {}};
      p.cert = usig_.certify(
          MbPrepare::material(view_, p.cid, decided_echo_->digest));
      host_.broadcast_replicas(MsgType::kMbPrepare, p.encode());
      MbCommit c{view_, decided_echo_->cid, id_, decided_echo_->digest,
                 p.cert, {}};
      c.cert = usig_.certify(
          MbCommit::material(view_, c.cid, decided_echo_->digest));
      host_.broadcast_replicas(MsgType::kMbCommit, c.encode());
    }
  }

  if (best != nullptr) {
    SS_LOG(LogLevel::kDebug, host_.now(), endpoint_.c_str(),
           "re-preparing pinned cid=%lu from sender=%u under view=%lu",
           static_cast<unsigned long>(target_cid), best->sender.value,
           static_cast<unsigned long>(view_));
    // Re-prepare the pinned value under the new view with a fresh counter.
    // Copy what we need out of *best first: handle_prepare can cascade into
    // another view change that prunes vc_from_ under the pointers.
    const crypto::Digest pinned = best->prepared_digest;
    MbPrepare p{view_, ConsensusId{target_cid}, id_, best->prepared_batch,
                {}};
    p.cert = usig_.certify(MbPrepare::material(view_, p.cid, pinned));
    host_.broadcast_replicas(MsgType::kMbPrepare, p.encode());
    handle_prepare(std::move(p), /*own=*/true);
    // A behind leader can still pin the certified value for the group; it
    // catches its own state up in parallel.
    if (host_.last_decided().value + 1 < target_cid) {
      host_.request_state_transfer();
    }
  } else if (max_reported > host_.last_decided().value) {
    // Some replica demonstrably decided past this leader's frontier: a
    // value exists that this leader does not know — never propose fresh
    // over it. Catch up first; proposing resumes when the transfer lands.
    SS_LOG(LogLevel::kInfo, host_.now(), endpoint_.c_str(),
           "view %lu: behind (target=%lu, max_reported=%lu, decided=%lu); "
           "state transfer before proposing",
           static_cast<unsigned long>(view),
           static_cast<unsigned long>(target_cid),
           static_cast<unsigned long>(max_reported),
           static_cast<unsigned long>(host_.last_decided().value));
    host_.request_state_transfer();
  } else {
    maybe_propose();
  }
}

void MinBftEngine::refresh_retained_prepare() {
  if (retained_prepare_.has_value() &&
      retained_prepare_->cid.value < host_.last_decided().value) {
    // Stale: a later instance decided, so the group advanced past this cid
    // and its value is durable elsewhere. Evidence at exactly last_decided
    // is kept — it may be the only surviving certificate (see try_decide).
    retained_prepare_.reset();
  }
  std::uint64_t open = host_.last_decided().value + 1;
  auto it = instances_.find(open);
  if (it != instances_.end() && it->second.prepare.has_value() &&
      it->second.commit_sent) {
    // This replica counter-certified a COMMIT for the value: it may have
    // completed an f+1 quorum elsewhere, so it must be re-reported in every
    // view change until it decides here too.
    retained_prepare_ = RetainedPrepare{
        ConsensusId{open}, it->second.prepare->view, it->second.digest,
        it->second.prepare->batch, it->second.prepare->cert};
  }
}

// --------------------------------------------------------------------------
// shell lifecycle hooks

void MinBftEngine::on_state_transfer_applied() {
  retained_prepare_.reset();  // the open instance is now in the past
  for (auto it = instances_.begin(); it != instances_.end();) {
    if (it->first <= host_.last_decided().value) {
      it = instances_.erase(it);
    } else {
      ++it;
    }
  }
}

void MinBftEngine::on_crash() { instances_.clear(); }

void MinBftEngine::reset() {
  // Everything except the USIG: its counter (and the durable lease behind
  // it) survives reincarnation by construction — that is the whole point
  // of a trusted monotonic counter.
  view_ = 0;
  instances_.clear();
  retained_prepare_.reset();
  decided_echo_.reset();
  fresh_propose_floor_ = 0;
  echo_view_ = 0;
  echo_cid_ = 0;
  echo_sent_to_.clear();
  view_evidence_.clear();
  highest_vc_sent_ = 0;
  vc_from_.clear();
  vc_done_for_view_ = true;
  prepare_counters_.clear();
  commit_counters_.clear();
  vc_counters_.clear();
}

}  // namespace ss::bft
