// BFT SMR replica shell.
//
// One ReplicaCore pairs with one application (in SMaRt-SCADA: the Adapter
// wrapping a deterministic SCADA Master) and one AgreementEngine
// (engine.h). The shell owns everything protocol-agnostic — transport
// wiring, the runner-based crypto/codec offload, client-request queueing
// and flood protection, execution + reply caching, checkpoints, durable
// storage/recovery, session-key epochs, and snapshot state transfer — and
// routes agreement traffic to the engine selected by GroupConfig::protocol
// (PBFT-style 3f+1 or MinBFT-style 2f+1; see DESIGN.md §16).
//
// Deterministic time: the leader stamps each batch, followers validate
// monotonicity, and the stamp is the only clock the application ever sees.
#pragma once

#include <deque>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "bft/engine.h"
#include "bft/executable.h"
#include "bft/messages.h"
#include "common/config.h"
#include "common/rng.h"
#include "core/runner.h"
#include "crypto/keychain.h"
#include "net/backoff.h"
#include "net/lanes.h"
#include "net/transport.h"

namespace ss::storage {
class ReplicaStorage;
}  // namespace ss::storage

namespace ss::bft {

struct ReplicaOptions {
  SimTime request_timeout = millis(400);  ///< leader-suspect timer
  /// Before suspecting the leader, a non-leader forwards the pending
  /// request to it at request_timeout/2 — the leader may simply never have
  /// received it (PBFT/BFT-SMaRt request forwarding).
  bool forward_to_leader = true;
  /// Flood protection: pending requests per client beyond this are dropped.
  std::size_t max_pending_per_client = 1024;
  std::uint32_t max_batch = 64;
  std::uint64_t checkpoint_interval = 128;
  std::uint64_t state_gap_threshold = 64;  ///< behind by this much => transfer
  /// Virtual CPU cost charged per received protocol message (MAC check etc.)
  SimTime per_message_cost = 0;
  /// Virtual CPU cost charged per decided batch (bookkeeping).
  SimTime per_decision_cost = 0;
  std::uint32_t lanes = 1;
  /// After a peer presents a fresh key epoch, messages MAC'd under its
  /// immediately previous epoch are still accepted this long (in-flight
  /// traffic from before the reincarnation) and rejected afterwards — the
  /// bound on how long session keys stolen before a reboot stay useful.
  SimTime epoch_handover_window = seconds(2);
  /// Crypto/codec runner (core/runner.h): HMAC verify of inbound messages,
  /// HMAC sign + encode of outbound ones, and message decode run as runner
  /// tasks; the state machine stays on the driver thread. Null selects the
  /// replica's own InlineRunner (fully synchronous — the simulated backend
  /// stays byte-identical). Not owned; must outlive the replica unless
  /// swapped out via set_runner() first.
  core::Runner* runner = nullptr;
  /// Durable store (storage/replica_storage.h). With one attached, every
  /// decided batch is logged (fsync'd) before it executes and checkpoints
  /// are written to disk. Not owned; must outlive the replica.
  storage::ReplicaStorage* storage = nullptr;
};

class ReplicaCore final : private EngineHost {
 public:
  ReplicaCore(net::Transport& net, GroupConfig group, ReplicaId id,
              const crypto::Keychain& keys, Executable& app,
              Recoverable& state, ReplicaOptions options = {});
  ~ReplicaCore() override;

  ReplicaCore(const ReplicaCore&) = delete;
  ReplicaCore& operator=(const ReplicaCore&) = delete;

  ReplicaId id() const { return id_; }
  const std::string& endpoint() const { return endpoint_; }
  const ReplicaStats& stats() const { return stats_; }
  const GroupConfig& group() const { return group_; }
  /// Agreement protocol this replica runs (fixed at construction).
  Protocol protocol() const { return engine_->protocol(); }
  /// The engine's quorum structure — what group-size-aware callers
  /// (RecoveryScheduler, deploy --supervise) should derive n and the fault
  /// budget from instead of assuming n = 3f + 1.
  QuorumConfig quorum_config() const { return engine_->quorums(); }
  /// Monotone view counter (PBFT regency / MinBFT view).
  std::uint64_t regency() const { return engine_->view(); }
  ConsensusId last_decided() const override { return last_decided_; }
  SimTime last_timestamp() const override { return last_timestamp_; }
  bool is_leader() const { return engine_->current_leader() == id_; }

  /// Pushes an asynchronous message to a client (see PushSink). Called by
  /// the application during execute_ordered.
  void push_to_client(ClientId client, Bytes payload);

  /// Charges extra virtual CPU time to this replica's service lanes — the
  /// deterministic SCADA Master shares the replica's (single) thread in
  /// SMaRt-SCADA, so its processing time serializes with the protocol's.
  void charge(SimTime cost) {
    if (cost > 0) lanes_.submit(cost, [] {});
  }

  /// Digest of the latest checkpointed application state, for divergence
  /// checks in tests.
  const std::optional<crypto::Digest>& last_checkpoint_digest() const {
    return checkpoint_digest_;
  }
  /// Consensus id the latest checkpoint covers (meaningful only when
  /// last_checkpoint_digest() is set). Checkpoints taken at the same cid
  /// must carry the same digest on every correct replica.
  ConsensusId last_checkpoint_cid() const { return checkpoint_cid_; }

  /// Observation point for cross-replica invariant checking: fires after
  /// every locally executed decision with the batch digest and the batch's
  /// deterministic timestamp. Decisions skipped over by state transfer are
  /// not reported (the replica never executed them itself).
  using DecisionObserver = std::function<void(
      ConsensusId cid, const crypto::Digest& batch_digest, SimTime timestamp)>;
  void set_decision_observer(DecisionObserver observer) {
    decision_observer_ = std::move(observer);
  }

  /// Detaches from the network (crash). A crashed replica stays silent until
  /// recover() is called.
  void crash();

  /// Re-attaches and initiates state transfer from the peers.
  void recover();
  bool crashed() const override { return crashed_; }

  // --- durability (optional; replicas run fine without it) -----------------

  /// DEPRECATED: pass ReplicaOptions::storage at construction instead. Kept
  /// as a forwarding shim for one release (PR 9's ReplicaOptions
  /// consolidation); new call sites must use the options struct.
  void set_storage(storage::ReplicaStorage* storage) { storage_ = storage; }

  /// Restores state from the attached storage: loads the newest checkpoint,
  /// then replays the WAL suffix through the normal execute path (with all
  /// network sends suppressed — the outside world already saw them). Call
  /// once at process start, before serving traffic.
  void recover_from_storage();

  /// Emulates a full process restart in place (for the deterministic
  /// simulation, where destroying the replica mid-run is not an option):
  /// wipes all volatile state back to constructed defaults, restores the
  /// given genesis image, recovers from storage, re-attaches to the network
  /// and asks peers for whatever was decided while "down".
  void reboot(ByteView genesis_full_snapshot);

  /// Forces a checkpoint of the current frontier (and, with storage
  /// attached, persists it). Used on graceful shutdown and by tests that
  /// compare checkpoint digests at a known cid.
  void checkpoint_now();

  /// Asks peers for any decisions made while this replica was down. Safe to
  /// call at any time; a transfer already in flight makes it a no-op.
  void request_state_transfer() override { request_state_now(); }

  /// The full recovery image (app snapshot + dedup table + reply cache) —
  /// what state transfer ships and checkpoints persist.
  Bytes full_snapshot() const { return encode_full_snapshot(); }

  void set_byzantine(ByzantineMode mode) { byzantine_ = mode; }
  ByzantineMode byzantine() const override { return byzantine_; }

  // --- gray-failure injection (chaos hooks) --------------------------------
  // A gray replica is *correct* — it signs, votes, and executes honestly —
  // but slow: these knobs model overloaded CPUs and drifting clocks without
  // making the replica Byzantine, so safety invariants must keep holding
  // while liveness margins shrink.

  /// Extra virtual CPU charged per inbound message (on top of
  /// per_message_cost) — an overloaded or degraded replica that lags the
  /// protocol without ever misbehaving. 0 disables.
  void set_processing_delay(SimTime delay) {
    processing_delay_ = delay > 0 ? delay : 0;
  }
  SimTime processing_delay() const { return processing_delay_; }

  /// Multiplies every timer this replica schedules (suspect timers, stall
  /// checks, engine timeouts, state-transfer retries) — a skewed local
  /// clock. 1.0 disables; clamped to [0.1, 100].
  void set_timer_skew(double factor);
  double timer_skew() const { return timer_skew_; }

  /// Session-key epoch this replica signs outbound messages under. 0 until
  /// the first reincarnation; reboot() bumps it (durably, when storage is
  /// attached).
  std::uint32_t key_epoch() const { return key_epoch_; }
  /// Adopts an outbound key epoch explicitly — a freshly exec'd replica
  /// process installs the epoch its supervisor bumped at spawn. Driver
  /// thread only.
  void set_key_epoch(std::uint32_t epoch) { key_epoch_ = epoch; }

  /// DEPRECATED alongside set_storage(): pass ReplicaOptions::runner at
  /// construction. Retained because the runner seam's determinism
  /// regression swaps runners mid-lifetime on purpose. Drain the old runner
  /// before swapping: in-flight tasks capture `this` and deliver through
  /// whichever runner ran them.
  void set_runner(core::Runner* runner) {
    runner_ = runner != nullptr ? runner : &inline_runner_;
  }
  core::Runner& runner() { return *runner_; }

 private:
  /// One inbound message after the worker-side prologue (decode + MAC
  /// verify + pre-validation), delivered to the driver in receive order.
  struct Prevalidated {
    std::optional<ClientRequest> request;  ///< decoded kClientRequest body
    bool request_auth_ok = false;
    EnginePrevalidated engine;
  };
  struct Inbound {
    bool decode_failed = false;
    bool mac_failed = false;
    Envelope env;
    Prevalidated pre;
  };

  using PendingKey = std::pair<std::uint64_t, std::uint64_t>;  // client, seq

  // --- EngineHost (driver-side services for the agreement engine) ---------
  SimTime now() const override { return net_.now(); }
  void schedule(SimTime delay, std::function<void()> fn) override;
  void send_to_replica(ReplicaId to, MsgType type, Bytes body) override;
  void broadcast_replicas(MsgType type, const Bytes& body) override;
  bool pending_empty() const override { return pending_.empty(); }
  Batch make_batch() override;
  void append_decision(ConsensusId cid, const Bytes& proposal) override;
  void commit(ConsensusId cid, const Batch& batch,
              const crypto::Digest& digest) override;
  void note_progress_evidence(ConsensusId cid) override;
  void rearm_suspect_timers() override;
  SimTime request_timeout() const override { return opt_.request_timeout; }
  std::uint64_t state_gap_threshold() const override {
    return opt_.state_gap_threshold;
  }
  ReplicaStats& mutable_stats() override { return stats_; }
  std::uint64_t usig_stored_lease() const override;
  void usig_persist_lease(std::uint64_t lease) override;

  // --- networking ---------------------------------------------------------
  void on_message(net::Message msg);
  /// Worker-thread prologue: decode + MAC verify + per-type pre-validation.
  /// Must only touch immutable state (it runs concurrently with the driver).
  Inbound prevalidate(const Bytes& payload) const;
  /// Driver-thread epilogue: stats for failed prologues, then dispatch.
  void deliver(Inbound in);
  void dispatch(Envelope env, Prevalidated pre);
  void send_envelope(const std::string& to, MsgType type, Bytes body);
  void broadcast(MsgType type, const Bytes& body);
  /// Key-epoch recency policy for replica-to-replica traffic (driver
  /// thread; mutates peer_epochs_). The MAC already verified under the
  /// claimed epoch — this decides whether that epoch is still current.
  bool accept_sender_epoch(const std::string& sender, std::uint32_t epoch);
  void note_rejoin_complete();

  // --- client requests ----------------------------------------------------
  void handle_client_request(const Envelope& env, Prevalidated& pre);
  bool already_executed(ClientId client, RequestId seq) const;
  void remember_executed(ClientId client, RequestId seq);
  void enqueue_pending(ClientRequest req);
  void erase_pending(ClientId client, RequestId seq);
  void arm_suspect_timer(ClientId client, RequestId seq);

  // --- execution ----------------------------------------------------------
  void execute_batch(ConsensusId cid, const Batch& batch);

  // --- state transfer & checkpoints ----------------------------------------
  void maybe_checkpoint();
  void write_storage_checkpoint();
  void maybe_request_state(ConsensusId evidence_cid);
  void arm_stall_check(std::uint64_t target);
  void request_state_now();
  void resend_cached_reply(ClientId client, RequestId seq);
  Bytes encode_full_snapshot() const;
  void apply_full_snapshot(ByteView data);
  void handle_state_request(const StateRequest& req);
  void handle_state_reply(const StateReply& rep);

  net::Transport& net_;
  GroupConfig group_;
  ReplicaId id_;
  std::string endpoint_;
  const crypto::Keychain& keys_;
  Executable& app_;
  Recoverable& recoverable_;
  ReplicaOptions opt_;
  net::Lanes lanes_;
  core::InlineRunner inline_runner_;
  core::Runner* runner_;  // never null; defaults to &inline_runner_

  ConsensusId last_decided_{0};
  SimTime last_timestamp_ = 0;

  std::list<ClientRequest> pending_;
  std::unordered_map<std::uint64_t, std::map<std::uint64_t,
      std::list<ClientRequest>::iterator>> pending_index_;
  std::unordered_map<std::uint64_t, std::set<std::uint64_t>> executed_;

  /// Cached reply payloads for retransmitting clients. Part of the state
  /// snapshot: a replica brought up to date by state transfer must be able
  /// to answer retransmissions of requests it never executed itself.
  struct CachedReply {
    ConsensusId cid;
    Bytes payload;
  };
  std::map<std::uint64_t, std::map<std::uint64_t, CachedReply>>
      reply_cache_;  // client -> seq -> reply

  /// Small-gap stall detection: evidence that peers decided ahead of us.
  /// One timer at a time; stall_target_ tracks the highest evidence cid so
  /// evidence arriving while armed still gets checked (the callback re-arms).
  bool stall_check_armed_ = false;
  std::uint64_t stall_target_ = 0;

  std::map<PendingKey, net::Timer> suspect_timers_;

  // state transfer
  bool transferring_ = false;
  std::map<std::uint64_t, std::vector<StateReply>> state_replies_;
  /// Peers confirming we are already up to date (ends a moot transfer).
  std::set<std::uint32_t> state_current_votes_;

  std::optional<crypto::Digest> checkpoint_digest_;
  ConsensusId checkpoint_cid_{0};
  storage::ReplicaStorage* storage_ = nullptr;  // optional, not owned
  /// True while recover_from_storage() replays the WAL: replayed decisions
  /// must mutate local state only, never re-emit network messages.
  bool replaying_ = false;
  DecisionObserver decision_observer_;
  std::uint64_t next_push_seq_ = 1;  // anti-replay seq for ServerPush
  bool crashed_ = false;
  ByzantineMode byzantine_ = ByzantineMode::kNone;
  Rng byz_rng_{0xBAD};

  // gray-failure injection state
  SimTime processing_delay_ = 0;
  double timer_skew_ = 1.0;
  /// Applies the injected clock skew to a local timer delay.
  SimTime skewed(SimTime delay) const;

  /// State-transfer re-request timing: exponential backoff so a replica that
  /// cannot reach a serving quorum (partition, flooded peers) stops
  /// re-broadcasting full-snapshot requests every 500 ms; level resets when
  /// a transfer round concludes.
  net::AdaptiveTimeout state_rto_;
  std::uint32_t state_retry_level_ = 0;

  // key epochs (proactive recovery)
  std::uint32_t key_epoch_ = 0;
  /// Per-peer epoch tracking: the newest epoch seen from the peer, and how
  /// long the immediately previous one is still honoured.
  struct PeerEpoch {
    std::uint32_t current = 0;
    SimTime prev_expiry = 0;
  };
  std::map<std::string, PeerEpoch> peer_epochs_;
  /// Set when recover()/reboot() starts rejoining; cleared (and the
  /// duration recorded) when state transfer completes.
  std::optional<SimTime> rejoin_started_;

  ReplicaStats stats_;

  /// The agreement protocol (created last: its constructor may read host
  /// accessors). Owns all protocol state — view, open instances, view-change
  /// evidence — behind the AgreementEngine interface.
  std::unique_ptr<AgreementEngine> engine_;
};

/// The pre-seam name; every existing call site keeps compiling.
using Replica = ReplicaCore;

}  // namespace ss::bft
