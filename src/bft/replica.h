// BFT SMR replica (mini BFT-SMaRt).
//
// One Replica pairs with one application (in SMaRt-SCADA: the Adapter
// wrapping a deterministic SCADA Master). Normal case is a sequential,
// leader-driven 3-phase agreement per batch:
//
//   leader:    PROPOSE(cid, batch)  ->  all
//   everyone:  WRITE(cid, digest)   ->  all   (on valid proposal)
//   everyone:  ACCEPT(cid, digest)  ->  all   (on WRITE quorum)
//   decide when ACCEPT quorum; execute batch in cid order.
//
// Quorums are ceil((n+f+1)/2). Leader change follows Mod-SMaRt's
// STOP / STOP_DATA / SYNC synchronization phase; lagging replicas catch up
// with snapshot-based state transfer. Deterministic time: the leader stamps
// each batch, followers validate monotonicity, and the stamp is the only
// clock the application ever sees.
#pragma once

#include <deque>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "bft/executable.h"
#include "bft/messages.h"
#include "common/config.h"
#include "common/rng.h"
#include "core/runner.h"
#include "crypto/keychain.h"
#include "net/lanes.h"
#include "net/transport.h"

namespace ss::storage {
class ReplicaStorage;
}  // namespace ss::storage

namespace ss::bft {

/// Fault behaviours a test/bench can switch a replica into. A Byzantine
/// replica in these modes exercises the failure paths the protocol must
/// mask (f of n replicas may behave this way).
enum class ByzantineMode {
  kNone,
  kSilent,          ///< sends nothing at all (crash-like, but still receives)
  kCorruptReplies,  ///< flips bytes in client replies and pushes
  kCorruptVotes,    ///< votes WRITE/ACCEPT for a wrong digest
  kEquivocate,      ///< as leader, proposes different batches to different peers
};

struct ReplicaOptions {
  SimTime request_timeout = millis(400);  ///< leader-suspect timer
  /// Before suspecting the leader, a non-leader forwards the pending
  /// request to it at request_timeout/2 — the leader may simply never have
  /// received it (PBFT/BFT-SMaRt request forwarding).
  bool forward_to_leader = true;
  /// Flood protection: pending requests per client beyond this are dropped.
  std::size_t max_pending_per_client = 1024;
  std::uint32_t max_batch = 64;
  std::uint64_t checkpoint_interval = 128;
  std::uint64_t state_gap_threshold = 64;  ///< behind by this much => transfer
  /// Virtual CPU cost charged per received protocol message (MAC check etc.)
  SimTime per_message_cost = 0;
  /// Virtual CPU cost charged per decided batch (bookkeeping).
  SimTime per_decision_cost = 0;
  std::uint32_t lanes = 1;
  /// After a peer presents a fresh key epoch, messages MAC'd under its
  /// immediately previous epoch are still accepted this long (in-flight
  /// traffic from before the reincarnation) and rejected afterwards — the
  /// bound on how long session keys stolen before a reboot stay useful.
  SimTime epoch_handover_window = seconds(2);
  /// Crypto/codec runner (core/runner.h): HMAC verify of inbound messages,
  /// HMAC sign + encode of outbound ones, and message decode run as runner
  /// tasks; the state machine stays on the driver thread. Null selects the
  /// replica's own InlineRunner (fully synchronous — the simulated backend
  /// stays byte-identical). Not owned; must outlive the replica unless
  /// swapped out via set_runner() first.
  core::Runner* runner = nullptr;
};

struct ReplicaStats {
  std::uint64_t proposals_sent = 0;
  std::uint64_t batches_decided = 0;
  std::uint64_t requests_executed = 0;
  std::uint64_t requests_deduped = 0;
  std::uint64_t unordered_executed = 0;
  std::uint64_t mac_failures = 0;
  std::uint64_t decode_failures = 0;
  std::uint64_t auth_failures = 0;
  std::uint64_t view_changes = 0;
  std::uint64_t state_transfers = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t pushes_sent = 0;
  std::uint64_t requests_forwarded = 0;
  std::uint64_t requests_flood_dropped = 0;
  /// Replica-to-replica messages dropped by the key-epoch recency policy
  /// (valid MAC for the claimed epoch, but the epoch is stale).
  std::uint64_t epoch_rejections = 0;
};

class Replica {
 public:
  Replica(net::Transport& net, GroupConfig group, ReplicaId id,
          const crypto::Keychain& keys, Executable& app, Recoverable& state,
          ReplicaOptions options = {});
  ~Replica();

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  ReplicaId id() const { return id_; }
  const std::string& endpoint() const { return endpoint_; }
  const ReplicaStats& stats() const { return stats_; }
  std::uint64_t regency() const { return regency_; }
  ConsensusId last_decided() const { return last_decided_; }
  SimTime last_timestamp() const { return last_timestamp_; }
  bool is_leader() const { return group_.leader_for(regency_) == id_; }

  /// Pushes an asynchronous message to a client (see PushSink). Called by
  /// the application during execute_ordered.
  void push_to_client(ClientId client, Bytes payload);

  /// Charges extra virtual CPU time to this replica's service lanes — the
  /// deterministic SCADA Master shares the replica's (single) thread in
  /// SMaRt-SCADA, so its processing time serializes with the protocol's.
  void charge(SimTime cost) {
    if (cost > 0) lanes_.submit(cost, [] {});
  }

  /// Digest of the latest checkpointed application state, for divergence
  /// checks in tests.
  const std::optional<crypto::Digest>& last_checkpoint_digest() const {
    return checkpoint_digest_;
  }
  /// Consensus id the latest checkpoint covers (meaningful only when
  /// last_checkpoint_digest() is set). Checkpoints taken at the same cid
  /// must carry the same digest on every correct replica.
  ConsensusId last_checkpoint_cid() const { return checkpoint_cid_; }

  /// Observation point for cross-replica invariant checking: fires after
  /// every locally executed decision with the batch digest and the batch's
  /// deterministic timestamp. Decisions skipped over by state transfer are
  /// not reported (the replica never executed them itself).
  using DecisionObserver = std::function<void(
      ConsensusId cid, const crypto::Digest& batch_digest, SimTime timestamp)>;
  void set_decision_observer(DecisionObserver observer) {
    decision_observer_ = std::move(observer);
  }

  /// Detaches from the network (crash). A crashed replica stays silent until
  /// recover() is called.
  void crash();

  /// Re-attaches and initiates state transfer from the peers.
  void recover();
  bool crashed() const { return crashed_; }

  // --- durability (optional; replicas run fine without it) -----------------

  /// Attaches a durable store. From now on every decided batch is logged
  /// (fsync'd) before it executes, and checkpoints are written to disk.
  /// The storage must outlive the replica.
  void set_storage(storage::ReplicaStorage* storage) { storage_ = storage; }

  /// Restores state from the attached storage: loads the newest checkpoint,
  /// then replays the WAL suffix through the normal execute path (with all
  /// network sends suppressed — the outside world already saw them). Call
  /// once at process start, before serving traffic.
  void recover_from_storage();

  /// Emulates a full process restart in place (for the deterministic
  /// simulation, where destroying the Replica mid-run is not an option):
  /// wipes all volatile state back to constructed defaults, restores the
  /// given genesis image, recovers from storage, re-attaches to the network
  /// and asks peers for whatever was decided while "down".
  void reboot(ByteView genesis_full_snapshot);

  /// Forces a checkpoint of the current frontier (and, with storage
  /// attached, persists it). Used on graceful shutdown and by tests that
  /// compare checkpoint digests at a known cid.
  void checkpoint_now();

  /// Asks peers for any decisions made while this replica was down. Safe to
  /// call at any time; a transfer already in flight makes it a no-op.
  void request_state_transfer() { request_state_now(); }

  /// The full recovery image (app snapshot + dedup table + reply cache) —
  /// what state transfer ships and checkpoints persist.
  Bytes full_snapshot() const { return encode_full_snapshot(); }

  void set_byzantine(ByzantineMode mode) { byzantine_ = mode; }
  ByzantineMode byzantine() const { return byzantine_; }

  /// Session-key epoch this replica signs outbound messages under. 0 until
  /// the first reincarnation; reboot() bumps it (durably, when storage is
  /// attached).
  std::uint32_t key_epoch() const { return key_epoch_; }
  /// Adopts an outbound key epoch explicitly — a freshly exec'd replica
  /// process installs the epoch its supervisor bumped at spawn. Driver
  /// thread only.
  void set_key_epoch(std::uint32_t epoch) { key_epoch_ = epoch; }

  /// Swaps the crypto/codec runner (null restores the internal
  /// InlineRunner). Drain the old runner before swapping: in-flight tasks
  /// capture `this` and deliver through whichever runner ran them.
  void set_runner(core::Runner* runner) {
    runner_ = runner != nullptr ? runner : &inline_runner_;
  }
  core::Runner& runner() { return *runner_; }

 private:
  /// Worker-side pre-validation results: pure functions of the wire payload
  /// and the replica's immutable identity (keys, group, id). Computed by
  /// Runner tasks on worker threads, consumed by the driver-side handlers,
  /// which fall back to computing inline when a field is absent (sync-path
  /// proposals, the leader's own proposal).
  struct PrevalidatedBatch {
    bool decoded = false;
    bool auth_ok = false;  ///< every request authenticator verified
    Batch batch;
  };
  struct PrevalidatedPropose {
    crypto::Digest digest{};  ///< Sha256 of the proposal's batch bytes
    PrevalidatedBatch batch;
  };
  struct Prevalidated {
    std::optional<ClientRequest> request;  ///< decoded kClientRequest body
    bool request_auth_ok = false;
    std::optional<Propose> propose;  ///< decoded kPropose body
    std::optional<PrevalidatedPropose> propose_pre;
  };
  /// One inbound message after the worker-side prologue (decode + MAC
  /// verify + pre-validation), delivered to the driver in receive order.
  struct Inbound {
    bool decode_failed = false;
    bool mac_failed = false;
    Envelope env;
    Prevalidated pre;
  };

  struct Instance {
    std::optional<Propose> proposal;
    crypto::Digest digest{};
    bool write_sent = false;
    bool accept_sent = false;
    std::map<ReplicaId, crypto::Digest> writes;
    std::map<ReplicaId, crypto::Digest> accepts;
    /// Worker-verified batch for this proposal, consumed by
    /// validate_proposal (absent on the inline fallback paths).
    std::optional<PrevalidatedBatch> prevalidated;
  };

  using PendingKey = std::pair<std::uint64_t, std::uint64_t>;  // client, seq

  // --- networking ---------------------------------------------------------
  void on_message(net::Message msg);
  /// Worker-thread prologue: decode + MAC verify + per-type pre-validation.
  /// Must only touch immutable state (it runs concurrently with the driver).
  Inbound prevalidate(const Bytes& payload) const;
  /// Driver-thread epilogue: stats for failed prologues, then dispatch.
  void deliver(Inbound in);
  void dispatch(Envelope env, Prevalidated pre);
  void send_envelope(const std::string& to, MsgType type, Bytes body);
  void broadcast(MsgType type, const Bytes& body);
  /// Key-epoch recency policy for replica-to-replica traffic (driver
  /// thread; mutates peer_epochs_). The MAC already verified under the
  /// claimed epoch — this decides whether that epoch is still current.
  bool accept_sender_epoch(const std::string& sender, std::uint32_t epoch);
  void note_rejoin_complete();

  // --- client requests ----------------------------------------------------
  void handle_client_request(const Envelope& env, Prevalidated& pre);
  bool already_executed(ClientId client, RequestId seq) const;
  void remember_executed(ClientId client, RequestId seq);
  void enqueue_pending(ClientRequest req);
  void erase_pending(ClientId client, RequestId seq);
  void arm_suspect_timer(ClientId client, RequestId seq);

  // --- consensus ----------------------------------------------------------
  void maybe_propose();
  void handle_propose(Propose p, bool from_sync,
                      std::optional<PrevalidatedPropose> pre = std::nullopt);
  void handle_write(const PhaseVote& v);
  void handle_accept(const PhaseVote& v);
  std::uint32_t matching_votes(const std::map<ReplicaId, crypto::Digest>& votes,
                               const crypto::Digest& value) const;
  void try_decide();
  void execute_batch(ConsensusId cid, const Batch& batch);
  bool validate_proposal(Instance& inst, Batch& out_batch);
  Batch make_batch();

  // --- view change --------------------------------------------------------
  void suspect_leader();
  void note_regency_evidence(ReplicaId sender, std::uint64_t regency);
  void send_stop(std::uint64_t regency);
  void handle_stop(const Stop& s);
  void install_regency(std::uint64_t regency);
  void handle_stop_data(const StopData& sd);
  void run_sync_decision(std::uint64_t regency);
  void handle_sync(const Sync& s);

  // --- state transfer & checkpoints ----------------------------------------
  void maybe_checkpoint();
  void write_storage_checkpoint();
  void maybe_request_state(ConsensusId evidence_cid);
  void note_progress_evidence(ConsensusId cid);
  void arm_stall_check(std::uint64_t target);
  void request_state_now();
  void resend_cached_reply(ClientId client, RequestId seq);
  Bytes encode_full_snapshot() const;
  void apply_full_snapshot(ByteView data);
  void refresh_retained_writeset();
  void handle_state_request(const StateRequest& req);
  void handle_state_reply(const StateReply& rep);

  net::Transport& net_;
  GroupConfig group_;
  ReplicaId id_;
  std::string endpoint_;
  const crypto::Keychain& keys_;
  Executable& app_;
  Recoverable& recoverable_;
  ReplicaOptions opt_;
  net::Lanes lanes_;
  core::InlineRunner inline_runner_;
  core::Runner* runner_;  // never null; defaults to &inline_runner_

  std::uint64_t regency_ = 0;
  ConsensusId last_decided_{0};
  SimTime last_timestamp_ = 0;
  std::map<std::uint64_t, Instance> instances_;  // keyed by cid value

  std::list<ClientRequest> pending_;
  std::unordered_map<std::uint64_t, std::map<std::uint64_t,
      std::list<ClientRequest>::iterator>> pending_index_;
  std::unordered_map<std::uint64_t, std::set<std::uint64_t>> executed_;

  /// Cached reply payloads for retransmitting clients. Part of the state
  /// snapshot: a replica brought up to date by state transfer must be able
  /// to answer retransmissions of requests it never executed itself.
  struct CachedReply {
    ConsensusId cid;
    Bytes payload;
  };
  std::map<std::uint64_t, std::map<std::uint64_t, CachedReply>>
      reply_cache_;  // client -> seq -> reply

  /// Write-quorum evidence for the open instance, retained across view
  /// changes until the instance decides (a possibly-decided value must be
  /// re-reported in every STOP_DATA, not just the first one).
  struct RetainedWriteset {
    ConsensusId cid;
    std::uint64_t regency = 0;
    crypto::Digest digest{};
    Bytes proposal;
  };
  std::optional<RetainedWriteset> retained_writeset_;

  /// Small-gap stall detection: evidence that peers decided ahead of us.
  /// One timer at a time; stall_target_ tracks the highest evidence cid so
  /// evidence arriving while armed still gets checked (the callback re-arms).
  bool stall_check_armed_ = false;
  std::uint64_t stall_target_ = 0;

  /// Highest regency each peer has been observed *operating* in (consensus
  /// messages, not STOPs). A replica that slept through a view change —
  /// e.g. crashed and recovered — adopts a regency once f+1 distinct peers
  /// demonstrably run it; otherwise it stays deaf forever.
  std::map<std::uint32_t, std::uint64_t> regency_evidence_;

  std::map<PendingKey, net::Timer> suspect_timers_;
  std::uint64_t highest_stop_sent_ = 0;
  /// Highest regency each peer has STOPped for. A STOP for regency r also
  /// supports every regency below r (PBFT-style aggregation), otherwise
  /// lossy links can scatter votes across regencies and deadlock the view
  /// change.
  std::map<std::uint32_t, std::uint64_t> stop_regency_from_;
  std::map<std::uint64_t, std::map<std::uint32_t, StopData>> stop_data_;
  bool sync_done_for_regency_ = true;

  // state transfer
  bool transferring_ = false;
  std::map<std::uint64_t, std::vector<StateReply>> state_replies_;
  /// Peers confirming we are already up to date (ends a moot transfer).
  std::set<std::uint32_t> state_current_votes_;

  std::optional<crypto::Digest> checkpoint_digest_;
  ConsensusId checkpoint_cid_{0};
  storage::ReplicaStorage* storage_ = nullptr;  // optional, not owned
  /// True while recover_from_storage() replays the WAL: replayed decisions
  /// must mutate local state only, never re-emit network messages.
  bool replaying_ = false;
  DecisionObserver decision_observer_;
  std::uint64_t next_push_seq_ = 1;  // anti-replay seq for ServerPush
  bool crashed_ = false;
  ByzantineMode byzantine_ = ByzantineMode::kNone;
  Rng byz_rng_{0xBAD};

  // key epochs (proactive recovery)
  std::uint32_t key_epoch_ = 0;
  /// Per-peer epoch tracking: the newest epoch seen from the peer, and how
  /// long the immediately previous one is still honoured.
  struct PeerEpoch {
    std::uint32_t current = 0;
    SimTime prev_expiry = 0;
  };
  std::map<std::string, PeerEpoch> peer_epochs_;
  /// Set when recover()/reboot() starts rejoining; cleared (and the
  /// duration recorded) when state transfer completes.
  std::optional<SimTime> rejoin_started_;

  ReplicaStats stats_;
};

}  // namespace ss::bft
