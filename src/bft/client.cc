#include "bft/client.h"

#include "common/logging.h"
#include "common/rng.h"

namespace ss::bft {

namespace {

net::BackoffOptions backoff_options(const ClientOptions& opt, ClientId id) {
  net::BackoffOptions b;
  b.initial = opt.reply_timeout;
  b.cap = opt.max_rto;
  b.jitter = opt.adaptive ? opt.jitter : 0.0;
  std::uint64_t sm = 0xC11E47ULL ^ id.value;
  b.seed = opt.backoff_seed != 0 ? opt.backoff_seed : splitmix64(sm);
  return b;
}

}  // namespace

ClientProxy::ClientProxy(net::Transport& net, GroupConfig group, ClientId id,
                         const crypto::Keychain& keys, ClientOptions options)
    : net_(net),
      group_(group),
      id_(id),
      endpoint_(crypto::client_principal(id)),
      keys_(keys),
      opt_(options),
      rto_(backoff_options(options, id)) {
  net_.attach(endpoint_, [this](net::Message m) { on_message(std::move(m)); });
}

ClientProxy::~ClientProxy() { net_.detach(endpoint_); }

RequestId ClientProxy::invoke_ordered(Bytes payload, ReplyCallback on_reply) {
  return invoke(RequestMode::kOrdered, std::move(payload),
                std::move(on_reply));
}

RequestId ClientProxy::invoke_unordered(Bytes payload,
                                        ReplyCallback on_reply) {
  return invoke(RequestMode::kUnordered, std::move(payload),
                std::move(on_reply));
}

RequestId ClientProxy::invoke(RequestMode mode, Bytes payload,
                              ReplyCallback on_reply) {
  if (opt_.max_inflight != 0 && inflight_.size() >= opt_.max_inflight) {
    ++stats_.shed;
    return RequestId{0};
  }
  RequestId seq = next_seq_;
  next_seq_ = next_seq_.next();
  ++stats_.invoked;

  ClientRequest req;
  req.client = id_;
  req.sequence = seq;
  req.mode = mode;
  req.payload = std::move(payload);
  Bytes core = req.encode_core();
  req.auth.reserve(group_.n);
  for (ReplicaId replica : group_.replica_ids()) {
    req.auth.push_back(
        keys_.mac(endpoint_, crypto::replica_principal(replica), core));
  }

  InFlight flight;
  flight.wire = req.encode();
  flight.callback = std::move(on_reply);
  flight.sent_at = net_.now();
  inflight_.emplace(seq.value, std::move(flight));

  send_to_all(inflight_.at(seq.value).wire);
  arm_retransmit(seq);
  return seq;
}

void ClientProxy::send_to_all(const Bytes& body) {
  for (ReplicaId replica : group_.replica_ids()) {
    std::string to = crypto::replica_principal(replica);
    Envelope env;
    env.type = MsgType::kClientRequest;
    env.sender = endpoint_;
    env.body = body;
    env.mac = keys_.mac(
        endpoint_, to,
        envelope_mac_material(env.type, endpoint_, to, env.epoch, env.body));
    net_.send(endpoint_, to, env.encode());
  }
}

SimTime ClientProxy::retransmit_delay(const InFlight& flight) {
  if (!opt_.adaptive) return opt_.reply_timeout;
  return rto_.delay(flight.backoff_level);
}

void ClientProxy::arm_retransmit(RequestId seq) {
  auto it = inflight_.find(seq.value);
  if (it == inflight_.end()) return;
  it->second.timer =
      net_.schedule(retransmit_delay(it->second), [this, seq] {
        auto fit = inflight_.find(seq.value);
        if (fit == inflight_.end()) return;
        InFlight& flight = fit->second;
        if (flight.retries >= opt_.max_retries) {
          ++stats_.failed;
          SS_LOG(LogLevel::kWarn, net_.now(), endpoint_.c_str(),
                 "request %lu failed after %u retries",
                 static_cast<unsigned long>(seq.value), flight.retries);
          FailureCallback handler = failure_handler_;
          inflight_.erase(fit);
          if (handler) handler(seq);
          return;
        }
        ++flight.retries;
        if (opt_.adaptive) ++flight.backoff_level;
        ++stats_.retransmissions;
        send_to_all(flight.wire);
        arm_retransmit(seq);
      });
}

void ClientProxy::fast_reset() {
  if (!opt_.adaptive) return;
  for (auto& [seq, flight] : inflight_) {
    if (flight.backoff_level == 0) continue;
    // Evidence the network works again: retransmit every backed-off flight
    // immediately instead of waiting out its (possibly capped) delay, then
    // fall back to the base cadence. No retry charge — these flights
    // already paid for the sends that backed them off, and the resend here
    // replaces one the timer owed them anyway.
    flight.backoff_level = 0;
    ++stats_.retransmissions;
    flight.timer.cancel();
    send_to_all(flight.wire);
    arm_retransmit(RequestId{seq});
  }
}

void ClientProxy::on_message(net::Message msg) {
  Envelope env;
  try {
    env = Envelope::decode(msg.payload);
  } catch (const DecodeError&) {
    ++stats_.mac_failures;
    return;
  }
  // Verify under the claimed epoch; clients apply no recency policy — a
  // reply forged under a stale epoch is masked by f+1 reply voting anyway.
  if (!keys_.verify(env.sender, endpoint_, env.epoch,
                    envelope_mac_material(env.type, env.sender, endpoint_,
                                          env.epoch, env.body),
                    env.mac)) {
    ++stats_.mac_failures;
    return;
  }
  try {
    switch (env.type) {
      case MsgType::kClientReply: {
        ClientReply reply = ClientReply::decode(env.body);
        if (env.sender != crypto::replica_principal(reply.replica)) return;
        if (reply.client != id_) return;
        handle_reply(std::move(reply));
        break;
      }
      case MsgType::kServerPush: {
        ServerPush push = ServerPush::decode(env.body);
        if (env.sender != crypto::replica_principal(push.replica)) return;
        if (push.client != id_) return;
        ++stats_.pushes_received;
        if (push_handler_) {
          push_handler_(push.replica, push.seq, std::move(push.payload));
        }
        break;
      }
      default:
        break;
    }
  } catch (const DecodeError&) {
    ++stats_.mac_failures;
  }
}

void ClientProxy::handle_reply(ClientReply reply) {
  ++stats_.replies_received;
  // A reply after at least one base-RTO of silence is evidence the path to
  // the group works *again* (partition healed, group recovered) — that is
  // when backed-off flights should stop waiting out their capped delays.
  // Replies arriving back-to-back mean the path was never dead, and the
  // backed-off flights are slow for system reasons backoff exists to absorb.
  const SimTime now = net_.now();
  if (last_reply_at_ != 0 && now - last_reply_at_ >= opt_.reply_timeout) {
    fast_reset();
  }
  last_reply_at_ = now;
  auto it = inflight_.find(reply.sequence.value);
  if (it == inflight_.end()) return;  // straggler for a completed request
  InFlight& flight = it->second;
  if (reply.replica.value >= group_.n) return;
  // Karn's rule: only replies to never-retransmitted requests give an
  // unambiguous RTT sample.
  if (opt_.adaptive && flight.retries == 0 && !flight.rtt_sampled) {
    flight.rtt_sampled = true;
    rto_.on_sample(net_.now() - flight.sent_at);
  }

  crypto::Digest digest = crypto::Sha256::hash(reply.payload);
  flight.votes[reply.replica] = digest;
  flight.payloads[reply.replica] = std::move(reply.payload);

  std::uint32_t matching = 0;
  for (const auto& [replica, d] : flight.votes) {
    if (d == digest) ++matching;
  }
  if (matching < group_.reply_quorum()) return;

  // Voted: at least one correct replica produced this payload.
  Bytes payload;
  for (const auto& [replica, d] : flight.votes) {
    if (d == digest) {
      payload = flight.payloads[replica];
      break;
    }
  }
  ReplyCallback callback = std::move(flight.callback);
  flight.timer.cancel();
  inflight_.erase(it);
  ++stats_.completed;
  if (callback) callback(std::move(payload));
}

}  // namespace ss::bft
