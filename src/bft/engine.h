// The agreement-engine seam.
//
// bft::ReplicaCore (replica.h) is a protocol-agnostic shell: transport
// wiring, the runner-based crypto/codec offload, client-request queueing,
// execution + reply caching, checkpoints, storage/recovery, key epochs, and
// state transfer. Everything that is *agreement* — proposing, vote
// collection, deciding, and the view change — lives behind the
// AgreementEngine interface below, so protocols with different quorum
// structures (PBFT-style 3f+1, MinBFT-style 2f+1) plug in without the
// SCADA layers ever seeing protocol internals.
//
// Engine implementations (engine_pbft.h, engine_minbft.h) are internal to
// src/bft: nothing outside this directory may include them
// (tools/check_engine_headers.sh enforces this). Select a protocol through
// GroupConfig::protocol and the make_engine() factory instead.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "bft/messages.h"
#include "common/config.h"
#include "common/types.h"
#include "crypto/keychain.h"

namespace ss::bft {

/// Fault behaviours a test/bench can switch a replica into. A Byzantine
/// replica in these modes exercises the failure paths the protocol must
/// mask (f of n replicas may behave this way).
enum class ByzantineMode {
  kNone,
  kSilent,          ///< sends nothing at all (crash-like, but still receives)
  kCorruptReplies,  ///< flips bytes in client replies and pushes
  kCorruptVotes,    ///< votes for a wrong digest / corrupts vote certificates
  kEquivocate,      ///< as leader, proposes different batches to different peers
};

struct ReplicaStats {
  std::uint64_t proposals_sent = 0;
  std::uint64_t batches_decided = 0;
  std::uint64_t requests_executed = 0;
  std::uint64_t requests_deduped = 0;
  std::uint64_t unordered_executed = 0;
  std::uint64_t mac_failures = 0;
  std::uint64_t decode_failures = 0;
  std::uint64_t auth_failures = 0;
  std::uint64_t view_changes = 0;
  std::uint64_t state_transfers = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t pushes_sent = 0;
  std::uint64_t requests_forwarded = 0;
  std::uint64_t requests_flood_dropped = 0;
  /// Replica-to-replica messages dropped by the key-epoch recency policy
  /// (valid MAC for the claimed epoch, but the epoch is stale).
  std::uint64_t epoch_rejections = 0;
  /// MinBFT only: protocol messages dropped because the sender's USIG
  /// counter did not advance (replay / stale), and leader equivocations
  /// proven by conflicting counter certificates for one instance.
  std::uint64_t usig_rejections = 0;
  std::uint64_t equivocations_detected = 0;
};

/// The quorum structure an engine operates under, for callers that size
/// groups or reason about fault budgets without protocol knowledge
/// (RecoveryScheduler, deploy --supervise, tests).
struct QuorumConfig {
  std::uint32_t n = 0;
  std::uint32_t f = 0;
  std::uint32_t commit = 0;        ///< matching votes that decide an instance
  std::uint32_t view_install = 0;  ///< votes that install a view change
};

/// Worker-side pre-validation results: pure functions of the wire payload
/// and the replica's immutable identity (keys, group, id). Computed by
/// Runner tasks on worker threads, consumed by the driver-side handlers,
/// which fall back to computing inline when a field is absent (sync-path
/// proposals, the leader's own proposal).
struct PrevalidatedBatch {
  bool decoded = false;
  bool auth_ok = false;  ///< every request authenticator verified
  Batch batch;
};
struct PrevalidatedPropose {
  crypto::Digest digest{};  ///< Sha256 of the proposal's batch bytes
  PrevalidatedBatch batch;
};

/// Engine-specific slice of the worker-side prologue. One struct shared by
/// all engines keeps the Inbound plumbing protocol-agnostic; each engine
/// fills (and later consumes) only its own fields.
struct EnginePrevalidated {
  // PBFT: decoded kPropose body + its batch pre-validation.
  std::optional<Propose> propose;
  std::optional<PrevalidatedPropose> propose_pre;
  // MinBFT: decoded kMbPrepare body + its batch pre-validation + the
  // worker-verified USIG certificate (pure HMAC; the driver still checks
  // counter monotonicity, which is mutable state).
  std::optional<MbPrepare> prepare;
  std::optional<PrevalidatedPropose> prepare_pre;
  bool prepare_cert_ok = false;
};

/// Driver-side services the shell provides to an engine. All methods are
/// driver-thread only unless noted. Implemented privately by ReplicaCore.
class EngineHost {
 public:
  virtual ~EngineHost() = default;

  virtual SimTime now() const = 0;
  /// Fire-and-forget timer (engine timers are never cancelled; callbacks
  /// must re-check state, as the pre-seam code did).
  virtual void schedule(SimTime delay, std::function<void()> fn) = 0;
  virtual void send_to_replica(ReplicaId to, MsgType type, Bytes body) = 0;
  virtual void broadcast_replicas(MsgType type, const Bytes& body) = 0;

  virtual ConsensusId last_decided() const = 0;
  virtual SimTime last_timestamp() const = 0;
  virtual bool pending_empty() const = 0;
  /// Builds the next proposal batch from the pending queue (leader only).
  virtual Batch make_batch() = 0;

  /// Write-ahead log of a decided proposal; must be called before commit()
  /// so the decision is durable before any of its effects are visible.
  virtual void append_decision(ConsensusId cid, const Bytes& proposal) = 0;
  /// Applies a decision: advances the frontier, executes the batch, sends
  /// replies, fires the decision observer, and takes a checkpoint when the
  /// interval says so. The engine advances its own protocol state first.
  virtual void commit(ConsensusId cid, const Batch& batch,
                      const crypto::Digest& digest) = 0;

  /// Evidence that peers progressed to `cid` (drives the shell's
  /// stall-detection and state-transfer machinery).
  virtual void note_progress_evidence(ConsensusId cid) = 0;
  virtual void request_state_transfer() = 0;
  /// Re-arms the leader-suspect timers over every pending request (a fresh
  /// leader deserves a fresh chance after a view change).
  virtual void rearm_suspect_timers() = 0;

  virtual SimTime request_timeout() const = 0;
  /// Instances this far past last_decided() are reachable only through
  /// state transfer; engines must not buffer messages beyond the gap (it
  /// bounds their open-instance tables against far-future floods).
  virtual std::uint64_t state_gap_threshold() const = 0;
  virtual ReplicaStats& mutable_stats() = 0;
  virtual bool crashed() const = 0;
  virtual ByzantineMode byzantine() const = 0;

  /// MinBFT: durable USIG counter lease (storage-backed when available).
  virtual std::uint64_t usig_stored_lease() const = 0;
  virtual void usig_persist_lease(std::uint64_t lease) = 0;
};

/// One agreement protocol instance, owned by a ReplicaCore. The engine owns
/// all protocol state (view/regency, open instances, view-change evidence)
/// and drives the shell through EngineHost.
class AgreementEngine {
 public:
  virtual ~AgreementEngine() = default;

  virtual Protocol protocol() const = 0;
  virtual QuorumConfig quorums() const = 0;

  /// Worker-thread prologue for engine message types: decode + expensive
  /// pure checks (digests, request authenticators, USIG cert HMACs). Must
  /// only touch immutable state — it runs concurrently with the driver.
  virtual void prevalidate(const Envelope& env,
                           EnginePrevalidated& pre) const = 0;

  /// Driver-thread handler for every envelope type the shell does not own.
  /// Decodes env.body itself (DecodeError propagates to the shell's
  /// dispatch guard) and performs its own sender-principal checks.
  virtual void on_message(const Envelope& env, EnginePrevalidated& pre) = 0;

  /// The pending-request queue may have work (request arrival, decision,
  /// state-transfer completion): propose if this replica leads.
  virtual void on_request_ready() = 0;

  /// The shell's request timers gave up on the current leader.
  virtual void suspect_leader() = 0;

  /// Whether the shell should arm request suspect timers on the leader too,
  /// so a leader that cannot get its own proposals decided suspects itself.
  /// PBFT leaves this off: a deposed leader rejoins through the 2f+1 group's
  /// f+1 STOP-join rule, which needs no timeout evidence of its own. With
  /// n = 2f+1 that escape hatch does not exist — after one crash only f
  /// peers remain, so a stale self-styled leader (e.g. freshly reincarnated
  /// at view 0) can only walk forward on its own timer evidence.
  virtual bool leader_self_suspects() const { return false; }

  /// Monotone view counter (PBFT regency / MinBFT view).
  virtual std::uint64_t view() const = 0;
  virtual ReplicaId current_leader() const = 0;

  /// State transfer installed a snapshot at host.last_decided(): drop
  /// evidence the snapshot supersedes, keep buffered future instances.
  virtual void on_state_transfer_applied() = 0;
  /// Replica detached from the network (volatile-state crash).
  virtual void on_crash() = 0;
  /// Full process-restart semantics (reboot): back to constructed protocol
  /// state. Trusted-component state (USIG counter) survives by design.
  virtual void reset() = 0;

  /// ByzantineMode::kCorruptVotes hook: given an outbound engine message,
  /// corrupt it the way a vote-equivocating replica would (or leave it
  /// untouched for non-vote types).
  virtual void corrupt_vote_for_test(MsgType type, Bytes& body) const = 0;
};

/// Builds the engine selected by group.protocol. The returned engine keeps
/// references to host and keys; both must outlive it.
std::unique_ptr<AgreementEngine> make_engine(EngineHost& host,
                                             const GroupConfig& group,
                                             ReplicaId id,
                                             const crypto::Keychain& keys);

}  // namespace ss::bft
