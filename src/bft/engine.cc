#include "bft/engine.h"

#include "bft/engine_minbft.h"
#include "bft/engine_pbft.h"

namespace ss::bft {

std::unique_ptr<AgreementEngine> make_engine(EngineHost& host,
                                             const GroupConfig& group,
                                             ReplicaId id,
                                             const crypto::Keychain& keys) {
  switch (group.protocol) {
    case Protocol::kPbft:
      return std::make_unique<PbftEngine>(host, group, id, keys);
    case Protocol::kMinBft:
      return std::make_unique<MinBftEngine>(host, group, id, keys);
  }
  throw std::invalid_argument("unknown protocol in GroupConfig");
}

}  // namespace ss::bft
