#include "bft/engine_pbft.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "common/logging.h"

namespace ss::bft {

PbftEngine::PbftEngine(EngineHost& host, const GroupConfig& group,
                       ReplicaId id, const crypto::Keychain& keys)
    : host_(host),
      group_(group),
      id_(id),
      endpoint_(crypto::replica_principal(id)),
      keys_(keys) {}

// --------------------------------------------------------------------------
// worker-side prologue

void PbftEngine::prevalidate(const Envelope& env,
                             EnginePrevalidated& pre) const {
  // Runs on a runner worker thread: everything it reads (endpoint_, keys_,
  // group_, id_) is immutable for the engine's lifetime, and every
  // operation (decode, HMAC, SHA-256) is a pure function of its inputs.
  if (env.type != MsgType::kPropose) return;
  try {
    Propose p = Propose::decode(env.body);
    PrevalidatedPropose pp;
    pp.digest = crypto::Sha256::hash(p.batch);
    try {
      pp.batch.batch = Batch::decode(p.batch);
      pp.batch.decoded = true;
      pp.batch.auth_ok = true;
      for (const ClientRequest& req : pp.batch.batch.requests) {
        if (req.auth.size() != group_.n ||
            !keys_.verify(crypto::client_principal(req.client), endpoint_,
                          req.encode_core(), req.auth[id_.value])) {
          pp.batch.auth_ok = false;
          break;
        }
      }
    } catch (const DecodeError&) {
    }
    pre.propose_pre = std::move(pp);
    pre.propose = std::move(p);
  } catch (const DecodeError&) {
  }
}

// --------------------------------------------------------------------------
// driver-side dispatch

void PbftEngine::on_message(const Envelope& env, EnginePrevalidated& pre) {
  switch (env.type) {
    case MsgType::kPropose: {
      Propose p = pre.propose.has_value() ? std::move(*pre.propose)
                                          : Propose::decode(env.body);
      // The envelope sender must be the leader the message claims.
      if (env.sender != crypto::replica_principal(p.leader)) return;
      if (group_.leader_for(p.regency) != p.leader) return;
      handle_propose(std::move(p), /*from_sync=*/false,
                     std::move(pre.propose_pre));
      break;
    }
    case MsgType::kWrite: {
      PhaseVote v = PhaseVote::decode(env.body);
      if (env.sender != crypto::replica_principal(v.voter)) return;
      handle_write(v);
      break;
    }
    case MsgType::kAccept: {
      PhaseVote v = PhaseVote::decode(env.body);
      if (env.sender != crypto::replica_principal(v.voter)) return;
      handle_accept(v);
      break;
    }
    case MsgType::kStop: {
      Stop s = Stop::decode(env.body);
      if (env.sender != crypto::replica_principal(s.sender)) return;
      handle_stop(s);
      break;
    }
    case MsgType::kStopData: {
      StopData sd = StopData::decode(env.body);
      if (env.sender != crypto::replica_principal(sd.sender)) return;
      handle_stop_data(sd);
      break;
    }
    case MsgType::kSync: {
      Sync s = Sync::decode(env.body);
      if (env.sender != crypto::replica_principal(s.leader)) return;
      handle_sync(s);
      break;
    }
    default:
      break;  // not a PBFT engine message
  }
}

void PbftEngine::corrupt_vote_for_test(MsgType type, Bytes& body) const {
  if (type != MsgType::kWrite && type != MsgType::kAccept) return;
  PhaseVote v = PhaseVote::decode(body);
  v.value[0] ^= 0xff;
  body = v.encode();
}

// --------------------------------------------------------------------------
// consensus: normal case

void PbftEngine::maybe_propose() {
  if (host_.crashed() || !is_leader() || !sync_done_for_regency_) return;
  if (host_.pending_empty()) return;
  std::uint64_t next = host_.last_decided().value + 1;
  auto it = instances_.find(next);
  if (it != instances_.end() && it->second.proposal.has_value()) return;

  Batch batch = host_.make_batch();
  Propose p;
  p.cid = ConsensusId{next};
  p.regency = regency_;
  p.leader = id_;
  p.batch = batch.encode();
  ++host_.mutable_stats().proposals_sent;

  if (host_.byzantine() == ByzantineMode::kEquivocate) {
    // Send a conflicting batch (different timestamp => different digest) to
    // half of the peers. Correct replicas cannot gather a WRITE quorum on
    // either value; the suspect timers then vote the leader out.
    Batch other = batch;
    other.timestamp += 1;
    Propose p2 = p;
    p2.batch = other.encode();
    bool flip = false;
    for (ReplicaId peer : group_.replica_ids()) {
      if (peer == id_) continue;
      const Propose& chosen = flip ? p2 : p;
      host_.send_to_replica(peer, MsgType::kPropose, chosen.encode());
      flip = !flip;
    }
    // The equivocating leader does not vote itself, so neither value can
    // reach a WRITE quorum and the correct replicas vote the leader out.
    return;
  }
  host_.broadcast_replicas(MsgType::kPropose, p.encode());
  handle_propose(std::move(p), /*from_sync=*/false);
}

bool PbftEngine::validate_proposal(Instance& inst, Batch& out_batch) {
  if (inst.prevalidated.has_value()) {
    // The runner worker already decoded the batch and checked every request
    // authenticator; only the state-dependent checks remain.
    PrevalidatedBatch pre = std::move(*inst.prevalidated);
    inst.prevalidated.reset();
    if (!pre.decoded || !pre.auth_ok) return false;
    out_batch = std::move(pre.batch);
    if (out_batch.timestamp <= host_.last_timestamp()) return false;
    if (out_batch.requests.empty()) return false;
    return true;
  }
  const Propose& p = *inst.proposal;
  try {
    out_batch = Batch::decode(p.batch);
  } catch (const DecodeError&) {
    return false;
  }
  if (out_batch.timestamp <= host_.last_timestamp()) return false;
  if (out_batch.requests.empty()) return false;
  for (const ClientRequest& req : out_batch.requests) {
    if (req.auth.size() != group_.n) return false;
    if (!keys_.verify(crypto::client_principal(req.client), endpoint_,
                      req.encode_core(), req.auth[id_.value])) {
      return false;
    }
  }
  return true;
}

void PbftEngine::handle_propose(Propose p, bool from_sync,
                                std::optional<PrevalidatedPropose> pre) {
  (void)from_sync;
  if (p.regency > regency_) note_regency_evidence(p.leader, p.regency);
  // Progress evidence counts even when the regency doesn't match ours yet:
  // a replica that rejoins while a view change is in flight drops every
  // vote of the new regency until it has adopted it, and if the instance
  // those votes decide is the last one before a quiet period, nothing else
  // would ever tell the replica it fell behind.
  host_.note_progress_evidence(p.cid);
  if (p.regency != regency_) return;
  if (p.cid.value <= host_.last_decided().value) return;

  Instance& inst = instances_[p.cid.value];
  crypto::Digest digest =
      pre.has_value() ? pre->digest : crypto::Sha256::hash(p.batch);
  if (inst.proposal.has_value()) {
    if (inst.digest != digest) {
      // Equivocation: the leader sent conflicting proposals for one
      // instance. That is proof of a Byzantine leader.
      SS_LOG(LogLevel::kWarn, host_.now(), endpoint_.c_str(),
             "conflicting proposals for cid=%lu; suspecting leader",
             static_cast<unsigned long>(p.cid.value));
      suspect_leader();
    }
    return;
  }
  inst.proposal = std::move(p);
  inst.digest = digest;
  if (pre.has_value()) inst.prevalidated = std::move(pre->batch);
  try_decide();
}

std::uint32_t PbftEngine::matching_votes(
    const std::map<ReplicaId, crypto::Digest>& votes,
    const crypto::Digest& value) const {
  std::uint32_t count = 0;
  for (const auto& [voter, digest] : votes) {
    if (digest == value) ++count;
  }
  return count;
}

void PbftEngine::handle_write(const PhaseVote& v) {
  if (v.voter.value >= group_.n) return;
  if (v.regency > regency_) note_regency_evidence(v.voter, v.regency);
  host_.note_progress_evidence(v.cid);  // even under an unadopted regency
  if (v.regency != regency_ || v.cid.value <= host_.last_decided().value) {
    return;
  }
  instances_[v.cid.value].writes[v.voter] = v.value;
  try_decide();
}

void PbftEngine::handle_accept(const PhaseVote& v) {
  if (v.voter.value >= group_.n) return;
  if (v.regency > regency_) note_regency_evidence(v.voter, v.regency);
  host_.note_progress_evidence(v.cid);  // even under an unadopted regency
  if (v.regency != regency_ || v.cid.value <= host_.last_decided().value) {
    return;
  }
  instances_[v.cid.value].accepts[v.voter] = v.value;
  try_decide();
}

void PbftEngine::try_decide() {
  for (;;) {
    std::uint64_t next = host_.last_decided().value + 1;
    auto it = instances_.find(next);
    if (it == instances_.end()) return;
    Instance& inst = it->second;
    if (!inst.proposal.has_value()) return;

    if (!inst.write_sent) {
      Batch batch;
      if (!validate_proposal(inst, batch)) {
        SS_LOG(LogLevel::kWarn, host_.now(), endpoint_.c_str(),
               "invalid proposal for cid=%lu; suspecting leader",
               static_cast<unsigned long>(next));
        instances_.erase(it);
        suspect_leader();
        return;
      }
      inst.write_sent = true;
      inst.writes[id_] = inst.digest;
      PhaseVote v{ConsensusId{next}, regency_, id_, inst.digest};
      host_.broadcast_replicas(MsgType::kWrite, v.encode());
    }

    if (!inst.accept_sent &&
        matching_votes(inst.writes, inst.digest) >= group_.quorum()) {
      inst.accept_sent = true;
      inst.accepts[id_] = inst.digest;
      PhaseVote v{ConsensusId{next}, regency_, id_, inst.digest};
      host_.broadcast_replicas(MsgType::kAccept, v.encode());
    }

    if (matching_votes(inst.accepts, inst.digest) < group_.quorum()) return;

    // Decided. Keep the decided value as the retained write-set: deciding
    // consumes the instance, but if the other accept-voters go quiet before
    // anyone else decides, this replica's STOP_DATA is the only surviving
    // certificate for the value — a fresh proposal at this cid would fork
    // the history.
    Batch batch = Batch::decode(inst.proposal->batch);
    crypto::Digest decided_digest = inst.digest;
    ConsensusId cid{next};
    // Write-ahead: the decision must be durable before any of its effects
    // (execution, replies, checkpoint) become visible, or a crash here
    // would leave the replica having acted on a decision it cannot replay.
    host_.append_decision(cid, inst.proposal->batch);
    Bytes decided_proposal = std::move(inst.proposal->batch);
    instances_.erase(it);
    retained_writeset_ = RetainedWriteset{cid, regency_, decided_digest,
                                          std::move(decided_proposal)};
    host_.commit(cid, batch, decided_digest);
    maybe_propose();
  }
}

// --------------------------------------------------------------------------
// view change (Mod-SMaRt synchronization phase)

void PbftEngine::suspect_leader() { send_stop(regency_ + 1); }

void PbftEngine::note_regency_evidence(ReplicaId sender,
                                       std::uint64_t regency) {
  if (regency <= regency_ || sender.value >= group_.n) return;
  auto& recorded = regency_evidence_[sender.value];
  if (regency <= recorded) return;
  recorded = regency;

  // Adopt the largest regency that f+1 distinct peers are operating in —
  // at least one of them is correct, so that regency was really installed.
  std::vector<std::uint64_t> observed;
  observed.reserve(regency_evidence_.size());
  for (const auto& [peer, r] : regency_evidence_) observed.push_back(r);
  std::sort(observed.begin(), observed.end(), std::greater<>());
  if (observed.size() < group_.f + 1) return;
  std::uint64_t adopt = observed[group_.f];
  if (adopt <= regency_) return;

  SS_LOG(LogLevel::kInfo, host_.now(), endpoint_.c_str(),
         "adopting regency %lu from peer evidence (was %lu)",
         static_cast<unsigned long>(adopt),
         static_cast<unsigned long>(regency_));
  refresh_retained_writeset();
  regency_ = adopt;
  ++host_.mutable_stats().view_changes;
  instances_.clear();
  sync_done_for_regency_ = true;
  for (auto it = regency_evidence_.begin(); it != regency_evidence_.end();) {
    if (it->second <= adopt) {
      it = regency_evidence_.erase(it);
    } else {
      ++it;
    }
  }
  maybe_propose();
}

void PbftEngine::send_stop(std::uint64_t regency) {
  if (regency <= regency_ || highest_stop_sent_ > regency) return;
  // Re-broadcasting an already-sent STOP is deliberate: STOPs can be lost
  // on lossy links, and peers stuck below the install quorum have no other
  // way to learn of this replica's vote. The suspect timers keep firing
  // while the view change is needed, so the retransmit is periodic.
  highest_stop_sent_ = regency;
  Stop s{regency, id_};
  host_.broadcast_replicas(MsgType::kStop, s.encode());
  handle_stop(s);  // record own vote (deduplicated by sender regency)
}

void PbftEngine::handle_stop(const Stop& s) {
  if (s.regency <= regency_) return;
  if (s.sender.value >= group_.n) return;
  auto& recorded = stop_regency_from_[s.sender.value];
  if (s.regency <= recorded) return;
  recorded = s.regency;

  // A STOP for regency r supports every target <= r. The largest target
  // supported by f+1 peers is joined; by 2f+1 peers it is installed.
  std::vector<std::uint64_t> supported;
  supported.reserve(stop_regency_from_.size());
  for (const auto& [sender, regency] : stop_regency_from_) {
    supported.push_back(regency);
  }
  std::sort(supported.begin(), supported.end(), std::greater<>());

  if (supported.size() >= group_.f + 1) {
    std::uint64_t join_target = supported[group_.f];
    if (join_target > regency_) send_stop(join_target);
  }
  if (supported.size() >= group_.sync_quorum()) {
    std::uint64_t install_target = supported[group_.sync_quorum() - 1];
    if (install_target > regency_) install_regency(install_target);
  }
}

void PbftEngine::install_regency(std::uint64_t regency) {
  if (regency <= regency_) return;

  // Capture (and retain across regencies) write-set evidence for the open
  // instance before wiping it: a value that may have been decided somewhere
  // must be re-reported in every synchronization phase until it decides
  // here too — otherwise a second view change forgets it and a conflicting
  // value could be ordered for the same instance.
  refresh_retained_writeset();

  StopData sd;
  sd.regency = regency;
  sd.sender = id_;
  sd.last_decided = host_.last_decided();
  if (retained_writeset_.has_value() &&
      (retained_writeset_->cid.value == host_.last_decided().value + 1 ||
       retained_writeset_->cid.value == host_.last_decided().value)) {
    sd.has_writeset = true;
    sd.writeset_cid = retained_writeset_->cid;
    sd.writeset_regency = retained_writeset_->regency;
    sd.writeset_digest = retained_writeset_->digest;
    sd.writeset_proposal = retained_writeset_->proposal;
  }

  regency_ = regency;
  ++host_.mutable_stats().view_changes;
  instances_.clear();
  // Votes up to the installed regency are consumed; higher ones remain
  // valid support for future view changes.
  for (auto vit = stop_regency_from_.begin();
       vit != stop_regency_from_.end();) {
    if (vit->second <= regency) {
      vit = stop_regency_from_.erase(vit);
    } else {
      ++vit;
    }
  }

  ReplicaId leader = group_.leader_for(regency_);
  SS_LOG(LogLevel::kInfo, host_.now(), endpoint_.c_str(),
         "installed regency %lu (leader %u)",
         static_cast<unsigned long>(regency), leader.value);

  if (leader == id_) {
    sync_done_for_regency_ = false;
    handle_stop_data(sd);  // record own evidence
    // If the STOP_DATA quorum never arrives (lossy links), step aside
    // rather than wedging the group under a silent leader.
    host_.schedule(host_.request_timeout(), [this, regency] {
      if (host_.crashed() || regency_ != regency || sync_done_for_regency_) {
        return;
      }
      SS_LOG(LogLevel::kInfo, host_.now(), endpoint_.c_str(),
             "sync phase for regency %lu stalled; stepping aside",
             static_cast<unsigned long>(regency));
      send_stop(regency + 1);
    });
  } else {
    sync_done_for_regency_ = true;
    host_.send_to_replica(leader, MsgType::kStopData, sd.encode());
    // Give the new leader a fresh chance before suspecting it too.
    host_.rearm_suspect_timers();
  }
}

void PbftEngine::refresh_retained_writeset() {
  if (retained_writeset_.has_value() &&
      retained_writeset_->cid.value < host_.last_decided().value) {
    // Stale: a later instance decided, so a quorum advanced past this cid
    // and its value is durable elsewhere. Evidence at exactly last_decided
    // is kept — it may be the only surviving certificate (see try_decide).
    retained_writeset_.reset();
  }
  std::uint64_t open = host_.last_decided().value + 1;
  auto it = instances_.find(open);
  if (it != instances_.end() && it->second.proposal.has_value() &&
      matching_votes(it->second.writes, it->second.digest) >=
          group_.quorum()) {
    // Fresh quorum evidence under the current regency supersedes whatever
    // was retained from earlier regencies.
    retained_writeset_ =
        RetainedWriteset{ConsensusId{open}, regency_, it->second.digest,
                         it->second.proposal->batch};
  }
}

void PbftEngine::handle_stop_data(const StopData& sd) {
  if (sd.regency != regency_ || group_.leader_for(regency_) != id_) return;
  if (sync_done_for_regency_) return;
  auto& collected = stop_data_[sd.regency];
  collected[sd.sender.value] = sd;
  if (collected.size() >= group_.sync_quorum()) {
    run_sync_decision(sd.regency);
  }
}

void PbftEngine::run_sync_decision(std::uint64_t regency) {
  if (regency != regency_ || sync_done_for_regency_) return;
  sync_done_for_regency_ = true;

  const auto& collected = stop_data_[regency];

  // The synchronization target is derived from the *reported* last-decided
  // cids, not this leader's own: a leader that fell behind would otherwise
  // aim the sync below the group's frontier, discard the write-set evidence
  // reported for the real open instance, and later re-propose a fresh batch
  // at a cid some replica already decided — forking the history. The
  // (f+1)-th highest report is certified by at least one correct replica
  // and cannot be inflated by the f faulty ones.
  std::vector<std::uint64_t> reported;
  reported.reserve(collected.size());
  for (const auto& [sender, sd] : collected) {
    reported.push_back(sd.last_decided.value);
  }
  std::sort(reported.begin(), reported.end(), std::greater<>());
  std::uint64_t certified = reported[group_.f];
  std::uint64_t max_reported = reported.front();
  std::uint64_t target_cid = certified + 1;

  // Among the reported write-sets for the target instance, a value with a
  // write quorum in a *later* regency supersedes earlier ones (only one
  // value can gain a write quorum per regency, and a later quorum implies
  // knowledge of any earlier possibly-decided value).
  const Bytes* chosen = nullptr;
  std::uint64_t best_regency = 0;
  crypto::Digest best_digest{};
  for (const auto& [sender, sd] : collected) {
    if (!sd.has_writeset || sd.writeset_cid.value != target_cid) continue;
    if (crypto::Sha256::hash(sd.writeset_proposal) != sd.writeset_digest) {
      continue;  // forged evidence
    }
    bool better = chosen == nullptr ||
                  sd.writeset_regency > best_regency ||
                  (sd.writeset_regency == best_regency &&
                   sd.writeset_digest < best_digest);
    if (better) {
      chosen = &sd.writeset_proposal;
      best_regency = sd.writeset_regency;
      best_digest = sd.writeset_digest;
    }
  }
  Bytes chosen_copy;
  if (chosen != nullptr) chosen_copy = *chosen;
  stop_data_.erase(regency);
  chosen = chosen != nullptr ? &chosen_copy : nullptr;

  if (chosen != nullptr) {
    Sync sync;
    sync.regency = regency;
    sync.leader = id_;
    sync.cid = ConsensusId{target_cid};
    sync.batch = *chosen;
    host_.broadcast_replicas(MsgType::kSync, sync.encode());
    Propose p{sync.cid, regency, id_, sync.batch};
    handle_propose(std::move(p), /*from_sync=*/true);
    // A behind leader can still pin the certified value for the group; it
    // catches its own state up in parallel so it can vote and execute.
    if (host_.last_decided().value + 1 < target_cid) {
      host_.request_state_transfer();
    }
  } else if (max_reported >= target_cid ||
             host_.last_decided().value + 1 < target_cid) {
    // Either some replica claims a decision at or past the target (a value
    // exists that this leader does not know — never propose fresh over it),
    // or this leader is behind the certified frontier. Catch up first;
    // proposals resume once state transfer completes.
    host_.request_state_transfer();
  } else {
    maybe_propose();
  }
}

void PbftEngine::handle_sync(const Sync& s) {
  if (group_.leader_for(s.regency) != s.leader) return;
  if (s.regency < regency_) return;
  if (s.regency > regency_) {
    // We missed the STOP quorum; adopt the new regency via the SYNC. Same
    // obligation as install_regency: write-set evidence for the open
    // instance must survive the wipe, or a later view change could order a
    // conflicting value for an instance that already decided elsewhere.
    refresh_retained_writeset();
    regency_ = s.regency;
    ++host_.mutable_stats().view_changes;
    instances_.clear();
    sync_done_for_regency_ = true;
  }
  Propose p{s.cid, s.regency, s.leader, s.batch};
  handle_propose(std::move(p), /*from_sync=*/true);
}

// --------------------------------------------------------------------------
// shell lifecycle hooks

void PbftEngine::on_state_transfer_applied() {
  retained_writeset_.reset();  // the open instance is now in the past
  // Keep instances buffered beyond the snapshot point: their proposals
  // and votes let us participate immediately instead of falling behind
  // again while traffic continues.
  for (auto it = instances_.begin(); it != instances_.end();) {
    if (it->first <= host_.last_decided().value) {
      it = instances_.erase(it);
    } else {
      ++it;
    }
  }
}

void PbftEngine::on_crash() { instances_.clear(); }

void PbftEngine::reset() {
  regency_ = 0;
  instances_.clear();
  retained_writeset_.reset();
  regency_evidence_.clear();
  highest_stop_sent_ = 0;
  stop_regency_from_.clear();
  stop_data_.clear();
  sync_done_for_regency_ = true;
}

}  // namespace ss::bft
