// Wire messages of the BFT SMR protocol.
//
// The consensus phases follow BFT-SMaRt's VP-Consensus naming
// (PROPOSE / WRITE / ACCEPT ~= PBFT's pre-prepare / prepare / commit), and
// the synchronization phase follows Mod-SMaRt (STOP / STOP_DATA / SYNC).
// Every message travels inside an Envelope carrying an HMAC over the body,
// keyed with the (sender, receiver) pair key.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/serialization.h"
#include "common/types.h"
#include "crypto/sha256.h"
#include "crypto/usig.h"

namespace ss::bft {

enum class MsgType : std::uint8_t {
  kClientRequest = 0,
  kClientReply,
  kServerPush,
  kPropose,
  kWrite,
  kAccept,
  kStop,
  kStopData,
  kSync,
  kStateRequest,
  kStateReply,
  // MinBFT engine (engine_minbft.h): every message carries a USIG trusted
  // counter certificate, which is what makes the 2f+1 / f+1 quorums sound.
  kMbPrepare,
  kMbCommit,
  kMbViewChange,
  kMax = kMbViewChange,
};

const char* msg_type_name(MsgType t);

/// Outer framing: body is the encoded inner message, mac authenticates
/// (sender -> receiver, type, epoch, body).
struct Envelope {
  MsgType type{};
  std::string sender;  ///< principal == endpoint name
  /// Sender's session-key epoch. 0 is the provisioning-time pair key
  /// (clients, adapters); a replica bumps its epoch at every reincarnation
  /// so session keys stolen before the reboot stop verifying once the
  /// receiver's handover window closes.
  std::uint32_t epoch = 0;
  Bytes body;
  crypto::Digest mac{};

  Bytes encode() const;
  static Envelope decode(ByteView data);  // throws DecodeError
};

/// Byte string an Envelope's HMAC covers: (type, sender, receiver, epoch,
/// body). The receiver is folded in so a MAC for one peer cannot be
/// replayed to another.
Bytes envelope_mac_material(MsgType type, const std::string& sender,
                            const std::string& receiver, std::uint32_t epoch,
                            const Bytes& body);

enum class RequestMode : std::uint8_t { kOrdered = 0, kUnordered = 1 };

struct ClientRequest {
  ClientId client;
  RequestId sequence;
  RequestMode mode = RequestMode::kOrdered;
  Bytes payload;
  /// PBFT-style authenticator: one MAC per replica over encode_core(), so a
  /// Byzantine leader cannot fabricate requests on behalf of a client —
  /// followers verify their own entry when validating a proposal.
  std::vector<crypto::Digest> auth;

  /// Encoding without the authenticator (what the MACs and digest cover).
  Bytes encode_core() const;
  Bytes encode() const;
  static ClientRequest decode(ByteView data);
  crypto::Digest digest() const;
};

struct ClientReply {
  ReplicaId replica;
  ClientId client;
  RequestId sequence;
  ConsensusId cid;  ///< instance that ordered it (0 for unordered)
  Bytes payload;

  Bytes encode() const;
  static ClientReply decode(ByteView data);
};

/// Replica-initiated push to a client (asynchronous SCADA messages).
struct ServerPush {
  ReplicaId replica;
  ClientId client;
  /// Per-replica monotonic push sequence, starting at 1. Rides inside the
  /// MAC-covered body so the client-side voter can reject replayed
  /// captures (0 = unsequenced, legacy/test path).
  std::uint64_t seq = 0;
  Bytes payload;

  Bytes encode() const;
  static ServerPush decode(ByteView data);
};

/// A batch of client requests, stamped by the leader at propose time. The
/// timestamp is validated (monotonically increasing) by every replica, then
/// becomes the deterministic ExecuteContext::timestamp.
struct Batch {
  SimTime timestamp = 0;
  std::vector<ClientRequest> requests;

  Bytes encode() const;
  static Batch decode(ByteView data);
  crypto::Digest digest() const;
};

struct Propose {
  ConsensusId cid;
  std::uint64_t regency = 0;
  ReplicaId leader;
  Bytes batch;  ///< encoded Batch

  Bytes encode() const;
  static Propose decode(ByteView data);
};

/// WRITE and ACCEPT share a shape: a vote for a value digest in an instance.
struct PhaseVote {
  ConsensusId cid;
  std::uint64_t regency = 0;
  ReplicaId voter;
  crypto::Digest value{};

  Bytes encode() const;
  static PhaseVote decode(ByteView data);
};

/// STOP: "I suspect the current leader; move to `regency`".
struct Stop {
  std::uint64_t regency = 0;  ///< the regency the sender wants to install
  ReplicaId sender;

  Bytes encode() const;
  static Stop decode(ByteView data);
};

/// STOP_DATA: sent to the new leader after installing a regency; carries the
/// sender's write-set evidence so a possibly-decided value is preserved.
/// The evidence is *retained* across regencies until the instance decides —
/// otherwise a second view change would forget a possibly-decided value.
struct StopData {
  std::uint64_t regency = 0;
  ReplicaId sender;
  ConsensusId last_decided;
  /// Value (with full proposal) the sender saw a WRITE quorum for in the
  /// open instance, if any.
  bool has_writeset = false;
  ConsensusId writeset_cid;
  std::uint64_t writeset_regency = 0;  ///< regency the quorum was seen in
  crypto::Digest writeset_digest{};
  Bytes writeset_proposal;

  Bytes encode() const;
  static StopData decode(ByteView data);
};

/// SYNC: the new leader's re-proposal that closes the synchronization phase.
struct Sync {
  std::uint64_t regency = 0;
  ReplicaId leader;
  ConsensusId cid;
  Bytes batch;  ///< encoded Batch (recovered write-set value or fresh batch)

  Bytes encode() const;
  static Sync decode(ByteView data);
};

// --- MinBFT engine messages (2f+1 replicas, USIG trusted counters) --------

/// PREPARE: the leader's counter-certified proposal for one instance. The
/// certificate seals (view, cid, batch digest) to the leader's monotonic
/// counter — two conflicting prepares for one instance are cryptographic
/// proof of equivocation.
struct MbPrepare {
  std::uint64_t view = 0;
  ConsensusId cid;
  ReplicaId leader;
  Bytes batch;  ///< encoded Batch
  crypto::UsigCert cert;

  /// Byte string the leader's USIG certificate covers. Leads with the
  /// message-type domain tag: PREPARE and COMMIT materials are otherwise
  /// shape-identical, and one counter certificate must never verify as
  /// both (a stolen-session-key holder could replay a leader's prepare
  /// certificate as a commit vote the leader never cast).
  static Bytes material(std::uint64_t view, ConsensusId cid,
                        const crypto::Digest& batch_digest);

  Bytes encode() const;
  static MbPrepare decode(ByteView data);
};

/// COMMIT: a replica's counter-certified vote for a prepared value. Carries
/// the leader's prepare certificate so receivers can cross-check the value
/// against what the leader certified for this instance (equivocation
/// detection without waiting for a second conflicting prepare).
struct MbCommit {
  std::uint64_t view = 0;
  ConsensusId cid;
  ReplicaId replica;
  crypto::Digest value{};  ///< batch digest being committed
  crypto::UsigCert prepare_cert;
  crypto::UsigCert cert;

  /// Byte string the voter's USIG certificate covers (domain-tagged; see
  /// MbPrepare::material).
  static Bytes material(std::uint64_t view, ConsensusId cid,
                        const crypto::Digest& value);

  Bytes encode() const;
  static MbCommit decode(ByteView data);
};

/// VIEW-CHANGE: STOP and STOP_DATA folded into one message — the counter
/// certificate makes the sender's evidence non-repudiable, so it can be
/// broadcast with the vote instead of sent to the new leader after a
/// separate install round. f+1 matching view targets install the view; the
/// new leader's re-PREPARE under the new view closes it.
struct MbViewChange {
  std::uint64_t view = 0;  ///< the view the sender wants to install
  ReplicaId sender;
  ConsensusId last_decided;
  /// The prepared-but-undecided value the sender knows of, if any, with the
  /// prepare certificate of the leader that certified it.
  bool has_prepared = false;
  std::uint64_t prepared_view = 0;
  ConsensusId prepared_cid;
  crypto::Digest prepared_digest{};
  Bytes prepared_batch;
  crypto::UsigCert prepared_cert;
  crypto::UsigCert cert;

  /// Encoding without the sender's own certificate.
  Bytes encode_core() const;
  /// Byte string the sender's USIG certificate covers: encode_core()
  /// behind the message-type domain tag (see MbPrepare::material).
  Bytes material() const;
  Bytes encode() const;
  static MbViewChange decode(ByteView data);
};

struct StateRequest {
  ReplicaId requester;
  ConsensusId have;  ///< requester's last decided instance

  Bytes encode() const;
  static StateRequest decode(ByteView data);
};

struct StateReply {
  ReplicaId replica;
  ConsensusId cid;  ///< state is valid as of this decided instance
  SimTime last_timestamp = 0;
  Bytes snapshot;

  Bytes encode() const;
  static StateReply decode(ByteView data);
  /// Digest over (cid, last_timestamp, snapshot) — what the requester votes on.
  crypto::Digest digest() const;
};

}  // namespace ss::bft
