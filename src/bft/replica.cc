#include "bft/replica.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "common/logging.h"
#include "obs/metrics.h"
#include "storage/replica_storage.h"

namespace ss::bft {

ReplicaCore::ReplicaCore(net::Transport& net, GroupConfig group, ReplicaId id,
                         const crypto::Keychain& keys, Executable& app,
                         Recoverable& state, ReplicaOptions options)
    : net_(net),
      group_(group),
      id_(id),
      endpoint_(crypto::replica_principal(id)),
      keys_(keys),
      app_(app),
      recoverable_(state),
      opt_(options),
      lanes_(net, options.lanes),
      runner_(options.runner != nullptr ? options.runner : &inline_runner_),
      storage_(options.storage),
      byz_rng_(0xBAD0000 + id.value),
      state_rto_([id] {
        net::BackoffOptions b;
        b.initial = millis(500);
        b.cap = seconds(4);
        std::uint64_t sm = 0x57A7EULL ^ id.value;
        b.seed = splitmix64(sm);
        return b;
      }()),
      engine_(make_engine(*this, group_, id_, keys_)) {
  opt_.max_batch = std::max<std::uint32_t>(opt_.max_batch, 1);
  net_.attach(endpoint_, [this](net::Message m) { on_message(std::move(m)); });
}

ReplicaCore::~ReplicaCore() { net_.detach(endpoint_); }

void ReplicaCore::set_timer_skew(double factor) {
  timer_skew_ = std::clamp(factor, 0.1, 100.0);
}

SimTime ReplicaCore::skewed(SimTime delay) const {
  if (timer_skew_ == 1.0) return delay;
  return static_cast<SimTime>(static_cast<double>(delay) * timer_skew_);
}

// --------------------------------------------------------------------------
// EngineHost services

void ReplicaCore::schedule(SimTime delay, std::function<void()> fn) {
  net_.schedule(skewed(delay), std::move(fn));
}

void ReplicaCore::send_to_replica(ReplicaId to, MsgType type, Bytes body) {
  send_envelope(crypto::replica_principal(to), type, std::move(body));
}

void ReplicaCore::broadcast_replicas(MsgType type, const Bytes& body) {
  broadcast(type, body);
}

void ReplicaCore::append_decision(ConsensusId cid, const Bytes& proposal) {
  if (storage_ != nullptr) storage_->append_decision(cid, proposal);
}

void ReplicaCore::commit(ConsensusId cid, const Batch& batch,
                         const crypto::Digest& digest) {
  last_decided_ = cid;
  ++stats_.batches_decided;
  lanes_.submit(opt_.per_decision_cost, [] {});
  execute_batch(cid, batch);
  last_timestamp_ = batch.timestamp;
  if (decision_observer_) {
    decision_observer_(cid, digest, batch.timestamp);
  }
  maybe_checkpoint();
}

std::uint64_t ReplicaCore::usig_stored_lease() const {
  return storage_ != nullptr ? storage_->usig_lease() : 0;
}

void ReplicaCore::usig_persist_lease(std::uint64_t lease) {
  if (storage_ != nullptr) storage_->write_usig_lease(lease);
}

// --------------------------------------------------------------------------
// networking

void ReplicaCore::on_message(net::Message msg) {
  if (crashed_) return;
  lanes_.submit(opt_.per_message_cost + processing_delay_,
                [this, payload = std::move(msg.payload)]() mutable {
                  if (crashed_) return;
                  runner_->submit([this, payload = std::move(payload)]()
                                      -> core::Runner::Solo {
                    auto in = std::make_shared<Inbound>(prevalidate(payload));
                    return [this, in] { deliver(std::move(*in)); };
                  });
                });
}

ReplicaCore::Inbound ReplicaCore::prevalidate(const Bytes& payload) const {
  // Runs on a runner worker thread: everything it reads (endpoint_, keys_,
  // group_, id_, the engine's immutable identity) is fixed for the
  // replica's lifetime, and every operation (decode, HMAC, SHA-256) is a
  // pure function of its inputs.
  Inbound in;
  try {
    in.env = Envelope::decode(payload);
  } catch (const DecodeError&) {
    in.decode_failed = true;
    return in;
  }
  // Verify under the epoch the sender claims; whether that epoch is still
  // current is a driver-thread policy question (accept_sender_epoch) — here
  // we only establish that the sender holds the keys for it.
  Bytes material = envelope_mac_material(in.env.type, in.env.sender, endpoint_,
                                         in.env.epoch, in.env.body);
  if (!keys_.verify(in.env.sender, endpoint_, in.env.epoch, material,
                    in.env.mac)) {
    in.mac_failed = true;
    return in;
  }
  switch (in.env.type) {
    case MsgType::kClientRequest: {
      // A failed pre-decode leaves pre.request empty; the driver-side
      // handler re-decodes inline and counts the failure there, keeping
      // the stats accounting in one place.
      try {
        ClientRequest req = ClientRequest::decode(in.env.body);
        in.pre.request_auth_ok =
            req.auth.size() == group_.n &&
            keys_.verify(crypto::client_principal(req.client), endpoint_,
                         req.encode_core(), req.auth[id_.value]);
        in.pre.request = std::move(req);
      } catch (const DecodeError&) {
      }
      break;
    }
    default:
      // Engine message types get their own worker-side prologue; anything
      // else is cheap and decoded on the driver.
      engine_->prevalidate(in.env, in.pre.engine);
      break;
  }
  return in;
}

void ReplicaCore::deliver(Inbound in) {
  if (crashed_) return;
  if (in.decode_failed) {
    ++stats_.decode_failures;
    return;
  }
  if (in.mac_failed) {
    ++stats_.mac_failures;
    return;
  }
  try {
    dispatch(std::move(in.env), std::move(in.pre));
  } catch (const DecodeError&) {
    ++stats_.decode_failures;
  }
}

void ReplicaCore::dispatch(Envelope env, Prevalidated pre) {
  // Replica-to-replica traffic must carry a current (or within-handover)
  // key epoch. Client requests are exempt: clients stay on epoch 0, and a
  // forwarded request's real gate is its per-replica authenticator anyway.
  if (env.type != MsgType::kClientRequest &&
      !accept_sender_epoch(env.sender, env.epoch)) {
    ++stats_.epoch_rejections;
    ++obs::Registry::instance().counter("bft.epoch_rejections");
    return;
  }
  switch (env.type) {
    case MsgType::kClientRequest:
      handle_client_request(env, pre);
      break;
    case MsgType::kStateRequest: {
      StateRequest req = StateRequest::decode(env.body);
      if (env.sender != crypto::replica_principal(req.requester)) return;
      handle_state_request(req);
      break;
    }
    case MsgType::kStateReply: {
      StateReply rep = StateReply::decode(env.body);
      if (env.sender != crypto::replica_principal(rep.replica)) return;
      handle_state_reply(rep);
      break;
    }
    case MsgType::kClientReply:
    case MsgType::kServerPush:
      break;  // replies/pushes are never addressed to a replica
    default:
      engine_->on_message(env, pre.engine);
      break;
  }
}

void ReplicaCore::send_envelope(const std::string& to, MsgType type,
                                Bytes body) {
  // WAL replay re-derives local state only; every message a replayed
  // decision would emit was already sent by the pre-crash incarnation.
  if (replaying_) return;
  if (byzantine_ == ByzantineMode::kSilent) return;
  if (byzantine_ == ByzantineMode::kCorruptReplies &&
      (type == MsgType::kClientReply || type == MsgType::kServerPush) &&
      !body.empty()) {
    body[byz_rng_.below(body.size())] ^= 0x5a;
  }
  if (byzantine_ == ByzantineMode::kCorruptVotes) {
    engine_->corrupt_vote_for_test(type, body);
  }
  // MAC + wire encoding are pure: offload them to the runner. The solo only
  // hands the finished bytes to the transport, so outbound messages leave
  // in submission order from the driver thread. key_epoch_ is captured here,
  // on the driver thread — workers never read the mutable member.
  runner_->submit(
      [this, to, type, epoch = key_epoch_,
       body = std::move(body)]() mutable -> core::Runner::Solo {
        Envelope env;
        env.type = type;
        env.sender = endpoint_;
        env.epoch = epoch;
        env.body = std::move(body);
        env.mac = keys_.mac(
            endpoint_, to, epoch,
            envelope_mac_material(type, endpoint_, to, epoch, env.body));
        auto wire = std::make_shared<Bytes>(env.encode());
        return [this, to = std::move(to), wire] {
          if (crashed_) return;
          net_.send(endpoint_, to, std::move(*wire));
        };
      });
}

void ReplicaCore::broadcast(MsgType type, const Bytes& body) {
  for (ReplicaId peer : group_.replica_ids()) {
    if (peer == id_) continue;
    send_envelope(crypto::replica_principal(peer), type, body);
  }
}

// --------------------------------------------------------------------------
// client requests

void ReplicaCore::handle_client_request(const Envelope& env,
                                        Prevalidated& pre) {
  // Decode and authenticator verification are worker-side when the message
  // came through prevalidate(); the inline fallback covers everything else.
  ClientRequest req;
  bool auth_ok;
  if (pre.request.has_value()) {
    auth_ok = pre.request_auth_ok;
    req = std::move(*pre.request);
  } else {
    req = ClientRequest::decode(env.body);
    auth_ok = req.auth.size() == group_.n &&
              keys_.verify(crypto::client_principal(req.client), endpoint_,
                           req.encode_core(), req.auth[id_.value]);
  }
  // The envelope may come from the client itself or from a replica
  // forwarding a stalled request; either way the request's own
  // authenticator (below) is what proves the client issued it.
  if (env.sender != crypto::client_principal(req.client)) {
    bool from_replica = false;
    for (ReplicaId peer : group_.replica_ids()) {
      if (env.sender == crypto::replica_principal(peer)) {
        from_replica = true;
        break;
      }
    }
    if (!from_replica) return;
  }

  // This replica's entry in the request authenticator must verify, so that
  // a batch containing the request can be validated by every follower.
  if (!auth_ok) {
    ++stats_.auth_failures;
    return;
  }

  if (req.mode == RequestMode::kUnordered) {
    ++stats_.unordered_executed;
    ClientReply reply;
    reply.replica = id_;
    reply.client = req.client;
    reply.sequence = req.sequence;
    reply.cid = ConsensusId{0};
    reply.payload = app_.execute_unordered(req.client, req.payload);
    send_envelope(crypto::client_principal(req.client), MsgType::kClientReply,
                  reply.encode());
    return;
  }

  if (already_executed(req.client, req.sequence)) {
    // Retransmission of a completed request: resend the cached reply.
    resend_cached_reply(req.client, req.sequence);
    return;
  }

  enqueue_pending(std::move(req));
  engine_->on_request_ready();
}

bool ReplicaCore::already_executed(ClientId client, RequestId seq) const {
  auto it = executed_.find(client.value);
  return it != executed_.end() && it->second.count(seq.value) > 0;
}

void ReplicaCore::remember_executed(ClientId client, RequestId seq) {
  auto& seqs = executed_[client.value];
  seqs.insert(seq.value);
  // Bound memory: forget the oldest entries; a client that retransmits a
  // request this stale has long since failed its own timeout.
  while (seqs.size() > 4096) seqs.erase(seqs.begin());
}

void ReplicaCore::enqueue_pending(ClientRequest req) {
  auto& per_client = pending_index_[req.client.value];
  if (per_client.count(req.sequence.value) > 0) return;  // duplicate
  if (per_client.size() >= opt_.max_pending_per_client) {
    ++stats_.requests_flood_dropped;
    return;  // flood protection; the client will retransmit
  }
  ClientId client = req.client;
  RequestId seq = req.sequence;
  pending_.push_back(std::move(req));
  per_client[seq.value] = std::prev(pending_.end());
  if (!is_leader() || engine_->leader_self_suspects()) {
    arm_suspect_timer(client, seq);
  }
}

void ReplicaCore::erase_pending(ClientId client, RequestId seq) {
  auto cit = pending_index_.find(client.value);
  if (cit == pending_index_.end()) return;
  auto rit = cit->second.find(seq.value);
  if (rit == cit->second.end()) return;
  pending_.erase(rit->second);
  cit->second.erase(rit);
  if (cit->second.empty()) pending_index_.erase(cit);
  auto tit = suspect_timers_.find({client.value, seq.value});
  if (tit != suspect_timers_.end()) {
    tit->second.cancel();
    suspect_timers_.erase(tit);
  }
}

void ReplicaCore::arm_suspect_timer(ClientId client, RequestId seq) {
  PendingKey key{client.value, seq.value};
  auto existing = suspect_timers_.find(key);
  if (existing != suspect_timers_.end() && existing->second.active()) return;

  auto still_pending = [this, client, seq] {
    if (crashed_ || already_executed(client, seq)) return false;
    auto cit = pending_index_.find(client.value);
    return cit != pending_index_.end() && cit->second.count(seq.value) > 0;
  };

  // Phase 1 (request_timeout/2): the leader may never have received the
  // request — forward it before blaming anyone (PBFT-style).
  if (opt_.forward_to_leader) {
    net_.schedule(skewed(opt_.request_timeout / 2), [this, client, seq,
                                                    still_pending] {
      if (!still_pending() || is_leader()) return;
      auto cit = pending_index_.find(client.value);
      auto rit = cit->second.find(seq.value);
      ++stats_.requests_forwarded;
      send_envelope(crypto::replica_principal(engine_->current_leader()),
                    MsgType::kClientRequest, rit->second->encode());
    });
  }

  // Phase 2 (request_timeout): the leader had its chance; vote it out.
  suspect_timers_[key] =
      net_.schedule(skewed(opt_.request_timeout), [this, client, seq,
                                                  still_pending] {
        if (!still_pending()) return;
        SS_LOG(LogLevel::kInfo, net_.now(), endpoint_.c_str(),
               "request (%u,%lu) not ordered in time; suspecting leader %u",
               client.value, static_cast<unsigned long>(seq.value),
               engine_->current_leader().value);
        engine_->suspect_leader();
      });
}

void ReplicaCore::rearm_suspect_timers() {
  for (const ClientRequest& req : pending_) {
    PendingKey key{req.client.value, req.sequence.value};
    auto tit = suspect_timers_.find(key);
    if (tit != suspect_timers_.end()) tit->second.cancel();
    suspect_timers_.erase(key);
    arm_suspect_timer(req.client, req.sequence);
  }
}

// --------------------------------------------------------------------------
// execution

Batch ReplicaCore::make_batch() {
  Batch batch;
  batch.timestamp = std::max(last_timestamp_ + 1, net_.now());
  for (const ClientRequest& req : pending_) {
    if (batch.requests.size() >= opt_.max_batch) break;
    batch.requests.push_back(req);
  }
  return batch;
}

void ReplicaCore::execute_batch(ConsensusId cid, const Batch& batch) {
  std::uint32_t order = 0;
  for (const ClientRequest& req : batch.requests) {
    erase_pending(req.client, req.sequence);
    if (already_executed(req.client, req.sequence)) {
      ++stats_.requests_deduped;
      ++order;
      continue;
    }
    ExecuteContext ctx;
    ctx.cid = cid;
    ctx.order = order++;
    ctx.timestamp = batch.timestamp;
    ctx.client = req.client;
    ctx.request = req.sequence;

    Bytes result = app_.execute_ordered(ctx, req.payload);
    remember_executed(req.client, req.sequence);
    ++stats_.requests_executed;

    ClientReply reply;
    reply.replica = id_;
    reply.client = req.client;
    reply.sequence = req.sequence;
    reply.cid = cid;
    reply.payload = result;
    auto& cache = reply_cache_[req.client.value];
    cache[req.sequence.value] = CachedReply{cid, std::move(result)};
    while (cache.size() > 256) cache.erase(cache.begin());
    send_envelope(crypto::client_principal(req.client), MsgType::kClientReply,
                  reply.encode());
  }
}

void ReplicaCore::resend_cached_reply(ClientId client, RequestId seq) {
  auto cit = reply_cache_.find(client.value);
  if (cit == reply_cache_.end()) return;
  auto rit = cit->second.find(seq.value);
  if (rit == cit->second.end()) return;
  ClientReply reply;
  reply.replica = id_;
  reply.client = client;
  reply.sequence = seq;
  reply.cid = rit->second.cid;
  reply.payload = rit->second.payload;
  send_envelope(crypto::client_principal(client), MsgType::kClientReply,
                reply.encode());
}

void ReplicaCore::push_to_client(ClientId client, Bytes payload) {
  ServerPush push;
  push.replica = id_;
  push.client = client;
  // Monotonic per-replica sequence (shared across clients; gaps are fine).
  // The client-side PushVoter uses it to reject replayed captures. The
  // low-order counter is per-process, so a reincarnated replica starts it
  // over — folding the key epoch into the high bits keeps the composite
  // sequence monotone across reboots. Without it, a rebooted replica's
  // pushes read as replays at the voter until the counter re-passes its
  // pre-reboot frontier, and with rolling proactive recovery enough
  // replicas are muted at once to starve the f+1 vote quorum.
  push.seq = (static_cast<std::uint64_t>(key_epoch_) << 32) | next_push_seq_++;
  push.payload = std::move(payload);
  ++stats_.pushes_sent;
  send_envelope(crypto::client_principal(client), MsgType::kServerPush,
                push.encode());
}

// --------------------------------------------------------------------------
// checkpoints & state transfer

/// Replica-level recovery state (dedup table + reply cache) bundled with
/// the application snapshot, so a restored replica neither re-executes
/// requests nor goes mute toward retransmitting clients.
Bytes ReplicaCore::encode_full_snapshot() const {
  Bytes app_snapshot = recoverable_.snapshot();
  Writer w(app_snapshot.size() + 64);
  w.blob(app_snapshot);

  std::vector<std::uint64_t> clients;
  clients.reserve(executed_.size());
  for (const auto& [client, _] : executed_) clients.push_back(client);
  std::sort(clients.begin(), clients.end());
  w.varint(clients.size());
  for (std::uint64_t client : clients) {
    const auto& seqs = executed_.at(client);
    w.varint(client);
    w.varint(seqs.size());
    for (std::uint64_t s : seqs) w.varint(s);
  }

  w.varint(reply_cache_.size());
  for (const auto& [client, replies] : reply_cache_) {
    w.varint(client);
    w.varint(replies.size());
    for (const auto& [seq, cached] : replies) {
      w.varint(seq);
      w.id(cached.cid);
      w.blob(cached.payload);
    }
  }
  return std::move(w).take();
}

void ReplicaCore::apply_full_snapshot(ByteView data) {
  Reader r(data);
  Bytes app_snapshot = r.blob();

  std::unordered_map<std::uint64_t, std::set<std::uint64_t>> executed;
  std::uint64_t nclients = r.varint();
  for (std::uint64_t i = 0; i < nclients; ++i) {
    std::uint64_t client = r.varint();
    std::uint64_t nseqs = r.varint();
    auto& seqs = executed[client];
    for (std::uint64_t j = 0; j < nseqs; ++j) seqs.insert(r.varint());
  }

  std::map<std::uint64_t, std::map<std::uint64_t, CachedReply>> replies;
  std::uint64_t ncache = r.varint();
  for (std::uint64_t i = 0; i < ncache; ++i) {
    std::uint64_t client = r.varint();
    std::uint64_t nreplies = r.varint();
    auto& per_client = replies[client];
    for (std::uint64_t j = 0; j < nreplies; ++j) {
      std::uint64_t seq = r.varint();
      CachedReply cached;
      cached.cid = r.id<ConsensusId>();
      cached.payload = r.blob();
      per_client[seq] = std::move(cached);
    }
  }
  r.expect_done();

  // Only commit once everything decoded (basic exception safety).
  recoverable_.restore(app_snapshot);
  executed_ = std::move(executed);
  reply_cache_ = std::move(replies);
}

void ReplicaCore::maybe_checkpoint() {
  if (opt_.checkpoint_interval == 0) return;
  if (last_decided_.value % opt_.checkpoint_interval != 0) return;
  checkpoint_digest_ = crypto::Sha256::hash(recoverable_.snapshot());
  checkpoint_cid_ = last_decided_;
  ++stats_.checkpoints;
  write_storage_checkpoint();
}

void ReplicaCore::checkpoint_now() {
  checkpoint_digest_ = crypto::Sha256::hash(recoverable_.snapshot());
  checkpoint_cid_ = last_decided_;
  ++stats_.checkpoints;
  write_storage_checkpoint();
}

void ReplicaCore::write_storage_checkpoint() {
  if (storage_ == nullptr || !checkpoint_digest_.has_value()) return;
  storage::Checkpoint ckpt;
  ckpt.cid = checkpoint_cid_;
  ckpt.last_timestamp = last_timestamp_;
  ckpt.app_digest = *checkpoint_digest_;
  ckpt.full_snapshot = encode_full_snapshot();
  storage_->write_checkpoint(ckpt);
}

void ReplicaCore::request_state_now() {
  if (transferring_) return;
  transferring_ = true;
  state_replies_.clear();
  state_current_votes_.clear();
  StateRequest req{id_, last_decided_};
  broadcast(MsgType::kStateRequest, req.encode());
  net_.schedule(skewed(state_rto_.delay(state_retry_level_)), [this] {
    if (crashed_ || !transferring_) return;
    ++state_retry_level_;
    transferring_ = false;
    request_state_now();  // retry, backed off
  });
}

void ReplicaCore::maybe_request_state(ConsensusId evidence_cid) {
  if (evidence_cid.value < last_decided_.value + opt_.state_gap_threshold) {
    return;
  }
  request_state_now();
}

void ReplicaCore::note_progress_evidence(ConsensusId cid) {
  if (cid.value <= last_decided_.value) return;
  if (cid.value >= last_decided_.value + opt_.state_gap_threshold) {
    request_state_now();
    return;
  }
  // Small gap: peers are working on an instance we haven't decided. Usually
  // normal for a moment (cid == next is the live case — we decide it from
  // the same vote stream), so only transfer if the gap persists for a full
  // request timeout. The undecided-next case matters too: a replica that
  // missed the PROPOSE (lossy link, or votes dropped while a view change it
  // hadn't adopted yet was in flight) holds quorum votes it can never act
  // on, and if that instance is the last before a quiet period nothing else
  // would ever close the gap.
  if (cid.value > stall_target_) stall_target_ = cid.value;
  if (!stall_check_armed_) arm_stall_check(stall_target_);
}

void ReplicaCore::arm_stall_check(std::uint64_t target) {
  stall_check_armed_ = true;
  net_.schedule(skewed(opt_.request_timeout), [this, target] {
    stall_check_armed_ = false;
    if (crashed_) return;
    if (last_decided_.value < target) {
      request_state_now();
    } else if (last_decided_.value < stall_target_) {
      // Evidence for a later instance arrived while this check was armed;
      // it never got its own timer, so give it one — a one-shot check here
      // would go blind if that evidence was the last message before quiet.
      arm_stall_check(stall_target_);
    }
  });
}

void ReplicaCore::handle_state_request(const StateRequest& req) {
  if (req.requester == id_ || req.requester.value >= group_.n) return;
  StateReply rep;
  rep.replica = id_;
  rep.cid = last_decided_;
  rep.last_timestamp = last_timestamp_;
  rep.snapshot = encode_full_snapshot();
  send_envelope(crypto::replica_principal(req.requester), MsgType::kStateReply,
                rep.encode());
}

void ReplicaCore::handle_state_reply(const StateReply& rep) {
  if (!transferring_) return;
  if (rep.replica.value >= group_.n) return;
  if (rep.cid.value <= last_decided_.value) {
    // f+1 peers say we are already current: end the transfer instead of
    // re-requesting forever.
    state_current_votes_.insert(rep.replica.value);
    if (state_current_votes_.size() >= group_.reply_quorum()) {
      transferring_ = false;
      state_retry_level_ = 0;
      state_replies_.clear();
      state_current_votes_.clear();
      note_rejoin_complete();
    }
    return;
  }
  auto& bucket = state_replies_[rep.cid.value];
  for (const StateReply& existing : bucket) {
    if (existing.replica == rep.replica) return;  // one vote per replica
  }
  bucket.push_back(rep);

  // f+1 replies with identical (cid, timestamp, snapshot) digests ensure at
  // least one is from a correct replica.
  std::map<crypto::Digest, std::uint32_t> counts;
  for (const StateReply& r : bucket) ++counts[r.digest()];
  const crypto::Digest* winner = nullptr;
  for (const auto& [digest, count] : counts) {
    if (count >= group_.reply_quorum()) {
      winner = &digest;
      break;
    }
  }
  if (winner == nullptr) return;

  for (const StateReply& r : bucket) {
    if (r.digest() != *winner) continue;
    try {
      apply_full_snapshot(r.snapshot);
    } catch (const DecodeError&) {
      return;  // malformed despite quorum: keep waiting
    }
    last_decided_ = r.cid;
    last_timestamp_ = r.last_timestamp;
    engine_->on_state_transfer_applied();
    transferring_ = false;
    state_retry_level_ = 0;
    state_replies_.clear();
    ++stats_.state_transfers;
    note_rejoin_complete();
    if (storage_ != nullptr) {
      // The frontier just jumped past decisions this replica never logged.
      // Persist the transferred state as a checkpoint immediately (which
      // also truncates the now-stale WAL prefix) so the on-disk WAL never
      // has a seq gap below the checkpoint it would replay against.
      checkpoint_digest_ = crypto::Sha256::hash(recoverable_.snapshot());
      checkpoint_cid_ = last_decided_;
      write_storage_checkpoint();
    }
    SS_LOG(LogLevel::kInfo, net_.now(), endpoint_.c_str(),
           "state transfer complete at cid=%lu",
           static_cast<unsigned long>(last_decided_.value));
    // Drop pending requests that the snapshot already covers.
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (already_executed(it->client, it->sequence)) {
        ClientId c = it->client;
        RequestId s = it->sequence;
        ++it;
        erase_pending(c, s);
      } else {
        ++it;
      }
    }
    engine_->on_request_ready();
    return;
  }
}

// --------------------------------------------------------------------------
// crash / recovery

void ReplicaCore::crash() {
  crashed_ = true;
  net_.detach(endpoint_);
  for (auto& [key, timer] : suspect_timers_) timer.cancel();
  suspect_timers_.clear();
  pending_.clear();
  pending_index_.clear();
  engine_->on_crash();
  transferring_ = false;
}

void ReplicaCore::recover() {
  crashed_ = false;
  net_.attach(endpoint_, [this](net::Message m) { on_message(std::move(m)); });
  rejoin_started_ = net_.now();
  transferring_ = true;
  state_replies_.clear();
  StateRequest req{id_, last_decided_};
  broadcast(MsgType::kStateRequest, req.encode());
}

bool ReplicaCore::accept_sender_epoch(const std::string& sender,
                                      std::uint32_t epoch) {
  PeerEpoch& pe = peer_epochs_[sender];
  if (epoch == pe.current) return true;
  if (epoch > pe.current) {
    // The peer reincarnated (deriving a fresher epoch needs the group
    // secret, so this is not forgeable with stolen session keys). Honour
    // its previous epoch for the handover window: in-flight messages MAC'd
    // before the reboot are still legitimate for that long.
    pe.current = epoch;
    pe.prev_expiry = net_.now() + opt_.epoch_handover_window;
    return true;
  }
  return epoch + 1 == pe.current && net_.now() < pe.prev_expiry;
}

void ReplicaCore::note_rejoin_complete() {
  if (!rejoin_started_.has_value()) return;
  obs::Registry::instance()
      .histogram("bft.recovery_ns")
      .record(static_cast<std::int64_t>(net_.now() - *rejoin_started_));
  rejoin_started_.reset();
}

// --------------------------------------------------------------------------
// durable recovery

void ReplicaCore::recover_from_storage() {
  if (storage_ == nullptr) return;
  auto wall_start = std::chrono::steady_clock::now();
  bool restored_checkpoint = false;
  std::uint64_t replayed = 0;

  if (std::optional<storage::Checkpoint> ckpt = storage_->load_checkpoint()) {
    try {
      apply_full_snapshot(ckpt->full_snapshot);
      last_decided_ = ckpt->cid;
      last_timestamp_ = ckpt->last_timestamp;
      checkpoint_digest_ = ckpt->app_digest;
      checkpoint_cid_ = ckpt->cid;
      restored_checkpoint = true;
    } catch (const DecodeError&) {
      // The checkpoint file passed its CRC but its content does not decode
      // (e.g. written by an incompatible build). Recover from genesis + WAL.
      SS_LOG(LogLevel::kWarn, net_.now(), endpoint_.c_str(),
             "checkpoint snapshot undecodable; recovering from WAL only");
    }
  }

  // Replay a copy: maybe_checkpoint() inside the loop may write a durable
  // checkpoint, and ReplicaStorage::write_checkpoint() truncates the WAL's
  // own record vector — iterating it directly would invalidate the loop's
  // iterators the moment a replayed seq lands on a checkpoint boundary.
  const std::vector<storage::Wal::Record> records = storage_->wal_records();
  replaying_ = true;
  for (const storage::Wal::Record& rec : records) {
    if (rec.seq <= last_decided_.value) continue;  // covered by checkpoint
    if (rec.seq != last_decided_.value + 1) {
      // A seq gap can only mean records below a checkpoint outlived it
      // (which write_checkpoint prevents) — stop rather than execute out of
      // order; state transfer will fill in the rest.
      SS_LOG(LogLevel::kWarn, net_.now(), endpoint_.c_str(),
             "wal replay: seq gap at %lu (frontier %lu); stopping replay",
             static_cast<unsigned long>(rec.seq),
             static_cast<unsigned long>(last_decided_.value));
      break;
    }
    Batch batch;
    try {
      batch = Batch::decode(rec.payload);
    } catch (const DecodeError&) {
      SS_LOG(LogLevel::kWarn, net_.now(), endpoint_.c_str(),
             "wal replay: undecodable batch at seq %lu; stopping replay",
             static_cast<unsigned long>(rec.seq));
      break;
    }
    ConsensusId cid{rec.seq};
    last_decided_ = cid;
    execute_batch(cid, batch);
    last_timestamp_ = batch.timestamp;
    maybe_checkpoint();
    ++replayed;
  }
  replaying_ = false;

  if (restored_checkpoint || replayed > 0) {
    auto duration_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wall_start)
            .count());
    storage_->note_recovery(duration_ns, replayed);
    SS_LOG(LogLevel::kInfo, net_.now(), endpoint_.c_str(),
           "recovered from storage: checkpoint=%s cid=%lu wal_replayed=%lu",
           restored_checkpoint ? "yes" : "no",
           static_cast<unsigned long>(last_decided_.value),
           static_cast<unsigned long>(replayed));
  }
}

void ReplicaCore::reboot(ByteView genesis_full_snapshot) {
  if (!crashed_) crash();

  // Back to constructed defaults, as a real process restart would be. The
  // stats_ counters deliberately survive: they are observational, and the
  // chaos engine's reports aggregate them across the whole run. The
  // engine's trusted-component state (MinBFT's USIG counter) also survives
  // — by design, a trusted counter never moves backwards.
  engine_->reset();
  last_decided_ = ConsensusId{0};
  last_timestamp_ = 0;
  pending_.clear();
  pending_index_.clear();
  executed_.clear();
  reply_cache_.clear();
  stall_check_armed_ = false;
  for (auto& [key, timer] : suspect_timers_) timer.cancel();
  suspect_timers_.clear();
  transferring_ = false;
  state_replies_.clear();
  state_current_votes_.clear();
  checkpoint_digest_.reset();
  checkpoint_cid_ = ConsensusId{0};
  next_push_seq_ = 1;
  byzantine_ = ByzantineMode::kNone;  // byzantine behaviour is in-memory
  peer_epochs_.clear();

  // A reincarnated replica derives fresh session keys: bump the key epoch
  // (durably, when storage is attached) so anything signed with the
  // pre-reboot keys ages out once the peers' handover windows close.
  // key_epoch_ itself is deliberately NOT reset above — it must only ever
  // move forward.
  key_epoch_ = storage_ != nullptr ? storage_->bump_epoch() : key_epoch_ + 1;

  // The app object is shared with the "process", so put it back to what a
  // fresh main() would construct before recovery layers anything on top.
  if (!genesis_full_snapshot.empty()) {
    apply_full_snapshot(genesis_full_snapshot);
  }

  recover_from_storage();

  crashed_ = false;
  net_.attach(endpoint_, [this](net::Message m) { on_message(std::move(m)); });
  rejoin_started_ = net_.now();
  // Disk brings us to the last durable frontier; peers supply whatever was
  // decided while we were down (bounded by what the WAL+checkpoint cover).
  request_state_now();
}

}  // namespace ss::bft
