// Seeded fault-script generation for the chaos engine.
//
// A FaultScript is a timed sequence of fault injections composed from the
// primitives the rest of the codebase already exposes: ByzantineMode
// switches on replicas, crash/recover, full isolation (partitions), link
// policies via sim::FaultSpec (drop/dup/delay + heal), and RTU misbehaviour
// (swallowed requests, failing writes). Scripts are a pure function of
// (family, group, seed), so any run — including a minimized counterexample —
// is replayable from a one-line command.
//
// Generated scripts stay inside the system's fault budget: at most f
// replicas are impaired (Byzantine, crashed, or isolated) at any time, and
// probabilistic link faults are kept below rates that starve liveness before
// the heal point. Violating the budget on purpose is the job of the canary
// sabotages in swarm.h, not of the generator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bft/replica.h"
#include "common/config.h"
#include "sim/network.h"

namespace ss::chaos {

enum class ScenarioFamily {
  kByzantineReplicas,  ///< silent / corrupt / equivocating replicas + reimage
  kPartitions,         ///< replica isolation and heals (pause/restart too)
  kLossyLinks,         ///< probabilistic drop/dup/delay on replica links
  kRtuFaults,          ///< swallowed requests and failing writes in the field
  kCrashRestart,       ///< kill -9 + supervised restart with durable state
  kCompromiseRecover,  ///< compromise, reincarnate, replay the stolen keys
  kRequestFlood,       ///< telemetry bursts against the frontend backpressure
  kMixed,              ///< everything at once, still within the fault budget
  /// Gray failures (appended so existing (family, seed) scripts keep their
  /// bytes): replicas that are slow but *correct* — delayed message
  /// processing, fsync stalls on the durable store, skewed local timers.
  /// Safety must hold outright; liveness must survive the thinner margins.
  kGrayFailure,
};

inline constexpr ScenarioFamily kAllFamilies[] = {
    ScenarioFamily::kByzantineReplicas, ScenarioFamily::kPartitions,
    ScenarioFamily::kLossyLinks,        ScenarioFamily::kRtuFaults,
    ScenarioFamily::kCrashRestart,      ScenarioFamily::kCompromiseRecover,
    ScenarioFamily::kRequestFlood,      ScenarioFamily::kMixed,
    ScenarioFamily::kGrayFailure};

const char* family_name(ScenarioFamily family);
bool parse_family(const std::string& name, ScenarioFamily& out);
/// "byzantine|partitions|...|gray-failure" — for usage strings and the
/// unknown-family error path, so CLIs never go stale against the enum.
std::string family_list();

enum class ActionKind {
  kSetByzantine,      ///< replica, mode
  kClearByzantine,    ///< replica
  kCrashReplica,      ///< replica
  kRecoverReplica,    ///< replica
  kIsolateReplica,    ///< replica (cuts replica/i and adapter/i endpoints)
  kHealReplica,       ///< replica
  kLinkFault,         ///< link (sim::FaultSpec, heal=false)
  kHealLink,          ///< link (same patterns, heal=true)
  kRtuSwallowRequests,  ///< count: requests the RTU silently ignores
  kRtuFailWrites,       ///< count: writes the RTU answers with an error
  kKillReplica,         ///< replica (kill -9; unsynced durable bytes vanish)
  kRestartReplica,      ///< replica (supervised restart: recover from disk)
  kReplayStolenKeys,    ///< replica, count: forge traffic with the session
                        ///< keys captured before the replica reincarnated
  kUpdateFlood,         ///< count: burst of frontend field updates
  // Gray-failure injections (replica stays correct, only slower).
  kGraySlow,        ///< replica, count: extra per-message CPU in microseconds
  kGrayFsyncStall,  ///< replica, count: per-fsync stall in microseconds
  kGrayTimerSkew,   ///< replica, count: timer multiplier in percent (150=1.5x)
  kGrayClear,       ///< replica: remove all gray impairments
};

struct FaultAction {
  SimTime at = 0;  ///< offset from the script's start time
  ActionKind kind = ActionKind::kSetByzantine;
  std::uint32_t replica = 0;
  bft::ByzantineMode mode = bft::ByzantineMode::kNone;
  sim::FaultSpec link;
  std::uint64_t count = 0;

  std::string describe() const;
};

struct FaultScript {
  std::vector<FaultAction> actions;

  std::string describe() const;
};

struct ScriptParams {
  GroupConfig group;
  SimTime horizon = seconds(3);  ///< injections happen within [0, horizon)
  bool has_rtu = true;           ///< whether RTU actions are available
};

/// Deterministically expands (family, params, seed) into a fault script.
FaultScript generate_script(ScenarioFamily family, const ScriptParams& params,
                            std::uint64_t seed);

}  // namespace ss::chaos
