#include "chaos/fault_script.h"

#include <algorithm>
#include <cstdio>

#include "common/rng.h"
#include "crypto/keychain.h"

namespace ss::chaos {

namespace {

const char* mode_name(bft::ByzantineMode mode) {
  switch (mode) {
    case bft::ByzantineMode::kNone:
      return "none";
    case bft::ByzantineMode::kSilent:
      return "silent";
    case bft::ByzantineMode::kCorruptReplies:
      return "corrupt-replies";
    case bft::ByzantineMode::kCorruptVotes:
      return "corrupt-votes";
    case bft::ByzantineMode::kEquivocate:
      return "equivocate";
  }
  return "?";
}

std::string at_ms(SimTime t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "t+%lldms",
                static_cast<long long>(t / millis(1)));
  return buf;
}

SimTime pick_time(Rng& rng, SimTime lo, SimTime hi) {
  if (hi <= lo) return lo;
  return lo + static_cast<SimTime>(
                  rng.below(static_cast<std::uint64_t>(hi - lo)));
}

/// Replicas that may be impaired simultaneously: a fixed subset of size <= f
/// chosen up front, so every replica-level fault in the script respects the
/// budget no matter how the windows overlap.
std::vector<std::uint32_t> pick_impaired_set(Rng& rng,
                                             const GroupConfig& group) {
  std::uint32_t k = group.f == 0 ? 0 : 1 + static_cast<std::uint32_t>(
                                               rng.below(group.f));
  std::vector<std::uint32_t> all(group.n);
  for (std::uint32_t i = 0; i < group.n; ++i) all[i] = i;
  // Partial Fisher-Yates with the script's own rng.
  for (std::uint32_t i = 0; i < k; ++i) {
    std::uint32_t j = i + static_cast<std::uint32_t>(rng.below(group.n - i));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

void add_byzantine_faults(Rng& rng, const ScriptParams& params,
                          const std::vector<std::uint32_t>& impaired,
                          FaultScript& script) {
  for (std::uint32_t replica : impaired) {
    SimTime start = pick_time(rng, params.horizon / 20, params.horizon / 2);
    if (rng.chance(0.35)) {
      // Pause/restart instead of a Byzantine mode.
      FaultAction crash;
      crash.at = start;
      crash.kind = ActionKind::kCrashReplica;
      crash.replica = replica;
      script.actions.push_back(crash);
      FaultAction recover = crash;
      recover.kind = ActionKind::kRecoverReplica;
      recover.at = pick_time(rng, start + millis(200), params.horizon);
      script.actions.push_back(recover);
      continue;
    }
    static constexpr bft::ByzantineMode kModes[] = {
        bft::ByzantineMode::kSilent, bft::ByzantineMode::kCorruptReplies,
        bft::ByzantineMode::kCorruptVotes, bft::ByzantineMode::kEquivocate};
    FaultAction set;
    set.at = start;
    set.kind = ActionKind::kSetByzantine;
    set.replica = replica;
    set.mode = kModes[rng.below(4)];
    script.actions.push_back(set);
    if (rng.chance(0.6)) {
      // Reimage (clear) before the horizon; otherwise the drain heal does it.
      FaultAction clear;
      clear.at = pick_time(rng, start + millis(300), params.horizon);
      clear.kind = ActionKind::kClearByzantine;
      clear.replica = replica;
      script.actions.push_back(clear);
    }
  }
}

void add_partition_faults(Rng& rng, const ScriptParams& params,
                          const std::vector<std::uint32_t>& impaired,
                          FaultScript& script) {
  for (std::uint32_t replica : impaired) {
    SimTime start = pick_time(rng, params.horizon / 20, params.horizon / 2);
    FaultAction cut;
    cut.at = start;
    cut.kind = ActionKind::kIsolateReplica;
    cut.replica = replica;
    script.actions.push_back(cut);
    if (rng.chance(0.7)) {
      FaultAction heal = cut;
      heal.kind = ActionKind::kHealReplica;
      heal.at = pick_time(rng, start + millis(200), params.horizon);
      script.actions.push_back(heal);
    }
  }
}

void add_lossy_links(Rng& rng, const ScriptParams& params,
                     FaultScript& script) {
  std::uint32_t m = 1 + static_cast<std::uint32_t>(rng.below(3));
  for (std::uint32_t i = 0; i < m; ++i) {
    FaultAction fault;
    fault.at = pick_time(rng, 0, params.horizon / 2);
    fault.kind = ActionKind::kLinkFault;
    // Direction: one replica's inbound, outbound, or a specific pair; with
    // some probability hit the adapters' timeout-vote links instead.
    std::uint32_t a = static_cast<std::uint32_t>(rng.below(params.group.n));
    std::uint32_t b = static_cast<std::uint32_t>(rng.below(params.group.n));
    const char* prefix = rng.chance(0.25) ? "adapter/" : "replica/";
    switch (rng.below(3)) {
      case 0:
        fault.link.from = std::string(prefix) + "*";
        fault.link.to = prefix + std::to_string(a);
        break;
      case 1:
        fault.link.from = prefix + std::to_string(a);
        fault.link.to = std::string(prefix) + "*";
        break;
      default:
        fault.link.from = prefix + std::to_string(a);
        fault.link.to = prefix + std::to_string(b == a ? (b + 1) %
                                                   params.group.n : b);
        break;
    }
    // Rates low enough that client retransmission + view changes keep the
    // system live until the heal point.
    fault.link.policy.drop_prob = 0.05 + 0.3 * rng.uniform();
    if (rng.chance(0.5)) fault.link.policy.dup_prob = 0.25 * rng.uniform();
    if (rng.chance(0.5)) {
      fault.link.policy.extra_delay =
          static_cast<SimTime>(rng.below(millis(20)));
    }
    if (rng.chance(0.5)) {
      fault.link.policy.jitter = static_cast<SimTime>(rng.below(millis(30)));
    }
    script.actions.push_back(fault);
    if (rng.chance(0.7)) {
      FaultAction heal = fault;
      heal.kind = ActionKind::kHealLink;
      heal.link.heal = true;
      heal.link.policy = sim::LinkPolicy{};
      heal.at = pick_time(rng, fault.at + millis(200), params.horizon);
      script.actions.push_back(heal);
    }
  }
}

void add_crash_restart_faults(Rng& rng, const ScriptParams& params,
                              const std::vector<std::uint32_t>& impaired,
                              FaultScript& script) {
  for (std::uint32_t replica : impaired) {
    SimTime start = pick_time(rng, params.horizon / 20, params.horizon / 2);
    FaultAction kill;
    kill.at = start;
    kill.kind = ActionKind::kKillReplica;
    kill.replica = replica;
    script.actions.push_back(kill);
    if (rng.chance(0.8)) {
      // Supervised restart before the horizon; otherwise the drain-phase
      // heal restarts it (a replica that stays down past the horizon).
      FaultAction restart = kill;
      restart.kind = ActionKind::kRestartReplica;
      restart.at = pick_time(rng, start + millis(300), params.horizon);
      script.actions.push_back(restart);
    }
  }
}

// The proactive-recovery attack the key-epoch machinery exists to defeat:
// an adversary compromises a replica, the operator reincarnates it (kill +
// durable restart, which bumps its session-key epoch), and the adversary —
// who walked away with the pre-reincarnation session keys — replays forged
// traffic with them after the handover window closed. Every forged message
// must die at the receivers' epoch policy.
void add_compromise_recover_faults(Rng& rng, const ScriptParams& params,
                                   const std::vector<std::uint32_t>& impaired,
                                   FaultScript& script) {
  if (impaired.empty()) return;
  std::uint32_t victim = impaired.front();

  static constexpr bft::ByzantineMode kModes[] = {
      bft::ByzantineMode::kSilent, bft::ByzantineMode::kCorruptReplies,
      bft::ByzantineMode::kCorruptVotes, bft::ByzantineMode::kEquivocate};
  FaultAction compromise;
  compromise.at = pick_time(rng, params.horizon / 20, params.horizon / 3);
  compromise.kind = ActionKind::kSetByzantine;
  compromise.replica = victim;
  compromise.mode = kModes[rng.below(4)];
  script.actions.push_back(compromise);

  FaultAction kill;
  kill.at = pick_time(rng, compromise.at + millis(200), params.horizon / 2);
  kill.kind = ActionKind::kKillReplica;
  kill.replica = victim;
  script.actions.push_back(kill);

  FaultAction restart = kill;
  restart.kind = ActionKind::kRestartReplica;
  restart.at = kill.at + millis(100) +
               static_cast<SimTime>(rng.below(millis(200)));
  script.actions.push_back(restart);

  // Scheduled well past the engine's 250 ms handover window, measured from
  // the restart (peers adopt the new epoch within the victim's first
  // rejoin messages): the stolen epoch is stale by the time it is replayed.
  FaultAction replay;
  replay.at = restart.at + millis(700) +
              static_cast<SimTime>(rng.below(millis(300)));
  replay.kind = ActionKind::kReplayStolenKeys;
  replay.replica = victim;
  replay.count = 3 + rng.below(6);
  script.actions.push_back(replay);
}

void add_request_flood(Rng& rng, const ScriptParams& params,
                       FaultScript& script) {
  std::uint32_t bursts = 2 + static_cast<std::uint32_t>(rng.below(3));
  for (std::uint32_t i = 0; i < bursts; ++i) {
    FaultAction flood;
    flood.at = pick_time(rng, params.horizon / 10, params.horizon * 2 / 3);
    flood.kind = ActionKind::kUpdateFlood;
    flood.count = 200 + rng.below(601);
    script.actions.push_back(flood);
  }
}

// Gray failures: up to f replicas get slow without ever misbehaving. Each
// victim draws one or two impairments (extra per-message CPU, fsync stalls,
// timer skew) with magnitudes that thin the liveness margin but stay below
// outright leader-suspect territory for a correct deployment, plus usually a
// clear before the horizon (the drain heal clears stragglers).
void add_gray_failures(Rng& rng, const ScriptParams& params,
                       const std::vector<std::uint32_t>& impaired,
                       FaultScript& script) {
  for (std::uint32_t replica : impaired) {
    SimTime start = pick_time(rng, params.horizon / 20, params.horizon / 2);
    std::uint32_t impairments = 1 + static_cast<std::uint32_t>(rng.below(2));
    for (std::uint32_t i = 0; i < impairments; ++i) {
      FaultAction gray;
      gray.at = pick_time(rng, start, params.horizon * 2 / 3);
      gray.replica = replica;
      switch (rng.below(3)) {
        case 0:
          gray.kind = ActionKind::kGraySlow;
          gray.count = 200 + rng.below(1800);  // 0.2–2 ms per message
          break;
        case 1:
          gray.kind = ActionKind::kGrayFsyncStall;
          gray.count = 500 + rng.below(4500);  // 0.5–5 ms per fsync
          break;
        default:
          gray.kind = ActionKind::kGrayTimerSkew;
          // 120%–300% slow clock, or occasionally a fast one (60–90%).
          gray.count = rng.chance(0.25) ? 60 + rng.below(31)
                                        : 120 + rng.below(181);
          break;
      }
      script.actions.push_back(gray);
    }
    if (rng.chance(0.6)) {
      FaultAction clear;
      clear.at = pick_time(rng, start + millis(300), params.horizon);
      clear.kind = ActionKind::kGrayClear;
      clear.replica = replica;
      script.actions.push_back(clear);
    }
  }
}

void add_rtu_faults(Rng& rng, const ScriptParams& params,
                    FaultScript& script) {
  if (!params.has_rtu) return;
  std::uint32_t m = 1 + static_cast<std::uint32_t>(rng.below(3));
  for (std::uint32_t i = 0; i < m; ++i) {
    FaultAction fault;
    fault.at = pick_time(rng, params.horizon / 10, params.horizon);
    if (rng.chance(0.6)) {
      // Swallowed requests are the logical-timeout protocol's reason to
      // exist; they also eat polls, which is harmless noise.
      fault.kind = ActionKind::kRtuSwallowRequests;
      fault.count = 1 + rng.below(5);
    } else {
      fault.kind = ActionKind::kRtuFailWrites;
      fault.count = 1 + rng.below(3);
    }
    script.actions.push_back(fault);
  }
}

}  // namespace

const char* family_name(ScenarioFamily family) {
  switch (family) {
    case ScenarioFamily::kByzantineReplicas:
      return "byzantine";
    case ScenarioFamily::kPartitions:
      return "partitions";
    case ScenarioFamily::kLossyLinks:
      return "lossy-links";
    case ScenarioFamily::kRtuFaults:
      return "rtu-faults";
    case ScenarioFamily::kCrashRestart:
      return "crash-restart";
    case ScenarioFamily::kCompromiseRecover:
      return "compromise-recover";
    case ScenarioFamily::kRequestFlood:
      return "request-flood";
    case ScenarioFamily::kMixed:
      return "mixed";
    case ScenarioFamily::kGrayFailure:
      return "gray-failure";
  }
  return "?";
}

bool parse_family(const std::string& name, ScenarioFamily& out) {
  for (ScenarioFamily family : kAllFamilies) {
    if (name == family_name(family)) {
      out = family;
      return true;
    }
  }
  return false;
}

std::string family_list() {
  std::string out;
  for (ScenarioFamily family : kAllFamilies) {
    if (!out.empty()) out += "|";
    out += family_name(family);
  }
  return out;
}

std::string FaultAction::describe() const {
  switch (kind) {
    case ActionKind::kSetByzantine:
      return at_ms(at) + " replica " + std::to_string(replica) + " -> " +
             mode_name(mode);
    case ActionKind::kClearByzantine:
      return at_ms(at) + " replica " + std::to_string(replica) + " reimaged";
    case ActionKind::kCrashReplica:
      return at_ms(at) + " replica " + std::to_string(replica) + " crashes";
    case ActionKind::kRecoverReplica:
      return at_ms(at) + " replica " + std::to_string(replica) + " recovers";
    case ActionKind::kIsolateReplica:
      return at_ms(at) + " replica " + std::to_string(replica) + " isolated";
    case ActionKind::kHealReplica:
      return at_ms(at) + " replica " + std::to_string(replica) + " healed";
    case ActionKind::kLinkFault: {
      char policy[96];
      std::snprintf(policy, sizeof(policy),
                    " drop=%.2f dup=%.2f delay=%lldms jitter=%lldms",
                    link.policy.drop_prob, link.policy.dup_prob,
                    static_cast<long long>(link.policy.extra_delay / millis(1)),
                    static_cast<long long>(link.policy.jitter / millis(1)));
      return at_ms(at) + " link " + link.from + " -> " + link.to + policy;
    }
    case ActionKind::kHealLink:
      return at_ms(at) + " heal link " + link.from + " -> " + link.to;
    case ActionKind::kRtuSwallowRequests:
      return at_ms(at) + " rtu swallows " + std::to_string(count) +
             " requests";
    case ActionKind::kRtuFailWrites:
      return at_ms(at) + " rtu fails " + std::to_string(count) + " writes";
    case ActionKind::kKillReplica:
      return at_ms(at) + " replica " + std::to_string(replica) + " killed -9";
    case ActionKind::kRestartReplica:
      return at_ms(at) + " replica " + std::to_string(replica) + " restarted";
    case ActionKind::kReplayStolenKeys:
      return at_ms(at) + " adversary replays " + std::to_string(count) +
             " forged messages with replica " + std::to_string(replica) +
             "'s stolen keys";
    case ActionKind::kUpdateFlood:
      return at_ms(at) + " frontend floods " + std::to_string(count) +
             " updates";
    case ActionKind::kGraySlow:
      return at_ms(at) + " replica " + std::to_string(replica) +
             " gray-slow +" + std::to_string(count) + "us/msg";
    case ActionKind::kGrayFsyncStall:
      return at_ms(at) + " replica " + std::to_string(replica) +
             " fsync stalls " + std::to_string(count) + "us";
    case ActionKind::kGrayTimerSkew:
      return at_ms(at) + " replica " + std::to_string(replica) +
             " timer skew " + std::to_string(count) + "%";
    case ActionKind::kGrayClear:
      return at_ms(at) + " replica " + std::to_string(replica) +
             " gray impairments cleared";
  }
  return "?";
}

std::string FaultScript::describe() const {
  std::string out;
  for (const FaultAction& action : actions) {
    if (!out.empty()) out += "; ";
    out += action.describe();
  }
  return out.empty() ? "(no faults)" : out;
}

FaultScript generate_script(ScenarioFamily family, const ScriptParams& params,
                            std::uint64_t seed) {
  // Mix the family into the seed so the same seed gives independent scripts
  // per family.
  std::uint64_t mixed = seed * 0x9e3779b97f4a7c15ULL +
                        static_cast<std::uint64_t>(family) + 1;
  Rng rng(mixed);
  FaultScript script;
  std::vector<std::uint32_t> impaired = pick_impaired_set(rng, params.group);

  switch (family) {
    case ScenarioFamily::kByzantineReplicas:
      add_byzantine_faults(rng, params, impaired, script);
      break;
    case ScenarioFamily::kPartitions:
      add_partition_faults(rng, params, impaired, script);
      break;
    case ScenarioFamily::kLossyLinks:
      add_lossy_links(rng, params, script);
      break;
    case ScenarioFamily::kRtuFaults:
      add_rtu_faults(rng, params, script);
      break;
    case ScenarioFamily::kCrashRestart:
      add_crash_restart_faults(rng, params, impaired, script);
      break;
    case ScenarioFamily::kCompromiseRecover:
      add_compromise_recover_faults(rng, params, impaired, script);
      break;
    case ScenarioFamily::kRequestFlood:
      add_request_flood(rng, params, script);
      break;
    case ScenarioFamily::kMixed: {
      if (!impaired.empty()) {
        std::vector<std::uint32_t> one{impaired.front()};
        if (rng.chance(0.5)) {
          add_byzantine_faults(rng, params, one, script);
        } else {
          add_partition_faults(rng, params, one, script);
        }
      }
      add_lossy_links(rng, params, script);
      add_rtu_faults(rng, params, script);
      break;
    }
    case ScenarioFamily::kGrayFailure:
      add_gray_failures(rng, params, impaired, script);
      break;
  }

  std::stable_sort(script.actions.begin(), script.actions.end(),
                   [](const FaultAction& a, const FaultAction& b) {
                     return a.at < b.at;
                   });
  return script;
}

}  // namespace ss::chaos
