// Soak campaigns: minutes of continuous, phased fault injection against the
// example plants (ROADMAP item 5's long-running remainder).
//
// Where swarm.cc judges one short script per run, a campaign strings many
// phases together over one live deployment: each phase draws a scenario
// family from a seeded shuffle of ALL families (including gray failures,
// which also overlay other families' phases), injects its faults, heals,
// and audits — then the next phase begins. Three judgements run on top of
// the InvariantChecker's always-on safety invariants:
//
//  * liveness watchdog — tracks the decide frontier plus client-visible
//    write completions every `watchdog_window`; "no progress for a full
//    window while a correct quorum is connected" is a first-class violation
//    (flight-recorder dump, minimizable script), not a hang;
//  * phase audits — between phases, the correct live replicas' decide
//    frontiers must stay within a bounded spread (a replica silently left
//    behind is a bug even when agreement still holds);
//  * bounded recovery — after each heal, some client-visible completion
//    must land within `recovery_bound` (the adaptive retransmission layer's
//    post-heal fast reset is what makes this bound hold).
//
// A campaign is a pure function of (options): same seed, same phase
// schedule, same faults, same verdict. The flattened script replays and
// delta-debugs like any swarm script.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/fault_script.h"
#include "chaos/invariant_checker.h"

namespace ss::chaos {

/// Which example plant the campaign drives (mirrors examples/power_grid.cpp
/// and examples/water_pipeline.cpp).
enum class Plant {
  kPowerGrid,      ///< substations: voltage telemetry + breaker controls
  kWaterPipeline,  ///< pump stations: pressure telemetry + pump speeds
};

const char* plant_name(Plant plant);
bool parse_plant(const std::string& name, Plant& out);

struct CampaignOptions {
  Plant plant = Plant::kPowerGrid;
  Protocol protocol = Protocol::kPbft;
  std::uint32_t f = 1;
  std::uint64_t seed = 1;
  SimTime duration = seconds(60);  ///< fault-injection window (sim time)
  SimTime phase = seconds(4);      ///< one phase: inject, heal, audit
  SimTime watchdog_window = seconds(2);
  SimTime write_period = millis(200);  ///< operator write cadence
  /// Post-heal bound: after every heal point, a client-visible write
  /// completion must land within this long.
  SimTime recovery_bound = seconds(2);
  /// Test hook (0 = off): at this offset, silently isolate every replica
  /// WITHOUT the campaign's availability bookkeeping seeing it — an
  /// artificial wedge the liveness watchdog must convert into a violation.
  SimTime wedge_at = 0;
};

/// One phase of the rolling schedule. Action offsets inside `script` are
/// ABSOLUTE campaign offsets (phase start already added), so a flattened
/// campaign script replays without the plan.
struct CampaignPhase {
  ScenarioFamily family = ScenarioFamily::kMixed;
  bool gray_overlay = false;  ///< gray-failure script layered on top
  SimTime start = 0;
  std::uint64_t seed = 0;  ///< the phase script's own seed
  FaultScript script;
};

struct CampaignPlan {
  std::vector<CampaignPhase> phases;

  /// All actions in one script, sorted by absolute offset.
  FaultScript flatten() const;
  std::string describe() const;
};

struct CampaignReport {
  CampaignPlan plan;
  std::vector<Violation> violations;
  std::uint64_t decisions = 0;
  std::uint64_t writes_issued = 0;
  std::uint64_t writes_completed = 0;
  std::uint64_t watchdog_checks = 0;
  std::uint64_t audits = 0;
  /// Slowest observed heal-to-first-completion interval (0 = none sampled).
  SimTime worst_recovery = 0;

  bool ok() const { return violations.empty(); }
  std::string summary() const;
};

/// Deterministically expands options into the phase schedule (pure).
CampaignPlan plan_campaign(const CampaignOptions& options);

/// Plans and runs the full campaign.
CampaignReport run_campaign(const CampaignOptions& options);

/// Runs an explicit flattened script under the campaign harness (heal/audit
/// cadence and watchdog still come from `options`) — the replay and
/// minimization path.
CampaignReport run_campaign_script(const CampaignOptions& options,
                                   const FaultScript& script);

struct CampaignMinimizeResult {
  FaultScript minimal;
  std::vector<std::size_t> kept;  ///< indices into the flattened script
  CampaignReport report;          ///< the minimal script's failing run
};

/// Shrinks a failing campaign (run_campaign(options) must report
/// violations) to a minimal failing action subset. Campaign scripts are an
/// order of magnitude longer than swarm scripts, so this uses chunked
/// ddmin — halves, quarters, ... then single actions — instead of the
/// swarm's single-action greedy loop.
CampaignMinimizeResult minimize_campaign(const CampaignOptions& options);

/// One-line replay command for examples/soak_campaign.
std::string campaign_repro_command(const CampaignOptions& options);

}  // namespace ss::chaos
