#include "chaos/swarm.h"

#include <cinttypes>
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>

#include "chaos/apply.h"
#include "common/rng.h"
#include "core/scada_link.h"
#include "crypto/keychain.h"
#include "rtu/driver.h"
#include "rtu/rtu.h"
#include "rtu/sensors.h"
#include "scada/handlers.h"

namespace ss::chaos {

namespace {

constexpr SimTime kWarmup = millis(300);
constexpr const char* kRtuEndpoint = "chaos/rtu";
/// Safety valve against accidental infinite message loops in a faulty run.
constexpr std::size_t kEventBudget = 20'000'000;

/// One full chaos run over a fresh deployment. Everything is seeded: the
/// deployment's network fault rng, the script (passed in), and the workload.
class ChaosRun {
 public:
  ChaosRun(const ChaosOptions& options, FaultScript script)
      : opt_(options),
        script_(std::move(script)),
        system_(make_options(options)),
        rtu_(system_.net(), kRtuEndpoint,
             rtu::RtuOptions{.sample_period = millis(100),
                             .seed = options.seed ^ 0x57075707ULL}),
        driver_(system_.net(), system_.frontend(),
                rtu::DriverOptions{.poll_period = millis(100)}),
        checker_(system_),
        applier_(system_, checker_) {
    applier_.add_rtu(&rtu_);
  }

  RunReport run() {
    build_plant();
    applier_.set_flood_target(tank_);
    checker_.attach();
    system_.loop().set_event_budget(kEventBudget);
    system_.start();
    rtu_.start();
    driver_.start();
    system_.run_until(system_.loop().now() + kWarmup);

    const SimTime t0 = system_.loop().now();
    for (const FaultAction& action : script_.actions) {
      system_.loop().schedule_at(t0 + action.at,
                                 [this, &action] { applier_.apply(action); });
    }
    system_.loop().schedule_at(t0 + opt_.horizon,
                               [this] { applier_.heal_world(); });

    stop_writes_at_ = t0 + opt_.horizon + opt_.drain / 2;
    schedule_next_write();

    // Drain with traffic flowing (lagging replicas need evidence to catch
    // up), then cut the telemetry source and let the system quiesce.
    system_.run_until(t0 + opt_.horizon + opt_.drain);
    system_.net().set_policy(core::kFrontendEndpoint,
                             core::kProxyFrontendEndpoint,
                             sim::LinkPolicy::cut_link());
    bool runaway = false;
    try {
      system_.run_until(t0 + opt_.horizon + opt_.drain + opt_.quiesce);
    } catch (const std::runtime_error& e) {
      runaway = true;
      checker_.add_violation("event-budget", e.what());
    }
    if (!runaway) {
      if (opt_.family == ScenarioFamily::kCrashRestart ||
          opt_.family == ScenarioFamily::kCompromiseRecover) {
        // Align checkpoints at the quiesced frontier so the checker compares
        // digests at one shared cid — in particular, a rejoined replica's
        // durable checkpoint must converge with the live quorum's.
        for (std::uint32_t i = 0; i < system_.n(); ++i) {
          if (!system_.replica(i).crashed()) {
            system_.replica(i).checkpoint_now();
          }
        }
        checker_.set_require_checkpoint_alignment(true);
      }
      checker_.final_check(/*quiesced=*/true, /*expect_liveness=*/true);
      check_family_invariants();
    }

    RunReport report;
    report.script = script_;
    report.violations = checker_.violations();
    report.decisions = checker_.decisions_observed();
    report.writes_issued = checker_.writes_issued();
    report.writes_completed = checker_.writes_completed();
    for (std::uint32_t i = 0; i < system_.n(); ++i) {
      report.view_changes += system_.replica_stats(i).view_changes;
      report.state_transfers += system_.replica_stats(i).state_transfers;
      report.epoch_rejections += system_.replica_stats(i).epoch_rejections;
      report.usig_rejections += system_.replica_stats(i).usig_rejections;
      report.equivocations += system_.replica_stats(i).equivocations_detected;
    }
    report.shed = system_.proxy_frontend().client_stats().shed;
    return report;
  }

 private:
  static core::ReplicatedOptions make_options(const ChaosOptions& options) {
    core::ReplicatedOptions out;
    out.group = GroupConfig::for_protocol(options.protocol, options.f);
    out.costs = sim::CostModel::zero();
    out.costs.hop_latency = micros(50);
    out.write_timeout = options.sabotage == Sabotage::kDisableLogicalTimeouts
                            ? 0
                            : millis(500);
    out.checkpoint_interval = 32;
    if (options.family == ScenarioFamily::kCrashRestart ||
        options.family == ScenarioFamily::kCompromiseRecover) {
      // Durable state dirs + a small checkpoint interval, so a kill landing
      // mid-run has both a checkpoint and a WAL suffix to recover from.
      out.durable = true;
      out.checkpoint_interval = 8;
    }
    if (options.family == ScenarioFamily::kCompromiseRecover) {
      // Short handover window: the scripted stolen-key replay (>= 700 ms
      // after the restart) must land after it closes, so every forged
      // old-epoch message is rejected rather than tolerated as handover.
      out.epoch_handover_window = millis(250);
    }
    if (options.family == ScenarioFamily::kRequestFlood) {
      // Edge backpressure under test: the flood must shed at the frontend
      // proxy instead of amplifying into the agreement group.
      out.frontend_max_inflight = 64;
    }
    // Vary the network's fault rng with the seed so probabilistic link
    // policies explore different drop patterns per run.
    std::uint64_t sm = options.seed;
    out.fault_seed = splitmix64(sm);
    return out;
  }

  void build_plant() {
    tank_ = system_.add_point("chaos/tank");
    pump_ = system_.add_point("chaos/pump", scada::Variant{1000.0});
    valve_ = system_.add_point("chaos/valve", scada::Variant{500.0});
    rtu_.add_sensor(0, std::make_unique<rtu::RampSignal>(10.0, 3.0),
                    rtu::RegisterScaling{0.1, 0.0});
    rtu_.add_actuator(1, 1000);
    rtu_.add_actuator(2, 500);
    driver_.bind_sensor(kRtuEndpoint, 0, rtu::RegisterScaling{0.1, 0.0},
                        tank_);
    driver_.bind_actuator(kRtuEndpoint, 1, rtu::RegisterScaling{1.0, 0.0},
                          pump_);
    driver_.bind_actuator(kRtuEndpoint, 2, rtu::RegisterScaling{1.0, 0.0},
                          valve_);
    system_.configure_masters([this](scada::ScadaMaster& master) {
      master.handlers(tank_).emplace<scada::MonitorHandler>(
          scada::MonitorHandler::Condition::kAbove, 95.0,
          scada::Severity::kCritical, /*edge_triggered=*/true);
      master.handlers(pump_).emplace<scada::BlockHandler>(0.0, 3000.0);
    });
  }

  void schedule_next_write() {
    system_.loop().schedule(opt_.write_period, [this] {
      if (system_.loop().now() >= stop_writes_at_) return;
      issue_write();
      schedule_next_write();
    });
  }

  void issue_write() {
    ++write_counter_;
    ItemId item = (write_counter_ % 2 == 0) ? pump_ : valve_;
    // Every 7th pump write is out of the Block handler's range: a
    // deterministic denial exercises the AE path under faults.
    double value = (item == pump_ && write_counter_ % 7 == 0)
                       ? 9000.0
                       : 500.0 + static_cast<double>(
                                     (write_counter_ * 137) % 2000);
    OpId op = system_.hmi().write(
        item, scada::Variant{value},
        [this](const scada::WriteResult& result) {
          checker_.note_write_completed(result.ctx.op, result.status);
        });
    checker_.note_write_issued(op);
  }

  /// Family-specific end-of-run judgements, on top of the checker's
  /// universal invariants.
  void check_family_invariants() {
    std::uint64_t stolen_sent = applier_.stolen_sent();
    if (opt_.family == ScenarioFamily::kCompromiseRecover &&
        stolen_sent > 0) {
      // Epoch flush: every forged old-epoch message died at a receiver.
      std::uint64_t rejections = 0;
      for (std::uint32_t i = 0; i < system_.n(); ++i) {
        rejections += system_.replica_stats(i).epoch_rejections;
      }
      if (rejections < stolen_sent) {
        checker_.add_violation(
            "epoch-flush",
            "only " + std::to_string(rejections) +
                " epoch rejections for " + std::to_string(stolen_sent) +
                " forged old-epoch messages");
      }
      // Post-recovery clean: the reincarnated victim runs a bumped key
      // epoch and no residual Byzantine mode.
      const std::optional<std::uint32_t>& replay_victim =
          applier_.replay_victim();
      if (replay_victim.has_value()) {
        bft::Replica& victim = system_.replica(*replay_victim);
        if (victim.key_epoch() == 0) {
          checker_.add_violation("key-refresh",
                                 "victim replica " +
                                     std::to_string(*replay_victim) +
                                     " still on key epoch 0 after "
                                     "reincarnation");
        }
        if (victim.byzantine() != bft::ByzantineMode::kNone) {
          checker_.add_violation("key-refresh",
                                 "victim replica " +
                                     std::to_string(*replay_victim) +
                                     " still Byzantine after reincarnation");
        }
      }
    }
    if (opt_.family == ScenarioFamily::kRequestFlood &&
        applier_.flooded() > 64 &&
        system_.proxy_frontend().client_stats().shed == 0) {
      checker_.add_violation(
          "backpressure",
          "flood of " + std::to_string(applier_.flooded()) +
              " updates never tripped the frontend inflight cap");
    }
  }

  ChaosOptions opt_;
  FaultScript script_;
  core::ReplicatedDeployment system_;
  rtu::Rtu rtu_;
  rtu::RtuDriver driver_;
  InvariantChecker checker_;
  ActionApplier applier_;
  ItemId tank_, pump_, valve_;
  SimTime stop_writes_at_ = 0;
  std::uint64_t write_counter_ = 0;
};

FaultScript subset(const FaultScript& script,
                   const std::vector<std::size_t>& kept) {
  FaultScript out;
  out.actions.reserve(kept.size());
  for (std::size_t index : kept) out.actions.push_back(script.actions[index]);
  return out;
}

}  // namespace

std::string RunReport::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%zu violations, %" PRIu64 " decisions, %" PRIu64 "/%" PRIu64
                " writes, %" PRIu64 " view changes, %" PRIu64
                " state transfers, %" PRIu64 " epoch rejections, %" PRIu64
                " shed",
                violations.size(), decisions, writes_completed, writes_issued,
                view_changes, state_transfers, epoch_rejections, shed);
  std::string out = buf;
  if (usig_rejections > 0 || equivocations > 0) {
    std::snprintf(buf, sizeof(buf),
                  ", %" PRIu64 " usig rejections, %" PRIu64
                  " equivocations detected",
                  usig_rejections, equivocations);
    out += buf;
  }
  return out;
}

RunReport run_script(const ChaosOptions& options, const FaultScript& script) {
  ChaosRun run(options, script);
  return run.run();
}

RunReport run_chaos(const ChaosOptions& options) {
  ScriptParams params;
  params.group = GroupConfig::for_protocol(options.protocol, options.f);
  params.horizon = options.horizon;
  params.has_rtu = true;
  return run_script(options,
                    generate_script(options.family, params, options.seed));
}

SweepReport run_sweep(const ChaosOptions& base, std::uint64_t first_seed,
                      std::uint64_t count) {
  SweepReport sweep;
  for (std::uint64_t i = 0; i < count; ++i) {
    ChaosOptions options = base;
    options.seed = first_seed + i;
    RunReport report = run_chaos(options);
    ++sweep.runs;
    sweep.decisions += report.decisions;
    sweep.writes_completed += report.writes_completed;
    if (!report.ok()) {
      ++sweep.failures;
      if (sweep.failing.size() < 3) {
        sweep.failing.emplace_back(options.seed, std::move(report));
      }
    }
  }
  return sweep;
}

std::string repro_command(const ChaosOptions& options,
                          const std::vector<std::size_t>* kept) {
  std::string cmd = "chaos_replay --family=";
  cmd += family_name(options.family);
  if (options.protocol != Protocol::kPbft) {
    cmd += " --protocol=";
    cmd += protocol_name(options.protocol);
  }
  cmd += " --f=" + std::to_string(options.f);
  char seed[32];
  std::snprintf(seed, sizeof(seed), " --seed=0x%" PRIx64, options.seed);
  cmd += seed;
  if (options.sabotage == Sabotage::kDisableLogicalTimeouts) {
    cmd += " --sabotage=no-timeouts";
  }
  if (kept != nullptr) {
    cmd += " --keep=";
    for (std::size_t i = 0; i < kept->size(); ++i) {
      if (i > 0) cmd += ",";
      cmd += std::to_string((*kept)[i]);
    }
  }
  return cmd;
}

MinimizeResult minimize(const ChaosOptions& options) {
  ScriptParams params;
  params.group = GroupConfig::for_protocol(options.protocol, options.f);
  params.horizon = options.horizon;
  params.has_rtu = true;
  FaultScript full = generate_script(options.family, params, options.seed);

  std::vector<std::size_t> kept(full.actions.size());
  for (std::size_t i = 0; i < kept.size(); ++i) kept[i] = i;

  RunReport last = run_script(options, full);
  // Greedy delta-debugging: repeatedly drop any single action whose removal
  // keeps the run failing, until no action can be dropped. Scripts are small
  // (<= ~10 actions), so the O(k^2) replays stay cheap and deterministic.
  bool shrunk = true;
  while (shrunk && !kept.empty()) {
    shrunk = false;
    for (std::size_t i = 0; i < kept.size(); ++i) {
      std::vector<std::size_t> candidate = kept;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      RunReport report = run_script(options, subset(full, candidate));
      if (!report.ok()) {
        kept = std::move(candidate);
        last = std::move(report);
        shrunk = true;
        break;
      }
    }
  }

  MinimizeResult result;
  result.minimal = subset(full, kept);
  result.kept = kept;
  result.report = std::move(last);
  result.repro = repro_command(options, &kept);
  return result;
}

}  // namespace ss::chaos
