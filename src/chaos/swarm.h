// The chaos engine: seeded scenario runs, swarm sweeps, and shrinking.
//
// One chaos run stands up a full ReplicatedDeployment (HMI, proxies, n=3f+1
// ProxyMasters, Frontend, a Modbus RTU + driver), wires an InvariantChecker
// into it, drives an operator workload, executes a generated FaultScript,
// then heals the world, drains, quiesces, and judges the invariants. The
// whole run is a pure function of (options, script): same seed, same
// verdict — which is what makes the swarm's one-line repro commands work.
//
// On a violation, `minimize` delta-debugs the fault script down to a
// minimal failing subset of actions and renders a replay command for the
// examples/chaos_replay tool.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "chaos/fault_script.h"
#include "chaos/invariant_checker.h"

namespace ss::chaos {

/// Deliberate misconfigurations for canary tests: each one must make the
/// checker report a violation, proving the harness can see real bugs.
enum class Sabotage {
  kNone,
  /// Disables the logical-timeout protocol (write_timeout = 0): a swallowed
  /// RTU reply then blocks its write forever — the exact failure the paper's
  /// §IV-D protocol exists to prevent.
  kDisableLogicalTimeouts,
};

struct ChaosOptions {
  ScenarioFamily family = ScenarioFamily::kByzantineReplicas;
  /// Agreement protocol under test: PBFT runs 3f+1 replicas, MinBFT 2f+1.
  Protocol protocol = Protocol::kPbft;
  std::uint32_t f = 1;
  std::uint64_t seed = 1;
  SimTime horizon = seconds(3);       ///< fault injections live in [0,horizon)
  SimTime drain = millis(1500);       ///< healed, traffic continues (catch-up)
  SimTime quiesce = seconds(2);       ///< input stopped before convergence
  SimTime write_period = millis(250); ///< operator write cadence
  Sabotage sabotage = Sabotage::kNone;
};

struct RunReport {
  FaultScript script;
  std::vector<Violation> violations;
  std::uint64_t decisions = 0;
  std::uint64_t writes_issued = 0;
  std::uint64_t writes_completed = 0;
  std::uint64_t view_changes = 0;
  std::uint64_t state_transfers = 0;
  std::uint64_t epoch_rejections = 0;  ///< old-epoch messages refused
  std::uint64_t shed = 0;              ///< updates shed by frontend backpressure
  std::uint64_t usig_rejections = 0;   ///< MinBFT: bad/stale USIG certs refused
  std::uint64_t equivocations = 0;     ///< MinBFT: conflicting certs detected

  bool ok() const { return violations.empty(); }
  std::string summary() const;
};

/// Generates the script for (family, f, seed) and runs it.
RunReport run_chaos(const ChaosOptions& options);

/// Runs an explicit script (replay / minimization path).
RunReport run_script(const ChaosOptions& options, const FaultScript& script);

struct SweepReport {
  std::uint64_t runs = 0;
  std::uint64_t failures = 0;
  std::uint64_t decisions = 0;
  std::uint64_t writes_completed = 0;
  /// First few failing seeds with their reports, for diagnostics.
  std::vector<std::pair<std::uint64_t, RunReport>> failing;

  bool ok() const { return failures == 0; }
};

/// Runs `count` seeds starting at `first_seed` for one scenario family.
SweepReport run_sweep(const ChaosOptions& base, std::uint64_t first_seed,
                      std::uint64_t count);

struct MinimizeResult {
  FaultScript minimal;
  std::vector<std::size_t> kept;  ///< indices into the generated script
  RunReport report;               ///< the minimal script's failing run
  std::string repro;              ///< one-line replay command
};

/// Shrinks a failing run (run_chaos(options) must report violations) to a
/// minimal failing subset of script actions by greedy delta-debugging.
MinimizeResult minimize(const ChaosOptions& options);

/// Renders the deterministic one-line repro command for a run; `kept`
/// restricts the generated script to the given action indices.
std::string repro_command(const ChaosOptions& options,
                          const std::vector<std::size_t>* kept = nullptr);

}  // namespace ss::chaos
