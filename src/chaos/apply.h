// Shared fault-action execution for the chaos engine.
//
// ActionApplier turns FaultActions into calls against a live
// ReplicatedDeployment — Byzantine mode switches, crashes, kills, isolation,
// link policies, RTU misbehaviour, stolen-key replays, update floods, and
// the gray-failure knobs. Both drivers use it: swarm.cc's single bounded
// scenario run and campaign.cc's rolling multi-phase soak, so a fault
// behaves identically whether it appears in a 3-second script or minute 4
// of a campaign.
//
// The applier also keeps the availability bookkeeping the liveness watchdog
// needs: which replicas are currently crashed or isolated, and therefore
// whether a correct quorum is even connected (no-progress is only a
// violation when progress was possible).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "chaos/fault_script.h"
#include "chaos/invariant_checker.h"
#include "core/replicated_deployment.h"
#include "rtu/rtu.h"

namespace ss::chaos {

class ActionApplier {
 public:
  ActionApplier(core::ReplicatedDeployment& system, InvariantChecker& checker)
      : system_(system), checker_(checker) {}

  /// Registers an RTU as a target for kRtuSwallowRequests/kRtuFailWrites.
  /// Multiple RTUs round-robin (campaigns drive plants with several).
  void add_rtu(rtu::Rtu* rtu) { rtus_.push_back(rtu); }

  /// The data point kUpdateFlood bursts through the frontend. Flood actions
  /// are ignored until this is set.
  void set_flood_target(ItemId item) { flood_target_ = item; }

  void apply(const FaultAction& action);

  /// Ends the adversary's reign: clears Byzantine modes and gray
  /// impairments, recovers/restarts downed replicas, lifts every link
  /// policy and isolation, stops RTU misbehaviour.
  void heal_world();

  /// True when enough correct, connected replicas exist for the protocol to
  /// make progress (n - f available: 2f+1 of 3f+1 under PBFT, f+1 of 2f+1
  /// under MinBFT). Gray replicas count — slow is not disconnected.
  bool quorum_connected() const;

  /// Replicas currently isolated by a kIsolateReplica still unhealed.
  const std::set<std::uint32_t>& isolated() const { return isolated_; }

  // Family-invariant inputs (see swarm.cc check_family_invariants).
  std::uint64_t stolen_sent() const { return stolen_sent_; }
  const std::optional<std::uint32_t>& replay_victim() const {
    return replay_victim_;
  }
  std::uint64_t flooded() const { return flooded_; }

 private:
  void replay_stolen_keys(std::uint32_t victim, std::uint64_t count);
  void clear_gray(std::uint32_t replica);

  core::ReplicatedDeployment& system_;
  InvariantChecker& checker_;
  std::vector<rtu::Rtu*> rtus_;
  std::optional<ItemId> flood_target_;

  std::set<std::uint32_t> isolated_;
  /// Session-key epoch each killed replica held when the adversary "left".
  std::map<std::uint32_t, std::uint32_t> stolen_epochs_;
  std::optional<std::uint32_t> replay_victim_;
  std::uint64_t stolen_sent_ = 0;  ///< forged old-epoch envelopes sent
  std::uint64_t flooded_ = 0;      ///< updates issued by kUpdateFlood
  std::uint64_t flood_counter_ = 0;
  std::size_t rtu_rr_ = 0;
};

}  // namespace ss::chaos
