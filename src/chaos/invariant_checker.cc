#include "chaos/invariant_checker.h"

#include <cinttypes>
#include <cstdio>

#include "obs/trace.h"

namespace ss::chaos {

namespace {

std::string hex_prefix(const crypto::Digest& digest) {
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%02x%02x%02x%02x", digest[0], digest[1],
                digest[2], digest[3]);
  return buf;
}

}  // namespace

InvariantChecker::InvariantChecker(core::ReplicatedDeployment& deployment)
    : dep_(deployment),
      impaired_(deployment.n(), false),
      last_batch_timestamp_(deployment.n(), 0) {}

void InvariantChecker::attach() {
  for (std::uint32_t i = 0; i < dep_.n(); ++i) {
    dep_.replica(i).set_decision_observer(
        [this, i](ConsensusId cid, const crypto::Digest& digest,
                  SimTime timestamp) {
          on_decision(i, cid, digest, timestamp);
        });
  }
  dep_.hmi().set_update_callback([this](const scada::ItemUpdate& update) {
    on_delivery(scada::ScadaMessage{update});
  });
  dep_.hmi().set_event_callback([this](const scada::EventUpdate& event) {
    on_delivery(scada::ScadaMessage{event});
  });
}

void InvariantChecker::set_impaired(std::uint32_t replica, bool impaired) {
  if (replica < impaired_.size()) impaired_[replica] = impaired;
}

void InvariantChecker::add_violation(const std::string& invariant,
                                     const std::string& detail) {
  violations_.push_back(Violation{invariant, detail, dep_.loop().now()});
  // First violation per checker: dump the flight recorder — the last few
  // thousand spans/log lines before the invariant broke. Only once, so a
  // cascading failure in a chaos sweep doesn't flood stderr.
  if (violations_.size() == 1) {
    std::fprintf(stderr,
                 "invariant violation [%s] at %" PRId64 "ns: %s\n",
                 invariant.c_str(), dep_.loop().now(), detail.c_str());
    obs::FlightRecorder::instance().dump(stderr);
  }
}

void InvariantChecker::on_decision(std::uint32_t replica, ConsensusId cid,
                                   const crypto::Digest& digest,
                                   SimTime timestamp) {
  ++decisions_observed_;
  bool correct = replica < impaired_.size() && !impaired_[replica];

  // Monotone deterministic timestamps (strict: make_batch always advances).
  SimTime last = last_batch_timestamp_[replica];
  if (correct && timestamp <= last) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "replica %u executed cid=%" PRIu64
                  " with timestamp %lld <= previous %lld",
                  replica, cid.value, static_cast<long long>(timestamp),
                  static_cast<long long>(last));
    add_violation("monotone-timestamps", buf);
  }
  last_batch_timestamp_[replica] = timestamp;

  if (!correct) return;

  // Agreement: every correct replica executes the same batch at each cid.
  auto [it, inserted] =
      decisions_.try_emplace(cid.value, DecisionRecord{digest, timestamp,
                                                       replica});
  if (inserted) return;
  if (it->second.digest != digest || it->second.timestamp != timestamp) {
    char buf[200];
    std::snprintf(buf, sizeof(buf),
                  "cid=%" PRIu64 ": replica %u executed %s@%lld but replica "
                  "%u executed %s@%lld",
                  cid.value, it->second.replica,
                  hex_prefix(it->second.digest).c_str(),
                  static_cast<long long>(it->second.timestamp), replica,
                  hex_prefix(digest).c_str(),
                  static_cast<long long>(timestamp));
    add_violation("agreement", buf);
  }
}

void InvariantChecker::on_delivery(const scada::ScadaMessage& msg) {
  scada::MsgContext ctx = scada::context_of(msg);
  DeliveryKey key{static_cast<std::uint8_t>(scada::kind_of(msg)),
                  ctx.cid.value, ctx.order, 0, ""};
  if (const auto* update = std::get_if<scada::ItemUpdate>(&msg)) {
    std::get<3>(key) = update->item.value;
  } else if (const auto* event = std::get_if<scada::EventUpdate>(&msg)) {
    std::get<3>(key) = event->event.item.value;
    std::get<4>(key) = event->event.code + "#" +
                       std::to_string(event->event.id.value);
  } else if (const auto* result = std::get_if<scada::WriteResult>(&msg)) {
    std::get<3>(key) = result->item.value;
  }

  crypto::Digest digest = scada::message_digest(msg);
  auto [it, inserted] = deliveries_.try_emplace(key, digest);
  if (inserted) return;
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "%s slot cid=%" PRIu64 " order=%u item=%u delivered twice (%s)",
                scada::scada_msg_kind_name(scada::kind_of(msg)), ctx.cid.value,
                ctx.order, std::get<3>(key),
                it->second == digest ? "byte-identical duplicate"
                                     : "conflicting payloads");
  add_violation(it->second == digest ? "exactly-once-delivery"
                                     : "voted-delivery-conflict",
                buf);
}

void InvariantChecker::note_write_issued(OpId op) {
  ++writes_issued_;
  writes_.try_emplace(op.value);
}

void InvariantChecker::note_write_completed(OpId op,
                                            scada::WriteStatus status) {
  WriteRecord& rec = writes_[op.value];
  ++rec.completions;
  rec.last_status = status;
  if (rec.completions == 1) {
    ++writes_completed_;
  } else {
    add_violation("write-exactly-once",
                  "op " + std::to_string(op.value) + " completed " +
                      std::to_string(rec.completions) + " times");
  }
}

void InvariantChecker::final_check(bool quiesced, bool expect_liveness) {
  if (expect_liveness) {
    for (const auto& [op, rec] : writes_) {
      if (rec.completions == 0) {
        add_violation("write-liveness",
                      "op " + std::to_string(op) +
                          " never completed (no WriteResult, no synthesized "
                          "timeout)");
      }
    }
    if (dep_.hmi().pending_writes() > 0) {
      add_violation("write-liveness",
                    std::to_string(dep_.hmi().pending_writes()) +
                        " writes still pending at the HMI");
    }
  }

  if (!quiesced) return;

  // Convergence after quiescence, over live & correct replicas only.
  bool have_reference = false;
  std::uint64_t reference_cid = 0;
  std::uint32_t reference_replica = 0;
  std::map<std::uint64_t, std::pair<crypto::Digest, std::uint32_t>>
      checkpoint_by_cid;
  std::uint32_t considered = 0;
  std::uint32_t with_checkpoint = 0;
  for (std::uint32_t i = 0; i < dep_.n(); ++i) {
    bft::Replica& replica = dep_.replica(i);
    if (replica.crashed() || impaired_[i]) continue;
    ++considered;
    std::uint64_t decided = replica.last_decided().value;
    if (!have_reference) {
      have_reference = true;
      reference_cid = decided;
      reference_replica = i;
    } else if (decided != reference_cid) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "after quiescence replica %u is at cid=%" PRIu64
                    " but replica %u is at cid=%" PRIu64,
                    i, decided, reference_replica, reference_cid);
      add_violation("convergence", buf);
    }
    if (replica.last_checkpoint_digest().has_value()) {
      ++with_checkpoint;
      std::uint64_t ckpt_cid = replica.last_checkpoint_cid().value;
      auto [it, inserted] = checkpoint_by_cid.try_emplace(
          ckpt_cid,
          std::make_pair(*replica.last_checkpoint_digest(), i));
      if (!inserted && it->second.first != *replica.last_checkpoint_digest()) {
        char buf[200];
        std::snprintf(buf, sizeof(buf),
                      "checkpoint at cid=%" PRIu64
                      " differs: replica %u has %s, replica %u has %s",
                      ckpt_cid, it->second.second,
                      hex_prefix(it->second.first).c_str(), i,
                      hex_prefix(*replica.last_checkpoint_digest()).c_str());
        add_violation("checkpoint-divergence", buf);
      }
    }
  }
  if (require_checkpoint_alignment_) {
    // The engine checkpointed every live correct replica at the quiesced
    // frontier, so all of them must report a checkpoint, at one shared cid.
    // Digest equality at that cid is enforced by the loop above.
    if (with_checkpoint < considered) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "only %u of %u live correct replicas hold a checkpoint "
                    "after forced alignment",
                    with_checkpoint, considered);
      add_violation("checkpoint-alignment", buf);
    } else if (checkpoint_by_cid.size() > 1) {
      std::string detail = "checkpoints at multiple cids after alignment:";
      for (const auto& [cid, entry] : checkpoint_by_cid) {
        detail += " cid=" + std::to_string(cid) + "@replica" +
                  std::to_string(entry.second);
      }
      add_violation("checkpoint-alignment", detail);
    }
  }
  if (!dep_.masters_converged()) {
    add_violation("convergence",
                  "master state digests differ after quiescence");
  }
}

}  // namespace ss::chaos
