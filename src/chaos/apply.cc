#include "chaos/apply.h"

#include "core/scada_link.h"
#include "crypto/keychain.h"

namespace ss::chaos {

void ActionApplier::apply(const FaultAction& action) {
  switch (action.kind) {
    case ActionKind::kSetByzantine:
      checker_.set_impaired(action.replica, true);
      system_.set_byzantine(action.replica, action.mode);
      break;
    case ActionKind::kClearByzantine:
      system_.set_byzantine(action.replica, bft::ByzantineMode::kNone);
      checker_.set_impaired(action.replica, false);
      break;
    case ActionKind::kCrashReplica:
      if (!system_.replica(action.replica).crashed()) {
        system_.crash_replica(action.replica);
      }
      break;
    case ActionKind::kRecoverReplica:
      if (system_.replica(action.replica).crashed()) {
        system_.recover_replica(action.replica);
      }
      break;
    case ActionKind::kIsolateReplica:
      system_.net().isolate(
          crypto::replica_principal(ReplicaId{action.replica}));
      system_.net().isolate(
          core::adapter_principal(ReplicaId{action.replica}));
      isolated_.insert(action.replica);
      break;
    case ActionKind::kHealReplica:
      system_.net().heal(
          crypto::replica_principal(ReplicaId{action.replica}));
      system_.net().heal(
          core::adapter_principal(ReplicaId{action.replica}));
      isolated_.erase(action.replica);
      break;
    case ActionKind::kLinkFault:
    case ActionKind::kHealLink:
      system_.net().apply(action.link);
      break;
    case ActionKind::kRtuSwallowRequests:
      if (!rtus_.empty()) {
        rtus_[rtu_rr_++ % rtus_.size()]->swallow_next_requests(action.count);
      }
      break;
    case ActionKind::kRtuFailWrites:
      if (!rtus_.empty()) {
        rtus_[rtu_rr_++ % rtus_.size()]->fail_next_writes(action.count);
      }
      break;
    case ActionKind::kKillReplica:
      if (!system_.replica(action.replica).crashed()) {
        // An adversary who had the replica captures its current session
        // keys on the way out; kReplayStolenKeys uses this epoch later.
        stolen_epochs_[action.replica] =
            system_.replica(action.replica).key_epoch();
        system_.kill_replica_process(action.replica);
      }
      break;
    case ActionKind::kRestartReplica:
      // No-op unless the replica is actually down from a kill.
      system_.restart_replica_process(action.replica);
      if (system_.replica(action.replica).byzantine() ==
          bft::ByzantineMode::kNone) {
        // Reincarnation reimages the replica (reboot() wipes any Byzantine
        // mode), so the checker holds it to the correct-replica invariants
        // again from here on.
        checker_.set_impaired(action.replica, false);
      }
      break;
    case ActionKind::kReplayStolenKeys:
      replay_stolen_keys(action.replica, action.count);
      break;
    case ActionKind::kUpdateFlood:
      // Telemetry burst kept below the plants' alarm thresholds: pure
      // request-rate pressure on the frontend path, not an alarm storm.
      if (flood_target_.has_value()) {
        for (std::uint64_t k = 0; k < action.count; ++k) {
          double value = 30.0 + static_cast<double>(flood_counter_++ % 50);
          system_.frontend().field_update(*flood_target_,
                                          scada::Variant{value});
          ++flooded_;
        }
      }
      break;
    case ActionKind::kGraySlow:
      system_.set_processing_delay(action.replica,
                                   micros(static_cast<SimTime>(action.count)));
      break;
    case ActionKind::kGrayFsyncStall:
      system_.set_fsync_stall(action.replica,
                              micros(static_cast<SimTime>(action.count)));
      break;
    case ActionKind::kGrayTimerSkew:
      system_.set_timer_skew(action.replica,
                             static_cast<double>(action.count) / 100.0);
      break;
    case ActionKind::kGrayClear:
      clear_gray(action.replica);
      break;
  }
}

void ActionApplier::clear_gray(std::uint32_t replica) {
  system_.set_processing_delay(replica, 0);
  system_.set_fsync_stall(replica, 0);
  system_.set_timer_skew(replica, 1.0);
}

/// Forges WRITE votes from `victim` MACed with the session keys of
/// `stolen_epochs_[victim]` — exactly what an adversary holding the
/// pre-reincarnation keys can produce. The MACs are genuine for that
/// epoch, so only the receivers' epoch recency policy stands between
/// these messages and the agreement state machine.
void ActionApplier::replay_stolen_keys(std::uint32_t victim,
                                       std::uint64_t count) {
  replay_victim_ = victim;
  auto it = stolen_epochs_.find(victim);
  std::uint32_t stolen = it != stolen_epochs_.end()
                             ? it->second
                             : system_.replica(victim).key_epoch();
  // Only messages carrying a genuinely stale epoch count toward the
  // epoch-flush invariant: a minimized script that dropped the kill leaves
  // the "stolen" keys current, and current-epoch traffic is legitimately
  // accepted (the ordinary agreement invariants still judge it).
  bool stale = stolen < system_.replica(victim).key_epoch();
  const std::string from = crypto::replica_principal(ReplicaId{victim});
  for (std::uint64_t k = 0; k < count; ++k) {
    bft::PhaseVote vote;
    vote.cid = ConsensusId{1 + k};
    vote.voter = ReplicaId{victim};
    Bytes body = vote.encode();
    for (std::uint32_t r = 0; r < system_.n(); ++r) {
      if (r == victim) continue;
      const std::string to = crypto::replica_principal(ReplicaId{r});
      bft::Envelope env;
      env.type = bft::MsgType::kWrite;
      env.sender = from;
      env.epoch = stolen;
      env.body = body;
      env.mac = system_.keys().mac(
          from, to, stolen,
          bft::envelope_mac_material(env.type, from, to, stolen, body));
      system_.net().send(from, to, env.encode());
      if (stale) ++stolen_sent_;
    }
  }
}

void ActionApplier::heal_world() {
  for (std::uint32_t i = 0; i < system_.n(); ++i) {
    if (system_.replica(i).byzantine() != bft::ByzantineMode::kNone) {
      system_.set_byzantine(i, bft::ByzantineMode::kNone);
    }
    checker_.set_impaired(i, false);
    clear_gray(i);
    if (system_.replica(i).crashed()) {
      if (system_.durable() && system_.replica_killed(i)) {
        system_.restart_replica_process(i);  // supervisor-style restart
      } else {
        system_.recover_replica(i);
      }
    }
    system_.net().heal(crypto::replica_principal(ReplicaId{i}));
    system_.net().heal(core::adapter_principal(ReplicaId{i}));
  }
  isolated_.clear();
  system_.net().clear_all_faults();
  for (rtu::Rtu* rtu : rtus_) {
    rtu->swallow_next_requests(0);
    rtu->fail_next_writes(0);
  }
}

bool ActionApplier::quorum_connected() const {
  std::uint32_t available = 0;
  for (std::uint32_t i = 0; i < system_.n(); ++i) {
    if (system_.replica(i).crashed()) continue;
    if (isolated_.count(i) > 0) continue;
    if (system_.replica(i).byzantine() != bft::ByzantineMode::kNone) continue;
    ++available;
  }
  return available >= system_.n() - system_.group().f;
}

}  // namespace ss::chaos
