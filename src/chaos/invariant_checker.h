// Cross-replica invariant checking over a live ReplicatedDeployment.
//
// The checker wires itself into the observation points the deployment
// exposes — per-replica decision observers, the HMI's update/event/write
// callbacks — and asserts the paper's safety and liveness properties:
//
//   * agreement — no two correct replicas execute different batches at the
//     same ConsensusId (and the deterministic batch timestamps match);
//   * monotone timestamps — each correct replica's executed-batch timestamps
//     are strictly increasing (the deterministic clock never goes back);
//   * exactly-once HMI delivery — the voted push stream never hands the HMI
//     two messages for the same (kind, cid, order, item) slot, neither a
//     byte-identical duplicate nor a conflicting payload;
//   * write liveness — every WriteValue the HMI issues completes (possibly
//     with a synthesized timeout result) exactly once while a correct quorum
//     is alive;
//   * convergence after quiescence — once faults heal and input stops, all
//     correct replicas reach the same decision number, identical master
//     state digests, and identical checkpoint digests per checkpoint cid.
//
// "Correct" tracking is fed by the chaos engine: a replica under a scripted
// Byzantine mode is exempt from the per-replica checks while impaired (its
// divergence is permitted by the fault model; masking it is the system's
// job, which the HMI-side invariants still verify).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "core/replicated_deployment.h"

namespace ss::chaos {

struct Violation {
  std::string invariant;  ///< short name, e.g. "agreement"
  std::string detail;
  SimTime at = 0;
};

class InvariantChecker {
 public:
  explicit InvariantChecker(core::ReplicatedDeployment& deployment);

  /// Installs decision observers and HMI callbacks. Call once, before
  /// traffic starts.
  void attach();

  /// The engine marks replicas impaired/restored as the script executes.
  void set_impaired(std::uint32_t replica, bool impaired);

  /// When set, final_check(quiesced) additionally requires every live
  /// correct replica to hold a checkpoint at one shared cid (the engine
  /// forces checkpoint_now() on all of them after quiescence, so a rejoined
  /// replica whose durable state failed to converge shows up as either a
  /// missing checkpoint or a divergent digest).
  void set_require_checkpoint_alignment(bool require) {
    require_checkpoint_alignment_ = require;
  }

  /// The engine reports every write it issues; completion is observed via
  /// the HMI write callback the engine forwards to note_write_completed.
  void note_write_issued(OpId op);
  void note_write_completed(OpId op, scada::WriteStatus status);

  /// End-of-run judgement. `quiesced` asserts the convergence invariants
  /// (only meaningful after faults healed and input stopped);
  /// `expect_liveness` asserts every issued write completed (true whenever
  /// the script stayed within the fault budget and faults were healed with
  /// enough drain time).
  void final_check(bool quiesced, bool expect_liveness);

  const std::vector<Violation>& violations() const { return violations_; }
  std::uint64_t decisions_observed() const { return decisions_observed_; }
  std::uint64_t writes_issued() const { return writes_issued_; }
  std::uint64_t writes_completed() const { return writes_completed_; }

  void add_violation(const std::string& invariant, const std::string& detail);

 private:
  struct DecisionRecord {
    crypto::Digest digest{};
    SimTime timestamp = 0;
    std::uint32_t replica = 0;
  };
  // kind tag, cid, order, item, event code
  using DeliveryKey =
      std::tuple<std::uint8_t, std::uint64_t, std::uint32_t, std::uint32_t,
                 std::string>;
  struct WriteRecord {
    std::uint64_t completions = 0;
    scada::WriteStatus last_status = scada::WriteStatus::kOk;
  };

  void on_decision(std::uint32_t replica, ConsensusId cid,
                   const crypto::Digest& digest, SimTime timestamp);
  void on_delivery(const scada::ScadaMessage& msg);

  core::ReplicatedDeployment& dep_;
  std::vector<bool> impaired_;
  std::vector<SimTime> last_batch_timestamp_;
  std::map<std::uint64_t, DecisionRecord> decisions_;  // by cid (correct only)
  std::map<DeliveryKey, crypto::Digest> deliveries_;
  std::map<std::uint64_t, WriteRecord> writes_;  // by op id
  std::vector<Violation> violations_;
  bool require_checkpoint_alignment_ = false;
  std::uint64_t decisions_observed_ = 0;
  std::uint64_t writes_issued_ = 0;
  std::uint64_t writes_completed_ = 0;
};

}  // namespace ss::chaos
