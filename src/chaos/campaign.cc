#include "chaos/campaign.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <stdexcept>

#include "chaos/apply.h"
#include "common/rng.h"
#include "core/scada_link.h"
#include "crypto/keychain.h"
#include "rtu/driver.h"
#include "rtu/rtu.h"
#include "rtu/sensors.h"
#include "scada/handlers.h"

namespace ss::chaos {

namespace {

constexpr SimTime kWarmup = millis(300);
constexpr SimTime kDrain = millis(1500);
constexpr SimTime kQuiesce = seconds(2);
/// Phase-audit bound on the correct live replicas' decide-frontier spread:
/// generous against in-flight catch-up (state transfer triggers at gap 64),
/// tight enough that a replica silently left behind for a whole phase fails.
constexpr std::uint64_t kMaxFrontierSpread = 256;

/// One live soak over a fresh deployment: the plant, the workload, the
/// watchdog, the audits, and the recovery-bound bookkeeping. The fault
/// schedule arrives as a flattened script (absolute offsets); heal points
/// are a pure function of the options, so a minimized script subset runs
/// under the identical harness.
class CampaignRun {
 public:
  CampaignRun(const CampaignOptions& options, FaultScript script)
      : opt_(options),
        script_(std::move(script)),
        system_(make_options(options)),
        driver_(system_.net(), system_.frontend(),
                rtu::DriverOptions{.poll_period = millis(100)}),
        checker_(system_),
        applier_(system_, checker_) {}

  CampaignReport run() {
    build_plant();
    checker_.attach();
    const std::uint64_t sim_seconds =
        static_cast<std::uint64_t>(opt_.duration / seconds(1)) + 1;
    system_.loop().set_event_budget(40'000'000 + sim_seconds * 12'000'000);
    system_.start();
    for (auto& rtu : rtus_) rtu->start();
    driver_.start();
    system_.run_until(system_.loop().now() + kWarmup);

    const SimTime t0 = system_.loop().now();
    for (const FaultAction& action : script_.actions) {
      system_.loop().schedule_at(t0 + action.at,
                                 [this, &action] { applier_.apply(action); });
    }

    // Heal + audit cadence: one heal point per phase (and a final one at
    // the end of the fault window), each followed by a frontier audit.
    const SimTime phase = std::max<SimTime>(opt_.phase, millis(500));
    const std::uint64_t phases =
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                       opt_.duration / phase));
    const SimTime end = t0 + static_cast<SimTime>(phases) * phase;
    for (std::uint64_t k = 0; k < phases; ++k) {
      SimTime start = t0 + static_cast<SimTime>(k) * phase;
      system_.loop().schedule_at(start + phase * 3 / 4,
                                 [this] { do_heal(); });
      system_.loop().schedule_at(start + phase * 7 / 8, [this] { audit(); });
    }
    system_.loop().schedule_at(end, [this] { do_heal(); });

    if (opt_.wedge_at > 0) {
      system_.loop().schedule_at(t0 + opt_.wedge_at, [this] { wedge(); });
    }

    stop_writes_at_ = end + kDrain / 2;
    watchdog_stop_at_ = stop_writes_at_;
    schedule_next_write();
    system_.loop().schedule(opt_.watchdog_window, [this] { watchdog(); });

    // Drain with traffic flowing (lagging replicas need evidence to catch
    // up), then cut the telemetry source and let the system quiesce.
    bool runaway = false;
    try {
      system_.run_until(end + kDrain);
      system_.net().set_policy(core::kFrontendEndpoint,
                               core::kProxyFrontendEndpoint,
                               sim::LinkPolicy::cut_link());
      system_.run_until(end + kDrain + kQuiesce);
    } catch (const std::runtime_error& e) {
      runaway = true;
      checker_.add_violation("event-budget", e.what());
    }
    if (!runaway) {
      if (heal_pending_ && checker_.writes_issued() > 0) {
        checker_.add_violation(
            "recovery-time",
            "no client-visible completion after the last heal point");
      } else if (worst_recovery_ > opt_.recovery_bound) {
        checker_.add_violation(
            "recovery-time",
            "slowest post-heal recovery " +
                std::to_string(worst_recovery_ / millis(1)) + "ms exceeds " +
                std::to_string(opt_.recovery_bound / millis(1)) + "ms bound");
      }
      // Campaigns always run durable: align checkpoints at the quiesced
      // frontier so rejoined replicas' durable state is judged too.
      for (std::uint32_t i = 0; i < system_.n(); ++i) {
        if (!system_.replica(i).crashed()) system_.replica(i).checkpoint_now();
      }
      checker_.set_require_checkpoint_alignment(true);
      checker_.final_check(/*quiesced=*/true, /*expect_liveness=*/true);
    }

    CampaignReport report;
    report.violations = checker_.violations();
    report.decisions = checker_.decisions_observed();
    report.writes_issued = checker_.writes_issued();
    report.writes_completed = checker_.writes_completed();
    report.watchdog_checks = watchdog_checks_;
    report.audits = audits_;
    report.worst_recovery = worst_recovery_;
    return report;
  }

 private:
  static core::ReplicatedOptions make_options(const CampaignOptions& options) {
    core::ReplicatedOptions out;
    out.group = GroupConfig::for_protocol(options.protocol, options.f);
    out.costs = sim::CostModel::zero();
    out.costs.hop_latency = micros(50);
    out.write_timeout = millis(500);
    // Durable replicas with a small checkpoint interval: any phase may kill
    // and reincarnate, so there must always be recent state on "disk".
    out.durable = true;
    out.checkpoint_interval = 8;
    out.epoch_handover_window = millis(250);
    out.frontend_max_inflight = 64;
    std::uint64_t sm = options.seed ^ 0xCA3ULL;
    out.fault_seed = splitmix64(sm);
    return out;
  }

  /// Builds the plant the campaign soaks — scaled-down twins of the example
  /// deployments, with alarm and range handlers so the workload exercises
  /// monitoring and denial paths, not just plain ordering.
  void build_plant() {
    if (opt_.plant == Plant::kPowerGrid) {
      // Three substations: sine-wave feeder voltage + a breaker control.
      // Substation 1's feeder swings above the 245 V alarm threshold, so
      // the campaign carries real event traffic throughout.
      for (std::uint32_t s = 0; s < 3; ++s) {
        std::string base = "substation/" + std::to_string(s);
        ItemId voltage = system_.add_point(base + "/voltage");
        ItemId breaker = system_.add_point(base + "/breaker",
                                           scada::Variant{1.0});
        auto rtu = std::make_unique<rtu::Rtu>(
            system_.net(), "campaign/rtu/" + std::to_string(s),
            rtu::RtuOptions{.sample_period = millis(100),
                            .seed = opt_.seed ^ (0x9D0ULL + s)});
        double mean = s == 1 ? 240.0 : 230.0;
        double amplitude = s == 1 ? 8.0 : 4.0;
        rtu->add_sensor(0,
                        std::make_unique<rtu::SineSignal>(
                            mean, amplitude, seconds(8),
                            0.5 * static_cast<double>(s)),
                        rtu::RegisterScaling{0.01, 0.0});
        rtu->add_actuator(1, 1);
        driver_.bind_sensor(rtu->endpoint(), 0,
                            rtu::RegisterScaling{0.01, 0.0}, voltage);
        driver_.bind_actuator(rtu->endpoint(), 1,
                              rtu::RegisterScaling{1.0, 0.0}, breaker);
        applier_.add_rtu(rtu.get());
        rtus_.push_back(std::move(rtu));
        telemetry_.push_back(voltage);
        controls_.push_back(breaker);
      }
      system_.configure_masters([this](scada::ScadaMaster& master) {
        for (ItemId voltage : telemetry_) {
          master.handlers(voltage).emplace<scada::MonitorHandler>(
              scada::MonitorHandler::Condition::kAbove, 245.0,
              scada::Severity::kCritical, /*edge_triggered=*/true);
        }
        for (ItemId breaker : controls_) {
          master.handlers(breaker).emplace<scada::BlockHandler>(0.0, 1.0);
        }
      });
      control_lo_ = 0.0;
      control_hi_ = 1.0;
      control_bad_ = 5.0;
    } else {
      // Two pump stations: random-walk line pressure + a pump-speed control
      // range-checked by a Block handler.
      for (std::uint32_t s = 0; s < 2; ++s) {
        std::string base = "pipeline/" + std::to_string(s);
        ItemId pressure = system_.add_point(base + "/pressure");
        ItemId pump = system_.add_point(base + "/pump",
                                        scada::Variant{1000.0});
        auto rtu = std::make_unique<rtu::Rtu>(
            system_.net(), "campaign/rtu/" + std::to_string(s),
            rtu::RtuOptions{.sample_period = millis(100),
                            .seed = opt_.seed ^ (0x3A7ULL + s)});
        rtu->add_sensor(0,
                        std::make_unique<rtu::RandomWalkSignal>(
                            50.0 + 10.0 * s, 2.0, 20.0, 90.0),
                        rtu::RegisterScaling{0.1, 0.0});
        rtu->add_actuator(1, 1000);
        driver_.bind_sensor(rtu->endpoint(), 0,
                            rtu::RegisterScaling{0.1, 0.0}, pressure);
        driver_.bind_actuator(rtu->endpoint(), 1,
                              rtu::RegisterScaling{1.0, 0.0}, pump);
        applier_.add_rtu(rtu.get());
        rtus_.push_back(std::move(rtu));
        telemetry_.push_back(pressure);
        controls_.push_back(pump);
      }
      system_.configure_masters([this](scada::ScadaMaster& master) {
        for (ItemId pressure : telemetry_) {
          master.handlers(pressure).emplace<scada::MonitorHandler>(
              scada::MonitorHandler::Condition::kAbove, 85.0,
              scada::Severity::kAlarm, /*edge_triggered=*/true);
        }
        for (ItemId pump : controls_) {
          master.handlers(pump).emplace<scada::BlockHandler>(600.0, 3000.0);
        }
      });
      control_lo_ = 600.0;
      control_hi_ = 3000.0;
      control_bad_ = 9000.0;
    }
    applier_.set_flood_target(telemetry_.front());
  }

  void schedule_next_write() {
    system_.loop().schedule(opt_.write_period, [this] {
      if (system_.loop().now() >= stop_writes_at_) return;
      issue_write();
      schedule_next_write();
    });
  }

  void issue_write() {
    ++write_counter_;
    ItemId item = controls_[write_counter_ % controls_.size()];
    // Every 7th write is out of the Block handler's range: a deterministic
    // denial keeps the AE/denial path exercised under faults.
    double span = control_hi_ - control_lo_;
    double value =
        (write_counter_ % 7 == 0)
            ? control_bad_
            : control_lo_ + static_cast<double>((write_counter_ * 137) %
                                                1000) /
                                1000.0 * span;
    OpId op = system_.hmi().write(
        item, scada::Variant{value}, [this](const scada::WriteResult& result) {
          on_write_completed(result);
        });
    checker_.note_write_issued(op);
  }

  void on_write_completed(const scada::WriteResult& result) {
    checker_.note_write_completed(result.ctx.op, result.status);
    if (heal_pending_) {
      heal_pending_ = false;
      SimTime sample = system_.loop().now() - last_heal_at_;
      worst_recovery_ = std::max(worst_recovery_, sample);
    }
  }

  void do_heal() {
    applier_.heal_world();
    last_heal_at_ = system_.loop().now();
    heal_pending_ = true;
    // The wedge test hook is deliberately invisible to the applier: a
    // heal-point must not cure it, or the watchdog has nothing to catch.
    if (wedged_) wedge();
  }

  /// Liveness watchdog: the decide frontier plus client-visible write
  /// completions must advance every window while a correct quorum is
  /// connected. "Connected" comes from the applier's own bookkeeping — a
  /// wedge it doesn't know about (the paper's silent gray failure of the
  /// whole service) is exactly what this check turns into a violation.
  void watchdog() {
    if (system_.loop().now() >= watchdog_stop_at_) return;
    ++watchdog_checks_;
    std::uint64_t progress =
        checker_.decisions_observed() + checker_.writes_completed();
    if (progress == last_progress_ && applier_.quorum_connected() &&
        !watchdog_fired_) {
      watchdog_fired_ = true;
      checker_.add_violation(
          "liveness-watchdog",
          "no progress for " +
              std::to_string(opt_.watchdog_window / millis(1)) +
              "ms with a correct quorum connected (decisions=" +
              std::to_string(checker_.decisions_observed()) +
              ", completions=" + std::to_string(checker_.writes_completed()) +
              ")");
    }
    last_progress_ = progress;
    system_.loop().schedule(opt_.watchdog_window, [this] { watchdog(); });
  }

  /// Phase audit: among correct, connected, live replicas the decide
  /// frontier must stay within kMaxFrontierSpread — agreement alone lets a
  /// replica fall arbitrarily far behind without any invariant noticing
  /// until the end-of-run convergence check.
  void audit() {
    ++audits_;
    if (!applier_.quorum_connected()) return;
    std::uint64_t lo = UINT64_MAX;
    std::uint64_t hi = 0;
    std::uint32_t straggler = 0;
    bool any = false;
    for (std::uint32_t i = 0; i < system_.n(); ++i) {
      if (system_.replica(i).crashed()) continue;
      if (applier_.isolated().count(i) > 0) continue;
      if (system_.replica(i).byzantine() != bft::ByzantineMode::kNone) {
        continue;
      }
      std::uint64_t frontier = system_.replica(i).last_decided().value;
      if (frontier < lo) {
        lo = frontier;
        straggler = i;
      }
      hi = std::max(hi, frontier);
      any = true;
    }
    if (any && hi - lo > kMaxFrontierSpread) {
      checker_.add_violation(
          "frontier-audit",
          "replica " + std::to_string(straggler) + " decide frontier " +
              std::to_string(lo) + " trails the lead " + std::to_string(hi) +
              " by more than " + std::to_string(kMaxFrontierSpread));
    }
  }

  /// The artificial wedge (test hook): isolates every replica behind the
  /// applier's back, so the deployment silently stops while the campaign's
  /// availability bookkeeping still believes a quorum is connected.
  void wedge() {
    wedged_ = true;
    for (std::uint32_t i = 0; i < system_.n(); ++i) {
      system_.net().isolate(crypto::replica_principal(ReplicaId{i}));
    }
  }

  CampaignOptions opt_;
  FaultScript script_;
  core::ReplicatedDeployment system_;
  rtu::RtuDriver driver_;
  InvariantChecker checker_;
  ActionApplier applier_;
  std::vector<std::unique_ptr<rtu::Rtu>> rtus_;
  std::vector<ItemId> telemetry_;
  std::vector<ItemId> controls_;
  double control_lo_ = 0.0, control_hi_ = 1.0, control_bad_ = 5.0;

  SimTime stop_writes_at_ = 0;
  SimTime watchdog_stop_at_ = 0;
  std::uint64_t write_counter_ = 0;
  std::uint64_t last_progress_ = 0;
  std::uint64_t watchdog_checks_ = 0;
  std::uint64_t audits_ = 0;
  bool watchdog_fired_ = false;
  bool wedged_ = false;
  bool heal_pending_ = false;
  SimTime last_heal_at_ = 0;
  SimTime worst_recovery_ = 0;
};

FaultScript subset(const FaultScript& script,
                   const std::vector<std::size_t>& kept) {
  FaultScript out;
  out.actions.reserve(kept.size());
  for (std::size_t index : kept) out.actions.push_back(script.actions[index]);
  return out;
}

}  // namespace

const char* plant_name(Plant plant) {
  switch (plant) {
    case Plant::kPowerGrid:
      return "power-grid";
    case Plant::kWaterPipeline:
      return "water-pipeline";
  }
  return "?";
}

bool parse_plant(const std::string& name, Plant& out) {
  if (name == plant_name(Plant::kPowerGrid)) {
    out = Plant::kPowerGrid;
    return true;
  }
  if (name == plant_name(Plant::kWaterPipeline)) {
    out = Plant::kWaterPipeline;
    return true;
  }
  return false;
}

FaultScript CampaignPlan::flatten() const {
  FaultScript out;
  for (const CampaignPhase& phase : phases) {
    out.actions.insert(out.actions.end(), phase.script.actions.begin(),
                       phase.script.actions.end());
  }
  std::stable_sort(out.actions.begin(), out.actions.end(),
                   [](const FaultAction& a, const FaultAction& b) {
                     return a.at < b.at;
                   });
  return out;
}

std::string CampaignPlan::describe() const {
  std::string out;
  char buf[128];
  for (std::size_t k = 0; k < phases.size(); ++k) {
    const CampaignPhase& phase = phases[k];
    std::snprintf(buf, sizeof(buf), "phase %zu t+%llds %s%s (%zu actions)\n",
                  k, static_cast<long long>(phase.start / seconds(1)),
                  family_name(phase.family),
                  phase.gray_overlay ? "+gray-failure" : "",
                  phase.script.actions.size());
    out += buf;
  }
  return out;
}

std::string CampaignReport::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%zu violations, %" PRIu64 " decisions, %" PRIu64 "/%" PRIu64
                " writes, %" PRIu64 " watchdog checks, %" PRIu64
                " audits, worst recovery %lldms",
                violations.size(), decisions, writes_completed, writes_issued,
                watchdog_checks, audits,
                static_cast<long long>(worst_recovery / millis(1)));
  return buf;
}

CampaignPlan plan_campaign(const CampaignOptions& options) {
  CampaignPlan plan;
  std::uint64_t sm = options.seed ^ 0xCA4BULL;
  Rng rng(splitmix64(sm));
  GroupConfig group = GroupConfig::for_protocol(options.protocol, options.f);

  const SimTime phase_len = std::max<SimTime>(options.phase, millis(500));
  const std::uint64_t phases = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(options.duration / phase_len));

  ScriptParams params;
  params.group = group;
  // Injections stop at 5/8 of the phase: the heal point (3/4) and the audit
  // (7/8) need the tail to themselves.
  params.horizon = phase_len * 5 / 8;
  params.has_rtu = true;

  std::vector<ScenarioFamily> deck;
  for (std::uint64_t k = 0; k < phases; ++k) {
    if (deck.empty()) {
      // Reshuffle a full deck: every family appears before any repeats.
      deck.assign(std::begin(kAllFamilies), std::end(kAllFamilies));
      for (std::size_t i = deck.size(); i > 1; --i) {
        std::size_t j = static_cast<std::size_t>(rng.below(i));
        std::swap(deck[i - 1], deck[j]);
      }
    }
    CampaignPhase phase;
    phase.family = deck.back();
    deck.pop_back();
    phase.start = static_cast<SimTime>(k) * phase_len;
    std::uint64_t psm = options.seed * 0x9e3779b97f4a7c15ULL + k + 1;
    phase.seed = splitmix64(psm);

    phase.script = generate_script(phase.family, params, phase.seed);
    // Overlap axis: a third of non-gray phases get an independent
    // gray-failure script layered on top — slow-but-correct replicas while
    // Byzantine/partition/crash faults are also live.
    if (phase.family != ScenarioFamily::kGrayFailure && rng.chance(1.0 / 3)) {
      phase.gray_overlay = true;
      FaultScript overlay = generate_script(ScenarioFamily::kGrayFailure,
                                            params, phase.seed ^ 0x6A41ULL);
      phase.script.actions.insert(phase.script.actions.end(),
                                  overlay.actions.begin(),
                                  overlay.actions.end());
    }
    for (FaultAction& action : phase.script.actions) {
      action.at += phase.start;
    }
    std::stable_sort(phase.script.actions.begin(),
                     phase.script.actions.end(),
                     [](const FaultAction& a, const FaultAction& b) {
                       return a.at < b.at;
                     });
    plan.phases.push_back(std::move(phase));
  }
  return plan;
}

CampaignReport run_campaign_script(const CampaignOptions& options,
                                   const FaultScript& script) {
  CampaignRun run(options, script);
  return run.run();
}

CampaignReport run_campaign(const CampaignOptions& options) {
  CampaignPlan plan = plan_campaign(options);
  CampaignReport report = run_campaign_script(options, plan.flatten());
  report.plan = std::move(plan);
  return report;
}

CampaignMinimizeResult minimize_campaign(const CampaignOptions& options) {
  FaultScript full = plan_campaign(options).flatten();
  std::vector<std::size_t> kept(full.actions.size());
  for (std::size_t i = 0; i < kept.size(); ++i) kept[i] = i;

  CampaignReport last = run_campaign_script(options, full);
  // Chunked ddmin: campaign scripts run to dozens of actions and each
  // replay costs a full soak, so drop big contiguous chunks first and fall
  // back to single actions only at the end.
  for (std::size_t len = std::max<std::size_t>(kept.size() / 2, 1);;
       len /= 2) {
    std::size_t i = 0;
    while (i < kept.size()) {
      std::vector<std::size_t> candidate;
      candidate.reserve(kept.size() - std::min(len, kept.size() - i));
      for (std::size_t j = 0; j < kept.size(); ++j) {
        if (j < i || j >= i + len) candidate.push_back(kept[j]);
      }
      CampaignReport report = run_campaign_script(options,
                                                  subset(full, candidate));
      if (!report.ok()) {
        kept = std::move(candidate);
        last = std::move(report);
      } else {
        i += len;
      }
    }
    if (len == 1) break;
  }

  CampaignMinimizeResult result;
  result.minimal = subset(full, kept);
  result.kept = std::move(kept);
  result.report = std::move(last);
  return result;
}

std::string campaign_repro_command(const CampaignOptions& options) {
  std::string cmd = "soak_campaign --plant=";
  cmd += plant_name(options.plant);
  if (options.protocol != Protocol::kPbft) {
    cmd += " --protocol=";
    cmd += protocol_name(options.protocol);
  }
  cmd += " --f=" + std::to_string(options.f);
  char buf[64];
  std::snprintf(buf, sizeof(buf), " --seed=0x%" PRIx64, options.seed);
  cmd += buf;
  std::snprintf(buf, sizeof(buf), " --duration=%lld",
                static_cast<long long>(options.duration / seconds(1)));
  cmd += buf;
  if (options.phase != seconds(4)) {
    std::snprintf(buf, sizeof(buf), " --phase=%lld",
                  static_cast<long long>(options.phase / millis(1)));
    cmd += buf;
  }
  if (options.wedge_at != 0) {
    std::snprintf(buf, sizeof(buf), " --wedge-at=%lld",
                  static_cast<long long>(options.wedge_at / millis(1)));
    cmd += buf;
  }
  return cmd;
}

}  // namespace ss::chaos
