// Name -> socket-address resolution for the socket transport.
//
// A deployment config file maps every endpoint name the system uses
// ("replica/0", "proxy/hmi", "rtu/0", ...) to an IPv4 host:port. One file
// is shared by all processes of a deployment; each process binds sockets
// for the names it attaches and sends to peers by looking their names up
// here — the socket equivalent of the simulated network's name registry.
//
// Format: one `name host:port` pair per line, '#' starts a comment,
// blank lines ignored. `localhost` is accepted as 127.0.0.1.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ss::net {

struct SocketAddress {
  std::string host;  ///< IPv4 dotted quad (or "localhost")
  std::uint16_t port = 0;

  bool operator==(const SocketAddress&) const = default;
};

class Resolver {
 public:
  Resolver() = default;

  /// Parses config text; throws std::runtime_error on malformed lines.
  static Resolver parse(std::string_view text);

  /// Loads and parses a config file; throws std::runtime_error.
  static Resolver from_file(const std::string& path);

  void add(std::string name, SocketAddress address);

  const SocketAddress* lookup(const std::string& name) const;

  std::size_t size() const { return entries_.size(); }
  std::vector<std::string> names() const;

  /// Serializes back to config-file text (for generated deployments).
  std::string to_text() const;

 private:
  std::map<std::string, SocketAddress> entries_;
};

}  // namespace ss::net
