// The transport seam: every SMaRt-SCADA component above this layer sends,
// receives, and schedules time through the Transport interface, never
// through a concrete network.
//
// Two backends implement it:
//  * sim::Network — the deterministic in-process simulated network all
//    tests, benches, and chaos sweeps run on (virtual time);
//  * net::SocketTransport — real UDP sockets on a poll-driven loop
//    (monotonic wall-clock time), for multi-process deployments.
//
// The authenticated-channel layer (HMAC keychain, see crypto::Keychain and
// core/scada_link) sits *above* this seam: components MAC and verify their
// payloads themselves, so integrity/authenticity hold identically over the
// simulated network and over real wires — the SecureSMART property that
// channel security must not depend on the transport.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "common/bytes.h"
#include "common/types.h"

namespace ss::net {

/// One delivered message. `from` is the sender's claimed endpoint name; it
/// is NOT authenticated by the transport — receivers authenticate senders
/// via the HMAC inside the payload.
struct Message {
  std::string from;
  std::string to;
  Bytes payload;
};

/// Cancellable handle for a scheduled action. Cheap to copy; cancelling
/// twice is a no-op. active() reports "not cancelled" (matching
/// sim::TimerHandle semantics: firing does not clear it).
class Timer {
 public:
  struct Impl {
    virtual ~Impl() = default;
    virtual void cancel() = 0;
    virtual bool active() const = 0;
  };

  Timer() = default;
  explicit Timer(std::shared_ptr<Impl> impl) : impl_(std::move(impl)) {}

  void cancel() {
    if (impl_) impl_->cancel();
  }
  bool active() const { return impl_ && impl_->active(); }

 private:
  std::shared_ptr<Impl> impl_;
};

/// Message-passing transport with named endpoints and timer scheduling.
///
/// Contract (both backends):
///  * attach() registers (or replaces) the receive handler for a name;
///    detach() models a crash — in-flight messages to the name are dropped;
///  * send() never invokes a handler re-entrantly: delivery happens on a
///    later loop iteration, even for zero-latency/loopback paths;
///  * delivery is unreliable and unordered in general (the simulated
///    backend only drops under injected faults; UDP drops whenever the
///    kernel or the wire does) — retransmission is the caller's job;
///  * schedule() runs `action` once, `delay` nanoseconds of transport time
///    from now(); now() is virtual time on the simulated backend and
///    monotonic wall-clock time on the socket backend.
class Transport {
 public:
  using Handler = std::function<void(Message)>;

  virtual ~Transport() = default;

  virtual void attach(const std::string& name, Handler handler) = 0;
  virtual void detach(const std::string& name) = 0;
  virtual bool attached(const std::string& name) const = 0;

  virtual void send(const std::string& from, const std::string& to,
                    Bytes payload) = 0;

  virtual Timer schedule(SimTime delay, std::function<void()> action) = 0;
  virtual SimTime now() const = 0;
};

}  // namespace ss::net
