// Real-socket Transport backend: UDP datagrams on a poll(2)-driven loop.
//
// Each attached endpoint binds one non-blocking UDP socket at the address
// the Resolver maps its name to. Messages are framed with the repo's
// Writer/Reader wire format (magic, version, message id, fragment index /
// count, from, to, payload fragment); payloads larger than one datagram are
// fragmented and reassembled, so state-transfer snapshots cross real wires
// too. Outgoing datagrams are batched per poll iteration and flushed with
// sendmmsg(2) (falling back to sendto(2)); timers live in a min-heap that
// drives the poll timeout. Single-threaded by design, like the simulated
// loop: handlers and timer actions run on the polling thread and never
// re-entrantly inside send().
//
// Threading contract: everything on this class — attach/detach, send,
// poll_once/run, handlers, timer actions, and the pollable callbacks
// registered via add_pollable — runs on ONE thread, the poll-loop thread.
// Debug builds assert it (poll_once binds the loop to the first calling
// thread). This is what lets a core::PooledOrderedRunner coexist with the
// transport: its worker threads never touch the transport; they signal an
// eventfd that is registered here as a pollable, so the runner's completion
// drain (and thus every replica state mutation and every send) happens on
// the same thread that delivers messages — the PR 3 reassembly state, the
// outbox, and the handler map all stay single-threaded.
//
// Delivery is UDP: unreliable and unordered. That is exactly the fault
// model the BFT stack already tolerates (clients retransmit, replicas
// dedupe), and the HMAC layer above the transport rejects anything a real
// wire corrupts or forges.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/types.h"
#include "net/resolver.h"
#include "net/transport.h"
#include "obs/metrics.h"

namespace ss::net {

struct SocketOptions {
  /// Max payload bytes per datagram fragment (header rides on top; the
  /// default keeps the full datagram under the 65507-byte UDP limit).
  std::size_t max_fragment = 60000;
  /// Reassembled-message cap; larger sends are dropped (and counted).
  std::size_t max_message = 64u << 20;
  /// Partial reassemblies older than this are discarded.
  SimTime reassembly_timeout = seconds(10);
  /// Collect outgoing datagrams and flush once per loop iteration with
  /// sendmmsg (false = every send() flushes immediately).
  bool batch = true;
  /// Flush early once this many datagrams are queued.
  std::size_t max_batch = 128;
  int rcvbuf_bytes = 1 << 22;
  int sndbuf_bytes = 1 << 22;
  /// After this many *consecutive* hard recv failures (anything other than
  /// EAGAIN/EWOULDBLOCK/EINTR) the endpoint is detached instead of spinning
  /// the read loop forever.
  std::size_t max_recv_failures = 64;
  /// Datagrams drained per recvmmsg(2) call — the size of the preallocated
  /// RX buffer ring. 1 disables the batched path and reads one datagram per
  /// recvfrom(2) call (also the automatic fallback where recvmmsg is
  /// unavailable). Each ring slot holds a full 64 KiB datagram.
  std::size_t rx_batch = 32;
  /// Userspace busy-poll budget: poll_once spins (zero-timeout polls) for
  /// up to this long before blocking in poll(2). Trades a core for RX
  /// latency; 0 = disabled. Also applied as SO_BUSY_POLL where supported.
  SimTime busy_poll = 0;
};

/// `base` with the deployment environment knobs applied on top:
/// SS_RX_BATCH=<n> (RX ring size, 1 = recvfrom path) and SS_BUSY_POLL=<us>
/// (spin budget in microseconds).
SocketOptions socket_options_from_env(SocketOptions base = {});

struct SocketStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t datagrams_sent = 0;
  std::uint64_t datagrams_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t decode_errors = 0;    ///< malformed/truncated frames dropped
  std::uint64_t unresolved_drops = 0; ///< destination name not in resolver
  std::uint64_t oversized_drops = 0;
  std::uint64_t misdirected = 0;      ///< frame for a name not attached here
  std::uint64_t send_errors = 0;
  std::uint64_t recv_errors = 0;      ///< hard recvfrom failures
  std::uint64_t endpoints_detached = 0;  ///< detached after repeated failures
  std::uint64_t reassembly_expired = 0;
  std::uint64_t timers_fired = 0;
  std::uint64_t rx_batches = 0;    ///< recvmmsg/recvfrom calls that returned data
  std::uint64_t rx_ring_full = 0;  ///< batched reads that filled the whole ring
};

class SocketTransport final : public Transport {
 public:
  explicit SocketTransport(Resolver resolver, SocketOptions options = {});
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  // --- Transport ----------------------------------------------------------
  /// Binds a UDP socket at the resolver's address for `name`; throws
  /// std::runtime_error if the name is unknown or the bind fails.
  void attach(const std::string& name, Handler handler) override;
  void detach(const std::string& name) override;
  bool attached(const std::string& name) const override;
  void send(const std::string& from, const std::string& to,
            Bytes payload) override;
  Timer schedule(SimTime delay, std::function<void()> action) override;
  /// Monotonic wall-clock nanoseconds since transport construction.
  SimTime now() const override;

  // --- loop ---------------------------------------------------------------
  /// One poll iteration: flush sends, wait (at most `max_wait` ns) for
  /// readable sockets or the next timer, deliver, fire due timers, flush.
  /// Returns the number of messages delivered plus timers fired.
  std::size_t poll_once(SimTime max_wait);

  /// Runs until stop() is called (from a handler/timer or signal-checked
  /// predicate installed via set_interrupt_check).
  void run();

  /// Polls until `done()` returns true or `timeout` ns elapse. Returns the
  /// predicate's final value.
  bool run_until(const std::function<bool()>& done, SimTime timeout);

  void stop() { stopped_ = true; }

  /// Adds an external fd (e.g. a runner's completion eventfd) to the poll
  /// set; `on_ready` runs on the poll-loop thread whenever the fd is
  /// readable. The callback consumes the readiness itself (read the fd).
  /// The fd is not owned; remove it before closing it.
  void add_pollable(int fd, std::function<void()> on_ready);
  void remove_pollable(int fd);

  /// Optional hook polled every iteration (e.g. a signal flag); returning
  /// true stops the loop.
  void set_interrupt_check(std::function<bool()> check) {
    interrupt_check_ = std::move(check);
  }

  const SocketStats& stats() const { return stats_; }
  const Resolver& resolver() const { return resolver_; }

  struct TimerState;  // implementation detail, public for the Timer adapter

 private:
  struct EndpointState {
    int fd = -1;
    Handler handler;
    std::size_t consecutive_recv_errors = 0;
  };
  struct PendingTimer {
    SimTime when;
    std::uint64_t seq;
    std::shared_ptr<TimerState> state;
  };
  struct TimerLater {
    bool operator()(const PendingTimer& a, const PendingTimer& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  struct OutDatagram {
    int fd;
    SocketAddress dest;
    Bytes bytes;
  };
  struct Reassembly {
    SimTime first_seen = 0;
    std::size_t received = 0;
    std::size_t bytes = 0;
    std::vector<Bytes> fragments;
  };

  struct RxRing;  // preallocated recvmmsg buffer ring (defined in the .cc)

  int open_socket(const std::string& name);
  void enqueue_fragments(const std::string& from, const std::string& to,
                         const Bytes& payload, int fd,
                         const SocketAddress& dest);
  void flush_outbox();
  void read_socket(const std::string& name, int fd);
  void read_socket_single(const std::string& name, int fd);
  void read_socket_batched(const std::string& name, int fd);
  /// Counts a hard recv failure on `name`; returns true if the endpoint was
  /// detached (caller must stop reading this fd).
  bool note_recv_failure(const std::string& name, int err);
  void handle_datagram(ByteView datagram);
  void fire_due_timers();
  void expire_reassemblies();

  Resolver resolver_;
  SocketOptions opt_;
  SimTime epoch_ = 0;
  bool stopped_ = false;
  std::function<bool()> interrupt_check_;

  std::map<std::string, EndpointState> endpoints_;
  /// Unbound scratch socket for sends from names that are not attached
  /// locally (mirrors the simulated network, which lets anyone send).
  int anon_fd_ = -1;

  std::uint64_t next_msg_id_ = 1;
  std::vector<OutDatagram> outbox_;

  std::uint64_t next_timer_seq_ = 0;
  std::priority_queue<PendingTimer, std::vector<PendingTimer>, TimerLater>
      timers_;

  /// (sender name, message id, receiver name) -> partial message.
  std::map<std::tuple<std::string, std::uint64_t, std::string>, Reassembly>
      reassembly_;
  SimTime last_gc_ = 0;

  /// External fds (runner eventfds) polled alongside the sockets.
  std::vector<std::pair<int, std::function<void()>>> pollables_;

  Bytes rx_buffer_;
  /// Preallocated recvmmsg buffers; null when rx_batch <= 1.
  std::unique_ptr<RxRing> rx_ring_;
  /// Cleared at runtime if recvmmsg(2) reports ENOSYS/EOPNOTSUPP — every
  /// later read takes the recvfrom path.
  bool recvmmsg_ok_ = true;
  SocketStats stats_;
  obs::SourceHandle obs_source_;

#ifndef NDEBUG
  /// poll_once binds the loop to its first caller; later calls (and the
  /// state they drive) must come from that same thread.
  std::thread::id loop_thread_{};
#endif
};

}  // namespace ss::net
