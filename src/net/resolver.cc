#include "net/resolver.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ss::net {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

Resolver Resolver::parse(std::string_view text) {
  Resolver r;
  std::size_t lineno = 0;
  while (!text.empty()) {
    std::size_t eol = text.find('\n');
    std::string_view line =
        eol == std::string_view::npos ? text : text.substr(0, eol);
    text.remove_prefix(eol == std::string_view::npos ? text.size() : eol + 1);
    ++lineno;

    std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    std::size_t sep = line.find_last_of(" \t");
    if (sep == std::string_view::npos) {
      throw std::runtime_error("resolver line " + std::to_string(lineno) +
                               ": expected `name host:port`");
    }
    std::string name(trim(line.substr(0, sep)));
    std::string_view addr = trim(line.substr(sep + 1));
    std::size_t colon = addr.rfind(':');
    if (name.empty() || colon == std::string_view::npos || colon == 0 ||
        colon + 1 >= addr.size()) {
      throw std::runtime_error("resolver line " + std::to_string(lineno) +
                               ": expected `name host:port`");
    }
    std::string host(addr.substr(0, colon));
    unsigned long port = 0;
    try {
      std::size_t used = 0;
      port = std::stoul(std::string(addr.substr(colon + 1)), &used);
      if (used != addr.size() - colon - 1) throw std::invalid_argument("port");
    } catch (const std::exception&) {
      throw std::runtime_error("resolver line " + std::to_string(lineno) +
                               ": bad port");
    }
    if (port == 0 || port > 65535) {
      throw std::runtime_error("resolver line " + std::to_string(lineno) +
                               ": port out of range");
    }
    r.add(std::move(name),
          SocketAddress{std::move(host), static_cast<std::uint16_t>(port)});
  }
  return r;
}

Resolver Resolver::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open resolver config: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

void Resolver::add(std::string name, SocketAddress address) {
  entries_[std::move(name)] = std::move(address);
}

const SocketAddress* Resolver::lookup(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<std::string> Resolver::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, addr] : entries_) out.push_back(name);
  return out;
}

std::string Resolver::to_text() const {
  std::ostringstream out;
  for (const auto& [name, addr] : entries_) {
    out << name << ' ' << addr.host << ':' << addr.port << '\n';
  }
  return out.str();
}

}  // namespace ss::net
