#include "net/socket_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <cassert>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "common/logging.h"
#include "common/serialization.h"
#include "obs/metrics.h"

namespace ss::net {

namespace {

constexpr std::uint32_t kMagic = 0x53535450;  // "SSTP"
constexpr std::uint8_t kVersion = 1;

SimTime monotonic_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<SimTime>(ts.tv_sec) * kNanosPerSec + ts.tv_nsec;
}

bool to_sockaddr(const SocketAddress& address, sockaddr_in* out) {
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(address.port);
  const char* host =
      address.host == "localhost" ? "127.0.0.1" : address.host.c_str();
  return inet_pton(AF_INET, host, &out->sin_addr) == 1;
}

}  // namespace

SocketOptions socket_options_from_env(SocketOptions base) {
  if (const char* v = std::getenv("SS_RX_BATCH")) {
    long n = std::strtol(v, nullptr, 10);
    if (n >= 1 && n <= 1024) base.rx_batch = static_cast<std::size_t>(n);
  }
  if (const char* v = std::getenv("SS_BUSY_POLL")) {
    long us = std::strtol(v, nullptr, 10);
    if (us >= 0) base.busy_poll = static_cast<SimTime>(us) * 1000;
  }
  return base;
}

/// One 64 KiB slot per datagram recvmmsg may return; headers/iovecs are set
/// up once and reused for every call, so the steady-state RX path does no
/// allocation.
struct SocketTransport::RxRing {
  explicit RxRing(std::size_t slots)
      : buffers(slots, Bytes(65536)), hdrs(slots), iovs(slots), peers(slots) {
    rearm();
  }
  /// msg_hdr fields (namelen in particular) are overwritten by the kernel on
  /// every call and must be reset before the next one.
  void rearm() {
    for (std::size_t i = 0; i < buffers.size(); ++i) {
      iovs[i].iov_base = buffers[i].data();
      iovs[i].iov_len = buffers[i].size();
      std::memset(&hdrs[i], 0, sizeof(hdrs[i]));
      hdrs[i].msg_hdr.msg_name = &peers[i];
      hdrs[i].msg_hdr.msg_namelen = sizeof(peers[i]);
      hdrs[i].msg_hdr.msg_iov = &iovs[i];
      hdrs[i].msg_hdr.msg_iovlen = 1;
    }
  }
  std::vector<Bytes> buffers;
  std::vector<mmsghdr> hdrs;
  std::vector<iovec> iovs;
  std::vector<sockaddr_in> peers;
};

struct SocketTransport::TimerState {
  bool cancelled = false;
  std::function<void()> action;
};

namespace {

class SocketTimerImpl final : public Timer::Impl {
 public:
  explicit SocketTimerImpl(std::shared_ptr<SocketTransport::TimerState> state)
      : state_(std::move(state)) {}
  void cancel() override {
    state_->cancelled = true;
    state_->action = nullptr;  // release captures eagerly
  }
  bool active() const override { return !state_->cancelled; }

 private:
  std::shared_ptr<SocketTransport::TimerState> state_;
};

}  // namespace

SocketTransport::SocketTransport(Resolver resolver, SocketOptions options)
    : resolver_(std::move(resolver)), opt_(options) {
  epoch_ = monotonic_ns();
  rx_buffer_.resize(65536);
  if (opt_.rx_batch > 1) rx_ring_ = std::make_unique<RxRing>(opt_.rx_batch);
  obs_source_ = obs::Registry::instance().add_source(
      "transport", [this](const obs::Registry::Emit& emit) {
        emit("messages_sent", static_cast<double>(stats_.messages_sent));
        emit("messages_delivered",
             static_cast<double>(stats_.messages_delivered));
        emit("datagrams_sent", static_cast<double>(stats_.datagrams_sent));
        emit("datagrams_received",
             static_cast<double>(stats_.datagrams_received));
        emit("bytes_sent", static_cast<double>(stats_.bytes_sent));
        emit("bytes_received", static_cast<double>(stats_.bytes_received));
        emit("decode_errors", static_cast<double>(stats_.decode_errors));
        emit("unresolved_drops", static_cast<double>(stats_.unresolved_drops));
        emit("oversized_drops", static_cast<double>(stats_.oversized_drops));
        emit("misdirected", static_cast<double>(stats_.misdirected));
        emit("send_errors", static_cast<double>(stats_.send_errors));
        emit("recv_errors", static_cast<double>(stats_.recv_errors));
        emit("endpoints_detached",
             static_cast<double>(stats_.endpoints_detached));
        emit("reassembly_expired",
             static_cast<double>(stats_.reassembly_expired));
        emit("timers_fired", static_cast<double>(stats_.timers_fired));
        emit("rx_batches", static_cast<double>(stats_.rx_batches));
        emit("rx_ring_full", static_cast<double>(stats_.rx_ring_full));
      });
}

SocketTransport::~SocketTransport() {
  for (auto& [name, ep] : endpoints_) {
    if (ep.fd >= 0) ::close(ep.fd);
  }
  if (anon_fd_ >= 0) ::close(anon_fd_);
}

SimTime SocketTransport::now() const { return monotonic_ns() - epoch_; }

int SocketTransport::open_socket(const std::string& name) {
  const SocketAddress* address = resolver_.lookup(name);
  if (address == nullptr) {
    throw std::runtime_error("socket transport: endpoint not in resolver: " +
                             name);
  }
  sockaddr_in sa{};
  if (!to_sockaddr(*address, &sa)) {
    throw std::runtime_error("socket transport: bad host for " + name + ": " +
                             address->host);
  }
  int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw std::runtime_error("socket transport: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &opt_.rcvbuf_bytes,
               sizeof(opt_.rcvbuf_bytes));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &opt_.sndbuf_bytes,
               sizeof(opt_.sndbuf_bytes));
  if (opt_.busy_poll > 0) {
    // Best effort; needs CAP_NET_ADMIN on older kernels, and the userspace
    // spin in poll_once carries the feature where this is refused.
    int us = static_cast<int>(opt_.busy_poll / 1000);
    ::setsockopt(fd, SOL_SOCKET, SO_BUSY_POLL, &us, sizeof(us));
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
    int err = errno;
    ::close(fd);
    throw std::runtime_error("socket transport: bind " + name + " to " +
                             address->host + ":" +
                             std::to_string(address->port) + " failed: " +
                             std::strerror(err));
  }
  return fd;
}

void SocketTransport::attach(const std::string& name, Handler handler) {
  auto it = endpoints_.find(name);
  if (it != endpoints_.end()) {
    it->second.handler = std::move(handler);  // replace, keep the socket
    return;
  }
  EndpointState ep;
  ep.fd = open_socket(name);
  ep.handler = std::move(handler);
  endpoints_.emplace(name, std::move(ep));
}

void SocketTransport::detach(const std::string& name) {
  auto it = endpoints_.find(name);
  if (it == endpoints_.end()) return;
  if (it->second.fd >= 0) ::close(it->second.fd);
  endpoints_.erase(it);
}

bool SocketTransport::attached(const std::string& name) const {
  return endpoints_.count(name) > 0;
}

void SocketTransport::enqueue_fragments(const std::string& from,
                                        const std::string& to,
                                        const Bytes& payload, int fd,
                                        const SocketAddress& dest) {
  std::uint64_t msg_id = next_msg_id_++;
  std::size_t total = payload.size();
  std::size_t nfrags =
      total == 0 ? 1 : (total + opt_.max_fragment - 1) / opt_.max_fragment;
  for (std::size_t i = 0; i < nfrags; ++i) {
    std::size_t off = i * opt_.max_fragment;
    std::size_t len = std::min(opt_.max_fragment, total - off);
    Writer w(len + from.size() + to.size() + 32);
    w.u32(kMagic);
    w.u8(kVersion);
    w.u64(msg_id);
    w.u16(static_cast<std::uint16_t>(i));
    w.u16(static_cast<std::uint16_t>(nfrags));
    w.str(from);
    w.str(to);
    w.blob(ByteView(payload.data() + off, len));
    stats_.bytes_sent += w.size();
    outbox_.push_back(OutDatagram{fd, dest, std::move(w).take()});
  }
  ++stats_.messages_sent;
}

void SocketTransport::send(const std::string& from, const std::string& to,
                           Bytes payload) {
  const SocketAddress* dest = resolver_.lookup(to);
  if (dest == nullptr) {
    ++stats_.unresolved_drops;
    return;
  }
  if (payload.size() > opt_.max_message ||
      (payload.size() + opt_.max_fragment - 1) / opt_.max_fragment > 65535) {
    ++stats_.oversized_drops;
    return;
  }
  int fd = -1;
  auto it = endpoints_.find(from);
  if (it != endpoints_.end()) {
    fd = it->second.fd;
  } else {
    // Unattached sender (the simulated network allows this too): use a
    // shared unbound socket; the receiver trusts the frame's `from` only as
    // far as the HMAC above the transport lets it.
    if (anon_fd_ < 0) {
      anon_fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
      if (anon_fd_ < 0) {
        ++stats_.send_errors;
        return;
      }
    }
    fd = anon_fd_;
  }
  enqueue_fragments(from, to, payload, fd, *dest);
  if (!opt_.batch || outbox_.size() >= opt_.max_batch) flush_outbox();
}

void SocketTransport::flush_outbox() {
  std::size_t i = 0;
  while (i < outbox_.size()) {
    // One sendmmsg batch per run of datagrams sharing a source socket.
    std::size_t j = i + 1;
    while (j < outbox_.size() && outbox_[j].fd == outbox_[i].fd &&
           j - i < opt_.max_batch) {
      ++j;
    }
    std::size_t n = j - i;
    std::vector<mmsghdr> hdrs(n);
    std::vector<iovec> iovs(n);
    std::vector<sockaddr_in> addrs(n);
    bool addr_ok = true;
    for (std::size_t k = 0; k < n; ++k) {
      OutDatagram& d = outbox_[i + k];
      if (!to_sockaddr(d.dest, &addrs[k])) {
        addr_ok = false;
        break;
      }
      iovs[k].iov_base = d.bytes.data();
      iovs[k].iov_len = d.bytes.size();
      std::memset(&hdrs[k], 0, sizeof(hdrs[k]));
      hdrs[k].msg_hdr.msg_name = &addrs[k];
      hdrs[k].msg_hdr.msg_namelen = sizeof(addrs[k]);
      hdrs[k].msg_hdr.msg_iov = &iovs[k];
      hdrs[k].msg_hdr.msg_iovlen = 1;
    }
    std::size_t sent = 0;
    if (addr_ok) {
      int rc = ::sendmmsg(outbox_[i].fd, hdrs.data(),
                          static_cast<unsigned int>(n), 0);
      if (rc > 0) sent = static_cast<std::size_t>(rc);
    }
    // Whatever sendmmsg did not take, try individually; UDP semantics let
    // us drop on persistent failure (upper layers retransmit).
    for (std::size_t k = sent; k < n; ++k) {
      OutDatagram& d = outbox_[i + k];
      sockaddr_in sa{};
      if (!to_sockaddr(d.dest, &sa)) {
        ++stats_.send_errors;
        continue;
      }
      ssize_t rc = ::sendto(d.fd, d.bytes.data(), d.bytes.size(), 0,
                            reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
      if (rc < 0) ++stats_.send_errors;
    }
    stats_.datagrams_sent += n;
    i = j;
  }
  outbox_.clear();
}

void SocketTransport::handle_datagram(ByteView datagram) {
  std::string from;
  std::string to;
  std::uint64_t msg_id = 0;
  std::uint16_t frag_index = 0;
  std::uint16_t frag_count = 0;
  Bytes fragment;
  try {
    Reader r(datagram);
    if (r.u32() != kMagic) throw DecodeError("bad magic");
    if (r.u8() != kVersion) throw DecodeError("bad version");
    msg_id = r.u64();
    frag_index = r.u16();
    frag_count = r.u16();
    from = r.str();
    to = r.str();
    fragment = r.blob();
    r.expect_done();
    if (frag_count == 0 || frag_index >= frag_count) {
      throw DecodeError("bad fragment header");
    }
  } catch (const DecodeError&) {
    ++stats_.decode_errors;
    return;
  }

  auto ep = endpoints_.find(to);
  if (ep == endpoints_.end()) {
    ++stats_.misdirected;
    return;
  }

  Bytes payload;
  if (frag_count == 1) {
    payload = std::move(fragment);
  } else {
    auto key = std::make_tuple(from, msg_id, to);
    Reassembly& rs = reassembly_[key];
    if (rs.fragments.empty()) {
      rs.first_seen = now();
      rs.fragments.resize(frag_count);
    }
    if (rs.fragments.size() != frag_count) {
      // Conflicting fragment header: the first-seen header stays
      // authoritative and only the conflicting datagram is dropped.
      // Erasing the whole reassembly here would let one spoofed datagram
      // poison an in-progress transfer (e.g. a state-transfer snapshot).
      ++stats_.decode_errors;
      return;
    }
    if (!rs.fragments[frag_index].empty()) {
      // Duplicate fragment: keep the first copy.
      return;
    }
    rs.bytes += fragment.size();
    if (rs.bytes > opt_.max_message) {
      ++stats_.oversized_drops;
      reassembly_.erase(key);
      return;
    }
    rs.fragments[frag_index] = std::move(fragment);
    if (++rs.received < frag_count) return;
    payload.reserve(rs.bytes);
    for (Bytes& piece : rs.fragments) {
      payload.insert(payload.end(), piece.begin(), piece.end());
    }
    reassembly_.erase(key);
  }

  ++stats_.messages_delivered;
  // Copy the handler: it may detach (and so destroy) its own entry.
  Handler handler = ep->second.handler;
  if (handler) handler(Message{std::move(from), std::move(to), std::move(payload)});
}

bool SocketTransport::note_recv_failure(const std::string& name, int err) {
  // ECONNREFUSED et al. from queued ICMP errors are transient: count and
  // keep reading. A socket that *only* ever errors (EBADF after an fd was
  // yanked, ENOTCONN, resource exhaustion) must not spin the read loop
  // forever, so after a run of consecutive hard failures the endpoint is
  // detached and the failure is logged instead.
  ++stats_.recv_errors;
  auto it = endpoints_.find(name);
  if (it == endpoints_.end()) return true;
  if (++it->second.consecutive_recv_errors >= opt_.max_recv_failures) {
    SS_LOG(LogLevel::kError, now(), "net",
           "endpoint %s: %zu consecutive recv failures (last errno=%d), "
           "detaching",
           name.c_str(), it->second.consecutive_recv_errors, err);
    ++stats_.endpoints_detached;
    detach(name);
    return true;
  }
  return false;
}

void SocketTransport::read_socket(const std::string& name, int fd) {
  if (rx_ring_ && recvmmsg_ok_) {
    read_socket_batched(name, fd);
  } else {
    read_socket_single(name, fd);
  }
}

void SocketTransport::read_socket_single(const std::string& name, int fd) {
  for (;;) {
    auto it = endpoints_.find(name);
    if (it == endpoints_.end() || it->second.fd != fd) return;  // detached
    sockaddr_in peer{};
    socklen_t peer_len = sizeof(peer);
    ssize_t n = ::recvfrom(fd, rx_buffer_.data(), rx_buffer_.size(), 0,
                           reinterpret_cast<sockaddr*>(&peer), &peer_len);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      if (note_recv_failure(name, errno)) return;
      continue;
    }
    it->second.consecutive_recv_errors = 0;
    ++stats_.rx_batches;
    obs::Registry::instance().histogram("net.rx_batch_size").record(1);
    ++stats_.datagrams_received;
    stats_.bytes_received += static_cast<std::uint64_t>(n);
    handle_datagram(ByteView(rx_buffer_.data(), static_cast<std::size_t>(n)));
  }
}

void SocketTransport::read_socket_batched(const std::string& name, int fd) {
  RxRing& ring = *rx_ring_;
  for (;;) {
    auto it = endpoints_.find(name);
    if (it == endpoints_.end() || it->second.fd != fd) return;  // detached
    ring.rearm();
    int n = ::recvmmsg(fd, ring.hdrs.data(),
                       static_cast<unsigned int>(ring.hdrs.size()), 0, nullptr);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      if (errno == ENOSYS || errno == EOPNOTSUPP) {
        // Kernel/libc without recvmmsg: permanently fall back to the
        // one-datagram-per-syscall path. Delivery is byte-identical; only
        // the syscall count differs.
        recvmmsg_ok_ = false;
        SS_LOG(LogLevel::kWarn, now(), "net",
               "recvmmsg unavailable (errno=%d), falling back to recvfrom",
               errno);
        read_socket_single(name, fd);
        return;
      }
      if (note_recv_failure(name, errno)) return;
      continue;
    }
    if (n == 0) return;
    it->second.consecutive_recv_errors = 0;
    ++stats_.rx_batches;
    obs::Registry::instance().histogram("net.rx_batch_size").record(n);
    for (int i = 0; i < n; ++i) {
      std::size_t len = ring.hdrs[i].msg_len;
      ++stats_.datagrams_received;
      stats_.bytes_received += len;
      handle_datagram(ByteView(ring.buffers[i].data(), len));
    }
    if (static_cast<std::size_t>(n) < ring.hdrs.size()) return;  // drained
    // The whole ring filled — more datagrams are likely queued; go again
    // without returning to poll().
    ++stats_.rx_ring_full;
  }
}

Timer SocketTransport::schedule(SimTime delay, std::function<void()> action) {
  if (delay < 0) delay = 0;
  auto state = std::make_shared<TimerState>();
  state->action = std::move(action);
  timers_.push(PendingTimer{now() + delay, next_timer_seq_++, state});
  return Timer(std::make_shared<SocketTimerImpl>(std::move(state)));
}

void SocketTransport::fire_due_timers() {
  SimTime t = now();
  while (!timers_.empty() && timers_.top().when <= t) {
    PendingTimer timer = timers_.top();
    timers_.pop();
    if (timer.state->cancelled || !timer.state->action) continue;
    ++stats_.timers_fired;
    std::function<void()> action = std::move(timer.state->action);
    action();
  }
}

void SocketTransport::add_pollable(int fd, std::function<void()> on_ready) {
  pollables_.emplace_back(fd, std::move(on_ready));
}

void SocketTransport::remove_pollable(int fd) {
  for (auto it = pollables_.begin(); it != pollables_.end(); ++it) {
    if (it->first == fd) {
      pollables_.erase(it);
      return;
    }
  }
}

void SocketTransport::expire_reassemblies() {
  SimTime t = now();
  if (t - last_gc_ < opt_.reassembly_timeout / 2) return;
  last_gc_ = t;
  for (auto it = reassembly_.begin(); it != reassembly_.end();) {
    if (t - it->second.first_seen > opt_.reassembly_timeout) {
      ++stats_.reassembly_expired;
      it = reassembly_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t SocketTransport::poll_once(SimTime max_wait) {
#ifndef NDEBUG
  // Bind the loop to its first caller, then hold every later iteration to
  // it: delivery, timers, and pollable (runner-drain) callbacks must share
  // one thread — see the threading contract in the header.
  if (loop_thread_ == std::thread::id{}) {
    loop_thread_ = std::this_thread::get_id();
  }
  assert(loop_thread_ == std::this_thread::get_id() &&
         "SocketTransport must be polled from a single thread");
#endif
  std::uint64_t delivered_before =
      stats_.messages_delivered + stats_.timers_fired;
  flush_outbox();

  SimTime wait = max_wait < 0 ? 0 : max_wait;
  if (!timers_.empty()) {
    SimTime until_timer = timers_.top().when - now();
    if (until_timer < wait) wait = until_timer;
  }
  if (wait < 0) wait = 0;
  int timeout_ms = static_cast<int>((wait + kNanosPerMilli - 1) / kNanosPerMilli);

  std::vector<std::pair<std::string, int>> snapshot;
  snapshot.reserve(endpoints_.size());
  for (const auto& [name, ep] : endpoints_) snapshot.emplace_back(name, ep.fd);
  std::vector<pollfd> fds;
  fds.reserve(snapshot.size() + pollables_.size());
  for (const auto& [name, fd] : snapshot) {
    fds.push_back(pollfd{fd, POLLIN, 0});
  }
  // Pollables after the sockets; their fds are snapshotted too, since a
  // callback may add/remove pollables.
  std::vector<int> extra;
  extra.reserve(pollables_.size());
  for (const auto& [fd, cb] : pollables_) {
    extra.push_back(fd);
    fds.push_back(pollfd{fd, POLLIN, 0});
  }

  int ready = 0;
  if (!fds.empty()) {
    if (opt_.busy_poll > 0 && wait > 0) {
      // Userspace spin: zero-timeout polls for up to min(busy_poll, wait)
      // before parking in the kernel. Burns the core to shave the wakeup
      // latency off each RX; the budget keeps timers on schedule.
      SimTime wait_deadline = now() + wait;
      SimTime spin_deadline = now() + std::min(opt_.busy_poll, wait);
      do {
        ready = ::poll(fds.data(), fds.size(), 0);
      } while (ready == 0 && now() < spin_deadline);
      // Don't let the spin push the next timer late: the blocking poll
      // below gets only what is left of the original wait budget.
      SimTime remaining = wait_deadline - now();
      if (remaining < 0) remaining = 0;
      timeout_ms =
          static_cast<int>((remaining + kNanosPerMilli - 1) / kNanosPerMilli);
    }
    if (ready == 0 && timeout_ms >= 0) {
      ready = ::poll(fds.data(), fds.size(), timeout_ms);
    }
  } else if (timeout_ms > 0) {
    ::poll(nullptr, 0, timeout_ms);
  }
  if (ready > 0) {
    for (std::size_t i = 0; i < snapshot.size(); ++i) {
      if (fds[i].revents & (POLLIN | POLLERR)) {
        read_socket(snapshot[i].first, snapshot[i].second);
      }
    }
    for (std::size_t i = 0; i < extra.size(); ++i) {
      if ((fds[snapshot.size() + i].revents & (POLLIN | POLLERR)) == 0) {
        continue;
      }
      // Re-look-up by fd and copy the callback: it may add/remove
      // pollables itself, reallocating the vector mid-call.
      std::function<void()> cb;
      for (const auto& [fd, fn] : pollables_) {
        if (fd == extra[i]) {
          cb = fn;
          break;
        }
      }
      if (cb) cb();
    }
  }

  fire_due_timers();
  flush_outbox();
  expire_reassemblies();
  return static_cast<std::size_t>(stats_.messages_delivered +
                                  stats_.timers_fired - delivered_before);
}

void SocketTransport::run() {
  stopped_ = false;
  while (!stopped_) {
    if (interrupt_check_ && interrupt_check_()) break;
    poll_once(millis(50));
  }
}

bool SocketTransport::run_until(const std::function<bool()>& done,
                                SimTime timeout) {
  SimTime deadline = now() + timeout;
  while (!done()) {
    if (stopped_) return done();
    if (interrupt_check_ && interrupt_check_()) return done();
    SimTime remaining = deadline - now();
    if (remaining <= 0) return done();
    poll_once(std::min<SimTime>(remaining, millis(20)));
  }
  return true;
}

}  // namespace ss::net
