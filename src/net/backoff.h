// Shared adaptive retransmission timing: EWMA RTT estimation plus jittered
// exponential backoff with a cap.
//
// Every retry path in the system (client request retransmission, replica
// state-transfer re-requests) used to re-fire on a fixed period, which has
// two failure modes under sustained adversity: a partition turns every
// sender into a synchronized retransmit storm, and a timeout tuned for the
// fault-free RTT fires spuriously as soon as links or replicas slow down.
// AdaptiveTimeout fixes both with the TCP RTO recipe (RFC 6298 shape):
//
//   first sample:  srtt = rtt,               rttvar = rtt / 2
//   after that:    rttvar = 3/4 rttvar + 1/4 |srtt - rtt|
//                  srtt   = 7/8 srtt   + 1/8 rtt
//   rto            = clamp(srtt + 4 rttvar, floor, cap)
//   retry delay    = min(rto << backoff_level, cap), +/- jitter
//
// The floor defaults to the configured base timeout, so in the fault-free
// case the schedule is unchanged from the old fixed period; the estimator
// only ever stretches the timeout (congested links, loaded replicas), never
// hair-triggers it. Jitter is drawn from a seeded Rng, so simulated runs
// stay a pure function of their seed. Backoff levels live with the caller
// (per in-flight request); "fast reset on first response" is the caller
// dropping its level back to zero when evidence arrives that the path works.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/rng.h"
#include "common/types.h"

namespace ss::net {

struct BackoffOptions {
  SimTime initial = millis(300);  ///< RTO before any RTT sample
  /// Lower clamp for the computed RTO; 0 = use `initial` (adaptivity only
  /// ever stretches the configured base, never undercuts it).
  SimTime floor = 0;
  SimTime cap = millis(1200);  ///< upper clamp, backoff included
  double jitter = 0.1;         ///< +/- fraction of every returned delay
  std::uint64_t seed = 0x8077;
};

class AdaptiveTimeout {
 public:
  explicit AdaptiveTimeout(BackoffOptions options = {})
      : opt_(options), rng_(options.seed) {
    if (opt_.floor == 0) opt_.floor = opt_.initial;
    if (opt_.cap < opt_.floor) opt_.cap = opt_.floor;
  }

  /// Feeds one clean RTT sample (Karn's rule is the caller's job: never
  /// sample a reply that may answer a retransmission).
  void on_sample(SimTime rtt) {
    if (rtt < 0) return;
    if (!have_sample_) {
      have_sample_ = true;
      srtt_ = rtt;
      rttvar_ = rtt / 2;
    } else {
      SimTime err = srtt_ > rtt ? srtt_ - rtt : rtt - srtt_;
      rttvar_ = (3 * rttvar_ + err) / 4;
      srtt_ = (7 * srtt_ + rtt) / 8;
    }
    ++samples_;
  }

  /// The current base RTO (no backoff, no jitter).
  SimTime rto() const {
    SimTime base = have_sample_ ? srtt_ + 4 * rttvar_ : opt_.initial;
    return std::clamp(base, opt_.floor, opt_.cap);
  }

  /// The delay before the next retry at the given backoff level: rto()
  /// doubled per level, capped, then jittered. Advances the jitter stream.
  SimTime delay(std::uint32_t backoff_level) {
    SimTime d = rto();
    // Saturating shift: past the cap more doubling cannot matter.
    for (std::uint32_t i = 0; i < backoff_level && d < opt_.cap; ++i) d *= 2;
    d = std::min(d, opt_.cap);
    if (opt_.jitter > 0.0 && d > 0) {
      double factor = 1.0 + opt_.jitter * (2.0 * rng_.uniform() - 1.0);
      d = static_cast<SimTime>(static_cast<double>(d) * factor);
      d = std::max<SimTime>(d, 1);
    }
    return d;
  }

  bool has_sample() const { return have_sample_; }
  SimTime srtt() const { return srtt_; }
  SimTime rttvar() const { return rttvar_; }
  std::uint64_t samples() const { return samples_; }

 private:
  BackoffOptions opt_;
  bool have_sample_ = false;
  SimTime srtt_ = 0;
  SimTime rttvar_ = 0;
  std::uint64_t samples_ = 0;
  Rng rng_;
};

}  // namespace ss::net
