// Transport-backed CPU service-time modelling.
//
// Same model as sim::ServiceLanes (a bank of k identical service lanes; see
// that header for the paper rationale) but expressed against the Transport
// seam, so components that charge virtual CPU cost work on any backend.
// On the simulated backend the arithmetic and the scheduled event times are
// identical to sim::ServiceLanes, keeping runs byte-identical. On the
// socket backend costs are usually zero (real CPUs charge themselves); a
// non-zero cost degrades gracefully into a real delay.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.h"
#include "net/transport.h"

namespace ss::net {

class Lanes {
 public:
  Lanes(Transport& transport, std::uint32_t lanes)
      : transport_(transport),
        free_at_(std::max<std::uint32_t>(lanes, 1), 0) {}

  std::uint32_t lanes() const {
    return static_cast<std::uint32_t>(free_at_.size());
  }

  /// Schedules `done` to run when a lane has spent `cost` ns on this work
  /// item. Queueing delay is implicit: if every lane is busy the work waits
  /// for the earliest completion.
  void submit(SimTime cost, std::function<void()> done) {
    auto it = std::min_element(free_at_.begin(), free_at_.end());
    SimTime now = transport_.now();
    SimTime start = std::max(*it, now);
    SimTime finish = start + cost;
    *it = finish;
    busy_ns_ += cost;
    ++jobs_;
    transport_.schedule(finish - now, std::move(done));
  }

  /// Time at which the next submitted job could start (for backlog probes).
  SimTime earliest_free() const {
    return *std::min_element(free_at_.begin(), free_at_.end());
  }

  SimTime busy_ns() const { return busy_ns_; }
  std::uint64_t jobs() const { return jobs_; }

 private:
  Transport& transport_;
  std::vector<SimTime> free_at_;
  SimTime busy_ns_ = 0;
  std::uint64_t jobs_ = 0;
};

}  // namespace ss::net
