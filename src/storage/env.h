// Filesystem seam for the durability layer.
//
// The WAL and checkpoint store never touch POSIX directly; they go through
// Env, which has two implementations:
//
//  * PosixEnv — real files, real fsync. Used by the multi-process socket
//    deployment, where a replica must survive `kill -9`.
//  * MemEnv — an in-memory filesystem for the deterministic simulator and
//    the tests. It models the one property that matters for crash safety:
//    bytes appended since the last sync() may be LOST on a crash
//    (drop_unsynced() is the simulated `kill -9`), while synced bytes and
//    completed renames survive.
//
// The seam mirrors the transport seam (net::Transport): the exact recovery
// code that runs against real disks runs in simulation, so torn-tail and
// crash-restart scenarios are exercised by the chaos engine without any I/O.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/bytes.h"

namespace ss::storage {

/// An open append-only file handle. Writes become durable only after sync().
class AppendFile {
 public:
  virtual ~AppendFile() = default;
  virtual void append(ByteView data) = 0;
  /// Flushes appended bytes to stable storage (fsync on PosixEnv).
  virtual void sync() = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  /// Whole-file read; nullopt when the file does not exist.
  virtual std::optional<Bytes> read_file(const std::string& path) const = 0;

  /// Creates/truncates `path` with `data` and syncs the file itself. The
  /// caller is responsible for the containing-directory fsync (see
  /// sync_dir) when the file's *existence* must be durable.
  virtual void write_file(const std::string& path, ByteView data) = 0;

  /// Opens `path` for appending, creating it when missing.
  virtual std::unique_ptr<AppendFile> open_append(const std::string& path) = 0;

  /// Atomically replaces `to` with `from` (POSIX rename semantics).
  virtual void rename_file(const std::string& from, const std::string& to) = 0;

  /// Fsyncs the directory itself — the step that makes a rename durable.
  /// Without it, a crash after rename can resurrect the old directory entry.
  virtual void sync_dir(const std::string& dir) = 0;

  virtual void remove_file(const std::string& path) = 0;
  virtual bool file_exists(const std::string& path) const = 0;
  virtual void truncate_file(const std::string& path, std::size_t size) = 0;
  /// mkdir -p.
  virtual void create_dirs(const std::string& dir) = 0;
};

/// Real files. All failures throw std::runtime_error: the durability layer
/// treats an I/O error as fatal for the process (a replica with a broken
/// disk must not limp along pretending to be durable).
class PosixEnv final : public Env {
 public:
  std::optional<Bytes> read_file(const std::string& path) const override;
  void write_file(const std::string& path, ByteView data) override;
  std::unique_ptr<AppendFile> open_append(const std::string& path) override;
  void rename_file(const std::string& from, const std::string& to) override;
  void sync_dir(const std::string& dir) override;
  void remove_file(const std::string& path) override;
  bool file_exists(const std::string& path) const override;
  void truncate_file(const std::string& path, std::size_t size) override;
  void create_dirs(const std::string& dir) override;
};

/// Deterministic in-memory filesystem with an unsynced-tail crash model.
class MemEnv final : public Env {
 public:
  std::optional<Bytes> read_file(const std::string& path) const override;
  void write_file(const std::string& path, ByteView data) override;
  std::unique_ptr<AppendFile> open_append(const std::string& path) override;
  void rename_file(const std::string& from, const std::string& to) override;
  void sync_dir(const std::string& dir) override { (void)dir; }
  void remove_file(const std::string& path) override;
  bool file_exists(const std::string& path) const override;
  void truncate_file(const std::string& path, std::size_t size) override;
  void create_dirs(const std::string& dir) override { (void)dir; }

  /// The simulated `kill -9`: every file whose path starts with `prefix`
  /// loses the bytes appended since its last sync(). The deployment passes
  /// the killed replica's state-dir prefix so one process's death cannot
  /// drop unsynced bytes from another replica's files; an empty prefix
  /// crashes the whole "machine".
  void drop_unsynced(const std::string& prefix = "");

  /// Direct mutable access for tests that corrupt bytes on "disk".
  Bytes* raw(const std::string& path);

  /// Observation hook fired on every sync (explicit AppendFile::sync and the
  /// implicit sync of write_file) with the synced path. The chaos engine's
  /// gray-failure family uses it to charge fsync-stall time to the replica
  /// whose state dir the path belongs to — a degraded disk, modeled at the
  /// exact seam where a real fsync would block.
  using SyncObserver = std::function<void(const std::string& path)>;
  void set_sync_observer(SyncObserver observer) {
    sync_observer_ = std::move(observer);
  }

 private:
  friend class MemAppendFile;
  void note_sync(const std::string& path) {
    if (sync_observer_) sync_observer_(path);
  }
  struct FileState {
    Bytes data;
    std::size_t synced_size = 0;
  };
  std::map<std::string, FileState> files_;
  SyncObserver sync_observer_;
};

}  // namespace ss::storage
