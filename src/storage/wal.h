// Checksummed write-ahead log of decided batches.
//
// One record per decided consensus instance, appended before the batch is
// executed and fsync'd before the replica acts on the decision:
//
//   [u32 len][u32 crc32][u64 seq][len payload bytes]      (all little-endian)
//
// `len` is the payload size, `seq` the ConsensusId, and the CRC covers
// seq + payload. Recovery scans front to back and TRUNCATES at the first
// record that is short, oversized, or fails its CRC — a torn tail from a
// crash mid-append is indistinguishable from bit rot, and both mean "these
// decisions were never durably logged", not "abort". Everything before the
// first bad byte is intact by construction (records are only ever appended).
//
// Checkpoints bound the log: truncate_through(seq) drops the durable prefix
// a checkpoint already covers by rewriting the suffix to wal.tmp and
// renaming it into place (with a directory fsync), so a crash at any point
// leaves either the old or the new log, never a spliced one.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "storage/env.h"

namespace ss::storage {

struct WalStats {
  std::uint64_t records_recovered = 0;  ///< intact records found at open
  std::uint64_t torn_bytes_dropped = 0; ///< tail bytes discarded at open
  std::uint64_t appends = 0;
  std::uint64_t truncations = 0;
};

class Wal {
 public:
  struct Record {
    std::uint64_t seq = 0;
    Bytes payload;
  };

  /// Opens (creating if missing) `dir`/wal, scans it, and truncates any
  /// torn tail in place so the next append lands on a clean boundary.
  Wal(Env& env, std::string dir);

  /// The intact records recovered at open time, in seq order as written.
  const std::vector<Record>& records() const { return records_; }

  /// Appends one record and fsyncs. The record is durable when this returns.
  void append(std::uint64_t seq, ByteView payload);

  /// Drops every record with seq <= `through` (atomic rewrite + rename +
  /// directory fsync). No-op when nothing would be dropped.
  void truncate_through(std::uint64_t through);

  const WalStats& stats() const { return stats_; }
  const std::string& path() const { return path_; }

 private:
  static Bytes encode_record(std::uint64_t seq, ByteView payload);
  void scan_and_repair();

  Env& env_;
  std::string dir_;
  std::string path_;
  std::unique_ptr<AppendFile> file_;
  std::vector<Record> records_;  // mirror of the on-disk log (bounded by the
                                 // checkpoint interval via truncate_through)
  WalStats stats_;
};

}  // namespace ss::storage
