// Per-replica durable state: one WAL + one checkpoint store under a state
// directory, plus the observability hooks for both.
//
// Layout of a state dir (e.g. $SS_STATE_DIR/replica-2):
//   snapshot       — newest atomic checkpoint (see checkpoint.h)
//   snapshot.tmp   — transient, only during a checkpoint write
//   wal            — decided batches since that checkpoint (see wal.h)
//   wal.tmp        — transient, only during a WAL truncation
//
// The ordering invariant the two files maintain together: the WAL record
// for cid is durable BEFORE the decision executes, and the WAL is truncated
// only AFTER the checkpoint covering those cids is durably renamed into
// place. Recovery therefore always finds checkpoint ∪ WAL ⊇ everything the
// replica ever acted on.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/metrics.h"
#include "storage/checkpoint.h"
#include "storage/env.h"
#include "storage/wal.h"

namespace ss::storage {

struct ReplicaStorageStats {
  std::uint64_t decisions_logged = 0;
  std::uint64_t checkpoints_written = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t records_replayed = 0;  ///< WAL records replayed, last recovery
};

class ReplicaStorage {
 public:
  /// Opens (creating if needed) the state dir, scans the WAL, and repairs
  /// any torn tail. `metrics_prefix` names this replica's polled stats
  /// source in the obs registry (e.g. "storage/replica-2").
  ReplicaStorage(Env& env, std::string dir, std::string metrics_prefix);

  /// Newest valid checkpoint, or nullopt for a fresh (or wiped) replica.
  std::optional<Checkpoint> load_checkpoint() { return checkpoints_.load(); }

  /// WAL records that survived the open-time scan, in append order.
  const std::vector<Wal::Record>& wal_records() const { return wal_.records(); }

  /// Durably logs a decided batch. Returns only once the record is synced;
  /// the fsync latency lands in the storage.fsync_ns histogram.
  void append_decision(ConsensusId cid, ByteView batch);

  /// Durably replaces the checkpoint, then drops the WAL prefix it covers.
  void write_checkpoint(const Checkpoint& checkpoint);

  /// Records a completed crash recovery (for the recoveries counter and the
  /// storage.recovery_ns histogram).
  void note_recovery(std::uint64_t duration_ns, std::uint64_t records_replayed);

  /// Durable session-key epoch (see bft::Replica::key_epoch). 0 until the
  /// first bump; survives crashes — a reincarnation must never reuse a
  /// pre-crash epoch, or stolen keys would verify again.
  std::uint32_t key_epoch() const { return epoch_; }
  /// Increments and durably persists the key epoch; returns the new value.
  std::uint32_t bump_epoch();

  /// Durable USIG counter lease (see crypto::Usig). Unlike the key epoch,
  /// a torn write here would be a safety violation — a reincarnation that
  /// reuses a counter value forges "monotonic" certificates — so the lease
  /// is persisted BEFORE any certificate it covers is issued, and the
  /// sync is part of write_file itself.
  std::uint64_t usig_lease() const { return usig_lease_; }
  void write_usig_lease(std::uint64_t lease);

  const ReplicaStorageStats& stats() const { return stats_; }
  const WalStats& wal_stats() const { return wal_.stats(); }
  const std::string& dir() const { return dir_; }

 private:
  Env& env_;
  std::string dir_;
  Wal wal_;
  CheckpointStore checkpoints_;
  std::uint32_t epoch_ = 0;
  std::uint64_t usig_lease_ = 0;
  ReplicaStorageStats stats_;
  obs::SourceHandle metrics_;
};

}  // namespace ss::storage
