// Atomic on-disk checkpoints of replica state.
//
// A checkpoint bundles the consensus frontier (cid + deterministic batch
// timestamp), the digest of the application snapshot (what cross-replica
// convergence checks compare), and the replica's full snapshot blob (app
// state + request-dedup table + reply cache — the same encoding state
// transfer ships over the wire).
//
// Write protocol (crash-atomic):
//   1. write snapshot.tmp and fsync it          — data durable, name not
//   2. rename snapshot.tmp -> snapshot          — atomic swap
//   3. fsync the containing directory           — the NAME is now durable
//
// A crash between 1 and 2 leaves a stale snapshot.tmp next to the previous
// good checkpoint; load() must (and does) ignore it. A crash between 2 and
// 3 may come back with either the old or the new checkpoint — both are
// self-consistent because the WAL is only truncated after step 3. The file
// carries a trailing CRC-32 so a torn step-1 write that somehow got renamed
// (or plain bit rot) reads as "no checkpoint", never as corrupt state.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "common/types.h"
#include "crypto/sha256.h"
#include "storage/env.h"

namespace ss::storage {

struct Checkpoint {
  ConsensusId cid{0};           ///< state is valid as of this decided instance
  SimTime last_timestamp = 0;   ///< deterministic timestamp at that frontier
  crypto::Digest app_digest{};  ///< Sha256 of the application snapshot
  Bytes full_snapshot;          ///< Replica::encode_full_snapshot payload
};

class CheckpointStore {
 public:
  CheckpointStore(Env& env, std::string dir);

  /// Loads the newest valid checkpoint. Stale `snapshot.tmp` leftovers from
  /// a crashed write are removed, not loaded; a checkpoint that fails its
  /// CRC or decode is treated as absent.
  std::optional<Checkpoint> load();

  /// Same validation as load(), but strictly read-only: a stale
  /// `snapshot.tmp` is still ignored, but left on disk untouched. For
  /// orchestrator-side audits of a state dir kept for inspection, where the
  /// tmp file is evidence of an interrupted write the user may want to
  /// examine.
  std::optional<Checkpoint> load_read_only() const;

  /// Durably replaces the checkpoint (tmp + rename + dir fsync, see above).
  void write(const Checkpoint& checkpoint);

  const std::string& path() const { return path_; }

 private:
  std::optional<Checkpoint> parse_current() const;

  Env& env_;
  std::string dir_;
  std::string path_;
  std::string tmp_path_;
};

}  // namespace ss::storage
