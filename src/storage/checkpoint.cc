#include "storage/checkpoint.h"

#include "common/logging.h"
#include "common/serialization.h"

namespace ss::storage {

namespace {

constexpr std::uint32_t kMagic = 0x53435031;  // "SCP1"

}  // namespace

CheckpointStore::CheckpointStore(Env& env, std::string dir)
    : env_(env),
      dir_(std::move(dir)),
      path_(dir_ + "/snapshot"),
      tmp_path_(dir_ + "/snapshot.tmp") {
  env_.create_dirs(dir_);
}

std::optional<Checkpoint> CheckpointStore::load() {
  // A leftover snapshot.tmp is a checkpoint write that never completed its
  // rename: its content is possibly torn and its name was never made
  // durable. It must be ignored — the previous `snapshot` (if any) is the
  // newest checkpoint that ever existed. Remove it so it cannot shadow a
  // later write either.
  if (env_.file_exists(tmp_path_)) {
    SS_LOG(LogLevel::kWarn, 0, path_.c_str(),
           "checkpoint: ignoring stale snapshot.tmp from an interrupted "
           "write");
    env_.remove_file(tmp_path_);
  }
  return parse_current();
}

std::optional<Checkpoint> CheckpointStore::load_read_only() const {
  // Deliberately no remove_file: a leftover snapshot.tmp is still never
  // loaded (it may be torn), but an audit must not destroy the evidence of
  // the interrupted write it came from.
  return parse_current();
}

std::optional<Checkpoint> CheckpointStore::parse_current() const {
  std::optional<Bytes> data = env_.read_file(path_);
  if (!data.has_value()) return std::nullopt;
  if (data->size() < 4) return std::nullopt;

  // Trailing CRC covers everything before it.
  ByteView body(data->data(), data->size() - 4);
  Reader crc_reader(ByteView(data->data() + data->size() - 4, 4));
  if (crc32(body) != crc_reader.u32()) {
    SS_LOG(LogLevel::kWarn, 0, path_.c_str(),
           "checkpoint: CRC mismatch, treating as absent");
    return std::nullopt;
  }

  try {
    Reader r(body);
    if (r.u32() != kMagic) return std::nullopt;
    Checkpoint out;
    out.cid = r.id<ConsensusId>();
    out.last_timestamp = r.i64();
    Bytes digest = r.blob();
    if (digest.size() != out.app_digest.size()) return std::nullopt;
    std::copy(digest.begin(), digest.end(), out.app_digest.begin());
    out.full_snapshot = r.blob();
    r.expect_done();
    return out;
  } catch (const DecodeError&) {
    SS_LOG(LogLevel::kWarn, 0, path_.c_str(),
           "checkpoint: malformed despite CRC, treating as absent");
    return std::nullopt;
  }
}

void CheckpointStore::write(const Checkpoint& checkpoint) {
  Writer w(checkpoint.full_snapshot.size() + 64);
  w.u32(kMagic);
  w.id(checkpoint.cid);
  w.i64(checkpoint.last_timestamp);
  w.blob(ByteView(checkpoint.app_digest.data(), checkpoint.app_digest.size()));
  w.blob(checkpoint.full_snapshot);
  std::uint32_t crc = crc32(w.bytes());
  w.u32(crc);

  env_.write_file(tmp_path_, w.bytes());   // data durable under the tmp name
  env_.rename_file(tmp_path_, path_);      // atomic swap
  env_.sync_dir(dir_);                     // the new name is durable too
}

}  // namespace ss::storage
