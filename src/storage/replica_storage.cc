#include "storage/replica_storage.h"

#include <chrono>
#include <cstdlib>

#include "common/bytes.h"

namespace ss::storage {

namespace {

std::uint64_t wall_ns() {
  // Wall-clock time feeds latency histograms only, never anything the
  // deterministic simulation compares across replicas or runs.
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ReplicaStorage::ReplicaStorage(Env& env, std::string dir,
                               std::string metrics_prefix)
    : env_(env),
      dir_(std::move(dir)),
      wal_(env_, dir_),
      checkpoints_(env_, dir_) {
  if (std::optional<Bytes> raw = env_.read_file(dir_ + "/epoch")) {
    std::string text(raw->begin(), raw->end());
    epoch_ = static_cast<std::uint32_t>(std::strtoul(text.c_str(), nullptr, 10));
  }
  if (std::optional<Bytes> raw = env_.read_file(dir_ + "/usig")) {
    std::string text(raw->begin(), raw->end());
    usig_lease_ = std::strtoull(text.c_str(), nullptr, 10);
  }
  metrics_ = obs::Registry::instance().add_source(
      std::move(metrics_prefix), [this](const obs::Registry::Emit& emit) {
        emit("decisions_logged", static_cast<double>(stats_.decisions_logged));
        emit("checkpoints_written",
             static_cast<double>(stats_.checkpoints_written));
        emit("recoveries", static_cast<double>(stats_.recoveries));
        emit("records_replayed", static_cast<double>(stats_.records_replayed));
        emit("wal_records_recovered",
             static_cast<double>(wal_.stats().records_recovered));
        emit("wal_torn_bytes_dropped",
             static_cast<double>(wal_.stats().torn_bytes_dropped));
        emit("wal_appends", static_cast<double>(wal_.stats().appends));
        emit("wal_truncations", static_cast<double>(wal_.stats().truncations));
        emit("key_epoch", static_cast<double>(epoch_));
      });
}

void ReplicaStorage::append_decision(ConsensusId cid, ByteView batch) {
  std::uint64_t start = wall_ns();
  wal_.append(cid.value, batch);
  obs::Registry::instance()
      .histogram("storage.fsync_ns")
      .record(static_cast<std::int64_t>(wall_ns() - start));
  ++stats_.decisions_logged;
}

void ReplicaStorage::write_checkpoint(const Checkpoint& checkpoint) {
  checkpoints_.write(checkpoint);
  // Only after the checkpoint's rename is durable may the WAL prefix it
  // covers disappear; the reverse order could lose decisions on a crash.
  std::uint64_t truncations_before = wal_.stats().truncations;
  wal_.truncate_through(checkpoint.cid.value);
  ++stats_.checkpoints_written;
  if (wal_.stats().truncations != truncations_before) {
    ++obs::Registry::instance().counter("storage.wal_truncations");
  }
}

std::uint32_t ReplicaStorage::bump_epoch() {
  ++epoch_;
  // write_file creates/truncates and syncs the file itself; a torn write
  // at worst loses the bump, which peers tolerate (the replica comes back
  // presenting its previous epoch, still accepted as current).
  std::string text = std::to_string(epoch_);
  env_.write_file(dir_ + "/epoch", ss::bytes_of(text));
  return epoch_;
}

void ReplicaStorage::write_usig_lease(std::uint64_t lease) {
  usig_lease_ = lease;
  std::string text = std::to_string(lease);
  env_.write_file(dir_ + "/usig", ss::bytes_of(text));
}

void ReplicaStorage::note_recovery(std::uint64_t duration_ns,
                                   std::uint64_t records_replayed) {
  ++stats_.recoveries;
  stats_.records_replayed = records_replayed;
  ++obs::Registry::instance().counter("storage.recoveries");
  obs::Registry::instance()
      .histogram("storage.recovery_ns")
      .record(static_cast<std::int64_t>(duration_ns));
}

}  // namespace ss::storage
