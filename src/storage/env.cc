#include "storage/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace ss::storage {

namespace {

[[noreturn]] void throw_errno(const std::string& what,
                              const std::string& path) {
  throw std::runtime_error(what + " " + path + ": " + std::strerror(errno));
}

class PosixAppendFile final : public AppendFile {
 public:
  PosixAppendFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~PosixAppendFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  void append(ByteView data) override {
    std::size_t done = 0;
    while (done < data.size()) {
      ssize_t n = ::write(fd_, data.data() + done, data.size() - done);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw_errno("write", path_);
      }
      done += static_cast<std::size_t>(n);
    }
  }

  void sync() override {
    if (::fsync(fd_) != 0) throw_errno("fsync", path_);
  }

 private:
  int fd_;
  std::string path_;
};

}  // namespace

std::optional<Bytes> PosixEnv::read_file(const std::string& path) const {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return std::nullopt;
    throw_errno("open", path);
  }
  Bytes out;
  std::uint8_t buf[64 * 1024];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw_errno("read", path);
    }
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  ::close(fd);
  return out;
}

void PosixEnv::write_file(const std::string& path, ByteView data) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno("open", path);
  PosixAppendFile file(fd, path);
  file.append(data);
  file.sync();
  // file's destructor closes fd (it took ownership).
}

std::unique_ptr<AppendFile> PosixEnv::open_append(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) throw_errno("open", path);
  return std::make_unique<PosixAppendFile>(fd, path);
}

void PosixEnv::rename_file(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) throw_errno("rename", from);
}

void PosixEnv::sync_dir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) throw_errno("open dir", dir);
  if (::fsync(fd) != 0) {
    ::close(fd);
    throw_errno("fsync dir", dir);
  }
  ::close(fd);
}

void PosixEnv::remove_file(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    throw_errno("unlink", path);
  }
}

bool PosixEnv::file_exists(const std::string& path) const {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

void PosixEnv::truncate_file(const std::string& path, std::size_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    throw_errno("truncate", path);
  }
}

void PosixEnv::create_dirs(const std::string& dir) {
  std::string partial;
  for (std::size_t i = 0; i <= dir.size(); ++i) {
    if (i < dir.size() && dir[i] != '/') continue;
    partial = dir.substr(0, i == dir.size() ? i : i + 1);
    if (partial.empty() || partial == "/") continue;
    if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
      throw_errno("mkdir", partial);
    }
  }
}

// --------------------------------------------------------------------------
// MemEnv

namespace {

class MemAppendFile final : public AppendFile {
 public:
  MemAppendFile(Bytes* data, std::size_t* synced_size,
                std::function<void()> on_sync)
      : data_(data), synced_size_(synced_size), on_sync_(std::move(on_sync)) {}

  void append(ByteView data) override {
    data_->insert(data_->end(), data.begin(), data.end());
  }

  void sync() override {
    *synced_size_ = data_->size();
    if (on_sync_) on_sync_();
  }

 private:
  Bytes* data_;
  std::size_t* synced_size_;
  std::function<void()> on_sync_;
};

}  // namespace

std::optional<Bytes> MemEnv::read_file(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return std::nullopt;
  return it->second.data;
}

void MemEnv::write_file(const std::string& path, ByteView data) {
  FileState& file = files_[path];
  file.data.assign(data.begin(), data.end());
  file.synced_size = file.data.size();
  note_sync(path);
}

std::unique_ptr<AppendFile> MemEnv::open_append(const std::string& path) {
  FileState& file = files_[path];
  // NOTE: the handle points into the map entry; MemEnv must outlive handles,
  // and remove_file on a file with an open handle is not supported (the
  // durability layer never does either).
  return std::make_unique<MemAppendFile>(&file.data, &file.synced_size,
                                         [this, path] { note_sync(path); });
}

void MemEnv::rename_file(const std::string& from, const std::string& to) {
  auto it = files_.find(from);
  if (it == files_.end()) {
    throw std::runtime_error("rename: no such file " + from);
  }
  files_[to] = std::move(it->second);
  files_.erase(it);
}

void MemEnv::remove_file(const std::string& path) { files_.erase(path); }

bool MemEnv::file_exists(const std::string& path) const {
  return files_.count(path) > 0;
}

void MemEnv::truncate_file(const std::string& path, std::size_t size) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    throw std::runtime_error("truncate: no such file " + path);
  }
  FileState& file = it->second;
  if (size < file.data.size()) file.data.resize(size);
  if (file.synced_size > file.data.size()) {
    file.synced_size = file.data.size();
  }
}

void MemEnv::drop_unsynced(const std::string& prefix) {
  for (auto& [path, file] : files_) {
    if (path.compare(0, prefix.size(), prefix) != 0) continue;
    if (file.data.size() > file.synced_size) {
      file.data.resize(file.synced_size);
    }
  }
}

Bytes* MemEnv::raw(const std::string& path) {
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : &it->second.data;
}

}  // namespace ss::storage

