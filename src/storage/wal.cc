#include "storage/wal.h"

#include "common/logging.h"
#include "common/serialization.h"

namespace ss::storage {

namespace {

constexpr std::size_t kHeaderSize = 4 + 4 + 8;  // len + crc + seq

std::uint32_t record_crc(std::uint64_t seq, ByteView payload) {
  Writer w(payload.size() + 8);
  w.u64(seq);
  w.raw(payload);
  return crc32(w.bytes());
}

}  // namespace

Wal::Wal(Env& env, std::string dir)
    : env_(env), dir_(std::move(dir)), path_(dir_ + "/wal") {
  env_.create_dirs(dir_);
  scan_and_repair();
  file_ = env_.open_append(path_);
}

void Wal::scan_and_repair() {
  std::optional<Bytes> data = env_.read_file(path_);
  if (!data.has_value()) return;

  std::size_t pos = 0;
  while (pos < data->size()) {
    if (data->size() - pos < kHeaderSize) break;  // torn header
    Reader header(ByteView(data->data() + pos, kHeaderSize));
    std::uint32_t len = header.u32();
    std::uint32_t stored_crc = header.u32();
    std::uint64_t seq = header.u64();
    if (data->size() - pos - kHeaderSize < len) break;  // torn payload
    ByteView payload(data->data() + pos + kHeaderSize, len);
    if (record_crc(seq, payload) != stored_crc) break;  // corrupt record
    records_.push_back(Record{seq, Bytes(payload.begin(), payload.end())});
    pos += kHeaderSize + len;
  }
  stats_.records_recovered = records_.size();

  if (pos < data->size()) {
    // Torn tail: the bytes from `pos` on never became a complete record.
    // Truncating (rather than aborting) is safe because the append path
    // syncs each record before the decision takes effect — anything torn
    // was, by definition, not yet acted on.
    stats_.torn_bytes_dropped = data->size() - pos;
    SS_LOG(LogLevel::kWarn, 0, path_.c_str(),
           "wal: dropping %zu torn/corrupt tail bytes after %zu records",
           data->size() - pos, records_.size());
    env_.truncate_file(path_, pos);
  }
}

Bytes Wal::encode_record(std::uint64_t seq, ByteView payload) {
  Writer w(kHeaderSize + payload.size());
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(record_crc(seq, payload));
  w.u64(seq);
  w.raw(payload);
  return std::move(w).take();
}

void Wal::append(std::uint64_t seq, ByteView payload) {
  file_->append(encode_record(seq, payload));
  file_->sync();
  records_.push_back(Record{seq, Bytes(payload.begin(), payload.end())});
  ++stats_.appends;
}

void Wal::truncate_through(std::uint64_t through) {
  std::size_t keep_from = 0;
  while (keep_from < records_.size() && records_[keep_from].seq <= through) {
    ++keep_from;
  }
  if (keep_from == 0) return;

  Writer w;
  for (std::size_t i = keep_from; i < records_.size(); ++i) {
    w.raw(encode_record(records_[i].seq, records_[i].payload));
  }
  // Atomic swap: a crash before the rename leaves the old (longer) log, a
  // crash after it leaves the new one; both replay correctly against the
  // checkpoint that triggered the truncation.
  const std::string tmp = path_ + ".tmp";
  env_.write_file(tmp, w.bytes());
  env_.rename_file(tmp, path_);
  env_.sync_dir(dir_);
  file_ = env_.open_append(path_);

  records_.erase(records_.begin(),
                 records_.begin() + static_cast<std::ptrdiff_t>(keep_from));
  ++stats_.truncations;
}

}  // namespace ss::storage
