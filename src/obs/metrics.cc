#include "obs/metrics.h"

#include <bit>
#include <cinttypes>
#include <cmath>
#include <utility>

namespace ss::obs {

// --- Histogram -------------------------------------------------------------

std::size_t Histogram::index_of(std::uint64_t v) {
  if (v < kSubBuckets) return static_cast<std::size_t>(v);
  // Leading-bit position e in [kSubBits, 63]; group g >= 1 covers
  // [kSubBuckets << (g-1), kSubBuckets << g) in kSubBuckets equal steps.
  const std::uint32_t e = static_cast<std::uint32_t>(std::bit_width(v)) - 1;
  const std::uint32_t g = e - kSubBits + 1;
  const std::uint64_t sub = (v >> (e - kSubBits)) - kSubBuckets;
  return static_cast<std::size_t>(g) * kSubBuckets +
         static_cast<std::size_t>(sub);
}

std::uint64_t Histogram::lower_bound_of(std::size_t index) {
  if (index < kSubBuckets) return index;
  const std::size_t g = index / kSubBuckets;
  const std::size_t sub = index % kSubBuckets;
  return static_cast<std::uint64_t>(kSubBuckets + sub) << (g - 1);
}

std::uint64_t Histogram::width_of(std::size_t index) {
  if (index < kSubBuckets) return 1;
  return std::uint64_t{1} << (index / kSubBuckets - 1);
}

void Histogram::record(std::int64_t value) {
  if (value < 0) value = 0;  // latencies; clamp defensively
  if (buckets_.empty()) buckets_.assign(kBucketCount, 0);
  ++buckets_[index_of(static_cast<std::uint64_t>(value))];
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  ++count_;
  sum_ += static_cast<double>(value);
}

std::int64_t Histogram::percentile(double p) const {
  if (count_ == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Nearest rank: the k-th smallest recorded value, k in [1, count].
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      const std::uint64_t lb = lower_bound_of(i);
      const std::uint64_t mid = lb + (width_of(i) - 1) / 2;
      // Never report outside the observed range.
      const std::uint64_t lo = static_cast<std::uint64_t>(min_);
      const std::uint64_t hi = static_cast<std::uint64_t>(max_);
      return static_cast<std::int64_t>(mid < lo ? lo : (mid > hi ? hi : mid));
    }
  }
  return max_;
}

void Histogram::reset() {
  buckets_.clear();
  count_ = 0;
  min_ = max_ = 0;
  sum_ = 0.0;
}

// --- SourceHandle ----------------------------------------------------------

SourceHandle::SourceHandle(SourceHandle&& other) noexcept
    : registry_(other.registry_), id_(other.id_) {
  other.registry_ = nullptr;
  other.id_ = 0;
}

SourceHandle& SourceHandle::operator=(SourceHandle&& other) noexcept {
  if (this != &other) {
    release();
    registry_ = other.registry_;
    id_ = other.id_;
    other.registry_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

SourceHandle::~SourceHandle() { release(); }

void SourceHandle::release() {
  if (registry_ != nullptr) registry_->remove_source(id_);
  registry_ = nullptr;
  id_ = 0;
}

// --- Registry --------------------------------------------------------------

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

std::uint64_t& Registry::counter(const std::string& name) {
  return counters_[name];
}

double& Registry::gauge(const std::string& name) { return gauges_[name]; }

Histogram& Registry::histogram(const std::string& name) {
  return histograms_[name];
}

SourceHandle Registry::add_source(std::string prefix, SnapshotFn fn) {
  const std::uint64_t id = next_source_id_++;
  sources_.push_back(Source{id, std::move(prefix), std::move(fn)});
  return SourceHandle(this, id);
}

void Registry::remove_source(std::uint64_t id) {
  for (auto it = sources_.begin(); it != sources_.end(); ++it) {
    if (it->id == id) {
      sources_.erase(it);
      return;
    }
  }
}

void Registry::for_each_histogram(
    const std::function<void(const std::string&, const Histogram&)>& fn)
    const {
  for (const auto& [name, h] : histograms_) fn(name, h);
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

void append_number(std::string& out, double v) {
  char buf[32];
  if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<std::int64_t>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
  }
  out += buf;
}

}  // namespace

std::string Registry::json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters_) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    append_escaped(out, name);
    out += "\":";
    append_number(out, static_cast<double>(v));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges_) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    append_escaped(out, name);
    out += "\":";
    append_number(out, v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    append_escaped(out, name);
    out += "\":{\"count\":";
    append_number(out, static_cast<double>(h.count()));
    out += ",\"min\":";
    append_number(out, static_cast<double>(h.min()));
    out += ",\"max\":";
    append_number(out, static_cast<double>(h.max()));
    out += ",\"mean\":";
    append_number(out, h.mean());
    out += ",\"p50\":";
    append_number(out, static_cast<double>(h.percentile(50)));
    out += ",\"p90\":";
    append_number(out, static_cast<double>(h.percentile(90)));
    out += ",\"p99\":";
    append_number(out, static_cast<double>(h.percentile(99)));
    out.push_back('}');
  }
  out += "},\"sources\":{";
  first = true;
  for (const auto& source : sources_) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    append_escaped(out, source.prefix);
    out += "\":{";
    bool first_field = true;
    source.fn([&](const char* name, double value) {
      if (!first_field) out.push_back(',');
      first_field = false;
      out.push_back('"');
      append_escaped(out, name);
      out += "\":";
      append_number(out, value);
    });
    out.push_back('}');
  }
  out += "}}";
  return out;
}

void Registry::dump_json(std::FILE* out) const {
  const std::string s = json();
  std::fwrite(s.data(), 1, s.size(), out);
  std::fputc('\n', out);
}

void Registry::reset() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace ss::obs
