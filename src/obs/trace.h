// Unified observability: op-level trace spans and the flight recorder.
//
// A SCADA operation already carries a process-wide identity — the OpId
// minted by the HMI or Frontend and propagated in every ScadaMessage's
// MsgContext (the paper's ContextInfo). The Tracer piggybacks on it: each
// component brackets its part of the op with begin(op, stage) / end(op,
// stage), and the completed spans form a cross-component timeline:
//
//   hmi > frontend > agreement > master/adapter > rtu > voter
//
// Spans are process-local (begin and end always run in the same process),
// so durations need no cross-host clock sync. In the sim backend every
// component shares one virtual clock and spans from different "processes"
// line up exactly; in the UDP deployment each process dumps its spans to
// SS_TRACE_DIR and the orchestrator merges them by op id.
//
// The FlightRecorder is a bounded ring of recent spans and log lines,
// dumped to stderr when a chaos invariant fires or a deploy process
// crashes — the last few thousand events before the failure, for free.
//
// Single-threaded like the rest of the codebase; no locks.
#pragma once

#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace ss::obs {

struct Span {
  std::uint64_t op = 0;
  std::string stage;      // frontend | agreement | master | adapter | rtu | voter | hmi
  std::string component;  // emitting component, e.g. "proxy/frontend"
  SimTime begin = 0;
  SimTime end = 0;

  SimTime duration() const { return end - begin; }
};

/// Bounded ring buffer of recent observability events (completed spans and
/// captured log lines). dump() prints the tail of history — cheap enough to
/// keep always-on, detailed enough to explain a crash.
class FlightRecorder {
 public:
  static FlightRecorder& instance();

  void set_capacity(std::size_t n);
  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return ring_.size(); }

  void note(SimTime at, std::string text);
  void add_span(const Span& span);

  /// Installs a Logger capture hook so every SS_LOG line (at any level)
  /// is recorded here in addition to its normal destination.
  void capture_logs();

  std::string dump_string() const;
  void dump(std::FILE* out) const;
  void clear();

 private:
  struct Entry {
    SimTime at = 0;
    std::string text;
  };

  std::deque<Entry> ring_;
  std::size_t capacity_ = 4096;
};

/// Per-process span tracker keyed by (op, stage). begin()/end() cover async
/// stages; record() covers synchronous ones measured by the caller.
class Tracer {
 public:
  static Tracer& instance();

  /// Time source for begin()/end(). Deployments point this at their
  /// transport clock (sim virtual time or socket monotonic time) and clear
  /// it on teardown. Unset clock reads as 0 — spans still form, with zero
  /// durations.
  void set_clock(std::function<SimTime()> clock) { clock_ = std::move(clock); }
  SimTime now() const { return clock_ ? clock_() : 0; }

  void begin(OpId op, const char* stage, const char* component = "");
  /// Completes an open span; no-op if begin() was never called for the key.
  void end(OpId op, const char* stage);
  /// Records an already-measured span in one call.
  void record(OpId op, const char* stage, const char* component, SimTime begin,
              SimTime end);

  /// Completed spans, oldest first, bounded by capacity.
  const std::deque<Span>& spans() const { return spans_; }
  std::vector<Span> spans_for(OpId op) const;
  bool has_span(OpId op, const std::string& stage) const;

  void dump_jsonl(std::FILE* out) const;

  void set_capacity(std::size_t n);
  /// Drops completed and open spans; keeps the clock.
  void reset();

 private:
  struct Open {
    std::string component;
    SimTime begin = 0;
    std::uint64_t seq = 0;  // admission order, for FIFO eviction
  };
  using Key = std::pair<std::uint64_t, std::string>;

  void finish(const Span& span);
  void evict_open_if_needed();

  std::function<SimTime()> clock_;
  std::map<Key, Open> open_;
  // FIFO of (key, seq) for bounding open_; entries whose seq no longer
  // matches are stale (the span ended or was restarted) and are skipped.
  std::deque<std::pair<Key, std::uint64_t>> open_order_;
  std::deque<Span> spans_;
  std::size_t capacity_ = 8192;
  std::uint64_t next_seq_ = 1;
};

}  // namespace ss::obs
