#include "obs/trace.h"

#include <cinttypes>

#include "common/logging.h"
#include "obs/metrics.h"

namespace ss::obs {

// --- FlightRecorder --------------------------------------------------------

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::set_capacity(std::size_t n) {
  capacity_ = n == 0 ? 1 : n;
  while (ring_.size() > capacity_) ring_.pop_front();
}

void FlightRecorder::note(SimTime at, std::string text) {
  if (ring_.size() >= capacity_) ring_.pop_front();
  ring_.push_back(Entry{at, std::move(text)});
}

void FlightRecorder::add_span(const Span& span) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "span op=%" PRIu64 " stage=%s component=%s dur=%" PRId64 "ns",
                span.op, span.stage.c_str(), span.component.c_str(),
                span.duration());
  note(span.end, buf);
}

void FlightRecorder::capture_logs() {
  Logger::set_capture([](LogLevel level, SimTime now, const char* component,
                         const char* message) {
    char buf[512];
    std::snprintf(buf, sizeof(buf), "log %-5s %s: %s",
                  Logger::level_name(level), component, message);
    FlightRecorder::instance().note(now, buf);
  });
}

std::string FlightRecorder::dump_string() const {
  std::string out;
  char head[96];
  std::snprintf(head, sizeof(head),
                "--- flight recorder (%zu of last %zu events) ---\n",
                ring_.size(), capacity_);
  out += head;
  for (const Entry& e : ring_) {
    char stamp[48];
    std::snprintf(stamp, sizeof(stamp), "[%12.3fms] ",
                  static_cast<double>(e.at) / kNanosPerMilli);
    out += stamp;
    out += e.text;
    out.push_back('\n');
  }
  out += "--- end flight recorder ---\n";
  return out;
}

void FlightRecorder::dump(std::FILE* out) const {
  const std::string s = dump_string();
  std::fwrite(s.data(), 1, s.size(), out);
  std::fflush(out);
}

void FlightRecorder::clear() { ring_.clear(); }

// --- Tracer ----------------------------------------------------------------

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::begin(OpId op, const char* stage, const char* component) {
  if (op.value == 0) return;  // unattributed traffic (e.g. subscribes)
  const Key key{op.value, stage};
  const std::uint64_t seq = next_seq_++;
  open_[key] = Open{component, now(), seq};
  open_order_.emplace_back(key, seq);
  evict_open_if_needed();
}

void Tracer::end(OpId op, const char* stage) {
  if (op.value == 0) return;
  const auto it = open_.find(Key{op.value, stage});
  if (it == open_.end()) return;
  Span span;
  span.op = op.value;
  span.stage = stage;
  span.component = it->second.component;
  span.begin = it->second.begin;
  span.end = now();
  open_.erase(it);
  finish(span);
}

void Tracer::record(OpId op, const char* stage, const char* component,
                    SimTime begin, SimTime end) {
  if (op.value == 0) return;
  Span span;
  span.op = op.value;
  span.stage = stage;
  span.component = component;
  span.begin = begin;
  span.end = end;
  finish(span);
}

void Tracer::finish(const Span& span) {
  if (spans_.size() >= capacity_) spans_.pop_front();
  spans_.push_back(span);
  Registry::instance()
      .histogram(std::string("stage/") + span.stage)
      .record(span.duration());
  FlightRecorder::instance().add_span(span);
}

void Tracer::evict_open_if_needed() {
  // Ops that never complete (lost writes, timeouts) would otherwise leak
  // open spans; drop the oldest once the table is full.
  constexpr std::size_t kMaxOpen = 4096;
  while (open_.size() > kMaxOpen && !open_order_.empty()) {
    const auto [key, seq] = open_order_.front();
    open_order_.pop_front();
    const auto it = open_.find(key);
    if (it != open_.end() && it->second.seq == seq) open_.erase(it);
  }
  // Keep the FIFO itself bounded despite stale entries.
  while (open_order_.size() > 4 * kMaxOpen) open_order_.pop_front();
}

std::vector<Span> Tracer::spans_for(OpId op) const {
  std::vector<Span> out;
  for (const Span& s : spans_) {
    if (s.op == op.value) out.push_back(s);
  }
  return out;
}

bool Tracer::has_span(OpId op, const std::string& stage) const {
  for (const Span& s : spans_) {
    if (s.op == op.value && s.stage == stage) return true;
  }
  return false;
}

void Tracer::dump_jsonl(std::FILE* out) const {
  for (const Span& s : spans_) {
    std::fprintf(out,
                 "{\"op\":%" PRIu64
                 ",\"stage\":\"%s\",\"component\":\"%s\",\"begin_ns\":%" PRId64
                 ",\"end_ns\":%" PRId64 ",\"dur_ns\":%" PRId64 "}\n",
                 s.op, s.stage.c_str(), s.component.c_str(), s.begin, s.end,
                 s.duration());
  }
}

void Tracer::set_capacity(std::size_t n) {
  capacity_ = n == 0 ? 1 : n;
  while (spans_.size() > capacity_) spans_.pop_front();
}

void Tracer::reset() {
  open_.clear();
  open_order_.clear();
  spans_.clear();
  next_seq_ = 1;
}

}  // namespace ss::obs
