// Unified observability: per-process metrics registry.
//
// The repo grew ~10 per-component `Stats` structs (SocketStats,
// ReplicaStats, AdapterStats, PushVoterStats, ...) that are cheap to bump
// but invisible from the outside: nothing aggregated them, nothing could
// dump them, and nothing computed percentiles. The Registry fixes that
// without touching a single increment call site:
//
//  * Components keep their plain structs and `++stats_.field` increments.
//    At construction they register a *snapshot source* — a callback that
//    enumerates (name, value) pairs on demand. The RAII SourceHandle
//    removes the source when the component dies, so short-lived components
//    in tests don't leak registrations.
//  * Latency measurements go into log-linear Histograms (HdrHistogram
//    style): 16 sub-buckets per power of two, so any recorded value is off
//    by at most ~6% when read back through percentile(). A histogram is
//    ~8 KB and record() is a handful of arithmetic ops — cheap enough for
//    the hot path.
//  * dump_json() serialises everything (owned counters/gauges, histogram
//    percentiles, polled sources) as one JSON object per call; deploy
//    processes emit it periodically and on SIGUSR1.
//
// Everything here is single-threaded by design, like the rest of the
// codebase: each process runs one event loop, so there are no locks.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace ss::obs {

/// Log-linear histogram of non-negative integer values (typically latency
/// in nanoseconds). Values below 2^kSubBits are exact; above that each
/// power-of-two range is split into kSubBuckets equal sub-buckets, bounding
/// the relative error of percentile() by 1/kSubBuckets.
class Histogram {
 public:
  static constexpr std::uint32_t kSubBits = 4;
  static constexpr std::uint32_t kSubBuckets = 1u << kSubBits;  // 16
  // Values occupy up to 64 bits: one unit-width group for [0, 16) plus one
  // 16-wide group per leading-bit position from 4 to 63.
  static constexpr std::size_t kBucketCount = kSubBuckets * 61;

  void record(std::int64_t value);

  std::uint64_t count() const { return count_; }
  std::int64_t min() const { return count_ ? min_ : 0; }
  std::int64_t max() const { return count_ ? max_ : 0; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }

  /// Nearest-rank percentile, p in [0, 100]. Returns the representative
  /// (midpoint) value of the bucket holding the rank; 0 when empty.
  std::int64_t percentile(double p) const;

  void reset();

 private:
  static std::size_t index_of(std::uint64_t v);
  static std::uint64_t lower_bound_of(std::size_t index);
  static std::uint64_t width_of(std::size_t index);

  std::vector<std::uint64_t> buckets_;  // sized lazily on first record()
  std::uint64_t count_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  double sum_ = 0.0;
};

class Registry;

/// RAII registration of a snapshot source; removes itself on destruction.
class SourceHandle {
 public:
  SourceHandle() = default;
  SourceHandle(SourceHandle&& other) noexcept;
  SourceHandle& operator=(SourceHandle&& other) noexcept;
  ~SourceHandle();

  SourceHandle(const SourceHandle&) = delete;
  SourceHandle& operator=(const SourceHandle&) = delete;

 private:
  friend class Registry;
  SourceHandle(Registry* registry, std::uint64_t id)
      : registry_(registry), id_(id) {}
  void release();

  Registry* registry_ = nullptr;
  std::uint64_t id_ = 0;
};

/// Per-process metrics registry. Holds owned counters/gauges/histograms
/// (created on first access by name) and polled snapshot sources backed by
/// the components' existing Stats structs.
class Registry {
 public:
  /// Emit callback handed to snapshot sources: (field name, value).
  using Emit = std::function<void(const char* name, double value)>;
  /// A source enumerates its current stats fields through `emit`.
  using SnapshotFn = std::function<void(const Emit& emit)>;

  static Registry& instance();

  std::uint64_t& counter(const std::string& name);
  double& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Registers a polled source under `prefix` (e.g. "replica/2"). Fields
  /// appear in dumps as prefix.field. Keep the handle alive as long as the
  /// memory the callback reads.
  [[nodiscard]] SourceHandle add_source(std::string prefix, SnapshotFn fn);

  void for_each_histogram(
      const std::function<void(const std::string&, const Histogram&)>& fn)
      const;

  /// One JSON object covering counters, gauges, histogram summaries
  /// (count/min/max/mean/p50/p90/p99), and all polled sources.
  std::string json() const;
  void dump_json(std::FILE* out) const;

  /// Clears owned counters/gauges/histograms. Sources stay registered
  /// (their backing structs belong to the components).
  void reset();

 private:
  friend class SourceHandle;
  void remove_source(std::uint64_t id);

  struct Source {
    std::uint64_t id;
    std::string prefix;
    SnapshotFn fn;
  };

  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::vector<Source> sources_;
  std::uint64_t next_source_id_ = 1;
};

}  // namespace ss::obs
