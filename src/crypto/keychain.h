// Pairwise session keys and MAC vectors for the replica group.
//
// Each pair of principals (replica or client) shares a symmetric key derived
// deterministically from a group secret — standing in for the session-key
// establishment BFT-SMaRt performs at connection setup. A MacVector is the
// PBFT-style authenticator: one MAC per replica, so a message broadcast to
// the group can be verified by every replica without public-key operations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/config.h"
#include "crypto/hmac.h"

namespace ss::crypto {

/// A principal name: "replica/3", "client/17", etc.
std::string replica_principal(ss::ReplicaId id);
std::string client_principal(ss::ClientId id);

class Keychain {
 public:
  /// `group_secret` seeds every derived pairwise key.
  explicit Keychain(std::string group_secret)
      : secret_(std::move(group_secret)) {}

  /// Symmetric key shared by principals a and b (order-insensitive).
  Bytes pair_key(const std::string& a, const std::string& b) const;

  /// Session key for messages sent by `sender` to `receiver` under the
  /// sender's key epoch. Epoch 0 is the provisioning-time pair key
  /// (order-insensitive; clients and adapters stay on it forever). Epoch
  /// e > 0 is the direction-sensitive key a replica derives at its e-th
  /// reincarnation. Derivation requires the group secret — standing in for
  /// SecureSMART's tamper-proof key store — so stealing a replica's epoch-e
  /// session keys yields nothing about its post-recovery epoch-(e+1) keys.
  Bytes session_key(const std::string& sender, const std::string& receiver,
                    std::uint32_t epoch) const;

  Digest mac(const std::string& sender, const std::string& receiver,
             ByteView message) const;
  Digest mac(const std::string& sender, const std::string& receiver,
             std::uint32_t epoch, ByteView message) const;

  bool verify(const std::string& sender, const std::string& receiver,
              ByteView message, const Digest& mac_value) const;
  bool verify(const std::string& sender, const std::string& receiver,
              std::uint32_t epoch, ByteView message,
              const Digest& mac_value) const;

 private:
  std::string secret_;
};

/// One MAC per replica: the authenticator attached to group broadcasts.
struct MacVector {
  std::vector<Digest> macs;  // indexed by replica id

  static MacVector create(const Keychain& chain, const std::string& sender,
                          const GroupConfig& group, ByteView message);

  bool verify_entry(const Keychain& chain, const std::string& sender,
                    ss::ReplicaId receiver, ByteView message) const;
};

}  // namespace ss::crypto
