// HMAC-SHA-256 (RFC 2104).
//
// BFT-SMaRt authenticates point-to-point channels with MACs rather than
// per-message signatures for the common case; we do the same. The paper's
// TLS channels between components and their proxies are likewise replaced
// by HMAC-authenticated sim links (same integrity/authenticity property).
#pragma once

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace ss::crypto {

Digest hmac_sha256(ByteView key, ByteView message);

/// Verifies in constant time.
bool hmac_verify(ByteView key, ByteView message, const Digest& mac);

}  // namespace ss::crypto
