// Simulated USIG: the Unique Sequential Identifier Generator of MinBFT
// (Veronese et al., "Efficient Byzantine Fault-Tolerance").
//
// A real USIG is a tamper-proof component (TPM / SGX enclave) that binds a
// strictly monotonic counter to each message it certifies; because even a
// compromised replica cannot produce two certificates with the same counter
// value, equivocation becomes detectable and the protocol runs with 2f+1
// replicas and f+1 quorums. Here the tamper-proof boundary is simulated the
// same way the Keychain simulates session-key establishment: the signing
// key derives from the group secret, which replica application code never
// holds directly — stealing a replica's session keys does not let an
// attacker mint counter certificates.
//
// Durability uses a counter *lease*: the counter's upper bound is persisted
// every `kLeaseStep` increments (through a caller-supplied sink, storage
// Env-backed in production), and a restarting USIG resumes from the
// persisted lease. The counter therefore never repeats a value across a
// crash — it may skip up to kLeaseStep values, which is harmless: USIG
// consumers require monotonicity, not contiguity.
#pragma once

#include <cstdint>
#include <functional>

#include "common/bytes.h"
#include "common/types.h"
#include "crypto/keychain.h"
#include "crypto/sha256.h"

namespace ss::crypto {

/// UI in MinBFT terms: a counter value sealed to a message by the trusted
/// component's HMAC. Verifiable by every replica (the verification key
/// derives from the group secret), forgeable by none.
struct UsigCert {
  std::uint64_t counter = 0;
  Digest mac{};
};

class Usig {
 public:
  /// Counter values covered by one durable lease write.
  static constexpr std::uint64_t kLeaseStep = 64;

  Usig(const Keychain& keys, ReplicaId id);

  /// Installs the durable counter lease: `stored_lease` is the last value
  /// the sink persisted (0 if none) and `persist` is invoked — before any
  /// covered certificate is produced — whenever the lease advances. The
  /// counter resumes at the stored lease so no value issued before a crash
  /// is ever reissued after it.
  void attach_persistence(std::uint64_t stored_lease,
                          std::function<void(std::uint64_t)> persist);

  /// Increments the counter and seals it to `material`. Total order: each
  /// call returns a strictly larger counter than every earlier call,
  /// including calls made by pre-crash incarnations (given persistence).
  UsigCert certify(ByteView material);

  /// Last counter value issued.
  std::uint64_t counter() const { return counter_; }

  /// Verifies that `cert` seals `material` under `signer`'s trusted
  /// counter. Pure function of its inputs — safe from worker threads.
  static bool verify(const Keychain& keys, ReplicaId signer, ByteView material,
                     const UsigCert& cert);

 private:
  const Keychain& keys_;
  ReplicaId id_;
  std::uint64_t counter_ = 0;
  std::uint64_t lease_ = 0;  ///< certificates above this need a lease write
  std::function<void(std::uint64_t)> persist_;
};

}  // namespace ss::crypto
