#include "crypto/usig.h"

#include "common/serialization.h"
#include "crypto/hmac.h"

namespace ss::crypto {

namespace {

/// The per-replica trusted-counter key. Derived from the group secret via
/// the keychain's pair-key machinery under a reserved principal name no
/// replica or client ever uses on the wire.
Bytes usig_key(const Keychain& keys, ReplicaId id) {
  std::string principal = "usig/" + std::to_string(id.value);
  return keys.pair_key(principal, principal);
}

Bytes usig_material(std::uint64_t counter, ByteView material) {
  Writer w(material.size() + 10);
  w.varint(counter);
  w.raw(material);
  return std::move(w).take();
}

}  // namespace

Usig::Usig(const Keychain& keys, ReplicaId id) : keys_(keys), id_(id) {}

void Usig::attach_persistence(std::uint64_t stored_lease,
                              std::function<void(std::uint64_t)> persist) {
  persist_ = std::move(persist);
  lease_ = stored_lease;
  // Values up to the stored lease may have been issued by a pre-crash
  // incarnation whose exact counter was lost; skip past all of them.
  if (counter_ < stored_lease) counter_ = stored_lease;
}

UsigCert Usig::certify(ByteView material) {
  std::uint64_t next = counter_ + 1;
  if (next > lease_ && persist_) {
    // Extend the lease *before* the certificate exists: a crash between the
    // two leaves an unused gap, never a repeated counter value.
    lease_ = next + kLeaseStep - 1;
    persist_(lease_);
  }
  counter_ = next;
  UsigCert cert;
  cert.counter = next;
  cert.mac = hmac_sha256(usig_key(keys_, id_), usig_material(next, material));
  return cert;
}

bool Usig::verify(const Keychain& keys, ReplicaId signer, ByteView material,
                  const UsigCert& cert) {
  return hmac_verify(usig_key(keys, signer),
                     usig_material(cert.counter, material), cert.mac);
}

}  // namespace ss::crypto
