#include "crypto/keychain.h"

#include <algorithm>

namespace ss::crypto {

std::string replica_principal(ss::ReplicaId id) {
  return "replica/" + std::to_string(id.value);
}

std::string client_principal(ss::ClientId id) {
  return "client/" + std::to_string(id.value);
}

Bytes Keychain::pair_key(const std::string& a, const std::string& b) const {
  const std::string& lo = std::min(a, b);
  const std::string& hi = std::max(a, b);
  std::string material = secret_ + "|" + lo + "|" + hi;
  Digest d = Sha256::hash(ss::bytes_of(material));
  return Bytes(d.begin(), d.end());
}

Bytes Keychain::session_key(const std::string& sender,
                            const std::string& receiver,
                            std::uint32_t epoch) const {
  if (epoch == 0) return pair_key(sender, receiver);
  std::string material = secret_ + "|epoch/" + std::to_string(epoch) + "|" +
                         sender + "|" + receiver;
  Digest d = Sha256::hash(ss::bytes_of(material));
  return Bytes(d.begin(), d.end());
}

Digest Keychain::mac(const std::string& sender, const std::string& receiver,
                     ByteView message) const {
  return hmac_sha256(pair_key(sender, receiver), message);
}

Digest Keychain::mac(const std::string& sender, const std::string& receiver,
                     std::uint32_t epoch, ByteView message) const {
  return hmac_sha256(session_key(sender, receiver, epoch), message);
}

bool Keychain::verify(const std::string& sender, const std::string& receiver,
                      ByteView message, const Digest& mac_value) const {
  return hmac_verify(pair_key(sender, receiver), message, mac_value);
}

bool Keychain::verify(const std::string& sender, const std::string& receiver,
                      std::uint32_t epoch, ByteView message,
                      const Digest& mac_value) const {
  return hmac_verify(session_key(sender, receiver, epoch), message, mac_value);
}

MacVector MacVector::create(const Keychain& chain, const std::string& sender,
                            const GroupConfig& group, ByteView message) {
  MacVector v;
  v.macs.reserve(group.n);
  for (ss::ReplicaId id : group.replica_ids()) {
    v.macs.push_back(chain.mac(sender, replica_principal(id), message));
  }
  return v;
}

bool MacVector::verify_entry(const Keychain& chain, const std::string& sender,
                             ss::ReplicaId receiver, ByteView message) const {
  if (receiver.value >= macs.size()) return false;
  return chain.verify(sender, replica_principal(receiver), message,
                      macs[receiver.value]);
}

}  // namespace ss::crypto
