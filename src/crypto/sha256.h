// SHA-256 (FIPS 180-4).
//
// Used for request/reply digests (reply voting compares digests, not full
// payloads), replica state digests (the determinism tests), and as the PRF
// inside HMAC. This is a from-scratch implementation validated against the
// FIPS test vectors in tests/crypto_test.cc.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace ss::crypto {

using Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(ByteView data);
  Digest finish();

  /// One-shot convenience.
  static Digest hash(ByteView data) {
    Sha256 h;
    h.update(data);
    return h.finish();
  }

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::uint64_t total_len_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
};

std::string to_hex(const Digest& d);

/// Truncated 64-bit view of a digest, used as a cheap hash-map key.
std::uint64_t digest_prefix64(const Digest& d);

}  // namespace ss::crypto
