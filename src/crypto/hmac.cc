#include "crypto/hmac.h"

#include <array>

namespace ss::crypto {

Digest hmac_sha256(ByteView key, ByteView message) {
  std::array<std::uint8_t, 64> block{};
  if (key.size() > block.size()) {
    Digest kd = Sha256::hash(key);
    std::copy(kd.begin(), kd.end(), block.begin());
  } else {
    std::copy(key.begin(), key.end(), block.begin());
  }

  std::array<std::uint8_t, 64> ipad{};
  std::array<std::uint8_t, 64> opad{};
  for (std::size_t i = 0; i < block.size(); ++i) {
    ipad[i] = block[i] ^ 0x36;
    opad[i] = block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(ByteView(ipad));
  inner.update(message);
  Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(ByteView(opad));
  outer.update(ByteView(inner_digest));
  return outer.finish();
}

bool hmac_verify(ByteView key, ByteView message, const Digest& mac) {
  Digest expected = hmac_sha256(key, message);
  return constant_time_equal(ByteView(expected), ByteView(mac));
}

}  // namespace ss::crypto
