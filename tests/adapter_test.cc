// Unit tests for the Adapter in isolation: request routing, ContextInfo
// stamping, queries, malformed input, timeout-vote authentication, and
// snapshot/restore with timer re-arming.
#include <gtest/gtest.h>

#include "bft/replica.h"
#include "core/adapter.h"
#include "core/requests.h"
#include "sim/event_loop.h"
#include "sim/network.h"

namespace ss::core {
namespace {

// A tiny fake capturing pushes without a real Replica... the Adapter only
// needs push_to_client and charge(), so we use a real Replica with a null
// application around a *second* master? Simpler: the Adapter works without
// a replica attached (pushes are skipped); routing decisions are still
// visible through master counters and adapter stats.

struct AdapterHarness {
  sim::EventLoop loop;
  sim::Network net{loop, 0, 0};
  crypto::Keychain keys{"adapter-test"};
  GroupConfig group = GroupConfig::for_f(1);
  scada::ScadaMaster master;
  Adapter adapter;
  ItemId item;

  AdapterHarness()
      : master(make_master_options()),
        adapter(net, group, ReplicaId{0}, keys, master, make_options()) {
    adapter.register_client("hmi", ClientId{1});
    adapter.register_client("frontend", ClientId{2});
    item = master.add_item("x");
    // Subscribe the HMI so updates produce pushes.
    scada::Subscribe sub{scada::Channel::kDa, ItemId{0}, "hmi"};
    bft::ExecuteContext ctx;
    ctx.client = ClientId{1};
    adapter.execute_ordered(ctx,
                            CoreRequest::scada(scada::ScadaMessage{sub}).encode());
  }

  static scada::MasterOptions make_master_options() {
    scada::MasterOptions options;
    options.deterministic = true;
    return options;
  }

  static AdapterOptions make_options() {
    AdapterOptions options;
    options.write_timeout = millis(100);
    return options;
  }

  bft::ExecuteContext ctx(std::uint64_t cid, SimTime ts, std::uint32_t client) {
    bft::ExecuteContext c;
    c.cid = ConsensusId{cid};
    c.timestamp = ts;
    c.client = ClientId{client};
    return c;
  }
};

TEST(AdapterTest, StampsDeterministicContext) {
  AdapterHarness h;
  scada::ItemUpdate update;
  update.ctx.op = OpId{9};
  update.item = h.item;
  update.value = scada::Variant{5.0};

  Bytes reply = h.adapter.execute_ordered(
      h.ctx(7, millis(33), 2),
      CoreRequest::scada(scada::ScadaMessage{update}).encode());
  ASSERT_EQ(reply.size(), 1u);
  EXPECT_EQ(reply[0], 1);  // positive ack

  // The master saw the update with the agreed timestamp, not a local clock.
  const scada::Item* mirror = h.master.item(h.item);
  EXPECT_EQ(mirror->timestamp, millis(33));
  // 2: the harness's Subscribe plus this update.
  EXPECT_EQ(h.adapter.stats().scada_requests, 2u);
}

TEST(AdapterTest, MalformedRequestNegativeAckNoCrash) {
  AdapterHarness h;
  bft::ExecuteContext ctx = h.ctx(1, millis(1), 2);
  Bytes reply = h.adapter.execute_ordered(ctx, Bytes{0xff, 0xff, 0xff});
  ASSERT_EQ(reply.size(), 1u);
  EXPECT_EQ(reply[0], 0);  // deterministic negative ack
  // Valid CoreRequest wrapping garbage SCADA bytes: also a negative ack.
  CoreRequest req{CoreRequestKind::kScada, Bytes{0x77, 0x01}};
  reply = h.adapter.execute_ordered(ctx, req.encode());
  EXPECT_EQ(reply[0], 0);
}

TEST(AdapterTest, WriteArmsTimeoutAndWriteResultCancels) {
  AdapterHarness h;
  scada::WriteValue write;
  write.ctx.op = OpId{5};
  write.item = h.item;
  write.value = scada::Variant{1.0};
  h.adapter.execute_ordered(
      h.ctx(1, millis(1), 1),
      CoreRequest::scada(scada::ScadaMessage{write}).encode());
  EXPECT_EQ(h.adapter.stats().timeouts_armed, 1u);
  EXPECT_TRUE(h.master.has_pending_write(OpId{5}));

  scada::WriteResult result;
  result.ctx.op = OpId{5};
  result.item = h.item;
  result.status = scada::WriteStatus::kOk;
  h.adapter.execute_ordered(
      h.ctx(2, millis(2), 2),
      CoreRequest::scada(scada::ScadaMessage{result}).encode());
  EXPECT_EQ(h.adapter.stats().timeouts_cancelled, 1u);
  EXPECT_FALSE(h.master.has_pending_write(OpId{5}));

  // The timer never fires.
  h.loop.run_until(seconds(1));
  EXPECT_EQ(h.adapter.stats().timeout_votes_sent, 0u);
}

TEST(AdapterTest, ExpiredWriteBroadcastsVotes) {
  AdapterHarness h;
  scada::WriteValue write;
  write.ctx.op = OpId{5};
  write.item = h.item;
  write.value = scada::Variant{1.0};
  h.adapter.execute_ordered(
      h.ctx(1, millis(1), 1),
      CoreRequest::scada(scada::ScadaMessage{write}).encode());

  h.loop.run_until(seconds(1));
  // One vote to each of the 3 peers.
  EXPECT_EQ(h.adapter.stats().timeout_votes_sent, 3u);
}

TEST(AdapterTest, TimeoutResultInjectsSyntheticWriteResult) {
  AdapterHarness h;
  scada::WriteValue write;
  write.ctx.op = OpId{5};
  write.item = h.item;
  write.value = scada::Variant{1.0};
  h.adapter.execute_ordered(
      h.ctx(1, millis(1), 1),
      CoreRequest::scada(scada::ScadaMessage{write}).encode());

  Bytes reply = h.adapter.execute_ordered(
      h.ctx(2, millis(2), 100), CoreRequest::timeout_result(OpId{5}).encode());
  EXPECT_EQ(reply[0], 1);
  EXPECT_FALSE(h.master.has_pending_write(OpId{5}));
  EXPECT_EQ(h.adapter.stats().timeout_injections, 1u);

  // Duplicate injection (another adapter also voted): idempotent no-op.
  h.adapter.execute_ordered(h.ctx(3, millis(3), 101),
                            CoreRequest::timeout_result(OpId{5}).encode());
  EXPECT_EQ(h.adapter.stats().timeout_injections, 1u);
}

TEST(AdapterTest, ForgedTimeoutVotesIgnored) {
  AdapterHarness h;
  scada::WriteValue write;
  write.ctx.op = OpId{5};
  write.item = h.item;
  write.value = scada::Variant{1.0};
  h.adapter.execute_ordered(
      h.ctx(1, millis(1), 1),
      CoreRequest::scada(scada::ScadaMessage{write}).encode());

  // A vote frame with a garbage MAC must be discarded.
  TimeoutVote vote{OpId{5}, ReplicaId{1}};
  Bytes body = vote.encode();
  Writer w;
  w.str("adapter/1");
  w.blob(body);
  crypto::Digest bad_mac{};
  w.raw(ByteView(bad_mac));
  h.net.send("adapter/1", h.adapter.endpoint(), std::move(w).take());
  h.loop.run_until(millis(10));
  EXPECT_EQ(h.adapter.stats().timeout_votes_received, 0u);
}

TEST(AdapterTest, AuthenticTimeoutVotesCounted) {
  AdapterHarness h;
  scada::WriteValue write;
  write.ctx.op = OpId{5};
  write.item = h.item;
  write.value = scada::Variant{1.0};
  h.adapter.execute_ordered(
      h.ctx(1, millis(1), 1),
      CoreRequest::scada(scada::ScadaMessage{write}).encode());

  // A properly MAC'd vote from adapter/1.
  TimeoutVote vote{OpId{5}, ReplicaId{1}};
  Bytes body = vote.encode();
  Writer material;
  material.str("adapter/1");
  material.str(h.adapter.endpoint());
  material.blob(body);
  crypto::Digest mac =
      h.keys.mac("adapter/1", h.adapter.endpoint(), material.bytes());
  Writer w;
  w.str("adapter/1");
  w.blob(body);
  w.raw(ByteView(mac));
  h.net.send("adapter/1", h.adapter.endpoint(), std::move(w).take());
  h.loop.run_until(millis(10));
  EXPECT_EQ(h.adapter.stats().timeout_votes_received, 1u);
}

TEST(AdapterTest, QueriesServeLocalState) {
  AdapterHarness h;
  scada::ItemUpdate update;
  update.ctx.op = OpId{1};
  update.item = h.item;
  update.value = scada::Variant{7.5};
  h.adapter.execute_ordered(
      h.ctx(1, millis(1), 2),
      CoreRequest::scada(scada::ScadaMessage{update}).encode());

  Bytes reply = h.adapter.execute_unordered(
      ClientId{1}, encode_query(QueryKind::kReadItem, h.item));
  Reader r(reply);
  ASSERT_TRUE(r.boolean());
  scada::Item item = scada::Item::decode(r);
  EXPECT_DOUBLE_EQ(item.value.as_double(), 7.5);

  Bytes digest_reply = h.adapter.execute_unordered(
      ClientId{1}, encode_query(QueryKind::kStateDigest));
  EXPECT_EQ(digest_reply.size(), 32u);
  crypto::Digest expected = h.master.state_digest();
  EXPECT_EQ(Bytes(expected.begin(), expected.end()), digest_reply);

  Bytes count_reply = h.adapter.execute_unordered(
      ClientId{1}, encode_query(QueryKind::kEventCount));
  Reader cr(count_reply);
  EXPECT_EQ(cr.varint(), h.master.storage().size());
}

TEST(AdapterTest, RestoreReArmsPendingWriteTimers) {
  AdapterHarness h;
  scada::WriteValue write;
  write.ctx.op = OpId{5};
  write.item = h.item;
  write.value = scada::Variant{1.0};
  h.adapter.execute_ordered(
      h.ctx(1, millis(1), 1),
      CoreRequest::scada(scada::ScadaMessage{write}).encode());
  Bytes snapshot = h.adapter.snapshot();

  // A second harness restores the snapshot: the pending write must get a
  // fresh logical-timeout timer.
  AdapterHarness other;
  other.adapter.restore(snapshot);
  EXPECT_TRUE(other.master.has_pending_write(OpId{5}));
  other.loop.run_until(seconds(1));
  EXPECT_EQ(other.adapter.stats().timeout_votes_sent, 3u);
}

TEST(AdapterTest, UnknownSourceCounted) {
  AdapterHarness h;
  scada::ItemUpdate update;
  update.ctx.op = OpId{1};
  update.item = h.item;
  update.value = scada::Variant{1.0};
  // Client 99 is not registered: the message is still executed (the BFT
  // layer authenticated it), but output routing records the gap.
  Bytes reply = h.adapter.execute_ordered(
      h.ctx(1, millis(1), 99),
      CoreRequest::scada(scada::ScadaMessage{update}).encode());
  EXPECT_EQ(reply[0], 1);
}

}  // namespace
}  // namespace ss::core
