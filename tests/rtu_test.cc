// Unit tests for the RTU/field simulation: modbus frames, RTU register
// semantics, frontend driver polling and writes.
#include <gtest/gtest.h>

#include "rtu/driver.h"
#include "rtu/modbus.h"
#include "rtu/rtu.h"
#include "rtu/sensors.h"
#include "scada/frontend.h"
#include "sim/event_loop.h"
#include "sim/network.h"

namespace ss::rtu {
namespace {

TEST(Modbus, RequestRoundTrip) {
  ModbusRequest req;
  req.transaction = 77;
  req.unit = 3;
  req.function = FunctionCode::kWriteMultipleRegisters;
  req.address = 100;
  req.count = 2;
  req.values = {0xdead, 0xbeef};
  ModbusRequest decoded = ModbusRequest::decode(req.encode());
  EXPECT_EQ(decoded.transaction, 77);
  EXPECT_EQ(decoded.unit, 3);
  EXPECT_EQ(decoded.function, FunctionCode::kWriteMultipleRegisters);
  EXPECT_EQ(decoded.address, 100);
  EXPECT_EQ(decoded.values, req.values);
}

TEST(Modbus, ResponseRoundTrip) {
  ModbusResponse rsp;
  rsp.transaction = 5;
  rsp.function = FunctionCode::kReadHoldingRegisters;
  rsp.exception = ModbusException::kIllegalDataAddress;
  rsp.values = {1, 2, 3};
  ModbusResponse decoded = ModbusResponse::decode(rsp.encode());
  EXPECT_EQ(decoded.transaction, 5);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.values, rsp.values);
}

TEST(Modbus, RejectsUnknownFunction) {
  ModbusRequest req;
  Bytes encoded = req.encode();
  encoded[3] = 0x55;  // function byte
  EXPECT_THROW(ModbusRequest::decode(encoded), DecodeError);
}

TEST(Scaling, RoundTripsEngineeringValues) {
  RegisterScaling scaling{0.1, -50.0};  // raw 0..65535 -> -50.0 .. 6503.5
  std::uint16_t raw = scaling.to_raw(25.0);
  EXPECT_NEAR(scaling.to_engineering(raw), 25.0, 0.11);
  EXPECT_EQ(scaling.to_raw(-1000.0), 0u);   // clamped
  EXPECT_EQ(scaling.to_raw(1e9), 65535u);   // clamped
}

TEST(Signals, SineStaysInBand) {
  SineSignal sine(50.0, 10.0, seconds(60));
  Rng rng(1);
  for (SimTime t = 0; t < seconds(120); t += seconds(1)) {
    double v = sine.sample(t, rng);
    EXPECT_GE(v, 39.9);
    EXPECT_LE(v, 60.1);
  }
}

TEST(Signals, RandomWalkRespectsBounds) {
  RandomWalkSignal walk(5.0, 1.0, 0.0, 10.0);
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    double v = walk.sample(0, rng);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 10.0);
  }
}

TEST(Signals, SquareToggles) {
  SquareSignal square(0.0, 1.0, seconds(10));
  Rng rng(3);
  EXPECT_EQ(square.sample(seconds(1), rng), 0.0);
  EXPECT_EQ(square.sample(seconds(6), rng), 1.0);
}

TEST(Signals, RampGrowsLinearly) {
  RampSignal ramp(10.0, 2.0);
  Rng rng(4);
  EXPECT_DOUBLE_EQ(ramp.sample(0, rng), 10.0);
  EXPECT_DOUBLE_EQ(ramp.sample(seconds(5), rng), 20.0);
}

struct RtuHarness {
  sim::EventLoop loop;
  sim::Network net{loop, micros(100), 0};
  Rtu rtu{net, "rtu/1"};

  ModbusResponse roundtrip(const ModbusRequest& req) {
    ModbusResponse rsp;
    bool got = false;
    net.attach("tester", [&](sim::Message m) {
      rsp = ModbusResponse::decode(m.payload);
      got = true;
    });
    net.send("tester", "rtu/1", req.encode());
    loop.run();
    EXPECT_TRUE(got);
    return rsp;
  }
};

TEST(Rtu, ReadAndWriteRegisters) {
  RtuHarness h;
  h.rtu.add_actuator(10, 123);

  ModbusRequest read;
  read.transaction = 1;
  read.function = FunctionCode::kReadHoldingRegisters;
  read.address = 10;
  read.count = 1;
  ModbusResponse rsp = h.roundtrip(read);
  ASSERT_TRUE(rsp.ok());
  ASSERT_EQ(rsp.values.size(), 1u);
  EXPECT_EQ(rsp.values[0], 123u);

  ModbusRequest write;
  write.transaction = 2;
  write.function = FunctionCode::kWriteSingleRegister;
  write.address = 10;
  write.values = {999};
  EXPECT_TRUE(h.roundtrip(write).ok());
  EXPECT_EQ(h.rtu.register_value(10), 999u);
  EXPECT_EQ(h.rtu.writes_applied(), 1u);
}

TEST(Rtu, ReadUnknownAddressFails) {
  RtuHarness h;
  ModbusRequest read;
  read.function = FunctionCode::kReadHoldingRegisters;
  read.address = 55;
  read.count = 1;
  EXPECT_EQ(h.roundtrip(read).exception, ModbusException::kIllegalDataAddress);
}

TEST(Rtu, WriteToSensorRegisterFails) {
  RtuHarness h;
  h.rtu.add_sensor(20, std::make_unique<ConstantSignal>(1.0));
  ModbusRequest write;
  write.function = FunctionCode::kWriteSingleRegister;
  write.address = 20;
  write.values = {1};
  EXPECT_EQ(h.roundtrip(write).exception,
            ModbusException::kIllegalDataAddress);
}

TEST(Rtu, InjectedWriteFailure) {
  RtuHarness h;
  h.rtu.add_actuator(10);
  h.rtu.fail_next_writes(1);
  ModbusRequest write;
  write.function = FunctionCode::kWriteSingleRegister;
  write.address = 10;
  write.values = {1};
  EXPECT_EQ(h.roundtrip(write).exception,
            ModbusException::kServerDeviceFailure);
  EXPECT_TRUE(h.roundtrip(write).ok());  // next one succeeds
}

TEST(Rtu, SensorSamplingUpdatesRegisters) {
  sim::EventLoop loop;
  sim::Network net(loop, 0, 0);
  Rtu rtu(net, "rtu/1", RtuOptions{.sample_period = millis(10)});
  rtu.add_sensor(5, std::make_unique<RampSignal>(0.0, 1000.0),
                 RegisterScaling{1.0, 0.0});
  rtu.start();
  loop.run_until(millis(55));
  // After 55 ms the ramp reached ~55 engineering units.
  EXPECT_GT(rtu.register_value(5), 30u);
}

TEST(Rtu, SwallowedRequestsNeverAnswer) {
  RtuHarness h;
  h.rtu.add_actuator(10);
  h.rtu.swallow_next_requests(1);
  int responses = 0;
  h.net.attach("tester", [&](sim::Message) { ++responses; });
  ModbusRequest write;
  write.function = FunctionCode::kWriteSingleRegister;
  write.address = 10;
  write.values = {1};
  h.net.send("tester", "rtu/1", write.encode());
  h.loop.run();
  EXPECT_EQ(responses, 0);
}

struct DriverHarness {
  sim::EventLoop loop;
  sim::Network net{loop, micros(100), 0};
  Rtu rtu{net, "rtu/1", RtuOptions{.sample_period = millis(10)}};
  scada::Frontend frontend;
  RtuDriver driver{net, frontend, DriverOptions{.poll_period = millis(20)}};
  std::vector<scada::ScadaMessage> to_master;

  DriverHarness() {
    frontend.set_master_sink(
        [this](const scada::ScadaMessage& m) { to_master.push_back(m); });
  }
};

TEST(Driver, PollsAndReportsByException) {
  DriverHarness h;
  h.rtu.add_sensor(5, std::make_unique<ConstantSignal>(42.0),
                   RegisterScaling{1.0, 0.0});
  ItemId item = h.frontend.add_item("sensor/a");
  h.driver.bind_sensor("rtu/1", 5, RegisterScaling{1.0, 0.0}, item);
  h.rtu.start();
  h.driver.start();
  h.loop.run_until(millis(200));

  // Constant signal: exactly one change report despite ~10 polls.
  std::size_t updates = 0;
  for (const auto& msg : h.to_master) {
    if (kind_of(msg) == scada::ScadaMsgKind::kItemUpdate) ++updates;
  }
  EXPECT_EQ(updates, 1u);
  EXPECT_GT(h.driver.counters().polls_sent, 5u);
  EXPECT_DOUBLE_EQ(h.frontend.item(item)->value.as_double(), 42.0);
}

TEST(Driver, ChangingSignalReportsRepeatedly) {
  DriverHarness h;
  h.rtu.add_sensor(5, std::make_unique<RampSignal>(0.0, 1000.0),
                   RegisterScaling{1.0, 0.0});
  ItemId item = h.frontend.add_item("sensor/a");
  h.driver.bind_sensor("rtu/1", 5, RegisterScaling{1.0, 0.0}, item);
  h.rtu.start();
  h.driver.start();
  h.loop.run_until(millis(200));
  EXPECT_GT(h.driver.counters().changes_reported, 3u);
}

TEST(Driver, WriteGoesToRtuAndCompletes) {
  DriverHarness h;
  h.rtu.add_actuator(7, 0);
  ItemId item = h.frontend.add_item("valve/a");
  h.driver.bind_actuator("rtu/1", 7, RegisterScaling{1.0, 0.0}, item);
  h.driver.start();

  scada::WriteValue write;
  write.ctx.op = OpId{1};
  write.item = item;
  write.value = scada::Variant{55.0};
  h.frontend.handle(scada::ScadaMessage{write});
  h.loop.run_until(millis(50));

  EXPECT_EQ(h.rtu.register_value(7), 55u);
  ASSERT_EQ(h.to_master.size(), 1u);
  EXPECT_EQ(std::get<scada::WriteResult>(h.to_master[0]).status,
            scada::WriteStatus::kOk);
}

TEST(Driver, RtuExceptionBecomesFailedResult) {
  DriverHarness h;
  h.rtu.add_actuator(7);
  h.rtu.fail_next_writes(1);
  ItemId item = h.frontend.add_item("valve/a");
  h.driver.bind_actuator("rtu/1", 7, RegisterScaling{1.0, 0.0}, item);
  h.driver.start();

  scada::WriteValue write;
  write.ctx.op = OpId{1};
  write.item = item;
  write.value = scada::Variant{5.0};
  h.frontend.handle(scada::ScadaMessage{write});
  h.loop.run_until(millis(50));

  ASSERT_EQ(h.to_master.size(), 1u);
  EXPECT_EQ(std::get<scada::WriteResult>(h.to_master[0]).status,
            scada::WriteStatus::kFailed);
}

TEST(Driver, WriteTimeoutFiresWhenRtuSilent) {
  sim::EventLoop loop;
  sim::Network net(loop, micros(100), 0);
  Rtu rtu(net, "rtu/1");
  scada::Frontend frontend;
  RtuDriver driver(net, frontend,
                   DriverOptions{.write_timeout = millis(100)});
  std::vector<scada::ScadaMessage> to_master;
  frontend.set_master_sink(
      [&](const scada::ScadaMessage& m) { to_master.push_back(m); });

  rtu.add_actuator(7);
  rtu.swallow_next_requests(1);
  ItemId item = frontend.add_item("valve/a");
  driver.bind_actuator("rtu/1", 7, RegisterScaling{1.0, 0.0}, item);
  driver.start();

  scada::WriteValue write;
  write.ctx.op = OpId{1};
  write.item = item;
  write.value = scada::Variant{5.0};
  frontend.handle(scada::ScadaMessage{write});
  loop.run_until(millis(300));

  ASSERT_EQ(to_master.size(), 1u);
  EXPECT_EQ(std::get<scada::WriteResult>(to_master[0]).status,
            scada::WriteStatus::kFailed);
  EXPECT_EQ(driver.counters().write_timeouts, 1u);
}

TEST(Driver, UnboundWriteFailsFast) {
  DriverHarness h;
  ItemId item = h.frontend.add_item("valve/a");
  h.driver.start();
  scada::WriteValue write;
  write.ctx.op = OpId{1};
  write.item = item;
  write.value = scada::Variant{5.0};
  h.frontend.handle(scada::ScadaMessage{write});
  h.loop.run_until(millis(10));
  ASSERT_EQ(h.to_master.size(), 1u);
  EXPECT_EQ(std::get<scada::WriteResult>(h.to_master[0]).status,
            scada::WriteStatus::kFailed);
}

}  // namespace
}  // namespace ss::rtu
