// Tests for the proxy layer and the deployment's composability: forged
// frames at the proxies, a second HMI with its own proxy, and a second
// Frontend owning a disjoint set of items (NeoSCADA supports several of
// each; the BFT layer must too).
#include <gtest/gtest.h>

#include "core/proxies.h"
#include "core/replicated_deployment.h"

namespace ss::core {
namespace {

ReplicatedOptions fast_options() {
  ReplicatedOptions options;
  options.costs = sim::CostModel::zero();
  options.costs.hop_latency = micros(50);
  return options;
}

TEST(Proxies, RejectsForgedAndMisattributedFrames) {
  ReplicatedDeployment system(fast_options());
  ItemId item = system.add_point("x");
  system.start();

  scada::WriteValue write;
  write.ctx.op = OpId{999};
  write.item = item;
  write.value = scada::Variant{1.0};

  // A frame claiming to come from the HMI but sent by an attacker node with
  // no key: the MAC check fails inside the proxy.
  Writer w;
  w.str(kHmiEndpoint);
  w.blob(scada::encode_message(scada::ScadaMessage{write}));
  crypto::Digest garbage{};
  w.raw(ByteView(garbage));
  system.net().send("attacker", kProxyHmiEndpoint, std::move(w).take());

  // A correctly MAC'd frame from a *different* principal than the proxy's
  // component: sender authentication rejects it.
  send_scada(system.net(), system.keys(), "attacker", kProxyHmiEndpoint,
             scada::ScadaMessage{write});

  system.run_until(system.loop().now() + seconds(1));
  EXPECT_EQ(system.proxy_hmi().stats().rejected, 2u);
  EXPECT_EQ(system.proxy_hmi().stats().forwarded, 2u);  // the 2 subscribes
  for (std::uint32_t i = 0; i < system.n(); ++i) {
    EXPECT_FALSE(system.master(i).has_pending_write(OpId{999}));
  }
}

TEST(Proxies, SecondHmiGetsItsOwnVotedStream) {
  ReplicatedDeployment system(fast_options());
  ItemId item = system.add_point("x");
  system.start();

  // Compose a second HMI + proxy out of the public API: new client id, new
  // endpoints, registered as a routable source on every adapter.
  const ClientId hmi2_client{7};
  for (std::uint32_t i = 0; i < system.n(); ++i) {
    system.adapter(i).register_client("hmi2", hmi2_client);
  }
  ProxyOptions proxy_options;
  proxy_options.endpoint = "proxy/hmi2";
  proxy_options.component_endpoint = "hmi2";
  ComponentProxy proxy2(system.net(), system.group(), hmi2_client,
                        system.keys(), proxy_options);
  scada::Hmi hmi2(
      scada::HmiOptions{.instance_id = 5, .subscriber_name = "hmi2"});
  HmiNode node2(system.net(), system.keys(), hmi2,
                NodeOptions{.endpoint = "hmi2", .peer = "proxy/hmi2"});
  hmi2.subscribe_all();
  system.run_until(system.loop().now() + millis(200));

  system.frontend().field_update(item, scada::Variant{42.0});
  system.run_until(system.loop().now() + seconds(1));

  // Both HMIs received the voted update exactly once.
  EXPECT_EQ(system.hmi().counters().updates_received, 1u);
  EXPECT_EQ(hmi2.counters().updates_received, 1u);
  EXPECT_DOUBLE_EQ(hmi2.item(item)->value.as_double(), 42.0);

  // A write from the second HMI flows end-to-end too.
  bool done = false;
  hmi2.write(item, scada::Variant{7.0},
             [&](const scada::WriteResult& result) {
               done = result.status == scada::WriteStatus::kOk;
             });
  system.run_until(system.loop().now() + seconds(2));
  EXPECT_TRUE(done);
  EXPECT_TRUE(system.masters_converged());
}

TEST(Proxies, SecondFrontendOwnsItsItems) {
  ReplicatedDeployment system(fast_options());
  ItemId item_a = system.add_point("plant-a/valve", scada::Variant{0.0});
  system.start();

  // A second Frontend (own proxy, own client id) owning a second item.
  const ClientId fe2_client{8};
  for (std::uint32_t i = 0; i < system.n(); ++i) {
    system.adapter(i).register_client("frontend2", fe2_client);
  }
  ProxyOptions proxy_options;
  proxy_options.endpoint = "proxy/frontend2";
  proxy_options.component_endpoint = "frontend2";
  ComponentProxy proxy2(system.net(), system.group(), fe2_client,
                        system.keys(), proxy_options);
  scada::Frontend frontend2(scada::FrontendOptions{.instance_id = 6});
  FrontendNode node2(system.net(), system.keys(), frontend2,
                     NodeOptions{.endpoint = "frontend2",
                                 .peer = "proxy/frontend2"});

  // Item ids are global (the wire carries the master-side id), so the
  // second frontend registers a placeholder for plant-a before its own
  // item — real NeoSCADA maps item namespaces per connection.
  frontend2.add_item("plant-a/valve");
  ItemId item_b = frontend2.add_item("plant-b/valve", scada::Variant{0.0});
  system.configure_masters([&](scada::ScadaMaster& master) {
    ItemId registered = master.add_item("plant-b/valve", "frontend2");
    ASSERT_EQ(registered, item_b);
  });

  // Updates from the second frontend flow to the HMI like any other.
  frontend2.field_update(item_b, scada::Variant{3.5});
  system.run_until(system.loop().now() + seconds(1));
  EXPECT_EQ(system.hmi().counters().updates_received, 1u);
  EXPECT_DOUBLE_EQ(system.hmi().item(item_b)->value.as_double(), 3.5);

  // Per-item frontend routing: plant-a writes go to frontend 1, plant-b
  // writes go to frontend 2, and both complete.
  bool a_ok = false;
  system.hmi().write(item_a, scada::Variant{1.0},
                     [&](const scada::WriteResult& result) {
                       a_ok = result.status == scada::WriteStatus::kOk;
                     });
  system.run_until(system.loop().now() + seconds(2));
  EXPECT_TRUE(a_ok);
  EXPECT_EQ(frontend2.counters().writes_received, 0u);

  bool b_ok = false;
  system.hmi().write(item_b, scada::Variant{2.0},
                     [&](const scada::WriteResult& result) {
                       b_ok = result.status == scada::WriteStatus::kOk;
                     });
  system.run_until(system.loop().now() + seconds(2));
  EXPECT_TRUE(b_ok);
  EXPECT_EQ(frontend2.counters().writes_received, 1u);
  EXPECT_DOUBLE_EQ(frontend2.item(item_b)->value.as_double(), 2.0);
  EXPECT_TRUE(system.masters_converged());
}

}  // namespace
}  // namespace ss::core
