// The logical-timeout protocol end to end (paper section IV-D): an RTU that
// silently swallows a write request must not strand the operator's command.
// The adapters arm logical timeouts when the WriteValue is emitted, exchange
// TimeoutVotes, order a timeout result through consensus, and the HMI
// receives a synthesized WriteResult with status kTimeout — observable in
// every counter along the path.
#include <gtest/gtest.h>

#include <optional>

#include "core/replicated_deployment.h"
#include "rtu/driver.h"
#include "rtu/rtu.h"

namespace ss::core {
namespace {

TEST(AdapterTimeoutTest, SwallowedReplySynthesizesTimeoutResult) {
  ReplicatedOptions options;
  options.costs = sim::CostModel::zero();
  options.costs.hop_latency = micros(50);
  options.write_timeout = millis(500);
  ReplicatedDeployment system(options);

  ItemId pump = system.add_point("plant/pump", scada::Variant{100.0});
  rtu::Rtu device(system.net(), "plant/rtu");
  rtu::RtuDriver driver(system.net(), system.frontend(),
                        rtu::DriverOptions{.poll_period = millis(100)});
  device.add_actuator(1, 100);
  driver.bind_actuator("plant/rtu", 1, rtu::RegisterScaling{1.0, 0.0}, pump);

  system.start();
  device.start();
  driver.start();
  system.run_until(millis(200));

  // A healthy write first: timeouts armed and then cancelled, no votes.
  std::optional<scada::WriteStatus> first;
  system.hmi().write(pump, scada::Variant{150.0},
                     [&first](const scada::WriteResult& result) {
                       first = result.status;
                     });
  system.run_until(millis(700));
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, scada::WriteStatus::kOk);
  std::uint64_t armed_before = 0;
  for (std::uint32_t i = 0; i < system.n(); ++i) {
    const AdapterStats& stats = system.adapter_stats(i);
    EXPECT_GT(stats.timeouts_armed, 0u) << "adapter " << i;
    EXPECT_EQ(stats.timeouts_armed, stats.timeouts_cancelled)
        << "adapter " << i;
    EXPECT_EQ(stats.timeout_injections, 0u) << "adapter " << i;
    armed_before += stats.timeouts_armed;
  }

  // Now the RTU swallows the next write request: no Modbus response at all.
  device.swallow_next_requests(1);
  std::optional<scada::WriteStatus> second;
  system.hmi().write(pump, scada::Variant{175.0},
                     [&second](const scada::WriteResult& result) {
                       second = result.status;
                     });
  system.run_until(seconds(3));

  // The synthesized result reached the HMI and freed the pending slot.
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, scada::WriteStatus::kTimeout);
  EXPECT_EQ(system.hmi().pending_writes(), 0u);
  EXPECT_EQ(system.hmi().counters().writes_timeout, 1u);
  EXPECT_EQ(system.hmi().counters().writes_ok, 1u);

  // Every correct adapter armed the timeout and voted; the ordered timeout
  // result was injected exactly once per master.
  std::uint64_t injections = 0;
  std::uint64_t armed_after = 0;
  for (std::uint32_t i = 0; i < system.n(); ++i) {
    const AdapterStats& stats = system.adapter_stats(i);
    EXPECT_GT(stats.timeout_votes_sent, 0u) << "adapter " << i;
    EXPECT_GT(stats.timeout_votes_received, 0u) << "adapter " << i;
    armed_after += stats.timeouts_armed;
    injections += stats.timeout_injections;
  }
  EXPECT_GT(armed_after, armed_before);
  EXPECT_EQ(injections, system.n());

  // No master is left holding the write open.
  for (std::uint32_t i = 0; i < system.n(); ++i) {
    EXPECT_EQ(system.master(i).pending_write_count(), 0u) << "master " << i;
  }
  EXPECT_TRUE(system.masters_converged());
}

}  // namespace
}  // namespace ss::core
