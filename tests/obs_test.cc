// Observability layer: histogram percentile accuracy (including the
// empty/one-sample edge cases), registry sources, tracer span lifecycle —
// both in isolation and across a full replicated write round in the sim
// harness — and the flight recorder's bounded ring.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/logging.h"
#include "core/replicated_deployment.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ss::obs {
namespace {

// ---------------------------------------------------------------------------
// Histogram

TEST(HistogramTest, EmptyHistogramReadsAsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(0), 0);
  EXPECT_EQ(h.percentile(50), 0);
  EXPECT_EQ(h.percentile(100), 0);
}

TEST(HistogramTest, OneSampleEveryPercentileIsThatSample) {
  Histogram h;
  h.record(12345);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 12345);
  EXPECT_EQ(h.max(), 12345);
  // The bucket midpoint is clamped to [min, max], so a single sample reads
  // back exactly at every percentile.
  EXPECT_EQ(h.percentile(0), 12345);
  EXPECT_EQ(h.percentile(50), 12345);
  EXPECT_EQ(h.percentile(99), 12345);
  EXPECT_EQ(h.percentile(100), 12345);
}

TEST(HistogramTest, SmallValuesAreExact) {
  // Values below 2^kSubBits land in unit-width buckets.
  Histogram h;
  for (std::int64_t v = 0; v < 16; ++v) h.record(v);
  EXPECT_EQ(h.percentile(0), 0);
  EXPECT_EQ(h.percentile(100), 15);
  // Nearest-rank of p=50 over 0..15 is the 8th sample (value 7).
  EXPECT_EQ(h.percentile(50), 7);
}

TEST(HistogramTest, PercentilesWithinLogLinearErrorBound) {
  Histogram h;
  for (std::int64_t v = 1; v <= 100000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 100000u);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100000);
  EXPECT_NEAR(h.mean(), 50000.5, 1.0);
  // 16 sub-buckets per octave bound the relative error by ~1/16.
  EXPECT_NEAR(static_cast<double>(h.percentile(50)), 50000.0, 50000.0 * 0.07);
  EXPECT_NEAR(static_cast<double>(h.percentile(90)), 90000.0, 90000.0 * 0.07);
  EXPECT_NEAR(static_cast<double>(h.percentile(99)), 99000.0, 99000.0 * 0.07);
}

TEST(HistogramTest, NegativeValuesClampToZeroBucket) {
  Histogram h;
  h.record(-50);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.percentile(50), 0);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.record(7);
  h.record(9000);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(50), 0);
}

// ---------------------------------------------------------------------------
// Registry

TEST(RegistryTest, CountersGaugesHistogramsByName) {
  Registry& reg = Registry::instance();
  reg.reset();
  reg.counter("test/ops") += 3;
  reg.counter("test/ops") += 2;
  reg.gauge("test/depth") = 1.5;
  reg.histogram("test/lat").record(100);
  EXPECT_EQ(reg.counter("test/ops"), 5u);
  EXPECT_EQ(reg.gauge("test/depth"), 1.5);
  EXPECT_EQ(reg.histogram("test/lat").count(), 1u);

  std::string json = reg.json();
  EXPECT_NE(json.find("\"test/ops\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test/lat\""), std::string::npos) << json;
  reg.reset();
  EXPECT_EQ(reg.counter("test/ops"), 0u);
}

TEST(RegistryTest, SourceHandleRegistersAndUnregisters) {
  Registry& reg = Registry::instance();
  reg.reset();
  struct FakeStats {
    std::uint64_t frames = 7;
  } stats;
  {
    SourceHandle handle = reg.add_source(
        "fake", [&stats](const Registry::Emit& emit) {
          emit("frames", static_cast<double>(stats.frames));
        });
    std::string json = reg.json();
    EXPECT_NE(json.find("\"fake\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"frames\":7"), std::string::npos) << json;
    // Sources are polled live, not cached at registration.
    stats.frames = 9;
    json = reg.json();
    EXPECT_NE(json.find("\"frames\":9"), std::string::npos) << json;
  }
  // Handle destroyed: the source must be gone (its memory may be too).
  EXPECT_EQ(reg.json().find("\"fake\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracer

TEST(TracerTest, BeginEndProducesSpanWithInjectedClock) {
  Tracer& tracer = Tracer::instance();
  tracer.reset();
  SimTime now = 1000;
  tracer.set_clock([&now] { return now; });

  tracer.begin(OpId{77}, "frontend", "frontend/a");
  now = 1600;
  tracer.end(OpId{77}, "frontend");
  tracer.set_clock(nullptr);

  ASSERT_TRUE(tracer.has_span(OpId{77}, "frontend"));
  std::vector<Span> spans = tracer.spans_for(OpId{77});
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].begin, 1000);
  EXPECT_EQ(spans[0].end, 1600);
  EXPECT_EQ(spans[0].duration(), 600);
  EXPECT_EQ(spans[0].component, "frontend/a");
}

TEST(TracerTest, EndWithoutBeginAndOpZeroAreNoops) {
  Tracer& tracer = Tracer::instance();
  tracer.reset();
  tracer.end(OpId{5}, "frontend");  // never begun
  tracer.begin(OpId{0}, "frontend");  // op 0 = no context, ignored
  tracer.end(OpId{0}, "frontend");
  EXPECT_TRUE(tracer.spans().empty());
}

TEST(TracerTest, FinishedSpansFeedStageHistograms) {
  Tracer& tracer = Tracer::instance();
  tracer.reset();
  Registry::instance().reset();
  tracer.record(OpId{9}, "teststage", "comp", 100, 400);
  const Histogram& h = Registry::instance().histogram("stage/teststage");
  ASSERT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 300);
}

TEST(TracerTest, OpenSpanTableIsBounded) {
  Tracer& tracer = Tracer::instance();
  tracer.reset();
  // Begin far more spans than the open-table cap without ever ending them;
  // the tracer must not grow without bound and must stay functional.
  for (std::uint64_t i = 1; i <= 10000; ++i) {
    tracer.begin(OpId{i}, "leaky");
  }
  tracer.begin(OpId{20001}, "ok");
  tracer.end(OpId{20001}, "ok");
  EXPECT_TRUE(tracer.has_span(OpId{20001}, "ok"));
  tracer.reset();
}

// ---------------------------------------------------------------------------
// Tracer across a full replicated write round (sim harness)

sim::CostModel fast_costs() {
  sim::CostModel costs = sim::CostModel::zero();
  costs.hop_latency = micros(50);
  return costs;
}

TEST(TracerTest, WriteRoundYieldsTimelineAcrossAllStages) {
  Tracer& tracer = Tracer::instance();
  tracer.reset();
  Registry::instance().reset();

  core::ReplicatedOptions options;
  options.costs = fast_costs();
  core::ReplicatedDeployment system(options);
  ItemId item = system.add_point("breaker/1", scada::Variant{0.0});
  system.start();

  bool completed = false;
  OpId op = system.hmi().write(item, scada::Variant{1.0},
                               [&](const scada::WriteResult& result) {
                                 completed = true;
                                 EXPECT_EQ(result.status,
                                           scada::WriteStatus::kOk);
                               });
  system.run_until(system.loop().now() + seconds(2));
  ASSERT_TRUE(completed);

  // The sim deployment has no RTU (the frontend's field writer is wired
  // straight through), so the timeline covers every other stage.
  for (const char* stage :
       {"hmi", "frontend", "agreement", "master", "adapter", "voter"}) {
    EXPECT_TRUE(tracer.has_span(op, stage)) << "missing stage " << stage;
  }
  for (const Span& span : tracer.spans_for(op)) {
    EXPECT_GE(span.duration(), 0)
        << span.stage << " has negative duration";
    EXPECT_GE(span.begin, 0) << span.stage;
  }
  // Stage histograms aggregate automatically as spans finish.
  EXPECT_GT(Registry::instance().histogram("stage/agreement").count(), 0u);
  EXPECT_GT(Registry::instance().histogram("stage/master").count(), 0u);
  tracer.reset();
  Registry::instance().reset();
}

// ---------------------------------------------------------------------------
// FlightRecorder

TEST(FlightRecorderTest, RingIsBoundedAndKeepsTheTail) {
  FlightRecorder& rec = FlightRecorder::instance();
  rec.clear();
  rec.set_capacity(4);
  for (int i = 0; i < 10; ++i) {
    rec.note(i, "event-" + std::to_string(i));
  }
  EXPECT_EQ(rec.size(), 4u);
  std::string dump = rec.dump_string();
  EXPECT_EQ(dump.find("event-0"), std::string::npos);
  EXPECT_NE(dump.find("event-9"), std::string::npos);
  rec.set_capacity(4096);
  rec.clear();
}

TEST(FlightRecorderTest, CompletedSpansLandInTheRecorder) {
  FlightRecorder& rec = FlightRecorder::instance();
  rec.clear();
  Tracer& tracer = Tracer::instance();
  tracer.reset();
  tracer.record(OpId{314}, "frontend", "comp", 10, 20);
  std::string dump = rec.dump_string();
  EXPECT_NE(dump.find("314"), std::string::npos) << dump;
  EXPECT_NE(dump.find("frontend"), std::string::npos) << dump;
  tracer.reset();
  rec.clear();
}

TEST(FlightRecorderTest, CapturesLogLinesBelowStderrThreshold) {
  FlightRecorder& rec = FlightRecorder::instance();
  rec.clear();
  rec.capture_logs();
  // kDebug is below the default stderr threshold, but the capture hook sees
  // every line regardless of level.
  SS_LOG(LogLevel::kDebug, 0, "obs_test", "quiet debug line %d", 42);
  Logger::set_capture(nullptr);
  std::string dump = rec.dump_string();
  EXPECT_NE(dump.find("quiet debug line 42"), std::string::npos) << dump;
  rec.clear();
}

}  // namespace
}  // namespace ss::obs
