// Tests for the network shims (HmiNode / FrontendNode / MasterNode):
// authentication at every endpoint and the baseline Master's multi-lane
// service model.
#include <gtest/gtest.h>

#include "core/baseline_deployment.h"
#include "core/nodes.h"
#include "core/scada_link.h"

namespace ss::core {
namespace {

TEST(Nodes, BaselineEndpointsRejectForgedFrames) {
  sim::CostModel costs = sim::CostModel::zero();
  BaselineDeployment system(BaselineOptions{.costs = costs});
  ItemId item = system.add_point("x");
  system.start();

  scada::ItemUpdate update;
  update.ctx.op = OpId{1};
  update.item = item;
  update.value = scada::Variant{666.0};

  // Unkeyed garbage MAC toward the master.
  Writer w;
  w.str(kFrontendEndpoint);
  w.blob(scada::encode_message(scada::ScadaMessage{update}));
  crypto::Digest zero{};
  w.raw(ByteView(zero));
  system.net().send("attacker", kMasterEndpoint, std::move(w).take());

  // Correctly keyed frame but from a principal that is not the HMI/Frontend
  // — the master accepts any authenticated sender as a source name, but an
  // attacker WITHOUT the group key cannot produce one; simulate that by
  // using a bogus key domain.
  crypto::Keychain wrong_keys("not-the-baseline-secret");
  send_scada(system.net(), wrong_keys, kFrontendEndpoint, kMasterEndpoint,
             scada::ScadaMessage{update});

  system.run_until(system.loop().now() + millis(50));
  EXPECT_EQ(system.master().counters().updates_processed, 0u);
  EXPECT_EQ(system.hmi().counters().updates_received, 0u);

  // The legitimate path still works.
  system.frontend().field_update(item, scada::Variant{1.0});
  system.run_until(system.loop().now() + millis(50));
  EXPECT_EQ(system.master().counters().updates_processed, 1u);
}

TEST(Nodes, HmiNodeOnlyAcceptsItsPeer) {
  sim::CostModel costs = sim::CostModel::zero();
  BaselineDeployment system(BaselineOptions{.costs = costs});
  ItemId item = system.add_point("x");
  system.start();

  // A frame correctly keyed (group secret is shared in the baseline) but
  // from a sender that is not the HMI's configured peer ("master").
  scada::ItemUpdate update;
  update.item = item;
  update.value = scada::Variant{13.0};
  send_scada(system.net(), system.keys(), kFrontendEndpoint, kHmiEndpoint,
             scada::ScadaMessage{update});
  system.run_until(system.loop().now() + millis(50));
  EXPECT_EQ(system.hmi().counters().updates_received, 0u);
}

TEST(Nodes, MasterLanesBoundThroughput) {
  // With da_process = 1 ms and 8 lanes, the baseline Master's capacity is
  // 8000 updates/s; offered 16000/s must saturate near 8000.
  sim::CostModel costs = sim::CostModel::zero();
  costs.da_process = millis(1);
  costs.baseline_master_lanes = 8;
  BaselineDeployment system(BaselineOptions{.costs = costs});
  ItemId item = system.add_point("x");
  system.start();

  double value = 0;
  std::function<void()> tick = [&] {
    system.frontend().field_update(item, scada::Variant{value});
    value += 1.0;
    if (system.loop().now() < seconds(4)) {
      system.loop().schedule(micros(62), tick);  // ~16k/s
    }
  };
  system.loop().schedule(0, tick);
  system.run_until(seconds(2));
  std::uint64_t at2 = system.hmi().counters().updates_received;
  system.run_until(seconds(4));
  std::uint64_t at4 = system.hmi().counters().updates_received;

  double delivered = static_cast<double>(at4 - at2) / 2.0;
  EXPECT_GT(delivered, 7000.0);
  EXPECT_LT(delivered, 9000.0);
}

TEST(Nodes, SingleLaneMasterIsEightTimesSlower) {
  sim::CostModel costs = sim::CostModel::zero();
  costs.da_process = millis(1);
  costs.baseline_master_lanes = 1;  // hypothetical single-threaded NeoSCADA
  BaselineDeployment system(BaselineOptions{.costs = costs});
  ItemId item = system.add_point("x");
  system.start();

  double value = 0;
  std::function<void()> tick = [&] {
    system.frontend().field_update(item, scada::Variant{value});
    value += 1.0;
    if (system.loop().now() < seconds(4)) {
      system.loop().schedule(micros(250), tick);  // 4k/s offered
    }
  };
  system.loop().schedule(0, tick);
  system.run_until(seconds(2));
  std::uint64_t at2 = system.hmi().counters().updates_received;
  system.run_until(seconds(4));
  std::uint64_t at4 = system.hmi().counters().updates_received;

  double delivered = static_cast<double>(at4 - at2) / 2.0;
  EXPECT_GT(delivered, 850.0);
  EXPECT_LT(delivered, 1150.0);  // capacity = 1/1ms = 1000/s
}

}  // namespace
}  // namespace ss::core
