// Unit tests for src/crypto: SHA-256 against FIPS 180-4 vectors, HMAC
// against RFC 4231 vectors, keychain and MAC-vector semantics.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "crypto/hmac.h"
#include "crypto/keychain.h"
#include "crypto/sha256.h"

namespace ss::crypto {
namespace {

TEST(Sha256, EmptyInput) {
  EXPECT_EQ(to_hex(Sha256::hash({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  Bytes abc = bytes_of("abc");
  EXPECT_EQ(to_hex(Sha256::hash(abc)),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  Bytes msg = bytes_of(
      "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  EXPECT_EQ(to_hex(Sha256::hash(msg)),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Bytes msg = bytes_of("the quick brown fox jumps over the lazy dog, twice.");
  Sha256 h;
  for (std::size_t i = 0; i < msg.size(); i += 7) {
    std::size_t len = std::min<std::size_t>(7, msg.size() - i);
    h.update(ByteView(msg.data() + i, len));
  }
  EXPECT_EQ(h.finish(), Sha256::hash(msg));
}

TEST(Sha256, ReusableAfterFinish) {
  Sha256 h;
  h.update(bytes_of("abc"));
  Digest first = h.finish();
  h.update(bytes_of("abc"));
  Digest second = h.finish();
  EXPECT_EQ(first, second);
}

TEST(Sha256, BoundaryLengths) {
  // 55, 56, 63, 64, 65 bytes cross the padding boundaries.
  for (std::size_t len : {55u, 56u, 63u, 64u, 65u}) {
    Bytes msg(len, 'x');
    Sha256 h;
    h.update(msg);
    EXPECT_EQ(h.finish(), Sha256::hash(msg)) << "len=" << len;
  }
}

TEST(Sha256, Prefix64) {
  Digest d{};
  d[0] = 0x01;
  d[7] = 0xff;
  EXPECT_EQ(digest_prefix64(d), 0x01000000000000ffULL);
}

// RFC 4231 test case 1.
TEST(Hmac, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  Bytes msg = bytes_of("Hi There");
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2 ("Jefe").
TEST(Hmac, Rfc4231Case2) {
  Bytes key = bytes_of("Jefe");
  Bytes msg = bytes_of("what do ya want for nothing?");
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3: 20-byte 0xaa key, 50-byte 0xdd data.
TEST(Hmac, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes msg(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6: 131-byte key (hashed first).
TEST(Hmac, Rfc4231LongKey) {
  Bytes key(131, 0xaa);
  Bytes msg = bytes_of("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, VerifyDetectsTamper) {
  Bytes key = bytes_of("key");
  Bytes msg = bytes_of("message");
  Digest mac = hmac_sha256(key, msg);
  EXPECT_TRUE(hmac_verify(key, msg, mac));
  Bytes tampered = msg;
  tampered[0] ^= 1;
  EXPECT_FALSE(hmac_verify(key, tampered, mac));
  Digest bad_mac = mac;
  bad_mac[31] ^= 1;
  EXPECT_FALSE(hmac_verify(key, msg, bad_mac));
}

TEST(Keychain, PairKeySymmetricAndDistinct) {
  Keychain chain("secret");
  Bytes ab = chain.pair_key("a", "b");
  Bytes ba = chain.pair_key("b", "a");
  Bytes ac = chain.pair_key("a", "c");
  EXPECT_EQ(ab, ba);
  EXPECT_NE(ab, ac);

  Keychain other("other-secret");
  EXPECT_NE(chain.pair_key("a", "b"), other.pair_key("a", "b"));
}

TEST(Keychain, MacVerifyRoundTrip) {
  Keychain chain("secret");
  Bytes msg = bytes_of("payload");
  Digest mac = chain.mac("client/1", "replica/0", msg);
  EXPECT_TRUE(chain.verify("client/1", "replica/0", msg, mac));
  // Receiver mismatch -> different key -> fails.
  EXPECT_FALSE(chain.verify("client/1", "replica/1", msg, mac));
  // Sender spoofing fails too.
  EXPECT_FALSE(chain.verify("client/2", "replica/0", msg, mac));
}

TEST(MacVector, PerReplicaEntries) {
  Keychain chain("secret");
  GroupConfig group = GroupConfig::for_f(1);
  Bytes msg = bytes_of("broadcast");
  MacVector v = MacVector::create(chain, "client/9", group, msg);
  ASSERT_EQ(v.macs.size(), 4u);
  for (ReplicaId id : group.replica_ids()) {
    EXPECT_TRUE(v.verify_entry(chain, "client/9", id, msg));
  }
  // A tampered message fails everywhere.
  Bytes tampered = msg;
  tampered[0] ^= 1;
  for (ReplicaId id : group.replica_ids()) {
    EXPECT_FALSE(v.verify_entry(chain, "client/9", id, tampered));
  }
  // Out-of-range replica id is rejected, not UB.
  EXPECT_FALSE(v.verify_entry(chain, "client/9", ReplicaId{99}, msg));
}

TEST(Principals, Naming) {
  EXPECT_EQ(replica_principal(ReplicaId{3}), "replica/3");
  EXPECT_EQ(client_principal(ClientId{17}), "client/17");
}

}  // namespace
}  // namespace ss::crypto
