// PushVoter eviction windows and counter semantics: the f+1 voter must
// deliver exactly once, count duplicate and late votes, reject malformed
// payloads, and keep both the delivered-digest memory and the open-vote
// table bounded by the configured windows.
#include <gtest/gtest.h>

#include <vector>

#include "core/push_voter.h"

namespace ss::core {
namespace {

Bytes update_payload(std::uint32_t item, double value) {
  scada::ItemUpdate update;
  update.ctx.op = OpId{item};
  update.ctx.cid = ConsensusId{item};
  update.item = ItemId{item};
  update.value = scada::Variant{value};
  return scada::encode_message(scada::ScadaMessage{update});
}

struct Fixture {
  explicit Fixture(PushVoterOptions options = {})
      : voter(GroupConfig::for_f(1),
              [this](const scada::ScadaMessage&) { ++deliveries; }, options) {}

  PushVoter voter;
  int deliveries = 0;
};

TEST(PushVoterTest, DeliversOnceAtReplyQuorum) {
  Fixture fx;
  Bytes payload = update_payload(1, 10.0);
  fx.voter.offer(ReplicaId{0}, payload);
  EXPECT_EQ(fx.deliveries, 0);
  fx.voter.offer(ReplicaId{1}, payload);
  EXPECT_EQ(fx.deliveries, 1);
  // Remaining replicas arrive late: stragglers, no re-delivery.
  fx.voter.offer(ReplicaId{2}, payload);
  fx.voter.offer(ReplicaId{3}, payload);
  EXPECT_EQ(fx.deliveries, 1);
  EXPECT_EQ(fx.voter.stats().delivered, 1u);
  EXPECT_EQ(fx.voter.stats().stragglers, 2u);
  EXPECT_EQ(fx.voter.stats().offered, 4u);
}

TEST(PushVoterTest, DuplicateVotesAreCountedNotDelivered) {
  Fixture fx;
  Bytes payload = update_payload(2, 20.0);
  fx.voter.offer(ReplicaId{0}, payload);
  fx.voter.offer(ReplicaId{0}, payload);
  fx.voter.offer(ReplicaId{0}, payload);
  EXPECT_EQ(fx.deliveries, 0);
  EXPECT_EQ(fx.voter.stats().duplicate_votes, 2u);
}

TEST(PushVoterTest, MalformedAndOutOfRangeAreRejected) {
  Fixture fx;
  Bytes garbage{0xde, 0xad, 0xbe, 0xef};
  fx.voter.offer(ReplicaId{0}, garbage);
  EXPECT_EQ(fx.voter.stats().malformed, 1u);

  // An out-of-range replica id must not contribute a vote.
  Bytes payload = update_payload(3, 30.0);
  fx.voter.offer(ReplicaId{9}, payload);
  fx.voter.offer(ReplicaId{0}, payload);
  EXPECT_EQ(fx.deliveries, 0);
  fx.voter.offer(ReplicaId{1}, payload);
  EXPECT_EQ(fx.deliveries, 1);
  EXPECT_EQ(fx.voter.stats().offered, 4u);
}

TEST(PushVoterTest, DeliveredWindowEvictionForgetsOldDigests) {
  // Window of 1, *unsequenced* offers (seq = 0, the legacy/test path that
  // bypasses replay protection): delivering a second message evicts the
  // first digest, so a full quorum re-offering the first message
  // re-delivers it. Sequenced offers — what real replicas send — reject
  // this replay; see ReplayAfterWindowPruningIsRejected below.
  Fixture fx(PushVoterOptions{.delivered_window = 1, .vote_window = 64});
  Bytes a = update_payload(10, 1.0);
  Bytes b = update_payload(11, 2.0);

  fx.voter.offer(ReplicaId{0}, a);
  fx.voter.offer(ReplicaId{1}, a);
  EXPECT_EQ(fx.deliveries, 1);
  // A late vote while the digest is still remembered: straggler.
  fx.voter.offer(ReplicaId{2}, a);
  EXPECT_EQ(fx.voter.stats().stragglers, 1u);

  fx.voter.offer(ReplicaId{0}, b);
  fx.voter.offer(ReplicaId{1}, b);
  EXPECT_EQ(fx.deliveries, 2);

  // Digest of `a` has been evicted: a fresh quorum re-delivers it.
  fx.voter.offer(ReplicaId{0}, a);
  fx.voter.offer(ReplicaId{1}, a);
  EXPECT_EQ(fx.deliveries, 3);
  EXPECT_EQ(fx.voter.stats().delivered, 3u);
}

TEST(PushVoterTest, VoteWindowEvictionDropsOldestOpenVotes) {
  // Window of 1 open vote set: a second distinct sub-quorum message evicts
  // the first one's votes, so completing the first quorum later needs both
  // votes again.
  Fixture fx(PushVoterOptions{.delivered_window = 64, .vote_window = 1});
  Bytes a = update_payload(20, 1.0);
  Bytes b = update_payload(21, 2.0);

  fx.voter.offer(ReplicaId{0}, a);  // open votes: {a: {0}}
  fx.voter.offer(ReplicaId{0}, b);  // evicts a's votes
  fx.voter.offer(ReplicaId{1}, a);  // a restarts with one vote — no quorum
  EXPECT_EQ(fx.deliveries, 0);
  fx.voter.offer(ReplicaId{0}, a);  // second fresh vote completes quorum
  EXPECT_EQ(fx.deliveries, 1);
}

TEST(PushVoterTest, ReplayAfterWindowPruningIsRejected) {
  // Regression: with a delivered window of 1, message `a`'s digest ages
  // out once `b` delivers. Replaying f+1 *captured* pushes of `a` (same
  // per-replica sequence numbers — a network attacker cannot forge new
  // ones, they are HMAC-covered) must NOT re-deliver it to the HMI.
  Fixture fx(PushVoterOptions{.delivered_window = 1, .vote_window = 64});
  Bytes a = update_payload(30, 1.0);
  Bytes b = update_payload(31, 2.0);

  fx.voter.offer(ReplicaId{0}, a, /*seq=*/1);
  fx.voter.offer(ReplicaId{1}, a, /*seq=*/1);
  EXPECT_EQ(fx.deliveries, 1);
  fx.voter.offer(ReplicaId{0}, b, /*seq=*/2);
  fx.voter.offer(ReplicaId{1}, b, /*seq=*/2);
  EXPECT_EQ(fx.deliveries, 2);  // `a` evicted from the delivered window

  // The replayed capture of `a`: same payload, same seqs. Rejected.
  fx.voter.offer(ReplicaId{0}, a, /*seq=*/1);
  fx.voter.offer(ReplicaId{1}, a, /*seq=*/1);
  EXPECT_EQ(fx.deliveries, 2);
  EXPECT_EQ(fx.voter.stats().replayed, 2u);
  EXPECT_EQ(fx.voter.stats().delivered, 2u);
}

TEST(PushVoterTest, StragglerReplayIsAlsoRejected) {
  // All n replicas pushed `a`; the attacker captured every copy. After the
  // digest ages out, replaying ANY f+1 of the captures (including the two
  // that arrived as stragglers) must not re-deliver.
  Fixture fx(PushVoterOptions{.delivered_window = 1, .vote_window = 64});
  Bytes a = update_payload(40, 1.0);
  Bytes b = update_payload(41, 2.0);

  for (std::uint32_t r = 0; r < 4; ++r) {
    fx.voter.offer(ReplicaId{r}, a, /*seq=*/1);
  }
  EXPECT_EQ(fx.deliveries, 1);
  fx.voter.offer(ReplicaId{0}, b, /*seq=*/2);
  fx.voter.offer(ReplicaId{1}, b, /*seq=*/2);
  EXPECT_EQ(fx.deliveries, 2);

  for (std::uint32_t r = 0; r < 4; ++r) {
    fx.voter.offer(ReplicaId{r}, a, /*seq=*/1);
  }
  EXPECT_EQ(fx.deliveries, 2);
  EXPECT_EQ(fx.voter.stats().replayed, 4u);
}

TEST(PushVoterTest, FreshResendWithNewSeqsDelivers) {
  // A *genuine* re-occurrence of the same payload (e.g. the operator
  // writes the same value again) carries fresh sequence numbers and still
  // delivers after the old digest was pruned.
  Fixture fx(PushVoterOptions{.delivered_window = 1, .vote_window = 64});
  Bytes a = update_payload(50, 1.0);
  Bytes b = update_payload(51, 2.0);

  fx.voter.offer(ReplicaId{0}, a, /*seq=*/1);
  fx.voter.offer(ReplicaId{1}, a, /*seq=*/1);
  fx.voter.offer(ReplicaId{0}, b, /*seq=*/2);
  fx.voter.offer(ReplicaId{1}, b, /*seq=*/2);
  EXPECT_EQ(fx.deliveries, 2);

  fx.voter.offer(ReplicaId{0}, a, /*seq=*/3);
  fx.voter.offer(ReplicaId{1}, a, /*seq=*/3);
  EXPECT_EQ(fx.deliveries, 3);
  EXPECT_EQ(fx.voter.stats().replayed, 0u);
}

TEST(PushVoterTest, ReorderedSeqsWithinWindowAccepted) {
  // UDP reorders: seq 5 lands before seq 3. Both must count (the sliding
  // window remembers individual seqs, not just a low-watermark).
  Fixture fx;
  Bytes a = update_payload(60, 1.0);
  Bytes b = update_payload(61, 2.0);

  fx.voter.offer(ReplicaId{0}, b, /*seq=*/5);
  fx.voter.offer(ReplicaId{0}, a, /*seq=*/3);  // late but fresh: accepted
  EXPECT_EQ(fx.voter.stats().replayed, 0u);
  fx.voter.offer(ReplicaId{1}, a, /*seq=*/3);
  fx.voter.offer(ReplicaId{1}, b, /*seq=*/5);
  EXPECT_EQ(fx.deliveries, 2);

  // But offering an already-seen (replica, seq) pair again is a replay.
  fx.voter.offer(ReplicaId{0}, a, /*seq=*/3);
  EXPECT_EQ(fx.voter.stats().replayed, 1u);
}

TEST(PushVoterTest, ByzantineSprayStaysBounded) {
  // A Byzantine replica spraying unique payloads must not grow the open
  // vote table beyond the window, and none of its lone votes may deliver.
  Fixture fx(PushVoterOptions{.delivered_window = 8, .vote_window = 8});
  for (std::uint32_t i = 0; i < 1000; ++i) {
    fx.voter.offer(ReplicaId{3}, update_payload(100 + i, 1.0));
  }
  EXPECT_EQ(fx.deliveries, 0);
  EXPECT_EQ(fx.voter.stats().offered, 1000u);
  // Honest traffic still flows afterwards.
  Bytes payload = update_payload(50, 5.0);
  fx.voter.offer(ReplicaId{0}, payload);
  fx.voter.offer(ReplicaId{1}, payload);
  EXPECT_EQ(fx.deliveries, 1);
}

}  // namespace
}  // namespace ss::core
