// Unit tests for the simulated USIG (crypto/usig.h): strict counter
// monotonicity, certificate verify/reject, and lease durability across the
// storage crash model (drop_unsynced).
#include <gtest/gtest.h>

#include <vector>

#include "common/bytes.h"
#include "crypto/keychain.h"
#include "crypto/usig.h"
#include "storage/env.h"
#include "storage/replica_storage.h"

namespace ss::crypto {
namespace {

Bytes msg(const char* text) { return bytes_of(std::string(text)); }

TEST(Usig, CounterStrictlyMonotonic) {
  Keychain keys("secret");
  Usig usig(keys, ReplicaId{0});
  std::uint64_t prev = 0;
  for (int i = 0; i < 200; ++i) {
    UsigCert cert = usig.certify(msg("m"));
    EXPECT_GT(cert.counter, prev);
    prev = cert.counter;
  }
  EXPECT_EQ(usig.counter(), prev);
}

TEST(Usig, CertVerifiesForSignerAndMaterial) {
  Keychain keys("secret");
  Usig usig(keys, ReplicaId{1});
  UsigCert cert = usig.certify(msg("prepare v=0 cid=1"));
  EXPECT_TRUE(Usig::verify(keys, ReplicaId{1}, msg("prepare v=0 cid=1"), cert));
}

TEST(Usig, CertRejectsTampering) {
  Keychain keys("secret");
  Usig usig(keys, ReplicaId{1});
  UsigCert cert = usig.certify(msg("payload"));

  // Wrong material.
  EXPECT_FALSE(Usig::verify(keys, ReplicaId{1}, msg("other"), cert));
  // Wrong claimed signer.
  EXPECT_FALSE(Usig::verify(keys, ReplicaId{2}, msg("payload"), cert));
  // Tampered counter (the forgery equivocation needs).
  UsigCert forged = cert;
  forged.counter += 1;
  EXPECT_FALSE(Usig::verify(keys, ReplicaId{1}, msg("payload"), forged));
  // Tampered MAC.
  forged = cert;
  forged.mac[0] ^= 0xff;
  EXPECT_FALSE(Usig::verify(keys, ReplicaId{1}, msg("payload"), forged));
  // Different group secret.
  Keychain other("other-secret");
  EXPECT_FALSE(Usig::verify(other, ReplicaId{1}, msg("payload"), cert));
}

TEST(Usig, TwoCertsNeverShareACounter) {
  Keychain keys("secret");
  Usig usig(keys, ReplicaId{0});
  // The equivocation MinBFT makes detectable: two different messages can
  // never carry the same counter from one USIG.
  UsigCert a = usig.certify(msg("batch-A"));
  UsigCert b = usig.certify(msg("batch-B"));
  EXPECT_NE(a.counter, b.counter);
}

TEST(Usig, LeasePersistsBeforeFirstCoveredCert) {
  Keychain keys("secret");
  Usig usig(keys, ReplicaId{0});
  std::vector<std::uint64_t> persisted;
  usig.attach_persistence(0, [&](std::uint64_t lease) {
    persisted.push_back(lease);
    // The lease write must land BEFORE the cert it covers is issued: at
    // this point the counter must still be below the new lease bound.
    EXPECT_LT(usig.counter(), lease);
  });
  UsigCert first = usig.certify(msg("m"));
  ASSERT_EQ(persisted.size(), 1u);
  EXPECT_GE(persisted[0], first.counter);
  // The whole lease is consumed before the next persist.
  for (std::uint64_t i = 1; i < Usig::kLeaseStep; ++i) usig.certify(msg("m"));
  EXPECT_EQ(persisted.size(), 1u);
  usig.certify(msg("m"));
  EXPECT_EQ(persisted.size(), 2u);
}

TEST(Usig, NeverRepeatsACounterAcrossCrash) {
  storage::MemEnv env;
  Keychain keys("secret");
  std::uint64_t highest_issued = 0;

  {
    storage::ReplicaStorage storage(env, "replica-0", "storage/usig-test-0");
    Usig usig(keys, ReplicaId{0});
    usig.attach_persistence(storage.usig_lease(), [&](std::uint64_t lease) {
      storage.write_usig_lease(lease);
    });
    for (int i = 0; i < 10; ++i) highest_issued = usig.certify(msg("m")).counter;
  }

  // kill -9: anything unsynced is gone. write_usig_lease syncs, so the
  // lease survives by construction; this verifies exactly that.
  env.drop_unsynced("replica-0");

  {
    storage::ReplicaStorage storage(env, "replica-0", "storage/usig-test-1");
    EXPECT_GE(storage.usig_lease(), highest_issued);
    Usig usig(keys, ReplicaId{0});
    usig.attach_persistence(storage.usig_lease(), [&](std::uint64_t lease) {
      storage.write_usig_lease(lease);
    });
    // The reincarnation may skip values (≤ kLeaseStep) but never repeats.
    UsigCert cert = usig.certify(msg("m"));
    EXPECT_GT(cert.counter, highest_issued);
    EXPECT_LE(cert.counter, highest_issued + Usig::kLeaseStep + 1);
    EXPECT_TRUE(Usig::verify(keys, ReplicaId{0}, msg("m"), cert));
  }
}

TEST(Usig, DistinctReplicasDistinctKeys) {
  Keychain keys("secret");
  Usig a(keys, ReplicaId{0});
  Usig b(keys, ReplicaId{1});
  UsigCert ca = a.certify(msg("m"));
  // Same counter value, same material — but replica 1's key signed nothing,
  // so the cert must not verify as replica 1's.
  EXPECT_FALSE(Usig::verify(keys, ReplicaId{1}, msg("m"), ca));
  UsigCert cb = b.certify(msg("m"));
  EXPECT_TRUE(Usig::verify(keys, ReplicaId{1}, msg("m"), cb));
  EXPECT_TRUE(Usig::verify(keys, ReplicaId{0}, msg("m"), ca));
}

}  // namespace
}  // namespace ss::crypto
