// Proactive-recovery edge cases the scheduler test doesn't cover: durable
// reincarnation of the *current leader* mid-view (must trigger a clean view
// change, not a stall), the session-key epoch handover window (old-epoch
// traffic accepted inside the window, rejected after it), the supervisor's
// restart-budget amnesty, and the durable epoch counter's crash semantics.
#include <gtest/gtest.h>

#include "bft/messages.h"
#include "core/replicated_deployment.h"
#include "core/restart_budget.h"
#include "crypto/keychain.h"
#include "storage/env.h"
#include "storage/replica_storage.h"

namespace ss::core {
namespace {

ReplicatedOptions durable_options() {
  ReplicatedOptions options;
  options.costs = sim::CostModel::zero();
  options.costs.hop_latency = micros(50);
  options.durable = true;
  options.checkpoint_interval = 8;
  return options;
}

// ---------------------------------------------------------------------------
// Leader reincarnation mid-view

TEST(ProactiveRecovery, LeaderReincarnationTriggersCleanViewChange) {
  ReplicatedDeployment system(durable_options());
  ItemId item = system.add_point("sensor");
  system.start();

  // Establish traffic under the initial leader (replica 0, regency 0).
  for (int i = 0; i < 5; ++i) {
    system.frontend().field_update(item, scada::Variant{double(i)});
    system.run_until(system.loop().now() + millis(100));
  }
  ASSERT_EQ(system.replica(0).regency(), 0u);

  // Reincarnate the leader while traffic keeps flowing: the group must
  // view-change to a new leader instead of stalling until it returns.
  system.kill_replica_process(0);
  int sent = 5;
  for (int i = 0; i < 10; ++i) {
    system.frontend().field_update(item, scada::Variant{double(100 + i)});
    ++sent;
    system.run_until(system.loop().now() + millis(200));
  }
  EXPECT_GT(system.replica(1).regency(), 0u);
  EXPECT_EQ(system.hmi().counters().updates_received,
            static_cast<std::uint64_t>(sent));

  // The rebooted ex-leader rejoins the new view on a fresh epoch.
  system.restart_replica_process(0);
  system.run_until(system.loop().now() + seconds(2));
  EXPECT_FALSE(system.replica(0).crashed());
  EXPECT_GT(system.replica(0).key_epoch(), 0u);
  system.frontend().field_update(item, scada::Variant{999.0});
  system.run_until(system.loop().now() + seconds(1));
  EXPECT_EQ(system.hmi().counters().updates_received,
            static_cast<std::uint64_t>(sent + 1));
  // The phase traffic for that update carried the installed regency, so the
  // ex-leader has adopted it (state transfer alone doesn't ship regencies).
  EXPECT_EQ(system.replica(0).regency(), system.replica(1).regency());
  // Quiesce (no new client traffic), then verify all masters converged.
  system.net().set_policy(kFrontendEndpoint, kProxyFrontendEndpoint,
                          sim::LinkPolicy::cut_link());
  system.run_until(system.loop().now() + seconds(3));
  EXPECT_TRUE(system.masters_converged());
}

// ---------------------------------------------------------------------------
// Key-epoch handover window edges

/// Injects a WRITE envelope from `from_replica` MACed with `epoch`-keys into
/// `to_replica` — the adversary's stolen-key forgery from the chaos engine,
/// reduced to a single deterministic message.
void inject_with_epoch(ReplicatedDeployment& system, std::uint32_t from_replica,
                       std::uint32_t to_replica, std::uint32_t epoch) {
  const std::string from = crypto::replica_principal(ReplicaId{from_replica});
  const std::string to = crypto::replica_principal(ReplicaId{to_replica});
  bft::PhaseVote vote;
  vote.cid = ConsensusId{1};
  vote.voter = ReplicaId{from_replica};
  bft::Envelope env;
  env.type = bft::MsgType::kWrite;
  env.sender = from;
  env.epoch = epoch;
  env.body = vote.encode();
  env.mac = system.keys().mac(
      from, to, epoch,
      bft::envelope_mac_material(env.type, from, to, epoch, env.body));
  system.net().send(from, to, env.encode());
}

TEST(ProactiveRecovery, OldEpochAcceptedInsideHandoverWindow) {
  ReplicatedOptions options = durable_options();
  options.epoch_handover_window = millis(500);
  ReplicatedDeployment system(options);
  ItemId item = system.add_point("sensor");
  system.start();

  // Reincarnate replica 1; traffic makes every peer adopt its new epoch.
  system.kill_replica_process(1);
  system.run_until(system.loop().now() + millis(200));
  system.restart_replica_process(1);
  for (int i = 0; i < 2; ++i) {
    system.frontend().field_update(item, scada::Variant{double(i)});
    system.run_until(system.loop().now() + millis(100));
  }
  ASSERT_GT(system.replica(1).key_epoch(), 0u);

  // An epoch-(current-1) message lands while the handover window is open:
  // accepted (no rejection counted) — in-flight traffic MACed just before
  // the reboot must not be dropped.
  std::uint64_t before = system.replica_stats(0).epoch_rejections;
  inject_with_epoch(system, 1, 0, system.replica(1).key_epoch() - 1);
  system.run_until(system.loop().now() + millis(100));
  EXPECT_EQ(system.replica_stats(0).epoch_rejections, before);
}

TEST(ProactiveRecovery, OldEpochRejectedAfterHandoverWindow) {
  ReplicatedOptions options = durable_options();
  options.epoch_handover_window = millis(500);
  ReplicatedDeployment system(options);
  ItemId item = system.add_point("sensor");
  system.start();

  system.kill_replica_process(1);
  system.run_until(system.loop().now() + millis(200));
  system.restart_replica_process(1);
  for (int i = 0; i < 2; ++i) {
    system.frontend().field_update(item, scada::Variant{double(i)});
    system.run_until(system.loop().now() + millis(100));
  }
  std::uint32_t stolen = system.replica(1).key_epoch() - 1;

  // Let the handover window lapse, then replay: rejected and counted.
  system.run_until(system.loop().now() + millis(700));
  std::uint64_t before = system.replica_stats(0).epoch_rejections;
  inject_with_epoch(system, 1, 0, stolen);
  system.run_until(system.loop().now() + millis(100));
  EXPECT_EQ(system.replica_stats(0).epoch_rejections, before + 1);

  // A current-epoch message from the same sender still flows.
  std::uint64_t rejected = system.replica_stats(0).epoch_rejections;
  system.frontend().field_update(item, scada::Variant{42.0});
  system.run_until(system.loop().now() + millis(300));
  EXPECT_EQ(system.replica_stats(0).epoch_rejections, rejected);
  EXPECT_TRUE(system.masters_converged());
}

// ---------------------------------------------------------------------------
// Restart-budget amnesty (the --supervise reset bugfix)

TEST(RestartBudgetTest, BacksOffExponentiallyAndExhausts) {
  RestartBudget budget(/*max_attempts=*/3, /*healthy_reset_ms=*/10'000,
                       /*base_backoff_ms=*/200);
  budget.on_start(0);
  EXPECT_EQ(budget.on_death(100), 200);
  budget.on_start(300);
  EXPECT_EQ(budget.on_death(400), 400);
  budget.on_start(800);
  EXPECT_EQ(budget.on_death(900), 800);
  budget.on_start(1700);
  EXPECT_EQ(budget.on_death(1800), -1);  // budget exhausted
  EXPECT_TRUE(budget.exhausted());
}

TEST(RestartBudgetTest, SustainedHealthyUptimeGrantsAmnesty) {
  RestartBudget budget(/*max_attempts=*/3, /*healthy_reset_ms=*/10'000,
                       /*base_backoff_ms=*/200);
  budget.on_start(0);
  budget.on_death(100);
  budget.on_start(300);
  budget.on_death(400);
  EXPECT_EQ(budget.attempts(), 2u);

  // A crash *after* a long healthy stretch counts as a fresh burst: the
  // pre-death amnesty check resets the counter before charging the death.
  budget.on_start(1000);
  EXPECT_EQ(budget.on_death(20'000), 200);  // back to the base backoff
  EXPECT_EQ(budget.attempts(), 1u);

  // The periodic liveness tick resets it without waiting for a death.
  budget.on_start(30'000);
  budget.note_healthy(45'000);
  EXPECT_EQ(budget.attempts(), 0u);
}

// ---------------------------------------------------------------------------
// Durable key-epoch counter

TEST(ReplicaStorageEpoch, EpochSurvivesReopenAndUnsyncedDrop) {
  storage::MemEnv env;
  {
    storage::ReplicaStorage storage(env, "replica-9", "storage/replica-9");
    EXPECT_EQ(storage.key_epoch(), 0u);
    EXPECT_EQ(storage.bump_epoch(), 1u);
    EXPECT_EQ(storage.bump_epoch(), 2u);
  }
  // kill -9: the epoch file is written synced, so the bump survives the
  // unsynced-byte drop and the next incarnation continues from it.
  env.drop_unsynced("replica-9/");
  {
    storage::ReplicaStorage storage(env, "replica-9", "storage/replica-9");
    EXPECT_EQ(storage.key_epoch(), 2u);
    EXPECT_EQ(storage.bump_epoch(), 3u);
  }
}

}  // namespace
}  // namespace ss::core
