// Wire-format tests for the BFT protocol messages: round-trips, digest
// stability, and rejection of malformed/truncated/oversized input (every
// decoder is a Byzantine-input surface).
#include <gtest/gtest.h>

#include "bft/messages.h"

namespace ss::bft {
namespace {

ClientRequest sample_request() {
  ClientRequest req;
  req.client = ClientId{7};
  req.sequence = RequestId{42};
  req.mode = RequestMode::kOrdered;
  req.payload = Bytes{1, 2, 3, 4};
  req.auth.assign(4, crypto::Digest{});
  req.auth[1][0] = 0xaa;
  return req;
}

TEST(BftMessages, EnvelopeRoundTrip) {
  Envelope env;
  env.type = MsgType::kPropose;
  env.sender = "replica/2";
  env.body = Bytes{9, 8, 7};
  env.mac[0] = 0x11;
  Envelope decoded = Envelope::decode(env.encode());
  EXPECT_EQ(decoded.type, MsgType::kPropose);
  EXPECT_EQ(decoded.sender, "replica/2");
  EXPECT_EQ(decoded.body, env.body);
  EXPECT_EQ(decoded.mac, env.mac);
}

TEST(BftMessages, EnvelopeRejectsBadType) {
  Envelope env;
  env.type = MsgType::kPropose;
  env.sender = "x";
  Bytes encoded = env.encode();
  encoded[0] = 0x7f;  // type varint out of range
  EXPECT_THROW(Envelope::decode(encoded), DecodeError);
}

TEST(BftMessages, EnvelopeRejectsTrailingBytes) {
  Envelope env;
  env.type = MsgType::kStop;
  env.sender = "x";
  Bytes encoded = env.encode();
  encoded.push_back(0);
  EXPECT_THROW(Envelope::decode(encoded), DecodeError);
}

TEST(BftMessages, ClientRequestRoundTripWithAuth) {
  ClientRequest req = sample_request();
  ClientRequest decoded = ClientRequest::decode(req.encode());
  EXPECT_EQ(decoded.client, req.client);
  EXPECT_EQ(decoded.sequence, req.sequence);
  EXPECT_EQ(decoded.mode, req.mode);
  EXPECT_EQ(decoded.payload, req.payload);
  ASSERT_EQ(decoded.auth.size(), 4u);
  EXPECT_EQ(decoded.auth[1][0], 0xaa);
}

TEST(BftMessages, ClientRequestDigestIgnoresAuth) {
  ClientRequest a = sample_request();
  ClientRequest b = sample_request();
  b.auth[2][5] = 0xff;  // different authenticator
  EXPECT_EQ(a.digest(), b.digest());
  b.payload.push_back(5);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(BftMessages, ClientRequestRejectsHugeAuth) {
  Writer w;
  w.id(ClientId{1});
  w.id(RequestId{1});
  w.enumeration(RequestMode::kOrdered);
  w.blob(Bytes{});
  w.varint(100000);  // absurd authenticator count
  EXPECT_THROW(ClientRequest::decode(w.bytes()), DecodeError);
}

TEST(BftMessages, BatchRoundTripAndDigest) {
  Batch batch;
  batch.timestamp = millis(123);
  batch.requests.push_back(sample_request());
  batch.requests.push_back(sample_request());
  batch.requests[1].sequence = RequestId{43};

  Bytes encoded = batch.encode();
  Batch decoded = Batch::decode(encoded);
  EXPECT_EQ(decoded.timestamp, millis(123));
  ASSERT_EQ(decoded.requests.size(), 2u);
  EXPECT_EQ(decoded.requests[1].sequence, RequestId{43});
  EXPECT_EQ(decoded.digest(), batch.digest());

  // Different timestamp -> different digest (equivocation is detectable).
  Batch other = batch;
  other.timestamp += 1;
  EXPECT_NE(other.digest(), batch.digest());
}

TEST(BftMessages, BatchRejectsAbsurdSize) {
  Writer w;
  w.i64(0);
  w.varint(1000000);
  EXPECT_THROW(Batch::decode(w.bytes()), DecodeError);
}

TEST(BftMessages, ProposeAndVotesRoundTrip) {
  Propose p;
  p.cid = ConsensusId{5};
  p.regency = 2;
  p.leader = ReplicaId{2};
  p.batch = Bytes{1, 2, 3};
  Propose pd = Propose::decode(p.encode());
  EXPECT_EQ(pd.cid, p.cid);
  EXPECT_EQ(pd.regency, 2u);
  EXPECT_EQ(pd.leader, p.leader);
  EXPECT_EQ(pd.batch, p.batch);

  PhaseVote v;
  v.cid = ConsensusId{5};
  v.regency = 2;
  v.voter = ReplicaId{3};
  v.value[31] = 0xee;
  PhaseVote vd = PhaseVote::decode(v.encode());
  EXPECT_EQ(vd.cid, v.cid);
  EXPECT_EQ(vd.voter, v.voter);
  EXPECT_EQ(vd.value, v.value);
}

TEST(BftMessages, ViewChangeMessagesRoundTrip) {
  Stop s{9, ReplicaId{1}};
  Stop sd = Stop::decode(s.encode());
  EXPECT_EQ(sd.regency, 9u);
  EXPECT_EQ(sd.sender, ReplicaId{1});

  StopData data;
  data.regency = 9;
  data.sender = ReplicaId{2};
  data.last_decided = ConsensusId{17};
  data.has_writeset = true;
  data.writeset_cid = ConsensusId{18};
  data.writeset_digest[0] = 0x42;
  data.writeset_proposal = Bytes{7, 7, 7};
  StopData dd = StopData::decode(data.encode());
  EXPECT_EQ(dd.last_decided, ConsensusId{17});
  EXPECT_TRUE(dd.has_writeset);
  EXPECT_EQ(dd.writeset_cid, ConsensusId{18});
  EXPECT_EQ(dd.writeset_digest[0], 0x42);
  EXPECT_EQ(dd.writeset_proposal, (Bytes{7, 7, 7}));

  Sync sync;
  sync.regency = 9;
  sync.leader = ReplicaId{1};
  sync.cid = ConsensusId{18};
  sync.batch = Bytes{1};
  Sync syncd = Sync::decode(sync.encode());
  EXPECT_EQ(syncd.cid, ConsensusId{18});
  EXPECT_EQ(syncd.batch, (Bytes{1}));
}

// PREPARE, COMMIT, and VIEW-CHANGE certificate materials are domain-tagged:
// a USIG certificate minted for one message kind must never verify as
// another. Without the tag, prepare and commit materials over the same
// (view, cid, digest) are byte-identical, and an attacker holding a
// replica's session keys could replay the leader's broadcast prepare
// certificate as a commit vote the leader never cast.
TEST(BftMessages, UsigMaterialsAreDomainSeparated) {
  crypto::Digest digest{};
  digest[0] = 0x5e;
  Bytes prepare = MbPrepare::material(3, ConsensusId{7}, digest);
  Bytes commit = MbCommit::material(3, ConsensusId{7}, digest);
  EXPECT_NE(prepare, commit);

  MbViewChange vc;
  vc.view = 3;
  vc.sender = ReplicaId{1};
  vc.last_decided = ConsensusId{6};
  EXPECT_NE(vc.material(), vc.encode_core());

  crypto::Keychain keys("secret");
  crypto::Usig usig(keys, ReplicaId{0});
  crypto::UsigCert cert = usig.certify(prepare);
  EXPECT_TRUE(crypto::Usig::verify(keys, ReplicaId{0}, prepare, cert));
  EXPECT_FALSE(crypto::Usig::verify(keys, ReplicaId{0}, commit, cert));
}

TEST(BftMessages, StateTransferRoundTripAndDigest) {
  StateRequest req{ReplicaId{3}, ConsensusId{10}};
  StateRequest reqd = StateRequest::decode(req.encode());
  EXPECT_EQ(reqd.requester, ReplicaId{3});
  EXPECT_EQ(reqd.have, ConsensusId{10});

  StateReply rep;
  rep.replica = ReplicaId{0};
  rep.cid = ConsensusId{20};
  rep.last_timestamp = millis(5);
  rep.snapshot = Bytes{9, 9};
  StateReply repd = StateReply::decode(rep.encode());
  EXPECT_EQ(repd.cid, ConsensusId{20});
  EXPECT_EQ(repd.snapshot, (Bytes{9, 9}));

  // The voted digest covers (cid, timestamp, snapshot) but NOT the replica
  // id — replies from different replicas with the same state must match.
  StateReply other = rep;
  other.replica = ReplicaId{1};
  EXPECT_EQ(other.digest(), rep.digest());
  other.snapshot[0] ^= 1;
  EXPECT_NE(other.digest(), rep.digest());
}

TEST(BftMessages, ReplyAndPushRoundTrip) {
  ClientReply reply;
  reply.replica = ReplicaId{2};
  reply.client = ClientId{9};
  reply.sequence = RequestId{100};
  reply.cid = ConsensusId{55};
  reply.payload = Bytes{4, 5};
  ClientReply rd = ClientReply::decode(reply.encode());
  EXPECT_EQ(rd.replica, reply.replica);
  EXPECT_EQ(rd.cid, reply.cid);
  EXPECT_EQ(rd.payload, reply.payload);

  ServerPush push;
  push.replica = ReplicaId{1};
  push.client = ClientId{9};
  push.seq = 42;
  push.payload = Bytes{6};
  ServerPush pd = ServerPush::decode(push.encode());
  EXPECT_EQ(pd.replica, push.replica);
  EXPECT_EQ(pd.client, push.client);
  EXPECT_EQ(pd.seq, push.seq);
  EXPECT_EQ(pd.payload, push.payload);
}

// Truncation sweep: every prefix of a valid encoding must throw, never
// crash or return garbage (Byzantine-input robustness).
class TruncationSweep : public ::testing::TestWithParam<int> {};

TEST_P(TruncationSweep, EveryPrefixThrows) {
  Batch batch;
  batch.timestamp = millis(1);
  batch.requests.push_back(sample_request());
  Bytes full = batch.encode();
  std::size_t cut = full.size() * static_cast<std::size_t>(GetParam()) / 10;
  if (cut >= full.size()) return;
  Bytes truncated(full.begin(), full.begin() + static_cast<long>(cut));
  EXPECT_THROW(Batch::decode(truncated), DecodeError) << "cut=" << cut;
}

INSTANTIATE_TEST_SUITE_P(Cuts, TruncationSweep,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7, 8, 9));

TEST(BftMessages, TypeNames) {
  EXPECT_STREQ(msg_type_name(MsgType::kPropose), "PROPOSE");
  EXPECT_STREQ(msg_type_name(MsgType::kStopData), "STOP_DATA");
  EXPECT_STREQ(msg_type_name(MsgType::kStateReply), "STATE_REPLY");
}

}  // namespace
}  // namespace ss::bft
