// Soak-campaign subsystem tests: deterministic planning, short clean soaks
// of both plants (honoring SS_PROTOCOL like the chaos smoke), the liveness
// watchdog firing on an artificially wedged deployment, same-seed
// reproducibility of a failing campaign, and the chunked delta-debug
// minimizer on campaign-length scripts.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "chaos/campaign.h"

namespace ss::chaos {
namespace {

Protocol protocol_from_env() {
  if (const char* env = std::getenv("SS_PROTOCOL")) {
    return parse_protocol(env);
  }
  return Protocol::kPbft;
}

TEST(CampaignPlan, SameSeedSamePlan) {
  CampaignOptions options;
  options.seed = 0x50AC;
  options.duration = seconds(40);
  CampaignPlan a = plan_campaign(options);
  CampaignPlan b = plan_campaign(options);
  ASSERT_EQ(a.phases.size(), 10u);
  EXPECT_EQ(a.describe(), b.describe());
  EXPECT_EQ(a.flatten().describe(), b.flatten().describe());

  CampaignOptions other = options;
  other.seed = 0x50AD;
  EXPECT_NE(plan_campaign(other).flatten().describe(),
            a.flatten().describe());
}

TEST(CampaignPlan, DrawsEveryFamilyBeforeRepeating) {
  CampaignOptions options;
  options.seed = 7;
  // One full deck of phases: every scenario family (gray included) must
  // appear exactly once before any repeats.
  const std::size_t families = std::size(kAllFamilies);
  options.duration = options.phase * static_cast<SimTime>(families);
  CampaignPlan plan = plan_campaign(options);
  ASSERT_EQ(plan.phases.size(), families);
  std::set<ScenarioFamily> seen;
  for (const CampaignPhase& phase : plan.phases) {
    EXPECT_TRUE(seen.insert(phase.family).second)
        << "family repeated before the deck was exhausted: "
        << family_name(phase.family);
  }
}

TEST(CampaignPlan, ActionOffsetsAreAbsoluteAndInsidePhaseWindows) {
  CampaignOptions options;
  options.seed = 3;
  options.duration = seconds(20);
  CampaignPlan plan = plan_campaign(options);
  for (const CampaignPhase& phase : plan.phases) {
    for (const FaultAction& action : phase.script.actions) {
      EXPECT_GE(action.at, phase.start);
      // Injections stop at 5/8 of the phase; heal (3/4) and audit (7/8)
      // own the tail.
      EXPECT_LT(action.at, phase.start + options.phase * 5 / 8);
    }
  }
}

// A short continuous-fault soak of each plant must come out clean: no
// safety violations, no watchdog firings, recovery inside the bound. The
// full >= 60 s acceptance soak runs in CI via examples/soak_campaign.
TEST(CampaignRun, ShortPowerGridSoakIsClean) {
  CampaignOptions options;
  options.plant = Plant::kPowerGrid;
  options.protocol = protocol_from_env();
  options.seed = 11;
  options.duration = seconds(16);
  CampaignReport report = run_campaign(options);
  EXPECT_TRUE(report.ok()) << report.summary() << "\nfirst: "
                           << (report.violations.empty()
                                   ? ""
                                   : report.violations.front().detail);
  EXPECT_GT(report.decisions, 0u);
  EXPECT_GT(report.writes_completed, 0u);
  EXPECT_GT(report.watchdog_checks, 0u);
  EXPECT_GT(report.audits, 0u);
  EXPECT_LE(report.worst_recovery, options.recovery_bound);
}

TEST(CampaignRun, ShortWaterPipelineSoakIsClean) {
  CampaignOptions options;
  options.plant = Plant::kWaterPipeline;
  options.protocol = protocol_from_env();
  options.seed = 12;
  options.duration = seconds(16);
  CampaignReport report = run_campaign(options);
  EXPECT_TRUE(report.ok()) << report.summary() << "\nfirst: "
                           << (report.violations.empty()
                                   ? ""
                                   : report.violations.front().detail);
  EXPECT_GT(report.writes_completed, 0u);
}

// The liveness watchdog's core promise: a deployment that silently stops —
// every replica isolated behind the availability bookkeeping's back, so
// "a correct quorum is connected" still reads true — becomes a first-class
// violation within one watchdog window, not a hang or a quiet timeout.
TEST(CampaignWatchdog, FiresOnArtificiallyWedgedDeployment) {
  CampaignOptions options;
  options.plant = Plant::kPowerGrid;
  options.protocol = protocol_from_env();
  options.seed = 21;
  options.duration = seconds(8);
  options.wedge_at = millis(1500);
  CampaignReport report = run_campaign(options);
  ASSERT_FALSE(report.ok());
  bool watchdog_fired = false;
  SimTime fired_at = 0;
  for (const Violation& v : report.violations) {
    if (v.invariant == "liveness-watchdog") {
      watchdog_fired = true;
      fired_at = v.at;
      break;
    }
  }
  ASSERT_TRUE(watchdog_fired) << report.summary();
  // Detection latency: within ~two windows of the wedge (one full window
  // of genuine no-progress plus check-phase alignment).
  EXPECT_LE(fired_at, millis(1500) + 3 * options.watchdog_window);
}

TEST(CampaignDeterminism, SameSeedSameViolation) {
  CampaignOptions options;
  options.plant = Plant::kWaterPipeline;
  options.protocol = protocol_from_env();
  options.seed = 21;
  options.duration = seconds(8);
  options.wedge_at = millis(1500);
  CampaignReport a = run_campaign(options);
  CampaignReport b = run_campaign(options);
  ASSERT_FALSE(a.ok());
  ASSERT_EQ(a.violations.size(), b.violations.size());
  EXPECT_EQ(a.violations.front().invariant, b.violations.front().invariant);
  EXPECT_EQ(a.violations.front().at, b.violations.front().at);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.writes_issued, b.writes_issued);
  EXPECT_EQ(a.writes_completed, b.writes_completed);
}

// Chunked ddmin over a campaign-length script: the wedge is harness-driven
// (not a script action), so every action is removable and the minimizer
// must shrink the failing campaign to the empty script while the failure
// persists — proving it drops big chunks without losing the violation.
TEST(CampaignMinimize, WedgeFailureShrinksToEmptyScript) {
  CampaignOptions options;
  options.plant = Plant::kPowerGrid;
  options.protocol = protocol_from_env();
  options.seed = 21;
  options.duration = seconds(8);
  options.wedge_at = millis(1500);
  ASSERT_GE(plan_campaign(options).flatten().actions.size(), 4u);
  CampaignMinimizeResult min = minimize_campaign(options);
  EXPECT_TRUE(min.minimal.actions.empty())
      << "kept " << min.minimal.actions.size() << " actions:\n"
      << min.minimal.describe();
  EXPECT_FALSE(min.report.ok());
  // And the repro command round-trips the options the runner needs.
  std::string repro = campaign_repro_command(options);
  EXPECT_NE(repro.find("--plant=power-grid"), std::string::npos);
  EXPECT_NE(repro.find("--seed=0x15"), std::string::npos);
}

}  // namespace
}  // namespace ss::chaos
