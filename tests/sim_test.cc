// Unit tests for src/sim: event loop determinism, timers, network delivery
// and fault injection, service-lane queueing.
#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "core/replicated_deployment.h"
#include "core/runner.h"
#include "obs/trace.h"
#include "scada/messages.h"
#include "scada/variant.h"
#include "sim/event_loop.h"
#include "sim/network.h"
#include "sim/service_lane.h"

namespace ss::sim {
namespace {

TEST(EventLoop, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule(millis(3), [&] { order.push_back(3); });
  loop.schedule(millis(1), [&] { order.push_back(1); });
  loop.schedule(millis(2), [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), millis(3));
}

TEST(EventLoop, TiesBreakByScheduleOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule(millis(5), [&order, i] { order.push_back(i); });
  }
  loop.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventLoop, NestedScheduling) {
  EventLoop loop;
  std::vector<std::string> order;
  loop.schedule(millis(1), [&] {
    order.push_back("outer");
    loop.schedule(millis(1), [&] { order.push_back("inner"); });
  });
  loop.run();
  EXPECT_EQ(order, (std::vector<std::string>{"outer", "inner"}));
  EXPECT_EQ(loop.now(), millis(2));
}

TEST(EventLoop, CancelledTimerDoesNotFire) {
  EventLoop loop;
  bool fired = false;
  TimerHandle handle = loop.schedule(millis(1), [&] { fired = true; });
  EXPECT_TRUE(handle.active());
  handle.cancel();
  EXPECT_FALSE(handle.active());
  loop.run();
  EXPECT_FALSE(fired);
}

TEST(EventLoop, RunUntilLeavesLaterEvents) {
  EventLoop loop;
  int count = 0;
  loop.schedule(millis(1), [&] { ++count; });
  loop.schedule(millis(10), [&] { ++count; });
  loop.run_until(millis(5));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(loop.now(), millis(5));
  EXPECT_EQ(loop.pending(), 1u);
  loop.run();
  EXPECT_EQ(count, 2);
}

TEST(EventLoop, RunStepsBounded) {
  EventLoop loop;
  int count = 0;
  for (int i = 0; i < 5; ++i) loop.schedule(millis(i), [&] { ++count; });
  EXPECT_EQ(loop.run_steps(2), 2u);
  EXPECT_EQ(count, 2);
}

TEST(EventLoop, BudgetCatchesRunaway) {
  EventLoop loop;
  loop.set_event_budget(100);
  std::function<void()> spin = [&] { loop.schedule(1, spin); };
  loop.schedule(1, spin);
  EXPECT_THROW(loop.run(), std::runtime_error);
}

TEST(EventLoop, PastDeadlineClampsToNow) {
  EventLoop loop;
  loop.schedule(millis(5), [] {});
  loop.run();
  bool fired = false;
  loop.schedule_at(millis(1), [&] { fired = true; });  // in the past
  loop.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(loop.now(), millis(5));
}

TEST(Network, DeliversWithLatency) {
  EventLoop loop;
  Network net(loop, micros(100), 10);
  SimTime delivered_at = -1;
  net.attach("b", [&](Message msg) {
    delivered_at = loop.now();
    EXPECT_EQ(msg.from, "a");
    EXPECT_EQ(msg.payload.size(), 100u);
  });
  net.send("a", "b", Bytes(100, 1));
  loop.run();
  EXPECT_EQ(delivered_at, micros(100) + 100 * 10);
  EXPECT_EQ(net.stats().delivered, 1u);
}

TEST(Network, DetachedEndpointDropsSilently) {
  EventLoop loop;
  Network net(loop, 0, 0);
  int received = 0;
  net.attach("b", [&](Message) { ++received; });
  net.send("a", "b", Bytes{1});
  net.detach("b");
  net.send("a", "b", Bytes{2});
  loop.run();
  EXPECT_EQ(received, 0);  // detach before delivery drops the in-flight one
}

TEST(Network, CutLinkDropsEverything) {
  EventLoop loop;
  Network net(loop, 0, 0);
  int received = 0;
  net.attach("b", [&](Message) { ++received; });
  net.set_policy("a", "b", LinkPolicy::cut_link());
  for (int i = 0; i < 10; ++i) net.send("a", "b", Bytes{1});
  loop.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.stats().dropped, 10u);

  net.clear_policy("a", "b");
  net.send("a", "b", Bytes{1});
  loop.run();
  EXPECT_EQ(received, 1);
}

TEST(Network, DropFirstNIsDeterministic) {
  EventLoop loop;
  Network net(loop, 0, 0);
  int received = 0;
  net.attach("b", [&](Message) { ++received; });
  LinkPolicy policy;
  policy.drop_first_n = 3;
  net.set_policy("a", "b", policy);
  for (int i = 0; i < 5; ++i) net.send("a", "b", Bytes{1});
  loop.run();
  EXPECT_EQ(received, 2);
}

TEST(Network, ProbabilisticDropIsSeeded) {
  auto run = [](std::uint64_t seed) {
    EventLoop loop;
    Network net(loop, 0, 0, seed);
    int received = 0;
    net.attach("b", [&](Message) { ++received; });
    LinkPolicy policy;
    policy.drop_prob = 0.5;
    net.set_policy("a", "b", policy);
    for (int i = 0; i < 1000; ++i) net.send("a", "b", Bytes{1});
    loop.run();
    return received;
  };
  int first = run(1);
  EXPECT_EQ(first, run(1));  // same seed, same outcome
  EXPECT_GT(first, 300);     // roughly half get through
  EXPECT_LT(first, 700);
}

TEST(Network, CorruptionFlipsBytes) {
  EventLoop loop;
  Network net(loop, 0, 0);
  Bytes received;
  net.attach("b", [&](Message msg) { received = msg.payload; });
  LinkPolicy policy;
  policy.corrupt_prob = 1.0;
  net.set_policy("a", "b", policy);
  net.send("a", "b", Bytes{0x00, 0x00});
  loop.run();
  ASSERT_EQ(received.size(), 2u);
  EXPECT_TRUE(received[0] == 0xff || received[1] == 0xff);
  EXPECT_EQ(net.stats().corrupted, 1u);
}

TEST(Network, DuplicationDeliversTwice) {
  EventLoop loop;
  Network net(loop, 0, 0);
  int received = 0;
  net.attach("b", [&](Message) { ++received; });
  LinkPolicy policy;
  policy.dup_prob = 1.0;
  net.set_policy("a", "b", policy);
  net.send("a", "b", Bytes{1});
  loop.run();
  EXPECT_EQ(received, 2);
}

TEST(Network, IsolateAndHeal) {
  EventLoop loop;
  Network net(loop, 0, 0);
  int received = 0;
  net.attach("b", [&](Message) { ++received; });
  net.isolate("b");
  net.send("a", "b", Bytes{1});
  net.send("b", "a", Bytes{1});
  loop.run();
  EXPECT_EQ(received, 0);
  net.heal("b");
  net.send("a", "b", Bytes{1});
  loop.run();
  EXPECT_EQ(received, 1);
}

TEST(Network, ExtraDelayAndJitter) {
  EventLoop loop;
  Network net(loop, micros(10), 0);
  SimTime delivered_at = 0;
  net.attach("b", [&](Message) { delivered_at = loop.now(); });
  LinkPolicy policy;
  policy.extra_delay = millis(5);
  net.set_policy("a", "b", policy);
  net.send("a", "b", Bytes{1});
  loop.run();
  EXPECT_EQ(delivered_at, micros(10) + millis(5));
}

TEST(ServiceLanes, SingleLaneSerializes) {
  EventLoop loop;
  ServiceLanes lanes(loop, 1);
  std::vector<SimTime> completions;
  for (int i = 0; i < 3; ++i) {
    lanes.submit(millis(10), [&] { completions.push_back(loop.now()); });
  }
  loop.run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0], millis(10));
  EXPECT_EQ(completions[1], millis(20));
  EXPECT_EQ(completions[2], millis(30));
}

TEST(ServiceLanes, MultiLaneRunsInParallel) {
  EventLoop loop;
  ServiceLanes lanes(loop, 4);
  std::vector<SimTime> completions;
  for (int i = 0; i < 4; ++i) {
    lanes.submit(millis(10), [&] { completions.push_back(loop.now()); });
  }
  loop.run();
  ASSERT_EQ(completions.size(), 4u);
  for (SimTime t : completions) EXPECT_EQ(t, millis(10));
}

TEST(ServiceLanes, QueueingAfterSaturation) {
  EventLoop loop;
  ServiceLanes lanes(loop, 2);
  std::vector<SimTime> completions;
  for (int i = 0; i < 4; ++i) {
    lanes.submit(millis(10), [&] { completions.push_back(loop.now()); });
  }
  loop.run();
  ASSERT_EQ(completions.size(), 4u);
  EXPECT_EQ(completions[0], millis(10));
  EXPECT_EQ(completions[1], millis(10));
  EXPECT_EQ(completions[2], millis(20));
  EXPECT_EQ(completions[3], millis(20));
  EXPECT_EQ(lanes.busy_ns(), millis(40));
  EXPECT_EQ(lanes.jobs(), 4u);
}

TEST(ServiceLanes, ZeroCostCompletesImmediately) {
  EventLoop loop;
  ServiceLanes lanes(loop, 1);
  bool done = false;
  lanes.submit(0, [&] { done = true; });
  loop.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(loop.now(), 0);
}

// ---------------------------------------------------------------------------
// Runner-seam determinism regression (PR 6)
//
// The runner seam threaded through bft::Replica must be invisible to the
// simulator: a full replicated write round produces the exact same virtual
// timeline (trace spans), the same wire traffic, and the same replica state
// bytes whether the replicas use their built-in InlineRunner or one we
// install explicitly. Run twice with defaults to establish the baseline is
// itself reproducible, then once with explicit runners — all three
// signatures must be byte-identical.

namespace {

/// Full-fidelity signature of one simulated write round: every trace span
/// (op, stage, component, virtual begin/end), the network counters, the
/// final virtual time, and each replica's full state snapshot bytes.
std::string write_round_signature(bool explicit_inline_runner) {
  obs::Tracer::instance().reset();
  core::ReplicatedDeployment system;
  std::vector<core::InlineRunner> runners(system.n());
  if (explicit_inline_runner) {
    for (std::uint32_t i = 0; i < system.n(); ++i) {
      system.replica(i).set_runner(&runners[i]);
    }
  }
  ItemId item = system.add_point("breaker/1", scada::Variant{0.0});
  system.start();

  scada::WriteResult result;
  bool done = false;
  system.hmi().write(item, scada::Variant{1.0},
                     [&](const scada::WriteResult& r) {
                       result = r;
                       done = true;
                     });
  system.settle();
  EXPECT_TRUE(done);
  EXPECT_EQ(result.status, scada::WriteStatus::kOk);

  std::string sig;
  for (const obs::Span& span : obs::Tracer::instance().spans()) {
    sig += std::to_string(span.op) + "|" + span.stage + "|" + span.component +
           "|" + std::to_string(span.begin) + "|" + std::to_string(span.end) +
           "\n";
  }
  const NetworkStats& stats = system.net().stats();
  sig += "net " + std::to_string(stats.sent) + " " +
         std::to_string(stats.delivered) + " " + std::to_string(stats.bytes) +
         "\n";
  sig += "now " + std::to_string(system.loop().now()) + "\n";
  for (std::uint32_t i = 0; i < system.n(); ++i) {
    Bytes snapshot = system.replica(i).full_snapshot();
    sig += "replica " + std::to_string(i) + " ";
    sig.append(reinterpret_cast<const char*>(snapshot.data()),
               snapshot.size());
    sig += "\n";
  }
  obs::Tracer::instance().reset();
  return sig;
}

}  // namespace

TEST(RunnerDeterminism, InlineRunnerLeavesSimTimelineUnchanged) {
  std::string baseline = write_round_signature(false);
  EXPECT_FALSE(baseline.empty());
  EXPECT_NE(baseline.find("agreement"), std::string::npos)
      << "write round never reached the BFT layer";
  EXPECT_EQ(write_round_signature(false), baseline)
      << "sim run is not reproducible at all";
  EXPECT_EQ(write_round_signature(true), baseline)
      << "explicit InlineRunner changed the simulated timeline or bytes";
}

// The agreement-engine seam (PR 9) must be byte-invisible: the same write
// round, replayed through the refactored PBFT engine, must reproduce the
// exact signature recorded from the pre-refactor monolithic replica —
// identical span timeline, identical wire traffic, identical virtual clock,
// identical replica snapshot bytes. The golden file was captured at the
// commit immediately before the engine extraction; regenerate it ONLY for a
// deliberate, reviewed protocol change.
TEST(EngineSeam, PbftEngineMatchesPreRefactorGolden) {
  std::ifstream golden_file(SS_SOURCE_DIR "/tests/data/pbft_write_round.golden",
                            std::ios::binary);
  ASSERT_TRUE(golden_file.is_open()) << "golden file missing";
  std::string golden((std::istreambuf_iterator<char>(golden_file)),
                     std::istreambuf_iterator<char>());
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(write_round_signature(false), golden)
      << "engine seam changed observable behaviour vs the pre-refactor "
         "recording";
}

}  // namespace
}  // namespace ss::sim
