// Integration tests for the SMaRt-SCADA core: baseline end-to-end flows,
// replicated end-to-end flows, push voting, the logical-timeout protocol,
// Byzantine masking, crash/recovery, and cross-replica determinism.
#include <gtest/gtest.h>

#include "core/baseline_deployment.h"
#include "core/push_voter.h"
#include "core/replicated_deployment.h"
#include "core/scada_link.h"
#include "sim/event_loop.h"
#include "sim/network.h"

namespace ss::core {
namespace {

sim::CostModel fast_costs() {
  // Keep unit tests snappy: small but non-zero network, zero CPU.
  sim::CostModel costs = sim::CostModel::zero();
  costs.hop_latency = micros(50);
  return costs;
}

// ---------------------------------------------------------------------------
// scada_link

TEST(ScadaLink, RoundTripAndForgeryRejected) {
  sim::EventLoop loop;
  sim::Network net(loop, 0, 0);
  crypto::Keychain keys("secret");

  std::optional<scada::ScadaMessage> received;
  std::string sender;
  net.attach("b", [&](sim::Message m) {
    received = receive_scada(keys, "b", m, &sender);
  });

  scada::WriteValue write;
  write.ctx.op = OpId{7};
  write.item = ItemId{1};
  write.value = scada::Variant{2.0};
  send_scada(net, keys, "a", "b", scada::ScadaMessage{write});
  loop.run();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(sender, "a");
  EXPECT_EQ(std::get<scada::WriteValue>(*received).ctx.op, OpId{7});

  // Tampered frames are rejected.
  received.reset();
  sim::LinkPolicy corrupt;
  corrupt.corrupt_prob = 1.0;
  net.set_policy("a", "b", corrupt);
  send_scada(net, keys, "a", "b", scada::ScadaMessage{write});
  loop.run();
  EXPECT_FALSE(received.has_value());
}

// ---------------------------------------------------------------------------
// PushVoter

scada::ScadaMessage sample_update(std::uint64_t op) {
  scada::ItemUpdate update;
  update.ctx.op = OpId{op};
  update.item = ItemId{1};
  update.value = scada::Variant{1.0};
  return scada::ScadaMessage{update};
}

TEST(PushVoterTest, DeliversOnceAtFPlusOne) {
  GroupConfig group = GroupConfig::for_f(1);
  int delivered = 0;
  PushVoter voter(group, [&](const scada::ScadaMessage&) { ++delivered; });
  Bytes payload = scada::encode_message(sample_update(1));
  voter.offer(ReplicaId{0}, payload);
  EXPECT_EQ(delivered, 0);
  voter.offer(ReplicaId{1}, payload);
  EXPECT_EQ(delivered, 1);
  voter.offer(ReplicaId{2}, payload);  // straggler
  voter.offer(ReplicaId{3}, payload);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(voter.stats().stragglers, 2u);
}

TEST(PushVoterTest, DuplicateVotesFromOneReplicaDoNotCount) {
  GroupConfig group = GroupConfig::for_f(1);
  int delivered = 0;
  PushVoter voter(group, [&](const scada::ScadaMessage&) { ++delivered; });
  Bytes payload = scada::encode_message(sample_update(1));
  voter.offer(ReplicaId{0}, payload);
  voter.offer(ReplicaId{0}, payload);
  voter.offer(ReplicaId{0}, payload);
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(voter.stats().duplicate_votes, 2u);
}

TEST(PushVoterTest, CorruptMinorityNeverDelivers) {
  GroupConfig group = GroupConfig::for_f(1);
  int delivered = 0;
  PushVoter voter(group, [&](const scada::ScadaMessage&) { ++delivered; });
  // One Byzantine replica pushes a forged message; f+1 is never reached.
  Bytes forged = scada::encode_message(sample_update(666));
  voter.offer(ReplicaId{2}, forged);
  EXPECT_EQ(delivered, 0);
  // Malformed pushes are counted, not crashed on.
  voter.offer(ReplicaId{2}, Bytes{0xff, 0xff});
  EXPECT_EQ(voter.stats().malformed, 1u);
}

TEST(PushVoterTest, OutOfRangeReplicaRejected) {
  GroupConfig group = GroupConfig::for_f(1);
  int delivered = 0;
  PushVoter voter(group, [&](const scada::ScadaMessage&) { ++delivered; });
  Bytes payload = scada::encode_message(sample_update(1));
  voter.offer(ReplicaId{9}, payload);
  voter.offer(ReplicaId{10}, payload);
  EXPECT_EQ(delivered, 0);
}

TEST(PushVoterTest, DistinctMessagesVoteIndependently) {
  GroupConfig group = GroupConfig::for_f(1);
  std::vector<std::uint64_t> delivered;
  PushVoter voter(group, [&](const scada::ScadaMessage& msg) {
    delivered.push_back(context_of(msg).op.value);
  });
  Bytes a = scada::encode_message(sample_update(1));
  Bytes b = scada::encode_message(sample_update(2));
  voter.offer(ReplicaId{0}, a);
  voter.offer(ReplicaId{0}, b);
  voter.offer(ReplicaId{1}, b);
  voter.offer(ReplicaId{1}, a);
  EXPECT_EQ(delivered, (std::vector<std::uint64_t>{2, 1}));
}

// ---------------------------------------------------------------------------
// Baseline deployment end-to-end

TEST(Baseline, UpdateReachesHmi) {
  BaselineDeployment system(BaselineOptions{.costs = fast_costs()});
  ItemId item = system.add_point("grid/voltage");
  system.start();

  system.frontend().field_update(item, scada::Variant{231.5});
  system.run_until(system.loop().now() + millis(10));

  EXPECT_EQ(system.hmi().counters().updates_received, 1u);
  ASSERT_NE(system.hmi().item(item), nullptr);
  EXPECT_DOUBLE_EQ(system.hmi().item(item)->value.as_double(), 231.5);
}

TEST(Baseline, AlarmReachesHmiViaAeChannel) {
  BaselineDeployment system(BaselineOptions{.costs = fast_costs()});
  ItemId item = system.add_point("grid/voltage");
  system.master().handlers(item).emplace<scada::MonitorHandler>(
      scada::MonitorHandler::Condition::kAbove, 240.0);
  system.start();

  system.frontend().field_update(item, scada::Variant{250.0});
  system.run_until(system.loop().now() + millis(10));

  EXPECT_EQ(system.hmi().counters().updates_received, 1u);
  EXPECT_EQ(system.hmi().counters().events_received, 1u);
  ASSERT_EQ(system.hmi().event_log().size(), 1u);
  EXPECT_EQ(system.hmi().event_log()[0].code, "MONITOR_TRIGGER");
  EXPECT_EQ(system.master().storage().size(), 1u);
}

TEST(Baseline, SynchronousWriteCompletes) {
  BaselineDeployment system(BaselineOptions{.costs = fast_costs()});
  ItemId item = system.add_point("breaker/1", scada::Variant{0.0});
  system.start();

  scada::WriteResult result;
  bool done = false;
  system.hmi().write(item, scada::Variant{1.0},
                     [&](const scada::WriteResult& r) {
                       result = r;
                       done = true;
                     });
  system.run_until(system.loop().now() + millis(20));

  EXPECT_TRUE(done);
  EXPECT_EQ(result.status, scada::WriteStatus::kOk);
  EXPECT_DOUBLE_EQ(system.frontend().item(item)->value.as_double(), 1.0);
}

TEST(Baseline, BlockedWriteDeniedWithReason) {
  BaselineDeployment system(BaselineOptions{.costs = fast_costs()});
  ItemId item = system.add_point("breaker/1");
  auto* block = system.master().handlers(item).emplace<scada::BlockHandler>();
  block->block("switchyard maintenance");
  system.start();

  scada::WriteResult result;
  bool done = false;
  system.hmi().write(item, scada::Variant{1.0},
                     [&](const scada::WriteResult& r) {
                       result = r;
                       done = true;
                     });
  system.run_until(system.loop().now() + millis(20));

  EXPECT_TRUE(done);
  EXPECT_EQ(result.status, scada::WriteStatus::kDenied);
  EXPECT_NE(result.reason.find("maintenance"), std::string::npos);
  // The paper's §II-B flow: the denial reason also arrives as an AE event.
  EXPECT_EQ(system.hmi().counters().events_received, 1u);
}

TEST(Baseline, CommunicationStepsMatchPaperFigure3) {
  // Figure 3: ItemUpdate takes 3 communication steps (Frontend->Master,
  // internal, Master->HMI) — on the wire that is 2 network messages.
  BaselineDeployment system(BaselineOptions{.costs = fast_costs()});
  ItemId item = system.add_point("x");
  system.start();
  system.net().reset_stats();

  system.frontend().field_update(item, scada::Variant{1.0});
  system.run_until(system.loop().now() + millis(10));
  EXPECT_EQ(system.net().stats().delivered, 2u);
}

TEST(Baseline, CommunicationStepsMatchPaperFigure4) {
  // Figure 4: WriteValue takes 6 steps; on the wire: HMI->Master,
  // Master->Frontend, Frontend->Master, Master->HMI = 4 messages.
  BaselineDeployment system(BaselineOptions{.costs = fast_costs()});
  ItemId item = system.add_point("x");
  system.start();
  system.net().reset_stats();

  bool done = false;
  system.hmi().write(item, scada::Variant{1.0},
                     [&](const scada::WriteResult&) { done = true; });
  system.run_until(system.loop().now() + millis(20));
  ASSERT_TRUE(done);
  EXPECT_EQ(system.net().stats().delivered, 4u);
}

// ---------------------------------------------------------------------------
// Replicated deployment end-to-end

ReplicatedOptions fast_replicated() {
  ReplicatedOptions options;
  options.costs = fast_costs();
  options.write_timeout = millis(500);
  return options;
}

TEST(Replicated, UpdateReachesHmiThroughAgreement) {
  ReplicatedDeployment system(fast_replicated());
  ItemId item = system.add_point("grid/voltage");
  system.start();

  system.frontend().field_update(item, scada::Variant{231.5});
  system.run_until(system.loop().now() + seconds(1));

  EXPECT_EQ(system.hmi().counters().updates_received, 1u);
  ASSERT_NE(system.hmi().item(item), nullptr);
  EXPECT_DOUBLE_EQ(system.hmi().item(item)->value.as_double(), 231.5);
  // Every replica executed the update.
  for (std::uint32_t i = 0; i < system.n(); ++i) {
    EXPECT_EQ(system.master(i).counters().updates_processed, 1u);
  }
  EXPECT_TRUE(system.masters_converged());
}

TEST(Replicated, AlarmsAreVotedAndDeliveredOnce) {
  ReplicatedDeployment system(fast_replicated());
  ItemId item = system.add_point("grid/voltage");
  system.configure_masters([item](scada::ScadaMaster& master) {
    master.handlers(item).emplace<scada::MonitorHandler>(
        scada::MonitorHandler::Condition::kAbove, 240.0);
  });
  system.start();

  system.frontend().field_update(item, scada::Variant{250.0});
  system.run_until(system.loop().now() + seconds(1));

  // Despite 4 replicas pushing, the HMI sees exactly one update and one
  // alarm — the ProxyHMI voter deduplicates (challenge (d)).
  EXPECT_EQ(system.hmi().counters().updates_received, 1u);
  EXPECT_EQ(system.hmi().counters().events_received, 1u);
  ASSERT_EQ(system.hmi().event_log().size(), 1u);
  EXPECT_EQ(system.hmi().event_log()[0].code, "MONITOR_TRIGGER");
  EXPECT_TRUE(system.masters_converged());
}

TEST(Replicated, EventTimestampsIdenticalAcrossReplicas) {
  ReplicatedDeployment system(fast_replicated());
  ItemId item = system.add_point("grid/voltage");
  system.configure_masters([item](scada::ScadaMaster& master) {
    master.handlers(item).emplace<scada::MonitorHandler>(
        scada::MonitorHandler::Condition::kAbove, 0.0);
  });
  system.start();

  for (int i = 1; i <= 5; ++i) {
    system.frontend().field_update(item, scada::Variant{double(i)});
  }
  system.run_until(system.loop().now() + seconds(2));

  ASSERT_EQ(system.master(0).storage().size(), 5u);
  for (std::uint32_t i = 1; i < system.n(); ++i) {
    ASSERT_EQ(system.master(i).storage().size(), 5u);
    EXPECT_EQ(system.master(i).storage().chain_digest(),
              system.master(0).storage().chain_digest());
  }
}

TEST(Replicated, SynchronousWriteCompletes) {
  ReplicatedDeployment system(fast_replicated());
  ItemId item = system.add_point("breaker/1", scada::Variant{0.0});
  system.start();

  scada::WriteResult result;
  bool done = false;
  system.hmi().write(item, scada::Variant{1.0},
                     [&](const scada::WriteResult& r) {
                       result = r;
                       done = true;
                     });
  system.run_until(system.loop().now() + seconds(2));

  EXPECT_TRUE(done);
  EXPECT_EQ(result.status, scada::WriteStatus::kOk);
  EXPECT_DOUBLE_EQ(system.frontend().item(item)->value.as_double(), 1.0);
  EXPECT_TRUE(system.masters_converged());
  for (std::uint32_t i = 0; i < system.n(); ++i) {
    EXPECT_EQ(system.master(i).pending_write_count(), 0u);
  }
}

TEST(Replicated, BlockedWriteDeniedDeterministically) {
  ReplicatedDeployment system(fast_replicated());
  ItemId item = system.add_point("breaker/1");
  system.configure_masters([item](scada::ScadaMaster& master) {
    auto* block = master.handlers(item).emplace<scada::BlockHandler>();
    block->block("interlock");
  });
  system.start();

  scada::WriteResult result;
  bool done = false;
  system.hmi().write(item, scada::Variant{1.0},
                     [&](const scada::WriteResult& r) {
                       result = r;
                       done = true;
                     });
  system.run_until(system.loop().now() + seconds(2));

  EXPECT_TRUE(done);
  EXPECT_EQ(result.status, scada::WriteStatus::kDenied);
  EXPECT_EQ(system.hmi().counters().events_received, 1u);
  EXPECT_TRUE(system.masters_converged());
}

TEST(Replicated, LogicalTimeoutUnblocksDroppedWriteResult) {
  ReplicatedDeployment system(fast_replicated());
  ItemId item = system.add_point("valve/1", scada::Variant{0.0});
  system.start();

  // The frontend never answers: its reply link to the proxy is cut after
  // the write command reaches it (the paper's attacker dropping
  // WriteResult messages).
  system.net().set_policy(kFrontendEndpoint, kProxyFrontendEndpoint,
                          sim::LinkPolicy::cut_link());

  scada::WriteResult result;
  bool done = false;
  system.hmi().write(item, scada::Variant{1.0},
                     [&](const scada::WriteResult& r) {
                       result = r;
                       done = true;
                     });
  system.run_until(system.loop().now() + seconds(5));

  EXPECT_TRUE(done);
  EXPECT_EQ(result.status, scada::WriteStatus::kTimeout);
  // The masters resolved the op and stay alive (liveness preserved).
  for (std::uint32_t i = 0; i < system.n(); ++i) {
    EXPECT_EQ(system.master(i).pending_write_count(), 0u);
    EXPECT_EQ(system.master(i).counters().write_timeouts, 1u);
  }
  EXPECT_TRUE(system.masters_converged());
  // The HMI also received the WRITE_TIMEOUT event on the AE channel.
  ASSERT_GE(system.hmi().event_log().size(), 1u);
  EXPECT_EQ(system.hmi().event_log()[0].code, "WRITE_TIMEOUT");
}

TEST(Replicated, WritesProceedAfterTimeoutRecovery) {
  ReplicatedDeployment system(fast_replicated());
  ItemId item = system.add_point("valve/1", scada::Variant{0.0});
  system.start();

  system.net().set_policy(kFrontendEndpoint, kProxyFrontendEndpoint,
                          sim::LinkPolicy::cut_link());
  bool first_done = false;
  system.hmi().write(item, scada::Variant{1.0},
                     [&](const scada::WriteResult&) { first_done = true; });
  system.run_until(system.loop().now() + seconds(5));
  ASSERT_TRUE(first_done);

  // Heal the link; the next write completes normally.
  system.net().clear_policy(kFrontendEndpoint, kProxyFrontendEndpoint);
  scada::WriteResult result;
  bool done = false;
  system.hmi().write(item, scada::Variant{2.0},
                     [&](const scada::WriteResult& r) {
                       result = r;
                       done = true;
                     });
  system.run_until(system.loop().now() + seconds(3));
  EXPECT_TRUE(done);
  EXPECT_EQ(result.status, scada::WriteStatus::kOk);
  EXPECT_TRUE(system.masters_converged());
}

TEST(Replicated, ToleratesCrashedReplica) {
  ReplicatedDeployment system(fast_replicated());
  ItemId item = system.add_point("grid/voltage");
  system.start();

  system.crash_replica(3);
  for (int i = 1; i <= 10; ++i) {
    system.frontend().field_update(item, scada::Variant{double(i)});
  }
  system.run_until(system.loop().now() + seconds(2));
  EXPECT_EQ(system.hmi().counters().updates_received, 10u);

  bool done = false;
  system.hmi().write(item, scada::Variant{99.0},
                     [&](const scada::WriteResult&) { done = true; });
  system.run_until(system.loop().now() + seconds(2));
  EXPECT_TRUE(done);
}

TEST(Replicated, ToleratesCrashedLeader) {
  ReplicatedDeployment system(fast_replicated());
  ItemId item = system.add_point("grid/voltage");
  system.start();

  system.crash_replica(0);  // the leader
  system.frontend().field_update(item, scada::Variant{1.0});
  system.run_until(system.loop().now() + seconds(10));
  EXPECT_EQ(system.hmi().counters().updates_received, 1u);
  EXPECT_GE(system.replica(1).regency(), 1u);
}

TEST(Replicated, MasksByzantineReplicaCorruptingPushes) {
  ReplicatedDeployment system(fast_replicated());
  ItemId item = system.add_point("grid/voltage");
  system.start();

  system.set_byzantine(2, bft::ByzantineMode::kCorruptReplies);
  for (int i = 1; i <= 10; ++i) {
    system.frontend().field_update(item, scada::Variant{double(i)});
  }
  system.run_until(system.loop().now() + seconds(2));

  // All updates delivered, with the correct (voted) values.
  EXPECT_EQ(system.hmi().counters().updates_received, 10u);
  EXPECT_DOUBLE_EQ(system.hmi().item(item)->value.as_double(), 10.0);
}

TEST(Replicated, RecoveredReplicaRejoinsWithFullScadaState) {
  ReplicatedDeployment system(fast_replicated());
  ItemId item = system.add_point("grid/voltage");
  system.configure_masters([item](scada::ScadaMaster& master) {
    master.handlers(item).emplace<scada::MonitorHandler>(
        scada::MonitorHandler::Condition::kAbove, 5.0);
  });
  system.start();

  system.crash_replica(3);
  for (int i = 1; i <= 10; ++i) {
    system.frontend().field_update(item, scada::Variant{double(i)});
  }
  system.run_until(system.loop().now() + seconds(2));

  system.recover_replica(3);
  system.run_until(system.loop().now() + seconds(3));

  EXPECT_GE(system.replica(3).stats().state_transfers, 1u);
  EXPECT_EQ(system.master(3).state_digest(), system.master(0).state_digest());
  EXPECT_EQ(system.master(3).storage().chain_digest(),
            system.master(0).storage().chain_digest());
}

TEST(Replicated, MixedWorkloadConverges) {
  ReplicatedDeployment system(fast_replicated());
  ItemId sensor = system.add_point("sensor/a");
  ItemId valve = system.add_point("valve/b", scada::Variant{0.0});
  system.configure_masters([sensor](scada::ScadaMaster& master) {
    master.handlers(sensor).emplace<scada::MonitorHandler>(
        scada::MonitorHandler::Condition::kAbove, 50.0);
  });
  system.start();

  int writes_done = 0;
  for (int round = 0; round < 10; ++round) {
    system.frontend().field_update(sensor, scada::Variant{double(40 + round * 2)});
    if (round % 3 == 0) {
      system.hmi().write(valve, scada::Variant{double(round)},
                         [&](const scada::WriteResult&) { ++writes_done; });
    }
    system.run_until(system.loop().now() + millis(100));
  }
  system.run_until(system.loop().now() + seconds(3));

  EXPECT_EQ(system.hmi().counters().updates_received, 10u);
  EXPECT_EQ(writes_done, 4);
  EXPECT_TRUE(system.masters_converged());
  // Updates 51..58 crossed the threshold: alarms flowed.
  EXPECT_GT(system.hmi().counters().events_received, 0u);
}

TEST(Replicated, DeterministicAcrossRuns) {
  auto run_once = [] {
    ReplicatedDeployment system(fast_replicated());
    ItemId item = system.add_point("grid/voltage");
    system.configure_masters([item](scada::ScadaMaster& master) {
      master.handlers(item).emplace<scada::MonitorHandler>(
          scada::MonitorHandler::Condition::kAbove, 3.0);
    });
    system.start();
    for (int i = 1; i <= 8; ++i) {
      system.frontend().field_update(item, scada::Variant{double(i)});
    }
    system.run_until(system.loop().now() + seconds(2));
    return system.master(0).state_digest();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace ss::core
