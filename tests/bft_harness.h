// Shared test harness for the BFT library tests: a replicated key-value
// application and a simulated cluster fixture.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bft/client.h"
#include "bft/replica.h"
#include "common/config.h"
#include "crypto/keychain.h"
#include "sim/event_loop.h"
#include "sim/network.h"

namespace ss::bft::testing {

/// A small replicated key-value service used as the test application.
class KvApp final : public Executable, public Recoverable {
 public:
  enum class Op : std::uint8_t { kPut = 0, kGet = 1 };

  static Bytes put(const std::string& key, const std::string& value) {
    Writer w;
    w.u8(static_cast<std::uint8_t>(Op::kPut));
    w.str(key);
    w.str(value);
    return std::move(w).take();
  }

  static Bytes get(const std::string& key) {
    Writer w;
    w.u8(static_cast<std::uint8_t>(Op::kGet));
    w.str(key);
    return std::move(w).take();
  }

  Bytes execute_ordered(const ExecuteContext& ctx, ByteView request) override {
    timestamps_.push_back(ctx.timestamp);
    ++applied_;
    Reader r(request);
    Op op = static_cast<Op>(r.u8());
    std::string key = r.str();
    Writer reply;
    if (op == Op::kPut) {
      std::string value = r.str();
      reply.str(data_[key]);
      data_[key] = value;
    } else {
      reply.str(data_[key]);
    }
    return std::move(reply).take();
  }

  Bytes execute_unordered(ClientId, ByteView request) override {
    Reader r(request);
    r.u8();
    std::string key = r.str();
    Writer reply;
    auto it = data_.find(key);
    reply.str(it == data_.end() ? "" : it->second);
    return std::move(reply).take();
  }

  Bytes snapshot() const override {
    Writer w;
    w.varint(applied_);
    w.varint(data_.size());
    for (const auto& [key, value] : data_) {
      w.str(key);
      w.str(value);
    }
    return std::move(w).take();
  }

  void restore(ByteView snapshot) override {
    Reader r(snapshot);
    applied_ = r.varint();
    data_.clear();
    std::uint64_t n = r.varint();
    for (std::uint64_t i = 0; i < n; ++i) {
      std::string key = r.str();
      data_[key] = r.str();
    }
    r.expect_done();
  }

  std::uint64_t applied() const { return applied_; }
  const std::map<std::string, std::string>& data() const { return data_; }
  const std::vector<SimTime>& timestamps() const { return timestamps_; }

 private:
  std::map<std::string, std::string> data_;
  std::uint64_t applied_ = 0;
  std::vector<SimTime> timestamps_;
};

/// A replica group on a simulated network: n = 3f+1 under PBFT (the
/// default), n = 2f+1 under MinBFT.
struct Cluster {
  sim::EventLoop loop;
  sim::Network net;
  crypto::Keychain keys{"bft-test"};
  GroupConfig group;
  std::vector<std::unique_ptr<KvApp>> apps;
  std::vector<std::unique_ptr<Replica>> replicas;

  explicit Cluster(std::uint32_t f = 1, ReplicaOptions options = {},
                   std::uint64_t fault_seed = 0xFA111,
                   Protocol protocol = Protocol::kPbft)
      : net(loop, micros(50), 0, fault_seed),
        group(GroupConfig::for_protocol(protocol, f)) {
    for (ReplicaId id : group.replica_ids()) {
      apps.push_back(std::make_unique<KvApp>());
      replicas.push_back(std::make_unique<Replica>(
          net, group, id, keys, *apps.back(), *apps.back(), options));
    }
  }

  std::unique_ptr<ClientProxy> make_client(std::uint32_t id,
                                           ClientOptions options = {}) {
    return std::make_unique<ClientProxy>(net, group, ClientId{id}, keys,
                                         options);
  }

  void run_for(SimTime duration) { loop.run_until(loop.now() + duration); }

  bool apps_converged() const {
    Bytes reference;
    bool first = true;
    for (std::uint32_t i = 0; i < group.n; ++i) {
      if (replicas[i]->crashed()) continue;
      Bytes snap = apps[i]->snapshot();
      if (first) {
        reference = snap;
        first = false;
      } else if (snap != reference) {
        return false;
      }
    }
    return true;
  }
};

}  // namespace ss::bft::testing
