// Tests for the open-loop load subsystem (src/load).
//
// Covers the three guarantees the subsystem sells: schedules are a pure
// deterministic function of their options (replayable load), the driver is
// coordinated-omission-safe (a stalled server inflates the latency tail, it
// never shrinks the sample count), and per-op outcome accounting
// (ok/failed/timeout/duplicate/late) is exact. Plus one end-to-end run
// against the full replicated deployment on the simulated backend at f=1.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "core/replicated_deployment.h"
#include "load/driver.h"
#include "load/report.h"
#include "load/schedule.h"
#include "scada/hmi.h"
#include "sim/event_loop.h"
#include "sim/network.h"

namespace ss {
namespace {

using load::Arrival;
using load::ArrivalShape;
using load::OpenLoopDriver;
using load::ScheduleOptions;

bool same_schedule(const std::vector<Arrival>& a,
                   const std::vector<Arrival>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].at != b[i].at || a[i].client != b[i].client ||
        a[i].index != b[i].index) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Schedule generation

TEST(Schedule, DeterministicForFixedSeedAcrossAllShapes) {
  for (ArrivalShape shape : {ArrivalShape::kFixedRate, ArrivalShape::kPoisson,
                             ArrivalShape::kBurst}) {
    ScheduleOptions opt;
    opt.shape = shape;
    opt.rate_per_sec = 500;
    opt.duration = seconds(4);
    opt.clients = 16;
    opt.seed = 0xBEEF;
    std::vector<Arrival> first = load::generate_schedule(opt);
    std::vector<Arrival> second = load::generate_schedule(opt);
    ASSERT_FALSE(first.empty()) << load::arrival_shape_name(shape);
    EXPECT_TRUE(same_schedule(first, second))
        << load::arrival_shape_name(shape) << ": same options, same schedule";

    opt.seed = 0xF00D;
    std::vector<Arrival> reseeded = load::generate_schedule(opt);
    EXPECT_FALSE(same_schedule(first, reseeded))
        << load::arrival_shape_name(shape) << ": new seed, new schedule";
  }
}

TEST(Schedule, ArrivalsAreSortedWithDenseIndices) {
  ScheduleOptions opt;
  opt.shape = ArrivalShape::kPoisson;
  opt.rate_per_sec = 2000;
  opt.duration = seconds(2);
  opt.clients = 32;
  std::vector<Arrival> schedule = load::generate_schedule(opt);
  ASSERT_FALSE(schedule.empty());
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_EQ(schedule[i].index, i);
    EXPECT_LT(schedule[i].client, opt.clients);
    EXPECT_GE(schedule[i].at, 0);
    EXPECT_LT(schedule[i].at, opt.duration);
    if (i > 0) {
      EXPECT_GE(schedule[i].at, schedule[i - 1].at);
    }
  }
}

TEST(Schedule, FixedRateIsEvenlySpacedPerClient) {
  ScheduleOptions opt;
  opt.rate_per_sec = 400;
  opt.duration = seconds(2);
  opt.clients = 4;  // 100/s each -> 10ms period
  std::vector<Arrival> schedule = load::generate_schedule(opt);

  std::map<std::uint32_t, std::vector<SimTime>> by_client;
  for (const Arrival& a : schedule) by_client[a.client].push_back(a.at);
  ASSERT_EQ(by_client.size(), 4u);
  for (const auto& [client, times] : by_client) {
    for (std::size_t i = 1; i < times.size(); ++i) {
      EXPECT_EQ(times[i] - times[i - 1], millis(10))
          << "client " << client << " gap " << i;
    }
  }
  // Aggregate count: rate * duration, +/- one arrival per client (phase).
  EXPECT_NEAR(static_cast<double>(schedule.size()), 800.0, 4.0);
}

TEST(Schedule, PoissonHitsTheRequestedMeanRate) {
  ScheduleOptions opt;
  opt.shape = ArrivalShape::kPoisson;
  opt.rate_per_sec = 1000;
  opt.duration = seconds(10);
  opt.clients = 50;
  std::vector<Arrival> schedule = load::generate_schedule(opt);
  // 10000 expected arrivals; 10% slack is > 8 standard deviations.
  EXPECT_NEAR(static_cast<double>(schedule.size()), 10000.0, 1000.0);
}

TEST(Schedule, BurstWindowsAreDenserThanTheBaseStream) {
  ScheduleOptions opt;
  opt.shape = ArrivalShape::kBurst;
  opt.rate_per_sec = 500;
  opt.duration = seconds(8);
  opt.clients = 10;
  opt.burst_multiplier = 10.0;
  opt.burst_period = seconds(2);
  opt.burst_length = millis(200);
  std::vector<Arrival> schedule = load::generate_schedule(opt);
  ASSERT_FALSE(schedule.empty());

  std::uint64_t in_burst = 0;
  std::uint64_t outside = 0;
  for (const Arrival& a : schedule) {
    (a.at % opt.burst_period < opt.burst_length ? in_burst : outside)++;
  }
  // Windows cover 10% of the time at 10x the rate: the per-second density
  // inside must be several times the density outside.
  double in_rate = static_cast<double>(in_burst) / 0.1;
  double out_rate = static_cast<double>(outside) / 0.9;
  EXPECT_GT(in_rate, 4.0 * out_rate);
}

// ---------------------------------------------------------------------------
// Driver: coordinated omission and outcome accounting

struct SimHarness {
  sim::EventLoop loop;
  sim::Network net{loop, 0, 0};
};

TEST(Driver, StalledServerInflatesTailLatencyNotSampleCount) {
  // The open-loop property itself: the server freezes for one second in the
  // middle of the run. A closed-loop driver would simply issue fewer ops
  // (the stall would vanish from the data); this driver keeps issuing on
  // schedule and charges every op the full queueing delay from its
  // *scheduled* send time.
  SimHarness h;
  ScheduleOptions sopt;
  sopt.rate_per_sec = 1000;
  sopt.duration = seconds(4);
  sopt.clients = 8;
  std::vector<Arrival> schedule = load::generate_schedule(sopt);
  const std::size_t scheduled = schedule.size();

  constexpr SimTime kService = micros(500);
  constexpr SimTime kStallStart = seconds(1);
  constexpr SimTime kStallEnd = seconds(2);
  load::DriverOptions dopt;
  dopt.op_timeout = seconds(10);  // nothing may time out here
  OpenLoopDriver driver(
      h.net, std::move(schedule),
      [&](const Arrival&, OpenLoopDriver::CompletionFn done) {
        SimTime now = h.net.now();
        SimTime ready = now + kService;
        // Frozen server: everything that would finish inside the stall
        // window is held until the window ends.
        if (ready >= kStallStart && ready < kStallEnd) ready = kStallEnd;
        h.net.schedule(ready - now, [done] { done(true); });
      },
      dopt);
  driver.start();
  h.loop.run_until(seconds(20));

  ASSERT_TRUE(driver.finished());
  // No omission: every scheduled op produced exactly one latency sample.
  EXPECT_EQ(driver.stats().ok, scheduled);
  EXPECT_EQ(driver.latency().count(), scheduled);
  EXPECT_EQ(driver.stats().timeouts, 0u);

  // ~25% of the arrivals landed in the stall and owe queueing delay up to a
  // full second: the tail must show it while the median stays at service
  // time. The histogram's bounded relative error is ~6%; assert with slack.
  EXPECT_LT(driver.latency().percentile(50), millis(2));
  EXPECT_GT(driver.latency().percentile(99), millis(500));
  EXPECT_GT(driver.latency().max(), millis(900));
}

TEST(Driver, AccountsTimeoutsDuplicatesAndLateReplies) {
  SimHarness h;
  ScheduleOptions sopt;
  sopt.rate_per_sec = 300;
  sopt.duration = seconds(1);
  std::vector<Arrival> schedule = load::generate_schedule(sopt);
  const std::size_t scheduled = schedule.size();

  // index % 3 == 0: never answered            -> timeout
  // index % 3 == 1: answered twice            -> ok + 1 duplicate
  // index % 3 == 2: answered after the window -> timeout + 1 late reply
  constexpr SimTime kTimeout = millis(100);
  std::size_t never = 0;
  std::size_t twice = 0;
  std::size_t late = 0;
  load::DriverOptions dopt;
  dopt.op_timeout = kTimeout;
  OpenLoopDriver driver(
      h.net, std::move(schedule),
      [&](const Arrival& a, OpenLoopDriver::CompletionFn done) {
        switch (a.index % 3) {
          case 0:
            ++never;
            break;
          case 1:
            ++twice;
            h.net.schedule(millis(1), [done] { done(true); });
            h.net.schedule(millis(2), [done] { done(true); });
            break;
          default:
            ++late;
            h.net.schedule(kTimeout + millis(50), [done] { done(true); });
            break;
        }
      },
      dopt);
  driver.start();
  h.loop.run_until(seconds(10));

  ASSERT_TRUE(driver.finished());
  const load::DriverStats& s = driver.stats();
  EXPECT_EQ(s.scheduled, scheduled);
  EXPECT_EQ(s.issued, scheduled);
  EXPECT_EQ(s.ok, twice);
  EXPECT_EQ(s.duplicates, twice);
  EXPECT_EQ(s.timeouts, never + late);
  EXPECT_EQ(s.late_replies, late);
  EXPECT_EQ(s.failed, 0u);
  // Only successes contribute latency samples.
  EXPECT_EQ(driver.latency().count(), twice);
}

TEST(Driver, FailedCompletionsAreNotSuccesses) {
  SimHarness h;
  ScheduleOptions sopt;
  sopt.rate_per_sec = 100;
  sopt.duration = seconds(1);
  std::vector<Arrival> schedule = load::generate_schedule(sopt);
  const std::size_t scheduled = schedule.size();

  OpenLoopDriver driver(h.net, std::move(schedule),
                        [&](const Arrival& a, OpenLoopDriver::CompletionFn done) {
                          bool ok = (a.index % 2) == 0;
                          h.net.schedule(millis(1), [done, ok] { done(ok); });
                        });
  driver.start();
  h.loop.run_until(seconds(10));

  ASSERT_TRUE(driver.finished());
  EXPECT_EQ(driver.stats().ok + driver.stats().failed, scheduled);
  EXPECT_GT(driver.stats().failed, 0u);
  EXPECT_EQ(driver.latency().count(), driver.stats().ok);
}

TEST(Report, RecordCarriesScheduleAndOutcome) {
  SimHarness h;
  ScheduleOptions sopt;
  sopt.rate_per_sec = 200;
  sopt.duration = seconds(1);
  OpenLoopDriver driver(h.net, load::generate_schedule(sopt),
                        [&](const Arrival&, OpenLoopDriver::CompletionFn done) {
                          h.net.schedule(millis(3), [done] { done(true); });
                        });
  driver.start();
  h.loop.run_until(seconds(10));
  ASSERT_TRUE(driver.finished());

  load::RunRecord record =
      load::RunRecord::from_driver("unit", "noop", sopt, driver);
  EXPECT_EQ(record.stats.ok, driver.stats().ok);
  EXPECT_GT(record.goodput_per_sec, 0.0);
  EXPECT_EQ(record.latency.samples, driver.stats().ok);
  EXPECT_GT(record.latency.p50_us, 0.0);
  EXPECT_EQ(record.timeout_rate(), 0.0);
}

// ---------------------------------------------------------------------------
// End-to-end on the simulated backend, f = 1

TEST(LoadEndToEnd, OpenLoopWritesAgainstReplicatedDeploymentF1) {
  core::ReplicatedOptions options;
  options.storage_retention = 256;
  options.checkpoint_interval = 4096;
  options.client_reply_timeout = seconds(60);
  options.request_timeout = seconds(60);
  core::ReplicatedDeployment system(options);
  ItemId setpoint = system.add_point("plant/setpoint", scada::Variant{20.0});
  system.start();

  ScheduleOptions sopt;
  sopt.rate_per_sec = 200;
  sopt.duration = seconds(2);
  sopt.clients = 20;
  load::DriverOptions dopt;
  dopt.op_timeout = seconds(5);
  OpenLoopDriver driver(
      system.net(), load::generate_schedule(sopt),
      [&](const Arrival& a, OpenLoopDriver::CompletionFn done) {
        system.hmi().write(setpoint,
                           scada::Variant{static_cast<double>(a.index)},
                           [done](const scada::WriteResult& r) {
                             done(r.status == scada::WriteStatus::kOk);
                           });
      },
      dopt);
  driver.start();

  SimTime deadline = system.loop().now() + seconds(30);
  while (!driver.finished() && system.loop().now() < deadline) {
    system.run_until(system.loop().now() + millis(100));
  }
  ASSERT_TRUE(driver.finished());
  EXPECT_EQ(driver.stats().ok, driver.stats().scheduled);
  EXPECT_EQ(driver.stats().timeouts, 0u);
  EXPECT_EQ(driver.stats().failed, 0u);
  EXPECT_GT(driver.goodput_per_sec(), 100.0);
  EXPECT_GT(driver.latency().percentile(50), 0);
}

}  // namespace
}  // namespace ss
