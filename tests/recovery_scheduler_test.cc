// Tests for the proactive-recovery scheduler: rolling durable reincarnation
// under live traffic (reboot from checkpoint + WAL replay + key-epoch bump),
// fault-budget safety, the stop()-during-downtime regression, and the sim
// substrate's queueing sanity (delivered throughput saturates at modeled
// capacity).
#include <gtest/gtest.h>

#include "core/recovery_scheduler.h"
#include "core/replicated_deployment.h"

namespace ss::core {
namespace {

ReplicatedOptions fast_options() {
  ReplicatedOptions options;
  options.costs = sim::CostModel::zero();
  options.costs.hop_latency = micros(50);
  return options;
}

ReplicatedOptions durable_options() {
  ReplicatedOptions options = fast_options();
  options.durable = true;
  options.checkpoint_interval = 8;
  return options;
}

TEST(RecoveryScheduler, RollingReincarnationKeepsServiceLive) {
  ReplicatedDeployment system(durable_options());
  ItemId item = system.add_point("sensor");
  system.start();

  RecoverySchedulerOptions options;
  options.period = seconds(4);
  options.downtime = seconds(1);  // long enough to miss decisions
  RecoveryScheduler scheduler(system, options);
  scheduler.start();

  // ~24 s of traffic: the scheduler reincarnates ~6 replicas (1.5 cycles).
  int sent = 0;
  for (int i = 0; i < 120; ++i) {
    system.frontend().field_update(item, scada::Variant{double(i)});
    ++sent;
    system.run_until(system.loop().now() + millis(200));
  }
  system.run_until(system.loop().now() + seconds(5));

  EXPECT_GE(scheduler.stats().recoveries, 5u);
  // Every update made it through despite the rolling restarts.
  EXPECT_EQ(system.hmi().counters().updates_received,
            static_cast<std::uint64_t>(sent));
  // Each reincarnation was a durable process restart: every replica the
  // scheduler cycled through carries a fresh (bumped) key epoch and went
  // through at least one state transfer.
  std::uint64_t transfers = 0;
  std::uint32_t epoch_bumped = 0;
  for (std::uint32_t i = 0; i < system.n(); ++i) {
    transfers += system.replica(i).stats().state_transfers;
    if (system.replica(i).key_epoch() > 0) ++epoch_bumped;
    EXPECT_FALSE(system.replica(i).crashed());
  }
  EXPECT_GE(transfers, 4u);
  EXPECT_GE(epoch_bumped, 4u);
  // Quiesce, then verify convergence.
  system.net().set_policy(kFrontendEndpoint, kProxyFrontendEndpoint,
                          sim::LinkPolicy::cut_link());
  system.run_until(system.loop().now() + seconds(3));
  EXPECT_TRUE(system.masters_converged());
}

// Under MinBFT the group is 2f+1 = 3 replicas; the scheduler's round-robin
// must cycle over exactly those 3 (it asks the engine's quorum_config() for
// the group size instead of assuming 3f+1). One full cycle of rolling
// reincarnation, every update still delivered.
TEST(RecoveryScheduler, MinBftGroupReincarnatesAllReplicas) {
  ReplicatedOptions deployment_options = durable_options();
  deployment_options.group = GroupConfig::for_protocol(Protocol::kMinBft, 1);
  ReplicatedDeployment system(deployment_options);
  ASSERT_EQ(system.n(), 3u);
  ItemId item = system.add_point("sensor");
  system.start();

  RecoverySchedulerOptions options;
  options.period = seconds(4);
  options.downtime = seconds(1);
  RecoveryScheduler scheduler(system, options);
  scheduler.start();

  int sent = 0;
  for (int i = 0; i < 90; ++i) {
    system.frontend().field_update(item, scada::Variant{double(i)});
    ++sent;
    system.run_until(system.loop().now() + millis(200));
  }
  system.run_until(system.loop().now() + seconds(5));

  // ~18 s of traffic at a 4 s period: at least one full 3-replica cycle.
  EXPECT_GE(scheduler.stats().recoveries, 3u);
  EXPECT_EQ(system.hmi().counters().updates_received,
            static_cast<std::uint64_t>(sent));
  std::uint32_t epoch_bumped = 0;
  for (std::uint32_t i = 0; i < system.n(); ++i) {
    if (system.replica(i).key_epoch() > 0) ++epoch_bumped;
    EXPECT_FALSE(system.replica(i).crashed());
  }
  EXPECT_EQ(epoch_bumped, 3u);
  system.net().set_policy(kFrontendEndpoint, kProxyFrontendEndpoint,
                          sim::LinkPolicy::cut_link());
  system.run_until(system.loop().now() + seconds(3));
  EXPECT_TRUE(system.masters_converged());
}

TEST(RecoveryScheduler, NeverExceedsFaultBudget) {
  ReplicatedDeployment system(fast_options());
  ItemId item = system.add_point("sensor");
  system.start();

  // Replica 2 is already down for external reasons.
  system.crash_replica(2);

  RecoverySchedulerOptions options;
  options.period = seconds(2);
  options.downtime = seconds(1);
  RecoveryScheduler scheduler(system, options);
  scheduler.start();

  system.run_until(system.loop().now() + seconds(10));
  // The scheduler refused to take a second replica down.
  EXPECT_EQ(scheduler.stats().recoveries, 0u);
  EXPECT_GE(scheduler.stats().skipped_unhealthy, 4u);

  // Service continued on the remaining 3 replicas throughout.
  system.frontend().field_update(item, scada::Variant{1.0});
  system.run_until(system.loop().now() + seconds(1));
  EXPECT_EQ(system.hmi().counters().updates_received, 1u);

  // Once the external fault heals, reincarnation resumes.
  system.recover_replica(2);
  system.run_until(system.loop().now() + seconds(6));
  EXPECT_GE(scheduler.stats().recoveries, 1u);
}

// Regression: stop() used to leave a victim stranded when it landed inside
// the downtime window — the pending recover callback bailed on stopped_
// after crash() had already run, and nothing else ever brought the replica
// back. stop() must recover the in-flight victim immediately.
TEST(RecoveryScheduler, StopDuringDowntimeBringsVictimBack) {
  ReplicatedDeployment system(durable_options());
  ItemId item = system.add_point("sensor");
  system.start();

  RecoverySchedulerOptions options;
  options.period = seconds(1);
  options.downtime = seconds(30);  // stop() will land inside this window
  RecoveryScheduler scheduler(system, options);
  scheduler.start();

  // Run past the first tick: one replica is now down for "30 s".
  system.run_until(system.loop().now() + millis(1500));
  std::uint32_t crashed = 0;
  for (std::uint32_t i = 0; i < system.n(); ++i) {
    if (system.replica(i).crashed()) ++crashed;
  }
  ASSERT_EQ(crashed, 1u);

  scheduler.stop();
  for (std::uint32_t i = 0; i < system.n(); ++i) {
    EXPECT_FALSE(system.replica(i).crashed());
  }

  // The original downtime callback still fires later; it must stay a no-op
  // and the group must serve traffic with all four replicas.
  system.run_until(system.loop().now() + seconds(31));
  for (std::uint32_t i = 0; i < system.n(); ++i) {
    EXPECT_FALSE(system.replica(i).crashed());
  }
  system.frontend().field_update(item, scada::Variant{42.0});
  system.run_until(system.loop().now() + seconds(1));
  EXPECT_EQ(system.hmi().counters().updates_received, 1u);
}

// Sim-substrate sanity: when the offered load exceeds the modeled capacity
// of the single-lane Master, delivered throughput saturates near capacity
// instead of growing or collapsing — the queueing behaviour every Figure 8
// number rests on.
TEST(CostModelSanity, DeliveredSaturatesAtModeledCapacity) {
  ReplicatedOptions options;
  options.costs = sim::CostModel::zero();
  options.costs.hop_latency = micros(50);
  options.costs.da_process = millis(1);  // capacity: exactly 1000 ops/s
  options.client_reply_timeout = seconds(60);
  options.request_timeout = seconds(60);
  ReplicatedDeployment system(options);
  ItemId item = system.add_point("sensor");
  system.start();

  // Offer 2000 updates/s for 5 s.
  double value = 0;
  std::function<void()> tick = [&] {
    system.frontend().field_update(item, scada::Variant{value});
    value += 1.0;
    if (system.loop().now() < seconds(6)) {
      system.loop().schedule(micros(500), tick);
    }
  };
  system.loop().schedule(0, tick);
  system.run_until(seconds(3));
  std::uint64_t at3 = system.hmi().counters().updates_received;
  system.run_until(seconds(5));
  std::uint64_t at5 = system.hmi().counters().updates_received;

  double delivered_per_sec = static_cast<double>(at5 - at3) / 2.0;
  EXPECT_GT(delivered_per_sec, 850.0);
  EXPECT_LT(delivered_per_sec, 1100.0);
}

}  // namespace
}  // namespace ss::core
