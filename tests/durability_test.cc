// Crash-restart durability of a replica: recovery from the on-disk
// checkpoint + WAL suffix, torn-tail repair under real corruption, state
// transfer for decisions missed while down, and rejoining an in-progress
// view change. Runs against the simulated cluster with a MemEnv "disk"
// whose crash model drops unsynced bytes.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "bft/messages.h"
#include "storage/env.h"
#include "storage/replica_storage.h"
#include "storage/wal.h"
#include "tests/bft_harness.h"

namespace ss::bft {
namespace {

using testing::Cluster;
using testing::KvApp;

/// Cluster where every replica logs to a shared in-memory "disk".
struct DurableCluster : Cluster {
  storage::MemEnv env;
  std::vector<std::unique_ptr<storage::ReplicaStorage>> stores;
  std::vector<Bytes> genesis;
  std::uint32_t reopen_count = 0;

  explicit DurableCluster(std::uint32_t f = 1, ReplicaOptions options = {})
      : Cluster(f, options) {
    for (std::uint32_t i = 0; i < group.n; ++i) {
      stores.push_back(std::make_unique<storage::ReplicaStorage>(
          env, dir(i), "test-storage/replica-" + std::to_string(i)));
      replicas[i]->set_storage(stores[i].get());
      // The image a fresh process would boot from, captured pre-traffic.
      genesis.push_back(replicas[i]->full_snapshot());
    }
  }

  std::string dir(std::uint32_t i) const {
    return "replica-" + std::to_string(i);
  }

  /// kill -9: all unsynced bytes on the whole "disk" are lost. (Every WAL
  /// append syncs before the decision executes, so for the other replicas
  /// this is a no-op — which is exactly the property under test.)
  void kill(std::uint32_t i) {
    env.drop_unsynced();
    replicas[i]->crash();
  }

  /// Process restart: reopen the state dir from disk (re-running the WAL
  /// scan/repair, like a fresh process would) and reboot the replica in
  /// place from its genesis image.
  void restart(std::uint32_t i) {
    stores[i].reset();  // release the metrics source prefix first
    stores[i] = std::make_unique<storage::ReplicaStorage>(
        env, dir(i),
        "test-storage/replica-" + std::to_string(i) + "-reopen-" +
            std::to_string(++reopen_count));
    replicas[i]->set_storage(stores[i].get());
    replicas[i]->reboot(genesis[i]);
  }

  /// One ordered put, driven to completion. Sequential rounds give exactly
  /// one decision per put, so cids in these tests are predictable.
  void put_round(ClientProxy& client, const std::string& key,
                 const std::string& value) {
    bool done = false;
    client.invoke_ordered(KvApp::put(key, value), [&](Bytes) { done = true; });
    run_for(millis(300));
    ASSERT_TRUE(done) << "put " << key << " did not complete";
  }
};

TEST(Durability, RestartRecoversFromDiskAlone) {
  ReplicaOptions options;
  options.checkpoint_interval = 4;
  DurableCluster cluster(1, options);
  auto client = cluster.make_client(1);

  for (int i = 0; i < 6; ++i) {
    cluster.put_round(*client, "k" + std::to_string(i), "v" + std::to_string(i));
  }
  const std::uint64_t frontier = cluster.replicas[2]->last_decided().value;
  const std::uint64_t applied = cluster.apps[2]->applied();
  const auto data = cluster.apps[2]->data();
  ASSERT_GE(frontier, 6u);

  cluster.kill(2);
  ASSERT_TRUE(cluster.replicas[2]->crashed());
  cluster.restart(2);

  // reboot() is synchronous, so everything below is proven to come from
  // disk alone — no message from a peer has been delivered yet.
  EXPECT_EQ(cluster.replicas[2]->last_decided().value, frontier);
  EXPECT_EQ(cluster.apps[2]->applied(), applied);
  EXPECT_EQ(cluster.apps[2]->data(), data);
  EXPECT_EQ(cluster.stores[2]->stats().recoveries, 1u);
  // Checkpoint at cid 4 + WAL suffix replayed through the execute path.
  EXPECT_EQ(cluster.replicas[2]->last_checkpoint_cid().value, 4u);
  EXPECT_EQ(cluster.stores[2]->stats().records_replayed, frontier - 4);

  // The rejoined replica keeps serving: another round converges with no
  // state transfer (it was already at the frontier).
  cluster.put_round(*client, "after", "restart");
  EXPECT_TRUE(cluster.apps_converged());
  EXPECT_EQ(cluster.replicas[2]->stats().state_transfers, 0u);
}

// Regression: in socket mode a SIGKILL can land between the WAL append for
// a boundary decision and the checkpoint rename it triggers, leaving a WAL
// that spans a checkpoint boundary. Replay then writes a checkpoint MID
// iteration, and that checkpoint truncates the WAL's own record vector —
// which used to invalidate the replay loop's iterators (UB). The sim cannot
// be killed inside that window (append/execute/checkpoint run in one
// event), so the test plants the boundary record directly.
TEST(Durability, ReplayAcrossCheckpointBoundarySurvivesMidReplayTruncation) {
  ReplicaOptions options;
  options.checkpoint_interval = 4;
  DurableCluster cluster(1, options);
  auto client = cluster.make_client(1);

  // 7 rounds: checkpoint at 4, WAL holding 5..7.
  for (int i = 0; i < 7; ++i) {
    cluster.put_round(*client, "k" + std::to_string(i), "v");
  }
  ASSERT_EQ(cluster.replicas[2]->last_decided().value, 7u);
  ASSERT_EQ(cluster.replicas[2]->last_checkpoint_cid().value, 4u);

  cluster.kill(2);

  // Decisions 8..10 reached the WAL (appended + synced) but the process
  // died before the checkpoint at 8 was renamed into place. Records PAST
  // the boundary matter: the mid-replay truncation destroys exactly those
  // trailing vector slots, so an iterator left dangling by it would read
  // freed payloads. Empty batches keep the records decodable without
  // forging client authenticators (replay does not re-validate what
  // consensus already ordered).
  {
    storage::Wal wal(cluster.env, cluster.dir(2));
    for (std::uint64_t seq = 8; seq <= 10; ++seq) {
      wal.append(seq, Batch{}.encode());
    }
  }

  cluster.restart(2);

  // Replay covered 5..10, crossing the interval-4 boundary at 8: the
  // mid-replay checkpoint truncated the WAL without derailing the loop,
  // and disk holds the boundary checkpoint plus the replayed suffix.
  EXPECT_EQ(cluster.replicas[2]->last_decided().value, 10u);
  EXPECT_EQ(cluster.replicas[2]->last_checkpoint_cid().value, 8u);
  EXPECT_EQ(cluster.stores[2]->stats().records_replayed, 6u);
  ASSERT_EQ(cluster.stores[2]->wal_records().size(), 2u);
  EXPECT_EQ(cluster.stores[2]->wal_records()[0].seq, 9u);
  ASSERT_TRUE(cluster.stores[2]->load_checkpoint().has_value());
  EXPECT_EQ(cluster.stores[2]->load_checkpoint()->cid.value, 8u);
  // No traffic afterwards: the planted cid-8 batch is not what the live
  // replicas will decide at cid 8, so this replica must stay retired.
}

TEST(Durability, MissedDecisionsAreFilledByStateTransfer) {
  ReplicaOptions options;
  options.checkpoint_interval = 4;
  DurableCluster cluster(1, options);
  auto client = cluster.make_client(1);

  for (int i = 0; i < 4; ++i) {
    cluster.put_round(*client, "pre" + std::to_string(i), "x");
  }
  cluster.kill(2);
  for (int i = 0; i < 6; ++i) {
    cluster.put_round(*client, "miss" + std::to_string(i), "y");
  }
  const std::uint64_t live_frontier = cluster.replicas[0]->last_decided().value;
  ASSERT_GE(live_frontier, 10u);

  cluster.restart(2);
  // Disk gets it back to the kill point (checkpoint at 4, empty WAL)...
  EXPECT_EQ(cluster.replicas[2]->last_decided().value, 4u);
  // ...and the bounded state transfer kicked off by reboot() fills the gap.
  cluster.run_for(seconds(1));
  EXPECT_EQ(cluster.replicas[2]->last_decided().value, live_frontier);
  EXPECT_TRUE(cluster.apps_converged());
  EXPECT_EQ(cluster.replicas[2]->stats().state_transfers, 1u);
  // Completing the transfer persisted a durable checkpoint at the new
  // frontier, so the WAL has no gap if the process dies again right away.
  ASSERT_TRUE(cluster.stores[2]->load_checkpoint().has_value());
  EXPECT_EQ(cluster.stores[2]->load_checkpoint()->cid.value, live_frontier);

  cluster.kill(2);
  cluster.restart(2);
  EXPECT_EQ(cluster.replicas[2]->last_decided().value, live_frontier);
  EXPECT_TRUE(cluster.apps_converged());
}

// Satellite: corrupt the WAL tail in three ways (bit flip, torn truncate,
// trailing garbage) and require recovery to the last intact record plus a
// successful write round afterwards.
TEST(Durability, TornWalTailRecoversToLastIntactRecord) {
  enum class Corruption { kFlipByte, kTruncate, kExtend };
  for (Corruption mode :
       {Corruption::kFlipByte, Corruption::kTruncate, Corruption::kExtend}) {
    SCOPED_TRACE(static_cast<int>(mode));
    DurableCluster cluster;  // default checkpoint interval: no checkpoint yet
    auto client = cluster.make_client(1);
    for (int i = 0; i < 5; ++i) {
      cluster.put_round(*client, "k" + std::to_string(i), "v");
    }
    ASSERT_EQ(cluster.replicas[2]->last_decided().value, 5u);

    cluster.kill(2);
    Bytes* wal = cluster.env.raw(cluster.dir(2) + "/wal");
    ASSERT_NE(wal, nullptr);
    switch (mode) {
      case Corruption::kFlipByte:
        (*wal)[wal->size() - 3] ^= 0xff;
        break;
      case Corruption::kTruncate:
        wal->resize(wal->size() - 10);
        break;
      case Corruption::kExtend:
        wal->insert(wal->end(), 9, std::uint8_t{0x5A});
        break;
    }

    cluster.restart(2);
    // Flip/truncate lose the final record; trailing garbage loses nothing.
    const std::uint64_t recovered = cluster.replicas[2]->last_decided().value;
    if (mode == Corruption::kExtend) {
      EXPECT_EQ(recovered, 5u);
    } else {
      EXPECT_EQ(recovered, 4u);
    }
    EXPECT_EQ(cluster.apps[2]->applied(), recovered);
    EXPECT_GT(cluster.stores[2]->wal_stats().torn_bytes_dropped, 0u);

    // The log is repaired in place: the next round both completes and
    // lands on the rejoined replica (catching up the lost record first).
    cluster.run_for(millis(500));
    cluster.put_round(*client, "post", "corruption");
    EXPECT_TRUE(cluster.apps_converged());
    EXPECT_EQ(cluster.replicas[2]->last_decided().value,
              cluster.replicas[0]->last_decided().value);
  }
}

// Satellite: a replica restarting into an in-progress view change. With the
// leader crashed and one replica down, the remaining two replicas' STOPs
// cannot reach the 2f+1 sync quorum — the system is stuck until the killed
// replica comes back from disk and joins the view change.
TEST(Durability, RestartDuringViewChangeAdoptsNewRegency) {
  ReplicaOptions options;
  options.checkpoint_interval = 4;
  DurableCluster cluster(1, options);
  auto client = cluster.make_client(1);

  for (int i = 0; i < 5; ++i) {
    cluster.put_round(*client, "k" + std::to_string(i), "v");
  }

  cluster.kill(2);
  cluster.replicas[0]->crash();  // the regency-0 leader

  bool done = false;
  client->invoke_ordered(KvApp::put("vc", "pending"),
                         [&](Bytes) { done = true; });
  cluster.run_for(seconds(1));
  // Two live replicas suspect the leader but cannot install regency 1.
  EXPECT_FALSE(done);
  EXPECT_EQ(cluster.replicas[1]->regency(), 0u);
  EXPECT_EQ(cluster.replicas[3]->regency(), 0u);

  cluster.restart(2);
  EXPECT_EQ(cluster.replicas[2]->last_decided().value, 5u);
  cluster.run_for(seconds(3));

  // The rejoined replica completed the quorum: the view change installed a
  // new regency everywhere (replica 2 adopting it via the f+1 peer-evidence
  // path if it missed the STOPs), and the stranded write went through.
  EXPECT_TRUE(done);
  const std::uint64_t regency = cluster.replicas[1]->regency();
  EXPECT_GE(regency, 1u);
  EXPECT_EQ(cluster.replicas[2]->regency(), regency);
  EXPECT_EQ(cluster.replicas[3]->regency(), regency);
  EXPECT_TRUE(cluster.apps_converged());

  // Forced checkpoints at the converged frontier must carry one digest.
  for (std::uint32_t i = 1; i <= 3; ++i) cluster.replicas[i]->checkpoint_now();
  ASSERT_TRUE(cluster.replicas[1]->last_checkpoint_digest().has_value());
  for (std::uint32_t i = 2; i <= 3; ++i) {
    EXPECT_EQ(cluster.replicas[i]->last_checkpoint_cid().value,
              cluster.replicas[1]->last_checkpoint_cid().value);
    EXPECT_EQ(*cluster.replicas[i]->last_checkpoint_digest(),
              *cluster.replicas[1]->last_checkpoint_digest());
  }
}

}  // namespace
}  // namespace ss::bft
