// The chaos engine's own test suite: swarm sweeps over every scenario
// family (zero tolerated violations), the sabotage canary (a deliberately
// broken configuration must be caught, minimized, and replayable), and
// determinism of the whole pipeline.
#include <gtest/gtest.h>

#include <cstdlib>

#include "chaos/invariant_checker.h"
#include "chaos/swarm.h"
#include "obs/trace.h"

namespace ss::chaos {
namespace {

// --- flight recorder integration ------------------------------------------

TEST(FlightRecorderDump, FirstViolationDumpsRecentHistoryToStderr) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::instance();
  recorder.clear();
  recorder.note(123, "breadcrumb before the failure");

  core::ReplicatedDeployment deployment;
  InvariantChecker checker(deployment);

  testing::internal::CaptureStderr();
  checker.add_violation("test-invariant", "synthetic violation for the dump");
  // Only the FIRST violation dumps — a cascade must not flood stderr.
  checker.add_violation("test-invariant", "second violation, no dump");
  std::string err = testing::internal::GetCapturedStderr();

  EXPECT_NE(err.find("invariant violation [test-invariant]"),
            std::string::npos)
      << err;
  EXPECT_NE(err.find("flight recorder"), std::string::npos) << err;
  EXPECT_NE(err.find("breadcrumb before the failure"), std::string::npos)
      << err;
  // One dump, not two.
  EXPECT_EQ(err.find("--- end flight recorder ---"),
            err.rfind("--- end flight recorder ---"));
  EXPECT_EQ(checker.violations().size(), 2u);
  recorder.clear();
}

/// Runs `count` seeds of one family and expects a clean sweep; on failure
/// prints the one-line repro command for each failing seed.
void expect_clean_sweep(ScenarioFamily family, std::uint32_t f,
                        std::uint64_t first_seed, std::uint64_t count,
                        Protocol protocol = Protocol::kPbft) {
  ChaosOptions base;
  base.family = family;
  base.protocol = protocol;
  base.f = f;
  SweepReport sweep = run_sweep(base, first_seed, count);
  EXPECT_EQ(sweep.runs, count);
  EXPECT_GT(sweep.decisions, 0u);
  EXPECT_GT(sweep.writes_completed, 0u);
  if (!sweep.ok()) {
    for (const auto& [seed, report] : sweep.failing) {
      ChaosOptions failing = base;
      failing.seed = seed;
      ADD_FAILURE() << family_name(family) << " f=" << f << " seed=" << seed
                    << ": " << report.summary() << "\n  first violation: ["
                    << report.violations.front().invariant << "] "
                    << report.violations.front().detail << "\n  repro: "
                    << repro_command(failing);
    }
  }
}

// --- the 500+ seed swarm: 6 families x 88 seeds at f=1, x 16 at f=2 ------

TEST(ChaosSweep, ByzantineReplicasF1) {
  expect_clean_sweep(ScenarioFamily::kByzantineReplicas, 1, 1, 88);
}

TEST(ChaosSweep, PartitionsF1) {
  expect_clean_sweep(ScenarioFamily::kPartitions, 1, 1, 88);
}

TEST(ChaosSweep, LossyLinksF1) {
  expect_clean_sweep(ScenarioFamily::kLossyLinks, 1, 1, 88);
}

TEST(ChaosSweep, RtuFaultsF1) {
  expect_clean_sweep(ScenarioFamily::kRtuFaults, 1, 1, 88);
}

TEST(ChaosSweep, CrashRestartF1) {
  expect_clean_sweep(ScenarioFamily::kCrashRestart, 1, 1, 88);
}

TEST(ChaosSweep, MixedF1) {
  expect_clean_sweep(ScenarioFamily::kMixed, 1, 1, 88);
}

// Gray failures: slow-but-correct replicas (extra per-message processing
// cost, fsync stalls through the storage Env seam, skewed local timers).
// Safety must hold outright; liveness must survive the thinner margins.
TEST(ChaosSweep, GrayFailureF1) {
  expect_clean_sweep(ScenarioFamily::kGrayFailure, 1, 1, 88);
}

TEST(ChaosSweep, MinBftGrayFailureF1) {
  expect_clean_sweep(ScenarioFamily::kGrayFailure, 1, 1, 44,
                     Protocol::kMinBft);
}

// Compromise -> reincarnate -> stolen-key replay: on top of the universal
// invariants, every run checks that all forged old-epoch messages were
// rejected and the victim came back clean on a fresh key epoch.
TEST(ChaosSweep, CompromiseRecoverF1) {
  expect_clean_sweep(ScenarioFamily::kCompromiseRecover, 1, 1, 88);
}

// Telemetry floods against the frontend inflight cap: updates shed at the
// edge, operator writes keep completing, and the group stays convergent.
TEST(ChaosSweep, RequestFloodF1) {
  expect_clean_sweep(ScenarioFamily::kRequestFlood, 1, 1, 88);
}

TEST(ChaosSweep, AllFamiliesF2) {
  for (ScenarioFamily family : kAllFamilies) {
    expect_clean_sweep(family, 2, 1, 16);
  }
}

// --- the MinBFT equivalence sweep: crash-restart + equivocate at f=1 ------
//
// The same scenario generators against 2f+1-replica groups running the
// MinBFT engine. The byzantine family includes equivocating leaders, whose
// conflicting USIG-certified prepares must be detected (not just outvoted)
// by the correct replicas; crash-restart exercises the USIG counter lease
// across kill -9 + durable reboot.

TEST(ChaosSweep, MinBftEquivocateF1) {
  expect_clean_sweep(ScenarioFamily::kByzantineReplicas, 1, 1, 44,
                     Protocol::kMinBft);
}

TEST(ChaosSweep, MinBftCrashRestartF1) {
  expect_clean_sweep(ScenarioFamily::kCrashRestart, 1, 1, 44,
                     Protocol::kMinBft);
}

// --- fast smoke sweep for CI: 64 seeds spread over the families ----------

// Honors SS_PROTOCOL so CI can matrix the same smoke over both engines.
TEST(ChaosSmoke, SixtyFourSeeds) {
  Protocol protocol = Protocol::kPbft;
  if (const char* env = std::getenv("SS_PROTOCOL")) {
    protocol = parse_protocol(env);
  }
  for (ScenarioFamily family : kAllFamilies) {
    expect_clean_sweep(family, 1, 1000, 12, protocol);
  }
  expect_clean_sweep(ScenarioFamily::kMixed, 2, 1000, 4, protocol);
}

// --- canary: a sabotaged deployment must fail, minimize, and replay ------

TEST(ChaosCanary, DisabledTimeoutsAreCaughtAndMinimized) {
  // With the logical-timeout protocol disabled, a silently swallowed RTU
  // reply must strand its WriteValue forever — the checker has to see it.
  ChaosOptions options;
  options.family = ScenarioFamily::kRtuFaults;
  options.seed = 2;  // a script whose swallow window covers a write
  options.sabotage = Sabotage::kDisableLogicalTimeouts;

  RunReport broken = run_chaos(options);
  ASSERT_FALSE(broken.ok()) << "sabotage was not detected: "
                            << broken.summary();
  bool saw_liveness = false;
  for (const Violation& v : broken.violations) {
    if (v.invariant == "write-liveness") saw_liveness = true;
  }
  EXPECT_TRUE(saw_liveness);

  // The same script with the protocol enabled must pass: the synthesized
  // timeout result masks the fault (paper section IV-D).
  ChaosOptions healthy = options;
  healthy.sabotage = Sabotage::kNone;
  EXPECT_TRUE(run_chaos(healthy).ok());

  // The minimizer must shrink the script to the single swallow action and
  // hand back a deterministic repro.
  MinimizeResult min = minimize(options);
  EXPECT_EQ(min.minimal.actions.size(), 1u);
  ASSERT_FALSE(min.minimal.actions.empty());
  EXPECT_EQ(min.minimal.actions.front().kind, ActionKind::kRtuSwallowRequests);
  EXPECT_FALSE(min.report.ok());
  EXPECT_NE(min.repro.find("--sabotage=no-timeouts"), std::string::npos);
  EXPECT_NE(min.repro.find("--keep="), std::string::npos);

  // Replaying the minimal script must reproduce the violation exactly.
  RunReport replay = run_script(options, min.minimal);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.violations.size(), min.report.violations.size());
  EXPECT_EQ(replay.violations.front().invariant,
            min.report.violations.front().invariant);
}

// --- determinism: the whole engine is a pure function of its options -----

TEST(ChaosDeterminism, SameSeedSameRun) {
  ChaosOptions options;
  options.family = ScenarioFamily::kMixed;
  options.seed = 42;

  RunReport a = run_chaos(options);
  RunReport b = run_chaos(options);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.writes_issued, b.writes_issued);
  EXPECT_EQ(a.writes_completed, b.writes_completed);
  EXPECT_EQ(a.view_changes, b.view_changes);
  EXPECT_EQ(a.state_transfers, b.state_transfers);
  EXPECT_EQ(a.violations.size(), b.violations.size());
  EXPECT_EQ(a.script.describe(), b.script.describe());
}

TEST(ChaosDeterminism, ScriptsVaryBySeedAndFamily) {
  ScriptParams params;
  params.group = GroupConfig::for_f(1);
  FaultScript a = generate_script(ScenarioFamily::kMixed, params, 1);
  FaultScript b = generate_script(ScenarioFamily::kMixed, params, 2);
  FaultScript c = generate_script(ScenarioFamily::kPartitions, params, 1);
  EXPECT_NE(a.describe(), b.describe());
  EXPECT_NE(a.describe(), c.describe());
  EXPECT_EQ(a.describe(),
            generate_script(ScenarioFamily::kMixed, params, 1).describe());
}

TEST(ChaosDeterminism, EveryFamilyInjectsFaults) {
  ScriptParams params;
  params.group = GroupConfig::for_f(1);
  for (ScenarioFamily family : kAllFamilies) {
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      FaultScript script = generate_script(family, params, seed);
      EXPECT_FALSE(script.actions.empty())
          << family_name(family) << " seed " << seed;
      for (const FaultAction& action : script.actions) {
        EXPECT_GE(action.at, 0);
        EXPECT_LT(action.at, params.horizon);
      }
    }
  }
}

}  // namespace
}  // namespace ss::chaos
