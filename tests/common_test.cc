// Unit tests for src/common: serialization, bytes, rng, config, ids.
#include <gtest/gtest.h>

#include <limits>

#include "common/bytes.h"
#include "common/config.h"
#include "common/rng.h"
#include "common/serialization.h"
#include "common/types.h"

namespace ss {
namespace {

TEST(Bytes, HexRoundTrip) {
  Bytes data{0x00, 0x01, 0xde, 0xad, 0xbe, 0xef, 0xff};
  EXPECT_EQ(to_hex(data), "0001deadbeefff");
  EXPECT_EQ(from_hex("0001deadbeefff"), data);
  EXPECT_EQ(from_hex("0001DEADBEEFFF"), data);
}

TEST(Bytes, HexRejectsMalformed) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(Bytes, StringConversion) {
  Bytes b = bytes_of("scada");
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(string_of(b), "scada");
}

TEST(Bytes, ConstantTimeEqual) {
  Bytes a{1, 2, 3};
  Bytes b{1, 2, 3};
  Bytes c{1, 2, 4};
  Bytes d{1, 2};
  EXPECT_TRUE(constant_time_equal(a, b));
  EXPECT_FALSE(constant_time_equal(a, c));
  EXPECT_FALSE(constant_time_equal(a, d));
}

TEST(Serialization, FixedWidthRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(3.14159);
  w.boolean(true);
  w.boolean(false);

  Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.done());
}

class VarintRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarintRoundTrip, RoundTrips) {
  Writer w;
  w.varint(GetParam());
  Reader r(w.bytes());
  EXPECT_EQ(r.varint(), GetParam());
  EXPECT_TRUE(r.done());
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, VarintRoundTrip,
    ::testing::Values(0ULL, 1ULL, 127ULL, 128ULL, 129ULL, 16383ULL, 16384ULL,
                      (1ULL << 32) - 1, 1ULL << 32, 1ULL << 63,
                      std::numeric_limits<std::uint64_t>::max()));

TEST(Serialization, StringsAndBlobs) {
  Writer w;
  w.str("");
  w.str("hello scada");
  w.blob(Bytes{9, 8, 7});
  Reader r(w.bytes());
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), "hello scada");
  EXPECT_EQ(r.blob(), (Bytes{9, 8, 7}));
}

TEST(Serialization, TruncationThrows) {
  Writer w;
  w.u64(1);
  Bytes data = std::move(w).take();
  data.pop_back();
  Reader r(data);
  EXPECT_THROW(r.u64(), DecodeError);
}

TEST(Serialization, TrailingBytesDetected) {
  Writer w;
  w.u8(1);
  w.u8(2);
  Reader r(w.bytes());
  r.u8();
  EXPECT_THROW(r.expect_done(), DecodeError);
}

TEST(Serialization, MalformedVarintThrows) {
  Bytes data(11, 0x80);  // never terminates
  Reader r(data);
  EXPECT_THROW(r.varint(), DecodeError);
}

TEST(Serialization, BooleanRejectsGarbage) {
  Bytes data{7};
  Reader r(data);
  EXPECT_THROW(r.boolean(), DecodeError);
}

TEST(Serialization, BlobLengthBeyondBufferThrows) {
  Writer w;
  w.varint(1000);  // claims 1000 bytes, provides none
  Reader r(w.bytes());
  EXPECT_THROW(r.blob(), DecodeError);
}

TEST(StrongIds, ComparisonAndHash) {
  ItemId a{1}, b{2}, c{1};
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  EXPECT_EQ(a.next(), b);
  EXPECT_EQ(std::hash<ItemId>{}(a), std::hash<ItemId>{}(c));
}

TEST(StrongIds, SerializationRoundTrip) {
  Writer w;
  w.id(ConsensusId{123456789});
  w.id(ReplicaId{3});
  Reader r(w.bytes());
  EXPECT_EQ(r.id<ConsensusId>(), ConsensusId{123456789});
  EXPECT_EQ(r.id<ReplicaId>(), ReplicaId{3});
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i) {
    if (a2.next() != c.next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    std::int64_t v = rng.range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ForkIndependence) {
  Rng parent(11);
  Rng child = parent.fork();
  // The child stream should not mirror the parent.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next() == child.next()) ++same;
  }
  EXPECT_LT(same, 4);
}

class QuorumMath : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(QuorumMath, QuorumsIntersectAndTolerate) {
  std::uint32_t f = GetParam();
  GroupConfig g = GroupConfig::for_f(f);
  EXPECT_EQ(g.n, 3 * f + 1);
  // Byzantine quorum: any two quorums intersect in at least f+1 replicas.
  EXPECT_GE(2 * g.quorum(), g.n + f + 1);
  // A quorum must be reachable with f replicas down.
  EXPECT_LE(g.quorum(), g.n - f);
  EXPECT_EQ(g.reply_quorum(), f + 1);
  EXPECT_EQ(g.sync_quorum(), 2 * f + 1);
  EXPECT_GE(g.majority(), g.n / 2 + 1);
}

INSTANTIATE_TEST_SUITE_P(FSweep, QuorumMath, ::testing::Values(1, 2, 3, 5, 10));

TEST(GroupConfig, RejectsInsufficientReplicas) {
  EXPECT_THROW(GroupConfig(3, 1), std::invalid_argument);
  EXPECT_NO_THROW(GroupConfig(4, 1));
  EXPECT_NO_THROW(GroupConfig(5, 1));
}

TEST(GroupConfig, LeaderRotation) {
  GroupConfig g = GroupConfig::for_f(1);
  EXPECT_EQ(g.leader_for(0), ReplicaId{0});
  EXPECT_EQ(g.leader_for(1), ReplicaId{1});
  EXPECT_EQ(g.leader_for(4), ReplicaId{0});
  EXPECT_EQ(g.replica_ids().size(), 4u);
}

TEST(Time, UnitHelpers) {
  EXPECT_EQ(micros(1), 1000);
  EXPECT_EQ(millis(1), 1000000);
  EXPECT_EQ(seconds(1), 1000000000);
}

}  // namespace
}  // namespace ss
