// Unit tests for the durability layer: CRC framing, WAL torn-tail repair,
// atomic checkpoints, and the crash model of the in-memory Env.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <string>

#include "common/bytes.h"
#include "obs/metrics.h"
#include "storage/checkpoint.h"
#include "storage/env.h"
#include "storage/replica_storage.h"
#include "storage/wal.h"

namespace ss::storage {
namespace {

Bytes payload_of(const std::string& s) { return bytes_of(s); }

// --- crc32 -----------------------------------------------------------------

TEST(Crc32, MatchesTheIeeeCheckValue) {
  // The standard CRC-32 check value: crc32("123456789") = 0xCBF43926.
  EXPECT_EQ(crc32(bytes_of("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(ByteView{}), 0x00000000u);
  EXPECT_NE(crc32(bytes_of("abc")), crc32(bytes_of("abd")));
}

// --- MemEnv crash model ----------------------------------------------------

TEST(MemEnv, DropUnsyncedLosesOnlyUnsyncedBytes) {
  MemEnv env;
  auto file = env.open_append("f");
  file->append(payload_of("durable"));
  file->sync();
  file->append(payload_of("+lost"));

  env.drop_unsynced();  // the simulated kill -9

  EXPECT_EQ(env.read_file("f").value(), payload_of("durable"));
}

TEST(MemEnv, DropUnsyncedScopedByPrefixSparesOtherReplicas) {
  MemEnv env;
  auto mine = env.open_append("replica-1/wal");
  mine->append(payload_of("mine-unsynced"));
  auto theirs = env.open_append("replica-10/wal");
  theirs->append(payload_of("theirs-unsynced"));

  // Killing replica 1 must not touch replica 10's in-flight bytes (note the
  // trailing "/": "replica-1" alone would prefix-match "replica-10" too).
  env.drop_unsynced("replica-1/");

  EXPECT_EQ(env.read_file("replica-1/wal").value(), Bytes{});
  EXPECT_EQ(env.read_file("replica-10/wal").value(),
            payload_of("theirs-unsynced"));
}

TEST(MemEnv, RenameIsAtomicReplace) {
  MemEnv env;
  env.write_file("a", payload_of("new"));
  env.write_file("b", payload_of("old"));
  env.rename_file("a", "b");
  EXPECT_FALSE(env.file_exists("a"));
  EXPECT_EQ(env.read_file("b").value(), payload_of("new"));
}

// --- WAL -------------------------------------------------------------------

TEST(Wal, AppendRecoverRoundtrip) {
  MemEnv env;
  {
    Wal wal(env, "d");
    wal.append(1, payload_of("one"));
    wal.append(2, payload_of("two"));
    wal.append(3, payload_of("three"));
  }
  Wal reopened(env, "d");
  ASSERT_EQ(reopened.records().size(), 3u);
  EXPECT_EQ(reopened.records()[0].seq, 1u);
  EXPECT_EQ(reopened.records()[2].payload, payload_of("three"));
  EXPECT_EQ(reopened.stats().records_recovered, 3u);
  EXPECT_EQ(reopened.stats().torn_bytes_dropped, 0u);
}

TEST(Wal, TornTailIsTruncatedNotFatal) {
  MemEnv env;
  std::size_t intact_size = 0;
  {
    Wal wal(env, "d");
    wal.append(1, payload_of("one"));
    wal.append(2, payload_of("two"));
    intact_size = env.raw("d/wal")->size();
    wal.append(3, payload_of("three"));
  }
  // A crash mid-append: only part of record 3 made it to disk.
  env.raw("d/wal")->resize(intact_size + 5);

  Wal reopened(env, "d");
  ASSERT_EQ(reopened.records().size(), 2u);
  EXPECT_EQ(reopened.stats().torn_bytes_dropped, 5u);
  // The torn bytes are gone from disk and the next append lands cleanly.
  reopened.append(3, payload_of("retry"));
  Wal again(env, "d");
  ASSERT_EQ(again.records().size(), 3u);
  EXPECT_EQ(again.records()[2].payload, payload_of("retry"));
}

TEST(Wal, FlippedByteDropsTheRecordAndEverythingAfter) {
  MemEnv env;
  std::size_t first_two = 0;
  {
    Wal wal(env, "d");
    wal.append(1, payload_of("one"));
    wal.append(2, payload_of("two"));
    first_two = env.raw("d/wal")->size();
    wal.append(3, payload_of("three"));
    wal.append(4, payload_of("four"));
  }
  // Bit rot inside record 3's payload: CRC fails, and record 4 — although
  // intact on disk — is unreachable past the corruption point.
  (*env.raw("d/wal"))[first_two + 20] ^= 0xff;

  Wal reopened(env, "d");
  ASSERT_EQ(reopened.records().size(), 2u);
  EXPECT_EQ(reopened.records()[1].seq, 2u);
  EXPECT_GT(reopened.stats().torn_bytes_dropped, 0u);
}

TEST(Wal, TrailingGarbageIsDropped) {
  MemEnv env;
  {
    Wal wal(env, "d");
    wal.append(1, payload_of("one"));
  }
  Bytes garbage = payload_of("garbage!");
  Bytes* raw = env.raw("d/wal");
  raw->insert(raw->end(), garbage.begin(), garbage.end());

  Wal reopened(env, "d");
  ASSERT_EQ(reopened.records().size(), 1u);
  EXPECT_EQ(reopened.stats().torn_bytes_dropped, garbage.size());
}

TEST(Wal, TruncateThroughDropsThePrefixDurably) {
  MemEnv env;
  {
    Wal wal(env, "d");
    for (std::uint64_t seq = 1; seq <= 5; ++seq) {
      wal.append(seq, payload_of("r" + std::to_string(seq)));
    }
    wal.truncate_through(3);
    ASSERT_EQ(wal.records().size(), 2u);
    EXPECT_EQ(wal.records()[0].seq, 4u);
    // The handle survives the rewrite: appends keep working.
    wal.append(6, payload_of("r6"));
  }
  Wal reopened(env, "d");
  ASSERT_EQ(reopened.records().size(), 3u);
  EXPECT_EQ(reopened.records()[0].seq, 4u);
  EXPECT_EQ(reopened.records()[2].seq, 6u);
}

TEST(Wal, TruncateThroughIsANoOpBelowTheFirstRecord) {
  MemEnv env;
  Wal wal(env, "d");
  wal.append(5, payload_of("five"));
  wal.truncate_through(4);
  EXPECT_EQ(wal.records().size(), 1u);
  EXPECT_EQ(wal.stats().truncations, 0u);
}

// --- checkpoints -----------------------------------------------------------

Checkpoint sample_checkpoint() {
  Checkpoint ckpt;
  ckpt.cid = ConsensusId{42};
  ckpt.last_timestamp = 123456;
  ckpt.app_digest.fill(0xAB);
  ckpt.full_snapshot = payload_of("snapshot-bytes");
  return ckpt;
}

TEST(CheckpointStore, WriteLoadRoundtrip) {
  MemEnv env;
  CheckpointStore store(env, "d");
  EXPECT_FALSE(store.load().has_value());

  store.write(sample_checkpoint());
  std::optional<Checkpoint> loaded = store.load();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->cid.value, 42u);
  EXPECT_EQ(loaded->last_timestamp, 123456);
  EXPECT_EQ(loaded->app_digest[0], 0xAB);
  EXPECT_EQ(loaded->full_snapshot, payload_of("snapshot-bytes"));
  EXPECT_FALSE(env.file_exists("d/snapshot.tmp"));
}

TEST(CheckpointStore, SecondWriteAtomicallyReplacesTheFirst) {
  MemEnv env;
  CheckpointStore store(env, "d");
  store.write(sample_checkpoint());
  Checkpoint newer = sample_checkpoint();
  newer.cid = ConsensusId{84};
  store.write(newer);
  EXPECT_EQ(store.load()->cid.value, 84u);
}

TEST(CheckpointStore, StaleTmpFromACrashedWriteIsIgnoredAndRemoved) {
  MemEnv env;
  CheckpointStore store(env, "d");
  store.write(sample_checkpoint());
  // Crash between "write tmp" and "rename": a possibly-torn tmp survives
  // next to the previous good checkpoint.
  env.write_file("d/snapshot.tmp", payload_of("torn half-written junk"));

  std::optional<Checkpoint> loaded = store.load();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->cid.value, 42u);
  EXPECT_FALSE(env.file_exists("d/snapshot.tmp"));
}

TEST(CheckpointStore, ReadOnlyLoadIgnoresButKeepsStaleTmp) {
  MemEnv env;
  CheckpointStore store(env, "d");
  store.write(sample_checkpoint());
  env.write_file("d/snapshot.tmp", payload_of("torn half-written junk"));

  // An audit must see the good checkpoint without destroying the tmp file —
  // it is the evidence of the interrupted write.
  std::optional<Checkpoint> loaded = store.load_read_only();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->cid.value, 42u);
  EXPECT_TRUE(env.file_exists("d/snapshot.tmp"));
}

TEST(CheckpointStore, CorruptCheckpointReadsAsAbsent) {
  MemEnv env;
  CheckpointStore store(env, "d");
  store.write(sample_checkpoint());
  (*env.raw("d/snapshot"))[3] ^= 0x01;
  EXPECT_FALSE(store.load().has_value());
}

// --- ReplicaStorage --------------------------------------------------------

TEST(ReplicaStorage, CheckpointTruncatesTheWalItCovers) {
  MemEnv env;
  ReplicaStorage store(env, "d", "storage/test-0");
  for (std::uint64_t seq = 1; seq <= 6; ++seq) {
    store.append_decision(ConsensusId{seq}, payload_of("b" + std::to_string(seq)));
  }
  Checkpoint ckpt = sample_checkpoint();
  ckpt.cid = ConsensusId{4};
  store.write_checkpoint(ckpt);

  ASSERT_EQ(store.wal_records().size(), 2u);
  EXPECT_EQ(store.wal_records()[0].seq, 5u);
  EXPECT_EQ(store.load_checkpoint()->cid.value, 4u);
  EXPECT_EQ(store.stats().decisions_logged, 6u);
  EXPECT_EQ(store.stats().checkpoints_written, 1u);
  EXPECT_EQ(store.wal_stats().truncations, 1u);

  // Everything survives a "process restart" (a fresh ReplicaStorage).
  ReplicaStorage reopened(env, "d", "storage/test-0b");
  ASSERT_EQ(reopened.wal_records().size(), 2u);
  EXPECT_EQ(reopened.load_checkpoint()->cid.value, 4u);
}

TEST(ReplicaStorage, NoteRecoveryFeedsTheMetrics) {
  MemEnv env;
  ReplicaStorage store(env, "d", "storage/test-1");
  std::uint64_t before = obs::Registry::instance().counter("storage.recoveries");
  store.note_recovery(/*duration_ns=*/5000, /*records_replayed=*/3);
  EXPECT_EQ(store.stats().recoveries, 1u);
  EXPECT_EQ(store.stats().records_replayed, 3u);
  EXPECT_EQ(obs::Registry::instance().counter("storage.recoveries"),
            before + 1);
  EXPECT_GT(
      obs::Registry::instance().histogram("storage.recovery_ns").count(), 0u);
}

// --- PosixEnv: the same protocol against a real filesystem -----------------

TEST(PosixEnv, WalAndCheckpointRoundtripOnRealFiles) {
  char tmpl[] = "/tmp/ss_storage_test_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  std::string dir = std::string(tmpl) + "/state";

  PosixEnv env;
  {
    Wal wal(env, dir);
    wal.append(1, payload_of("one"));
    wal.append(2, payload_of("two"));
    wal.truncate_through(1);
    CheckpointStore store(env, dir);
    store.write(sample_checkpoint());
  }
  {
    Wal wal(env, dir);
    ASSERT_EQ(wal.records().size(), 1u);
    EXPECT_EQ(wal.records()[0].seq, 2u);
    CheckpointStore store(env, dir);
    ASSERT_TRUE(store.load().has_value());
    EXPECT_EQ(store.load()->cid.value, 42u);
  }

  // Torn tail on a real file: chop bytes off the end.
  std::size_t size = env.read_file(dir + "/wal")->size();
  env.truncate_file(dir + "/wal", size - 3);
  Wal repaired(env, dir);
  EXPECT_EQ(repaired.records().size(), 0u);
  EXPECT_EQ(repaired.stats().torn_bytes_dropped, size - 3);

  std::string cleanup = "rm -rf " + std::string(tmpl);
  ASSERT_EQ(std::system(cleanup.c_str()), 0);
}

}  // namespace
}  // namespace ss::storage
