// The bft_test write and view-change suites against the MinBFT engine:
// 2f+1 replicas, f+1 USIG-certified commit quorum, and the counter-enabled
// two-message view change. Driven through the protocol-parameterized
// harness Cluster so the test bodies stay engine-agnostic — what changes is
// the group shape (n = 3 at f = 1) and the fault budget arithmetic.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tests/bft_harness.h"

namespace ss::bft {
namespace {

using testing::Cluster;
using testing::KvApp;

Cluster minbft_cluster(std::uint32_t f = 1, ReplicaOptions options = {}) {
  return Cluster(f, options, 0xFA111, Protocol::kMinBft);
}

TEST(MinBft, GroupIsTwoFPlusOne) {
  Cluster cluster = minbft_cluster();
  EXPECT_EQ(cluster.group.n, 3u);
  EXPECT_EQ(cluster.group.quorum(), 2u);        // f+1 commit quorum
  EXPECT_EQ(cluster.group.sync_quorum(), 2u);   // f+1 view install
  QuorumConfig quorums = cluster.replicas[0]->quorum_config();
  EXPECT_EQ(quorums.n, 3u);
  EXPECT_EQ(quorums.f, 1u);
}

TEST(MinBft, OrdersASingleRequest) {
  Cluster cluster = minbft_cluster();
  auto client = cluster.make_client(1);
  std::string reply_old;
  bool done = false;
  client->invoke_ordered(KvApp::put("grid", "stable"), [&](Bytes reply) {
    Reader r(reply);
    reply_old = r.str();
    done = true;
  });
  cluster.run_for(seconds(1));
  EXPECT_TRUE(done);
  EXPECT_EQ(reply_old, "");
  for (auto& app : cluster.apps) {
    EXPECT_EQ(app->applied(), 1u);
    EXPECT_EQ(app->data().at("grid"), "stable");
  }
  EXPECT_TRUE(cluster.apps_converged());
}

TEST(MinBft, MultipleClientsConverge) {
  Cluster cluster = minbft_cluster();
  std::vector<std::unique_ptr<ClientProxy>> clients;
  int completed = 0;
  for (std::uint32_t c = 1; c <= 4; ++c) {
    clients.push_back(cluster.make_client(c));
  }
  for (int i = 0; i < 20; ++i) {
    for (auto& client : clients) {
      client->invoke_ordered(
          KvApp::put("c" + std::to_string(client->id().value),
                     std::to_string(i)),
          [&](Bytes) { ++completed; });
    }
  }
  cluster.run_for(seconds(5));
  EXPECT_EQ(completed, 80);
  EXPECT_TRUE(cluster.apps_converged());
  for (auto& app : cluster.apps) {
    EXPECT_EQ(app->data().at("c1"), "19");
    EXPECT_EQ(app->data().at("c4"), "19");
  }
}

TEST(MinBft, TimestampsAreMonotonicAndIdenticalAcrossReplicas) {
  Cluster cluster = minbft_cluster();
  auto client = cluster.make_client(1);
  for (int i = 0; i < 30; ++i) {
    client->invoke_ordered(KvApp::put("k", std::to_string(i)), {});
  }
  cluster.run_for(seconds(5));
  for (auto& app : cluster.apps) {
    const auto& ts = app->timestamps();
    ASSERT_FALSE(ts.empty());
    for (std::size_t i = 1; i < ts.size(); ++i) {
      EXPECT_GE(ts[i], ts[i - 1]);
    }
  }
  for (std::uint32_t i = 1; i < cluster.group.n; ++i) {
    EXPECT_EQ(cluster.apps[i]->timestamps(), cluster.apps[0]->timestamps());
  }
}

// At f = 1 the MinBFT group is 3 replicas: one crashed follower leaves
// exactly the f+1 = 2 needed for the commit quorum.
TEST(MinBft, CrashFaultyReplicaDoesNotBlockProgress) {
  Cluster cluster = minbft_cluster();
  cluster.replicas[2]->crash();  // a follower
  auto client = cluster.make_client(1);
  int completed = 0;
  for (int i = 0; i < 10; ++i) {
    client->invoke_ordered(KvApp::put("k" + std::to_string(i), "v"),
                           [&](Bytes) { ++completed; });
  }
  cluster.run_for(seconds(5));
  EXPECT_EQ(completed, 10);
  EXPECT_EQ(cluster.apps[0]->applied(), 10u);
  EXPECT_EQ(cluster.apps[2]->applied(), 0u);
}

TEST(MinBft, LeaderCrashTriggersViewChange) {
  Cluster cluster = minbft_cluster();
  cluster.replicas[0]->crash();  // the initial leader
  auto client = cluster.make_client(1);
  bool done = false;
  client->invoke_ordered(KvApp::put("grid", "resilient"),
                         [&](Bytes) { done = true; });
  cluster.run_for(seconds(10));
  EXPECT_TRUE(done);
  for (std::uint32_t i = 1; i < cluster.group.n; ++i) {
    EXPECT_GE(cluster.replicas[i]->regency(), 1u);
    EXPECT_EQ(cluster.apps[i]->applied(), 1u);
  }
}

TEST(MinBft, SilentByzantineLeaderIsVotedOut) {
  Cluster cluster = minbft_cluster();
  cluster.replicas[0]->set_byzantine(ByzantineMode::kSilent);
  auto client = cluster.make_client(1);
  bool done = false;
  client->invoke_ordered(KvApp::put("k", "v"), [&](Bytes) { done = true; });
  cluster.run_for(seconds(10));
  EXPECT_TRUE(done);
  EXPECT_GE(cluster.replicas[1]->regency(), 1u);
}

// An equivocating MinBFT leader must burn a distinct USIG counter value on
// each conflicting prepare, so the conflict is *detectable*: a correct
// replica holding prepare A that sees a commit echoing a valid certificate
// for conflicting value B flags it. The leader is voted out and the correct
// replicas stay agreed.
TEST(MinBft, EquivocatingLeaderIsDetectedAndVotedOut) {
  Cluster cluster = minbft_cluster();
  cluster.replicas[0]->set_byzantine(ByzantineMode::kEquivocate);
  auto client = cluster.make_client(1);
  bool done = false;
  client->invoke_ordered(KvApp::put("k", "v"), [&](Bytes) { done = true; });
  cluster.run_for(seconds(10));
  EXPECT_TRUE(done);
  std::uint64_t detected = 0;
  for (std::uint32_t i = 1; i < cluster.group.n; ++i) {
    EXPECT_GE(cluster.replicas[i]->regency(), 1u);
    detected += cluster.replicas[i]->stats().equivocations_detected;
  }
  EXPECT_GE(detected, 1u);
  // Safety: the correct replicas agree.
  EXPECT_EQ(cluster.apps[1]->snapshot(), cluster.apps[2]->snapshot());
}

// A replica whose commit certificates are corrupted in flight. With the
// correct follower down, the corrupt voter is the only possible quorum
// partner: its certificates must be refused (usig_rejections) and the
// instance must NOT decide — a bad certificate never substitutes for a
// good one. Once the correct follower returns, the f+1 quorum reforms.
TEST(MinBft, CorruptVotesAreRejectedAndNeverCountTowardQuorum) {
  Cluster cluster = minbft_cluster();
  cluster.replicas[1]->crash();
  cluster.replicas[2]->set_byzantine(ByzantineMode::kCorruptVotes);
  auto client = cluster.make_client(1);
  int completed = 0;
  client->invoke_ordered(KvApp::put("k", "v"), [&](Bytes) { ++completed; });
  cluster.run_for(seconds(2));
  EXPECT_EQ(completed, 0);
  EXPECT_GE(cluster.replicas[0]->stats().usig_rejections, 1u);

  cluster.replicas[1]->recover();
  cluster.run_for(seconds(20));
  EXPECT_EQ(completed, 1);
  EXPECT_EQ(cluster.apps[1]->data().at("k"), "v");
}

TEST(MinBft, CorruptRepliesAreOutvoted) {
  Cluster cluster = minbft_cluster();
  cluster.replicas[2]->set_byzantine(ByzantineMode::kCorruptReplies);
  auto client = cluster.make_client(1);
  std::string old_value = "sentinel";
  bool done = false;
  client->invoke_ordered(KvApp::put("k", "v"), [&](Bytes reply) {
    Reader r(reply);
    old_value = r.str();
    done = true;
  });
  cluster.run_for(seconds(5));
  EXPECT_TRUE(done);
  EXPECT_EQ(old_value, "");  // the correct (voted) reply
}

TEST(MinBft, RecoveredReplicaCatchesUpViaStateTransfer) {
  Cluster cluster = minbft_cluster();
  cluster.replicas[2]->crash();
  auto client = cluster.make_client(1);
  int completed = 0;
  for (int i = 0; i < 30; ++i) {
    client->invoke_ordered(KvApp::put("k" + std::to_string(i), "v"),
                           [&](Bytes) { ++completed; });
  }
  cluster.run_for(seconds(5));
  ASSERT_EQ(completed, 30);

  cluster.replicas[2]->recover();
  cluster.run_for(seconds(5));
  EXPECT_GE(cluster.replicas[2]->stats().state_transfers, 1u);
  EXPECT_EQ(cluster.replicas[2]->last_decided(),
            cluster.replicas[0]->last_decided());
  EXPECT_TRUE(cluster.apps_converged());

  bool done = false;
  client->invoke_ordered(KvApp::put("post", "recovery"),
                         [&](Bytes) { done = true; });
  cluster.run_for(seconds(5));
  EXPECT_TRUE(done);
  EXPECT_EQ(cluster.apps[2]->data().at("post"), "recovery");
}

// View changes under churn: crash each leader in turn and confirm the
// two-message view change keeps handing leadership forward.
TEST(MinBft, SuccessiveLeaderCrashesKeepRotatingLeadership) {
  Cluster cluster = minbft_cluster();
  auto client = cluster.make_client(1);
  int completed = 0;
  client->invoke_ordered(KvApp::put("seed", "0"), [&](Bytes) { ++completed; });
  cluster.run_for(seconds(1));
  ASSERT_EQ(completed, 1);

  // Crash leader of view 0, let the group re-elect and decide, recover,
  // then crash the next leader.
  cluster.replicas[0]->crash();
  client->invoke_ordered(KvApp::put("a", "1"), [&](Bytes) { ++completed; });
  cluster.run_for(seconds(10));
  EXPECT_EQ(completed, 2);
  cluster.replicas[0]->recover();
  cluster.run_for(seconds(5));

  std::uint32_t leader = cluster.replicas[1]->regency() % cluster.group.n;
  cluster.replicas[leader]->crash();
  client->invoke_ordered(KvApp::put("b", "2"), [&](Bytes) { ++completed; });
  cluster.run_for(seconds(10));
  EXPECT_EQ(completed, 3);
  cluster.replicas[leader]->recover();
  cluster.run_for(seconds(5));
  EXPECT_TRUE(cluster.apps_converged());
}

// Regression pin for the documented counter-contiguity gap (DESIGN.md §16):
// MinBFT here enforces per-sender, per-type strict counter *monotonicity*,
// not contiguity. A replica that misses a stretch of certified traffic —
// isolated below, while the remaining f+1 keep deciding — later receives
// USIG counters far ahead of its recorded frontier. Those skipped counters
// must be accepted as fresh: one USIG counter spans all of a sender's
// message types, so per-type gaps are routine, and post-partition progress
// depends on not gating them. The log-completeness proof real MinBFT
// derives from gapless counters is instead provided by state transfer. If
// counter-contiguity gating is ever added, this is the test that must
// change with it.
TEST(MinBft, SkippedUsigCountersAreAcceptedAsFreshAfterIsolation) {
  Cluster cluster = minbft_cluster();
  auto client = cluster.make_client(1);

  int completed = 0;
  for (int i = 0; i < 5; ++i) {
    client->invoke_ordered(KvApp::put("pre" + std::to_string(i), "v"),
                           [&](Bytes) { ++completed; });
  }
  cluster.run_for(seconds(2));
  ASSERT_EQ(completed, 5);

  // Cut replica 2 off; every sender's USIG counter advances past the
  // frontier replica 2 recorded while the f+1 quorum keeps certifying.
  cluster.net.isolate(crypto::replica_principal(ReplicaId{2}));
  const std::uint64_t rejections_before =
      cluster.replicas[2]->stats().usig_rejections;
  for (int i = 0; i < 30; ++i) {
    client->invoke_ordered(KvApp::put("k" + std::to_string(i), "v"),
                           [&](Bytes) { ++completed; });
  }
  cluster.run_for(seconds(5));
  ASSERT_EQ(completed, 35);

  cluster.net.heal(crypto::replica_principal(ReplicaId{2}));
  bool done = false;
  client->invoke_ordered(KvApp::put("post", "heal"),
                         [&](Bytes) { done = true; });
  cluster.run_for(seconds(5));
  EXPECT_TRUE(done);

  // The skipped counters were treated as fresh: no USIG rejection charged
  // to the reconnected replica, and it converges (state transfer covers the
  // missed prefix) instead of stalling on the counter gap.
  EXPECT_EQ(cluster.replicas[2]->stats().usig_rejections, rejections_before);
  EXPECT_EQ(cluster.replicas[2]->last_decided(),
            cluster.replicas[0]->last_decided());
  EXPECT_TRUE(cluster.apps_converged());
}

TEST(MinBft, FTwoGroupSurvivesTwoCrashes) {
  Cluster cluster = minbft_cluster(2);
  ASSERT_EQ(cluster.group.n, 5u);
  cluster.replicas[3]->crash();
  cluster.replicas[4]->crash();
  auto client = cluster.make_client(1);
  int completed = 0;
  for (int i = 0; i < 10; ++i) {
    client->invoke_ordered(KvApp::put("k" + std::to_string(i), "v"),
                           [&](Bytes) { ++completed; });
  }
  cluster.run_for(seconds(5));
  EXPECT_EQ(completed, 10);
  EXPECT_TRUE(cluster.apps_converged());
}

}  // namespace
}  // namespace ss::bft
