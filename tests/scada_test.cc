// Unit tests for the SCADA substrate: variant, items, messages, storage,
// handlers, master routing, frontend, HMI.
#include <gtest/gtest.h>

#include "scada/frontend.h"
#include "scada/handlers.h"
#include "scada/hmi.h"
#include "scada/master.h"
#include "scada/messages.h"
#include "scada/storage.h"

namespace ss::scada {
namespace {

// ---------------------------------------------------------------------------
// Variant

TEST(Variant, TypesAndAccessors) {
  EXPECT_TRUE(Variant{}.is_null());
  EXPECT_TRUE(Variant{true}.as_bool());
  EXPECT_EQ(Variant{std::int64_t{42}}.as_int(), 42);
  EXPECT_DOUBLE_EQ(Variant{2.5}.as_double(), 2.5);
  EXPECT_EQ(Variant{std::string("on")}.as_string(), "on");
  EXPECT_TRUE(Variant{std::int64_t{1}}.is_numeric());
  EXPECT_TRUE(Variant{1.0}.is_numeric());
  EXPECT_FALSE(Variant{true}.is_numeric());
}

TEST(Variant, NumericCoercion) {
  EXPECT_EQ(Variant{2.6}.as_int(), 3);  // rounds
  EXPECT_DOUBLE_EQ(Variant{std::int64_t{7}}.as_double(), 7.0);
  EXPECT_THROW(Variant{std::string("x")}.as_int(), std::runtime_error);
  EXPECT_DOUBLE_EQ(Variant{}.to_double_or_zero(), 0.0);
  EXPECT_DOUBLE_EQ(Variant{true}.to_double_or_zero(), 1.0);
}

class VariantRoundTrip : public ::testing::TestWithParam<Variant> {};

TEST_P(VariantRoundTrip, EncodesDeterministically) {
  Writer w1, w2;
  GetParam().encode(w1);
  GetParam().encode(w2);
  EXPECT_EQ(w1.bytes(), w2.bytes());
  Reader r(w1.bytes());
  Variant decoded = Variant::decode(r);
  EXPECT_EQ(decoded, GetParam());
  EXPECT_TRUE(r.done());
}

INSTANTIATE_TEST_SUITE_P(
    Values, VariantRoundTrip,
    ::testing::Values(Variant{}, Variant{true}, Variant{false},
                      Variant{std::int64_t{-123456}}, Variant{3.14159},
                      Variant{std::string("") }, Variant{std::string("abc")}));

// ---------------------------------------------------------------------------
// Items and registry

TEST(ItemRegistry, StableDenseIds) {
  ItemRegistry registry;
  ItemId a = registry.register_item("grid/voltage");
  ItemId b = registry.register_item("grid/current");
  EXPECT_EQ(a, ItemId{1});
  EXPECT_EQ(b, ItemId{2});
  EXPECT_EQ(registry.register_item("grid/voltage"), a);  // idempotent
  EXPECT_EQ(*registry.lookup("grid/current"), b);
  EXPECT_FALSE(registry.lookup("missing").has_value());
  EXPECT_EQ(*registry.name_of(a), "grid/voltage");
  EXPECT_EQ(registry.name_of(ItemId{99}), nullptr);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(Item, EncodeDecodeRoundTrip) {
  Item item;
  item.id = ItemId{7};
  item.name = "pump/1/speed";
  item.value = Variant{55.5};
  item.quality = Quality::kGood;
  item.timestamp = millis(123);
  Writer w;
  item.encode(w);
  Reader r(w.bytes());
  Item decoded = Item::decode(r);
  EXPECT_EQ(decoded.id, item.id);
  EXPECT_EQ(decoded.name, item.name);
  EXPECT_EQ(decoded.value, item.value);
  EXPECT_EQ(decoded.quality, item.quality);
  EXPECT_EQ(decoded.timestamp, item.timestamp);
}

// ---------------------------------------------------------------------------
// Messages

TEST(Messages, RoundTripAllKinds) {
  MsgContext ctx;
  ctx.op = OpId{77};
  ctx.cid = ConsensusId{5};
  ctx.order = 2;
  ctx.timestamp = millis(99);

  ItemUpdate update;
  update.ctx = ctx;
  update.item = ItemId{3};
  update.value = Variant{1.25};
  update.quality = Quality::kGood;
  update.source_time = millis(98);

  WriteValue write;
  write.ctx = ctx;
  write.item = ItemId{4};
  write.value = Variant{std::int64_t{10}};

  WriteResult result;
  result.ctx = ctx;
  result.item = ItemId{4};
  result.status = WriteStatus::kDenied;
  result.reason = "blocked";

  Event event;
  event.id = EventId{9};
  event.item = ItemId{3};
  event.severity = Severity::kAlarm;
  event.code = "MONITOR_TRIGGER";
  event.message = "limit";
  event.value = Variant{2.0};
  event.timestamp = millis(99);
  event.op = OpId{77};
  EventUpdate event_update;
  event_update.ctx = ctx;
  event_update.event = event;

  Subscribe subscribe{Channel::kAe, ItemId{3}, "hmi"};
  Unsubscribe unsubscribe{Channel::kDa, ItemId{0}, "hmi"};

  for (const ScadaMessage& msg :
       {ScadaMessage{update}, ScadaMessage{write}, ScadaMessage{result},
        ScadaMessage{event_update}, ScadaMessage{subscribe},
        ScadaMessage{unsubscribe}}) {
    Bytes encoded = encode_message(msg);
    ScadaMessage decoded = decode_message(encoded);
    EXPECT_EQ(kind_of(decoded), kind_of(msg));
    EXPECT_EQ(encode_message(decoded), encoded);  // deterministic re-encode
  }
}

TEST(Messages, ContextOfDataMessages) {
  WriteValue write;
  write.ctx.op = OpId{123};
  write.ctx.timestamp = millis(5);
  EXPECT_EQ(context_of(ScadaMessage{write}).op, OpId{123});
  Subscribe subscribe;
  EXPECT_EQ(context_of(ScadaMessage{subscribe}).op, OpId{0});
}

TEST(Messages, MalformedRejected) {
  EXPECT_THROW(decode_message(Bytes{}), DecodeError);
  EXPECT_THROW(decode_message(Bytes{0xff, 0x01}), DecodeError);
  Bytes valid = encode_message(ScadaMessage{Subscribe{}});
  Bytes trailing = valid;
  trailing.push_back(0);
  EXPECT_THROW(decode_message(trailing), DecodeError);
}

// ---------------------------------------------------------------------------
// Storage

TEST(Storage, AppendAssignsSequentialIds) {
  EventStorage storage;
  Event e;
  e.item = ItemId{1};
  EXPECT_EQ(storage.append(e).id, EventId{1});
  EXPECT_EQ(storage.append(e).id, EventId{2});
  EXPECT_EQ(storage.size(), 2u);
}

TEST(Storage, ChainDigestDependsOnHistory) {
  EventStorage a, b;
  Event e1;
  e1.item = ItemId{1};
  e1.code = "A";
  Event e2;
  e2.item = ItemId{1};
  e2.code = "B";
  a.append(e1);
  a.append(e2);
  b.append(e2);
  b.append(e1);
  EXPECT_NE(a.chain_digest(), b.chain_digest());  // order matters

  EventStorage c;
  c.append(e1);
  c.append(e2);
  EXPECT_EQ(a.chain_digest(), c.chain_digest());  // same history, same digest
}

TEST(Storage, Queries) {
  EventStorage storage;
  for (int i = 0; i < 10; ++i) {
    Event e;
    e.item = ItemId{static_cast<std::uint32_t>(1 + i % 2)};
    e.severity = i < 5 ? Severity::kInfo : Severity::kAlarm;
    e.timestamp = millis(i);
    storage.append(e);
  }
  EXPECT_EQ(storage.query_item(ItemId{1}).size(), 5u);
  EXPECT_EQ(storage.query_severity(Severity::kAlarm).size(), 5u);
  EXPECT_EQ(storage.query_range(millis(2), millis(4)).size(), 3u);
}

TEST(Storage, RetentionEvictsButDigestPersists) {
  EventStorage storage(4);
  Event e;
  e.item = ItemId{1};
  for (int i = 0; i < 10; ++i) storage.append(e);
  EXPECT_EQ(storage.size(), 10u);
  EXPECT_EQ(storage.resident(), 4u);
}

TEST(Storage, EncodeDecodeRoundTrip) {
  EventStorage storage;
  Event e;
  e.item = ItemId{1};
  e.code = "X";
  storage.append(e);
  storage.append(e);
  Writer w;
  storage.encode(w);
  EventStorage restored;
  Reader r(w.bytes());
  restored.decode(r);
  EXPECT_EQ(restored.size(), storage.size());
  EXPECT_EQ(restored.chain_digest(), storage.chain_digest());
  // Appending after restore continues the chain identically.
  storage.append(e);
  restored.append(e);
  EXPECT_EQ(restored.chain_digest(), storage.chain_digest());
}

// ---------------------------------------------------------------------------
// Handlers

HandlerContext test_ctx() {
  return HandlerContext{ItemId{1}, "item", millis(10), OpId{5}};
}

TEST(Handlers, ScaleTransformsValue) {
  ScaleHandler handler(2.0, 1.0);
  Variant value{std::int64_t{10}};
  std::vector<Event> events;
  EXPECT_EQ(handler.on_update(test_ctx(), value, events),
            UpdateAction::kContinue);
  EXPECT_DOUBLE_EQ(value.as_double(), 21.0);
  EXPECT_TRUE(events.empty());
  // Non-numeric values pass through untouched.
  Variant text{std::string("n/a")};
  handler.on_update(test_ctx(), text, events);
  EXPECT_EQ(text.as_string(), "n/a");
}

TEST(Handlers, OverrideReplacesWhileActive) {
  OverrideHandler handler(Variant{99.0});
  Variant value{1.0};
  std::vector<Event> events;
  handler.on_update(test_ctx(), value, events);
  EXPECT_DOUBLE_EQ(value.as_double(), 1.0);  // inactive: untouched

  handler.set_active(true);
  handler.on_update(test_ctx(), value, events);
  EXPECT_DOUBLE_EQ(value.as_double(), 99.0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].code, "OVERRIDE_APPLIED");
}

TEST(Handlers, MonitorFiresOnCondition) {
  MonitorHandler handler(MonitorHandler::Condition::kAbove, 50.0);
  std::vector<Event> events;
  Variant low{40.0};
  handler.on_update(test_ctx(), low, events);
  EXPECT_TRUE(events.empty());
  Variant high{60.0};
  handler.on_update(test_ctx(), high, events);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].code, "MONITOR_TRIGGER");
  EXPECT_EQ(events[0].severity, Severity::kAlarm);
  EXPECT_EQ(events[0].timestamp, millis(10));
  // Level-triggered: fires on every matching update.
  handler.on_update(test_ctx(), high, events);
  EXPECT_EQ(events.size(), 2u);
  EXPECT_EQ(handler.triggers(), 2u);
}

TEST(Handlers, MonitorEdgeTriggeredFiresOnTransitions) {
  MonitorHandler handler(MonitorHandler::Condition::kAbove, 50.0,
                         Severity::kAlarm, /*edge_triggered=*/true);
  std::vector<Event> events;
  Variant high{60.0};
  Variant low{40.0};
  handler.on_update(test_ctx(), high, events);
  handler.on_update(test_ctx(), high, events);  // still active: no new event
  EXPECT_EQ(events.size(), 1u);
  handler.on_update(test_ctx(), low, events);
  handler.on_update(test_ctx(), high, events);  // re-trigger
  EXPECT_EQ(events.size(), 2u);
}

TEST(Handlers, MonitorBelowAndEquals) {
  MonitorHandler below(MonitorHandler::Condition::kBelow, 10.0);
  MonitorHandler equals(MonitorHandler::Condition::kEquals, 5.0);
  std::vector<Event> events;
  Variant v{5.0};
  below.on_update(test_ctx(), v, events);
  EXPECT_EQ(events.size(), 1u);
  equals.on_update(test_ctx(), v, events);
  EXPECT_EQ(events.size(), 2u);
}

TEST(Handlers, BlockDeniesWithReasonAndEvent) {
  BlockHandler handler;
  handler.block("maintenance window");
  std::vector<Event> events;
  std::string reason;
  EXPECT_FALSE(handler.on_write(test_ctx(), Variant{1.0}, events, reason));
  EXPECT_NE(reason.find("maintenance window"), std::string::npos);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].code, "WRITE_DENIED");

  handler.unblock();
  reason.clear();
  EXPECT_TRUE(handler.on_write(test_ctx(), Variant{1.0}, events, reason));
  EXPECT_TRUE(reason.empty());
}

TEST(Handlers, BlockEnforcesRange) {
  BlockHandler handler(0.0, 100.0);
  std::vector<Event> events;
  std::string reason;
  EXPECT_TRUE(handler.on_write(test_ctx(), Variant{50.0}, events, reason));
  EXPECT_FALSE(handler.on_write(test_ctx(), Variant{150.0}, events, reason));
  EXPECT_FALSE(handler.on_write(test_ctx(), Variant{-1.0}, events, reason));
}

TEST(Handlers, DeadbandSuppressesSmallChanges) {
  DeadbandHandler handler(1.0);
  std::vector<Event> events;
  Variant first{10.0};
  EXPECT_EQ(handler.on_update(test_ctx(), first, events),
            UpdateAction::kContinue);
  Variant close{10.5};
  EXPECT_EQ(handler.on_update(test_ctx(), close, events),
            UpdateAction::kSuppress);
  Variant far{11.5};
  EXPECT_EQ(handler.on_update(test_ctx(), far, events),
            UpdateAction::kContinue);
}

TEST(Handlers, ClampClipsAndWarns) {
  ClampHandler handler(0.0, 10.0);
  std::vector<Event> events;
  Variant high{15.0};
  handler.on_update(test_ctx(), high, events);
  EXPECT_DOUBLE_EQ(high.as_double(), 10.0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].code, "VALUE_CLAMPED");
  Variant ok{5.0};
  handler.on_update(test_ctx(), ok, events);
  EXPECT_EQ(events.size(), 1u);
}

TEST(Handlers, ChainRunsInOrderAndStateRoundTrips) {
  HandlerChain chain;
  chain.emplace<ScaleHandler>(2.0, 0.0);
  auto* monitor = chain.emplace<MonitorHandler>(
      MonitorHandler::Condition::kAbove, 15.0);
  std::vector<Event> events;
  Variant value{10.0};  // scaled to 20 -> monitor fires
  EXPECT_EQ(chain.run_update(test_ctx(), value, events),
            UpdateAction::kContinue);
  EXPECT_DOUBLE_EQ(value.as_double(), 20.0);
  EXPECT_EQ(events.size(), 1u);
  EXPECT_EQ(monitor->triggers(), 1u);

  // State snapshot/restore across an identically configured chain.
  Writer w;
  chain.encode_state(w);
  HandlerChain other;
  other.emplace<ScaleHandler>(2.0, 0.0);
  other.emplace<MonitorHandler>(MonitorHandler::Condition::kAbove, 15.0);
  Reader r(w.bytes());
  other.decode_state(r);
  Writer w2;
  other.encode_state(w2);
  EXPECT_EQ(w.bytes(), w2.bytes());
}

TEST(Handlers, ChainStateMismatchThrows) {
  HandlerChain chain;
  chain.emplace<ScaleHandler>(1.0, 0.0);
  Writer w;
  chain.encode_state(w);
  HandlerChain other;  // no handlers
  Reader r(w.bytes());
  EXPECT_THROW(other.decode_state(r), DecodeError);
}

// ---------------------------------------------------------------------------
// Master

struct MasterHarness {
  ScadaMaster master;
  std::vector<std::pair<std::string, ScadaMessage>> hmi_out;
  std::vector<ScadaMessage> frontend_out;
  ItemId item;

  MasterHarness() : master(make_options()) {
    master.set_da_sink([this](const std::string& sub, const ScadaMessage& m) {
      hmi_out.emplace_back(sub, m);
    });
    master.set_ae_sink([this](const std::string& sub, const ScadaMessage& m) {
      hmi_out.emplace_back(sub, m);
    });
    master.set_frontend_sink(
        [this](const std::string&, const ScadaMessage& m) {
          frontend_out.push_back(m);
        });
    item = master.add_item("tank/level");
    master.handle(ScadaMessage{Subscribe{Channel::kDa, ItemId{0}, "hmi"}},
                  MsgContext{}, "hmi");
    master.handle(ScadaMessage{Subscribe{Channel::kAe, ItemId{0}, "hmi"}},
                  MsgContext{}, "hmi");
  }

  static MasterOptions make_options() {
    MasterOptions options;
    options.deterministic = true;
    return options;
  }

  MsgContext ctx(std::uint64_t op, SimTime ts) {
    MsgContext c;
    c.op = OpId{op};
    c.cid = ConsensusId{op};
    c.timestamp = ts;
    return c;
  }
};

TEST(Master, ItemUpdateFansOutToSubscribers) {
  MasterHarness h;
  ItemUpdate update;
  update.ctx.op = OpId{1};
  update.item = h.item;
  update.value = Variant{42.0};
  h.master.handle(ScadaMessage{update}, h.ctx(1, millis(5)), "frontend");

  ASSERT_EQ(h.hmi_out.size(), 1u);
  EXPECT_EQ(h.hmi_out[0].first, "hmi");
  const auto& out = std::get<ItemUpdate>(h.hmi_out[0].second);
  EXPECT_DOUBLE_EQ(out.value.as_double(), 42.0);
  EXPECT_EQ(out.ctx.timestamp, millis(5));  // deterministic stamp

  const Item* mirror = h.master.item(h.item);
  ASSERT_NE(mirror, nullptr);
  EXPECT_DOUBLE_EQ(mirror->value.as_double(), 42.0);
  EXPECT_EQ(mirror->timestamp, millis(5));
}

TEST(Master, LateSubscriberReceivesSnapshotOfLiveItems) {
  MasterHarness h;
  // The harness's own subscribe preceded any update: no snapshot was pushed.
  EXPECT_TRUE(h.hmi_out.empty());

  ItemUpdate update;
  update.item = h.item;
  update.value = Variant{95.5};
  h.master.handle(ScadaMessage{update}, h.ctx(1, millis(5)), "frontend");
  h.hmi_out.clear();

  // A subscriber joining after the update gets the current value at once —
  // a stable process value must not stay invisible until it next changes.
  h.master.handle(ScadaMessage{Subscribe{Channel::kDa, ItemId{0}, "panel"}},
                  h.ctx(2, millis(9)), "panel");
  ASSERT_EQ(h.hmi_out.size(), 1u);
  EXPECT_EQ(h.hmi_out[0].first, "panel");
  const auto& out = std::get<ItemUpdate>(h.hmi_out[0].second);
  EXPECT_EQ(out.item.value, h.item.value);
  EXPECT_DOUBLE_EQ(out.value.as_double(), 95.5);
  EXPECT_EQ(out.quality, Quality::kGood);
  EXPECT_EQ(out.ctx.timestamp, millis(5));  // the value's timestamp, not now

  // Items that never saw an update are not in the snapshot.
  h.hmi_out.clear();
  h.master.add_item("tank/untouched");
  h.master.handle(ScadaMessage{Subscribe{Channel::kDa, ItemId{0}, "audit"}},
                  h.ctx(3, millis(12)), "audit");
  ASSERT_EQ(h.hmi_out.size(), 1u);  // only the live item, not the new one
  EXPECT_EQ(std::get<ItemUpdate>(h.hmi_out[0].second).item.value,
            h.item.value);
}

TEST(Master, UpdateForUnknownItemIgnored) {
  MasterHarness h;
  ItemUpdate update;
  update.item = ItemId{999};
  update.value = Variant{1.0};
  h.master.handle(ScadaMessage{update}, h.ctx(1, millis(5)), "frontend");
  EXPECT_TRUE(h.hmi_out.empty());
  EXPECT_EQ(h.master.counters().updates_processed, 0u);
}

TEST(Master, MonitorCreatesEventAndStores) {
  MasterHarness h;
  h.master.handlers(h.item).emplace<MonitorHandler>(
      MonitorHandler::Condition::kAbove, 100.0);
  ItemUpdate update;
  update.item = h.item;
  update.value = Variant{150.0};
  h.master.handle(ScadaMessage{update}, h.ctx(1, millis(7)), "frontend");

  // ItemUpdate + EventUpdate both reach the HMI.
  ASSERT_EQ(h.hmi_out.size(), 2u);
  EXPECT_EQ(kind_of(h.hmi_out[0].second), ScadaMsgKind::kItemUpdate);
  EXPECT_EQ(kind_of(h.hmi_out[1].second), ScadaMsgKind::kEventUpdate);
  const auto& event = std::get<EventUpdate>(h.hmi_out[1].second).event;
  EXPECT_EQ(event.code, "MONITOR_TRIGGER");
  EXPECT_EQ(event.timestamp, millis(7));
  EXPECT_EQ(h.master.storage().size(), 1u);
}

TEST(Master, WriteFlowsToFrontendAndBack) {
  MasterHarness h;
  WriteValue write;
  write.ctx.op = OpId{9};
  write.item = h.item;
  write.value = Variant{75.0};
  h.master.handle(ScadaMessage{write}, h.ctx(9, millis(1)), "hmi");

  ASSERT_EQ(h.frontend_out.size(), 1u);
  EXPECT_TRUE(h.master.has_pending_write(OpId{9}));
  EXPECT_TRUE(h.hmi_out.empty());  // nothing to the HMI yet

  WriteResult result;
  result.ctx.op = OpId{9};
  result.item = h.item;
  result.status = WriteStatus::kOk;
  h.master.handle(ScadaMessage{result}, h.ctx(9, millis(2)), "frontend");

  EXPECT_FALSE(h.master.has_pending_write(OpId{9}));
  ASSERT_EQ(h.hmi_out.size(), 1u);
  EXPECT_EQ(kind_of(h.hmi_out[0].second), ScadaMsgKind::kWriteResult);
  EXPECT_EQ(std::get<WriteResult>(h.hmi_out[0].second).status,
            WriteStatus::kOk);
}

TEST(Master, BlockedWriteDeniedWithEvent) {
  MasterHarness h;
  auto* block = h.master.handlers(h.item).emplace<BlockHandler>();
  block->block("safety interlock");

  WriteValue write;
  write.ctx.op = OpId{9};
  write.item = h.item;
  write.value = Variant{75.0};
  h.master.handle(ScadaMessage{write}, h.ctx(9, millis(1)), "hmi");

  EXPECT_TRUE(h.frontend_out.empty());
  EXPECT_FALSE(h.master.has_pending_write(OpId{9}));
  // Per the paper (§II-B): a WriteResult on DA *and* an EventUpdate on AE.
  ASSERT_EQ(h.hmi_out.size(), 2u);
  EXPECT_EQ(kind_of(h.hmi_out[0].second), ScadaMsgKind::kEventUpdate);
  EXPECT_EQ(kind_of(h.hmi_out[1].second), ScadaMsgKind::kWriteResult);
  EXPECT_EQ(std::get<WriteResult>(h.hmi_out[1].second).status,
            WriteStatus::kDenied);
  EXPECT_EQ(h.master.counters().writes_denied, 1u);
}

TEST(Master, FailedWriteResultRaisesEvent) {
  MasterHarness h;
  WriteValue write;
  write.ctx.op = OpId{5};
  write.item = h.item;
  write.value = Variant{1.0};
  h.master.handle(ScadaMessage{write}, h.ctx(5, millis(1)), "hmi");
  h.hmi_out.clear();

  WriteResult result;
  result.ctx.op = OpId{5};
  result.item = h.item;
  result.status = WriteStatus::kFailed;
  result.reason = "rtu exception 4";
  h.master.handle(ScadaMessage{result}, h.ctx(5, millis(2)), "frontend");

  ASSERT_EQ(h.hmi_out.size(), 2u);
  EXPECT_EQ(kind_of(h.hmi_out[0].second), ScadaMsgKind::kEventUpdate);
  EXPECT_EQ(std::get<EventUpdate>(h.hmi_out[0].second).event.code,
            "WRITE_FAILED");
  EXPECT_EQ(kind_of(h.hmi_out[1].second), ScadaMsgKind::kWriteResult);
}

TEST(Master, InjectTimeoutResultUnblocksWrite) {
  MasterHarness h;
  WriteValue write;
  write.ctx.op = OpId{5};
  write.item = h.item;
  write.value = Variant{1.0};
  h.master.handle(ScadaMessage{write}, h.ctx(5, millis(1)), "hmi");
  h.hmi_out.clear();

  h.master.inject_timeout_result(OpId{5});
  EXPECT_FALSE(h.master.has_pending_write(OpId{5}));
  ASSERT_EQ(h.hmi_out.size(), 2u);
  EXPECT_EQ(std::get<EventUpdate>(h.hmi_out[0].second).event.code,
            "WRITE_TIMEOUT");
  EXPECT_EQ(std::get<WriteResult>(h.hmi_out[1].second).status,
            WriteStatus::kTimeout);
  EXPECT_EQ(h.master.counters().write_timeouts, 1u);

  // Injecting again is a no-op (idempotent across the adapter group).
  h.hmi_out.clear();
  h.master.inject_timeout_result(OpId{5});
  EXPECT_TRUE(h.hmi_out.empty());
}

TEST(Master, DuplicateWriteResultIgnored) {
  MasterHarness h;
  WriteValue write;
  write.ctx.op = OpId{5};
  write.item = h.item;
  write.value = Variant{1.0};
  h.master.handle(ScadaMessage{write}, h.ctx(5, millis(1)), "hmi");
  WriteResult result;
  result.ctx.op = OpId{5};
  result.item = h.item;
  result.status = WriteStatus::kOk;
  h.master.handle(ScadaMessage{result}, h.ctx(5, millis(2)), "frontend");
  h.hmi_out.clear();
  h.master.handle(ScadaMessage{result}, h.ctx(5, millis(3)), "frontend");
  EXPECT_TRUE(h.hmi_out.empty());
}

TEST(Master, UnsubscribeStopsDelivery) {
  MasterHarness h;
  h.master.handle(ScadaMessage{Unsubscribe{Channel::kDa, ItemId{0}, "hmi"}},
                  MsgContext{}, "hmi");
  ItemUpdate update;
  update.item = h.item;
  update.value = Variant{1.0};
  h.master.handle(ScadaMessage{update}, h.ctx(1, millis(1)), "frontend");
  EXPECT_TRUE(h.hmi_out.empty());
}

TEST(Master, PerItemSubscriptionOnlyThatItem) {
  MasterHarness h;
  // Replace the wildcard subscription with a per-item one on a second item.
  h.master.handle(ScadaMessage{Unsubscribe{Channel::kDa, ItemId{0}, "hmi"}},
                  MsgContext{}, "hmi");
  ItemId other = h.master.add_item("tank/temp");
  h.master.handle(ScadaMessage{Subscribe{Channel::kDa, other, "hmi"}},
                  MsgContext{}, "hmi");

  ItemUpdate update;
  update.item = h.item;
  update.value = Variant{1.0};
  h.master.handle(ScadaMessage{update}, h.ctx(1, millis(1)), "frontend");
  EXPECT_TRUE(h.hmi_out.empty());

  update.item = other;
  h.master.handle(ScadaMessage{update}, h.ctx(2, millis(2)), "frontend");
  EXPECT_EQ(h.hmi_out.size(), 1u);
}

TEST(Master, SnapshotRestoreRoundTrip) {
  MasterHarness h;
  h.master.handlers(h.item).emplace<MonitorHandler>(
      MonitorHandler::Condition::kAbove, 10.0);
  ItemUpdate update;
  update.item = h.item;
  update.value = Variant{20.0};
  h.master.handle(ScadaMessage{update}, h.ctx(1, millis(1)), "frontend");
  WriteValue write;
  write.ctx.op = OpId{2};
  write.item = h.item;
  write.value = Variant{5.0};
  h.master.handle(ScadaMessage{write}, h.ctx(2, millis(2)), "hmi");

  Bytes snap = h.master.snapshot();
  crypto::Digest digest = h.master.state_digest();

  // Build an identically configured master and restore into it.
  MasterHarness other;
  other.master.handlers(other.item)
      .emplace<MonitorHandler>(MonitorHandler::Condition::kAbove, 10.0);
  other.master.restore(snap);
  EXPECT_EQ(other.master.state_digest(), digest);
  EXPECT_TRUE(other.master.has_pending_write(OpId{2}));
  EXPECT_EQ(other.master.storage().size(), 1u);
  EXPECT_DOUBLE_EQ(other.master.item(h.item)->value.as_double(), 20.0);
}

TEST(Master, DeterministicTimestampsVsLocalClock) {
  // Two baseline masters with skewed clocks diverge on event timestamps —
  // the paper's challenge (c). The deterministic masters do not.
  SimTime skew = millis(3);
  MasterOptions opt_a;
  opt_a.clock = [] { return millis(100); };
  MasterOptions opt_b;
  opt_b.clock = [skew] { return millis(100) + skew; };

  auto run = [](ScadaMaster& master) {
    ItemId item = master.add_item("x");
    master.handlers(item).emplace<MonitorHandler>(
        MonitorHandler::Condition::kAbove, 0.0);
    ItemUpdate update;
    update.item = item;
    update.value = Variant{1.0};
    master.handle(ScadaMessage{update}, MsgContext{}, "frontend");
    return master.state_digest();
  };

  ScadaMaster a((MasterOptions(opt_a))), b((MasterOptions(opt_b)));
  EXPECT_NE(run(a), run(b));  // local clocks => divergence

  MasterOptions det;
  det.deterministic = true;
  ScadaMaster c((MasterOptions(det))), d((MasterOptions(det)));
  auto run_det = [](ScadaMaster& master) {
    ItemId item = master.add_item("x");
    master.handlers(item).emplace<MonitorHandler>(
        MonitorHandler::Condition::kAbove, 0.0);
    ItemUpdate update;
    update.item = item;
    update.value = Variant{1.0};
    MsgContext ctx;
    ctx.timestamp = millis(55);
    ctx.op = OpId{1};
    master.handle(ScadaMessage{update}, ctx, "frontend");
    return master.state_digest();
  };
  EXPECT_EQ(run_det(c), run_det(d));  // agreed timestamps => identical state
}

TEST(Master, OrderSensitivityMotivatesTotalOrder) {
  // The same two messages applied in different orders leave different state
  // — why challenge (a)/(b) (multiple entry points, multi-threading) breaks
  // naive replication.
  MasterOptions det;
  det.deterministic = true;
  ScadaMaster a{MasterOptions(det)}, b{MasterOptions(det)};
  for (ScadaMaster* m : {&a, &b}) m->add_item("x");

  ItemUpdate u1;
  u1.item = ItemId{1};
  u1.value = Variant{1.0};
  ItemUpdate u2;
  u2.item = ItemId{1};
  u2.value = Variant{2.0};
  MsgContext c1;
  c1.op = OpId{1};
  c1.timestamp = millis(1);
  MsgContext c2;
  c2.op = OpId{2};
  c2.timestamp = millis(1);

  a.handle(ScadaMessage{u1}, c1, "frontend");
  a.handle(ScadaMessage{u2}, c2, "frontend");
  b.handle(ScadaMessage{u2}, c2, "frontend");
  b.handle(ScadaMessage{u1}, c1, "frontend");
  EXPECT_NE(a.state_digest(), b.state_digest());
}

// ---------------------------------------------------------------------------
// Frontend

TEST(Frontend, FieldUpdateEmitsItemUpdate) {
  Frontend frontend;
  ItemId item = frontend.add_item("pump/speed", Variant{0.0});
  std::vector<ScadaMessage> out;
  frontend.set_master_sink([&](const ScadaMessage& m) { out.push_back(m); });
  frontend.field_update(item, Variant{10.0}, Quality::kGood, millis(3));
  ASSERT_EQ(out.size(), 1u);
  const auto& update = std::get<ItemUpdate>(out[0]);
  EXPECT_EQ(update.item, item);
  EXPECT_DOUBLE_EQ(update.value.as_double(), 10.0);
  EXPECT_EQ(update.source_time, millis(3));
  EXPECT_NE(update.ctx.op.value, 0u);  // op minted
  EXPECT_DOUBLE_EQ(frontend.item(item)->value.as_double(), 10.0);
}

TEST(Frontend, OpIdsAreUniqueAndNamespaced) {
  Frontend frontend(FrontendOptions{.instance_id = 3});
  ItemId item = frontend.add_item("x");
  std::vector<OpId> ops;
  frontend.set_master_sink([&](const ScadaMessage& m) {
    ops.push_back(context_of(m).op);
  });
  frontend.field_update(item, Variant{1.0});
  frontend.field_update(item, Variant{2.0});
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_NE(ops[0], ops[1]);
  EXPECT_EQ(ops[0].value >> 40, 3u);
}

TEST(Frontend, WriteValueAppliesAndAcks) {
  Frontend frontend;
  ItemId item = frontend.add_item("valve", Variant{0.0});
  std::vector<ScadaMessage> out;
  frontend.set_master_sink([&](const ScadaMessage& m) { out.push_back(m); });

  WriteValue write;
  write.ctx.op = OpId{42};
  write.item = item;
  write.value = Variant{1.0};
  frontend.handle(ScadaMessage{write});

  ASSERT_EQ(out.size(), 1u);
  const auto& result = std::get<WriteResult>(out[0]);
  EXPECT_EQ(result.status, WriteStatus::kOk);
  EXPECT_EQ(result.ctx.op, OpId{42});  // context preserved end-to-end
  EXPECT_DOUBLE_EQ(frontend.item(item)->value.as_double(), 1.0);
}

TEST(Frontend, UnknownItemWriteFails) {
  Frontend frontend;
  std::vector<ScadaMessage> out;
  frontend.set_master_sink([&](const ScadaMessage& m) { out.push_back(m); });
  WriteValue write;
  write.ctx.op = OpId{1};
  write.item = ItemId{77};
  frontend.handle(ScadaMessage{write});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(std::get<WriteResult>(out[0]).status, WriteStatus::kFailed);
}

TEST(Frontend, FieldWriterFailurePropagates) {
  Frontend frontend;
  ItemId item = frontend.add_item("valve", Variant{0.0});
  frontend.set_field_writer(
      [](OpId, ItemId, const Variant&,
         std::function<void(bool, std::string)> done) {
        done(false, "device offline");
      });
  std::vector<ScadaMessage> out;
  frontend.set_master_sink([&](const ScadaMessage& m) { out.push_back(m); });
  WriteValue write;
  write.ctx.op = OpId{1};
  write.item = item;
  write.value = Variant{1.0};
  frontend.handle(ScadaMessage{write});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(std::get<WriteResult>(out[0]).status, WriteStatus::kFailed);
  EXPECT_EQ(std::get<WriteResult>(out[0]).reason, "device offline");
  // Value untouched on failure.
  EXPECT_DOUBLE_EQ(frontend.item(item)->value.as_double(), 0.0);
}

// ---------------------------------------------------------------------------
// HMI

TEST(Hmi, SubscribesAndMirrorsUpdates) {
  Hmi hmi;
  std::vector<ScadaMessage> out;
  hmi.set_master_sink([&](const ScadaMessage& m) { out.push_back(m); });
  hmi.subscribe_all();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(std::get<Subscribe>(out[0]).channel, Channel::kDa);
  EXPECT_EQ(std::get<Subscribe>(out[1]).channel, Channel::kAe);

  ItemUpdate update;
  update.item = ItemId{1};
  update.value = Variant{9.0};
  update.ctx.timestamp = millis(4);
  hmi.handle(ScadaMessage{update});
  EXPECT_EQ(hmi.counters().updates_received, 1u);
  ASSERT_NE(hmi.item(ItemId{1}), nullptr);
  EXPECT_DOUBLE_EQ(hmi.item(ItemId{1})->value.as_double(), 9.0);
  EXPECT_EQ(hmi.item(ItemId{1})->timestamp, millis(4));
}

TEST(Hmi, WriteLifecycle) {
  Hmi hmi;
  std::vector<ScadaMessage> out;
  hmi.set_master_sink([&](const ScadaMessage& m) { out.push_back(m); });

  WriteResult received;
  OpId op = hmi.write(ItemId{2}, Variant{5.0},
                      [&](const WriteResult& r) { received = r; });
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(std::get<WriteValue>(out[0]).ctx.op, op);
  EXPECT_EQ(hmi.pending_writes(), 1u);

  WriteResult result;
  result.ctx.op = op;
  result.item = ItemId{2};
  result.status = WriteStatus::kOk;
  hmi.handle(ScadaMessage{result});
  EXPECT_EQ(hmi.pending_writes(), 0u);
  EXPECT_EQ(received.status, WriteStatus::kOk);
  EXPECT_EQ(hmi.counters().writes_ok, 1u);

  // A duplicate result does not fire the callback twice.
  hmi.handle(ScadaMessage{result});
  EXPECT_EQ(hmi.counters().writes_ok, 1u);
}

TEST(Hmi, CountsResultStatuses) {
  Hmi hmi;
  hmi.set_master_sink([](const ScadaMessage&) {});
  for (WriteStatus status :
       {WriteStatus::kDenied, WriteStatus::kTimeout, WriteStatus::kFailed}) {
    OpId op = hmi.write(ItemId{1}, Variant{1.0});
    WriteResult result;
    result.ctx.op = op;
    result.status = status;
    hmi.handle(ScadaMessage{result});
  }
  EXPECT_EQ(hmi.counters().writes_denied, 1u);
  EXPECT_EQ(hmi.counters().writes_timeout, 1u);
  EXPECT_EQ(hmi.counters().writes_failed, 1u);
}

TEST(Hmi, EventLogAccumulates) {
  Hmi hmi;
  int callbacks = 0;
  hmi.set_event_callback([&](const EventUpdate&) { ++callbacks; });
  for (int i = 0; i < 3; ++i) {
    EventUpdate event;
    event.event.code = "E" + std::to_string(i);
    hmi.handle(ScadaMessage{event});
  }
  EXPECT_EQ(hmi.event_log().size(), 3u);
  EXPECT_EQ(callbacks, 3);
  EXPECT_EQ(hmi.counters().events_received, 3u);
}

}  // namespace
}  // namespace ss::scada
