// Capstone scenario test: a small utility with both field protocols
// (Modbus-polled and IEC-104 event-driven RTUs), alarms, handler
// interlocks, the historian, and a rolling fault storm — crash, Byzantine,
// recovery, dropped replies — while operators keep reading and writing.
// The system must stay live, the HMI must see only voted truth, and all
// correct Masters must remain byte-identical throughout.
#include <gtest/gtest.h>

#include "core/replicated_deployment.h"
#include "rtu/driver.h"
#include "rtu/iec104_device.h"
#include "rtu/iec104_driver.h"
#include "rtu/rtu.h"
#include "rtu/sensors.h"

namespace ss::core {
namespace {

struct Utility {
  ReplicatedDeployment system;
  rtu::Rtu modbus_rtu;
  rtu::RtuDriver modbus_driver;
  rtu::Iec104Device iec_device;
  rtu::Iec104Driver iec_driver;
  ItemId tank_level;    // modbus, polled
  ItemId pump_speed;    // modbus, writable
  ItemId feeder_power;  // iec104, spontaneous
  ItemId feeder_limit;  // iec104, setpoint

  static ReplicatedOptions options() {
    ReplicatedOptions opt;
    opt.costs = sim::CostModel::zero();
    opt.costs.hop_latency = micros(50);
    opt.write_timeout = millis(500);
    return opt;
  }

  Utility()
      : system(options()),
        modbus_rtu(system.net(), "rtu/plant",
                   rtu::RtuOptions{.sample_period = millis(100)}),
        modbus_driver(system.net(), system.frontend(),
                      rtu::DriverOptions{.poll_period = millis(100)}),
        iec_device(system.net(), "iec/substation",
                   rtu::Iec104DeviceOptions{.scan_period = millis(150)}),
        iec_driver(system.net(), system.frontend(),
                   rtu::Iec104DriverOptions{}) {
    // NOTE: one Frontend serves both protocols, but only one driver can own
    // the frontend's field writer; route writable points through the Modbus
    // driver and wire the IEC setpoint explicitly below.
    modbus_rtu.add_sensor(0, std::make_unique<rtu::RampSignal>(10.0, 2.0),
                          rtu::RegisterScaling{0.1, 0.0});
    modbus_rtu.add_actuator(1, 1000);
    iec_device.add_measurement(1,
                               std::make_unique<rtu::RampSignal>(50.0, 5.0));

    tank_level = system.add_point("plant/tank/level");
    pump_speed = system.add_point("plant/pump/speed",
                                  scada::Variant{std::int64_t{1000}});
    feeder_power = system.add_point("grid/feeder/power");
    feeder_limit = system.add_point("grid/feeder/limit",
                                    scada::Variant{100.0});

    modbus_driver.bind_sensor("rtu/plant", 0, rtu::RegisterScaling{0.1, 0.0},
                              tank_level);
    modbus_driver.bind_actuator("rtu/plant", 1,
                                rtu::RegisterScaling{1.0, 0.0}, pump_speed);
    iec_driver.bind_measurement("iec/substation", 1, feeder_power);
    // feeder_limit writes go to the IEC device: chain a second field writer
    // by hand (the Modbus driver owns the frontend's default one).
    iec_driver.bind_setpoint("iec/substation", 2, feeder_limit);
    iec_device.add_setpoint(2, 100.0);

    system.configure_masters([this](scada::ScadaMaster& master) {
      master.handlers(tank_level)
          .emplace<scada::MonitorHandler>(
              scada::MonitorHandler::Condition::kAbove, 95.0,
              scada::Severity::kCritical, /*edge_triggered=*/true);
      master.handlers(pump_speed).emplace<scada::BlockHandler>(0.0, 3000.0);
    });
  }

  void start() {
    system.start();
    modbus_rtu.start();
    modbus_driver.start();
    iec_device.start();
    // The IEC driver must not steal the frontend field writer installed by
    // the modbus driver; re-install a combined one.
    iec_driver.start();
    install_combined_field_writer();
    system.run_until(system.loop().now() + millis(300));
  }

  void install_combined_field_writer();

  /// Convergence can only be judged with the input stream paused: while
  /// telemetry flows, replicas are legitimately a decision or two apart.
  bool converged_after_quiesce() {
    system.net().set_policy(kFrontendEndpoint, kProxyFrontendEndpoint,
                            sim::LinkPolicy::cut_link());
    system.run_until(system.loop().now() + seconds(3));
    bool converged = system.masters_converged();
    system.net().clear_policy(kFrontendEndpoint, kProxyFrontendEndpoint);
    return converged;
  }

  bool write_ok(ItemId item, double value, SimTime wait = seconds(3)) {
    bool ok = false;
    bool done = false;
    system.hmi().write(item, scada::Variant{value},
                       [&](const scada::WriteResult& result) {
                         done = true;
                         ok = result.status == scada::WriteStatus::kOk;
                       });
    system.run_until(system.loop().now() + wait);
    return done && ok;
  }
};

void Utility::install_combined_field_writer() {
  // Dispatch writes by item: pump -> Modbus path, feeder limit -> IEC path.
  // Both drivers expose their logic through the frontend's single field
  // writer, so the last installer wins; compose them explicitly.
  system.frontend().set_field_writer(
      [this](OpId, ItemId item, const scada::Variant& value,
             std::function<void(bool, std::string)> done) {
        if (item == feeder_limit) {
          // Send the IEC command through the driver's endpoint directly.
          rtu::Iec104Asdu command;
          command.type = rtu::Iec104Type::kSetpointFloat;
          command.cause = rtu::Iec104Cot::kActivation;
          command.ioa = 2;
          command.value = value.to_double_or_zero();
          // The confirmation goes to the IEC driver, which no longer owns
          // the pending-callback; emulate a minimal inline wait instead.
          system.net().send("frontend/iec104", "iec/substation",
                            command.encode());
          // The device applies synchronously on receipt; confirm after one
          // round trip of simulated latency.
          system.loop().schedule(millis(5), [done = std::move(done)] {
            done(true, "");
          });
          return;
        }
        // Modbus path: replicate the RtuDriver's write logic via a fresh
        // transaction on its endpoint is intrusive; instead apply through
        // the modbus RTU register map directly with a simulated round trip.
        system.loop().schedule(millis(5), [this, item, value,
                                           done = std::move(done)] {
          if (item == pump_speed) {
            // emulate FC 0x06 through the network for realism
            rtu::ModbusRequest request;
            request.transaction = 999;
            request.function = rtu::FunctionCode::kWriteSingleRegister;
            request.address = 1;
            request.values = {
                rtu::RegisterScaling{1.0, 0.0}.to_raw(
                    value.to_double_or_zero())};
            system.net().send("scenario/writer", "rtu/plant",
                              request.encode());
            done(true, "");
            return;
          }
          done(false, "unknown item");
        });
      });
}

TEST(Scenario, UtilityRidesThroughRollingFaultStorm) {
  Utility utility;
  utility.start();

  // Phase 0: healthy operation — telemetry from both protocols arrives.
  utility.system.run_until(utility.system.loop().now() + seconds(3));
  std::uint64_t updates0 = utility.system.hmi().counters().updates_received;
  EXPECT_GT(updates0, 10u);
  ASSERT_NE(utility.system.hmi().item(utility.tank_level), nullptr);
  ASSERT_NE(utility.system.hmi().item(utility.feeder_power), nullptr);

  // Operator writes work on both paths.
  EXPECT_TRUE(utility.write_ok(utility.pump_speed, 1500));
  EXPECT_TRUE(utility.write_ok(utility.feeder_limit, 120));
  EXPECT_EQ(utility.modbus_rtu.register_value(1), 1500u);
  EXPECT_DOUBLE_EQ(utility.iec_device.point_value(2), 120.0);

  // Interlock: out-of-range pump write is denied deterministically.
  {
    bool done = false;
    scada::WriteStatus status = scada::WriteStatus::kOk;
    utility.system.hmi().write(utility.pump_speed, scada::Variant{9000.0},
                               [&](const scada::WriteResult& result) {
                                 done = true;
                                 status = result.status;
                               });
    utility.system.run_until(utility.system.loop().now() + seconds(2));
    EXPECT_TRUE(done);
    EXPECT_EQ(status, scada::WriteStatus::kDenied);
  }

  // Phase 1: a replica turns Byzantine. Service unaffected.
  utility.system.set_byzantine(2, bft::ByzantineMode::kCorruptReplies);
  utility.system.run_until(utility.system.loop().now() + seconds(3));
  std::uint64_t updates1 = utility.system.hmi().counters().updates_received;
  EXPECT_GT(updates1, updates0);
  EXPECT_TRUE(utility.write_ok(utility.pump_speed, 1600));

  // Phase 2: the intruder is reimaged; then the leader crashes.
  utility.system.set_byzantine(2, bft::ByzantineMode::kNone);
  utility.system.crash_replica(0);
  utility.system.run_until(utility.system.loop().now() + seconds(6));
  EXPECT_TRUE(utility.write_ok(utility.pump_speed, 1700, seconds(8)));

  // Phase 3: the crashed leader comes back and catches up.
  utility.system.recover_replica(0);
  utility.system.run_until(utility.system.loop().now() + seconds(5));
  EXPECT_GE(utility.system.replica(0).stats().state_transfers, 1u);
  EXPECT_TRUE(utility.converged_after_quiesce());

  // Phase 4: the alarm threshold is eventually crossed by the rising tank.
  utility.system.run_until(utility.system.loop().now() + seconds(30));
  bool alarm_seen = false;
  for (const scada::Event& event : utility.system.hmi().event_log()) {
    if (event.code == "MONITOR_TRIGGER") alarm_seen = true;
  }
  EXPECT_TRUE(alarm_seen);

  // Epilogue: archives identical everywhere, no write left pending.
  EXPECT_TRUE(utility.converged_after_quiesce());
  for (std::uint32_t i = 0; i < utility.system.n(); ++i) {
    EXPECT_EQ(utility.system.master(i).pending_write_count(), 0u);
  }
  EXPECT_GT(utility.system.master(1).historian().total_samples(), 20u);
}

}  // namespace
}  // namespace ss::core
