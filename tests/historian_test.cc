// Unit + integration tests for the Historian (value archive) and its
// replicated query path.
#include <gtest/gtest.h>

#include "core/replicated_deployment.h"
#include "core/requests.h"
#include "scada/historian.h"
#include "scada/master.h"

namespace ss::scada {
namespace {

TEST(Historian, RecordsAndQueriesRanges) {
  Historian historian;
  for (int i = 0; i < 10; ++i) {
    historian.record(ItemId{1}, millis(i * 10), Variant{double(i)},
                     Quality::kGood);
  }
  EXPECT_EQ(historian.total_samples(), 10u);
  EXPECT_EQ(historian.items_tracked(), 1u);

  std::vector<Sample> mid = historian.range(ItemId{1}, millis(20), millis(50));
  ASSERT_EQ(mid.size(), 4u);
  EXPECT_DOUBLE_EQ(mid.front().value.as_double(), 2.0);
  EXPECT_DOUBLE_EQ(mid.back().value.as_double(), 5.0);

  EXPECT_TRUE(historian.range(ItemId{2}, 0, seconds(1)).empty());
}

TEST(Historian, TailAndLatest) {
  Historian historian;
  EXPECT_FALSE(historian.latest(ItemId{1}).has_value());
  for (int i = 0; i < 5; ++i) {
    historian.record(ItemId{1}, millis(i), Variant{double(i)}, Quality::kGood);
  }
  std::vector<Sample> tail = historian.tail(ItemId{1}, 3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_DOUBLE_EQ(tail[0].value.as_double(), 2.0);
  EXPECT_DOUBLE_EQ(tail[2].value.as_double(), 4.0);
  EXPECT_DOUBLE_EQ(historian.latest(ItemId{1})->value.as_double(), 4.0);
  // Tail larger than the series returns everything.
  EXPECT_EQ(historian.tail(ItemId{1}, 100).size(), 5u);
}

TEST(Historian, CapacityEvictsOldest) {
  Historian historian(3);
  for (int i = 0; i < 10; ++i) {
    historian.record(ItemId{1}, millis(i), Variant{double(i)}, Quality::kGood);
  }
  EXPECT_EQ(historian.total_samples(), 10u);
  std::vector<Sample> all = historian.tail(ItemId{1}, 100);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_DOUBLE_EQ(all[0].value.as_double(), 7.0);
}

TEST(Historian, Aggregates) {
  Historian historian;
  for (int i = 1; i <= 4; ++i) {
    historian.record(ItemId{1}, millis(i), Variant{double(i * 10)},
                     Quality::kGood);
  }
  // Non-numeric samples are skipped by aggregation.
  historian.record(ItemId{1}, millis(5), Variant{std::string("n/a")},
                   Quality::kBad);
  Aggregate agg = historian.aggregate(ItemId{1}, 0, seconds(1));
  EXPECT_EQ(agg.count, 4u);
  EXPECT_DOUBLE_EQ(agg.min, 10.0);
  EXPECT_DOUBLE_EQ(agg.max, 40.0);
  EXPECT_DOUBLE_EQ(agg.mean, 25.0);

  Aggregate empty = historian.aggregate(ItemId{2}, 0, seconds(1));
  EXPECT_EQ(empty.count, 0u);
}

TEST(Historian, EncodeDecodeRoundTrip) {
  Historian historian;
  historian.record(ItemId{1}, millis(1), Variant{1.5}, Quality::kGood);
  historian.record(ItemId{2}, millis(2), Variant{std::int64_t{7}},
                   Quality::kUncertain);
  Writer w;
  historian.encode(w);
  Historian restored;
  Reader r(w.bytes());
  restored.decode(r);
  EXPECT_EQ(restored.total_samples(), 2u);
  EXPECT_EQ(restored.latest(ItemId{1})->value, Variant{1.5});
  EXPECT_EQ(restored.latest(ItemId{2})->quality, Quality::kUncertain);

  // Deterministic re-encode (replica digests depend on it).
  Writer w2;
  restored.encode(w2);
  EXPECT_EQ(w.bytes(), w2.bytes());
}

TEST(Historian, MasterRecordsAcceptedUpdates) {
  MasterOptions options;
  options.deterministic = true;
  ScadaMaster master{std::move(options)};
  ItemId item = master.add_item("x");
  master.handlers(item).emplace<DeadbandHandler>(5.0);

  auto update = [&](double value, std::uint64_t op) {
    ItemUpdate msg;
    msg.item = item;
    msg.value = Variant{value};
    MsgContext ctx;
    ctx.op = OpId{op};
    ctx.timestamp = millis(op);
    master.handle(ScadaMessage{msg}, ctx, "frontend");
  };
  update(0.0, 1);
  update(1.0, 2);  // inside deadband: suppressed, not archived
  update(10.0, 3);

  EXPECT_EQ(master.historian().total_samples(), 2u);
  auto tail = master.historian().tail(item, 10);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_DOUBLE_EQ(tail[1].value.as_double(), 10.0);
  EXPECT_EQ(tail[1].timestamp, millis(3));
}

}  // namespace
}  // namespace ss::scada

namespace ss::core {
namespace {

TEST(HistorianReplicated, ArchivesIdenticalAcrossReplicasAndQueryable) {
  ReplicatedOptions options;
  options.costs = sim::CostModel::zero();
  options.costs.hop_latency = micros(50);
  ReplicatedDeployment system(options);
  ItemId item = system.add_point("trend/sensor");
  system.start();

  for (int i = 1; i <= 8; ++i) {
    system.frontend().field_update(item, scada::Variant{double(i)});
    system.run_until(system.loop().now() + millis(40));
  }
  system.run_until(system.loop().now() + seconds(1));

  // Replicated archives are byte-identical (deterministic timestamps).
  for (std::uint32_t i = 0; i < system.n(); ++i) {
    EXPECT_EQ(system.master(i).historian().total_samples(), 8u);
  }
  EXPECT_TRUE(system.masters_converged());

  // Query the archive through the adapter's read-only path.
  Bytes reply = system.adapter(0).execute_unordered(
      ClientId{1}, encode_query(QueryKind::kHistoryTail, item, 3));
  Reader r(reply);
  std::uint64_t n = r.varint();
  ASSERT_EQ(n, 3u);
  scada::Sample first = scada::Sample::decode(r);
  EXPECT_DOUBLE_EQ(first.value.as_double(), 6.0);

  Bytes agg_reply = system.adapter(0).execute_unordered(
      ClientId{1}, encode_query(QueryKind::kHistoryAggregate, item));
  Reader ar(agg_reply);
  EXPECT_EQ(ar.varint(), 8u);   // count
  EXPECT_DOUBLE_EQ(ar.f64(), 1.0);  // min
  EXPECT_DOUBLE_EQ(ar.f64(), 8.0);  // max
  EXPECT_DOUBLE_EQ(ar.f64(), 4.5);  // mean
}

}  // namespace
}  // namespace ss::core
