// Unit tests for the BFT ClientProxy: voting edge cases, retransmission,
// failure reporting, and push delivery — against scripted fake replicas so
// each behaviour is pinned down in isolation.
#include <gtest/gtest.h>

#include "bft/client.h"
#include "bft/messages.h"
#include "crypto/keychain.h"
#include "sim/event_loop.h"
#include "sim/network.h"

namespace ss::bft {
namespace {

// A scripted replica endpoint: records requests, replies on demand.
struct FakeReplica {
  sim::Network& net;
  crypto::Keychain& keys;
  ReplicaId id;
  std::string endpoint;
  std::vector<ClientRequest> requests;
  std::uint64_t next_push_seq = 1;

  FakeReplica(sim::Network& net_in, crypto::Keychain& keys_in, ReplicaId id_in)
      : net(net_in), keys(keys_in), id(id_in),
        endpoint(crypto::replica_principal(id)) {
    net.attach(endpoint, [this](sim::Message m) {
      Envelope env = Envelope::decode(m.payload);
      if (env.type == MsgType::kClientRequest) {
        requests.push_back(ClientRequest::decode(env.body));
      }
    });
  }
  ~FakeReplica() { net.detach(endpoint); }

  Bytes mac_material(MsgType type, const std::string& to, const Bytes& body) {
    return envelope_mac_material(type, endpoint, to, /*epoch=*/0, body);
  }

  void reply(ClientId client, RequestId seq, Bytes payload) {
    ClientReply r;
    r.replica = id;
    r.client = client;
    r.sequence = seq;
    r.cid = ConsensusId{1};
    r.payload = std::move(payload);
    std::string to = crypto::client_principal(client);
    Envelope env;
    env.type = MsgType::kClientReply;
    env.sender = endpoint;
    env.body = r.encode();
    env.mac = keys.mac(endpoint, to,
                       mac_material(MsgType::kClientReply, to, env.body));
    net.send(endpoint, to, env.encode());
  }

  void push(ClientId client, Bytes payload) {
    ServerPush p;
    p.replica = id;
    p.client = client;
    p.seq = next_push_seq++;
    p.payload = std::move(payload);
    std::string to = crypto::client_principal(client);
    Envelope env;
    env.type = MsgType::kServerPush;
    env.sender = endpoint;
    env.body = p.encode();
    env.mac = keys.mac(endpoint, to,
                       mac_material(MsgType::kServerPush, to, env.body));
    net.send(endpoint, to, env.encode());
  }
};

struct Harness {
  sim::EventLoop loop;
  sim::Network net{loop, 0, 0};
  crypto::Keychain keys{"client-test"};
  GroupConfig group = GroupConfig::for_f(1);
  std::vector<std::unique_ptr<FakeReplica>> replicas;

  Harness() {
    for (ReplicaId id : group.replica_ids()) {
      replicas.push_back(std::make_unique<FakeReplica>(net, keys, id));
    }
  }

  /// Advances virtual time a little — enough for in-flight deliveries but
  /// not for the client's retransmission timers to churn.
  void step() { loop.run_until(loop.now() + millis(5)); }
};

TEST(ClientProxyTest, RequestsGoToAllReplicasWithFullAuthenticators) {
  Harness h;
  ClientProxy client(h.net, h.group, ClientId{1}, h.keys);
  client.invoke_ordered(Bytes{1, 2, 3});
  h.step();
  for (auto& replica : h.replicas) {
    ASSERT_EQ(replica->requests.size(), 1u);
    EXPECT_EQ(replica->requests[0].payload, (Bytes{1, 2, 3}));
    EXPECT_EQ(replica->requests[0].auth.size(), 4u);
  }
}

TEST(ClientProxyTest, FPlusOneMatchingRepliesComplete) {
  Harness h;
  ClientProxy client(h.net, h.group, ClientId{1}, h.keys);
  int completions = 0;
  Bytes voted;
  RequestId seq = client.invoke_ordered(Bytes{9}, [&](Bytes payload) {
    ++completions;
    voted = std::move(payload);
  });
  h.step();

  h.replicas[0]->reply(ClientId{1}, seq, Bytes{42});
  h.step();
  EXPECT_EQ(completions, 0);  // one reply is not enough

  h.replicas[1]->reply(ClientId{1}, seq, Bytes{42});
  h.step();
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(voted, (Bytes{42}));

  // Stragglers after completion change nothing.
  h.replicas[2]->reply(ClientId{1}, seq, Bytes{42});
  h.step();
  EXPECT_EQ(completions, 1);
}

TEST(ClientProxyTest, DivergentRepliesDoNotVote) {
  Harness h;
  ClientProxy client(h.net, h.group, ClientId{1}, h.keys);
  int completions = 0;
  RequestId seq = client.invoke_ordered(Bytes{9},
                                        [&](Bytes) { ++completions; });
  h.step();

  // Two Byzantine-looking, disagreeing replies: no f+1 match.
  h.replicas[0]->reply(ClientId{1}, seq, Bytes{1});
  h.replicas[1]->reply(ClientId{1}, seq, Bytes{2});
  h.step();
  EXPECT_EQ(completions, 0);

  // A third reply matching one of them completes.
  h.replicas[2]->reply(ClientId{1}, seq, Bytes{2});
  h.step();
  EXPECT_EQ(completions, 1);
}

TEST(ClientProxyTest, OneReplicaCannotVoteTwice) {
  Harness h;
  ClientProxy client(h.net, h.group, ClientId{1}, h.keys);
  int completions = 0;
  RequestId seq = client.invoke_ordered(Bytes{9},
                                        [&](Bytes) { ++completions; });
  h.step();
  h.replicas[0]->reply(ClientId{1}, seq, Bytes{5});
  h.replicas[0]->reply(ClientId{1}, seq, Bytes{5});
  h.replicas[0]->reply(ClientId{1}, seq, Bytes{5});
  h.step();
  EXPECT_EQ(completions, 0);  // still only one distinct replica
}

TEST(ClientProxyTest, RetransmitsUntilQuorum) {
  Harness h;
  ClientOptions options;
  options.reply_timeout = millis(100);
  // Pin the fixed-period policy's cadence contract; the adaptive policy's
  // backoff schedule is covered by tests/backoff_test.cc.
  options.adaptive = false;
  ClientProxy client(h.net, h.group, ClientId{1}, h.keys, options);
  client.invoke_ordered(Bytes{9});
  h.loop.run_until(millis(450));
  // Initial send + 4 retransmissions.
  EXPECT_GE(h.replicas[0]->requests.size(), 4u);
  EXPECT_GE(client.stats().retransmissions, 3u);
}

TEST(ClientProxyTest, AdaptiveRetransmitsBackOffButNeverStop) {
  Harness h;
  ClientOptions options;
  options.reply_timeout = millis(100);
  options.max_rto = millis(400);
  options.jitter = 0.0;
  ClientProxy client(h.net, h.group, ClientId{1}, h.keys, options);
  client.invoke_ordered(Bytes{9});
  // No replies at all: retransmits at ~100/300/700/1100/1500ms (doubling to
  // the 400ms cap) — still live, but a fraction of the fixed schedule.
  h.loop.run_until(millis(1600));
  EXPECT_GE(client.stats().retransmissions, 4u);
  EXPECT_LT(client.stats().retransmissions, 15u);  // fixed would be ~15
}

TEST(ClientProxyTest, FailureHandlerFiresAfterMaxRetries) {
  Harness h;
  ClientOptions options;
  options.reply_timeout = millis(50);
  options.max_retries = 3;
  ClientProxy client(h.net, h.group, ClientId{1}, h.keys, options);
  RequestId failed{0};
  client.set_failure_handler([&](RequestId seq) { failed = seq; });
  RequestId seq = client.invoke_ordered(Bytes{9});
  h.loop.run_until(seconds(1));
  EXPECT_EQ(failed, seq);
  EXPECT_EQ(client.stats().failed, 1u);
}

TEST(ClientProxyTest, PushesDeliveredPerReplica) {
  Harness h;
  ClientProxy client(h.net, h.group, ClientId{1}, h.keys);
  std::vector<std::pair<std::uint32_t, Bytes>> pushes;
  client.set_push_handler(
      [&](ReplicaId replica, std::uint64_t seq, Bytes payload) {
        EXPECT_GT(seq, 0u);
        pushes.emplace_back(replica.value, std::move(payload));
      });
  h.replicas[2]->push(ClientId{1}, Bytes{7, 7});
  h.replicas[3]->push(ClientId{1}, Bytes{8});
  h.step();
  ASSERT_EQ(pushes.size(), 2u);
  EXPECT_EQ(pushes[0].first, 2u);
  EXPECT_EQ(pushes[0].second, (Bytes{7, 7}));
  EXPECT_EQ(pushes[1].first, 3u);
}

TEST(ClientProxyTest, MisattributedRepliesDropped) {
  Harness h;
  ClientProxy client(h.net, h.group, ClientId{1}, h.keys);
  int completions = 0;
  RequestId seq = client.invoke_ordered(Bytes{9},
                                        [&](Bytes) { ++completions; });
  h.step();

  // Replica 0 sends replies claiming to be replicas 0, 1, 2: the sender
  // check pins the reply's replica id to the authenticated envelope sender.
  for (std::uint32_t fake = 0; fake < 3; ++fake) {
    ClientReply r;
    r.replica = ReplicaId{fake};
    r.client = ClientId{1};
    r.sequence = seq;
    r.payload = Bytes{1};
    Envelope env;
    env.type = MsgType::kClientReply;
    env.sender = "replica/0";
    env.body = r.encode();
    env.mac = h.keys.mac(
        "replica/0", "client/1",
        h.replicas[0]->mac_material(MsgType::kClientReply, "client/1",
                                    env.body));
    h.net.send("replica/0", "client/1", env.encode());
  }
  h.step();
  EXPECT_EQ(completions, 0);  // only the honest self-attributed one counted
}

TEST(ClientProxyTest, ConcurrentRequestsVoteIndependently) {
  Harness h;
  ClientProxy client(h.net, h.group, ClientId{1}, h.keys);
  std::vector<std::uint64_t> completed;
  RequestId a = client.invoke_ordered(Bytes{1}, [&](Bytes) {
    completed.push_back(1);
  });
  RequestId b = client.invoke_ordered(Bytes{2}, [&](Bytes) {
    completed.push_back(2);
  });
  h.step();

  h.replicas[0]->reply(ClientId{1}, b, Bytes{20});
  h.replicas[1]->reply(ClientId{1}, b, Bytes{20});
  h.replicas[0]->reply(ClientId{1}, a, Bytes{10});
  h.replicas[1]->reply(ClientId{1}, a, Bytes{10});
  h.step();
  EXPECT_EQ(completed, (std::vector<std::uint64_t>{2, 1}));
}

}  // namespace
}  // namespace ss::bft
