// Tests for the ordered worker-pool runner (core/runner.h): the ordering
// invariant under randomized task durations, shutdown with queued work,
// exception propagation, and the load-bearing guarantee of PR 6 — a
// replica fed the same message trace produces byte-identical output
// through InlineRunner and PooledOrderedRunner.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bft/client.h"
#include "bft/replica.h"
#include "common/config.h"
#include "common/rng.h"
#include "core/runner.h"
#include "crypto/keychain.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "sim/event_loop.h"
#include "sim/network.h"
#include "tests/bft_harness.h"

namespace ss::core {
namespace {

void spin_for(std::uint64_t iterations) {
  volatile std::uint64_t sink = 0;
  for (std::uint64_t k = 0; k < iterations; ++k) sink = sink + 1;
}

RunnerOptions quiet() {
  RunnerOptions o;
  o.metrics = false;  // keep the global obs registry out of property tests
  return o;
}

// --------------------------------------------------------------------------
// ordering property

void ordered_completion(std::uint32_t workers) {
  PooledOrderedRunner runner(workers, quiet());
  constexpr int kTasks = 10000;
  std::vector<int> order;
  order.reserve(kTasks);
  Rng rng(0x5EED0 + workers);
  for (int i = 0; i < kTasks; ++i) {
    // Randomized per-task duration: later-submitted tasks routinely finish
    // before earlier ones on the workers, so delivery order is entirely the
    // re-sequencing buffer's doing.
    const std::uint64_t spin = rng.below(2000);
    runner.submit([i, spin, &order]() -> Runner::Solo {
      spin_for(spin);
      return [i, &order] { order.push_back(i); };
    });
    // Interleave non-blocking drains with submissions, as the poll loop does.
    if (i % 97 == 0) runner.drain();
  }
  runner.drain_until_idle();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kTasks));
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_EQ(order[i], i) << "solo delivered out of submission order";
  }
  EXPECT_TRUE(runner.idle());
  EXPECT_EQ(runner.submitted(), static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(runner.delivered(), static_cast<std::uint64_t>(kTasks));
}

TEST(PooledOrderedRunner, OrderedCompletionOneWorker) { ordered_completion(1); }
TEST(PooledOrderedRunner, OrderedCompletionTwoWorkers) { ordered_completion(2); }
TEST(PooledOrderedRunner, OrderedCompletionEightWorkers) {
  ordered_completion(8);
}

TEST(SpinOrderedRunner, OrderedCompletion) {
  SpinOrderedRunner runner(2, quiet());
  constexpr int kTasks = 2000;
  std::vector<int> order;
  Rng rng(0xAB1E);
  for (int i = 0; i < kTasks; ++i) {
    const std::uint64_t spin = rng.below(500);
    runner.submit([i, spin, &order]() -> Runner::Solo {
      spin_for(spin);
      return [i, &order] { order.push_back(i); };
    });
  }
  runner.drain_until_idle();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kTasks));
  for (int i = 0; i < kTasks; ++i) ASSERT_EQ(order[i], i);
}

TEST(PooledOrderedRunner, SoloMayResubmit) {
  PooledOrderedRunner runner(2, quiet());
  std::vector<int> order;
  // Chain: each solo submits the next task. A resubmitted task is ordered
  // after everything submitted before it — exactly how dispatch-triggered
  // sends re-enter the runner.
  std::function<void(int)> chain = [&](int i) {
    runner.submit([i, &order, &chain]() -> Runner::Solo {
      return [i, &order, &chain] {
        order.push_back(i);
        if (i < 9) chain(i + 1);
      };
    });
  };
  chain(0);
  runner.drain_until_idle();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(InlineRunner, RunsBothHalvesSynchronously) {
  InlineRunner runner;
  std::vector<std::string> log;
  runner.submit([&log]() -> Runner::Solo {
    log.push_back("task");
    return [&log] { log.push_back("solo"); };
  });
  EXPECT_EQ(log, (std::vector<std::string>{"task", "solo"}));
  EXPECT_TRUE(runner.idle());
  EXPECT_EQ(runner.notify_fd(), -1);
}

// --------------------------------------------------------------------------
// shutdown

TEST(PooledOrderedRunner, ShutdownWithQueuedTasksJoinsAndDiscards) {
  std::atomic<int> tasks_ran{0};
  int solos_ran = 0;
  {
    PooledOrderedRunner runner(2, quiet());
    for (int i = 0; i < 200; ++i) {
      runner.submit([&tasks_ran, &solos_ran]() -> Runner::Solo {
        spin_for(20000);
        ++tasks_ran;
        return [&solos_ran] { ++solos_ran; };
      });
    }
    // Destroyed with most of the queue unstarted and nothing drained. The
    // destructor must stop the workers, join them (the test would hang
    // otherwise), and never run a queued task after the object is gone —
    // tasks_ran settles at its final value before the scope ends.
  }
  int after = tasks_ran.load();
  EXPECT_LE(after, 200);
  EXPECT_EQ(solos_ran, 0) << "solos must only run in drain()";
  spin_for(100000);
  EXPECT_EQ(tasks_ran.load(), after) << "worker survived the destructor";
}

// --------------------------------------------------------------------------
// exceptions

TEST(PooledOrderedRunner, ExceptionDeliveredAtTaskPositionInOrder) {
  PooledOrderedRunner runner(2, quiet());
  std::vector<int> delivered;
  for (int i = 0; i < 10; ++i) {
    runner.submit([i, &delivered]() -> Runner::Solo {
      if (i == 5) throw std::runtime_error("task 5 failed");
      return [i, &delivered] { delivered.push_back(i); };
    });
  }
  // The exception surfaces exactly after solo 4 and before solo 6.
  EXPECT_THROW(runner.drain_until_idle(), std::runtime_error);
  EXPECT_EQ(delivered, (std::vector<int>{0, 1, 2, 3, 4}));
  // The throwing task consumed its slot: draining again continues.
  runner.drain_until_idle();
  EXPECT_EQ(delivered, (std::vector<int>{0, 1, 2, 3, 4, 6, 7, 8, 9}));
  EXPECT_TRUE(runner.idle());
}

TEST(InlineRunner, ExceptionPropagatesFromSubmit) {
  InlineRunner runner;
  EXPECT_THROW(
      runner.submit([]() -> Runner::Solo { throw std::runtime_error("boom"); }),
      std::runtime_error);
}

// --------------------------------------------------------------------------
// metrics

TEST(PooledOrderedRunner, MetricsRecordPerDrainedTask) {
  auto& reg = obs::Registry::instance();
  RunnerOptions o;
  o.tag = "runner-test-metrics";
  PooledOrderedRunner runner(2, o);
  for (int i = 0; i < 50; ++i) {
    runner.submit([]() -> Runner::Solo { return [] {}; });
  }
  runner.drain_until_idle();
  EXPECT_EQ(reg.gauge("runner/runner-test-metrics.queue_depth"), 0.0);
  EXPECT_EQ(reg.histogram("runner/runner-test-metrics.task_ns").count(), 50u);
  EXPECT_EQ(
      reg.histogram("runner/runner-test-metrics.reorder_wait_ns").count(),
      50u);
}

// --------------------------------------------------------------------------
// inline-vs-pooled replica equivalence
//
// Phase 1 records, on the deterministic simulator, every message delivered
// to replica 0 (and when). Phase 2 replays that exact trace into a fresh
// replica twice — once over InlineRunner, once over PooledOrderedRunner —
// and demands byte-identical output: same sends in the same order with the
// same bytes, same application state. This is the ordering invariant made
// falsifiable: if the pooled runner reordered, dropped, or double-ran any
// prologue/epilogue, some vote, digest, or reply would differ.

/// Transport wrapper that records deliveries to one endpoint.
class RecordingNet final : public net::Transport {
 public:
  RecordingNet(sim::Network& inner, std::string target)
      : inner_(inner), target_(std::move(target)) {}

  void attach(const std::string& name, Handler handler) override {
    if (name == target_) {
      inner_.attach(name,
                    [this, handler = std::move(handler)](net::Message m) {
                      trace_.push_back({inner_.now(), m});
                      handler(std::move(m));
                    });
    } else {
      inner_.attach(name, std::move(handler));
    }
  }
  void detach(const std::string& name) override { inner_.detach(name); }
  bool attached(const std::string& name) const override {
    return inner_.attached(name);
  }
  void send(const std::string& from, const std::string& to,
            Bytes payload) override {
    inner_.send(from, to, std::move(payload));
  }
  net::Timer schedule(SimTime delay, std::function<void()> action) override {
    return inner_.schedule(delay, std::move(action));
  }
  SimTime now() const override { return inner_.now(); }

  const std::vector<std::pair<SimTime, net::Message>>& trace() const {
    return trace_;
  }

 private:
  sim::Network& inner_;
  std::string target_;
  std::vector<std::pair<SimTime, net::Message>> trace_;
};

/// Minimal Transport for replaying a recorded trace: a manual clock, a
/// timer list with the simulator's (when, seq) firing order, and a sent-log
/// instead of a wire.
class ReplayTransport final : public net::Transport {
 public:
  struct TimerState {
    bool cancelled = false;
    std::function<void()> action;
  };
  class TimerImpl final : public net::Timer::Impl {
   public:
    explicit TimerImpl(std::shared_ptr<TimerState> state)
        : state_(std::move(state)) {}
    void cancel() override {
      state_->cancelled = true;
      state_->action = nullptr;
    }
    bool active() const override { return !state_->cancelled; }

   private:
    std::shared_ptr<TimerState> state_;
  };

  void attach(const std::string& name, Handler handler) override {
    handlers_[name] = std::move(handler);
  }
  void detach(const std::string& name) override { handlers_.erase(name); }
  bool attached(const std::string& name) const override {
    return handlers_.count(name) > 0;
  }
  void send(const std::string& from, const std::string& to,
            Bytes payload) override {
    (void)from;
    sent_.emplace_back(to, std::move(payload));
  }
  net::Timer schedule(SimTime delay, std::function<void()> action) override {
    auto state = std::make_shared<TimerState>();
    state->action = std::move(action);
    pending_.push_back({clock_ + (delay < 0 ? 0 : delay), next_seq_++, state});
    return net::Timer(std::make_shared<TimerImpl>(state));
  }
  SimTime now() const override { return clock_; }

  void advance_to(SimTime t) {
    if (t > clock_) clock_ = t;
    run_due();
  }

  void run_due() {
    for (;;) {
      std::size_t best = pending_.size();
      for (std::size_t i = 0; i < pending_.size(); ++i) {
        if (pending_[i].when > clock_) continue;
        if (best == pending_.size() ||
            pending_[i].when < pending_[best].when ||
            (pending_[i].when == pending_[best].when &&
             pending_[i].seq < pending_[best].seq)) {
          best = i;
        }
      }
      if (best == pending_.size()) return;
      auto state = pending_[best].state;
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(best));
      if (state->cancelled || !state->action) continue;
      std::function<void()> action = std::move(state->action);
      action();
    }
  }

  void deliver(net::Message msg) {
    auto it = handlers_.find(msg.to);
    if (it == handlers_.end()) return;
    Handler handler = it->second;
    handler(std::move(msg));
  }

  const std::vector<std::pair<std::string, Bytes>>& sent() const {
    return sent_;
  }

 private:
  struct Pending {
    SimTime when;
    std::uint64_t seq;
    std::shared_ptr<TimerState> state;
  };
  SimTime clock_ = 0;
  std::uint64_t next_seq_ = 0;
  std::map<std::string, Handler> handlers_;
  std::vector<Pending> pending_;
  std::vector<std::pair<std::string, Bytes>> sent_;
};

struct ReplayResult {
  std::vector<std::pair<std::string, Bytes>> sent;
  Bytes app_snapshot;
  std::uint64_t applied = 0;
};

ReplayResult replay_trace(
    const std::vector<std::pair<SimTime, net::Message>>& trace,
    const crypto::Keychain& keys, const GroupConfig& group, Runner* runner) {
  ReplayTransport net;
  bft::testing::KvApp app;
  bft::Replica replica(net, group, ReplicaId{0}, keys, app, app,
                       bft::ReplicaOptions{});
  if (runner != nullptr) replica.set_runner(runner);
  for (const auto& [at, msg] : trace) {
    net.advance_to(at);
    net.deliver(msg);
    net.run_due();  // the lanes' zero-cost schedule => the runner submit
    if (runner != nullptr) runner->drain_until_idle();
    net.run_due();  // anything a drained solo scheduled at the current time
  }
  if (runner != nullptr) runner->drain_until_idle();
  ReplayResult result;
  result.sent = net.sent();
  result.app_snapshot = app.snapshot();
  result.applied = app.applied();
  return result;
}

TEST(RunnerEquivalence, InlineAndPooledProduceByteIdenticalReplicaOutput) {
  const GroupConfig group = GroupConfig::for_f(1);
  const crypto::Keychain keys("runner-eq");
  constexpr int kRounds = 30;

  // Phase 1: record everything replica 0 — the initial leader — receives
  // during a healthy run: client requests, WRITE/ACCEPT votes from peers.
  sim::EventLoop loop;
  sim::Network inner(loop, micros(50), 0);
  RecordingNet rec(inner, "replica/0");
  std::vector<std::unique_ptr<bft::testing::KvApp>> apps;
  std::vector<std::unique_ptr<bft::Replica>> replicas;
  for (ReplicaId id : group.replica_ids()) {
    apps.push_back(std::make_unique<bft::testing::KvApp>());
    replicas.push_back(std::make_unique<bft::Replica>(
        rec, group, id, keys, *apps.back(), *apps.back(),
        bft::ReplicaOptions{}));
  }
  bft::ClientProxy client(rec, group, ClientId{1}, keys);
  int completed = 0;
  std::function<void(int)> issue = [&](int i) {
    client.invoke_ordered(
        bft::testing::KvApp::put("key" + std::to_string(i),
                                 "value" + std::to_string(i)),
        [&, i](Bytes) {
          ++completed;
          if (i + 1 < kRounds) issue(i + 1);
        });
  };
  issue(0);
  loop.run_until(seconds(5));
  ASSERT_EQ(completed, kRounds);
  ASSERT_EQ(apps[0]->applied(), static_cast<std::uint64_t>(kRounds));
  ASSERT_FALSE(rec.trace().empty());

  // Phase 2: replay the trace through both runners.
  ReplayResult inline_result =
      replay_trace(rec.trace(), keys, group, nullptr);
  PooledOrderedRunner pooled(4, quiet());
  ReplayResult pooled_result = replay_trace(rec.trace(), keys, group, &pooled);

  // Sanity: the replayed replica re-ran the whole workload and replied.
  EXPECT_EQ(inline_result.applied, static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(inline_result.app_snapshot, apps[0]->snapshot());
  bool saw_reply = false;
  for (const auto& [to, bytes] : inline_result.sent) {
    if (to == "client/1") saw_reply = true;
  }
  EXPECT_TRUE(saw_reply);

  // The claim: byte-identical output.
  EXPECT_EQ(pooled_result.applied, inline_result.applied);
  EXPECT_EQ(pooled_result.app_snapshot, inline_result.app_snapshot);
  ASSERT_EQ(pooled_result.sent.size(), inline_result.sent.size());
  for (std::size_t i = 0; i < inline_result.sent.size(); ++i) {
    EXPECT_EQ(pooled_result.sent[i].first, inline_result.sent[i].first)
        << "send " << i << " went to a different destination";
    ASSERT_EQ(pooled_result.sent[i].second, inline_result.sent[i].second)
        << "send " << i << " differs between inline and pooled";
  }
}

}  // namespace
}  // namespace ss::core
