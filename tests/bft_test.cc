// Integration tests for the BFT SMR library: ordering, voting, batching,
// fault tolerance (crash, Byzantine, drops), view change, state transfer.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bft/client.h"
#include "bft/replica.h"
#include "common/config.h"
#include "crypto/keychain.h"
#include "sim/event_loop.h"
#include "sim/network.h"

namespace ss::bft {
namespace {

// A small replicated key-value service used as the test application.
class KvApp final : public Executable, public Recoverable {
 public:
  enum class Op : std::uint8_t { kPut = 0, kGet = 1 };

  static Bytes put(const std::string& key, const std::string& value) {
    Writer w;
    w.u8(static_cast<std::uint8_t>(Op::kPut));
    w.str(key);
    w.str(value);
    return std::move(w).take();
  }

  static Bytes get(const std::string& key) {
    Writer w;
    w.u8(static_cast<std::uint8_t>(Op::kGet));
    w.str(key);
    return std::move(w).take();
  }

  Bytes execute_ordered(const ExecuteContext& ctx, ByteView request) override {
    timestamps_.push_back(ctx.timestamp);
    ++applied_;
    Reader r(request);
    Op op = static_cast<Op>(r.u8());
    std::string key = r.str();
    Writer reply;
    if (op == Op::kPut) {
      std::string value = r.str();
      reply.str(data_[key]);
      data_[key] = value;
    } else {
      reply.str(data_[key]);
    }
    return std::move(reply).take();
  }

  Bytes execute_unordered(ClientId, ByteView request) override {
    Reader r(request);
    r.u8();
    std::string key = r.str();
    Writer reply;
    auto it = data_.find(key);
    reply.str(it == data_.end() ? "" : it->second);
    return std::move(reply).take();
  }

  Bytes snapshot() const override {
    Writer w;
    w.varint(applied_);
    w.varint(data_.size());
    for (const auto& [key, value] : data_) {
      w.str(key);
      w.str(value);
    }
    return std::move(w).take();
  }

  void restore(ByteView snapshot) override {
    Reader r(snapshot);
    applied_ = r.varint();
    data_.clear();
    std::uint64_t n = r.varint();
    for (std::uint64_t i = 0; i < n; ++i) {
      std::string key = r.str();
      data_[key] = r.str();
    }
    r.expect_done();
  }

  std::uint64_t applied() const { return applied_; }
  const std::map<std::string, std::string>& data() const { return data_; }
  const std::vector<SimTime>& timestamps() const { return timestamps_; }

 private:
  std::map<std::string, std::string> data_;
  std::uint64_t applied_ = 0;
  std::vector<SimTime> timestamps_;
};

struct Cluster {
  sim::EventLoop loop;
  sim::Network net;
  crypto::Keychain keys{"bft-test"};
  GroupConfig group;
  std::vector<std::unique_ptr<KvApp>> apps;
  std::vector<std::unique_ptr<Replica>> replicas;

  explicit Cluster(std::uint32_t f = 1, ReplicaOptions options = {})
      : net(loop, micros(50), 0), group(GroupConfig::for_f(f)) {
    for (ReplicaId id : group.replica_ids()) {
      apps.push_back(std::make_unique<KvApp>());
      replicas.push_back(std::make_unique<Replica>(
          net, group, id, keys, *apps.back(), *apps.back(), options));
    }
  }

  std::unique_ptr<ClientProxy> make_client(std::uint32_t id,
                                           ClientOptions options = {}) {
    return std::make_unique<ClientProxy>(net, group, ClientId{id}, keys,
                                         options);
  }

  void run_for(SimTime duration) { loop.run_until(loop.now() + duration); }

  bool apps_converged() const {
    Bytes reference;
    bool first = true;
    for (std::uint32_t i = 0; i < group.n; ++i) {
      if (replicas[i]->crashed()) continue;
      Bytes snap = apps[i]->snapshot();
      if (first) {
        reference = snap;
        first = false;
      } else if (snap != reference) {
        return false;
      }
    }
    return true;
  }
};

TEST(Bft, OrdersASingleRequest) {
  Cluster cluster;
  auto client = cluster.make_client(1);
  std::string reply_old;
  bool done = false;
  client->invoke_ordered(KvApp::put("grid", "stable"), [&](Bytes reply) {
    Reader r(reply);
    reply_old = r.str();
    done = true;
  });
  cluster.run_for(seconds(1));
  EXPECT_TRUE(done);
  EXPECT_EQ(reply_old, "");
  for (auto& app : cluster.apps) {
    EXPECT_EQ(app->applied(), 1u);
    EXPECT_EQ(app->data().at("grid"), "stable");
  }
  EXPECT_TRUE(cluster.apps_converged());
}

TEST(Bft, OrdersManyRequestsFromOneClient) {
  Cluster cluster;
  auto client = cluster.make_client(1);
  int completed = 0;
  for (int i = 0; i < 50; ++i) {
    client->invoke_ordered(
        KvApp::put("k" + std::to_string(i), "v" + std::to_string(i)),
        [&](Bytes) { ++completed; });
  }
  cluster.run_for(seconds(5));
  EXPECT_EQ(completed, 50);
  for (auto& app : cluster.apps) EXPECT_EQ(app->applied(), 50u);
  EXPECT_TRUE(cluster.apps_converged());
}

TEST(Bft, MultipleClientsConverge) {
  Cluster cluster;
  std::vector<std::unique_ptr<ClientProxy>> clients;
  int completed = 0;
  for (std::uint32_t c = 1; c <= 4; ++c) {
    clients.push_back(cluster.make_client(c));
  }
  for (int i = 0; i < 20; ++i) {
    for (auto& client : clients) {
      client->invoke_ordered(
          KvApp::put("c" + std::to_string(client->id().value),
                     std::to_string(i)),
          [&](Bytes) { ++completed; });
    }
  }
  cluster.run_for(seconds(5));
  EXPECT_EQ(completed, 80);
  EXPECT_TRUE(cluster.apps_converged());
  for (auto& app : cluster.apps) {
    EXPECT_EQ(app->data().at("c1"), "19");
    EXPECT_EQ(app->data().at("c4"), "19");
  }
}

TEST(Bft, BatchingCoalescesRequests) {
  Cluster cluster;
  auto client = cluster.make_client(1);
  int completed = 0;
  for (int i = 0; i < 100; ++i) {
    client->invoke_ordered(KvApp::put("k" + std::to_string(i), "v"),
                           [&](Bytes) { ++completed; });
  }
  cluster.run_for(seconds(5));
  EXPECT_EQ(completed, 100);
  // Pipelined requests must have been batched: far fewer decisions than
  // requests.
  EXPECT_LT(cluster.replicas[0]->stats().batches_decided, 60u);
  EXPECT_EQ(cluster.replicas[0]->stats().requests_executed, 100u);
}

TEST(Bft, UnorderedReadsServeLocalState) {
  Cluster cluster;
  auto client = cluster.make_client(1);
  bool put_done = false;
  client->invoke_ordered(KvApp::put("x", "42"),
                         [&](Bytes) { put_done = true; });
  cluster.run_for(seconds(1));
  ASSERT_TRUE(put_done);

  std::string value;
  bool read_done = false;
  client->invoke_unordered(KvApp::get("x"), [&](Bytes reply) {
    Reader r(reply);
    value = r.str();
    read_done = true;
  });
  cluster.run_for(seconds(1));
  EXPECT_TRUE(read_done);
  EXPECT_EQ(value, "42");
  // Unordered requests do not consume consensus instances.
  EXPECT_EQ(cluster.replicas[0]->stats().batches_decided, 1u);
}

TEST(Bft, TimestampsAreMonotonicallyIncreasing) {
  Cluster cluster;
  auto client = cluster.make_client(1);
  for (int i = 0; i < 30; ++i) {
    client->invoke_ordered(KvApp::put("k", std::to_string(i)), {});
  }
  cluster.run_for(seconds(5));
  for (auto& app : cluster.apps) {
    const auto& ts = app->timestamps();
    ASSERT_FALSE(ts.empty());
    for (std::size_t i = 1; i < ts.size(); ++i) {
      EXPECT_GE(ts[i], ts[i - 1]);
    }
  }
  // All replicas assigned the *same* timestamps (determinism challenge (c)).
  for (std::uint32_t i = 1; i < cluster.group.n; ++i) {
    EXPECT_EQ(cluster.apps[i]->timestamps(), cluster.apps[0]->timestamps());
  }
}

TEST(Bft, DropsAreMaskedByRetransmission) {
  Cluster cluster;
  // Lossy links between the client and every replica, both ways.
  sim::LinkPolicy lossy;
  lossy.drop_prob = 0.3;
  for (ReplicaId id : cluster.group.replica_ids()) {
    cluster.net.set_policy("client/1", crypto::replica_principal(id), lossy);
    cluster.net.set_policy(crypto::replica_principal(id), "client/1", lossy);
  }
  ClientOptions options;
  options.reply_timeout = millis(200);
  auto client = cluster.make_client(1, options);
  int completed = 0;
  for (int i = 0; i < 20; ++i) {
    client->invoke_ordered(KvApp::put("k" + std::to_string(i), "v"),
                           [&](Bytes) { ++completed; });
  }
  cluster.run_for(seconds(30));
  EXPECT_EQ(completed, 20);
  EXPECT_TRUE(cluster.apps_converged());
  // Each replica must have executed each request exactly once despite
  // retransmissions.
  for (auto& app : cluster.apps) EXPECT_EQ(app->applied(), 20u);
}

TEST(Bft, CrashFaultyReplicaDoesNotBlockProgress) {
  Cluster cluster;
  cluster.replicas[3]->crash();  // a follower
  auto client = cluster.make_client(1);
  int completed = 0;
  for (int i = 0; i < 10; ++i) {
    client->invoke_ordered(KvApp::put("k" + std::to_string(i), "v"),
                           [&](Bytes) { ++completed; });
  }
  cluster.run_for(seconds(5));
  EXPECT_EQ(completed, 10);
  EXPECT_EQ(cluster.apps[0]->applied(), 10u);
  EXPECT_EQ(cluster.apps[3]->applied(), 0u);
}

TEST(Bft, LeaderCrashTriggersViewChange) {
  Cluster cluster;
  cluster.replicas[0]->crash();  // the initial leader
  auto client = cluster.make_client(1);
  bool done = false;
  client->invoke_ordered(KvApp::put("grid", "resilient"),
                         [&](Bytes) { done = true; });
  cluster.run_for(seconds(10));
  EXPECT_TRUE(done);
  for (std::uint32_t i = 1; i < 4; ++i) {
    EXPECT_GE(cluster.replicas[i]->regency(), 1u);
    EXPECT_EQ(cluster.apps[i]->applied(), 1u);
  }
}

TEST(Bft, SilentByzantineLeaderIsVotedOut) {
  Cluster cluster;
  cluster.replicas[0]->set_byzantine(ByzantineMode::kSilent);
  auto client = cluster.make_client(1);
  bool done = false;
  client->invoke_ordered(KvApp::put("k", "v"), [&](Bytes) { done = true; });
  cluster.run_for(seconds(10));
  EXPECT_TRUE(done);
  EXPECT_GE(cluster.replicas[1]->regency(), 1u);
}

TEST(Bft, EquivocatingLeaderIsVotedOut) {
  Cluster cluster;
  cluster.replicas[0]->set_byzantine(ByzantineMode::kEquivocate);
  auto client = cluster.make_client(1);
  bool done = false;
  client->invoke_ordered(KvApp::put("k", "v"), [&](Bytes) { done = true; });
  cluster.run_for(seconds(10));
  EXPECT_TRUE(done);
  for (std::uint32_t i = 1; i < 4; ++i) {
    EXPECT_GE(cluster.replicas[i]->regency(), 1u);
  }
  // Safety: the correct replicas agree.
  Bytes reference = cluster.apps[1]->snapshot();
  EXPECT_EQ(cluster.apps[2]->snapshot(), reference);
  EXPECT_EQ(cluster.apps[3]->snapshot(), reference);
}

TEST(Bft, CorruptRepliesAreOutvoted) {
  Cluster cluster;
  cluster.replicas[2]->set_byzantine(ByzantineMode::kCorruptReplies);
  auto client = cluster.make_client(1);
  std::string old_value = "sentinel";
  bool done = false;
  client->invoke_ordered(KvApp::put("k", "v"), [&](Bytes reply) {
    Reader r(reply);
    old_value = r.str();
    done = true;
  });
  cluster.run_for(seconds(5));
  EXPECT_TRUE(done);
  EXPECT_EQ(old_value, "");  // the correct (voted) reply, not the corrupted one
}

TEST(Bft, CorruptVotesDoNotBlockQuorum) {
  Cluster cluster;
  cluster.replicas[3]->set_byzantine(ByzantineMode::kCorruptVotes);
  auto client = cluster.make_client(1);
  int completed = 0;
  for (int i = 0; i < 10; ++i) {
    client->invoke_ordered(KvApp::put("k" + std::to_string(i), "v"),
                           [&](Bytes) { ++completed; });
  }
  cluster.run_for(seconds(5));
  EXPECT_EQ(completed, 10);
}

TEST(Bft, RecoveredReplicaCatchesUpViaStateTransfer) {
  Cluster cluster;
  cluster.replicas[3]->crash();
  auto client = cluster.make_client(1);
  int completed = 0;
  for (int i = 0; i < 30; ++i) {
    client->invoke_ordered(KvApp::put("k" + std::to_string(i), "v"),
                           [&](Bytes) { ++completed; });
  }
  cluster.run_for(seconds(5));
  ASSERT_EQ(completed, 30);

  cluster.replicas[3]->recover();
  cluster.run_for(seconds(5));
  EXPECT_GE(cluster.replicas[3]->stats().state_transfers, 1u);
  EXPECT_EQ(cluster.replicas[3]->last_decided(),
            cluster.replicas[0]->last_decided());
  EXPECT_TRUE(cluster.apps_converged());

  // And the recovered replica participates in new decisions.
  bool done = false;
  client->invoke_ordered(KvApp::put("post", "recovery"),
                         [&](Bytes) { done = true; });
  cluster.run_for(seconds(5));
  EXPECT_TRUE(done);
  EXPECT_EQ(cluster.apps[3]->data().at("post"), "recovery");
}

TEST(Bft, ForgedClientRequestsAreRejected) {
  Cluster cluster;
  // Craft a request with a broken authenticator and send it directly.
  ClientRequest req;
  req.client = ClientId{1};
  req.sequence = RequestId{1};
  req.payload = KvApp::put("evil", "1");
  req.auth.assign(4, crypto::Digest{});  // all-zero MACs

  Envelope env;
  env.type = MsgType::kClientRequest;
  env.sender = "client/1";
  env.body = req.encode();
  // Even with a valid envelope MAC, the per-replica authenticator fails.
  env.mac = cluster.keys.mac(
      "client/1", "replica/0",
      envelope_mac_material(env.type, env.sender, "replica/0", /*epoch=*/0,
                            env.body));
  cluster.net.send("client/1", "replica/0", env.encode());

  cluster.run_for(seconds(2));
  EXPECT_EQ(cluster.apps[0]->applied(), 0u);
  EXPECT_GE(cluster.replicas[0]->stats().auth_failures, 1u);
}

TEST(Bft, CheckpointDigestsMatchAcrossReplicas) {
  ReplicaOptions options;
  options.checkpoint_interval = 4;
  options.max_batch = 1;  // force many instances
  Cluster cluster(1, options);
  auto client = cluster.make_client(1);
  int completed = 0;
  for (int i = 0; i < 12; ++i) {
    client->invoke_ordered(KvApp::put("k" + std::to_string(i), "v"),
                           [&](Bytes) { ++completed; });
  }
  cluster.run_for(seconds(10));
  ASSERT_EQ(completed, 12);
  ASSERT_TRUE(cluster.replicas[0]->last_checkpoint_digest().has_value());
  for (std::uint32_t i = 1; i < 4; ++i) {
    EXPECT_EQ(cluster.replicas[i]->last_checkpoint_digest(),
              cluster.replicas[0]->last_checkpoint_digest());
  }
}

class BftFSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BftFSweep, ToleratesFCrashes) {
  std::uint32_t f = GetParam();
  Cluster cluster(f);
  // Crash f followers (the worst allowed crash pattern for throughput).
  for (std::uint32_t i = 0; i < f; ++i) {
    cluster.replicas[cluster.group.n - 1 - i]->crash();
  }
  auto client = cluster.make_client(1);
  int completed = 0;
  for (int i = 0; i < 10; ++i) {
    client->invoke_ordered(KvApp::put("k" + std::to_string(i), "v"),
                           [&](Bytes) { ++completed; });
  }
  cluster.run_for(seconds(10));
  EXPECT_EQ(completed, 10);
  EXPECT_TRUE(cluster.apps_converged());
}

INSTANTIATE_TEST_SUITE_P(FSweep, BftFSweep, ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace ss::bft
