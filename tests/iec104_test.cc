// Tests for the IEC-104-style protocol layer: framing, device behaviour,
// driver integration with the Frontend, and the full replicated pipeline
// fed by an event-driven protocol.
#include <gtest/gtest.h>

#include "core/replicated_deployment.h"
#include "rtu/iec104.h"
#include "rtu/iec104_device.h"
#include "rtu/iec104_driver.h"
#include "rtu/sensors.h"
#include "sim/event_loop.h"
#include "sim/network.h"

namespace ss::rtu {
namespace {

TEST(Iec104Asdu, RoundTrip) {
  Iec104Asdu asdu;
  asdu.type = Iec104Type::kSetpointFloat;
  asdu.cause = Iec104Cot::kActivation;
  asdu.common_address = 7;
  asdu.ioa = 0x123456;
  asdu.value = -12.75;
  asdu.quality_good = false;
  Iec104Asdu decoded = Iec104Asdu::decode(asdu.encode());
  EXPECT_EQ(decoded.type, Iec104Type::kSetpointFloat);
  EXPECT_EQ(decoded.cause, Iec104Cot::kActivation);
  EXPECT_EQ(decoded.common_address, 7);
  EXPECT_EQ(decoded.ioa, 0x123456u);
  EXPECT_DOUBLE_EQ(decoded.value, -12.75);
  EXPECT_FALSE(decoded.quality_good);
}

TEST(Iec104Asdu, RejectsUnknownTypeAndCot) {
  Iec104Asdu asdu;
  Bytes encoded = asdu.encode();
  Bytes bad_type = encoded;
  bad_type[0] = 99;
  EXPECT_THROW(Iec104Asdu::decode(bad_type), DecodeError);
  Bytes bad_cot = encoded;
  bad_cot[1] = 42;
  EXPECT_THROW(Iec104Asdu::decode(bad_cot), DecodeError);
}

struct DeviceHarness {
  sim::EventLoop loop;
  sim::Network net{loop, micros(100), 0};
  Iec104Device device{net, "iec/1",
                      Iec104DeviceOptions{.scan_period = millis(50)}};
  std::vector<Iec104Asdu> received;

  DeviceHarness() {
    net.attach("station", [this](sim::Message m) {
      received.push_back(Iec104Asdu::decode(m.payload));
    });
    device.connect_station("station");
  }
};

TEST(Iec104Device, SpontaneousReportsOnChange) {
  DeviceHarness h;
  h.device.add_measurement(100, std::make_unique<RampSignal>(0.0, 100.0));
  h.device.start();
  h.loop.run_until(millis(500));
  EXPECT_GT(h.device.spontaneous_sent(), 5u);
  ASSERT_FALSE(h.received.empty());
  EXPECT_EQ(h.received[0].type, Iec104Type::kMeasuredFloat);
  EXPECT_EQ(h.received[0].cause, Iec104Cot::kSpontaneous);
  EXPECT_EQ(h.received[0].ioa, 100u);
}

TEST(Iec104Device, DeadbandSuppressesNoise) {
  DeviceHarness h;
  Iec104DeviceOptions options;
  options.scan_period = millis(50);
  options.report_deadband = 10.0;
  Iec104Device quiet(h.net, "iec/2", options);
  quiet.connect_station("station");
  quiet.add_measurement(1, std::make_unique<ConstantSignal>(5.0));
  quiet.start();
  h.loop.run_until(millis(500));
  EXPECT_EQ(quiet.spontaneous_sent(), 1u);  // only the initial report
}

TEST(Iec104Device, InterrogationDumpsAllPoints) {
  DeviceHarness h;
  h.device.add_measurement(1, std::make_unique<ConstantSignal>(1.0));
  h.device.add_measurement(2, std::make_unique<ConstantSignal>(2.0));
  h.device.add_setpoint(3, 3.0);

  Iec104Asdu interrogation;
  interrogation.type = Iec104Type::kInterrogation;
  interrogation.cause = Iec104Cot::kActivation;
  h.net.send("station", "iec/1", interrogation.encode());
  h.loop.run_until(millis(10));

  // ActCon + 3 points + ActTerm.
  ASSERT_EQ(h.received.size(), 5u);
  EXPECT_EQ(h.received.front().cause, Iec104Cot::kActivationCon);
  EXPECT_EQ(h.received.back().cause, Iec104Cot::kActivationTerm);
  EXPECT_EQ(h.received[1].cause, Iec104Cot::kInterrogated);
}

TEST(Iec104Device, SetpointCommandsConfirmAndApply) {
  DeviceHarness h;
  h.device.add_setpoint(10, 0.0);

  Iec104Asdu command;
  command.type = Iec104Type::kSetpointFloat;
  command.cause = Iec104Cot::kActivation;
  command.ioa = 10;
  command.value = 42.5;
  h.net.send("station", "iec/1", command.encode());
  h.loop.run_until(millis(10));

  ASSERT_EQ(h.received.size(), 1u);
  EXPECT_EQ(h.received[0].cause, Iec104Cot::kActivationCon);
  EXPECT_FALSE(h.received[0].negative);
  EXPECT_DOUBLE_EQ(h.device.point_value(10), 42.5);

  // Unknown object -> negative confirmation.
  command.ioa = 99;
  h.net.send("station", "iec/1", command.encode());
  h.loop.run_until(millis(20));
  ASSERT_EQ(h.received.size(), 2u);
  EXPECT_TRUE(h.received[1].negative);
  EXPECT_EQ(h.received[1].cause, Iec104Cot::kUnknownObject);
}

struct DriverHarness {
  sim::EventLoop loop;
  sim::Network net{loop, micros(100), 0};
  Iec104Device device{net, "iec/1",
                      Iec104DeviceOptions{.scan_period = millis(50)}};
  scada::Frontend frontend;
  Iec104Driver driver{net, frontend, Iec104DriverOptions{}};
  std::vector<scada::ScadaMessage> to_master;

  DriverHarness() {
    frontend.set_master_sink(
        [this](const scada::ScadaMessage& m) { to_master.push_back(m); });
  }
};

TEST(Iec104Driver, InterrogationSnapshotThenSpontaneousUpdates) {
  DriverHarness h;
  h.device.add_measurement(100, std::make_unique<RampSignal>(10.0, 50.0));
  ItemId item = h.frontend.add_item("iec/temp");
  h.driver.bind_measurement("iec/1", 100, item);
  h.device.start();
  h.driver.start();
  h.loop.run_until(millis(500));

  EXPECT_GT(h.driver.counters().updates_reported, 3u);
  ASSERT_NE(h.frontend.item(item), nullptr);
  EXPECT_GT(h.frontend.item(item)->value.as_double(), 10.0);
}

TEST(Iec104Driver, SetpointWriteLifecycle) {
  DriverHarness h;
  h.device.add_setpoint(200, 0.0);
  ItemId item = h.frontend.add_item("iec/setpoint", scada::Variant{0.0});
  h.driver.bind_setpoint("iec/1", 200, item);
  h.driver.start();

  scada::WriteValue write;
  write.ctx.op = OpId{1};
  write.item = item;
  write.value = scada::Variant{33.0};
  h.frontend.handle(scada::ScadaMessage{write});
  h.loop.run_until(millis(50));

  ASSERT_EQ(h.to_master.size(), 1u);
  EXPECT_EQ(std::get<scada::WriteResult>(h.to_master[0]).status,
            scada::WriteStatus::kOk);
  EXPECT_DOUBLE_EQ(h.device.point_value(200), 33.0);
  EXPECT_EQ(h.device.commands_applied(), 1u);
}

TEST(Iec104Driver, RejectedCommandFailsWrite) {
  DriverHarness h;
  h.device.add_setpoint(200, 0.0);
  h.device.fail_next_commands(1);
  ItemId item = h.frontend.add_item("iec/setpoint");
  h.driver.bind_setpoint("iec/1", 200, item);
  h.driver.start();

  scada::WriteValue write;
  write.ctx.op = OpId{1};
  write.item = item;
  write.value = scada::Variant{33.0};
  h.frontend.handle(scada::ScadaMessage{write});
  h.loop.run_until(millis(50));

  ASSERT_EQ(h.to_master.size(), 1u);
  EXPECT_EQ(std::get<scada::WriteResult>(h.to_master[0]).status,
            scada::WriteStatus::kFailed);
  EXPECT_EQ(h.driver.counters().commands_rejected, 1u);
}

TEST(Iec104Driver, CommandTimeoutWhenDeviceSilent) {
  sim::EventLoop loop;
  sim::Network net(loop, micros(100), 0);
  Iec104Device device(net, "iec/1");
  scada::Frontend frontend;
  Iec104Driver driver(net, frontend,
                      Iec104DriverOptions{.command_timeout = millis(200)});
  std::vector<scada::ScadaMessage> to_master;
  frontend.set_master_sink(
      [&](const scada::ScadaMessage& m) { to_master.push_back(m); });

  device.add_setpoint(200, 0.0);
  ItemId item = frontend.add_item("iec/setpoint");
  driver.bind_setpoint("iec/1", 200, item);
  driver.start();
  loop.run_until(millis(10));   // let the interrogation complete first
  device.swallow_next(1);       // then drop the actual command

  scada::WriteValue write;
  write.ctx.op = OpId{1};
  write.item = item;
  write.value = scada::Variant{1.0};
  frontend.handle(scada::ScadaMessage{write});
  loop.run_until(millis(500));

  ASSERT_EQ(to_master.size(), 1u);
  EXPECT_EQ(std::get<scada::WriteResult>(to_master[0]).status,
            scada::WriteStatus::kFailed);
  EXPECT_EQ(driver.counters().command_timeouts, 1u);
}

}  // namespace
}  // namespace ss::rtu

namespace ss::core {
namespace {

// The whole point: an event-driven field protocol feeding the replicated
// pipeline end-to-end — IEC device -> driver -> Frontend -> agreement ->
// 4 Masters -> voted pushes -> HMI; operator setpoint flows back down.
TEST(Iec104Replicated, EndToEndThroughAgreement) {
  ReplicatedOptions options;
  options.costs = sim::CostModel::zero();
  options.costs.hop_latency = micros(50);
  ReplicatedDeployment system(options);

  rtu::Iec104Device device(
      system.net(), "iec/substation",
      rtu::Iec104DeviceOptions{.scan_period = millis(100)});
  device.add_measurement(1, std::make_unique<rtu::RampSignal>(100.0, 10.0));
  device.add_setpoint(2, 50.0);

  ItemId measurement = system.add_point("iec/feeder/power");
  ItemId setpoint = system.add_point("iec/feeder/limit",
                                     scada::Variant{50.0});
  rtu::Iec104Driver driver(system.net(), system.frontend());
  driver.bind_measurement("iec/substation", 1, measurement);
  driver.bind_setpoint("iec/substation", 2, setpoint);

  system.start();
  device.start();
  driver.start();
  system.run_until(system.loop().now() + seconds(3));

  EXPECT_GT(system.hmi().counters().updates_received, 5u);
  ASSERT_NE(system.hmi().item(measurement), nullptr);
  EXPECT_GT(system.hmi().item(measurement)->value.as_double(), 100.0);

  bool ok = false;
  system.hmi().write(setpoint, scada::Variant{75.0},
                     [&](const scada::WriteResult& result) {
                       ok = result.status == scada::WriteStatus::kOk;
                     });
  system.run_until(system.loop().now() + seconds(2));
  EXPECT_TRUE(ok);
  EXPECT_DOUBLE_EQ(device.point_value(2), 75.0);
  EXPECT_TRUE(system.masters_converged());
}

}  // namespace
}  // namespace ss::core
