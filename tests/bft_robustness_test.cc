// Robustness tests: request forwarding, flood bounds, and fuzz-ish garbage
// input at every endpoint (a Byzantine sender can put any bytes on the
// wire; nothing may crash, hang, or corrupt state).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "tests/bft_harness.h"

namespace ss::bft {
namespace {

using testing::Cluster;
using testing::KvApp;

TEST(Forwarding, LeaderDeafToClientStillOrdersWithoutViewChange) {
  Cluster cluster;
  // The client's link to the leader (replica 0) is dead both ways; every
  // other link is fine. Without request forwarding this forces a view
  // change; with it, a follower hands the request to the leader.
  cluster.net.set_policy("client/1", "replica/0", sim::LinkPolicy::cut_link());
  cluster.net.set_policy("replica/0", "client/1", sim::LinkPolicy::cut_link());

  auto client = cluster.make_client(1);
  int completed = 0;
  for (int i = 0; i < 5; ++i) {
    client->invoke_ordered(KvApp::put("k" + std::to_string(i), "v"),
                           [&](Bytes) { ++completed; });
  }
  cluster.run_for(seconds(10));

  EXPECT_EQ(completed, 5);
  // The leader stayed in office the whole time...
  EXPECT_EQ(cluster.replicas[0]->regency(), 0u);
  EXPECT_EQ(cluster.replicas[0]->stats().view_changes, 0u);
  // ...because followers forwarded what it could not hear.
  std::uint64_t forwarded = 0;
  for (auto& replica : cluster.replicas) {
    forwarded += replica->stats().requests_forwarded;
  }
  EXPECT_GE(forwarded, 1u);
}

TEST(Forwarding, DisabledFallsBackToViewChange) {
  ReplicaOptions options;
  options.forward_to_leader = false;
  Cluster cluster(1, options);
  cluster.net.set_policy("client/1", "replica/0", sim::LinkPolicy::cut_link());
  cluster.net.set_policy("replica/0", "client/1", sim::LinkPolicy::cut_link());

  auto client = cluster.make_client(1);
  bool done = false;
  client->invoke_ordered(KvApp::put("k", "v"), [&](Bytes) { done = true; });
  cluster.run_for(seconds(10));

  EXPECT_TRUE(done);
  EXPECT_GE(cluster.replicas[1]->regency(), 1u);  // had to change leader
}

TEST(FloodProtection, ExcessPendingRequestsAreDropped) {
  ReplicaOptions options;
  options.max_pending_per_client = 8;
  options.max_batch = 1;
  Cluster cluster(1, options);

  // Freeze ordering so pending requests accumulate: cut the leader off
  // from the followers' votes.
  for (std::uint32_t i = 1; i < 4; ++i) {
    cluster.net.set_policy(crypto::replica_principal(ReplicaId{i}),
                           "replica/0", sim::LinkPolicy::cut_link());
  }

  ClientOptions client_options;
  client_options.reply_timeout = seconds(30);  // no retransmit churn
  auto client = cluster.make_client(1, client_options);
  for (int i = 0; i < 40; ++i) {
    client->invoke_ordered(KvApp::put("k" + std::to_string(i), "v"), {});
  }
  cluster.run_for(seconds(1));
  EXPECT_GE(cluster.replicas[0]->stats().requests_flood_dropped, 30u);
}

// ---------------------------------------------------------------------------
// Garbage-input fuzzing: random byte strings, truncated real messages, and
// type-confused envelopes against replicas and clients.

TEST(Fuzz, RandomBytesNeverCrashAnyEndpoint) {
  Cluster cluster;
  auto client = cluster.make_client(1);
  Rng rng(0xF022);

  for (int i = 0; i < 2000; ++i) {
    Bytes garbage(rng.below(200), 0);
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next());
    std::string to = i % 5 == 4
                         ? "client/1"
                         : crypto::replica_principal(
                               ReplicaId{static_cast<std::uint32_t>(i % 4)});
    cluster.net.send("attacker", to, std::move(garbage));
  }
  cluster.run_for(seconds(1));

  // The system still works afterwards.
  bool done = false;
  client->invoke_ordered(KvApp::put("after", "fuzz"),
                         [&](Bytes) { done = true; });
  cluster.run_for(seconds(5));
  EXPECT_TRUE(done);
  EXPECT_TRUE(cluster.apps_converged());
  // And the garbage was rejected at decode/MAC stage, not executed.
  for (auto& replica : cluster.replicas) {
    EXPECT_EQ(replica->stats().requests_executed, 1u);
    EXPECT_GE(replica->stats().decode_failures +
                  replica->stats().mac_failures,
              1u);
  }
}

TEST(Fuzz, BitFlippedRealTrafficIsRejectedByMacs) {
  Cluster cluster;
  // 5% of all replica-to-replica bytes get corrupted in flight.
  sim::LinkPolicy corrupt;
  corrupt.corrupt_prob = 0.05;
  for (ReplicaId a : cluster.group.replica_ids()) {
    for (ReplicaId b : cluster.group.replica_ids()) {
      if (a == b) continue;
      cluster.net.set_policy(crypto::replica_principal(a),
                             crypto::replica_principal(b), corrupt);
    }
  }
  ClientOptions client_options;
  client_options.reply_timeout = millis(200);
  client_options.max_retries = 100;
  auto client = cluster.make_client(1, client_options);
  int completed = 0;
  for (int i = 0; i < 10; ++i) {
    client->invoke_ordered(KvApp::put("k" + std::to_string(i), "v"),
                           [&](Bytes) { ++completed; });
  }
  cluster.run_for(seconds(30));
  EXPECT_EQ(completed, 10);
  EXPECT_TRUE(cluster.apps_converged());
  std::uint64_t rejected = 0;
  for (auto& replica : cluster.replicas) {
    rejected += replica->stats().mac_failures +
                replica->stats().decode_failures;
  }
  EXPECT_GE(rejected, 1u);
}

TEST(Fuzz, TypeConfusedEnvelopesIgnored) {
  Cluster cluster;
  auto client = cluster.make_client(1);
  bool done = false;
  client->invoke_ordered(KvApp::put("x", "1"), [&](Bytes) { done = true; });
  cluster.run_for(seconds(2));
  ASSERT_TRUE(done);

  // Take a legitimate STOP body but label the envelope as a PROPOSE, with a
  // valid MAC for the mislabeled type: the decoder must reject it.
  Stop stop{5, ReplicaId{1}};
  Bytes body = stop.encode();
  Bytes material = envelope_mac_material(MsgType::kPropose, "replica/1",
                                         "replica/0", /*epoch=*/0, body);
  Envelope env;
  env.type = MsgType::kPropose;
  env.sender = "replica/1";
  env.body = body;
  env.mac = cluster.keys.mac("replica/1", "replica/0", material);
  cluster.net.send("replica/1", "replica/0", env.encode());
  cluster.run_for(seconds(1));

  EXPECT_EQ(cluster.replicas[0]->regency(), 0u);  // no spurious view change
  EXPECT_GE(cluster.replicas[0]->stats().decode_failures, 1u);
}

}  // namespace
}  // namespace ss::bft
