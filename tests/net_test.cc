// Conformance tests for the net::Transport seam.
//
// The same contract tests run against both backends — the deterministic
// simulated network (virtual time) and the UDP SocketTransport on localhost
// (real time) — so a component written against the seam behaves identically
// whichever backend a deployment picks. Plus: resolver parsing, wire-format
// hardening (truncation / byte-flip / hostile length prefixes), and a
// regression pinning that injected corruption is always *rejected*
// end-to-end (HMAC on SCADA links, CRC on field links), never silently
// accepted as data.
#include <gtest/gtest.h>
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "bft/messages.h"
#include "common/rng.h"
#include "common/serialization.h"
#include "core/scada_link.h"
#include "net/lanes.h"
#include "net/resolver.h"
#include "net/socket_transport.h"
#include "net/transport.h"
#include "rtu/driver.h"
#include "rtu/frame_check.h"
#include "rtu/modbus.h"
#include "rtu/rtu.h"
#include "rtu/sensors.h"
#include "scada/frontend.h"
#include "sim/event_loop.h"
#include "sim/network.h"

namespace ss {
namespace {

// ---------------------------------------------------------------------------
// Backend harness

/// Wraps one Transport backend with a way to drive its loop, so the
/// conformance tests below are written once against this interface.
class Backend {
 public:
  virtual ~Backend() = default;
  virtual net::Transport& transport() = 0;
  /// Drives the backend until pred() or `timeout` of backend time passes.
  virtual bool run_until(const std::function<bool()>& pred, SimTime timeout) = 0;
  /// Drives the backend for `duration` regardless of activity.
  void settle(SimTime duration) {
    run_until([] { return false; }, duration);
  }
};

class SimBackend final : public Backend {
 public:
  net::Transport& transport() override { return net_; }

  bool run_until(const std::function<bool()>& pred, SimTime timeout) override {
    SimTime deadline = loop_.now() + timeout;
    while (!pred() && !loop_.empty() && loop_.now() < deadline) {
      loop_.run_steps(1);
    }
    return pred();
  }

 private:
  sim::EventLoop loop_;
  sim::Network net_{loop_, micros(100), 0};
};

/// Ports for the socket backend: derived from the pid so parallel ctest
/// invocations on one machine don't collide, bumped per endpoint.
std::uint16_t next_port() {
  static std::uint16_t port =
      static_cast<std::uint16_t>(30000 + (::getpid() % 20000));
  return ++port;
}

class SocketBackend final : public Backend {
 public:
  SocketBackend() {
    net::Resolver resolver;
    for (const char* name :
         {"alice", "bob", "carol", "tester", "lonely"}) {
      resolver.add(name, net::SocketAddress{"127.0.0.1", next_port()});
    }
    transport_ = std::make_unique<net::SocketTransport>(std::move(resolver));
  }

  net::Transport& transport() override { return *transport_; }

  bool run_until(const std::function<bool()>& pred, SimTime timeout) override {
    return transport_->run_until(pred, timeout);
  }

 private:
  std::unique_ptr<net::SocketTransport> transport_;
};

std::unique_ptr<Backend> make_backend(const std::string& kind) {
  if (kind == "sim") return std::make_unique<SimBackend>();
  return std::make_unique<SocketBackend>();
}

class TransportConformance : public ::testing::TestWithParam<const char*> {};

INSTANTIATE_TEST_SUITE_P(Backends, TransportConformance,
                         ::testing::Values("sim", "socket"),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------------
// Conformance: delivery

TEST_P(TransportConformance, DeliversPayloadWithSenderAndReceiverNames) {
  auto backend = make_backend(GetParam());
  net::Transport& t = backend->transport();

  std::vector<net::Message> got;
  t.attach("alice", [](net::Message) {});
  t.attach("bob", [&](net::Message m) { got.push_back(std::move(m)); });

  t.send("alice", "bob", Bytes{1, 2, 3});
  ASSERT_TRUE(backend->run_until([&] { return !got.empty(); }, seconds(5)));
  EXPECT_EQ(got[0].from, "alice");
  EXPECT_EQ(got[0].to, "bob");
  EXPECT_EQ(got[0].payload, (Bytes{1, 2, 3}));
}

TEST_P(TransportConformance, DeliveryIsNeverReentrantInsideSend) {
  auto backend = make_backend(GetParam());
  net::Transport& t = backend->transport();

  bool delivered = false;
  t.attach("alice", [](net::Message) {});
  t.attach("bob", [&](net::Message) { delivered = true; });

  t.send("alice", "bob", Bytes{42});
  // The contract: even a loopback/zero-latency send is delivered on a later
  // loop iteration, never inside send() itself.
  EXPECT_FALSE(delivered);
  EXPECT_TRUE(backend->run_until([&] { return delivered; }, seconds(5)));
}

TEST_P(TransportConformance, SendToUnknownNameIsSilentlyDropped) {
  auto backend = make_backend(GetParam());
  net::Transport& t = backend->transport();
  t.attach("alice", [](net::Message) {});
  t.send("alice", "nobody-home", Bytes{9});  // must not throw or crash
  backend->settle(millis(50));
}

TEST_P(TransportConformance, AttachedTracksAttachAndDetach) {
  auto backend = make_backend(GetParam());
  net::Transport& t = backend->transport();
  EXPECT_FALSE(t.attached("carol"));
  t.attach("carol", [](net::Message) {});
  EXPECT_TRUE(t.attached("carol"));
  t.detach("carol");
  EXPECT_FALSE(t.attached("carol"));
}

TEST_P(TransportConformance, LargePayloadSurvivesRoundTrip) {
  auto backend = make_backend(GetParam());
  net::Transport& t = backend->transport();

  // Large enough to span several UDP fragments on the socket backend
  // (models a state-transfer snapshot).
  Bytes big(300'000);
  Rng rng(7);
  for (auto& b : big) b = static_cast<std::uint8_t>(rng.below(256));

  std::vector<net::Message> got;
  t.attach("alice", [](net::Message) {});
  t.attach("bob", [&](net::Message m) { got.push_back(std::move(m)); });
  t.send("alice", "bob", big);
  ASSERT_TRUE(backend->run_until([&] { return !got.empty(); }, seconds(5)));
  EXPECT_EQ(got[0].payload, big);
}

TEST_P(TransportConformance, PeerRestartResumesDelivery) {
  auto backend = make_backend(GetParam());
  net::Transport& t = backend->transport();

  std::size_t received = 0;
  auto handler = [&](net::Message) { ++received; };
  t.attach("alice", [](net::Message) {});
  t.attach("bob", handler);

  t.send("alice", "bob", Bytes{1});
  ASSERT_TRUE(backend->run_until([&] { return received == 1; }, seconds(5)));

  // Crash bob: messages sent while down are lost, not queued.
  t.detach("bob");
  t.send("alice", "bob", Bytes{2});
  backend->settle(millis(100));
  EXPECT_EQ(received, 1u);

  // Restart and verify fresh messages flow again.
  t.attach("bob", handler);
  t.send("alice", "bob", Bytes{3});
  EXPECT_TRUE(backend->run_until([&] { return received == 2; }, seconds(5)));
}

// ---------------------------------------------------------------------------
// Conformance: timers

TEST_P(TransportConformance, TimersFireInDelayOrderAndHonourCancel) {
  auto backend = make_backend(GetParam());
  net::Transport& t = backend->transport();

  std::vector<int> fired;
  net::Timer slow = t.schedule(millis(60), [&] { fired.push_back(1); });
  net::Timer fast = t.schedule(millis(10), [&] { fired.push_back(2); });
  net::Timer doomed = t.schedule(millis(30), [&] { fired.push_back(3); });

  EXPECT_TRUE(slow.active());
  doomed.cancel();
  EXPECT_FALSE(doomed.active());

  ASSERT_TRUE(backend->run_until([&] { return fired.size() == 2; }, seconds(5)));
  backend->settle(millis(50));
  EXPECT_EQ(fired, (std::vector<int>{2, 1}));
  // active() reports "not cancelled"; firing does not clear it (both
  // backends share sim::TimerHandle's semantics).
  EXPECT_TRUE(fast.active());
  EXPECT_FALSE(doomed.active());
}

TEST_P(TransportConformance, NowAdvancesAcrossTimers) {
  auto backend = make_backend(GetParam());
  net::Transport& t = backend->transport();
  SimTime before = t.now();
  bool done = false;
  t.schedule(millis(20), [&] { done = true; });
  ASSERT_TRUE(backend->run_until([&] { return done; }, seconds(5)));
  EXPECT_GE(t.now() - before, millis(20));
}

TEST_P(TransportConformance, LanesRunSubmittedWorkInOrder) {
  auto backend = make_backend(GetParam());
  net::Lanes lanes(backend->transport(), 1);

  std::vector<int> order;
  lanes.submit(millis(5), [&] { order.push_back(1); });
  lanes.submit(millis(5), [&] { order.push_back(2); });
  ASSERT_TRUE(backend->run_until([&] { return order.size() == 2; }, seconds(5)));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(lanes.jobs(), 2u);
  EXPECT_EQ(lanes.busy_ns(), millis(10));
}

// ---------------------------------------------------------------------------
// Resolver

TEST(Resolver, ParsesNamesCommentsAndBlankLines) {
  net::Resolver r = net::Resolver::parse(
      "# deployment map\n"
      "replica/0 127.0.0.1:5000\n"
      "\n"
      "proxy/hmi localhost:5100   # trailing comment\n");
  ASSERT_EQ(r.size(), 2u);
  ASSERT_NE(r.lookup("replica/0"), nullptr);
  EXPECT_EQ(r.lookup("replica/0")->port, 5000);
  EXPECT_EQ(r.lookup("proxy/hmi")->host, "localhost");
  EXPECT_EQ(r.lookup("missing"), nullptr);
}

TEST(Resolver, RoundTripsThroughText) {
  net::Resolver r;
  r.add("a", net::SocketAddress{"10.0.0.1", 1234});
  r.add("b", net::SocketAddress{"127.0.0.1", 4321});
  net::Resolver again = net::Resolver::parse(r.to_text());
  EXPECT_EQ(again.size(), 2u);
  EXPECT_EQ(*again.lookup("a"), (net::SocketAddress{"10.0.0.1", 1234}));
}

TEST(Resolver, RejectsMalformedLines) {
  EXPECT_THROW(net::Resolver::parse("no-address\n"), std::runtime_error);
  EXPECT_THROW(net::Resolver::parse("name host:99999\n"), std::runtime_error);
  EXPECT_THROW(net::Resolver::parse("name host:0\n"), std::runtime_error);
  EXPECT_THROW(net::Resolver::parse("name host:\n"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Wire-format hardening

bft::ClientRequest sample_request() {
  bft::ClientRequest req;
  req.client = ClientId{7};
  req.sequence = RequestId{31};
  req.payload = bytes_of("write value item=9 v=1.5");
  return req;
}

TEST(Hardening, EveryTruncationOfAValidMessageThrowsDecodeError) {
  Bytes full = sample_request().encode();
  for (std::size_t len = 0; len < full.size(); ++len) {
    ByteView prefix(full.data(), len);
    // Any strict prefix must raise DecodeError — never crash, hang, or
    // return a half-parsed message (expect_done catches short reads that
    // happen to align on field boundaries... and those that parse fully
    // are impossible because the trailing field is length-prefixed).
    EXPECT_THROW(bft::ClientRequest::decode(prefix), DecodeError)
        << "prefix length " << len;
  }
}

TEST(Hardening, RandomByteFlipsNeverCrashTheDecoder) {
  Bytes full = sample_request().encode();
  Rng rng(0xC0FFEE);
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes mutated = full;
    std::size_t flips = 1 + rng.below(3);
    for (std::size_t i = 0; i < flips; ++i) {
      mutated[rng.below(mutated.size())] ^=
          static_cast<std::uint8_t>(1 + rng.below(255));
    }
    try {
      bft::ClientRequest::decode(mutated);  // may succeed or...
    } catch (const DecodeError&) {          // ...fail cleanly; nothing else
    }
  }
}

TEST(Hardening, HostileLengthPrefixIsRejectedNotOverflowed) {
  // varint length prefix of ~2^63: `pos_ + n` used to wrap around the
  // bounds check and read out of bounds. Must throw instead.
  Bytes hostile = {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f};
  Reader r(hostile);
  EXPECT_THROW(r.blob(), DecodeError);

  Bytes hostile_str = {0xfe, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f};
  Reader r2(hostile_str);
  EXPECT_THROW(r2.str(), DecodeError);
}

TEST(Hardening, OversizedIdVarintIsRejectedNotTruncated) {
  Writer w;
  w.varint(std::uint64_t{1} << 40);  // does not fit ItemId's uint32 rep
  Bytes data = std::move(w).take();
  Reader r(data);
  EXPECT_THROW(r.id<ItemId>(), DecodeError);

  Writer w2;
  w2.varint((std::uint64_t{1} << 32) + 5);
  Bytes data2 = std::move(w2).take();
  Reader r2(data2);
  EXPECT_THROW(r2.varint32(), DecodeError);
}

TEST(Hardening, ModbusCrcCatchesEverySingleByteCorruption) {
  rtu::ModbusRequest req;
  req.transaction = 9;
  req.function = rtu::FunctionCode::kWriteSingleRegister;
  req.address = 44;
  req.values = {1234};
  Bytes frame = req.encode();
  for (std::size_t i = 0; i < frame.size(); ++i) {
    Bytes mutated = frame;
    mutated[i] ^= 0xff;
    EXPECT_THROW(rtu::ModbusRequest::decode(mutated), DecodeError)
        << "flip at byte " << i << " was silently accepted";
  }
  // The pristine frame still parses.
  EXPECT_EQ(rtu::ModbusRequest::decode(frame).values, req.values);
}

TEST(Hardening, ModbusCrcCatchesTruncationAndExtension) {
  rtu::ModbusRequest req;
  req.values = {77};
  Bytes frame = req.encode();
  for (std::size_t len = 0; len < frame.size(); ++len) {
    EXPECT_THROW(
        rtu::ModbusRequest::decode(ByteView(frame.data(), len)), DecodeError);
  }
  Bytes extended = frame;
  extended.push_back(0xab);
  EXPECT_THROW(rtu::ModbusRequest::decode(extended), DecodeError);
}

// ---------------------------------------------------------------------------
// Corruption-injection regression: corrupted payloads must be rejected
// end-to-end, never silently accepted.

class CorruptionRejection : public ::testing::TestWithParam<sim::CorruptMode> {
};

INSTANTIATE_TEST_SUITE_P(Modes, CorruptionRejection,
                         ::testing::Values(sim::CorruptMode::kFlip,
                                           sim::CorruptMode::kTruncate,
                                           sim::CorruptMode::kExtend),
                         [](const auto& info) {
                           switch (info.param) {
                             case sim::CorruptMode::kFlip: return "Flip";
                             case sim::CorruptMode::kTruncate: return "Truncate";
                             default: return "Extend";
                           }
                         });

TEST_P(CorruptionRejection, CorruptedFieldWritesAreNeverApplied) {
  sim::EventLoop loop;
  sim::Network net(loop, micros(100), 0);
  rtu::Rtu rtu(net, "rtu/1");
  scada::Frontend frontend;
  rtu::RtuDriver driver(net, frontend,
                        rtu::DriverOptions{.poll_period = millis(20),
                                           .write_timeout = millis(200)});

  sim::LinkPolicy corrupt;
  corrupt.corrupt_prob = 1.0;
  corrupt.corrupt_mode = GetParam();
  net.set_policy("frontend/driver", "rtu/1", corrupt);

  rtu.add_actuator(7, 0);
  ItemId item = frontend.add_item("valve/a");
  driver.bind_actuator("rtu/1", 7, rtu::RegisterScaling{1.0, 0.0}, item);
  driver.start();

  std::vector<scada::ScadaMessage> to_master;
  frontend.set_master_sink(
      [&](const scada::ScadaMessage& m) { to_master.push_back(m); });

  scada::WriteValue write;
  write.ctx.op = OpId{1};
  write.item = item;
  write.value = scada::Variant{55.0};
  frontend.handle(scada::ScadaMessage{write});
  loop.run_until(millis(500));

  // Every write request was mangled on the wire: the RTU must reject the
  // frame (CRC), apply nothing, and the driver must time the write out.
  EXPECT_GT(net.stats().corrupted, 0u);
  EXPECT_EQ(rtu.writes_applied(), 0u);
  EXPECT_EQ(rtu.register_value(7), 0u);
  ASSERT_EQ(to_master.size(), 1u);
  EXPECT_EQ(std::get<scada::WriteResult>(to_master[0]).status,
            scada::WriteStatus::kFailed);
}

// ---------------------------------------------------------------------------
// Reassembly hardening (socket backend)

TEST(Reassembly, ConflictingFragmentHeaderDoesNotPoisonTransfer) {
  // Regression: a single spoofed datagram that reuses an in-flight
  // (from, msg_id, to) key with a *different* fragment count used to erase
  // the whole reassembly state, so the genuine transfer could never
  // complete. The first-seen header is authoritative; only the conflicting
  // datagram may be dropped.
  net::Resolver resolver;
  std::uint16_t port = next_port();
  resolver.add("bob", net::SocketAddress{"127.0.0.1", port});
  net::SocketTransport transport(std::move(resolver));

  Bytes received;
  transport.attach("bob",
                   [&](net::Message m) { received = std::move(m.payload); });

  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in dest{};
  dest.sin_family = AF_INET;
  dest.sin_port = htons(port);
  dest.sin_addr.s_addr = inet_addr("127.0.0.1");

  auto send_frag = [&](std::uint64_t msg_id, std::uint16_t index,
                       std::uint16_t count, const Bytes& piece) {
    Writer w;
    w.u32(0x53535450);  // "SSTP"
    w.u8(1);            // version
    w.u64(msg_id);
    w.u16(index);
    w.u16(count);
    w.str("alice");
    w.str("bob");
    w.blob(ByteView(piece.data(), piece.size()));
    Bytes datagram = std::move(w).take();
    ASSERT_EQ(::sendto(fd, datagram.data(), datagram.size(), 0,
                       reinterpret_cast<sockaddr*>(&dest), sizeof(dest)),
              static_cast<ssize_t>(datagram.size()));
  };

  send_frag(7, 0, 3, Bytes{'A', 'A', 'A', 'A'});
  ASSERT_TRUE(transport.run_until(
      [&] { return transport.stats().datagrams_received >= 1; }, millis(500)));

  // The spoofed conflicting header: same key, count 2 instead of 3.
  std::uint64_t errors_before = transport.stats().decode_errors;
  send_frag(7, 0, 2, Bytes{'X', 'X'});
  ASSERT_TRUE(transport.run_until(
      [&] { return transport.stats().decode_errors > errors_before; },
      millis(500)));
  EXPECT_EQ(transport.stats().decode_errors, errors_before + 1);
  EXPECT_TRUE(received.empty());

  // The genuine transfer still completes with the remaining fragments.
  send_frag(7, 1, 3, Bytes{'B', 'B', 'B', 'B'});
  send_frag(7, 2, 3, Bytes{'C', 'C'});
  EXPECT_TRUE(
      transport.run_until([&] { return !received.empty(); }, millis(500)));
  EXPECT_EQ(received,
            (Bytes{'A', 'A', 'A', 'A', 'B', 'B', 'B', 'B', 'C', 'C'}));
  ::close(fd);
}

// ---------------------------------------------------------------------------
// Batched RX (recvmmsg fast path, socket backend)

/// One single-fragment SSTP frame, as a peer would put it on the wire.
Bytes make_frame(std::uint64_t msg_id, const std::string& from,
                 const std::string& to, const Bytes& payload) {
  Writer w;
  w.u32(0x53535450);  // "SSTP"
  w.u8(1);            // version
  w.u64(msg_id);
  w.u16(0);
  w.u16(1);
  w.str(from);
  w.str(to);
  w.blob(ByteView(payload.data(), payload.size()));
  return std::move(w).take();
}

/// Blasts `frames` into `port` from one ephemeral socket, so they are all
/// queued on the receiver before it polls once — the deterministic way to
/// force multi-datagram recvmmsg batches.
void blast(std::uint16_t port, const std::vector<Bytes>& frames) {
  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in dest{};
  dest.sin_family = AF_INET;
  dest.sin_port = htons(port);
  dest.sin_addr.s_addr = inet_addr("127.0.0.1");
  for (const Bytes& frame : frames) {
    ASSERT_EQ(::sendto(fd, frame.data(), frame.size(), 0,
                       reinterpret_cast<sockaddr*>(&dest), sizeof(dest)),
              static_cast<ssize_t>(frame.size()));
  }
  ::close(fd);
}

TEST(BatchedRx, BurstDrainsInOrderWithMultiDatagramBatches) {
  net::Resolver resolver;
  std::uint16_t port = next_port();
  resolver.add("bob", net::SocketAddress{"127.0.0.1", port});
  net::SocketOptions options;
  options.rx_batch = 8;
  net::SocketTransport transport(std::move(resolver), options);

  std::vector<Bytes> got;
  transport.attach("bob",
                   [&](net::Message m) { got.push_back(std::move(m.payload)); });

  std::vector<Bytes> frames;
  for (std::uint8_t i = 0; i < 20; ++i) {
    frames.push_back(make_frame(i + 1, "alice", "bob", Bytes{i, i, i}));
  }
  blast(port, frames);

  ASSERT_TRUE(transport.run_until([&] { return got.size() >= 20; }, seconds(2)));
  ASSERT_EQ(got.size(), 20u);
  for (std::uint8_t i = 0; i < 20; ++i) {
    EXPECT_EQ(got[i], (Bytes{i, i, i})) << "datagram " << int(i) << " reordered";
  }
  // 20 queued datagrams through an 8-slot ring must arrive in fewer than 20
  // read calls — i.e. at least one batch held more than one datagram.
  EXPECT_EQ(transport.stats().datagrams_received, 20u);
  EXPECT_GE(transport.stats().rx_batches, 1u);
  EXPECT_LT(transport.stats().rx_batches,
            transport.stats().datagrams_received);
}

TEST(BatchedRx, RingExhaustionCountsAndKeepsDraining) {
  net::Resolver resolver;
  std::uint16_t port = next_port();
  resolver.add("bob", net::SocketAddress{"127.0.0.1", port});
  net::SocketOptions options;
  options.rx_batch = 4;  // force several full rings for 20 datagrams
  net::SocketTransport transport(std::move(resolver), options);

  std::size_t delivered = 0;
  transport.attach("bob", [&](net::Message) { ++delivered; });

  std::vector<Bytes> frames;
  for (std::uint8_t i = 0; i < 20; ++i) {
    frames.push_back(make_frame(i + 1, "alice", "bob", Bytes{i}));
  }
  blast(port, frames);

  // A full ring must never truncate the burst: the read loop goes straight
  // back to the socket instead of waiting for the next poll wakeup.
  ASSERT_TRUE(transport.run_until([&] { return delivered >= 20; }, seconds(2)));
  EXPECT_EQ(delivered, 20u);
  EXPECT_GE(transport.stats().rx_ring_full, 1u);
}

TEST(BatchedRx, RecvfromFallbackDeliversByteIdenticalMessages) {
  // rx_batch = 1 selects the one-datagram-per-recvfrom path — the same code
  // that handles kernels without recvmmsg. Same wire input must produce the
  // same delivered messages, byte for byte, on both paths.
  std::vector<Bytes> frames;
  for (std::uint8_t i = 0; i < 12; ++i) {
    Bytes payload;
    for (std::uint8_t j = 0; j <= i; ++j) payload.push_back(i ^ j);
    frames.push_back(make_frame(i + 1, "alice", "bob", payload));
  }

  auto deliver_with = [&](std::size_t rx_batch) {
    net::Resolver resolver;
    std::uint16_t port = next_port();
    resolver.add("bob", net::SocketAddress{"127.0.0.1", port});
    net::SocketOptions options;
    options.rx_batch = rx_batch;
    net::SocketTransport transport(std::move(resolver), options);
    std::vector<net::Message> got;
    transport.attach("bob",
                     [&](net::Message m) { got.push_back(std::move(m)); });
    blast(port, frames);
    transport.run_until([&] { return got.size() >= frames.size(); },
                        seconds(2));
    return got;
  };

  std::vector<net::Message> batched = deliver_with(8);
  std::vector<net::Message> single = deliver_with(1);
  ASSERT_EQ(batched.size(), frames.size());
  ASSERT_EQ(single.size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(batched[i].from, single[i].from);
    EXPECT_EQ(batched[i].to, single[i].to);
    EXPECT_EQ(batched[i].payload, single[i].payload);
  }
}

TEST_P(CorruptionRejection, CorruptedScadaFramesFailHmacVerification) {
  sim::EventLoop loop;
  sim::Network net(loop, micros(100), 0);
  crypto::Keychain keys("net-test-secret");

  sim::LinkPolicy corrupt;
  corrupt.corrupt_prob = 1.0;
  corrupt.corrupt_mode = GetParam();
  net.set_policy(core::kHmiEndpoint, core::kProxyHmiEndpoint, corrupt);

  std::size_t delivered = 0;
  std::size_t accepted = 0;
  net.attach(core::kProxyHmiEndpoint, [&](net::Message m) {
    ++delivered;
    std::string sender;
    if (core::receive_scada(keys, core::kProxyHmiEndpoint, m, &sender)) {
      ++accepted;
    }
  });

  scada::Subscribe sub;
  sub.subscriber = core::kHmiEndpoint;
  for (int i = 0; i < 20; ++i) {
    core::send_scada(net, keys, core::kHmiEndpoint, core::kProxyHmiEndpoint,
                     scada::ScadaMessage{sub});
  }
  loop.run();

  EXPECT_EQ(net.stats().corrupted, 20u);
  EXPECT_GT(delivered, 0u);
  EXPECT_EQ(accepted, 0u) << "a corrupted frame passed HMAC verification";
}

}  // namespace
}  // namespace ss
